/**
 * @file
 * Work-stealing thread pool for the crash-point sweep.
 *
 * Crash points are fully independent — each owns its own simulated
 * machine — so the sweep is embarrassingly parallel, but per-point
 * runtime varies by an order of magnitude (a crash at store #3 replays
 * almost nothing; one at store #900 replays the whole trace). Static
 * partitioning would leave late-point workers dominating the wall
 * time, so each worker owns a deque of item indices: it pops from its
 * own back and, when empty, steals from the front of the busiest
 * victim. Results are written to caller-owned slots indexed by item,
 * keeping the output independent of the worker count and schedule.
 */

#ifndef SLPMT_VALIDATE_WORK_QUEUE_HH
#define SLPMT_VALIDATE_WORK_QUEUE_HH

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slpmt
{

/** One worker's deque of pending item indices. */
class StealableQueue
{
  public:
    void
    push(std::size_t item)
    {
        std::lock_guard<std::mutex> lock(mtx);
        items.push_back(item);
    }

    /** Owner takes the most recently pushed item (LIFO, cache-warm). */
    bool
    popBack(std::size_t *out)
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (items.empty())
            return false;
        *out = items.back();
        items.pop_back();
        return true;
    }

    /** A thief takes the oldest item (FIFO end, least contended). */
    bool
    stealFront(std::size_t *out)
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (items.empty())
            return false;
        *out = items.front();
        items.pop_front();
        return true;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return items.size();
    }

  private:
    mutable std::mutex mtx;
    std::deque<std::size_t> items;
};

/**
 * Run @p fn(item) for every item in [0, num_items) on @p num_workers
 * threads with work stealing. Blocks until all items complete. The
 * callable must be thread-safe across distinct items and must not
 * throw (wrap and record failures per item instead).
 */
inline void
runWorkStealing(std::size_t num_workers, std::size_t num_items,
                const std::function<void(std::size_t)> &fn)
{
    if (num_workers <= 1 || num_items <= 1) {
        for (std::size_t i = 0; i < num_items; ++i)
            fn(i);
        return;
    }

    std::vector<StealableQueue> queues(num_workers);
    for (std::size_t i = 0; i < num_items; ++i)
        queues[i % num_workers].push(i);

    auto worker = [&](std::size_t self) {
        std::size_t item;
        for (;;) {
            if (queues[self].popBack(&item)) {
                fn(item);
                continue;
            }
            // Steal from the victim with the most pending work.
            std::size_t victim = self;
            std::size_t best = 0;
            for (std::size_t q = 0; q < queues.size(); ++q) {
                if (q == self)
                    continue;
                const std::size_t n = queues[q].size();
                if (n > best) {
                    best = n;
                    victim = q;
                }
            }
            // Queue sizes only ever shrink, so seeing every queue
            // empty means no unclaimed work remains anywhere.
            if (best == 0)
                break;
            // A lost race against another thief: rescan for a victim.
            if (queues[victim].stealFront(&item))
                fn(item);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(num_workers);
    for (std::size_t w = 0; w < num_workers; ++w)
        threads.emplace_back(worker, w);
    for (auto &t : threads)
        t.join();
}

} // namespace slpmt

#endif // SLPMT_VALIDATE_WORK_QUEUE_HH
