/**
 * @file
 * Exhaustive crash-point exploration (recovery-correctness fuzzing).
 *
 * The paper's guarantee is that selective logging plus lazy
 * persistency recovers a consistent state from *any* power-failure
 * point. This subsystem validates that systematically instead of via
 * hand-picked points: a dry run counts the store/storeT instructions a
 * seeded workload trace executes, the explorer enumerates crash points
 * over that range (every store for small runs, deterministic
 * stratified sampling for large ones, plus one post-completion point
 * that crashes with lazy data still volatile), and each point replays
 * the trace up to exactly that store, injects the power failure, runs
 * hardware recovery (undo/redo replay) plus the workload's user-level
 * recovery, and checks the surviving state against a shadow-map
 * oracle:
 *
 *  - every committed key is readable with its committed value,
 *  - no aborted or in-flight partial update is visible,
 *  - the structure's deep invariants hold,
 *  - recovery is idempotent (running it twice changes nothing),
 *  - the structure keeps working (post-recovery inserts succeed).
 *
 * Rather than re-running the whole trace for every point (O(P·T)),
 * the sweep runs the trace once on a master machine, captures a
 * whole-machine checkpoint every checkpointInterval stores (CoW page
 * sharing keeps K checkpoints near one heap's cost), and serves each
 * crash point by restoring the nearest checkpoint below it into a
 * fresh machine and replaying only the ≤K-store tail — O(T + P·K).
 * Restores are bit-exact, so reports are byte-identical to the
 * from-scratch path, which survives as the --no-checkpoint audit
 * mode.
 *
 * Points are independent — each owns its own machine — so the sweep
 * runs on a work-stealing worker pool; checkpoints are immutable and
 * forked concurrently by many workers; results land in slots indexed
 * by point, making the violation report bit-identical for any worker
 * count. Every violation prints the (scheme, style, workload, seed,
 * ckpt_interval, crash_point) tuple that reproduces it in isolation.
 */

#ifndef SLPMT_VALIDATE_CRASH_EXPLORER_HH
#define SLPMT_VALIDATE_CRASH_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/pm_system.hh"
#include "stats/stats.hh"
#include "txn/engine.hh"
#include "txn/scheme.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{

/** Everything configurable about one crash sweep. */
struct CrashSweepConfig
{
    SchemeKind scheme = SchemeKind::SLPMT;
    LoggingStyle style = LoggingStyle::Undo;
    std::string workload = "hashtable";

    /** Seeded op trace the sweep replays (seed is the repro handle). */
    YcsbMixConfig mix;

    /**
     * Crash-point budget. 0 explores every store; otherwise the range
     * is split into this many strata and one point is drawn
     * deterministically (from the trace seed) per stratum, always
     * including the first and last store.
     */
    std::size_t maxPoints = 0;

    /** Also crash once after the full trace (lazy data still cached). */
    bool crashAfterCompletion = true;

    /** Re-run recovery a second time and re-verify (idempotence). */
    bool checkIdempotence = true;

    /** Fresh inserts after recovery proving the structure still works. */
    std::size_t continuationOps = 2;

    /** Worker threads for the sweep (1 = serial). */
    std::size_t workers = 1;

    /**
     * Stores between machine checkpoints on the master run. The sweep
     * applies the trace once, drops a checkpoint every this many
     * stores, and serves each crash point by restoring the nearest
     * checkpoint below it and replaying only the tail — O(T + P·K)
     * total work instead of O(P·T). Restores are bit-exact, so the
     * report is byte-identical to a from-scratch sweep; the interval
     * is part of the repro tuple so a printed violation reproduces
     * the exact sweep that found it.
     */
    std::size_t checkpointInterval = 64;

    /**
     * Audit mode: false re-runs every point from scratch (the
     * original O(P·T) path), used to cross-check that checkpointed
     * sweeps produce byte-identical reports.
     */
    bool useCheckpoints = true;

    /**
     * Shrink the caches far below the working set so dirty
     * transactional lines overflow mid-transaction, draining log
     * records to PM and making recovery actually replay them. With the
     * default Table III hierarchy small traces fit entirely in cache
     * and every crash point recovers from an empty persistent log.
     */
    bool tinyCache = false;

    /**
     * SoA layout self-check policy for every machine the sweep builds
     * (master, forks, from-scratch replays). Never serialised into
     * the report: a forced-On sweep must produce a byte-identical
     * document to a forced-Off one (the LayoutDiff differential).
     */
    LayoutAudit layoutAudit = LayoutAudit::Default;

    /**
     * Fault-injection knobs for the explorer's own tests: deliberately
     * skip a recovery stage to prove the oracle discriminates a broken
     * recovery path from a working one. Never set in real sweeps.
     */
    bool skipHardwareReplay = false;
    bool skipUserRecovery = false;
};

/** Outcome of one explored crash point. */
struct CrashPointOutcome
{
    /** Store/storeT instruction ordinal at which the crash fired;
     *  0 marks the post-completion crash point. */
    std::uint64_t crashPoint = 0;

    /** The armed crash fired mid-trace (vs. injected after it). */
    bool fired = false;

    /** Trace ops that committed before the crash. */
    std::size_t committedOps = 0;

    /** Log records the hardware recovery replayed. */
    std::size_t replayedRecords = 0;

    /** Oracle violations (empty = the point recovered correctly). */
    std::vector<std::string> violations;

    /** This point's machine counters (summed into the sweep report). */
    StatsSnapshot stats;
};

/** Aggregated result of a sweep. */
struct CrashSweepReport
{
    CrashSweepConfig config;

    /** Store/storeT instructions the full trace executes (dry run). */
    std::uint64_t traceStores = 0;

    /** Ops of the generated trace. */
    std::size_t traceOps = 0;

    /** Per-point outcomes, ordered by crash point (deterministic). */
    std::vector<CrashPointOutcome> points;

    /** Wall-clock milliseconds of the (possibly parallel) sweep.
     *  Kept out of toJson() so reports diff cleanly across modes. */
    double wallMs = 0.0;

    std::size_t pointsExplored() const { return points.size(); }
    std::size_t violationCount() const;
    std::uint64_t replayedRecordsTotal() const;

    /**
     * Deterministic, timing-free violation listing: one line per
     * violation carrying the full repro tuple. Bit-identical across
     * worker counts; empty string when the sweep is clean.
     */
    std::string violationsText() const;

    /**
     * Full machine-readable report. Deterministic: no timing or
     * worker-count fields, so the checkpointed sweep and the
     * --no-checkpoint audit sweep produce byte-identical documents.
     */
    std::string toJson() const;
};

/** Run one sweep: dry-run, enumerate, explore (possibly in parallel). */
CrashSweepReport runCrashSweep(const CrashSweepConfig &cfg);

/**
 * Re-run a single crash point in isolation — the reproducer for a
 * printed (scheme, style, workload, seed, crash_point) tuple.
 * @p crash_point 0 reproduces the post-completion point.
 */
CrashPointOutcome runCrashPoint(const CrashSweepConfig &cfg,
                                std::uint64_t crash_point);

/** Dry-run the trace and count its store/storeT instructions. */
std::uint64_t countTraceStores(const CrashSweepConfig &cfg);

} // namespace slpmt

#endif // SLPMT_VALIDATE_CRASH_EXPLORER_HH
