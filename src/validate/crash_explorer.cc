#include "validate/crash_explorer.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>

#include "checkpoint/checkpoint.hh"
#include "core/pm_system.hh"
#include "sim/json.hh"
#include "validate/work_queue.hh"
#include "workloads/factory.hh"

namespace slpmt
{
namespace
{

/** Committed state the durable structure must match after recovery. */
using Shadow = std::map<std::uint64_t, std::vector<std::uint8_t>>;

/** Cap per check phase so one broken point cannot flood the report. */
constexpr std::size_t maxViolationsPerPhase = 4;

SystemConfig
systemFor(const CrashSweepConfig &cfg)
{
    SystemConfig sc;
    sc.scheme = SchemeConfig::forKind(cfg.scheme);
    sc.style = cfg.style;
    sc.layoutAudit = cfg.layoutAudit;
    if (cfg.tinyCache) {
        sc.hierarchy.l1 = CacheConfig{"L1", 1024, 2, 4};
        sc.hierarchy.l2 = CacheConfig{"L2", 2048, 2, 12};
        sc.hierarchy.l3 = CacheConfig{"L3", 4096, 4, 40};
    }
    return sc;
}

std::string
styleName(LoggingStyle style)
{
    return style == LoggingStyle::Undo ? "undo" : "redo";
}

std::string
hexKey(std::uint64_t key)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

/** The printed handle that reproduces a failure in isolation. The
 *  checkpoint interval is part of the tuple (it selects which sweep
 *  found the violation) but never changes the outcome — restores are
 *  bit-exact, so runCrashPoint replays from scratch. */
std::string
reproTuple(const CrashSweepConfig &cfg, std::uint64_t crash_point)
{
    return "(scheme=" + schemeName(cfg.scheme) +
           " style=" + styleName(cfg.style) +
           " workload=" + cfg.workload +
           " seed=" + std::to_string(cfg.mix.seed) +
           std::string(cfg.tinyCache ? " tiny_cache=1" : "") +
           " ckpt_interval=" + std::to_string(cfg.checkpointInterval) +
           " crash_point=" + std::to_string(crash_point) + ")";
}

/**
 * Apply one trace op, updating the oracle only when the structure
 * reports the op took effect (removes/updates of absent keys and
 * unsupported removes run no transaction).
 */
void
applyOp(PmSystem &sys, Workload &wl, const YcsbMixedOp &op,
        Shadow &shadow)
{
    switch (op.kind) {
      case YcsbOpKind::Insert:
        wl.insert(sys, op.key, op.value);
        shadow[op.key] = op.value;
        break;
      case YcsbOpKind::Update:
        if (wl.update(sys, op.key, op.value))
            shadow[op.key] = op.value;
        break;
      case YcsbOpKind::Remove:
        if (wl.remove(sys, op.key))
            shadow.erase(op.key);
        break;
    }
}

/** The oracle: compare the recovered structure against the shadow. */
void
checkState(PmSystem &sys, Workload &wl, const Shadow &shadow,
           const std::vector<std::uint64_t> &absent_keys,
           const std::string &tuple, const std::string &phase,
           std::vector<std::string> &out)
{
    std::size_t added = 0;
    auto add = [&](const std::string &msg) {
        if (added < maxViolationsPerPhase)
            out.push_back(tuple + " " + phase + ": " + msg);
        else if (added == maxViolationsPerPhase)
            out.push_back(tuple + " " + phase +
                          ": further violations suppressed");
        ++added;
    };

    std::string why;
    if (!wl.checkConsistency(sys, &why))
        add("structure invariant violated: " + why);

    const std::size_t n = wl.count(sys);
    if (n != shadow.size())
        add("count mismatch: structure holds " + std::to_string(n) +
            ", oracle expects " + std::to_string(shadow.size()));

    std::vector<std::uint8_t> got;
    for (const auto &[key, value] : shadow) {
        got.clear();
        if (!wl.lookup(sys, key, &got))
            add("committed key " + hexKey(key) + " missing");
        else if (got != value)
            add("value mismatch for committed key " + hexKey(key));
    }

    for (std::uint64_t key : absent_keys) {
        if (wl.lookup(sys, key, nullptr))
            add("uncommitted or removed key " + hexKey(key) +
                " visible");
    }
}

/**
 * Finish one crash point on a machine already advanced to trace op
 * @p start_op (op 0 with an empty shadow for a from-scratch run, a
 * restored checkpoint otherwise). @p arm_stores is the store count at
 * which the crash fires, relative to the machine's current position
 * (0 = never, i.e. the post-completion point).
 */
CrashPointOutcome
explorePoint(const CrashSweepConfig &cfg,
             const std::vector<YcsbMixedOp> &trace,
             std::uint64_t crash_point, PmSystem &sys, Workload &wl,
             Shadow shadow, std::size_t start_op,
             std::uint64_t arm_stores)
{
    CrashPointOutcome out;
    out.crashPoint = crash_point;
    const std::string tuple = reproTuple(cfg, crash_point);

    try {
        out.committedOps = start_op;
        if (arm_stores > 0)
            sys.armCrashAfterStores(arm_stores);
        bool crashed = false;
        for (std::size_t i = start_op; i < trace.size(); ++i) {
            try {
                applyOp(sys, wl, trace[i], shadow);
            } catch (const CrashInjected &) {
                crashed = true;
                break;
            }
            ++out.committedOps;
        }
        sys.armCrashAfterStores(0);
        out.fired = crashed;

        // A point past the last store (or the explicit post-completion
        // point 0): power off after the trace, with any lazily
        // persistent data still volatile in the caches.
        if (!crashed)
            sys.crash();

        // Keys the trace touched that must NOT be visible: removed
        // keys and the interrupted op's fresh insert.
        std::vector<std::uint64_t> absent;
        {
            std::set<std::uint64_t> keys;
            for (const auto &op : trace)
                keys.insert(op.key);
            for (std::uint64_t key : keys) {
                if (!shadow.count(key))
                    absent.push_back(key);
            }
        }

        // Hardware-level recovery (log replay), then the workload's
        // user-level recovery of log-free and lazy data.
        if (!cfg.skipHardwareReplay)
            out.replayedRecords = sys.recoverHardware();
        if (!cfg.skipUserRecovery)
            wl.recover(sys);
        checkState(sys, wl, shadow, absent, tuple, "post-recovery",
                   out.violations);

        // Recovery must be idempotent: a second replay finds an empty
        // log and a second user-level pass changes nothing.
        if (cfg.checkIdempotence) {
            const std::size_t again =
                cfg.skipHardwareReplay ? 0 : sys.recoverHardware();
            if (again != 0)
                out.violations.push_back(
                    tuple + " idempotence: second hardware recovery "
                            "replayed " +
                    std::to_string(again) + " records");
            if (!cfg.skipUserRecovery)
                wl.recover(sys);
            checkState(sys, wl, shadow, absent, tuple, "idempotence",
                       out.violations);
        }

        // The recovered structure must keep working: a few fresh
        // inserts with per-point deterministic keys. Trace keys are
        // odd, continuation keys even, so they can never collide.
        if (cfg.continuationOps > 0) {
            Rng rng(mix64(cfg.mix.seed) ^ (crash_point + 1));
            for (std::size_t i = 0; i < cfg.continuationOps; ++i) {
                std::uint64_t key;
                do {
                    key = ((rng.next() >> 1) | 2ULL) &
                          ~static_cast<std::uint64_t>(1);
                } while (shadow.count(key));
                const auto value =
                    ycsbValueFor(key, cfg.mix.valueBytes);
                wl.insert(sys, key, value);
                shadow[key] = value;
            }
            checkState(sys, wl, shadow, absent, tuple, "continuation",
                       out.violations);
        }

        out.stats = sys.stats().snapshot();
    } catch (const std::exception &e) {
        out.violations.push_back(tuple + " exception: " + e.what());
    }
    return out;
}

/** Run one crash point from scratch: fresh machine, full replay. */
CrashPointOutcome
runPointOnTrace(const CrashSweepConfig &cfg,
                const std::vector<YcsbMixedOp> &trace,
                std::uint64_t crash_point)
{
    CrashPointOutcome out;
    out.crashPoint = crash_point;
    try {
        PmSystem sys(systemFor(cfg));
        auto wl = makeWorkload(cfg.workload);
        wl->setup(sys);
        return explorePoint(cfg, trace, crash_point, sys, *wl,
                            Shadow{}, 0, crash_point);
    } catch (const std::exception &e) {
        out.violations.push_back(reproTuple(cfg, crash_point) +
                                 " exception: " + e.what());
    }
    return out;
}

/**
 * One node of the master run's checkpoint chain. Immutable after
 * capture; any number of workers fork from it concurrently (the
 * machine checkpoint shares pages copy-on-write, the workload is
 * cloned per fork, the shadow is copied per fork).
 */
struct TraceCheckpoint
{
    std::shared_ptr<const MachineCheckpoint> machine;
    std::shared_ptr<const Workload> workload;
    Shadow shadow;
    std::size_t nextOp = 0;      //!< first trace op not yet applied
    std::uint64_t storesAt = 0;  //!< trace stores executed at capture
};

struct CheckpointChain
{
    std::vector<TraceCheckpoint> entries;
    std::uint64_t traceStores = 0;
};

/**
 * The master run: apply the trace once, dropping a checkpoint at
 * every op boundary that completes another checkpointInterval stores
 * (plus one at the trace start, so every point has a base). Also
 * yields the total store count, absorbing the dry run the
 * from-scratch path needs.
 */
CheckpointChain
buildCheckpointChain(const CrashSweepConfig &cfg,
                     const std::vector<YcsbMixedOp> &trace)
{
    CheckpointChain chain;
    PmSystem sys(systemFor(cfg));
    auto wl = makeWorkload(cfg.workload);
    wl->setup(sys);
    const std::uint64_t base = sys.engine().storesExecuted();

    Shadow shadow;
    auto drop = [&](std::size_t next_op) {
        TraceCheckpoint t;
        t.machine = std::make_shared<const MachineCheckpoint>(
            MachineCheckpoint::capture(sys));
        t.workload = wl->clone();
        t.shadow = shadow;
        t.nextOp = next_op;
        t.storesAt = sys.engine().storesExecuted() - base;
        chain.entries.push_back(std::move(t));
    };

    drop(0);
    const std::uint64_t interval =
        std::max<std::uint64_t>(cfg.checkpointInterval, 1);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        applyOp(sys, *wl, trace[i], shadow);
        const std::uint64_t stores =
            sys.engine().storesExecuted() - base;
        if (i + 1 < trace.size() &&
            stores - chain.entries.back().storesAt >= interval)
            drop(i + 1);
    }
    chain.traceStores = sys.engine().storesExecuted() - base;
    return chain;
}

/**
 * Fork checkpoint @p ckpt and replay the tail up to @p crash_point
 * (0 = run the trace out and power off after completion).
 */
CrashPointOutcome
runPointFromBase(const CrashSweepConfig &cfg,
                 const std::vector<YcsbMixedOp> &trace,
                 const TraceCheckpoint &ckpt, std::uint64_t crash_point)
{
    CrashPointOutcome out;
    out.crashPoint = crash_point;
    try {
        PmSystem sys(systemFor(cfg));
        ckpt.machine->restore(sys);
        auto wl = ckpt.workload->clone();
        const std::uint64_t arm =
            crash_point > 0 ? crash_point - ckpt.storesAt : 0;
        return explorePoint(cfg, trace, crash_point, sys, *wl,
                            ckpt.shadow, ckpt.nextOp, arm);
    } catch (const std::exception &e) {
        out.violations.push_back(reproTuple(cfg, crash_point) +
                                 " exception: " + e.what());
    }
    return out;
}

/**
 * Run one crash point by forking the nearest checkpoint strictly
 * below it and replaying only the tail. Point 0 (post-completion)
 * forks the last checkpoint and runs the trace out.
 */
CrashPointOutcome
runPointFromChain(const CrashSweepConfig &cfg,
                  const std::vector<YcsbMixedOp> &trace,
                  const CheckpointChain &chain,
                  std::uint64_t crash_point)
{
    // Entries are in increasing storesAt order; the base for a
    // firing point must be strictly below it so the armed
    // countdown sees at least one store.
    const TraceCheckpoint *ckpt = &chain.entries.front();
    for (const auto &entry : chain.entries) {
        if (crash_point == 0 || entry.storesAt < crash_point)
            ckpt = &entry;
        else
            break;
    }
    return runPointFromBase(cfg, trace, *ckpt, crash_point);
}

/**
 * Shared state of the pipelined exhaustive sweep: the master run
 * publishes checkpoints and its store frontier as it goes, and tail
 * workers replay crash points concurrently with the build. Entries
 * live in a deque (never erased, so references stay stable while the
 * master keeps appending). Point k only needs the nearest checkpoint
 * strictly below k, and that choice is final as soon as the frontier
 * reaches k — every later checkpoint lands at a store count >= the
 * frontier — so a worker may start point k the moment frontier >= k,
 * and its base (hence its outcome) is identical to the two-phase
 * sweep's.
 */
struct TailPipeline
{
    std::mutex mtx;
    std::condition_variable cv;
    std::deque<TraceCheckpoint> entries;
    std::uint64_t frontier = 0;     //!< trace stores the master applied
    std::uint64_t traceStores = 0;  //!< final count, valid once done
    bool done = false;
    std::exception_ptr error;
};

/** The master run of the pipelined sweep (same checkpoint-drop rule
 *  as buildCheckpointChain, published incrementally). */
void
runPipelineMaster(const CrashSweepConfig &cfg,
                  const std::vector<YcsbMixedOp> &trace,
                  TailPipeline &pipe)
{
    try {
        PmSystem sys(systemFor(cfg));
        auto wl = makeWorkload(cfg.workload);
        wl->setup(sys);
        const std::uint64_t base = sys.engine().storesExecuted();

        Shadow shadow;
        std::uint64_t last_drop_stores = 0;
        auto drop = [&](std::size_t next_op) {
            TraceCheckpoint t;
            t.machine = std::make_shared<const MachineCheckpoint>(
                MachineCheckpoint::capture(sys));
            t.workload = wl->clone();
            t.shadow = shadow;
            t.nextOp = next_op;
            t.storesAt = sys.engine().storesExecuted() - base;
            last_drop_stores = t.storesAt;
            std::lock_guard<std::mutex> lock(pipe.mtx);
            pipe.entries.push_back(std::move(t));
        };

        drop(0);
        const std::uint64_t interval =
            std::max<std::uint64_t>(cfg.checkpointInterval, 1);
        for (std::size_t i = 0; i < trace.size(); ++i) {
            applyOp(sys, *wl, trace[i], shadow);
            const std::uint64_t stores =
                sys.engine().storesExecuted() - base;
            if (i + 1 < trace.size() &&
                stores - last_drop_stores >= interval)
                drop(i + 1);
            {
                std::lock_guard<std::mutex> lock(pipe.mtx);
                pipe.frontier = stores;
            }
            pipe.cv.notify_all();
        }
        {
            std::lock_guard<std::mutex> lock(pipe.mtx);
            pipe.traceStores = sys.engine().storesExecuted() - base;
            pipe.done = true;
        }
    } catch (...) {
        std::lock_guard<std::mutex> lock(pipe.mtx);
        pipe.error = std::current_exception();
        pipe.done = true;
    }
    pipe.cv.notify_all();
}

std::vector<std::uint64_t> enumeratePoints(const CrashSweepConfig &cfg,
                                           std::uint64_t total_stores);

/**
 * The pipelined exhaustive sweep (maxPoints == 0): overlap the master
 * checkpoint-chain build with the point tail replays. Exhaustive
 * sweeps visit every store 1..traceStores in order, so workers can
 * claim points from an atomic ticket and block only until the master
 * frontier passes their point — no need to know the total up front.
 * Sampled sweeps keep the two-phase shape: stratification needs the
 * total store count before any point can be enumerated.
 */
void
runPipelinedSweep(const CrashSweepConfig &cfg,
                  const std::vector<YcsbMixedOp> &trace,
                  CrashSweepReport &report)
{
    TailPipeline pipe;
    std::mutex results_mtx;
    std::map<std::uint64_t, CrashPointOutcome> results;
    std::atomic<std::uint64_t> ticket{1};

    auto worker = [&]() {
        for (;;) {
            const std::uint64_t k = ticket.fetch_add(1);
            const TraceCheckpoint *ckpt = nullptr;
            std::uint64_t point = k;
            {
                std::unique_lock<std::mutex> lock(pipe.mtx);
                pipe.cv.wait(lock, [&] {
                    return pipe.done || pipe.frontier >= k;
                });
                if (pipe.done && pipe.error)
                    return;
                if (pipe.done && k > pipe.traceStores) {
                    // Exactly one ticket past the last store runs the
                    // post-completion point; later tickets are spent.
                    if (!cfg.crashAfterCompletion ||
                        k != pipe.traceStores + 1)
                        return;
                    point = 0;
                    ckpt = &pipe.entries.back();
                } else {
                    ckpt = &pipe.entries.front();
                    for (const auto &entry : pipe.entries) {
                        if (entry.storesAt < k)
                            ckpt = &entry;
                        else
                            break;
                    }
                }
            }
            CrashPointOutcome out =
                runPointFromBase(cfg, trace, *ckpt, point);
            std::lock_guard<std::mutex> lock(results_mtx);
            results[point] = std::move(out);
            if (point == 0)
                return;
        }
    };

    std::vector<std::thread> threads;
    const std::size_t workers = std::max<std::size_t>(cfg.workers, 1);
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        threads.emplace_back(worker);
    runPipelineMaster(cfg, trace, pipe);
    // The master is finished; its thread joins the replay pool until
    // the remaining tails drain.
    worker();
    for (auto &t : threads)
        t.join();
    if (pipe.error)
        std::rethrow_exception(pipe.error);

    report.traceStores = pipe.traceStores;
    const auto points = enumeratePoints(cfg, report.traceStores);
    report.points.reserve(points.size());
    for (std::uint64_t p : points)
        report.points.push_back(std::move(results.at(p)));
}

/**
 * Enumerate the crash points to explore: every store when the budget
 * allows, otherwise one deterministically drawn point per stratum
 * (always covering the first and last store). Sentinel 0 appended
 * last stands for the post-completion crash.
 */
std::vector<std::uint64_t>
enumeratePoints(const CrashSweepConfig &cfg, std::uint64_t total_stores)
{
    std::vector<std::uint64_t> points;
    const std::uint64_t total = total_stores;
    if (total > 0) {
        if (cfg.maxPoints == 0 || total <= cfg.maxPoints) {
            for (std::uint64_t k = 1; k <= total; ++k)
                points.push_back(k);
        } else {
            Rng rng(mix64(cfg.mix.seed ^ 0xc5a5c5a5c5a5c5a5ULL));
            const std::uint64_t strata = cfg.maxPoints;
            for (std::uint64_t s = 0; s < strata; ++s) {
                const std::uint64_t lo = 1 + s * total / strata;
                const std::uint64_t hi = 1 + (s + 1) * total / strata;
                points.push_back(hi > lo ? lo + rng.below(hi - lo)
                                         : lo);
            }
            points.front() = 1;
            points.back() = total;
            std::sort(points.begin(), points.end());
            points.erase(std::unique(points.begin(), points.end()),
                         points.end());
        }
    }
    if (cfg.crashAfterCompletion)
        points.push_back(0);
    return points;
}

} // namespace

std::uint64_t
countTraceStores(const CrashSweepConfig &cfg)
{
    const auto trace = ycsbMixedLoad(cfg.mix);
    PmSystem sys(systemFor(cfg));
    auto wl = makeWorkload(cfg.workload);
    wl->setup(sys);
    const std::uint64_t base = sys.engine().storesExecuted();
    Shadow shadow;
    for (const auto &op : trace)
        applyOp(sys, *wl, op, shadow);
    return sys.engine().storesExecuted() - base;
}

CrashPointOutcome
runCrashPoint(const CrashSweepConfig &cfg, std::uint64_t crash_point)
{
    return runPointOnTrace(cfg, ycsbMixedLoad(cfg.mix), crash_point);
}

CrashSweepReport
runCrashSweep(const CrashSweepConfig &cfg)
{
    CrashSweepReport report;
    report.config = cfg;

    const auto trace = ycsbMixedLoad(cfg.mix);
    report.traceOps = trace.size();

    const auto t0 = std::chrono::steady_clock::now();
    if (cfg.useCheckpoints && cfg.maxPoints == 0) {
        // Exhaustive sweep: every store is a point, so the tail
        // replays can start while the master run is still building
        // the checkpoint chain.
        runPipelinedSweep(cfg, trace, report);
    } else if (cfg.useCheckpoints) {
        const CheckpointChain chain = buildCheckpointChain(cfg, trace);
        report.traceStores = chain.traceStores;
        const auto points = enumeratePoints(cfg, report.traceStores);
        report.points.resize(points.size());
        runWorkStealing(std::max<std::size_t>(cfg.workers, 1),
                        points.size(), [&](std::size_t i) {
                            report.points[i] = runPointFromChain(
                                cfg, trace, chain, points[i]);
                        });
    } else {
        report.traceStores = countTraceStores(cfg);
        const auto points = enumeratePoints(cfg, report.traceStores);
        report.points.resize(points.size());
        runWorkStealing(std::max<std::size_t>(cfg.workers, 1),
                        points.size(), [&](std::size_t i) {
                            report.points[i] = runPointOnTrace(
                                cfg, trace, points[i]);
                        });
    }
    const auto t1 = std::chrono::steady_clock::now();
    report.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return report;
}

std::size_t
CrashSweepReport::violationCount() const
{
    std::size_t n = 0;
    for (const auto &p : points)
        n += p.violations.size();
    return n;
}

std::uint64_t
CrashSweepReport::replayedRecordsTotal() const
{
    std::uint64_t n = 0;
    for (const auto &p : points)
        n += p.replayedRecords;
    return n;
}

std::string
CrashSweepReport::violationsText() const
{
    std::string text;
    for (const auto &p : points) {
        for (const auto &v : p.violations) {
            text += v;
            text += '\n';
        }
    }
    return text;
}

std::string
CrashSweepReport::toJson() const
{
    // Sum the per-point stats registries into one sweep-level view
    // (addition commutes, so this is worker-count independent).
    StatsSnapshot aggregate;
    std::size_t fired = 0;
    for (const auto &p : points) {
        fired += p.fired ? 1 : 0;
        for (const auto &[name, value] : p.stats)
            aggregate[name] += value;
    }

    JsonWriter w;
    w.beginObject();
    w.key("scheme").value(schemeName(config.scheme));
    w.key("style").value(styleName(config.style));
    w.key("workload").value(config.workload);
    w.key("seed").value(config.mix.seed);
    w.key("tiny_cache").value(config.tinyCache);
    w.key("trace_ops").value(traceOps);
    w.key("trace_stores").value(traceStores);
    w.key("points_explored").value(pointsExplored());
    w.key("points_fired").value(fired);
    w.key("violations").value(violationCount());
    w.key("replayed_records").value(replayedRecordsTotal());
    w.key("ckpt_interval").value(config.checkpointInterval);

    w.key("violation_lines").beginArray();
    for (const auto &p : points) {
        for (const auto &v : p.violations)
            w.value(v);
    }
    w.endArray();

    w.key("stats").beginObject();
    for (const auto &[name, value] : aggregate)
        w.key(name).value(value);
    w.endObject();

    w.key("points").beginArray();
    for (const auto &p : points) {
        w.beginObject();
        w.key("crash_point").value(p.crashPoint);
        w.key("fired").value(p.fired);
        w.key("committed_ops").value(p.committedOps);
        w.key("replayed_records").value(p.replayedRecords);
        w.key("violations").value(p.violations.size());
        w.endObject();
    }
    w.endArray();

    w.endObject();
    return w.str();
}

} // namespace slpmt
