/**
 * @file
 * The multi-core simulated machine.
 *
 * N logical cores, each owning a private L1/L2 hierarchy, a
 * transaction engine with its tiered log buffer and circular txn-ID
 * allocator, and a per-core statistics registry — all sharing one L3
 * cache, one PM device (and its WPQ), one DRAM device, one persistent
 * heap, and one store-site registry. The persistent log area is
 * carved into per-core slices so concurrent engines never interleave
 * records; the transaction sequence counter is shared so
 * (core, txn ID, seq) observations stay globally unambiguous.
 *
 * Coherence is directory-style over the existing per-line MESI
 * states: before a core touches a line, the machine probes every
 * other core. A probe first runs the owner's cross-transaction
 * observation rules (signature check on stores, txn-ID line-owner
 * check — the paper's lazy-drain condition (b) seen from another
 * core), then resolves the MESI side: a remote store invalidates the
 * peer's copy, a remote load downgrades dirty or metadata-bearing
 * copies, both by surrendering the private line into the shared L3
 * through the ordinary eviction path (so log-bit aggregation and the
 * eviction-client drains apply unchanged). A probe that meets the
 * peer's *in-flight* transaction is a conflict; the machine aborts
 * the suspended peer (requester wins — it is the one currently
 * scheduled) and notifies the conflict handler so the driver can
 * restart the peer's transaction group.
 *
 * Everything is deterministic: no wall clock, no real threads; the
 * interleaving comes from the seeded scheduler (scheduler.hh).
 */

#ifndef SLPMT_MULTICORE_MACHINE_HH
#define SLPMT_MULTICORE_MACHINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/pm_context.hh"
#include "core/pm_system.hh"

namespace slpmt
{

class McMachine;

/**
 * One logical core: the PmContext a program running on this core
 * sees. Every data-path access consults the machine's coherence
 * directory line-by-line before reaching the private engine.
 */
class McCore : public PmContext
{
  public:
    McCore(McMachine &machine, std::size_t id, const SystemConfig &cfg,
           Cache &shared_l3, PmDevice &pm, DramDevice &dram,
           Addr log_base, Bytes log_size, std::uint64_t *seq_counter,
           std::uint64_t *crash_countdown);

    std::size_t id() const { return coreId; }
    TxnEngine &engine() { return eng; }
    const TxnEngine &engine() const { return eng; }
    CacheHierarchy &hierarchy() { return hier; }
    StatsRegistry &stats() { return coreStats; }
    const StatsRegistry &stats() const { return coreStats; }

    /** @name PmContext */
    /** @{ */
    void txBegin() override { eng.txBegin(); }
    void txCommit() override { eng.txCommit(); }
    void txAbort() override { eng.txAbort(); }
    bool inTransaction() const override { return eng.inTransaction(); }
    std::uint64_t currentTxnSeq() const override
    {
        return eng.currentTxnSeq();
    }

    void readBytes(Addr addr, void *out, std::size_t len) override;
    void writeBytes(Addr addr, const void *src, std::size_t len) override;
    void writeBytesT(Addr addr, const void *src, std::size_t len,
                     StoreFlags flags) override;
    void writeBytesSite(Addr addr, const void *src, std::size_t len,
                        SiteId site) override;
    void peekBytes(Addr addr, void *out, std::size_t len) const override;

    PersistentHeap &heap() override;
    StoreSiteRegistry &sites() override;
    const AddressMap &map() const override;

    Cycles cycles() const override { return eng.now(); }
    void compute(Cycles c) override { eng.advance(c); }

    /** Quiesce is machine-wide: lazy data and dirty lines of *every*
     *  core drain (the shared L3 cannot be flushed per-core). */
    void quiesce() override;
    /** @} */

    /** Drains this engine forced by remote probes, for the machine's
     *  aggregated multicore.remote* counters. */
    std::uint64_t remoteSigHitDrains() const
    {
        return ctrRemoteSigHit.get();
    }
    std::uint64_t remoteIdObservedDrains() const
    {
        return ctrRemoteIdObserved.get();
    }

  private:
    /** Probe the directory for every line a [addr, addr+len) access
     *  touches; charges transfer/drain cycles to this core. */
    void probeRange(Addr addr, std::size_t len, bool is_write);

    McMachine &machine;
    std::size_t coreId;
    StatsRegistry coreStats;
    CacheHierarchy hier;
    TxnEngine eng;

    /** Read handles onto this core's cross-core drain counters. */
    StatsRegistry::Counter ctrRemoteSigHit;
    StatsRegistry::Counter ctrRemoteIdObserved;
};

/** The machine: shared components plus the per-core column. */
class McMachine final
{
  public:
    /** Called when a probe aborted core @p core's in-flight
     *  transaction (after the engine-level abort completed). */
    using ConflictHandler = std::function<void(std::size_t core)>;

    explicit McMachine(const SystemConfig &cfg);

    McMachine(const McMachine &) = delete;
    McMachine &operator=(const McMachine &) = delete;

    std::size_t numCores() const { return cores.size(); }
    McCore &core(std::size_t i) { return *cores[i]; }
    PmContext &context(std::size_t i) { return *cores[i]; }

    StatsRegistry &sharedStats() { return shared; }
    PmDevice &pm() { return pmDev; }
    const PmDevice &pm() const { return pmDev; }
    DramDevice &dram() { return dramDev; }
    Cache &l3() { return sharedL3; }
    PersistentHeap &heap() { return pmHeap; }
    StoreSiteRegistry &sites() { return siteRegistry; }
    const AddressMap &map() const { return config.map; }
    const SystemConfig &cfg() const { return config; }

    /** @name Checkpoint access to the shared machine registers */
    /** @{ */
    std::uint64_t sharedSeqCounter() const { return seqCounter; }
    void setSharedSeqCounter(std::uint64_t v) { seqCounter = v; }
    std::uint64_t sharedCrashCountdown() const { return crashCountdown; }
    /** @} */

    void setAnnotationPolicy(const AnnotationPolicy *p)
    {
        policy = p ? p : &manualPolicy;
    }
    const AnnotationPolicy &annotationPolicy() const { return *policy; }

    void setConflictHandler(ConflictHandler h)
    {
        conflictHandler = std::move(h);
    }

    /**
     * Directory probe ahead of core @p requester's access to the line
     * at @p line_addr: run observation rules on every other core,
     * abort conflicting in-flight peers, and invalidate (store) or
     * downgrade (load of a dirty/metadata line) remote copies.
     *
     * @return transfer cycles to charge to the requester
     */
    Cycles beforeLineAccess(std::size_t requester, Addr line_addr,
                            bool is_write);

    /**
     * Scheduler quantum expired on @p core: the OS is switching the
     * thread out, so the §V-C context-switch rule drains that core's
     * log buffer (and only that core's — the others keep batching).
     */
    void noteQuantumExpiry(std::size_t core, bool drain);

    /** @name Machine-wide crash, recovery, quiesce */
    /** @{ */
    void crash();
    void armCrashAfterStores(std::uint64_t n) { crashCountdown = n; }
    std::uint64_t storesExecuted() const;

    /** Hardware log replay on every core's log slice. */
    std::size_t recover();

    /** Persist all lazy data and flush every cache to a durable
     *  quiescent state. */
    void quiesce();
    /** @} */

    /** Merged statistics: shared counters under their own names,
     *  per-core counters under a "coreN." prefix. */
    StatsSnapshot snapshot() const;

    /** Slowest core's clock — the wall time of a parallel phase. */
    Cycles makespan() const;

    /** Remote-folder hook (CacheHierarchy::setRemoteFolder): fold
     *  other cores' private copies into a shared-L3 victim being
     *  evicted by @p evictor. */
    Cycles foldRemotePrivate(CacheHierarchy &evictor, CacheLine &victim,
                             Cycles now);

  private:
    /** Bytes reserved for the durable root directory (matches
     *  PmSystem so heap layouts line up across machines). */
    static constexpr Bytes rootDirBytes = 4096;

    /** Cross-core line transfer charge: a shared-L3 round trip. */
    static constexpr Cycles remoteTransferCycles = 40;

    SystemConfig config;
    StatsRegistry shared;
    PersistTracker tracker;
    PmDevice pmDev;
    DramDevice dramDev;
    Cache sharedL3;
    PersistentHeap pmHeap;
    StoreSiteRegistry siteRegistry;
    ManualAnnotationPolicy manualPolicy;
    const AnnotationPolicy *policy = nullptr;

    std::uint64_t seqCounter = 0;      //!< shared txn sequence source
    std::uint64_t crashCountdown = 0;  //!< shared fault injection

    std::vector<std::unique_ptr<McCore>> cores;
    ConflictHandler conflictHandler;

    StatsRegistry::Counter statProbes;
    StatsRegistry::Counter statRemoteHits;
    StatsRegistry::Counter statInvalidations;
    StatsRegistry::Counter statDowngrades;
    StatsRegistry::Counter statConflictAborts;
    StatsRegistry::Counter statCtxSwitchDrains;
    StatsRegistry::Counter statRemoteSigHitDrains;
    StatsRegistry::Counter statRemoteIdObservedDrains;
};

} // namespace slpmt

#endif // SLPMT_MULTICORE_MACHINE_HH
