/**
 * @file
 * Concurrent YCSB over the durable KV structures.
 *
 * Each core runs its own deterministic op stream against one shared
 * structure: mostly core-private keys (generated disjointly) plus a
 * configurable fraction of ops targeting a small shared key pool —
 * the knob that provokes genuine cross-core txn-ID observations,
 * signature hits and coherence invalidations. Ops are upserts
 * (update-else-insert) so shared keys are inserted by first touch and
 * overwritten thereafter.
 *
 * The scheduler-commit order of the interleaved run is recorded as a
 * commit log; replaying that log serially on a single-core machine
 * must produce a logically identical structure (the differential
 * oracle), and the multicore crash sweep (mc_crash.hh) reuses the
 * same streams to crash at stratified points of the interleaving.
 */

#ifndef SLPMT_MULTICORE_MC_YCSB_HH
#define SLPMT_MULTICORE_MC_YCSB_HH

#include <string>
#include <vector>

#include "multicore/machine.hh"
#include "multicore/scheduler.hh"
#include "sim/experiment.hh"
#include "workloads/factory.hh"

namespace slpmt
{

/** One multicore YCSB sweep configuration. */
struct McYcsbConfig
{
    std::string workload = "hashtable";
    std::size_t numCores = 2;
    std::size_t opsPerCore = 100;
    std::size_t valueBytes = 64;
    std::uint64_t seed = 42;

    /** Percent of each core's ops that target the shared key pool. */
    unsigned sharedPct = 25;
    std::size_t sharedKeys = 16;

    McSchedConfig sched;

    /** Machine configuration; numCores is overridden from above. */
    SystemConfig sys;

    /** Annotation policy (non-owning; nullptr = manual). */
    const AnnotationPolicy *policy = nullptr;
};

/** One upsert in a core's op stream. */
struct McOpRecord
{
    std::size_t core = 0;
    std::uint64_t key = 0;
    std::vector<std::uint8_t> value;
};

/** Deterministic per-core op streams for a configuration. */
std::vector<std::vector<McOpRecord>> mcYcsbStreams(const McYcsbConfig &cfg);

/** A core driver executing one op stream as upsert transactions. */
class McYcsbDriver : public McCoreDriver
{
  public:
    McYcsbDriver(PmContext &ctx, Workload &wl,
                 const std::vector<McOpRecord> &ops,
                 std::vector<McOpRecord> &commit_log)
        : ctx(ctx), wl(wl), ops(ops), commitLog(commit_log)
    {
    }

    bool done() const override { return cursor >= ops.size(); }

    void
    step() override
    {
        const McOpRecord &op = ops[cursor];
        if (!wl.update(ctx, op.key, op.value))
            wl.insert(ctx, op.key, op.value);
        commitLog.push_back(op);
        ++cursor;
    }

    /** @name Checkpoint support: a driver's whole state is its cursor
     *  (the commit log is snapshotted separately by the sweep). */
    /** @{ */
    std::size_t position() const { return cursor; }
    void resumeAt(std::size_t c) { cursor = c; }
    /** @} */

  private:
    PmContext &ctx;
    Workload &wl;
    const std::vector<McOpRecord> &ops;
    std::vector<McOpRecord> &commitLog;
    std::size_t cursor = 0;
};

/** Outcome of one interleaved multicore YCSB run. */
struct McYcsbResult
{
    Cycles makespan = 0;     //!< slowest core's measured cycles
    std::size_t quanta = 0;
    bool crashed = false;
    std::vector<McOpRecord> commitLog;  //!< scheduler-commit order
    StatsSnapshot statsBefore;
    StatsSnapshot statsAfter;
    bool verified = false;
    std::string failure;
};

/**
 * Run the interleaved multicore YCSB to completion and verify the
 * final structure against the commit log (consistency, per-key
 * lookups, count).
 */
McYcsbResult runMcYcsb(const McYcsbConfig &cfg);

/**
 * Differential oracle: replay @p commit_log serially on a fresh
 * single-core machine and verify it reaches the same logical state
 * the log implies (same lookups and count).
 */
bool replaySerialOracle(const McYcsbConfig &cfg,
                        const std::vector<McOpRecord> &commit_log,
                        std::string *why);

/**
 * ExperimentConfig bridge: run a multicore YCSB cell (cfg.numCores
 * cores, cfg.ycsb.numOps total ops split across them) and map the
 * outcome onto the figure-orchestrator result type. Engine metrics
 * (commits, log records) are summed across the coreN.-prefixed
 * registries; cycles is the makespan.
 */
ExperimentResult runMcExperiment(const std::string &workload_name,
                                 const ExperimentConfig &cfg);

} // namespace slpmt

#endif // SLPMT_MULTICORE_MC_YCSB_HH
