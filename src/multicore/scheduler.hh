/**
 * @file
 * Deterministic interleaving scheduler for the multicore machine.
 *
 * Multi-core runs must be bit-reproducible and crash-sweepable, so
 * there are no real threads: per-core op streams are interleaved by a
 * seeded scheduler that hands one core a quantum of micro-ops at a
 * time, either round-robin or by weighted random draw over the cores
 * that still have work. Quantum expiry models an OS context switch —
 * the §V-C rule drains the departing core's log buffer (configurable,
 * so tests can isolate its effect).
 *
 * Cross-core conflicts abort the *suspended* transaction; the driver
 * rewinds to its transaction group start and retries. A core whose
 * transactions keep getting aborted (abortStreak) is eventually
 * scheduled "stubbornly" — given consecutive quanta until it commits
 * — which bounds retry livelock deterministically.
 */

#ifndef SLPMT_MULTICORE_SCHEDULER_HH
#define SLPMT_MULTICORE_SCHEDULER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "multicore/machine.hh"

namespace slpmt
{

/** Scheduler knobs; defaults favour heavy interleaving. */
struct McSchedConfig
{
    std::uint64_t seed = 1;        //!< interleaving seed
    std::size_t quantumOps = 4;    //!< micro-ops per scheduling quantum
    bool weighted = false;         //!< random draw instead of round-robin
    bool drainOnQuantumExpiry = true;  //!< §V-C context-switch drain
    std::size_t stubbornAfterAborts = 3;  //!< livelock bound
};

/** One core's op stream, advanced one micro-op at a time. */
class McCoreDriver
{
  public:
    virtual ~McCoreDriver() = default;

    virtual bool done() const = 0;

    /** Execute the next micro-op on this core's context. */
    virtual void step() = 0;

    /** Consecutive conflict aborts since the last commit. */
    virtual std::size_t abortStreak() const { return 0; }

    /** The machine aborted this core's in-flight transaction. */
    virtual void onConflictAbort() {}
};

/** What an interleaved run did. */
struct McScheduleResult
{
    bool crashed = false;    //!< an armed crash fired mid-stream
    std::size_t quanta = 0;  //!< scheduling quanta granted
};

/**
 * The scheduler's register file at a quantum boundary. Together with
 * a machine checkpoint and the drivers' cursors this resumes an
 * interleaved run bit-exactly: the RNG raw state replays the same
 * weighted draws, rr the same round-robin order, quanta the same
 * count bookkeeping.
 */
struct McScheduleState
{
    std::array<std::uint64_t, 4> rngState{};
    std::size_t rr = 0;
    std::size_t quanta = 0;
};

/**
 * Called after every scheduling quantum (context-switch drain
 * included) with the state that resumes the run from this boundary.
 * Drivers are never mid-transaction here — step() runs whole
 * transactions — so this is where crash sweeps drop checkpoints.
 */
using McQuantumHook = std::function<void(const McScheduleState &)>;

/**
 * Interleave the drivers' op streams over the machine's cores until
 * every driver reports done (or an armed crash fires). drivers[i]
 * runs on core i; there must be one driver per core.
 */
McScheduleResult runInterleaved(McMachine &machine,
                                const std::vector<McCoreDriver *> &drivers,
                                const McSchedConfig &cfg,
                                const McQuantumHook &hook = nullptr);

/**
 * Resume an interleaved run from a quantum boundary previously
 * reported to an McQuantumHook. The machine and the drivers must
 * already be restored to that same boundary; the continuation is
 * bit-identical to the uninterrupted run.
 */
McScheduleResult runInterleavedFrom(McMachine &machine,
                                    const std::vector<McCoreDriver *> &drivers,
                                    const McSchedConfig &cfg,
                                    const McScheduleState &resume,
                                    const McQuantumHook &hook = nullptr);

} // namespace slpmt

#endif // SLPMT_MULTICORE_SCHEDULER_HH
