#include "multicore/mc_slots.hh"

#include <unordered_set>

#include "common/rng.hh"

namespace slpmt
{
namespace
{

/** Allocate the slot array line-aligned; identical on every machine
 *  built from the same config (first allocation of a fresh heap). */
Addr
allocSlotRegion(PersistentHeap &heap, std::size_t num_slots)
{
    const Addr raw =
        heap.alloc(num_slots * cacheLineSize + cacheLineSize);
    return (raw + cacheLineSize - 1) &
           ~static_cast<Addr>(cacheLineSize - 1);
}

/** Executes one core's group stream; rewinds on conflict aborts. */
class McSlotsDriver : public McCoreDriver
{
  public:
    McSlotsDriver(PmContext &ctx, Addr slot_base,
                  const std::vector<McSlotGroup> &groups,
                  std::vector<McSlotGroup> &commit_log)
        : ctx(ctx), slotBase(slot_base), groups(groups),
          commitLog(commit_log)
    {
    }

    bool done() const override { return next >= groups.size(); }

    void
    step() override
    {
        const McSlotGroup &grp = groups[next];
        if (pos == 0)
            ctx.txBegin();
        const McSlotWrite &w = grp.writes[pos];
        ctx.write<std::uint64_t>(slotBase + w.slot * cacheLineSize,
                                 w.value);
        if (++pos == grp.writes.size()) {
            ctx.txCommit();
            commitLog.push_back(grp);
            ++next;
            pos = 0;
            streak = 0;
        }
    }

    std::size_t abortStreak() const override { return streak; }

    void
    onConflictAbort() override
    {
        // The machine already aborted the engine-level transaction;
        // restart the group from its first store (same values — the
        // group is a pure function of its identity).
        pos = 0;
        ++streak;
    }

  private:
    PmContext &ctx;
    Addr slotBase;
    const std::vector<McSlotGroup> &groups;
    std::vector<McSlotGroup> &commitLog;
    std::size_t next = 0;
    std::size_t pos = 0;
    std::size_t streak = 0;
};

} // namespace

std::vector<std::vector<McSlotGroup>>
mcSlotStreams(const McSlotsConfig &cfg)
{
    panicIfNot(cfg.numCores >= 1 && cfg.numSlots >= 1 &&
                   cfg.writesPerGroup >= 1,
               "degenerate slot configuration");
    const std::size_t per_group =
        std::min(cfg.writesPerGroup, cfg.numSlots);

    std::vector<std::vector<McSlotGroup>> streams(cfg.numCores);
    for (std::size_t core = 0; core < cfg.numCores; ++core) {
        Rng rng(mix64(cfg.seed ^ (0xbeefULL + core)));
        auto &groups = streams[core];
        groups.reserve(cfg.groupsPerCore);
        for (std::size_t g = 0; g < cfg.groupsPerCore; ++g) {
            McSlotGroup grp;
            grp.core = core;
            std::unordered_set<std::size_t> taken;
            while (grp.writes.size() < per_group) {
                const std::size_t slot = rng.below(cfg.numSlots);
                if (!taken.insert(slot).second)
                    continue;
                const std::uint64_t value =
                    mix64Salted(((core + 1ULL) << 40) | (g << 20) |
                                    grp.writes.size(),
                                cfg.seed) |
                    1ULL;
                grp.writes.push_back({slot, value});
            }
            groups.push_back(std::move(grp));
        }
    }
    return streams;
}

McSlotsResult
runMcSlots(const McSlotsConfig &cfg, std::uint64_t crash_after_stores)
{
    SystemConfig sys_cfg = cfg.sys;
    sys_cfg.numCores = cfg.numCores;

    McMachine machine(sys_cfg);
    const Addr base = allocSlotRegion(machine.heap(), cfg.numSlots);
    const auto streams = mcSlotStreams(cfg);

    McSlotsResult result;
    std::vector<std::unique_ptr<McSlotsDriver>> drivers;
    std::vector<McCoreDriver *> ptrs;
    for (std::size_t i = 0; i < cfg.numCores; ++i) {
        drivers.push_back(std::make_unique<McSlotsDriver>(
            machine.context(i), base, streams[i], result.commitLog));
        ptrs.push_back(drivers.back().get());
    }

    const std::uint64_t stores_before = machine.storesExecuted();
    if (crash_after_stores > 0)
        machine.armCrashAfterStores(crash_after_stores);
    const McScheduleResult run =
        runInterleaved(machine, ptrs, cfg.sched);
    machine.armCrashAfterStores(0);

    result.crashed = run.crashed;
    result.quanta = run.quanta;
    result.storesExecuted = machine.storesExecuted() - stores_before;

    // A crashed machine recovers (undo replay rolls in-flight groups
    // back); a clean one quiesces so lazy/dirty data reaches PM. Both
    // leave the region's durable bytes equal to the commit log's
    // last-writer-wins image.
    if (result.crashed)
        machine.recover();
    else
        machine.quiesce();

    result.image.resize(cfg.numSlots * cacheLineSize);
    machine.pm().peek(base, result.image.data(), result.image.size());
    result.stats = machine.snapshot();
    return result;
}

std::vector<std::uint8_t>
serialSlotsImage(const McSlotsConfig &cfg,
                 const std::vector<McSlotGroup> &commit_log)
{
    SystemConfig sys_cfg = cfg.sys;
    sys_cfg.numCores = 1;

    PmSystem sys(sys_cfg);
    const Addr base = allocSlotRegion(sys.heap(), cfg.numSlots);
    for (const auto &grp : commit_log) {
        sys.txBegin();
        for (const auto &w : grp.writes)
            sys.write<std::uint64_t>(base + w.slot * cacheLineSize,
                                     w.value);
        sys.txCommit();
    }
    sys.quiesce();

    std::vector<std::uint8_t> image(cfg.numSlots * cacheLineSize);
    sys.peekBytes(base, image.data(), image.size());
    return image;
}

} // namespace slpmt
