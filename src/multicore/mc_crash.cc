#include "multicore/mc_crash.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <thread>

#include "checkpoint/checkpoint.hh"
#include "common/rng.hh"
#include "sim/json.hh"
#include "validate/work_queue.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{
namespace
{

/** Committed state (scheduler-commit order, last writer wins). */
using Shadow = std::map<std::uint64_t, std::vector<std::uint8_t>>;

constexpr std::size_t maxViolationsPerPhase = 4;

std::string
styleName(LoggingStyle style)
{
    return style == LoggingStyle::Undo ? "undo" : "redo";
}

std::string
hexKey(std::uint64_t key)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

std::string
reproTuple(const McCrashSweepConfig &cfg, std::uint64_t crash_point)
{
    return "(scheme=" + schemeName(cfg.scheme) +
           " style=" + styleName(cfg.style) +
           " workload=" + cfg.run.workload +
           " cores=" + std::to_string(cfg.run.numCores) +
           " seed=" + std::to_string(cfg.run.seed) +
           std::string(cfg.tinyCache ? " tiny_cache=1" : "") +
           " ckpt_interval=" + std::to_string(cfg.checkpointInterval) +
           " crash_point=" + std::to_string(crash_point) + ")";
}

/** The run configuration with scheme/style stamped in. */
McYcsbConfig
runConfigFor(const McCrashSweepConfig &cfg)
{
    McYcsbConfig rc = cfg.run;
    rc.sys.scheme = SchemeConfig::forKind(cfg.scheme);
    rc.sys.style = cfg.style;
    if (cfg.tinyCache) {
        rc.sys.hierarchy.l1 = CacheConfig{"L1", 1024, 2, 4};
        rc.sys.hierarchy.l2 = CacheConfig{"L2", 2048, 2, 12};
        rc.sys.hierarchy.l3 = CacheConfig{"L3", 4096, 4, 40};
    }
    return rc;
}

/** Oracle comparison of the recovered structure with the shadow. */
void
checkState(PmContext &ctx, Workload &wl, const Shadow &shadow,
           const std::vector<std::uint64_t> &absent_keys,
           const std::string &tuple, const std::string &phase,
           std::vector<std::string> &out)
{
    std::size_t added = 0;
    auto add = [&](const std::string &msg) {
        if (added < maxViolationsPerPhase)
            out.push_back(tuple + " " + phase + ": " + msg);
        else if (added == maxViolationsPerPhase)
            out.push_back(tuple + " " + phase +
                          ": further violations suppressed");
        ++added;
    };

    std::string why;
    if (!wl.checkConsistency(ctx, &why))
        add("structure invariant violated: " + why);

    const std::size_t n = wl.count(ctx);
    if (n != shadow.size())
        add("count mismatch: structure holds " + std::to_string(n) +
            ", oracle expects " + std::to_string(shadow.size()));

    std::vector<std::uint8_t> got;
    for (const auto &[key, value] : shadow) {
        got.clear();
        if (!wl.lookup(ctx, key, &got))
            add("committed key " + hexKey(key) + " missing");
        else if (got != value)
            add("value mismatch for committed key " + hexKey(key));
    }

    for (std::uint64_t key : absent_keys) {
        if (wl.lookup(ctx, key, nullptr))
            add("uncommitted key " + hexKey(key) + " visible");
    }
}

/**
 * From the crash (or run completion) onward, every path is the same:
 * power off if nothing fired, rebuild the shadow from the commit log,
 * recover, and run the oracle phases.
 */
void
finishPoint(const McCrashSweepConfig &cfg, const McYcsbConfig &rc,
            const std::string &tuple, McMachine &machine, Workload &wl,
            const std::vector<std::vector<McOpRecord>> &streams,
            const std::vector<McOpRecord> &commit_log, bool crashed,
            McCrashPointOutcome &out)
{
    const std::uint64_t crash_point = out.crashPoint;
    out.fired = crashed;
    out.committedOps = commit_log.size();

    // Power off after the run when the armed point never fired
    // (or for the explicit post-completion sentinel).
    if (!crashed)
        machine.crash();

    Shadow shadow;
    for (const auto &op : commit_log)
        shadow[op.key] = op.value;

    std::vector<std::uint64_t> absent;
    {
        std::set<std::uint64_t> keys;
        for (const auto &stream : streams)
            for (const auto &op : stream)
                keys.insert(op.key);
        for (std::uint64_t key : keys) {
            if (!shadow.count(key))
                absent.push_back(key);
        }
    }

    // Hardware replay of every core's log slice, then the
    // workload's user-level recovery (runs on core 0 — recovery
    // is single-threaded kernel/runtime work).
    out.replayedRecords = machine.recover();
    wl.recover(machine.context(0));
    checkState(machine.context(0), wl, shadow, absent, tuple,
               "post-recovery", out.violations);

    if (cfg.checkIdempotence) {
        const std::size_t again = machine.recover();
        if (again != 0)
            out.violations.push_back(
                tuple + " idempotence: second hardware recovery "
                        "replayed " +
                std::to_string(again) + " records");
        wl.recover(machine.context(0));
        checkState(machine.context(0), wl, shadow, absent, tuple,
                   "idempotence", out.violations);
    }

    // The structure must keep working: fresh even-keyed inserts
    // (stream keys are odd) spread across the cores.
    if (cfg.continuationOps > 0) {
        Rng rng(mix64(rc.seed) ^ (crash_point + 1));
        for (std::size_t i = 0; i < cfg.continuationOps; ++i) {
            std::uint64_t key;
            do {
                key = ((rng.next() >> 1) | 2ULL) &
                      ~static_cast<std::uint64_t>(1);
            } while (shadow.count(key));
            const auto value = ycsbValueFor(key, rc.valueBytes);
            wl.insert(machine.context(i % rc.numCores), key,
                      value);
            shadow[key] = value;
        }
        checkState(machine.context(0), wl, shadow, absent, tuple,
                   "continuation", out.violations);
    }

    out.stats = machine.snapshot();
}

/** Run one crash point against pre-generated streams (from scratch). */
McCrashPointOutcome
runPointOnStreams(const McCrashSweepConfig &cfg,
                  const std::vector<std::vector<McOpRecord>> &streams,
                  std::uint64_t crash_point)
{
    McCrashPointOutcome out;
    out.crashPoint = crash_point;
    const std::string tuple = reproTuple(cfg, crash_point);
    const McYcsbConfig rc = runConfigFor(cfg);

    try {
        SystemConfig sys_cfg = rc.sys;
        sys_cfg.numCores = rc.numCores;
        McMachine machine(sys_cfg);
        if (rc.policy)
            machine.setAnnotationPolicy(rc.policy);

        auto wl = makeWorkload(rc.workload);
        wl->setup(machine.context(0));

        std::vector<McOpRecord> commit_log;
        std::vector<std::unique_ptr<McYcsbDriver>> drivers;
        std::vector<McCoreDriver *> ptrs;
        for (std::size_t i = 0; i < rc.numCores; ++i) {
            drivers.push_back(std::make_unique<McYcsbDriver>(
                machine.context(i), *wl, streams[i], commit_log));
            ptrs.push_back(drivers.back().get());
        }

        if (crash_point > 0)
            machine.armCrashAfterStores(crash_point);
        const McScheduleResult run =
            runInterleaved(machine, ptrs, rc.sched);
        machine.armCrashAfterStores(0);
        finishPoint(cfg, rc, tuple, machine, *wl, streams, commit_log,
                    run.crashed, out);
    } catch (const std::exception &e) {
        out.violations.push_back(tuple + " exception: " + e.what());
    }
    return out;
}

/**
 * One node of the master run's checkpoint chain: the machine at a
 * quantum boundary plus everything host-side the boundary needs —
 * workload roots, per-driver cursors, the commit log so far, and the
 * scheduler's register file. Immutable after capture; workers fork
 * from it concurrently.
 */
struct McTraceCheckpoint
{
    std::shared_ptr<const MachineCheckpoint> machine;
    std::shared_ptr<const Workload> workload;
    std::vector<McOpRecord> commitLog;
    std::vector<std::size_t> cursors;
    McScheduleState sched;
    std::uint64_t storesAt = 0;
};

struct McCheckpointChain
{
    std::vector<McTraceCheckpoint> entries;
    std::uint64_t traceStores = 0;
};

/**
 * The master run: execute the interleaving once, dropping a
 * checkpoint at every quantum boundary that completes another
 * checkpointInterval stores (plus the entry boundary, so every crash
 * point has a base). Also yields the total store count, absorbing
 * the dry run.
 */
McCheckpointChain
buildMcChain(const McCrashSweepConfig &cfg,
             const std::vector<std::vector<McOpRecord>> &streams)
{
    McCheckpointChain chain;
    const McYcsbConfig rc = runConfigFor(cfg);
    SystemConfig sys_cfg = rc.sys;
    sys_cfg.numCores = rc.numCores;
    McMachine machine(sys_cfg);
    if (rc.policy)
        machine.setAnnotationPolicy(rc.policy);

    auto wl = makeWorkload(rc.workload);
    wl->setup(machine.context(0));

    std::vector<McOpRecord> commit_log;
    std::vector<std::unique_ptr<McYcsbDriver>> drivers;
    std::vector<McCoreDriver *> ptrs;
    for (std::size_t i = 0; i < rc.numCores; ++i) {
        drivers.push_back(std::make_unique<McYcsbDriver>(
            machine.context(i), *wl, streams[i], commit_log));
        ptrs.push_back(drivers.back().get());
    }

    const std::uint64_t base = machine.storesExecuted();
    const std::uint64_t interval =
        std::max<std::size_t>(cfg.checkpointInterval, 1);
    runInterleaved(machine, ptrs, rc.sched,
                   [&](const McScheduleState &st) {
                       const std::uint64_t stores =
                           machine.storesExecuted() - base;
                       if (!chain.entries.empty() &&
                           stores - chain.entries.back().storesAt <
                               interval)
                           return;
                       McTraceCheckpoint t;
                       t.machine =
                           std::make_shared<const MachineCheckpoint>(
                               MachineCheckpoint::capture(machine));
                       t.workload = wl->clone();
                       t.commitLog = commit_log;
                       for (const auto &d : drivers)
                           t.cursors.push_back(d->position());
                       t.sched = st;
                       t.storesAt = stores;
                       chain.entries.push_back(std::move(t));
                   });
    chain.traceStores = machine.storesExecuted() - base;
    return chain;
}

/**
 * Restore checkpoint @p ckpt and resume only the tail of the
 * interleaving up to @p crash_point (0 = run the interleaving out
 * and power off after completion).
 */
McCrashPointOutcome
runMcPointFromBase(const McCrashSweepConfig &cfg,
                   const std::vector<std::vector<McOpRecord>> &streams,
                   const McTraceCheckpoint &ckpt,
                   std::uint64_t crash_point)
{
    McCrashPointOutcome out;
    out.crashPoint = crash_point;
    const std::string tuple = reproTuple(cfg, crash_point);
    const McYcsbConfig rc = runConfigFor(cfg);

    try {
        SystemConfig sys_cfg = rc.sys;
        sys_cfg.numCores = rc.numCores;
        McMachine machine(sys_cfg);
        if (rc.policy)
            machine.setAnnotationPolicy(rc.policy);

        // No setup(): the restore rewrites the whole machine (site
        // registry included) and the cloned workload carries the
        // roots.
        auto wl = ckpt.workload->clone();
        ckpt.machine->restore(machine);

        std::vector<McOpRecord> commit_log = ckpt.commitLog;
        std::vector<std::unique_ptr<McYcsbDriver>> drivers;
        std::vector<McCoreDriver *> ptrs;
        for (std::size_t i = 0; i < rc.numCores; ++i) {
            drivers.push_back(std::make_unique<McYcsbDriver>(
                machine.context(i), *wl, streams[i], commit_log));
            drivers.back()->resumeAt(ckpt.cursors[i]);
            ptrs.push_back(drivers.back().get());
        }

        if (crash_point > 0)
            machine.armCrashAfterStores(crash_point - ckpt.storesAt);
        const McScheduleResult run =
            runInterleavedFrom(machine, ptrs, rc.sched, ckpt.sched);
        machine.armCrashAfterStores(0);
        finishPoint(cfg, rc, tuple, machine, *wl, streams, commit_log,
                    run.crashed, out);
    } catch (const std::exception &e) {
        out.violations.push_back(tuple + " exception: " + e.what());
    }
    return out;
}

/**
 * Run one crash point by restoring the nearest checkpoint strictly
 * below it and resuming only the tail of the interleaving. Point 0
 * (post-completion) resumes the last checkpoint and runs the
 * interleaving out.
 */
McCrashPointOutcome
runPointFromChain(const McCrashSweepConfig &cfg,
                  const std::vector<std::vector<McOpRecord>> &streams,
                  const McCheckpointChain &chain,
                  std::uint64_t crash_point)
{
    const McTraceCheckpoint *ckpt = &chain.entries.front();
    for (const auto &entry : chain.entries) {
        if (crash_point == 0 || entry.storesAt < crash_point)
            ckpt = &entry;
        else
            break;
    }
    return runMcPointFromBase(cfg, streams, *ckpt, crash_point);
}

std::vector<std::uint64_t> enumeratePoints(const McCrashSweepConfig &cfg,
                                           std::uint64_t total_stores);

/**
 * Shared state of the pipelined exhaustive sweep (mirrors the
 * single-core TailPipeline): the master interleaving publishes
 * checkpoints and its store frontier at every quantum boundary, and
 * tail workers resume crash points concurrently with the build. Point
 * k's base — the nearest checkpoint strictly below k — is final as
 * soon as the frontier reaches k, because every later checkpoint
 * lands at a store count >= the frontier.
 */
struct McTailPipeline
{
    std::mutex mtx;
    std::condition_variable cv;
    std::deque<McTraceCheckpoint> entries;
    std::uint64_t frontier = 0;
    std::uint64_t traceStores = 0;
    bool done = false;
    std::exception_ptr error;
};

/** The master interleaving of the pipelined sweep (same drop rule as
 *  buildMcChain, published incrementally). */
void
runMcPipelineMaster(const McCrashSweepConfig &cfg,
                    const std::vector<std::vector<McOpRecord>> &streams,
                    McTailPipeline &pipe)
{
    try {
        const McYcsbConfig rc = runConfigFor(cfg);
        SystemConfig sys_cfg = rc.sys;
        sys_cfg.numCores = rc.numCores;
        McMachine machine(sys_cfg);
        if (rc.policy)
            machine.setAnnotationPolicy(rc.policy);

        auto wl = makeWorkload(rc.workload);
        wl->setup(machine.context(0));

        std::vector<McOpRecord> commit_log;
        std::vector<std::unique_ptr<McYcsbDriver>> drivers;
        std::vector<McCoreDriver *> ptrs;
        for (std::size_t i = 0; i < rc.numCores; ++i) {
            drivers.push_back(std::make_unique<McYcsbDriver>(
                machine.context(i), *wl, streams[i], commit_log));
            ptrs.push_back(drivers.back().get());
        }

        const std::uint64_t base = machine.storesExecuted();
        const std::uint64_t interval =
            std::max<std::size_t>(cfg.checkpointInterval, 1);
        bool have_dropped = false;
        std::uint64_t last_drop_stores = 0;
        runInterleaved(
            machine, ptrs, rc.sched, [&](const McScheduleState &st) {
                const std::uint64_t stores =
                    machine.storesExecuted() - base;
                if (!have_dropped ||
                    stores - last_drop_stores >= interval) {
                    McTraceCheckpoint t;
                    t.machine =
                        std::make_shared<const MachineCheckpoint>(
                            MachineCheckpoint::capture(machine));
                    t.workload = wl->clone();
                    t.commitLog = commit_log;
                    for (const auto &d : drivers)
                        t.cursors.push_back(d->position());
                    t.sched = st;
                    t.storesAt = stores;
                    have_dropped = true;
                    last_drop_stores = stores;
                    std::lock_guard<std::mutex> lock(pipe.mtx);
                    pipe.entries.push_back(std::move(t));
                }
                {
                    std::lock_guard<std::mutex> lock(pipe.mtx);
                    pipe.frontier = stores;
                }
                pipe.cv.notify_all();
            });
        {
            std::lock_guard<std::mutex> lock(pipe.mtx);
            pipe.traceStores = machine.storesExecuted() - base;
            pipe.done = true;
        }
    } catch (...) {
        std::lock_guard<std::mutex> lock(pipe.mtx);
        pipe.error = std::current_exception();
        pipe.done = true;
    }
    pipe.cv.notify_all();
}

/** The pipelined exhaustive sweep (maxPoints == 0); sampled sweeps
 *  keep the two-phase shape because stratification needs the total
 *  store count before any point can be enumerated. */
void
runMcPipelinedSweep(const McCrashSweepConfig &cfg,
                    const std::vector<std::vector<McOpRecord>> &streams,
                    McCrashSweepReport &report)
{
    McTailPipeline pipe;
    std::mutex results_mtx;
    std::map<std::uint64_t, McCrashPointOutcome> results;
    std::atomic<std::uint64_t> ticket{1};

    auto worker = [&]() {
        for (;;) {
            const std::uint64_t k = ticket.fetch_add(1);
            const McTraceCheckpoint *ckpt = nullptr;
            std::uint64_t point = k;
            {
                std::unique_lock<std::mutex> lock(pipe.mtx);
                pipe.cv.wait(lock, [&] {
                    return pipe.done || pipe.frontier >= k;
                });
                if (pipe.done && pipe.error)
                    return;
                if (pipe.done && k > pipe.traceStores) {
                    if (!cfg.crashAfterCompletion ||
                        k != pipe.traceStores + 1)
                        return;
                    point = 0;
                    ckpt = &pipe.entries.back();
                } else {
                    ckpt = &pipe.entries.front();
                    for (const auto &entry : pipe.entries) {
                        if (entry.storesAt < k)
                            ckpt = &entry;
                        else
                            break;
                    }
                }
            }
            McCrashPointOutcome out =
                runMcPointFromBase(cfg, streams, *ckpt, point);
            std::lock_guard<std::mutex> lock(results_mtx);
            results[point] = std::move(out);
            if (point == 0)
                return;
        }
    };

    std::vector<std::thread> threads;
    const std::size_t workers = std::max<std::size_t>(cfg.workers, 1);
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        threads.emplace_back(worker);
    runMcPipelineMaster(cfg, streams, pipe);
    worker();  // the finished master joins the replay pool
    for (auto &t : threads)
        t.join();
    if (pipe.error)
        std::rethrow_exception(pipe.error);

    report.traceStores = pipe.traceStores;
    const auto points = enumeratePoints(cfg, report.traceStores);
    report.points.reserve(points.size());
    for (std::uint64_t p : points)
        report.points.push_back(std::move(results.at(p)));
}

/** Stratified point enumeration (mirrors the single-core sweep). */
std::vector<std::uint64_t>
enumeratePoints(const McCrashSweepConfig &cfg,
                std::uint64_t total_stores)
{
    std::vector<std::uint64_t> points;
    const std::uint64_t total = total_stores;
    if (total > 0) {
        if (cfg.maxPoints == 0 || total <= cfg.maxPoints) {
            for (std::uint64_t k = 1; k <= total; ++k)
                points.push_back(k);
        } else {
            Rng rng(mix64(cfg.run.seed ^ 0xc5a5c5a5c5a5c5a5ULL));
            const std::uint64_t strata = cfg.maxPoints;
            for (std::uint64_t s = 0; s < strata; ++s) {
                const std::uint64_t lo = 1 + s * total / strata;
                const std::uint64_t hi = 1 + (s + 1) * total / strata;
                points.push_back(hi > lo ? lo + rng.below(hi - lo)
                                         : lo);
            }
            points.front() = 1;
            points.back() = total;
            std::sort(points.begin(), points.end());
            points.erase(std::unique(points.begin(), points.end()),
                         points.end());
        }
    }
    if (cfg.crashAfterCompletion)
        points.push_back(0);
    return points;
}

} // namespace

std::uint64_t
countMcTraceStores(const McCrashSweepConfig &cfg)
{
    const McYcsbConfig rc = runConfigFor(cfg);
    SystemConfig sys_cfg = rc.sys;
    sys_cfg.numCores = rc.numCores;
    McMachine machine(sys_cfg);
    if (rc.policy)
        machine.setAnnotationPolicy(rc.policy);

    auto wl = makeWorkload(rc.workload);
    wl->setup(machine.context(0));

    const auto streams = mcYcsbStreams(rc);
    std::vector<McOpRecord> commit_log;
    std::vector<std::unique_ptr<McYcsbDriver>> drivers;
    std::vector<McCoreDriver *> ptrs;
    for (std::size_t i = 0; i < rc.numCores; ++i) {
        drivers.push_back(std::make_unique<McYcsbDriver>(
            machine.context(i), *wl, streams[i], commit_log));
        ptrs.push_back(drivers.back().get());
    }
    const std::uint64_t base = machine.storesExecuted();
    runInterleaved(machine, ptrs, rc.sched);
    return machine.storesExecuted() - base;
}

McCrashPointOutcome
runMcCrashPoint(const McCrashSweepConfig &cfg,
                std::uint64_t crash_point)
{
    return runPointOnStreams(cfg, mcYcsbStreams(runConfigFor(cfg)),
                             crash_point);
}

McCrashSweepReport
runMcCrashSweep(const McCrashSweepConfig &cfg)
{
    McCrashSweepReport report;
    report.config = cfg;

    const auto streams = mcYcsbStreams(runConfigFor(cfg));
    if (cfg.useCheckpoints && cfg.maxPoints == 0) {
        // Exhaustive sweep: every interleaved store is a point, so
        // the tail replays can start while the master interleaving is
        // still building the checkpoint chain.
        runMcPipelinedSweep(cfg, streams, report);
    } else if (cfg.useCheckpoints) {
        const McCheckpointChain chain = buildMcChain(cfg, streams);
        report.traceStores = chain.traceStores;
        const auto points = enumeratePoints(cfg, report.traceStores);
        report.points.resize(points.size());
        runWorkStealing(std::max<std::size_t>(cfg.workers, 1),
                        points.size(), [&](std::size_t i) {
                            report.points[i] = runPointFromChain(
                                cfg, streams, chain, points[i]);
                        });
    } else {
        report.traceStores = countMcTraceStores(cfg);
        const auto points = enumeratePoints(cfg, report.traceStores);
        report.points.resize(points.size());
        runWorkStealing(std::max<std::size_t>(cfg.workers, 1),
                        points.size(), [&](std::size_t i) {
                            report.points[i] = runPointOnStreams(
                                cfg, streams, points[i]);
                        });
    }
    return report;
}

std::size_t
McCrashSweepReport::violationCount() const
{
    std::size_t n = 0;
    for (const auto &p : points)
        n += p.violations.size();
    return n;
}

std::uint64_t
McCrashSweepReport::replayedRecordsTotal() const
{
    std::uint64_t n = 0;
    for (const auto &p : points)
        n += p.replayedRecords;
    return n;
}

std::string
McCrashSweepReport::violationsText() const
{
    std::string text;
    for (const auto &p : points) {
        for (const auto &v : p.violations) {
            text += v;
            text += '\n';
        }
    }
    return text;
}

std::string
McCrashSweepReport::summaryText() const
{
    std::size_t fired = 0;
    for (const auto &p : points)
        fired += p.fired ? 1 : 0;
    std::string text;
    text += "mc-crash-sweep scheme=" + schemeName(config.scheme) +
            " style=" + styleName(config.style) +
            " workload=" + config.run.workload +
            " cores=" + std::to_string(config.run.numCores) +
            " seed=" + std::to_string(config.run.seed) + "\n";
    text += "  trace_stores=" + std::to_string(traceStores) +
            " points=" + std::to_string(pointsExplored()) +
            " fired=" + std::to_string(fired) +
            " replayed_records=" +
            std::to_string(replayedRecordsTotal()) +
            " violations=" + std::to_string(violationCount()) + "\n";
    text += violationsText();
    return text;
}

std::string
McCrashSweepReport::toJson() const
{
    // Sum the per-point stats into one sweep-level view (addition
    // commutes, so this is worker-count independent).
    StatsSnapshot aggregate;
    std::size_t fired = 0;
    for (const auto &p : points) {
        fired += p.fired ? 1 : 0;
        for (const auto &[name, value] : p.stats)
            aggregate[name] += value;
    }

    JsonWriter w;
    w.beginObject();
    w.key("scheme").value(schemeName(config.scheme));
    w.key("style").value(styleName(config.style));
    w.key("workload").value(config.run.workload);
    w.key("cores").value(config.run.numCores);
    w.key("seed").value(config.run.seed);
    w.key("tiny_cache").value(config.tinyCache);
    w.key("trace_stores").value(traceStores);
    w.key("points_explored").value(pointsExplored());
    w.key("points_fired").value(fired);
    w.key("violations").value(violationCount());
    w.key("replayed_records").value(replayedRecordsTotal());
    w.key("ckpt_interval").value(config.checkpointInterval);

    w.key("violation_lines").beginArray();
    for (const auto &p : points) {
        for (const auto &v : p.violations)
            w.value(v);
    }
    w.endArray();

    w.key("stats").beginObject();
    for (const auto &[name, value] : aggregate)
        w.key(name).value(value);
    w.endObject();

    w.key("points").beginArray();
    for (const auto &p : points) {
        w.beginObject();
        w.key("crash_point").value(p.crashPoint);
        w.key("fired").value(p.fired);
        w.key("committed_ops").value(p.committedOps);
        w.key("replayed_records").value(p.replayedRecords);
        w.key("violations").value(p.violations.size());
        w.endObject();
    }
    w.endArray();

    w.endObject();
    return w.str();
}

} // namespace slpmt
