#include "multicore/mc_ycsb.hh"

#include <map>
#include <unordered_set>

#include "common/rng.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{

std::vector<std::vector<McOpRecord>>
mcYcsbStreams(const McYcsbConfig &cfg)
{
    panicIfNot(cfg.numCores >= 1, "at least one core");

    // The shared key pool is drawn first so it is identical for every
    // core count with the same seed.
    Rng pool_rng(mix64(cfg.seed ^ 0x5a11ed'5a11ed5aULL));
    std::unordered_set<std::uint64_t> used;
    std::vector<std::uint64_t> shared;
    while (shared.size() < cfg.sharedKeys) {
        const std::uint64_t key = (pool_rng.next() >> 1) | 1ULL;
        if (used.insert(key).second)
            shared.push_back(key);
    }

    std::vector<std::vector<McOpRecord>> streams(cfg.numCores);
    for (std::size_t core = 0; core < cfg.numCores; ++core) {
        Rng rng(mix64(cfg.seed ^ (0x1000ULL + core)));
        auto &ops = streams[core];
        ops.reserve(cfg.opsPerCore);
        while (ops.size() < cfg.opsPerCore) {
            const bool hit_shared =
                !shared.empty() &&
                static_cast<unsigned>(rng.below(100)) < cfg.sharedPct;
            if (hit_shared) {
                const std::uint64_t key =
                    shared[rng.below(shared.size())];
                // A value unique to this (core, ordinal) touch, so the
                // final contents pin which upsert committed last.
                const std::uint64_t salt = mix64Salted(
                    (core << 32) | ops.size(), 0xc0deULL);
                ops.push_back({core, key,
                               ycsbValueFor(key ^ salt,
                                            cfg.valueBytes)});
            } else {
                const std::uint64_t key = (rng.next() >> 1) | 1ULL;
                if (!used.insert(key).second)
                    continue;  // keep private keys globally distinct
                ops.push_back({core, key,
                               ycsbValueFor(key, cfg.valueBytes)});
            }
        }
    }
    return streams;
}

namespace
{

/** Verify a structure against the last-write-wins image of a log. */
bool
verifyAgainstLog(Workload &wl, PmContext &ctx,
                 const std::vector<McOpRecord> &log, std::string *why)
{
    std::map<std::uint64_t, const std::vector<std::uint8_t> *> expected;
    for (const auto &op : log)
        expected[op.key] = &op.value;

    std::string inner;
    if (!wl.checkConsistency(ctx, &inner))
        return failCheck(why, "consistency: " + inner);
    std::vector<std::uint8_t> got;
    for (const auto &[key, value] : expected) {
        if (!wl.lookup(ctx, key, &got))
            return failCheck(why,
                             "missing key " + std::to_string(key));
        if (got != *value)
            return failCheck(why,
                             "value mismatch at key " +
                                 std::to_string(key));
    }
    if (wl.count(ctx) != expected.size())
        return failCheck(why, "count mismatch");
    return true;
}

} // namespace

McYcsbResult
runMcYcsb(const McYcsbConfig &cfg)
{
    SystemConfig sys_cfg = cfg.sys;
    sys_cfg.numCores = cfg.numCores;

    McMachine machine(sys_cfg);
    if (cfg.policy)
        machine.setAnnotationPolicy(cfg.policy);

    auto workload = makeWorkload(cfg.workload);
    workload->setup(machine.context(0));

    const auto streams = mcYcsbStreams(cfg);

    McYcsbResult result;
    std::vector<std::unique_ptr<McYcsbDriver>> drivers;
    std::vector<McCoreDriver *> ptrs;
    for (std::size_t i = 0; i < cfg.numCores; ++i) {
        drivers.push_back(std::make_unique<McYcsbDriver>(
            machine.context(i), *workload, streams[i],
            result.commitLog));
        ptrs.push_back(drivers.back().get());
    }

    // Setup ran on core 0, so per-core clocks are uneven; measure each
    // core's own delta and report the slowest (the makespan).
    std::vector<Cycles> start;
    for (std::size_t i = 0; i < cfg.numCores; ++i)
        start.push_back(machine.core(i).engine().now());
    result.statsBefore = machine.snapshot();

    const McScheduleResult run = runInterleaved(machine, ptrs,
                                                cfg.sched);
    result.quanta = run.quanta;
    result.crashed = run.crashed;
    result.statsAfter = machine.snapshot();
    for (std::size_t i = 0; i < cfg.numCores; ++i)
        result.makespan =
            std::max(result.makespan,
                     machine.core(i).engine().now() - start[i]);

    if (result.crashed) {
        result.failure = "crashed mid-stream";
        return result;
    }

    // Verification (outside the measured window). Lazy data stays
    // volatile — exactly as the single-core runner leaves it.
    result.verified = verifyAgainstLog(*workload, machine.context(0),
                                       result.commitLog,
                                       &result.failure);
    return result;
}

bool
replaySerialOracle(const McYcsbConfig &cfg,
                   const std::vector<McOpRecord> &commit_log,
                   std::string *why)
{
    SystemConfig sys_cfg = cfg.sys;
    sys_cfg.numCores = 1;

    PmSystem sys(sys_cfg);
    if (cfg.policy)
        sys.setAnnotationPolicy(cfg.policy);

    auto workload = makeWorkload(cfg.workload);
    workload->setup(sys);
    for (const auto &op : commit_log)
        if (!workload->update(sys, op.key, op.value))
            workload->insert(sys, op.key, op.value);
    return verifyAgainstLog(*workload, sys, commit_log, why);
}

ExperimentResult
runMcExperiment(const std::string &workload_name,
                const ExperimentConfig &cfg)
{
    McYcsbConfig mc;
    mc.workload = workload_name;
    mc.numCores = cfg.numCores ? cfg.numCores : 1;
    mc.opsPerCore =
        std::max<std::size_t>(1, cfg.ycsb.numOps / mc.numCores);
    mc.valueBytes = cfg.ycsb.valueBytes;
    mc.seed = cfg.ycsb.seed;
    mc.sharedPct = cfg.mcSharedPct;
    mc.sched.seed = cfg.ycsb.seed;
    mc.sched.quantumOps = cfg.mcQuantumOps;

    mc.sys.scheme = SchemeConfig::forKind(cfg.scheme);
    mc.sys.scheme.speculativeRounding = cfg.speculativeRounding;
    mc.sys.scheme.numTxnIds = cfg.numTxnIds;
    mc.sys.style = cfg.style;
    mc.sys.pm.writeLatencyNs = cfg.pmWriteLatencyNs;
    mc.sys.useMetaIndex = cfg.useMetaIndex;
    mc.sys.layoutAudit = cfg.layoutAudit;

    static const NullAnnotationPolicy null_policy;
    static const ManualAnnotationPolicy manual_policy;
    static const CompilerAnnotationPolicy compiler_policy;
    switch (cfg.annotations) {
      case AnnotationMode::None:
        mc.policy = &null_policy;
        break;
      case AnnotationMode::Manual:
        mc.policy = &manual_policy;
        break;
      case AnnotationMode::Compiler:
        mc.policy = &compiler_policy;
        break;
    }

    const McYcsbResult run = runMcYcsb(mc);

    ExperimentResult result;
    result.workload = workload_name;
    result.scheme = cfg.scheme;
    result.cycles = run.makespan;
    const StatsSnapshot delta =
        StatsRegistry::delta(run.statsBefore, run.statsAfter);

    // Shared-device counters appear once under their plain name;
    // engine counters appear per core under "coreN.". Summing exact
    // and ".name"-suffixed matches covers both.
    auto sum = [&](const std::string &name) {
        const std::string dotted = "." + name;
        std::uint64_t total = 0;
        for (const auto &[key, value] : delta)
            if (key == name || key.ends_with(dotted))
                total += value;
        return total;
    };
    result.pmWriteBytes = sum("pm.bytesWritten");
    result.pmDataBytes = sum("pm.dataBytesWritten");
    result.pmLogBytes = sum("pm.logBytesWritten");
    result.commits = sum("txn.committed");
    result.logRecords = sum("txn.logRecordsCreated");
    result.stats = delta;
    result.verified = run.verified;
    result.failure = run.failure;
    return result;
}

} // namespace slpmt
