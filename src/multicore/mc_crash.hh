/**
 * @file
 * Multicore crash-point sweep (recovery fuzzing of the interleaved
 * machine).
 *
 * Extends the single-core crash explorer's methodology to the
 * multicore machine: the seeded interleaved YCSB run is executed once
 * on a master machine that counts its store/storeT instructions and
 * drops a whole-machine checkpoint (plus driver cursors, the commit
 * log so far, and the scheduler's register file) at quantum
 * boundaries every checkpointInterval stores; the sweep enumerates
 * crash points over the store range (stratified when budgeted, plus
 * the post-completion point with lazy data still volatile), and each
 * point restores the nearest checkpoint into a fresh machine, resumes
 * the identical interleaving for only the tail, fires the
 * machine-wide power failure at exactly that store, recovers every
 * core's log slice plus the workload's user-level recovery, and
 * checks the survivors against the scheduler-commit-order shadow map:
 * committed upserts readable with their committed values, interrupted
 * ops invisible, invariants intact, recovery idempotent, and the
 * structure still writable afterwards. Restores are bit-exact, so the
 * report is byte-identical to the from-scratch O(P·T) path, which
 * survives as the --no-checkpoint audit mode.
 *
 * Points are independent machines, so the sweep reuses the
 * work-stealing pool; violation reports are bit-identical for any
 * worker count.
 */

#ifndef SLPMT_MULTICORE_MC_CRASH_HH
#define SLPMT_MULTICORE_MC_CRASH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "multicore/mc_ycsb.hh"

namespace slpmt
{

/** Everything configurable about one multicore sweep. */
struct McCrashSweepConfig
{
    SchemeKind scheme = SchemeKind::SLPMT;
    LoggingStyle style = LoggingStyle::Undo;

    /** The interleaved run to crash (its sys scheme/style fields are
     *  overwritten from the two knobs above). */
    McYcsbConfig run;

    /** Crash-point budget; 0 explores every store. */
    std::size_t maxPoints = 0;

    /** Shrink every cache level so mid-transaction evictions push
     *  data (and with it, persisted log records) to PM before the
     *  crash — the points where recovery actually replays. */
    bool tinyCache = false;

    /** Also crash once after the full run (lazy data still cached). */
    bool crashAfterCompletion = true;

    bool checkIdempotence = true;
    std::size_t continuationOps = 2;

    /** Worker threads for the sweep (real threads — each point owns
     *  its machine; the simulated cores stay deterministic). */
    std::size_t workers = 1;

    /** Stores between master-run checkpoints (see file comment);
     *  part of the repro tuple. */
    std::size_t checkpointInterval = 64;

    /** Audit mode: false re-runs every point from scratch. */
    bool useCheckpoints = true;
};

/** Outcome of one explored multicore crash point. */
struct McCrashPointOutcome
{
    std::uint64_t crashPoint = 0;  //!< 0 = post-completion point
    bool fired = false;
    std::size_t committedOps = 0;  //!< ops committed before the crash
    std::size_t replayedRecords = 0;
    std::vector<std::string> violations;
    StatsSnapshot stats;
};

/** Aggregated result of a multicore sweep. */
struct McCrashSweepReport
{
    McCrashSweepConfig config;
    std::uint64_t traceStores = 0;
    std::vector<McCrashPointOutcome> points;

    std::size_t pointsExplored() const { return points.size(); }
    std::size_t violationCount() const;
    std::uint64_t replayedRecordsTotal() const;

    /** Deterministic violation listing (one repro line each). */
    std::string violationsText() const;

    /** Deterministic human-readable summary for the sweep binary. */
    std::string summaryText() const;

    /**
     * Deterministic machine-readable report (no timing or worker
     * fields): byte-identical between the checkpointed sweep and the
     * --no-checkpoint audit sweep.
     */
    std::string toJson() const;
};

/** Run one sweep: dry-run, enumerate, explore (possibly parallel). */
McCrashSweepReport runMcCrashSweep(const McCrashSweepConfig &cfg);

/** Re-run a single point in isolation (the repro handle). */
McCrashPointOutcome runMcCrashPoint(const McCrashSweepConfig &cfg,
                                    std::uint64_t crash_point);

/** Dry-run the interleaving and count its stores. */
std::uint64_t countMcTraceStores(const McCrashSweepConfig &cfg);

} // namespace slpmt

#endif // SLPMT_MULTICORE_MC_CRASH_HH
