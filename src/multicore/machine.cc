#include "multicore/machine.hh"

namespace slpmt
{

// ---------------------------------------------------------------------
// McCore
// ---------------------------------------------------------------------

McCore::McCore(McMachine &machine, std::size_t id,
               const SystemConfig &cfg, Cache &shared_l3, PmDevice &pm,
               DramDevice &dram, Addr log_base, Bytes log_size,
               std::uint64_t *seq_counter, std::uint64_t *crash_countdown)
    : machine(machine),
      coreId(id),
      hier(cfg.hierarchy, cfg.map, pm, dram, coreStats, shared_l3),
      eng(cfg.scheme, cfg.style, cfg.map, hier, pm, coreStats, log_base,
          log_size),
      ctrRemoteSigHit(coreStats.counter("txn.lazyDrain.remoteSigHit")),
      ctrRemoteIdObserved(
          coreStats.counter("txn.lazyDrain.remoteIdObserved"))
{
    hier.setMetaIndexEnabled(cfg.useMetaIndex);
    if (cfg.layoutAudit != LayoutAudit::Default)
        hier.setMetaIndexAudit(cfg.layoutAudit == LayoutAudit::On);
    hier.setRemoteFolder(&machine);
    eng.setSharedSeqCounter(seq_counter);
    eng.setSharedCrashCountdown(crash_countdown);
}

void
McCore::probeRange(Addr addr, std::size_t len, bool is_write)
{
    if (len == 0 || machine.numCores() == 1)
        return;
    const Addr last = lineBase(addr + len - 1);
    for (Addr line = lineBase(addr); line <= last; line += cacheLineSize)
        eng.advance(machine.beforeLineAccess(coreId, line, is_write));
}

void
McCore::readBytes(Addr addr, void *out, std::size_t len)
{
    probeRange(addr, len, false);
    eng.load(addr, out, len);
}

void
McCore::writeBytes(Addr addr, const void *src, std::size_t len)
{
    probeRange(addr, len, true);
    eng.store(addr, src, len);
}

void
McCore::writeBytesT(Addr addr, const void *src, std::size_t len,
                    StoreFlags flags)
{
    probeRange(addr, len, true);
    eng.storeT(addr, src, len, flags);
}

void
McCore::writeBytesSite(Addr addr, const void *src, std::size_t len,
                       SiteId site)
{
    probeRange(addr, len, true);
    eng.storeT(addr, src, len,
               machine.annotationPolicy().flagsFor(
                   machine.sites().info(site)));
}

void
McCore::peekBytes(Addr addr, void *out, std::size_t len) const
{
    machine.pm().peek(addr, out, len);
}

PersistentHeap &
McCore::heap()
{
    return machine.heap();
}

StoreSiteRegistry &
McCore::sites()
{
    return machine.sites();
}

const AddressMap &
McCore::map() const
{
    return machine.map();
}

void
McCore::quiesce()
{
    machine.quiesce();
}

// ---------------------------------------------------------------------
// McMachine
// ---------------------------------------------------------------------

McMachine::McMachine(const SystemConfig &cfg)
    : config(cfg),
      pmDev(config.pm, shared, tracker),
      dramDev(config.dram, shared),
      sharedL3(config.hierarchy.l3),
      pmHeap(config.map.heapBase() + rootDirBytes,
             config.map.heapSize() - rootDirBytes, shared),
      statProbes(shared.counter("multicore.probes")),
      statRemoteHits(shared.counter("multicore.remoteHits")),
      statInvalidations(shared.counter("multicore.invalidations")),
      statDowngrades(shared.counter("multicore.downgrades")),
      statConflictAborts(shared.counter("multicore.conflictAborts")),
      statCtxSwitchDrains(shared.counter("multicore.ctxSwitchDrains")),
      statRemoteSigHitDrains(
          shared.counter("multicore.remoteDrains.sigHit")),
      statRemoteIdObservedDrains(
          shared.counter("multicore.remoteDrains.idObserved"))
{
    panicIfNot(config.numCores >= 1 && config.numCores <= 16,
               "McMachine supports 1 to 16 cores");
    policy = &manualPolicy;

    // Carve the persistent log area into per-core, line-aligned
    // slices so concurrent engines never interleave records.
    const Bytes slice =
        (config.map.logAreaSize() / config.numCores) &
        ~static_cast<Bytes>(cacheLineSize - 1);
    panicIfNot(slice >= 64 * 1024,
               "log area too small for per-core slices");
    for (std::size_t i = 0; i < config.numCores; ++i)
        cores.push_back(std::make_unique<McCore>(
            *this, i, config, sharedL3, pmDev, dramDev,
            config.map.logAreaBase() + i * slice, slice, &seqCounter,
            &crashCountdown));
}

Cycles
McMachine::beforeLineAccess(std::size_t requester, Addr line_addr,
                            bool is_write)
{
    Cycles xfer = 0;
    for (std::size_t j = 0; j < cores.size(); ++j) {
        if (j == requester)
            continue;
        McCore &peer = *cores[j];
        TxnEngine &eng = peer.engine();
        statProbes++;

        // Cross-transaction observation rules first (Section III-C3
        // through the directory): the peer drains lazy transactions
        // whose signature or line txn-ID the probe observed.
        const std::uint64_t sig_before = peer.remoteSigHitDrains();
        const std::uint64_t own_before = peer.remoteIdObservedDrains();
        const bool conflict = eng.remoteObserve(line_addr, is_write);
        statRemoteSigHitDrains +=
            peer.remoteSigHitDrains() - sig_before;
        statRemoteIdObservedDrains +=
            peer.remoteIdObservedDrains() - own_before;

        // A probe that met the peer's in-flight transaction is a
        // conflict; the requester (currently scheduled) wins and the
        // suspended peer aborts, replaying its undo log.
        if (conflict) {
            statConflictAborts++;
            if (eng.inTransaction())
                eng.txAbort();
            if (conflictHandler)
                conflictHandler(j);
        }

        // MESI side: a remote store invalidates the peer's copy; a
        // remote load takes dirty or metadata-bearing copies away
        // (modelled as a surrender into the shared L3 — the ordinary
        // eviction path, so log-bit aggregation and eviction-client
        // drains apply unchanged). Clean, metadata-free copies stay
        // put on loads.
        if (CacheLine *line = peer.hierarchy().findPrivate(line_addr)) {
            statRemoteHits++;
            xfer += remoteTransferCycles;
            if (is_write || line->dirty || line->hasTxnMeta()) {
                if (is_write)
                    statInvalidations++;
                else
                    statDowngrades++;
                eng.advance(peer.hierarchy().surrenderPrivate(
                    line_addr, eng.now()));
            }
        }
    }
    return xfer;
}

void
McMachine::noteQuantumExpiry(std::size_t core, bool drain)
{
    if (!drain)
        return;
    statCtxSwitchDrains++;
    cores[core]->engine().contextSwitch();
}

void
McMachine::crash()
{
    // Engine crash is idempotent (the injected-crash path already
    // crashed the firing core); each call clears that core's caches,
    // buffers and IDs. The shared L3 and PM WPQ are cleared
    // repeatedly, which is harmless.
    for (auto &core : cores)
        core->engine().crash();
    dramDev.crash();
}

std::uint64_t
McMachine::storesExecuted() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores)
        total += core->engine().storesExecuted();
    return total;
}

std::size_t
McMachine::recover()
{
    std::size_t applied = 0;
    for (auto &core : cores)
        applied += core->engine().recover();
    return applied;
}

void
McMachine::quiesce()
{
    // Lazy data and private lines drain per core first; the shared L3
    // flushes once afterwards (its remote folds are then no-ops).
    for (auto &core : cores)
        core->engine().persistAllLazy();
    for (auto &core : cores) {
        TxnEngine &eng = core->engine();
        eng.advance(core->hierarchy().flushPrivate(eng.now()));
    }
    TxnEngine &eng0 = cores.front()->engine();
    eng0.advance(cores.front()->hierarchy().flushShared(eng0.now()));
}

StatsSnapshot
McMachine::snapshot() const
{
    StatsSnapshot merged = shared.snapshot();
    for (std::size_t i = 0; i < cores.size(); ++i) {
        const std::string prefix = "core" + std::to_string(i) + ".";
        for (const auto &[name, value] : cores[i]->stats().snapshot())
            merged[prefix + name] = value;
    }
    return merged;
}

Cycles
McMachine::makespan() const
{
    Cycles max = 0;
    for (const auto &core : cores)
        max = std::max(max, core->engine().now());
    return max;
}

Cycles
McMachine::foldRemotePrivate(CacheHierarchy &evictor, CacheLine &victim,
                             Cycles now)
{
    Cycles latency = 0;
    for (auto &core : cores) {
        CacheHierarchy &hier = core->hierarchy();
        if (&hier != &evictor)
            latency += hier.foldPrivateInto(victim, now);
    }
    return latency;
}

} // namespace slpmt
