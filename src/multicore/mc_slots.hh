/**
 * @file
 * Slot-store differential driver: byte-image equivalence fuzzing.
 *
 * The KV workloads allocate from the shared heap, so their layout
 * depends on the interleaving and a multicore run can only be compared
 * to a serial oracle *logically*. This driver removes that freedom: a
 * fixed array of cache-line-sized PM slots is allocated once, and each
 * core runs a stream of transaction *groups* — a few eager logged
 * word-stores to pseudo-randomly chosen slots wrapped in one durable
 * transaction. Group values are a pure function of (core, group,
 * write), so a retried group rewrites exactly the same bytes.
 *
 * Because a group usually spans several scheduler quanta, suspended
 * cores genuinely hold in-flight transactions while others run — the
 * configuration that provokes real conflict aborts. The commit log
 * (groups in scheduler-commit order) is the oracle: replaying it
 * serially on a single-core machine must yield a byte-identical slot
 * region, with or without a crash, for every scheme x logging style x
 * core count.
 */

#ifndef SLPMT_MULTICORE_MC_SLOTS_HH
#define SLPMT_MULTICORE_MC_SLOTS_HH

#include <cstdint>
#include <vector>

#include "multicore/machine.hh"
#include "multicore/scheduler.hh"

namespace slpmt
{

/** One word-store of a transaction group. */
struct McSlotWrite
{
    std::size_t slot = 0;
    std::uint64_t value = 0;
};

/** One durable transaction: a few stores committed atomically. */
struct McSlotGroup
{
    std::size_t core = 0;
    std::vector<McSlotWrite> writes;
};

/** Slot-differential run parameters. */
struct McSlotsConfig
{
    std::size_t numCores = 2;
    std::size_t numSlots = 24;       //!< one cache line each
    std::size_t groupsPerCore = 16;
    /** Stores per group; groups straddle quantum boundaries whenever
     *  this does not divide the scheduler quantum. */
    std::size_t writesPerGroup = 3;
    std::uint64_t seed = 7;

    McSchedConfig sched;
    SystemConfig sys;
};

/** Deterministic per-core group streams. */
std::vector<std::vector<McSlotGroup>>
mcSlotStreams(const McSlotsConfig &cfg);

/** Outcome of one interleaved slot run. */
struct McSlotsResult
{
    bool crashed = false;
    std::size_t quanta = 0;
    std::uint64_t storesExecuted = 0;  //!< trace stores (for sweeps)

    /** Committed groups in scheduler-commit order. */
    std::vector<McSlotGroup> commitLog;

    /** The durable slot-region bytes: after quiesce on a clean run,
     *  after hardware recovery on a crashed one. */
    std::vector<std::uint8_t> image;

    /** Full machine counters at the end of the run. */
    StatsSnapshot stats;
};

/**
 * Run the interleaved slot streams; @p crash_after_stores > 0 arms the
 * machine-wide power failure at that store ordinal (crashed runs are
 * hardware-recovered before the image is taken).
 */
McSlotsResult runMcSlots(const McSlotsConfig &cfg,
                         std::uint64_t crash_after_stores = 0);

/**
 * The oracle: replay @p commit_log serially on a fresh single-core
 * machine (same heap layout) and return its durable slot image.
 */
std::vector<std::uint8_t>
serialSlotsImage(const McSlotsConfig &cfg,
                 const std::vector<McSlotGroup> &commit_log);

} // namespace slpmt

#endif // SLPMT_MULTICORE_MC_SLOTS_HH
