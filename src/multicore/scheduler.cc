#include "multicore/scheduler.hh"

#include "common/rng.hh"

namespace slpmt
{

namespace
{

/** The scheduling loop, parameterised on the starting register file
 *  so a fresh run and a checkpoint resume share one code path. */
McScheduleResult
runLoop(McMachine &machine, const std::vector<McCoreDriver *> &drivers,
        const McSchedConfig &cfg, Rng rng, std::size_t rr,
        std::size_t quanta, const McQuantumHook &hook)
{
    panicIfNot(drivers.size() == machine.numCores(),
               "one driver per core required");
    panicIfNot(cfg.quantumOps > 0, "quantum must be at least one op");

    machine.setConflictHandler([&](std::size_t core) {
        drivers[core]->onConflictAbort();
    });

    McScheduleResult result;
    result.quanta = quanta;
    std::vector<std::size_t> runnable;

    auto pick = [&]() -> std::size_t {
        // Livelock bound: a core whose transactions keep aborting is
        // scheduled exclusively until it commits (lowest index wins
        // for determinism).
        if (cfg.stubbornAfterAborts > 0) {
            for (std::size_t i = 0; i < drivers.size(); ++i)
                if (!drivers[i]->done() &&
                    drivers[i]->abortStreak() >= cfg.stubbornAfterAborts)
                    return i;
        }
        runnable.clear();
        for (std::size_t i = 0; i < drivers.size(); ++i)
            if (!drivers[i]->done())
                runnable.push_back(i);
        if (runnable.empty())
            return drivers.size();
        if (cfg.weighted)
            return runnable[rng.below(runnable.size())];
        while (drivers[rr % drivers.size()]->done())
            ++rr;
        const std::size_t core = rr % drivers.size();
        ++rr;
        return core;
    };

    // The entry boundary is a quantum boundary too (nothing has been
    // picked yet), so a master run gets a trace-start checkpoint.
    if (hook)
        hook(McScheduleState{rng.rawState(), rr, result.quanta});

    try {
        for (std::size_t core = pick(); core < drivers.size();
             core = pick()) {
            for (std::size_t op = 0;
                 op < cfg.quantumOps && !drivers[core]->done(); ++op)
                drivers[core]->step();
            ++result.quanta;
            machine.noteQuantumExpiry(core, cfg.drainOnQuantumExpiry);
            // Everything the next pick() reads is in {rng, rr,
            // quanta}; drivers are between transactions. Report the
            // boundary so sweeps can checkpoint here.
            if (hook)
                hook(McScheduleState{rng.rawState(), rr,
                                     result.quanta});
        }
    } catch (const CrashInjected &) {
        // The firing engine crashed itself; take the whole machine
        // down (power failure is machine-wide).
        result.crashed = true;
        machine.crash();
    }

    machine.setConflictHandler(nullptr);
    return result;
}

} // namespace

McScheduleResult
runInterleaved(McMachine &machine,
               const std::vector<McCoreDriver *> &drivers,
               const McSchedConfig &cfg, const McQuantumHook &hook)
{
    return runLoop(machine, drivers, cfg,
                   Rng(mix64(cfg.seed ^ 0x9c0'9c09'c09c'09c0ULL)), 0,
                   0, hook);
}

McScheduleResult
runInterleavedFrom(McMachine &machine,
                   const std::vector<McCoreDriver *> &drivers,
                   const McSchedConfig &cfg,
                   const McScheduleState &resume,
                   const McQuantumHook &hook)
{
    Rng rng;
    rng.setRawState(resume.rngState);
    return runLoop(machine, drivers, cfg, std::move(rng), resume.rr,
                   resume.quanta, hook);
}

} // namespace slpmt
