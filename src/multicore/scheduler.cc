#include "multicore/scheduler.hh"

#include "common/rng.hh"

namespace slpmt
{

McScheduleResult
runInterleaved(McMachine &machine,
               const std::vector<McCoreDriver *> &drivers,
               const McSchedConfig &cfg)
{
    panicIfNot(drivers.size() == machine.numCores(),
               "one driver per core required");
    panicIfNot(cfg.quantumOps > 0, "quantum must be at least one op");

    machine.setConflictHandler([&](std::size_t core) {
        drivers[core]->onConflictAbort();
    });

    Rng rng(mix64(cfg.seed ^ 0x9c0'9c09'c09c'09c0ULL));
    McScheduleResult result;
    std::size_t rr = 0;
    std::vector<std::size_t> runnable;

    auto pick = [&]() -> std::size_t {
        // Livelock bound: a core whose transactions keep aborting is
        // scheduled exclusively until it commits (lowest index wins
        // for determinism).
        if (cfg.stubbornAfterAborts > 0) {
            for (std::size_t i = 0; i < drivers.size(); ++i)
                if (!drivers[i]->done() &&
                    drivers[i]->abortStreak() >= cfg.stubbornAfterAborts)
                    return i;
        }
        runnable.clear();
        for (std::size_t i = 0; i < drivers.size(); ++i)
            if (!drivers[i]->done())
                runnable.push_back(i);
        if (runnable.empty())
            return drivers.size();
        if (cfg.weighted)
            return runnable[rng.below(runnable.size())];
        while (drivers[rr % drivers.size()]->done())
            ++rr;
        const std::size_t core = rr % drivers.size();
        ++rr;
        return core;
    };

    try {
        for (std::size_t core = pick(); core < drivers.size();
             core = pick()) {
            for (std::size_t op = 0;
                 op < cfg.quantumOps && !drivers[core]->done(); ++op)
                drivers[core]->step();
            ++result.quanta;
            machine.noteQuantumExpiry(core, cfg.drainOnQuantumExpiry);
        }
    } catch (const CrashInjected &) {
        // The firing engine crashed itself; take the whole machine
        // down (power failure is machine-wide).
        result.crashed = true;
        machine.crash();
    }

    machine.setConflictHandler(nullptr);
    return result;
}

} // namespace slpmt
