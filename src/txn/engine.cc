#include "txn/engine.hh"

#include <algorithm>
#include <cstring>

namespace slpmt
{

TxnEngine::TxnEngine(const SchemeConfig &scheme, LoggingStyle style,
                     const AddressMap &map, CacheHierarchy &hier,
                     PmDevice &pm, StatsRegistry &stats, Addr log_base,
                     Bytes log_size)
    : schemeCfg(scheme),
      loggingStyle(style),
      addrMap(map),
      hier(hier),
      pm(pm),
      logBuf(stats),
      undoLog(pm, log_size ? log_base : map.logAreaBase(),
              log_size ? log_size : map.logAreaSize(), stats),
      ids(scheme.numTxnIds),
      idState(scheme.numTxnIds),
      statTxns(stats.counter("txn.begun")),
      statCommits(stats.counter("txn.committed")),
      statAborts(stats.counter("txn.aborted")),
      statLoads(stats.counter("txn.loads")),
      statStores(stats.counter("txn.stores")),
      statStoreTs(stats.counter("txn.storeTs")),
      statLogRecords(stats.counter("txn.logRecordsCreated")),
      statLinesPersistedAtCommit(stats.counter("txn.commitLinePersists")),
      statLazyLinesDeferred(stats.counter("txn.lazyLinesDeferred")),
      statLazyForcedPersists(stats.counter("txn.lazyForcedPersists")),
      statSigHits(stats.counter("txn.signatureHits")),
      statIdReclaims(stats.counter("txn.idReclaims")),
      statRecoverReplays(stats.counter("txn.recoverRecordsApplied")),
      statLazyDrainSigHit(stats.counter("txn.lazyDrain.sigHit")),
      statLazyDrainLineOwner(stats.counter("txn.lazyDrain.lineOwner")),
      statLazyDrainIdWrap(stats.counter("txn.lazyDrain.idWrap")),
      statLazyDrainEviction(stats.counter("txn.lazyDrain.eviction")),
      statLazyDrainExplicit(stats.counter("txn.lazyDrain.explicit")),
      statLazyDrainRemoteSigHit(
          stats.counter("txn.lazyDrain.remoteSigHit")),
      statLazyDrainRemoteIdObserved(
          stats.counter("txn.lazyDrain.remoteIdObserved")),
      statLazyStoreBytes(stats.counter("txn.lazyStoreBytes")),
      statLogFreeStoreBytes(stats.counter("txn.logFreeStoreBytes")),
      statLogFreeWordsElided(stats.counter("txn.logFreeWordsElided")),
      statCommitCycles(stats.histogram(
          "txn.commitCycles", {100, 300, 1000, 3000, 10000, 100000})),
      statStoreBytes(
          stats.histogram("txn.storeBytes", {8, 16, 64, 256, 1024}))
{
    logBuf.setSink(this);
    hier.setEvictionClient(this);
    hier.setSpeculativeRounding(scheme.speculativeRounding);
}

// ---------------------------------------------------------------------
// Transaction control
// ---------------------------------------------------------------------

void
TxnEngine::txBegin()
{
    panicIfNot(!inTxn, "nested durable transactions are not supported");

    // The next circle slot is still held: reclaim it, persisting the
    // lazy data of that transaction and all earlier ones first
    // (Section III-C2).
    if (!ids.hasFree()) {
        statIdReclaims++;
        clock += persistLazyThrough(ids.blockingId(), clock,
                                    statLazyDrainIdWrap);
    }

    curId = ids.allocate();
    curSeq = ++*seqSrc;
    idState[curId].signature.clear();
    idState[curId].txnSeq = curSeq;
    idState[curId].lazyOutstanding = false;
    redoWriteSet.clear();
    redoEvicted.clear();
    inTxn = true;
    statTxns++;
    clock += costs.txBegin;
}

void
TxnEngine::txCommit()
{
    panicIfNot(inTxn, "commit outside a transaction");
    Cycles c = costs.txCommit;
    if (loggingStyle == LoggingStyle::Undo)
        c += commitUndo(clock + c);
    else
        c += commitRedo(clock + c);
    inTxn = false;
    statCommits++;
    statCommitCycles.record(c);
    clock += c;
}

std::vector<Addr>
TxnEngine::sortedWriteSet() const
{
    // The hash set's iteration order is unspecified; every walk that
    // charges cycles or touches PM must use this ascending-address
    // order — the one the previous std::set produced — so reports
    // stay byte-identical (determinism rule).
    std::vector<Addr> order(redoWriteSet.begin(), redoWriteSet.end());
    std::sort(order.begin(), order.end());
    return order;
}

Cycles
TxnEngine::commitUndo(Cycles when)
{
    Cycles c = 0;

    // Discard buffered records that belong to lazily persistent cache
    // lines: if such a line is still cached its log record never needs
    // to reach PM (Section III-B2).
    if (schemeCfg.allowLazy) {
        logBuf.discardIf([&](Addr line_addr) {
            const CacheLine *line = hier.findPrivate(line_addr);
            return line && line->txnSeq == curSeq &&
                   line->txnId == curId && !line->persistBit;
        });
    }

    // Figure 4, undo ordering: log records reach PM before logged
    // cache lines. The WPQ is the persistence boundary, so draining
    // the buffer first establishes the order.
    c += logBuf.drainAll(when + c);

    // Persist every private line the transaction marked eager.
    bool lazy_left = false;
    hier.forEachPrivate([&](CacheLine &line) {
        if (line.txnId != curId || line.txnSeq != curSeq)
            return;
        if (line.persistBit) {
            const PersistKind kind = line.logBits
                                         ? PersistKind::LoggedLine
                                         : PersistKind::LogFreeLine;
            c += hier.persistPrivateLine(line, kind, when + c);
            c += costs.commitPersistAck;
            line.clearTxnMeta();
            hier.noteMetaUpdate(line);
            statLinesPersistedAtCommit++;
        } else {
            lazy_left = true;
            statLazyLinesDeferred++;
        }
    });

    // The transaction's effects are durable (or recoverable): truncate
    // the undo log.
    c += undoLog.truncate(when + c, curSeq);

    if (lazy_left) {
        idState[curId].lazyOutstanding = true;
    } else {
        idState[curId].signature.clear();
        ids.release(curId);
    }
    return c;
}

Cycles
TxnEngine::commitRedo(Cycles when)
{
    Cycles c = 0;

    // Figure 4, redo ordering: log-free lines must be durable before
    // any logged line is (their recovery may depend on pre-commit
    // values of the logged data).
    hier.forEachPrivate([&](CacheLine &line) {
        if (line.txnId != curId || line.txnSeq != curSeq)
            return;
        if (line.persistBit && !line.logBits) {
            c += hier.persistPrivateLine(line, PersistKind::LogFreeLine,
                                         when + c);
            c += costs.commitPersistAck;
            line.clearTxnMeta();
            hier.noteMetaUpdate(line);
            statLinesPersistedAtCommit++;
        }
    });

    // Refresh buffered redo records from the cache so they carry the
    // transaction's final values, then drain them and append the
    // commit marker.
    logBuf.forEachRecord([&](LogRecord &rec) {
        if (rec.txnSeq != curSeq)
            return;
        if (const CacheLine *line = hier.findPrivate(rec.base)) {
            std::memcpy(rec.data.data(),
                        line->data.data() + lineOffset(rec.base),
                        rec.spanBytes());
        }
    });
    c += logBuf.drainAll(when + c);
    LogRecord marker;
    marker.base = undoLog.base();  // sentinel: a log never logs itself
    marker.words = 1;
    c += undoLog.append(marker, when + c, curSeq);

    // In-place updates of the logged data (write-back from the log).
    for (Addr line_addr : sortedWriteSet()) {
        CacheLine *line = hier.findPrivate(line_addr);
        if (line && line->txnId == curId && line->txnSeq == curSeq) {
            c += hier.persistPrivateLine(*line, PersistKind::LoggedLine,
                                         when + c);
            c += costs.commitPersistAck;
            line->clearTxnMeta();
            hier.noteMetaUpdate(*line);
            statLinesPersistedAtCommit++;
        } else {
            // Evicted during the transaction: refetch, restore the
            // stashed image if the shared cache dropped the clean
            // copy, and persist the final value.
            AccessResult res = hier.access(line_addr, false, when + c);
            c += res.latency;
            restoreRedoEvicted(*res.line);
            c += hier.persistPrivateLine(*res.line,
                                         PersistKind::LoggedLine,
                                         when + c);
            res.line->clearTxnMeta();
            hier.noteMetaUpdate(*res.line);
            statLinesPersistedAtCommit++;
        }
    }

    c += undoLog.truncate(when + c, curSeq);

    // Lazy lines (persist bit unset) stay volatile past the commit and
    // keep the transaction ID live for working-set tracking, exactly
    // as in undo mode.
    bool lazy_left = false;
    hier.forEachPrivate([&](CacheLine &line) {
        if (line.txnId == curId && line.txnSeq == curSeq)
            lazy_left = true;
    });
    if (lazy_left) {
        idState[curId].lazyOutstanding = true;
    } else {
        idState[curId].signature.clear();
        ids.release(curId);
    }
    redoWriteSet.clear();
    redoEvicted.clear();
    return c;
}

void
TxnEngine::restoreRedoEvicted(CacheLine &line)
{
    const auto it = redoEvicted.find(line.tag);
    if (it == redoEvicted.end())
        return;
    line.data = it->second;
    line.dirty = true;
    line.state = MesiState::Modified;
    line.txnId = curId;
    line.txnSeq = curSeq;
    line.persistBit = true;
    hier.noteMetaUpdate(line);
    redoEvicted.erase(it);
}

void
TxnEngine::txAbort()
{
    panicIfNot(inTxn, "abort outside a transaction");
    statAborts++;

    // (1) Clear the log buffer and the signature.
    logBuf.clear();
    idState[curId].signature.clear();

    // Invalidate the cache lines the transaction updated so the
    // volatile updates disappear (Section V-B).
    std::vector<Addr> to_invalidate;
    hier.forEachPrivate([&](CacheLine &line) {
        if (line.txnId == curId && line.txnSeq == curSeq)
            to_invalidate.push_back(line.tag);
    });
    for (Addr addr : to_invalidate)
        hier.invalidateLineEverywhere(addr);

    // Redo write-set lines whose private eviction was suppressed sit
    // in the shared cache as clean copies of the aborted data; drop
    // them too so post-abort reads refetch the old values from PM.
    for (Addr addr : sortedWriteSet())
        hier.invalidateLineEverywhere(addr);

    // (2) Kernel-space replay of the undo log onto PM; a redo log is
    // simply discarded (nothing of the transaction reached PM).
    if (loggingStyle == LoggingStyle::Undo)
        undoLog.applyUndo();
    else
        undoLog.discard();

    // (3) User-specified recovery revokes log-free updates; that is
    // the caller's responsibility after this returns.
    ids.release(curId);
    redoWriteSet.clear();
    redoEvicted.clear();
    inTxn = false;
    clock += costs.txCommit;
}

// ---------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------

void
TxnEngine::load(Addr addr, void *out, std::size_t len)
{
    statLoads++;
    auto *dst = static_cast<std::uint8_t *>(out);
    Cycles c = 0;
    while (len > 0) {
        const std::size_t off = lineOffset(addr);
        const std::size_t chunk = std::min(len, cacheLineSize - off);

        AccessResult res = hier.access(addr, false, clock + c);
        c += res.latency;
        if (loggingStyle == LoggingStyle::Redo && inTxn)
            restoreRedoEvicted(*res.line);

        if (addrMap.isPm(addr)) {
            // Loads check the line's owning transaction ID: hitting an
            // earlier transaction's lazy line forces its data out
            // (Section III-C3).
            c += checkLineOwner(*res.line, clock + c);
            if (inTxn)
                idState[curId].signature.insert(
                    probeForLine(lineBase(addr)));
        }

        std::memcpy(dst, res.line->data.data() + off, chunk);
        addr += chunk;
        dst += chunk;
        len -= chunk;
    }
    clock += c;
}

void
TxnEngine::storeT(Addr addr, const void *src, std::size_t len,
                  StoreFlags flags)
{
    if (*crashSrc > 0 && --*crashSrc == 0) {
        crash();
        throw CrashInjected();
    }

    const bool is_storeT = flags.lazy || flags.logFree;
    if (is_storeT)
        statStoreTs++;
    else
        statStores++;
    statStoreBytes.record(len);

    // A disabled feature turns the operand off (the log-free flag of
    // Figure 2 "disables the semantic of storeT"); outside a durable
    // transaction storeT degenerates to store.
    const bool lazy = flags.lazy && schemeCfg.allowLazy && inTxn;
    const bool log_free = flags.logFree && schemeCfg.allowLogFree && inTxn;
    if (lazy)
        statLazyStoreBytes += len;
    if (log_free)
        statLogFreeStoreBytes += len;

    auto *from = static_cast<const std::uint8_t *>(src);
    Cycles c = 0;
    while (len > 0) {
        const std::size_t off = lineOffset(addr);
        const std::size_t chunk = std::min(len, cacheLineSize - off);
        c += storeSegment(addr, from, chunk, lazy, log_free, clock + c);
        addr += chunk;
        from += chunk;
        len -= chunk;
    }
    clock += c;
}

Cycles
TxnEngine::storeSegment(Addr addr, const void *src, std::size_t len,
                        bool lazy, bool log_free, Cycles when)
{
    Cycles c = 0;

    if (!addrMap.isPm(addr)) {
        // Volatile data: a plain cached write.
        AccessResult res = hier.access(addr, true, when);
        std::memcpy(res.line->data.data() + lineOffset(addr), src, len);
        return res.latency;
    }

    // Store-triggered coherence event: check committed transactions'
    // working-set signatures (Section III-C3).
    c += checkSignaturesOnWrite(addr, when + c);

    AccessResult res = hier.access(addr, true, when + c);
    c += res.latency;
    CacheLine &line = *res.line;
    if (loggingStyle == LoggingStyle::Redo && inTxn)
        restoreRedoEvicted(line);

    // Writing a line owned by an earlier transaction forces that
    // transaction's lazy data out before the update proceeds.
    c += checkLineOwner(line, when + c);

    if (inTxn) {
        // Table I: the persist bit is set unless the store is lazy; a
        // lazy store does not clear an already-set persist bit
        // (Section III-C1: stores cancel lazy persistency, not the
        // other way around).
        if (!lazy)
            line.persistBit = true;

        // Undo records carry pre-store values: log before the write.
        if (!log_free && loggingStyle == LoggingStyle::Undo) {
            c += createLogRecords(line, addr, len, when + c);
            c += schemeCfg.storeFenceCycles;
        } else if (log_free) {
            statLogFreeWordsElided +=
                wordIndex(addr + len - 1) - wordIndex(addr) + 1;
        }

        line.txnId = curId;
        line.txnSeq = curSeq;
        idState[curId].signature.insert(probeForLine(lineBase(addr)));
    }

    std::memcpy(line.data.data() + lineOffset(addr), src, len);
    line.dirty = true;
    line.state = MesiState::Modified;

    // Redo records carry the new values: log after the write.
    if (inTxn && !log_free && loggingStyle == LoggingStyle::Redo) {
        c += redoLogSpan(line, addr, len, when + c);
        c += schemeCfg.storeFenceCycles;
        redoWriteSet.insert(lineBase(addr));
    }
    if (inTxn)
        hier.noteMetaUpdate(line);
    return c;
}

Cycles
TxnEngine::createLogRecords(CacheLine &line, Addr addr, std::size_t len,
                            Cycles when)
{
    Cycles c = 0;
    const std::size_t first_word = wordIndex(addr);
    const std::size_t last_word = wordIndex(addr + len - 1);

    if (!schemeCfg.fineGrainLogging) {
        // Line-granularity logging (ATOM, SLPMT-CL): one record for
        // the whole line on its first logged store.
        if (line.logBits == 0) {
            statLogRecords++;
            if (schemeCfg.useLogBuffer) {
                c += logBuf.insertLine(line.tag, line.data.data(), curId,
                                       curSeq, when);
            } else {
                LogRecord rec;
                rec.base = line.tag;
                rec.words = wordsPerLine;
                rec.txnId = curId;
                rec.txnSeq = curSeq;
                std::memcpy(rec.data.data(), line.data.data(),
                            cacheLineSize);
                c += undoLog.append(rec, when, curSeq);
            }
            line.logBits = 0xFF;
        }
        return c;
    }

    // Word-granularity logging: log each still-unlogged word the store
    // touches, with its pre-store value.
    if (schemeCfg.useLogBuffer) {
        for (std::size_t w = first_word; w <= last_word; ++w) {
            if (line.logBits & (1U << w))
                continue;
            statLogRecords++;
            c += logBuf.insertWord(line.tag + w * wordSize,
                                   line.data.data() + w * wordSize,
                                   curId, curSeq, when + c);
            line.logBits |= static_cast<std::uint8_t>(1U << w);
        }
        return c;
    }

    // EDE: no cross-store buffer; coalesce the contiguous unlogged
    // words of this one store into records and persist them at once.
    std::size_t w = first_word;
    while (w <= last_word) {
        if (line.logBits & (1U << w)) {
            ++w;
            continue;
        }
        std::size_t run_end = w;
        while (run_end + 1 <= last_word &&
               !(line.logBits & (1U << (run_end + 1))))
            ++run_end;
        const std::size_t words = run_end - w + 1;
        c += appendSpanEager(line.tag + w * wordSize, words,
                             line.data.data() + w * wordSize, when + c);
        for (std::size_t i = w; i <= run_end; ++i)
            line.logBits |= static_cast<std::uint8_t>(1U << i);
        w = run_end + 1;
    }
    return c;
}

Cycles
TxnEngine::appendSpanEager(Addr base, std::size_t words,
                           const std::uint8_t *data, Cycles when)
{
    // The wire format encodes power-of-two record sizes; split a run
    // greedily (traffic difference is only in record headers).
    Cycles c = 0;
    while (words > 0) {
        std::size_t take = 1;
        while (take * 2 <= words && take * 2 <= wordsPerLine)
            take *= 2;
        LogRecord rec;
        rec.base = base;
        rec.words = static_cast<std::uint8_t>(take);
        rec.txnId = curId;
        rec.txnSeq = curSeq;
        std::memcpy(rec.data.data(), data, take * wordSize);
        statLogRecords++;
        c += schemeCfg.softwareLogCycles;
        c += undoLog.append(rec, when + c, curSeq,
                            schemeCfg.softwareLogHeaderBytes);
        base += take * wordSize;
        data += take * wordSize;
        words -= take;
    }
    return c;
}

Cycles
TxnEngine::redoLogSpan(CacheLine &line, Addr addr, std::size_t len,
                       Cycles when)
{
    // Redo mode: record the just-written (new) values. A word whose
    // record is still buffered keeps its log bit and is refreshed from
    // the cache at commit; a word whose record was force-drained had
    // its log bit cleared in persistRecord(), so a re-store creates a
    // fresh, later record and forward replay makes the last one win.
    Cycles c = 0;
    const std::size_t first_word = wordIndex(addr);
    const std::size_t last_word = wordIndex(addr + len - 1);
    for (std::size_t w = first_word; w <= last_word; ++w) {
        if (line.logBits & (1U << w))
            continue;
        statLogRecords++;
        c += logBuf.insertWord(line.tag + w * wordSize,
                               line.data.data() + w * wordSize, curId,
                               curSeq, when + c);
        line.logBits |= static_cast<std::uint8_t>(1U << w);
    }
    return c;
}

// ---------------------------------------------------------------------
// Lazy persistency
// ---------------------------------------------------------------------

Cycles
TxnEngine::checkSignaturesOnWrite(Addr addr, Cycles when)
{
    // The checks themselves are off the critical path (Section
    // III-C3); only forced persists cost time. All signatures share
    // the hash functions, so the address is hashed once and the probe
    // tested against every candidate.
    Cycles c = 0;
    // Copy out of the memo: the forced-persist calls below can reach
    // stores that refresh it while this scan still needs the probe.
    const Signature::Probe probe = probeForLine(lineBase(addr));
    bool again = true;
    while (again) {
        again = false;
        for (std::uint8_t id : ids.live()) {
            if (inTxn && id == curId)
                continue;
            if (!idState[id].lazyOutstanding)
                continue;
            if (idState[id].signature.mightContain(probe)) {
                statSigHits++;
                c += costs.lazyScan;
                c += persistLazyThrough(id, when + c,
                                        remoteObserving
                                            ? statLazyDrainRemoteSigHit
                                            : statLazyDrainSigHit);
                again = true;  // the live list changed; rescan
                break;
            }
        }
    }
    return c;
}

Cycles
TxnEngine::checkLineOwnerSlow(const CacheLine &line, Cycles when)
{
    const std::uint8_t owner = line.txnId;
    if (inTxn && owner == curId && line.txnSeq == curSeq)
        return 0;
    if (owner >= idState.size() || idState[owner].txnSeq != line.txnSeq ||
        !idState[owner].lazyOutstanding)
        return 0;  // stale tag: owner already fully persisted
    return costs.lazyScan +
           persistLazyThrough(owner, when,
                              remoteObserving
                                  ? statLazyDrainRemoteIdObserved
                                  : statLazyDrainLineOwner);
}

Cycles
TxnEngine::persistLazyThrough(std::uint8_t id, Cycles when,
                              StatsRegistry::Counter &reason)
{
    // Persist all data owned by transactions up to and including the
    // target, oldest first (Section III-C2).
    Cycles c = 0;
    std::vector<std::uint8_t> order(ids.live().begin(), ids.live().end());
    for (std::uint8_t live_id : order) {
        if (inTxn && live_id == curId)
            continue;
        c += persistLazyOf(live_id, when + c, reason);
        if (live_id == id)
            break;
    }
    return c;
}

Cycles
TxnEngine::persistLazyOf(std::uint8_t id, Cycles when,
                         StatsRegistry::Counter &reason)
{
    Cycles c = 0;
    const std::uint64_t seq = idState[id].txnSeq;
    hier.forEachPrivate([&](CacheLine &line) {
        if (line.txnId != id || line.txnSeq != seq)
            return;
        if (line.dirty) {
            // Issued by background hardware, off the critical path
            // (Section III-C3): no commit ACK, no WPQ-full stall.
            c += hier.persistPrivateLine(line, PersistKind::LazyLine,
                                         when + c, /*sync=*/false);
            statLazyForcedPersists++;
            reason++;
        }
        line.clearTxnMeta();
        hier.noteMetaUpdate(line);
    });
    idState[id].signature.clear();
    idState[id].lazyOutstanding = false;
    ids.release(id);
    return c;
}

void
TxnEngine::persistAllLazy()
{
    Cycles c = 0;
    std::vector<std::uint8_t> order(ids.live().begin(), ids.live().end());
    for (std::uint8_t id : order) {
        if (inTxn && id == curId)
            continue;
        c += persistLazyOf(id, clock + c, statLazyDrainExplicit);
    }
    clock += c;
}

std::size_t
TxnEngine::lazyOutstandingCount() const
{
    std::size_t n = 0;
    for (const auto &st : idState)
        n += st.lazyOutstanding ? 1 : 0;
    return n;
}

// ---------------------------------------------------------------------
// Coherence events from other cores
// ---------------------------------------------------------------------

bool
TxnEngine::remoteWrite(Addr addr)
{
    clock += checkSignaturesOnWrite(addr, clock);
    bool conflict = false;
    if (CacheLine *line = hier.findPrivate(addr)) {
        if (inTxn && line->txnId == curId && line->txnSeq == curSeq) {
            conflict = true;  // caller decides whether to abort
        } else {
            clock += checkLineOwner(*line, clock);
            hier.invalidateLineEverywhere(addr);
        }
    }
    return conflict;
}

bool
TxnEngine::remoteRead(Addr addr)
{
    bool conflict = false;
    if (CacheLine *line = hier.findPrivate(addr)) {
        if (inTxn && line->txnId == curId && line->txnSeq == curSeq)
            conflict = true;
        else
            clock += checkLineOwner(*line, clock);
    }
    return conflict;
}

bool
TxnEngine::remoteObserve(Addr addr, bool is_write)
{
    remoteObserving = true;
    // A remote store probes the working-set signatures exactly like a
    // local one (the directory broadcasts the address); loads only
    // meet the per-line txn-ID tag.
    if (is_write)
        clock += checkSignaturesOnWrite(addr, clock);
    bool conflict = false;
    if (CacheLine *line = hier.findPrivate(addr)) {
        if (inTxn && line->txnId == curId && line->txnSeq == curSeq)
            conflict = true;  // the machine aborts this engine
        else
            clock += checkLineOwner(*line, clock);
    }
    remoteObserving = false;
    return conflict;
}

// ---------------------------------------------------------------------
// Eviction client and drain sink
// ---------------------------------------------------------------------

Cycles
TxnEngine::evictingPrivateLine(CacheLine &line, Cycles when)
{
    Cycles c = 0;

    // Persist the line's log records before its data can leave the
    // private caches (the undo "steal" rule, Section III-A). The
    // buffer is searched by address unconditionally: log-bit
    // aggregation may have zeroed a partially-logged group (Section
    // III-B1) while its word records still sit in the buffer.
    c += logBuf.flushLine(line.tag, when);

    // Redo (no-steal): uncommitted logged data must not reach PM.
    // Tested against the write set, not the line's log bits — the
    // flushLine() above just drained this line's records, which
    // clears its log bits. The records are durable, but the line
    // continues into the shared cache as clean and may be dropped
    // there, so its image is stashed and restored on the next access
    // (a hardware redo design would service such reads from the log).
    if (loggingStyle == LoggingStyle::Redo && inTxn &&
        line.txnId == curId && line.txnSeq == curSeq &&
        redoWriteSet.count(line.tag)) {
        redoEvicted[line.tag] = line.data;
        line.dirty = false;
        line.clearTxnMeta();
        hier.noteMetaUpdate(line);
        return c;
    }

    if (line.persistBit) {
        const PersistKind kind = line.logBits ? PersistKind::LoggedLine
                                              : PersistKind::LogFreeLine;
        c += hier.persistPrivateLine(line, kind, when + c);
    } else if (line.txnId != noTxnId && line.dirty) {
        // A lazy line overflowing the private caches is persisted on
        // the way out: the working-set scan that would later force it
        // only covers the private caches.
        c += hier.persistPrivateLine(line, PersistKind::LazyLine,
                                     when + c);
        statLazyForcedPersists++;
        statLazyDrainEviction++;
    }
    line.clearTxnMeta();
    hier.noteMetaUpdate(line);
    return c;
}

std::pair<Cycles, std::uint8_t>
TxnEngine::roundUpLogBits(CacheLine &line, std::uint8_t missing_words,
                          Cycles when)
{
    // Speculative record creation (Section III-B1): log clean words so
    // the aggregated L2 bit can stay set. Only meaningful for lines of
    // the in-flight transaction in undo mode.
    if (!inTxn || loggingStyle != LoggingStyle::Undo ||
        line.txnId != curId || line.txnSeq != curSeq ||
        !schemeCfg.fineGrainLogging || !schemeCfg.useLogBuffer)
        return {0, 0};

    Cycles c = 0;
    std::uint8_t rounded = 0;
    for (std::size_t w = 0; w < wordsPerLine; ++w) {
        if (!(missing_words & (1U << w)))
            continue;
        statLogRecords++;
        c += logBuf.insertWord(line.tag + w * wordSize,
                               line.data.data() + w * wordSize, curId,
                               curSeq, when + c);
        rounded |= static_cast<std::uint8_t>(1U << w);
    }
    return {c, rounded};
}

Cycles
TxnEngine::persistRecord(const LogRecord &rec, Cycles when)
{
    if (loggingStyle == LoggingStyle::Redo && inTxn &&
        rec.txnSeq == curSeq) {
        // A drained redo record freezes its value in the log; clear
        // the covered log bits so later stores create fresh records
        // (forward replay takes the last).
        if (CacheLine *line = hier.findPrivate(rec.base)) {
            if (line->txnId == curId && line->txnSeq == curSeq) {
                for (std::size_t w = 0; w < rec.words; ++w) {
                    const std::size_t idx = wordIndex(rec.base) + w;
                    line->logBits &=
                        static_cast<std::uint8_t>(~(1U << idx));
                }
                hier.noteMetaUpdate(*line);
            }
        }
    }
    return undoLog.append(rec, when, rec.txnSeq);
}

// ---------------------------------------------------------------------
// Crash and recovery
// ---------------------------------------------------------------------

void
TxnEngine::crash()
{
    hier.crash();
    logBuf.clear();
    undoLog.crash();
    ids.reset();
    for (auto &st : idState) {
        st.signature.clear();
        st.lazyOutstanding = false;
        st.txnSeq = 0;
    }
    redoWriteSet.clear();
    redoEvicted.clear();
    inTxn = false;
    curId = noTxnId;
    pm.crash();
}

std::size_t
TxnEngine::recover()
{
    if (loggingStyle == LoggingStyle::Undo) {
        const std::size_t applied = undoLog.applyUndo();
        statRecoverReplays += applied;
        return applied;
    }

    // Redo: a commit marker (sentinel base) means the transaction
    // committed and its records must be replayed forward; otherwise
    // the log is discarded.
    const std::vector<LogRecord> records = undoLog.scanValid();
    const bool committed =
        std::any_of(records.begin(), records.end(),
                    [&](const LogRecord &r) {
                        return r.base == undoLog.base();
                    });
    std::size_t applied = 0;
    if (committed) {
        for (const auto &rec : records) {
            if (rec.base == undoLog.base())
                continue;
            pm.poke(rec.base, rec.data.data(), rec.spanBytes());
            ++applied;
        }
    }
    undoLog.discard();
    statRecoverReplays += applied;
    return applied;
}

// ---------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------

void
TxnEngine::saveState(BlobWriter &w) const
{
    w.u<Cycles>(clock);
    w.u<std::uint64_t>(crashCountdown);
    w.u<std::uint64_t>(globalSeq);
    w.b(inTxn);
    w.u<std::uint8_t>(curId);
    w.u<std::uint64_t>(curSeq);

    w.u<std::uint64_t>(idState.size());
    for (const auto &st : idState) {
        st.signature.saveState(w);
        w.u<std::uint64_t>(st.txnSeq);
        w.b(st.lazyOutstanding);
    }
    ids.saveState(w);
    logBuf.saveState(w);
    undoLog.saveState(w);

    // Hash containers: serialize in sorted-address order (the
    // determinism rule) so identical machine states always produce
    // identical blobs.
    std::vector<Addr> write_set(redoWriteSet.begin(),
                                redoWriteSet.end());
    std::sort(write_set.begin(), write_set.end());
    w.u<std::uint64_t>(write_set.size());
    for (Addr a : write_set)
        w.u<Addr>(a);

    std::vector<Addr> evicted;
    evicted.reserve(redoEvicted.size());
    for (const auto &kv : redoEvicted)
        evicted.push_back(kv.first);
    std::sort(evicted.begin(), evicted.end());
    w.u<std::uint64_t>(evicted.size());
    for (Addr a : evicted) {
        w.u<Addr>(a);
        const auto &img = redoEvicted.at(a);
        w.bytes(img.data(), img.size());
    }
}

void
TxnEngine::restoreState(BlobReader &r)
{
    clock = r.u<Cycles>();
    crashCountdown = r.u<std::uint64_t>();
    globalSeq = r.u<std::uint64_t>();
    inTxn = r.b();
    curId = r.u<std::uint8_t>();
    curSeq = r.u<std::uint64_t>();

    const std::size_t n_ids = r.count(1);
    if (n_ids != idState.size())
        throw CheckpointError("txn ID state count mismatch");
    for (auto &st : idState) {
        st.signature.restoreState(r);
        st.txnSeq = r.u<std::uint64_t>();
        st.lazyOutstanding = r.b();
    }
    ids.restoreState(r);
    logBuf.restoreState(r);
    undoLog.restoreState(r);

    redoWriteSet.clear();
    const std::size_t n_ws = r.count(sizeof(Addr));
    for (std::size_t i = 0; i < n_ws; ++i)
        redoWriteSet.insert(r.u<Addr>());

    redoEvicted.clear();
    const std::size_t n_ev = r.count(sizeof(Addr));
    for (std::size_t i = 0; i < n_ev; ++i) {
        const Addr a = r.u<Addr>();
        auto &img = redoEvicted[a];
        r.bytes(img.data(), img.size());
    }
}

} // namespace slpmt
