/**
 * @file
 * Working-set signatures for lazy-persistency conflict tracking.
 *
 * Section III-C3: every transaction with an assigned ID gets a
 * signature recording the line addresses of its read- and write-set.
 * The hardware checks signatures on store-triggered coherence events;
 * a hit forces the lazy data of the signature's transaction out to
 * persistent memory. All signatures share the same hash functions.
 * Section III-D sizes each signature at 2048 bits (256 bytes), four
 * signatures in total.
 *
 * Because the hash functions are shared, the slot set of an address is
 * a property of the address alone: probeFor() computes it once and the
 * result can be tested against every signature. The store-triggered
 * check probes up to four signatures per store, so hoisting the mixing
 * out of the loop quarters the hash work on that hot path. The hoisted
 * and the per-call paths evaluate the identical expression
 * (mix64Salted), so the filter bit pattern is unchanged — pinned by a
 * unit test against hard-coded slot values.
 */

#ifndef SLPMT_TXN_SIGNATURE_HH
#define SLPMT_TXN_SIGNATURE_HH

#include <array>
#include <bitset>
#include <cstdint>

#include "checkpoint/serde.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace slpmt
{

/** A Bloom-filter address-set signature. */
template <std::size_t NumBits = 2048, std::size_t NumHashes = 4>
class AddressSignature
{
  public:
    static constexpr std::size_t bits = NumBits;
    static constexpr std::size_t hashes = NumHashes;

    /**
     * The precomputed slot set of one address. Valid against any
     * signature of the same geometry (they share hash functions);
     * compute once per coherence event, test many.
     */
    struct Probe
    {
        std::array<std::uint32_t, NumHashes> slots;
    };

    /** Hash an address into its slot set (line base taken once). */
    static Probe
    probeFor(Addr addr)
    {
        const Addr base = lineBase(addr);
        Probe probe;
        for (std::size_t i = 0; i < NumHashes; ++i)
            probe.slots[i] = slot(base, i);
        return probe;
    }

    /** Record a line address in the set. */
    void insert(Addr addr) { insert(probeFor(addr)); }

    void
    insert(const Probe &probe)
    {
        for (const std::uint32_t s : probe.slots)
            filter.set(s);
        count++;
    }

    /** May-contain test; false negatives are impossible. */
    bool mightContain(Addr addr) const { return mightContain(probeFor(addr)); }

    bool
    mightContain(const Probe &probe) const
    {
        for (const std::uint32_t s : probe.slots) {
            if (!filter.test(s))
                return false;
        }
        return true;
    }

    void
    clear()
    {
        filter.reset();
        count = 0;
    }

    bool empty() const { return count == 0; }
    std::uint64_t insertions() const { return count; }

    /** @name Checkpointing (filter exported as 64-bit words) */
    /** @{ */
    void
    saveState(BlobWriter &w) const
    {
        static_assert(NumBits % 64 == 0, "signature width");
        for (std::size_t word = 0; word < NumBits / 64; ++word) {
            std::uint64_t v = 0;
            for (std::size_t bit = 0; bit < 64; ++bit) {
                if (filter.test(word * 64 + bit))
                    v |= std::uint64_t{1} << bit;
            }
            w.u<std::uint64_t>(v);
        }
        w.u<std::uint64_t>(count);
    }

    void
    restoreState(BlobReader &r)
    {
        filter.reset();
        for (std::size_t word = 0; word < NumBits / 64; ++word) {
            const std::uint64_t v = r.u<std::uint64_t>();
            for (std::size_t bit = 0; bit < 64; ++bit) {
                if (v & (std::uint64_t{1} << bit))
                    filter.set(word * 64 + bit);
            }
        }
        count = r.u<std::uint64_t>();
    }
    /** @} */

  private:
    static std::uint32_t
    slot(Addr base, std::size_t i)
    {
        // All signatures share these hash functions (Section III-C3).
        static constexpr std::array<std::uint64_t, 8> salts = {
            0x9e3779b97f4a7c15ULL, 0xc2b2ae3d27d4eb4fULL,
            0x165667b19e3779f9ULL, 0x27d4eb2f165667c5ULL,
            0x85ebca6b27d4eb4fULL, 0xc2b2ae35d27d4ebbULL,
            0x2545f4914f6cdd1dULL, 0x94d049bb133111ebULL,
        };
        return static_cast<std::uint32_t>(
            mix64Salted(base, salts[i % salts.size()]) % NumBits);
    }

    std::bitset<NumBits> filter;
    std::uint64_t count = 0;
};

using Signature = AddressSignature<>;

} // namespace slpmt

#endif // SLPMT_TXN_SIGNATURE_HH
