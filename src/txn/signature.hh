/**
 * @file
 * Working-set signatures for lazy-persistency conflict tracking.
 *
 * Section III-C3: every transaction with an assigned ID gets a
 * signature recording the line addresses of its read- and write-set.
 * The hardware checks signatures on store-triggered coherence events;
 * a hit forces the lazy data of the signature's transaction out to
 * persistent memory. All signatures share the same hash functions.
 * Section III-D sizes each signature at 2048 bits (256 bytes), four
 * signatures in total.
 */

#ifndef SLPMT_TXN_SIGNATURE_HH
#define SLPMT_TXN_SIGNATURE_HH

#include <array>
#include <bitset>
#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"

namespace slpmt
{

/** A Bloom-filter address-set signature. */
template <std::size_t NumBits = 2048, std::size_t NumHashes = 4>
class AddressSignature
{
  public:
    static constexpr std::size_t bits = NumBits;
    static constexpr std::size_t hashes = NumHashes;

    /** Record a line address in the set. */
    void
    insert(Addr addr)
    {
        const Addr base = lineBase(addr);
        for (std::size_t i = 0; i < NumHashes; ++i)
            filter.set(slot(base, i));
        count++;
    }

    /** May-contain test; false negatives are impossible. */
    bool
    mightContain(Addr addr) const
    {
        const Addr base = lineBase(addr);
        for (std::size_t i = 0; i < NumHashes; ++i) {
            if (!filter.test(slot(base, i)))
                return false;
        }
        return true;
    }

    void
    clear()
    {
        filter.reset();
        count = 0;
    }

    bool empty() const { return count == 0; }
    std::uint64_t insertions() const { return count; }

  private:
    static std::size_t
    slot(Addr base, std::size_t i)
    {
        // All signatures share these hash functions (Section III-C3).
        static constexpr std::array<std::uint64_t, 8> salts = {
            0x9e3779b97f4a7c15ULL, 0xc2b2ae3d27d4eb4fULL,
            0x165667b19e3779f9ULL, 0x27d4eb2f165667c5ULL,
            0x85ebca6b27d4eb4fULL, 0xc2b2ae35d27d4ebbULL,
            0x2545f4914f6cdd1dULL, 0x94d049bb133111ebULL,
        };
        return static_cast<std::size_t>(
            mix64(base ^ salts[i % salts.size()]) % NumBits);
    }

    std::bitset<NumBits> filter;
    std::uint64_t count = 0;
};

using Signature = AddressSignature<>;

} // namespace slpmt

#endif // SLPMT_TXN_SIGNATURE_HH
