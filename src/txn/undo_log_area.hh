/**
 * @file
 * The persistent undo-log area.
 *
 * A reserved region at the bottom of PM holds, at any moment, the
 * undo records of the single in-flight durable transaction. Records
 * are appended sequentially; committing (or finishing an abort/
 * recovery replay) truncates the log with a single 8-byte terminator
 * write, so recovery sees an empty log for committed transactions.
 *
 * On-wire entry format (first word packs metadata into the alignment
 * bits of the word-aligned base address):
 *
 *   [8 B: base | log2(words) << 1 | valid]  [words * 8 B data]
 *
 * which makes the wire sizes exactly the 16/24/40/72 bytes of
 * Figure 6. Each append also rewrites the 8-byte terminator slot that
 * follows the entry; those framing bytes are excluded from the
 * write-traffic accounting so the traffic metric matches the paper's
 * record sizes.
 */

#ifndef SLPMT_TXN_UNDO_LOG_AREA_HH
#define SLPMT_TXN_UNDO_LOG_AREA_HH

#include <vector>

#include "checkpoint/serde.hh"
#include "stats/stats.hh"
#include "logbuf/log_record.hh"
#include "mem/pm_device.hh"

namespace slpmt
{

/** Durable append-only undo log with O(1) truncation. */
class UndoLogArea
{
  public:
    UndoLogArea(PmDevice &pm, Addr base, Bytes size, StatsRegistry &stats)
        : pm(pm),
          areaBase(base),
          areaSize(size),
          statAppends(stats.counter("undolog.appends")),
          statTruncates(stats.counter("undolog.truncates")),
          statUndoApplied(stats.counter("undolog.recordsApplied")),
          statWireBytes(stats.counter("undolog.wireBytes")),
          statTruncateBytes(stats.counter("undolog.truncateBytes"))
    {
        initialize();
    }

    /** Reset the area to the empty state (no timing; initial setup). */
    void
    initialize()
    {
        const std::uint64_t zero = 0;
        pm.poke(areaBase, &zero, sizeof(zero));
        tail = areaBase;
    }

    /**
     * Durably append one record; returns issue cycles.
     *
     * @param extra_bytes additional on-wire framing per record (the
     *        software-constructed EDE records carry a type/size
     *        header that the hardware record formats do not)
     */
    Cycles append(const LogRecord &rec, Cycles now, std::uint64_t txn_seq,
                  Bytes extra_bytes = 0);

    /** Durably truncate the log (transaction committed / rolled back). */
    Cycles truncate(Cycles now, std::uint64_t txn_seq);

    /**
     * Read back every valid record, in append order, from the durable
     * image. Used by crash recovery; charges no simulated time.
     */
    std::vector<LogRecord> scanValid() const;

    /**
     * Apply every valid record to the durable image in reverse append
     * order (the undo replay of Section V-B), then truncate.
     *
     * @return number of records applied
     */
    std::size_t applyUndo();

    /** Drop every valid entry without applying it (redo rollback). */
    void
    discard()
    {
        const std::uint64_t zero = 0;
        pm.poke(areaBase, &zero, sizeof(zero));
        tail = areaBase;
    }

    /** The in-flight log is empty (nothing to undo). */
    bool empty() const { return scanValid().empty(); }

    Addr base() const { return areaBase; }
    Bytes size() const { return areaSize; }

    /** Forget the volatile tail; recovery re-derives it by scanning. */
    void
    crash()
    {
        tail = areaBase;
        for (const auto &rec : scanValid())
            tail += entryBytes(rec.words);
    }

    /** @name Checkpointing (durable contents ride the PM image) */
    /** @{ */
    void
    saveState(BlobWriter &w) const
    {
        w.u<Addr>(tail);
    }

    void
    restoreState(BlobReader &r)
    {
        tail = r.u<Addr>();
        if (tail < areaBase || tail > areaBase + areaSize)
            throw CheckpointError("undo log tail out of range");
    }
    /** @} */

  private:
    static Bytes
    entryBytes(std::uint8_t words)
    {
        return wordSize + words * wordSize;
    }

    PmDevice &pm;
    Addr areaBase;
    Bytes areaSize;
    Addr tail;

    StatsRegistry::Counter statAppends;
    StatsRegistry::Counter statTruncates;
    StatsRegistry::Counter statUndoApplied;
    StatsRegistry::Counter statWireBytes;     //!< accounted append traffic
    StatsRegistry::Counter statTruncateBytes; //!< accounted truncate traffic
};

} // namespace slpmt

#endif // SLPMT_TXN_UNDO_LOG_AREA_HH
