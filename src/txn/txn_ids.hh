/**
 * @file
 * Circular allocator for core-local transaction IDs (Section III-C2).
 *
 * Each L1/L2 line carries a 2-bit transaction ID, so four IDs exist
 * per core. The transaction register keeps first/last free pointers
 * into a fixed circle of IDs: allocation always advances around the
 * circle (it never reuses a just-released ID out of order), and when
 * the next slot is still held by an earlier transaction the hardware
 * reclaims it, persisting that transaction's lazy data first.
 * Organising the IDs as a circle bounds how long any committed
 * transaction's data can stay volatile — running numIds empty
 * transactions flushes every lazily persistent line (Section III-C4).
 */

#ifndef SLPMT_TXN_TXN_IDS_HH
#define SLPMT_TXN_TXN_IDS_HH

#include <cstdint>
#include <deque>

#include "checkpoint/serde.hh"
#include "common/logging.hh"

namespace slpmt
{

/** Circular transaction-ID allocator. */
class TxnIdAllocator
{
  public:
    static constexpr std::uint8_t defaultNumIds = 4;

    explicit TxnIdAllocator(std::uint8_t num_ids = defaultNumIds)
        : numIds(num_ids)
    {
        panicIfNot(num_ids > 0 && num_ids < noTxnIdSentinel,
                   "invalid transaction ID count");
        reset();
    }

    /** Is the next slot of the circle free to allocate? */
    bool hasFree() const { return !isLive(nextAlloc); }

    /**
     * Allocate the next ID around the circle. The caller must have
     * reclaimed the blocking ID first if hasFree() is false.
     */
    std::uint8_t
    allocate()
    {
        panicIfNot(hasFree(), "transaction ID allocation with none free");
        const std::uint8_t id = nextAlloc;
        nextAlloc = static_cast<std::uint8_t>((nextAlloc + 1) % numIds);
        liveIds.push_back(id);
        return id;
    }

    /** The ID occupying the next circle slot (the reclaim victim). */
    std::uint8_t
    blockingId() const
    {
        panicIfNot(!hasFree(), "no blocking transaction ID");
        return nextAlloc;
    }

    /** The earliest still-allocated ID. */
    std::uint8_t
    oldestLive() const
    {
        panicIfNot(!liveIds.empty(), "no live transaction ID");
        return liveIds.front();
    }

    bool anyLive() const { return !liveIds.empty(); }
    std::size_t liveCount() const { return liveIds.size(); }

    /** Live IDs oldest-first (lazy persists walk this order). */
    const std::deque<std::uint8_t> &live() const { return liveIds; }

    /** Release an ID (its lazy data is fully persisted). */
    void
    release(std::uint8_t id)
    {
        for (auto it = liveIds.begin(); it != liveIds.end(); ++it) {
            if (*it == id) {
                liveIds.erase(it);
                return;
            }
        }
        panic("releasing transaction ID that is not live");
    }

    /** Forget everything (crash). */
    void
    reset()
    {
        liveIds.clear();
        nextAlloc = 0;
    }

    std::uint8_t idCount() const { return numIds; }

    /** @name Checkpointing */
    /** @{ */
    void
    saveState(BlobWriter &w) const
    {
        w.u<std::uint8_t>(nextAlloc);
        w.u<std::uint64_t>(liveIds.size());
        for (std::uint8_t id : liveIds)
            w.u<std::uint8_t>(id);
    }

    void
    restoreState(BlobReader &r)
    {
        nextAlloc = r.u<std::uint8_t>();
        if (nextAlloc >= numIds)
            throw CheckpointError("bad txn-ID circle pointer");
        liveIds.clear();
        const std::size_t n = r.count(1);
        if (n > numIds)
            throw CheckpointError("too many live txn IDs");
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint8_t id = r.u<std::uint8_t>();
            if (id >= numIds)
                throw CheckpointError("bad live txn ID");
            liveIds.push_back(id);
        }
    }
    /** @} */

  private:
    static constexpr std::uint8_t noTxnIdSentinel = 0xFF;

    bool
    isLive(std::uint8_t id) const
    {
        for (std::uint8_t live_id : liveIds) {
            if (live_id == id)
                return true;
        }
        return false;
    }

    std::uint8_t numIds;
    std::uint8_t nextAlloc = 0;        //!< the circle pointer
    std::deque<std::uint8_t> liveIds;  //!< allocation order, oldest first
};

} // namespace slpmt

#endif // SLPMT_TXN_TXN_IDS_HH
