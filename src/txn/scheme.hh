/**
 * @file
 * The evaluated hardware transaction schemes (Section VI-C).
 *
 * - FG:       fine-grain logging baseline; log-free and lazy disabled.
 * - FG_LG:    FG plus log-free storeT.
 * - FG_LZ:    FG plus lazy persistency.
 * - SLPMT:    the full design (fine-grain + log-free + lazy).
 * - SLPMT_CL: SLPMT logging at cache-line granularity (Figure 9).
 * - ATOM:     cache-line-granularity logging with an eight-record
 *             coalescing buffer; no selective logging (HPCA'17).
 * - EDE:      arbitrary-granularity logging; records coalesce within a
 *             single store operation but persist immediately (no
 *             cross-store buffer); ordering barriers removed (ISCA'21).
 */

#ifndef SLPMT_TXN_SCHEME_HH
#define SLPMT_TXN_SCHEME_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"
#include "common/types.hh"

namespace slpmt
{

/** Which hardware persistent-memory transaction design runs. */
enum class SchemeKind : std::uint8_t
{
    FG,
    FG_LG,
    FG_LZ,
    SLPMT,
    SLPMT_CL,
    ATOM,
    EDE,
};

/** Knobs derived from the scheme (or set directly for ablations). */
struct SchemeConfig
{
    SchemeKind kind = SchemeKind::SLPMT;

    /** Log bitmap at word granularity (false: whole-line log bit). */
    bool fineGrainLogging = true;

    /** Honour the log-free operand of storeT. */
    bool allowLogFree = true;

    /** Honour the lazy operand of storeT. */
    bool allowLazy = true;

    /** Route records through the tiered coalescing buffer; when false
     *  every record persists as soon as it is created (EDE). */
    bool useLogBuffer = true;

    /** Extra cycles serialising a logged store against its log write.
     *  The hardware-decoupled designs (FG/SLPMT/ATOM) pay none; EDE
     *  retains a residual per-store ordering cost in its modified
     *  issue queue / write buffer. */
    Cycles storeFenceCycles = 0;

    /** Instruction work constructing one log record in software. The
     *  hardware logging engines (FG/SLPMT/ATOM) create records for
     *  free; EDE emits explicit record-building instructions per
     *  store (its contribution is removing the *fences*, not the
     *  record construction). */
    Cycles softwareLogCycles = 0;

    /** On-wire framing per software-constructed record (type/size
     *  header); hardware record formats are header-free beyond the
     *  address word. */
    Bytes softwareLogHeaderBytes = 0;

    /** Enable the Section III-B1 speculative log-bit rounding. */
    bool speculativeRounding = false;

    /** Number of core-local transaction IDs (lazy tracking depth). */
    std::uint8_t numTxnIds = 4;

    /** Build the configuration the paper evaluates for @p kind. */
    static SchemeConfig
    forKind(SchemeKind kind)
    {
        SchemeConfig cfg;
        cfg.kind = kind;
        switch (kind) {
          case SchemeKind::FG:
            cfg.allowLogFree = false;
            cfg.allowLazy = false;
            break;
          case SchemeKind::FG_LG:
            cfg.allowLazy = false;
            break;
          case SchemeKind::FG_LZ:
            cfg.allowLogFree = false;
            break;
          case SchemeKind::SLPMT:
            break;
          case SchemeKind::SLPMT_CL:
            cfg.fineGrainLogging = false;
            break;
          case SchemeKind::ATOM:
            cfg.fineGrainLogging = false;
            cfg.allowLogFree = false;
            cfg.allowLazy = false;
            break;
          case SchemeKind::EDE:
            cfg.allowLogFree = false;
            cfg.allowLazy = false;
            cfg.useLogBuffer = false;
            cfg.softwareLogCycles = 60;
            cfg.softwareLogHeaderBytes = 8;
            cfg.storeFenceCycles = 80;
            break;
          default:
            panic("unknown scheme kind");
        }
        return cfg;
    }
};

/** Human-readable scheme name for reports. */
inline std::string
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::FG: return "FG";
      case SchemeKind::FG_LG: return "FG+LG";
      case SchemeKind::FG_LZ: return "FG+LZ";
      case SchemeKind::SLPMT: return "SLPMT";
      case SchemeKind::SLPMT_CL: return "SLPMT-CL";
      case SchemeKind::ATOM: return "ATOM";
      case SchemeKind::EDE: return "EDE";
      default: return "?";
    }
}

} // namespace slpmt

#endif // SLPMT_TXN_SCHEME_HH
