/**
 * @file
 * The SLPMT hardware transaction engine.
 *
 * Implements the data path of Sections II and III for every evaluated
 * scheme: the store/storeT semantics of Table I, fine-grain undo
 * logging through the tiered log buffer, the commit persist ordering
 * of Figure 4, lazy persistency with working-set signatures and the
 * circular transaction-ID allocator, plus the ATOM and EDE baselines
 * and a redo-logging mode.
 *
 * Timing model: the engine owns the core clock. Every memory
 * instruction advances it by the hierarchy access latency plus any
 * logging/persist work it triggers; persist operations are charged
 * their WPQ issue latency, which includes stalls when the 512-byte
 * queue is full of writes still draining at the media write latency.
 * Workloads additionally charge pure compute through advance().
 */

#ifndef SLPMT_TXN_ENGINE_HH
#define SLPMT_TXN_ENGINE_HH

#include <array>
#include <cstdint>
#include <exception>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/hierarchy.hh"
#include "stats/stats.hh"
#include "logbuf/log_buffer.hh"
#include "txn/scheme.hh"
#include "txn/signature.hh"
#include "txn/txn_ids.hh"
#include "txn/undo_log_area.hh"

namespace slpmt
{

/** Operands of the storeT instruction (Figure 2). */
struct StoreFlags
{
    bool lazy = false;     //!< defer persisting past commit
    bool logFree = false;  //!< create no log record
};

/** Undo (in-place, default) or redo (out-of-place) logging. */
enum class LoggingStyle : std::uint8_t
{
    Undo,
    Redo,
};

/** Thrown by the fault-injection hook when the armed crash fires. */
class CrashInjected : public std::exception
{
  public:
    const char *what() const noexcept override
    {
        return "injected power failure";
    }
};

/** Fixed instruction overheads of the timing model. */
struct EngineCosts
{
    Cycles txBegin = 20;      //!< allocate ID, set up registers
    Cycles txCommit = 30;     //!< commit bookkeeping before persists
    Cycles lazyScan = 8;      //!< coherence scan kicking off a forced
                              //!< lazy persist

    /**
     * Round-trip of the commit-path coherence request persisting one
     * cache line: the core issues the request and the memory
     * controller acknowledges when the line reaches the persistence
     * domain (Section III-C2). Forced lazy persists issue the same
     * requests off the critical path and do not charge this.
     */
    Cycles commitPersistAck = nsToCycles(60);
};

/**
 * Per-core transaction engine; also the hierarchy's eviction client
 * and the log buffer's drain sink (wired through the devirtualized
 * setEvictionClient/setSink hooks — no virtual interfaces).
 */
class TxnEngine final
{
  public:
    /**
     * @param log_base,log_size Persistent log-area slice this engine
     *        appends to. 0/0 selects the map's whole log area (the
     *        single-core default); the multicore machine carves the
     *        area into per-core slices so concurrent engines never
     *        interleave records.
     */
    TxnEngine(const SchemeConfig &scheme, LoggingStyle style,
              const AddressMap &map, CacheHierarchy &hier, PmDevice &pm,
              StatsRegistry &stats, Addr log_base = 0, Bytes log_size = 0);

    TxnEngine(const TxnEngine &) = delete;
    TxnEngine &operator=(const TxnEngine &) = delete;

    /** @name Transaction control */
    /** @{ */
    void txBegin();
    void txCommit();

    /**
     * Abort the in-flight transaction for concurrency control
     * (Section V-B): invalidate its cache lines, clear the log buffer
     * and signature, and replay the undo log onto PM. Log-free data
     * is left for the caller's user-level recovery.
     */
    void txAbort();

    bool inTransaction() const { return inTxn; }
    std::uint64_t currentTxnSeq() const { return curSeq; }
    /** @} */

    /** @name Data path (the memory instructions) */
    /** @{ */
    /** load: read bytes through the hierarchy. */
    void load(Addr addr, void *out, std::size_t len);

    /** store: the ordinary logged, eagerly persistent store. */
    void
    store(Addr addr, const void *src, std::size_t len)
    {
        storeT(addr, src, len, StoreFlags{});
    }

    /**
     * storeT: store with selective-logging operands. Outside a
     * transaction, or when the scheme disables a feature, the
     * corresponding operand is ignored (the log-free flag of Figure 2
     * "disables the semantic of storeT").
     */
    void storeT(Addr addr, const void *src, std::size_t len,
                StoreFlags flags);
    /** @} */

    /** @name Coherence events from other cores (conflict tests) */
    /** @{ */
    /** @return true if the event conflicts with the in-flight txn. */
    bool remoteWrite(Addr addr);
    bool remoteRead(Addr addr);

    /**
     * Directory probe from another core (multicore machine): run the
     * paper's cross-transaction observation rules — the
     * store-triggered signature check and the line-owner txn-ID check
     * of Section III-C3 — against this core's state without moving
     * any data (the caller handles invalidation/downgrade
     * separately). Lazy drains forced this way are attributed to the
     * txn.lazyDrain.remote* counters; the drain work is charged to
     * this core's clock, since it is this core's WPQ traffic.
     *
     * @return true when the probed line belongs to this core's
     *         in-flight transaction (a cross-core conflict the
     *         machine must resolve by aborting this core)
     */
    bool remoteObserve(Addr addr, bool is_write);
    /** @} */

    /** @name Multicore sharing hooks (see src/multicore/machine.hh) */
    /** @{ */
    /** Share the transaction sequence counter across cores so
     *  (txn ID, txn seq) pairs stay globally unique. */
    void setSharedSeqCounter(std::uint64_t *counter) { seqSrc = counter; }

    /** Share the crash-after-N-stores countdown across cores so the
     *  machine can crash at a global store ordinal. */
    void
    setSharedCrashCountdown(std::uint64_t *countdown)
    {
        crashSrc = countdown;
    }
    /** @} */

    /**
     * Thread context switch (Section V-C): before switching out, the
     * OS kernel drains the log buffer so a crash while the thread is
     * descheduled cannot lose undo records whose data lines might
     * still overflow. The signatures and transaction-ID allocation
     * state are left untouched — they are not specific to a context.
     */
    void
    contextSwitch()
    {
        clock += logBuf.drainAll(clock);
    }

    /** @name Lazy persistency control */
    /** @{ */
    /** Force every outstanding lazily persistent line to PM (the
     *  "run four empty transactions" effect of Section III-C4). */
    void persistAllLazy();

    /** Number of committed transactions with volatile lazy data. */
    std::size_t lazyOutstandingCount() const;
    /** @} */

    /** @name Crash and recovery */
    /** @{ */
    /** Power failure: caches, log buffer, signatures and IDs vanish. */
    void crash();

    /**
     * Fault injection for tests: after @p n more store/storeT
     * instructions the engine crashes the machine and throws
     * CrashInjected, unwinding the workload mid-transaction.
     * Pass 0 to disarm.
     */
    void armCrashAfterStores(std::uint64_t n) { *crashSrc = n; }

    /**
     * Total store/storeT instructions executed so far — the ordinal
     * space armCrashAfterStores() counts in. The crash-point explorer
     * dry-runs a workload, reads this, and enumerates every value as
     * an injection point.
     */
    std::uint64_t
    storesExecuted() const
    {
        return statStores.get() + statStoreTs.get();
    }

    /**
     * Post-crash hardware-level recovery: replay the persistent undo
     * log (or redo log) onto the durable image and truncate it.
     * Structure-level fix-up of log-free data is the caller's job.
     *
     * @return number of log records applied
     */
    std::size_t recover();
    /** @} */

    /** @name Timing */
    /** @{ */
    Cycles now() const { return clock; }
    void advance(Cycles c) { clock += c; }
    /** @} */

    const SchemeConfig &scheme() const { return schemeCfg; }
    LoggingStyle style() const { return loggingStyle; }
    UndoLogArea &logArea() { return undoLog; }
    LogBuffer &buffer() { return logBuf; }

    /** @name Checkpointing
     *
     * Serializes every architectural register of the engine: clock,
     * txn-control state, per-ID signatures, log buffer tiers, the
     * undo-log tail, and the redo write/evicted sets. The shared
     * counter pointers (seqSrc/crashSrc) are wiring, not state — the
     * owning machine re-establishes them on construction and
     * serializes the shared counters itself when they are shared.
     */
    /** @{ */
    void saveState(BlobWriter &w) const;
    void restoreState(BlobReader &r);
    /** @} */

    /** Eviction-client hooks (CacheHierarchy::setEvictionClient). */
    Cycles evictingPrivateLine(CacheLine &line, Cycles when);
    std::pair<Cycles, std::uint8_t>
    roundUpLogBits(CacheLine &line, std::uint8_t missing_words,
                   Cycles when);

    /** Drain-sink hook (LogBuffer::setSink). */
    Cycles persistRecord(const LogRecord &rec, Cycles when);

  private:
    /** The full store data path for one line-contained segment. */
    Cycles storeSegment(Addr addr, const void *src, std::size_t len,
                        bool lazy, bool log_free, Cycles when);

    /** Create undo records for the unlogged words a store touches. */
    Cycles createLogRecords(CacheLine &line, Addr addr, std::size_t len,
                            Cycles when);

    /** EDE-style immediate record for a contiguous word span. */
    Cycles appendSpanEager(Addr base, std::size_t words,
                           const std::uint8_t *data, Cycles when);

    /** Redo-mode record creation (new values, post-memcpy). */
    Cycles redoLogSpan(CacheLine &line, Addr addr, std::size_t len,
                       Cycles when);

    /** Store-triggered signature check (Section III-C3). */
    Cycles checkSignaturesOnWrite(Addr addr, Cycles when);

    /** Access-triggered line-owner check (Section III-C3). Inline
     *  fast reject: almost every access hits a line carrying no
     *  owning-transaction tag at all. */
    Cycles
    checkLineOwner(const CacheLine &line, Cycles when)
    {
        if (line.txnId == noTxnId)
            return 0;
        return checkLineOwnerSlow(line, when);
    }

    /** The tagged-line tail of checkLineOwner(). */
    Cycles checkLineOwnerSlow(const CacheLine &line, Cycles when);

    /**
     * Single-entry cache over Signature::probeFor(). The probe is a
     * pure function of the line base (all signatures share the hash
     * functions), and consecutive loads/stores overwhelmingly hit the
     * same line, so the four-way mixing is skipped on repeats. The
     * sentinel ~0 can never equal a 64-byte-aligned line base.
     */
    const Signature::Probe &
    probeForLine(Addr base)
    {
        if (base != probeBase) {
            probeCache = Signature::probeFor(base);
            probeBase = base;
        }
        return probeCache;
    }

    /** Persist all lazy lines of live txns up to @p id (oldest first),
     *  releasing their IDs. @p reason attributes the forced lines. */
    Cycles persistLazyThrough(std::uint8_t id, Cycles when,
                              StatsRegistry::Counter &reason);

    /** Persist the lazy lines of exactly one committed txn. */
    Cycles persistLazyOf(std::uint8_t id, Cycles when,
                         StatsRegistry::Counter &reason);

    /** Commit paths per logging style. */
    Cycles commitUndo(Cycles when);
    Cycles commitRedo(Cycles when);

    SchemeConfig schemeCfg;
    LoggingStyle loggingStyle;
    const AddressMap &addrMap;
    CacheHierarchy &hier;
    PmDevice &pm;

    LogBuffer logBuf;
    UndoLogArea undoLog;
    TxnIdAllocator ids;
    EngineCosts costs;

    /** Per-ID state (index = core-local transaction ID). */
    struct IdState
    {
        Signature signature;          //!< working set of the txn
        std::uint64_t txnSeq = 0;
        bool lazyOutstanding = false; //!< committed w/ volatile lazy data
    };
    std::vector<IdState> idState;

    /** probeForLine() memo (see the helper above). */
    Addr probeBase = ~Addr{0};
    Signature::Probe probeCache{};

    Cycles clock = 0;
    std::uint64_t crashCountdown = 0;  //!< fault injection (0 = off)
    bool inTxn = false;
    std::uint8_t curId = noTxnId;
    std::uint64_t curSeq = 0;
    std::uint64_t globalSeq = 0;

    /** Sequence/countdown sources: own fields unless a multicore
     *  machine shares one counter across its engines. */
    std::uint64_t *seqSrc = &globalSeq;
    std::uint64_t *crashSrc = &crashCountdown;

    /** A remoteObserve() probe is running: attribute forced lazy
     *  drains to the cross-core counters. */
    bool remoteObserving = false;

    /**
     * Redo mode: lines written by the in-flight txn (volatile). A hash
     * set: the hot path only inserts and membership-tests. Every walk
     * must go through sortedWriteSet() — the commit persists and the
     * abort invalidations charge cycles per line, so iteration order
     * is observable and must stay the ascending-address order the
     * previous std::set produced (determinism rule: sort before any
     * ordered output).
     */
    std::unordered_set<Addr> redoWriteSet;

    /** The write set as a sorted drain order (see redoWriteSet). */
    std::vector<Addr> sortedWriteSet() const;

    /**
     * Redo mode (no-steal): images of in-flight logged lines whose
     * writeback was suppressed on private eviction. The shared cache
     * holds them as clean lines and may silently drop them, so the
     * engine restores the image on the next access — the software
     * stand-in for a hardware redo design servicing such reads from
     * the log. Volatile; cleared on commit, abort and crash. A hash
     * map: accessed only by point lookup, never iterated, so no sort
     * discipline is needed.
     */
    std::unordered_map<Addr, std::array<std::uint8_t, cacheLineSize>>
        redoEvicted;

    /** Restore @p line's data from redoEvicted if it was stashed. */
    void restoreRedoEvicted(CacheLine &line);

    StatsRegistry::Counter statTxns;
    StatsRegistry::Counter statCommits;
    StatsRegistry::Counter statAborts;
    StatsRegistry::Counter statLoads;
    StatsRegistry::Counter statStores;
    StatsRegistry::Counter statStoreTs;
    StatsRegistry::Counter statLogRecords;
    StatsRegistry::Counter statLinesPersistedAtCommit;
    StatsRegistry::Counter statLazyLinesDeferred;
    StatsRegistry::Counter statLazyForcedPersists;
    StatsRegistry::Counter statSigHits;
    StatsRegistry::Counter statIdReclaims;
    StatsRegistry::Counter statRecoverReplays;

    /** @name Why lazy lines were forced out (Section III-C3 taxonomy).
     *  Counted per line, so the seven sum to lazyForcedPersists. */
    /** @{ */
    StatsRegistry::Counter statLazyDrainSigHit;    //!< working-set hit
    StatsRegistry::Counter statLazyDrainLineOwner; //!< foreign-ID access
    StatsRegistry::Counter statLazyDrainIdWrap;    //!< circular-ID reclaim
    StatsRegistry::Counter statLazyDrainEviction;  //!< private overflow
    StatsRegistry::Counter statLazyDrainExplicit;  //!< persistAllLazy()

    /** Cross-core flavours of sigHit/lineOwner: another core's access
     *  observed this core's signature or lazy txn ID (the paper's
     *  drain condition (b) seen through the coherence directory). */
    StatsRegistry::Counter statLazyDrainRemoteSigHit;
    StatsRegistry::Counter statLazyDrainRemoteIdObserved;
    /** @} */

    /** Bytes stored with an effective lazy / log-free operand. */
    StatsRegistry::Counter statLazyStoreBytes;
    StatsRegistry::Counter statLogFreeStoreBytes;

    /** Word-log events the log-free operand elided (pre-dedup). */
    StatsRegistry::Counter statLogFreeWordsElided;

    StatsRegistry::Histogram statCommitCycles;  //!< commit-path latency
    StatsRegistry::Histogram statStoreBytes;    //!< store/storeT sizes
};

} // namespace slpmt

#endif // SLPMT_TXN_ENGINE_HH
