#include "txn/undo_log_area.hh"

#include <cstring>

#include "common/logging.hh"
#include "mem/persist_tracker.hh"

namespace slpmt
{

namespace
{

/** Pack base address + size class + valid flag into the header word. */
std::uint64_t
packHeader(Addr base, std::uint8_t words)
{
    std::uint8_t log2w = 0;
    switch (words) {
      case 1: log2w = 0; break;
      case 2: log2w = 1; break;
      case 4: log2w = 2; break;
      case 8: log2w = 3; break;
      default: panic("undo record with unsupported word count");
    }
    return base | (static_cast<std::uint64_t>(log2w) << 1) | 1ULL;
}

} // namespace

Cycles
UndoLogArea::append(const LogRecord &rec, Cycles now,
                    std::uint64_t txn_seq, Bytes extra_bytes)
{
    // The stored layout is fixed so recovery scans stay self-framing;
    // extra_bytes only inflates the accounted write traffic (and WPQ
    // occupancy is unchanged at this size).
    const Bytes entry = entryBytes(rec.words);
    panicIfNot(tail + entry + wordSize <= areaBase + areaSize,
               "undo log area overflow");
    statAppends++;
    statWireBytes += rec.wireBytes() + extra_bytes;

    // Entry, then a zero terminator so a recovery scan stops here.
    std::uint8_t buf[cacheLineSize + 2 * wordSize] = {};
    const std::uint64_t header = packHeader(rec.base, rec.words);
    std::memcpy(buf, &header, wordSize);
    std::memcpy(buf + wordSize, rec.data.data(), rec.spanBytes());
    // Trailing bytes stay zero: the terminator.

    const Cycles cycles =
        pm.persistBytes(tail, buf, entry + wordSize, now,
                        PersistKind::LogRecord, txn_seq,
                        rec.wireBytes() + extra_bytes)
            .issueCycles;
    tail += entry;
    return cycles;
}

Cycles
UndoLogArea::truncate(Cycles now, std::uint64_t txn_seq)
{
    statTruncates++;
    statTruncateBytes += sizeof(std::uint64_t);
    tail = areaBase;
    const std::uint64_t zero = 0;
    return pm.persistBytes(areaBase, &zero, sizeof(zero), now,
                           PersistKind::Marker, txn_seq, sizeof(zero))
        .issueCycles;
}

std::vector<LogRecord>
UndoLogArea::scanValid() const
{
    std::vector<LogRecord> out;
    Addr cursor = areaBase;
    while (cursor + wordSize <= areaBase + areaSize) {
        std::uint64_t header = 0;
        pm.peek(cursor, &header, sizeof(header));
        if ((header & 1ULL) == 0)
            break;
        LogRecord rec;
        rec.words = static_cast<std::uint8_t>(1U << ((header >> 1) & 3));
        rec.base = header & ~static_cast<std::uint64_t>(7);
        pm.peek(cursor + wordSize, rec.data.data(), rec.spanBytes());
        out.push_back(rec);
        cursor += entryBytes(rec.words);
    }
    return out;
}

std::size_t
UndoLogArea::applyUndo()
{
    const std::vector<LogRecord> records = scanValid();
    // Reverse order: if a word was logged twice (duplicate logging
    // after an eviction/refetch, Section III-B1), the oldest record
    // holds the pre-transaction value and must win.
    for (auto it = records.rbegin(); it != records.rend(); ++it)
        pm.poke(it->base, it->data.data(), it->spanBytes());
    statUndoApplied += records.size();

    const std::uint64_t zero = 0;
    pm.poke(areaBase, &zero, sizeof(zero));
    tail = areaBase;
    return records.size();
}

} // namespace slpmt
