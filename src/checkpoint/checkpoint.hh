/**
 * @file
 * Whole-machine checkpoint/restore (the gem5-style fast-forward
 * methodology applied to crash sweeps).
 *
 * A MachineCheckpoint captures every architectural register of a
 * simulated machine — all cache levels with line data and per-word
 * log bits / txn-ID / lazy metadata (the metadata line index is
 * rebuilt on restore), log buffer tiers, the transaction engine's
 * write sets, signatures and ID allocator, the WPQ and media timing
 * state, the undo-log tail, the persistent heap tables, the stats
 * registry, and the store-site registry — plus page-level
 * copy-on-write snapshots of the PM and DRAM images. Snapshots share
 * unmodified pages with the live machine and with each other, so K
 * checkpoints of a trace cost K page tables plus only the pages that
 * diverge between them (a shared-prefix chain), not K full heaps.
 *
 * The contract is bit-exactness: restoring a checkpoint into a
 * freshly constructed machine of the identical configuration and
 * continuing the run produces byte-identical PM images, stats
 * snapshots, and reports to a run that never checkpointed. The
 * in-memory form is what the crash sweeps fork from; toBytes() /
 * fromBytes() add a versioned, fingerprinted, CRC-protected portable
 * encoding used by the round-trip and rejection tests.
 *
 * A checkpoint is immutable after capture; shared_ptr page refcounts
 * are atomic, so any number of sweep workers may restore from the
 * same checkpoint concurrently.
 */

#ifndef SLPMT_CHECKPOINT_CHECKPOINT_HH
#define SLPMT_CHECKPOINT_CHECKPOINT_HH

#include <cstdint>
#include <vector>

#include "checkpoint/serde.hh"
#include "mem/paged_memory.hh"

namespace slpmt
{

class PmSystem;
class McMachine;

/** One captured machine state (single- or multi-core). */
class MachineCheckpoint
{
  public:
    /** Bumped on any change to the serialized layout. */
    static constexpr std::uint32_t formatVersion = 1;

    /** Capture the complete state of a single-core machine. */
    static MachineCheckpoint capture(PmSystem &sys);

    /** Capture the complete state of a multi-core machine. */
    static MachineCheckpoint capture(McMachine &machine);

    /**
     * Restore into @p sys, which must be constructed with the same
     * SystemConfig the checkpoint was captured from (the construction
     * re-wires every sink/client pointer; restore only rewrites
     * state). Throws CheckpointError on a configuration-fingerprint
     * mismatch. The checkpoint remains valid and reusable.
     */
    void restore(PmSystem &sys) const;
    void restore(McMachine &machine) const;

    /** Portable encoding: header + state blob + pages + CRC trailer. */
    std::vector<std::uint8_t> toBytes() const;

    /**
     * Decode a portable checkpoint. Throws CheckpointError on a bad
     * magic, an unsupported format version, a CRC mismatch, or any
     * truncation.
     */
    static MachineCheckpoint
    fromBytes(const std::vector<std::uint8_t> &bytes);

    /** The capture-time configuration fingerprint. */
    std::uint64_t configFingerprint() const { return fingerprint; }

    /** Host-side cost estimate: distinct pages referenced. */
    std::size_t
    pagesHeld() const
    {
        return pmPages.size() + dramPages.size();
    }

  private:
    MachineCheckpoint() = default;

    std::uint64_t fingerprint = 0;    //!< machine configuration hash
    std::vector<std::uint8_t> blob;   //!< non-page architectural state
    PagedMemory::Snapshot pmPages;    //!< durable image (CoW)
    PagedMemory::Snapshot dramPages;  //!< volatile image (CoW)
};

/** Configuration fingerprints (exposed for tests). */
std::uint64_t checkpointFingerprint(const PmSystem &sys);
std::uint64_t checkpointFingerprint(const McMachine &machine);

} // namespace slpmt

#endif // SLPMT_CHECKPOINT_CHECKPOINT_HH
