#include "checkpoint/checkpoint.hh"

#include <cstring>

#include "common/rng.hh"
#include "core/pm_system.hh"
#include "multicore/machine.hh"

namespace slpmt
{

namespace
{

/** "SLPC" little-endian. */
constexpr std::uint32_t blobMagic = 0x43504c53u;

std::uint64_t
fpMix(std::uint64_t h, std::uint64_t v)
{
    return mix64(h ^ v);
}

std::uint64_t
fpCache(std::uint64_t h, const CacheConfig &c)
{
    h = fpMix(h, c.sizeBytes);
    h = fpMix(h, c.ways);
    h = fpMix(h, c.hitLatency);
    return h;
}

/** Hash every configuration knob that shapes the serialized layout or
 *  the machine's behaviour; a checkpoint only restores into a machine
 *  whose fingerprint matches. */
std::uint64_t
fingerprintOf(const SystemConfig &cfg)
{
    std::uint64_t h = 0x5150'4d54'434b'5054ULL;
    h = fpMix(h, static_cast<std::uint64_t>(cfg.scheme.kind));
    h = fpMix(h, (cfg.scheme.fineGrainLogging ? 1u : 0u) |
                     (cfg.scheme.allowLogFree ? 2u : 0u) |
                     (cfg.scheme.allowLazy ? 4u : 0u) |
                     (cfg.scheme.useLogBuffer ? 8u : 0u) |
                     (cfg.scheme.speculativeRounding ? 16u : 0u));
    h = fpMix(h, cfg.scheme.storeFenceCycles);
    h = fpMix(h, cfg.scheme.softwareLogCycles);
    h = fpMix(h, cfg.scheme.softwareLogHeaderBytes);
    h = fpMix(h, cfg.scheme.numTxnIds);
    h = fpMix(h, static_cast<std::uint64_t>(cfg.style));
    h = fpMix(h, cfg.numCores);
    h = fpMix(h, cfg.useMetaIndex ? 1 : 0);
    h = fpMix(h, cfg.map.dramBase);
    h = fpMix(h, cfg.map.dramSize);
    h = fpMix(h, cfg.map.pmBase);
    h = fpMix(h, cfg.map.pmSize);
    h = fpMix(h, cfg.pm.wpqBytes);
    h = fpMix(h, cfg.pm.wpqLatencyNs);
    h = fpMix(h, cfg.pm.readLatencyNs);
    h = fpMix(h, cfg.pm.writeLatencyNs);
    h = fpMix(h, cfg.pm.mediaBanks);
    h = fpMix(h, cfg.pm.sequentialFactor);
    h = fpMix(h, cfg.dram.rowHitNs);
    h = fpMix(h, cfg.dram.rowMissNs);
    h = fpMix(h, cfg.dram.rowBytes);
    h = fpCache(h, cfg.hierarchy.l1);
    h = fpCache(h, cfg.hierarchy.l2);
    h = fpCache(h, cfg.hierarchy.l3);
    return h;
}

/** Blob tag distinguishing the two machine shapes. */
enum class MachineKind : std::uint8_t { SingleCore = 1, MultiCore = 2 };

void
saveSites(BlobWriter &w, const StoreSiteRegistry &sites)
{
    w.u<std::uint64_t>(sites.size());
    for (const StoreSiteInfo &s : sites.all()) {
        w.str(s.name);
        w.b(s.manual.lazy);
        w.b(s.manual.logFree);
        w.u<std::uint8_t>(static_cast<std::uint8_t>(s.origin));
        w.b(s.targetsFreshAlloc);
        w.b(s.targetsDeadRegion);
        w.b(s.rebuildable);
        w.b(s.requiresDeepSemantics);
        w.u<std::uint64_t>(s.defUseDepth);
    }
}

void
restoreSites(BlobReader &r, StoreSiteRegistry &sites)
{
    // Re-adding in serialized order reproduces the identical SiteId
    // assignment; workload setup is not re-run on restored machines.
    sites.clear();
    const std::size_t n = r.count(1);
    for (std::size_t i = 0; i < n; ++i) {
        StoreSiteInfo s;
        s.name = r.str();
        s.manual.lazy = r.b();
        s.manual.logFree = r.b();
        const std::uint8_t origin = r.u<std::uint8_t>();
        if (origin > static_cast<std::uint8_t>(ValueOrigin::Computed))
            throw CheckpointError("bad store-site origin");
        s.origin = static_cast<ValueOrigin>(origin);
        s.targetsFreshAlloc = r.b();
        s.targetsDeadRegion = r.b();
        s.rebuildable = r.b();
        s.requiresDeepSemantics = r.b();
        s.defUseDepth = r.u<std::uint64_t>();
        sites.add(std::move(s));
    }
}

void
savePages(BlobWriter &w, const PagedMemory::Snapshot &snap)
{
    std::vector<Addr> nums;
    nums.reserve(snap.size());
    for (const auto &kv : snap)
        nums.push_back(kv.first);
    std::sort(nums.begin(), nums.end());
    w.u<std::uint64_t>(nums.size());
    for (Addr num : nums) {
        w.u<Addr>(num);
        const auto &page = *snap.at(num);
        w.bytes(page.data(), page.size());
    }
}

PagedMemory::Snapshot
restorePages(BlobReader &r)
{
    PagedMemory::Snapshot snap;
    const std::size_t n =
        r.count(sizeof(Addr) + PagedMemory::pageSize);
    snap.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Addr num = r.u<Addr>();
        auto page = std::make_shared<PagedMemory::Page>();
        r.bytes(page->data(), page->size());
        if (!snap.emplace(num, std::move(page)).second)
            throw CheckpointError("duplicate page in blob");
    }
    return snap;
}

} // namespace

std::uint64_t
checkpointFingerprint(const PmSystem &sys)
{
    return fingerprintOf(sys.cfg());
}

std::uint64_t
checkpointFingerprint(const McMachine &machine)
{
    return fingerprintOf(machine.cfg());
}

MachineCheckpoint
MachineCheckpoint::capture(PmSystem &sys)
{
    MachineCheckpoint ckpt;
    ckpt.fingerprint = checkpointFingerprint(sys);

    BlobWriter w;
    w.u<std::uint8_t>(
        static_cast<std::uint8_t>(MachineKind::SingleCore));
    sys.stats().saveState(w);
    saveSites(w, sys.sites());
    sys.heap().saveState(w);
    sys.pm().saveState(w);
    sys.dram().saveState(w);
    sys.hierarchy().l1().saveState(w);
    sys.hierarchy().l2().saveState(w);
    sys.hierarchy().l3().saveState(w);
    sys.engine().saveState(w);
    ckpt.blob = w.data();

    ckpt.pmPages = sys.pm().memory().snapshot();
    ckpt.dramPages = sys.dram().memory().snapshot();
    return ckpt;
}

void
MachineCheckpoint::restore(PmSystem &sys) const
{
    if (fingerprint != checkpointFingerprint(sys))
        throw CheckpointError("machine configuration mismatch");

    BlobReader r(blob);
    const auto kind = r.u<std::uint8_t>();
    if (kind != static_cast<std::uint8_t>(MachineKind::SingleCore))
        throw CheckpointError("not a single-core checkpoint");
    sys.stats().restoreState(r);
    restoreSites(r, sys.sites());
    sys.heap().restoreState(r);
    sys.pm().restoreState(r);
    sys.dram().restoreState(r);
    sys.hierarchy().l1().restoreState(r);
    sys.hierarchy().l2().restoreState(r);
    sys.hierarchy().l3().restoreState(r);
    sys.engine().restoreState(r);
    if (!r.atEnd())
        throw CheckpointError("trailing bytes in blob");

    sys.pm().memory().restore(pmPages);
    sys.dram().memory().restore(dramPages);
}

MachineCheckpoint
MachineCheckpoint::capture(McMachine &machine)
{
    MachineCheckpoint ckpt;
    ckpt.fingerprint = checkpointFingerprint(machine);

    BlobWriter w;
    w.u<std::uint8_t>(
        static_cast<std::uint8_t>(MachineKind::MultiCore));
    w.u<std::uint64_t>(machine.numCores());
    w.u<std::uint64_t>(machine.sharedSeqCounter());
    w.u<std::uint64_t>(machine.sharedCrashCountdown());
    machine.sharedStats().saveState(w);
    saveSites(w, machine.sites());
    machine.heap().saveState(w);
    machine.pm().saveState(w);
    machine.dram().saveState(w);
    machine.l3().saveState(w);
    for (std::size_t i = 0; i < machine.numCores(); ++i) {
        McCore &core = machine.core(i);
        core.stats().saveState(w);
        core.hierarchy().l1().saveState(w);
        core.hierarchy().l2().saveState(w);
        core.engine().saveState(w);
    }
    ckpt.blob = w.data();

    ckpt.pmPages = machine.pm().memory().snapshot();
    ckpt.dramPages = machine.dram().memory().snapshot();
    return ckpt;
}

void
MachineCheckpoint::restore(McMachine &machine) const
{
    if (fingerprint != checkpointFingerprint(machine))
        throw CheckpointError("machine configuration mismatch");

    BlobReader r(blob);
    const auto kind = r.u<std::uint8_t>();
    if (kind != static_cast<std::uint8_t>(MachineKind::MultiCore))
        throw CheckpointError("not a multi-core checkpoint");
    const std::uint64_t cores = r.u<std::uint64_t>();
    if (cores != machine.numCores())
        throw CheckpointError("core count mismatch");
    machine.setSharedSeqCounter(r.u<std::uint64_t>());
    machine.armCrashAfterStores(r.u<std::uint64_t>());
    machine.sharedStats().restoreState(r);
    restoreSites(r, machine.sites());
    machine.heap().restoreState(r);
    machine.pm().restoreState(r);
    machine.dram().restoreState(r);
    machine.l3().restoreState(r);
    for (std::size_t i = 0; i < machine.numCores(); ++i) {
        McCore &core = machine.core(i);
        core.stats().restoreState(r);
        core.hierarchy().l1().restoreState(r);
        core.hierarchy().l2().restoreState(r);
        core.engine().restoreState(r);
    }
    if (!r.atEnd())
        throw CheckpointError("trailing bytes in blob");

    machine.pm().memory().restore(pmPages);
    machine.dram().memory().restore(dramPages);
}

std::vector<std::uint8_t>
MachineCheckpoint::toBytes() const
{
    BlobWriter w;
    w.u<std::uint32_t>(blobMagic);
    w.u<std::uint32_t>(formatVersion);
    w.u<std::uint64_t>(fingerprint);
    w.u<std::uint64_t>(blob.size());
    w.bytes(blob.data(), blob.size());
    savePages(w, pmPages);
    savePages(w, dramPages);
    std::vector<std::uint8_t> out = w.data();
    const std::uint32_t crc = crc32c(out.data(), out.size());
    for (std::size_t i = 0; i < 4; ++i)
        out.push_back(
            static_cast<std::uint8_t>((crc >> (8 * i)) & 0xff));
    return out;
}

MachineCheckpoint
MachineCheckpoint::fromBytes(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < 4)
        throw CheckpointError("truncated blob");
    const std::size_t body = bytes.size() - 4;
    std::uint32_t stored = 0;
    for (std::size_t i = 0; i < 4; ++i)
        stored |= static_cast<std::uint32_t>(bytes[body + i])
                  << (8 * i);
    if (crc32c(bytes.data(), body) != stored)
        throw CheckpointError("CRC mismatch (corrupt blob)");

    BlobReader r(bytes.data(), body);
    if (r.u<std::uint32_t>() != blobMagic)
        throw CheckpointError("bad magic");
    const std::uint32_t version = r.u<std::uint32_t>();
    if (version != formatVersion)
        throw CheckpointError("unsupported format version " +
                              std::to_string(version));
    MachineCheckpoint ckpt;
    ckpt.fingerprint = r.u<std::uint64_t>();
    const std::size_t blob_len = r.count(1);
    ckpt.blob.resize(blob_len);
    r.bytes(ckpt.blob.data(), blob_len);
    ckpt.pmPages = restorePages(r);
    ckpt.dramPages = restorePages(r);
    if (!r.atEnd())
        throw CheckpointError("trailing bytes after pages");
    return ckpt;
}

} // namespace slpmt
