/**
 * @file
 * Binary serialization primitives for machine-state checkpoints.
 *
 * A checkpoint blob is a flat little-endian byte stream: fixed-width
 * integers, length-prefixed strings/vectors, raw byte spans. The
 * writer is append-only; the reader is strictly bounds-checked and
 * throws CheckpointError on any truncated or malformed read, so a
 * damaged blob is rejected instead of silently restoring garbage.
 *
 * Components serialize themselves via saveState(BlobWriter&) const /
 * restoreState(BlobReader&) member pairs; this header is intentionally
 * dependency-free (common/ only) so every layer of the machine can
 * include it without cycles.
 */

#ifndef SLPMT_CHECKPOINT_SERDE_HH
#define SLPMT_CHECKPOINT_SERDE_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace slpmt
{

/** Thrown on any malformed, truncated, or mismatched checkpoint. */
class CheckpointError : public std::runtime_error
{
  public:
    explicit CheckpointError(const std::string &what)
        : std::runtime_error("checkpoint: " + what)
    {
    }
};

/** Append-only little-endian blob builder. */
class BlobWriter
{
  public:
    /** Any integral or enum value, stored little-endian at its width. */
    template <typename T>
    void
    u(T value)
    {
        static_assert(std::is_integral<T>::value ||
                          std::is_enum<T>::value,
                      "BlobWriter::u takes integral/enum types");
        using U = typename std::make_unsigned<
            typename std::conditional<std::is_enum<T>::value,
                                      std::underlying_type<T>,
                                      std::enable_if<true, T>>::type::
                type>::type;
        U v = static_cast<U>(value);
        for (std::size_t i = 0; i < sizeof(U); ++i)
            buf.push_back(
                static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }

    void b(bool value) { u<std::uint8_t>(value ? 1 : 0); }

    /** Raw byte span, no length prefix (caller knows the size). */
    void
    bytes(const void *src, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(src);
        buf.insert(buf.end(), p, p + len);
    }

    /** Length-prefixed string. */
    void
    str(const std::string &s)
    {
        u<std::uint64_t>(s.size());
        bytes(s.data(), s.size());
    }

    const std::vector<std::uint8_t> &data() const { return buf; }
    std::size_t size() const { return buf.size(); }

  private:
    std::vector<std::uint8_t> buf;
};

/** Bounds-checked reader over a checkpoint blob. */
class BlobReader
{
  public:
    BlobReader(const std::uint8_t *data, std::size_t len)
        : cur(data), end(data + len)
    {
    }

    explicit BlobReader(const std::vector<std::uint8_t> &blob)
        : BlobReader(blob.data(), blob.size())
    {
    }

    template <typename T>
    T
    u()
    {
        static_assert(std::is_integral<T>::value ||
                          std::is_enum<T>::value,
                      "BlobReader::u yields integral/enum types");
        using U = typename std::make_unsigned<
            typename std::conditional<std::is_enum<T>::value,
                                      std::underlying_type<T>,
                                      std::enable_if<true, T>>::type::
                type>::type;
        need(sizeof(U));
        U v = 0;
        for (std::size_t i = 0; i < sizeof(U); ++i)
            v |= static_cast<U>(cur[i]) << (8 * i);
        cur += sizeof(U);
        return static_cast<T>(v);
    }

    bool
    b()
    {
        const std::uint8_t v = u<std::uint8_t>();
        if (v > 1)
            throw CheckpointError("corrupt bool encoding");
        return v != 0;
    }

    void
    bytes(void *dst, std::size_t len)
    {
        need(len);
        std::memcpy(dst, cur, len);
        cur += len;
    }

    std::string
    str()
    {
        const std::uint64_t len = u<std::uint64_t>();
        need(len);
        std::string s(reinterpret_cast<const char *>(cur),
                      static_cast<std::size_t>(len));
        cur += len;
        return s;
    }

    /** A length read from the stream, sanity-bounded to what the
     *  remaining bytes could possibly hold (element size @p elem). */
    std::size_t
    count(std::size_t elem)
    {
        const std::uint64_t n = u<std::uint64_t>();
        if (elem > 0 && n > remaining() / elem)
            throw CheckpointError("element count exceeds blob size");
        return static_cast<std::size_t>(n);
    }

    std::size_t
    remaining() const
    {
        return static_cast<std::size_t>(end - cur);
    }

    bool atEnd() const { return cur == end; }

  private:
    void
    need(std::size_t len)
    {
        if (remaining() < len)
            throw CheckpointError("truncated blob");
    }

    const std::uint8_t *cur;
    const std::uint8_t *end;
};

/**
 * CRC-32C (Castagnoli), bitwise implementation. Slow-but-simple is
 * fine: the trailer guards against torn checkpoint files, not
 * high-rate streaming.
 */
inline std::uint32_t
crc32c(const std::uint8_t *data, std::size_t len)
{
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i) {
        crc ^= data[i];
        for (int k = 0; k < 8; ++k)
            crc = (crc >> 1) ^ (0x82f63b78u & (0u - (crc & 1u)));
    }
    return crc ^ 0xffffffffu;
}

} // namespace slpmt

#endif // SLPMT_CHECKPOINT_SERDE_HH
