/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * experiments. All workload generators and hash functions derive their
 * randomness from this splitmix64/xoshiro256** pair so a given seed
 * always produces the same simulation, independent of the platform's
 * standard-library implementation.
 */

#ifndef SLPMT_COMMON_RNG_HH
#define SLPMT_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace slpmt
{

/** One splitmix64 step; also used as a standalone integer mixer. */
constexpr std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless mix of a single value; used for signature hashing. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    std::uint64_t s = x;
    return splitmix64(s);
}

/**
 * Salted stateless mix: one hash function of a salt-indexed family.
 * Exactly mix64(x ^ salt) — the signature hash of Section III-C3 —
 * named so callers that precompute a whole probe and callers that mix
 * inline provably evaluate the same expression.
 */
constexpr std::uint64_t
mix64Salted(std::uint64_t x, std::uint64_t salt)
{
    return mix64(x ^ salt);
}

/**
 * xoshiro256** generator. Small, fast, and deterministic across
 * platforms; quality is far beyond what workload generation needs.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL) { reseed(seed); }

    /** Reset the stream from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        for (auto &word : state)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection-free Lemire reduction is overkill here; modulo bias
        // is negligible for the bounds workloads use (< 2^32).
        return next() % bound;
    }

    /** Uniform value in [lo, hi]. */
    std::uint64_t
    inRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** The raw generator state (checkpoint capture). */
    std::array<std::uint64_t, 4> rawState() const { return state; }

    /** Restore a previously captured raw state. */
    void setRawState(const std::array<std::uint64_t, 4> &s)
    {
        state = s;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state{};
};

} // namespace slpmt

#endif // SLPMT_COMMON_RNG_HH
