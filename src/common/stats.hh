/**
 * @file
 * A lightweight named-counter registry, loosely modelled after gem5's
 * statistics package. Components register scalar counters; experiment
 * harnesses snapshot and diff them to report per-phase deltas.
 */

#ifndef SLPMT_COMMON_STATS_HH
#define SLPMT_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace slpmt
{

/** A snapshot of every counter value at one instant. */
using StatsSnapshot = std::map<std::string, std::uint64_t>;

/**
 * Registry of named monotonically increasing counters.
 *
 * Counters are created on first use. The registry is owned by the
 * top-level system object; components hold a reference and bump
 * counters by name through cached Counter handles.
 */
class StatsRegistry
{
  public:
    /** A cheap handle to one counter; valid as long as the registry. */
    class Counter
    {
      public:
        Counter() = default;

        void operator+=(std::uint64_t n) { if (value) *value += n; }
        void operator++(int) { if (value) ++*value; }
        std::uint64_t get() const { return value ? *value : 0; }

      private:
        friend class StatsRegistry;
        explicit Counter(std::uint64_t *v) : value(v) {}
        std::uint64_t *value = nullptr;
    };

    /** Get (creating if needed) a handle for a named counter. */
    Counter
    counter(const std::string &name)
    {
        return Counter(&values[name]);
    }

    /** Read one counter (0 if it was never created). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = values.find(name);
        return it == values.end() ? 0 : it->second;
    }

    /** Snapshot every counter. */
    StatsSnapshot
    snapshot() const
    {
        return {values.begin(), values.end()};
    }

    /** Difference of two snapshots (after - before, clamped at 0). */
    static StatsSnapshot
    delta(const StatsSnapshot &before, const StatsSnapshot &after)
    {
        StatsSnapshot d;
        for (const auto &[name, val] : after) {
            auto it = before.find(name);
            std::uint64_t prev = it == before.end() ? 0 : it->second;
            d[name] = val >= prev ? val - prev : 0;
        }
        return d;
    }

    /** Reset every counter to zero (registry structure is kept). */
    void
    reset()
    {
        for (auto &[name, val] : values)
            val = 0;
    }

  private:
    std::map<std::string, std::uint64_t> values;
};

} // namespace slpmt

#endif // SLPMT_COMMON_STATS_HH
