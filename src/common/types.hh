/**
 * @file
 * Fundamental types and constants shared by every SLPMT module.
 *
 * The simulated machine follows the configuration of Table III in the
 * paper: 64-byte cache lines, 8-byte words, a 2 GHz clock (so 1 ns is
 * two cycles), and an Intel ADR-style persistence domain whose boundary
 * is the memory controller's write pending queue (WPQ).
 */

#ifndef SLPMT_COMMON_TYPES_HH
#define SLPMT_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace slpmt
{

/** A physical address in the simulated machine. */
using Addr = std::uint64_t;

/** A duration or point in time measured in CPU cycles. */
using Cycles = std::uint64_t;

/** A byte count (cache traffic, record sizes, ...). */
using Bytes = std::uint64_t;

/** Size of a cache line in bytes on all levels of the hierarchy. */
inline constexpr std::size_t cacheLineSize = 64;

/** Size of a machine word in bytes; the unit of fine-grain logging. */
inline constexpr std::size_t wordSize = 8;

/** Number of words per cache line (eight 8-byte words in 64 bytes). */
inline constexpr std::size_t wordsPerLine = cacheLineSize / wordSize;

/** Simulated core clock in MHz (Table III: 2 GHz). */
inline constexpr std::uint64_t clockMhz = 2000;

/** Convert nanoseconds to cycles at the simulated clock. */
constexpr Cycles
nsToCycles(std::uint64_t ns)
{
    return ns * clockMhz / 1000;
}

/** Round an address down to its cache-line base. */
constexpr Addr
lineBase(Addr addr)
{
    return addr & ~static_cast<Addr>(cacheLineSize - 1);
}

/** Offset of an address within its cache line. */
constexpr std::size_t
lineOffset(Addr addr)
{
    return static_cast<std::size_t>(addr & (cacheLineSize - 1));
}

/** Round an address down to its word base. */
constexpr Addr
wordBase(Addr addr)
{
    return addr & ~static_cast<Addr>(wordSize - 1);
}

/** Index of the word an address falls in within its cache line. */
constexpr std::size_t
wordIndex(Addr addr)
{
    return lineOffset(addr) / wordSize;
}

/** Round a byte count up to whole cache lines. */
constexpr Bytes
roundUpToLines(Bytes bytes)
{
    return (bytes + cacheLineSize - 1) / cacheLineSize * cacheLineSize;
}

} // namespace slpmt

#endif // SLPMT_COMMON_TYPES_HH
