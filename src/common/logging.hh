/**
 * @file
 * Error-reporting helpers in the spirit of gem5's base/logging.hh.
 *
 * panic() flags simulator bugs (conditions that must never happen no
 * matter what the user does) and aborts; fatal() flags user errors
 * (bad configuration, invalid arguments) and exits cleanly; warn() and
 * inform() report status without stopping the simulation.
 */

#ifndef SLPMT_COMMON_LOGGING_HH
#define SLPMT_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace slpmt
{

/** Thrown by panic(): an internal simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user asked for something unsupported. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * Report an internal simulator bug and abort the simulation.
 * Implemented as an exception so tests can assert on invariants.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

[[noreturn]] inline void
panic(const char *msg)
{
    throw PanicError(std::string("panic: ") + msg);
}

/** Report a user-caused unrecoverable condition. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

/** Report suspicious but survivable behaviour to the console. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Report normal operating status to the console. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/**
 * panic() unless a condition holds. Templated on the message type so
 * a string-literal call site costs nothing on the success path — the
 * old `const std::string&` signature heap-allocated the message on
 * every call, which was measurable in the cache hot loops. Callers
 * that build a dynamic message still pay for it eagerly; keep those
 * off hot paths.
 */
template <typename Msg>
inline void
panicIfNot(bool cond, const Msg &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace slpmt

#endif // SLPMT_COMMON_LOGGING_HH
