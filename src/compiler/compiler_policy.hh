/**
 * @file
 * The compiler-assisted annotation pass (Section IV-B), modelled as an
 * inference over registered store-site facts.
 *
 * The paper implements this as a clang/LLVM pass using MemorySSA; the
 * decision procedure, however, consumes only static dataflow facts:
 *
 *  - Pattern 1 (log-free): the store targets a region allocated by a
 *    function called before/within the transaction (malloc), so
 *    recovery can reclaim the leaked region with a GC, or a region
 *    the transaction frees, whose updates need no persistence.
 *  - Pattern 2 (lazy): the stored value and its address are
 *    recoverable from other persistent data or log records, derived
 *    by walking def-use chains of flow-out variables.
 *
 * Sites whose justification needs semantics beyond such dataflow
 * analysis (the red-black tree's colour bits, occupancy counters —
 * flagged requiresDeepSemantics) are refused, which is exactly why
 * the paper's compiler finds 16 of the 26 manually annotated
 * variables (Section VI-D4).
 */

#ifndef SLPMT_COMPILER_COMPILER_POLICY_HH
#define SLPMT_COMPILER_COMPILER_POLICY_HH

#include <cstddef>
#include <string>

#include "core/annotation.hh"

namespace slpmt
{

/** The automatic storeT-insertion pass. */
class CompilerAnnotationPolicy : public AnnotationPolicy
{
  public:
    StoreFlags
    flagsFor(const StoreSiteInfo &site) const override
    {
        StoreFlags flags;
        if (site.requiresDeepSemantics)
            return flags;  // the analysis cannot prove the pattern

        if (site.targetsDeadRegion) {
            // Updates to a region the transaction frees need neither
            // logging nor persistence.
            flags.logFree = true;
            flags.lazy = true;
            return flags;
        }
        if (site.targetsFreshAlloc) {
            // Pattern 1: a crash leaks the fresh region; recovery GC
            // reclaims it, so no undo record is needed.
            flags.logFree = true;
        }
        if (site.rebuildable) {
            // Pattern 2: recovery can re-derive address and value.
            flags.lazy = true;
        }
        return flags;
    }

    std::string name() const override { return "compiler"; }
};

/** Side-by-side accounting of compiler vs manual annotations. */
struct AnnotationReport
{
    std::size_t manualAnnotated = 0;   //!< sites with hand annotations
    std::size_t compilerFound = 0;     //!< of those, found by the pass
    std::size_t compilerOnly = 0;      //!< found only by the pass
    std::size_t missed = 0;            //!< manual sites the pass missed
};

/** Compare the pass against the hand annotations of a registry. */
inline AnnotationReport
compareAnnotations(const StoreSiteRegistry &sites)
{
    const CompilerAnnotationPolicy pass;
    AnnotationReport report;
    for (const auto &site : sites.all()) {
        const bool manual = site.manual.lazy || site.manual.logFree;
        const StoreFlags inferred = pass.flagsFor(site);
        const bool found = inferred.lazy || inferred.logFree;
        if (manual) {
            report.manualAnnotated++;
            if (found)
                report.compilerFound++;
            else
                report.missed++;
        } else if (found) {
            report.compilerOnly++;
        }
    }
    return report;
}

/** Compile-time cost model of the pass (Figure 13, right). */
struct CompileTimeEstimate
{
    double baselineSec = 0;       //!< plain clang -O2 build
    double withAnalysisSec = 0;   //!< plus the storeT pass

    double
    overheadFraction() const
    {
        return baselineSec > 0
                   ? (withAnalysisSec - baselineSec) / baselineSec
                   : 0;
    }
};

/**
 * Estimate the pass runtime: the MemorySSA walk visits each store
 * site and follows its def-use chain, plus a per-transaction flow-out
 * variable analysis.
 */
inline CompileTimeEstimate
estimateCompileTime(const StoreSiteRegistry &sites, double baseline_sec)
{
    // Costs calibrated to the paper's observation that the analysis
    // stays under 0.15 s absolute even at 23% relative overhead (the
    // MemorySSA walk is per-store-site work, so small TUs like btree
    // see the largest relative cost).
    constexpr double per_site_sec = 18e-3;
    constexpr double per_hop_sec = 4e-3;
    double analysis = 0;
    for (const auto &site : sites.all())
        analysis += per_site_sec + site.defUseDepth * per_hop_sec;
    return {baseline_sec, baseline_sec + analysis};
}

} // namespace slpmt

#endif // SLPMT_COMPILER_COMPILER_POLICY_HH
