/**
 * @file
 * The sharded KV service front-end (ROADMAP item 1).
 *
 * A KvService composes N independent McMachine shards — each its own
 * simulated machine with its own durable structure — behind the
 * deterministic hash router (router.hh), and drives them with the
 * seeded load generator (workloads/loadgen.hh). This is the first
 * layer where the simulator behaves like a serving system rather than
 * a benchmark loop: requests arrive in one global order, are routed
 * to their shard, and execute there as durable transactions while the
 * service records per-request latency into fine-grained histograms
 * (p50/p99/p999) and per-shard engine/memory statistics.
 *
 * Determinism contract: the run is a pure function of ServiceConfig.
 * The generator, the router, and per-shard execution are all seeded
 * and single-threaded per shard (shards share no simulated state, so
 * executing them one after the other equals any interleaving of
 * independent machines); reports are byte-identical across reruns and
 * orchestrator worker counts. A 1-shard service run is bit-identical
 * to executing the same routed stream on a plain McMachine — the
 * differential anchor tests/test_service.cc pins.
 */

#ifndef SLPMT_SERVICE_SERVICE_HH
#define SLPMT_SERVICE_SERVICE_HH

#include <string>
#include <vector>

#include "multicore/machine.hh"
#include "multicore/scheduler.hh"
#include "service/router.hh"
#include "sim/experiment.hh"
#include "workloads/loadgen.hh"

namespace slpmt
{

/** Everything configurable about one service run. */
struct ServiceConfig
{
    std::string workload = "hashtable";
    std::size_t numShards = 2;

    /** Simulated cores per shard machine; > 1 interleaves each
     *  shard's stream across its cores with the seeded scheduler. */
    std::size_t coresPerShard = 1;

    LoadGenConfig load;
    std::uint64_t routerSalt = ShardRouter::defaultSalt;

    /** Per-shard machine configuration (numCores is overridden from
     *  coresPerShard). */
    SystemConfig sys;

    /** Scheduler knobs for multicore shards. */
    McSchedConfig sched;

    /** Annotation policy (non-owning; nullptr = manual). */
    const AnnotationPolicy *policy = nullptr;
};

/** What one shard op did. */
struct ShardOpOutcome
{
    Cycles cycles = 0;  //!< core cycles the op spent
    bool hit = true;    //!< key found (reads/updates/rmw)
    bool fallbackInsert = false;  //!< upsert fell back to insert
};

/**
 * Execute one shard op on a context: Insert/Update/ReadModifyWrite as
 * durable upsert transactions, Read/Scan as lookups. The shared
 * executor of the service, the crash sweep, and the differential
 * tests, so "service run" and "plain machine run" mean the same
 * instruction sequence by construction.
 */
ShardOpOutcome applyShardOp(PmContext &ctx, Workload &wl,
                            const ShardOp &op);

/**
 * Bucket bounds of the service latency histograms: geometric with
 * ~1.25x steps from 64 cycles to 20M cycles, so percentile extraction
 * (HistogramData::percentile) resolves any quantile to within ~25% of
 * its value — the engine's coarse txn.commitCycles buckets cannot
 * support a p999.
 */
std::vector<std::uint64_t> serviceLatencyBounds();

/** FNV-1a over the machine's materialised PM pages (sorted order):
 *  the bit-for-bit durable-image identity used by the differential
 *  and determinism tests. */
std::uint64_t pmImageFingerprint(const McMachine &machine);

/** Outcome of one service run. */
struct KvServiceResult
{
    /** Slowest shard's measured op-phase cycles (service makespan —
     *  shards are independent machines serving in parallel). */
    Cycles makespan = 0;

    std::vector<Cycles> shardCycles;      //!< per-shard op-phase cycles
    std::vector<std::size_t> shardOps;    //!< executed shard ops each

    /** Post-run (pre-verification) full machine snapshots and PM
     *  image fingerprints, for the differential/determinism tests. */
    std::vector<StatsSnapshot> shardSnapshots;
    std::vector<std::uint64_t> shardImageFp;

    /**
     * Merged measured-window statistics: the service's own counters
     * and latency histograms under "service.", each shard's machine
     * delta under "shardN.", plus derived integer gauges
     * (service.latency.p50/p99/p999, service.commitLatency.*,
     * service.opsPerGcycle, service.makespanCycles).
     */
    StatsSnapshot stats;

    bool verified = false;  //!< oracle lookups + invariants passed
    std::string failure;    //!< diagnostic when !verified
};

/** Run one service load to completion and verify every shard against
 *  the last-write-wins oracle of the request stream. */
KvServiceResult runService(const ServiceConfig &cfg);

/**
 * ExperimentConfig bridge: run a service cell (cfg.service.* knobs,
 * cfg.ycsb.numOps requests, cfg.numCores cores per shard) and map the
 * outcome onto the figure-orchestrator result type. Cycles is the
 * service makespan; engine and PM metrics sum across shards.
 */
ExperimentResult runServiceExperiment(const std::string &workload_name,
                                      const ExperimentConfig &cfg);

} // namespace slpmt

#endif // SLPMT_SERVICE_SERVICE_HH
