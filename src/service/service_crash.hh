/**
 * @file
 * Service-level crash-point sweep: power-fail the sharded KV service
 * mid-load and validate every shard's recovery.
 *
 * Extends the checkpoint-and-fork methodology of the multicore sweep
 * (multicore/mc_crash.hh) to the service layer. The generated request
 * stream is lowered to its arrival-ordered (shard, op) dispatch list;
 * a master run executes it once across the shard machines, counting
 * store/storeT instructions in one *global* ordinal space (the sum
 * over shards) and dropping a whole-service checkpoint — one
 * MachineCheckpoint plus one workload clone per shard — every
 * checkpointInterval stores at request boundaries. The sweep
 * enumerates crash points over the global store range (stratified
 * when budgeted, plus the post-completion point with lazy data still
 * volatile); each point restores the nearest checkpoint, replays the
 * dispatch tail, arms the store-level crash on the shard executing
 * the interrupted request, and power-fails the *whole service* —
 * every shard machine — at exactly that store.
 *
 * Recovery then runs per shard (hardware log replay + the workload's
 * user-level recovery) and is validated against the last-write-wins
 * oracle of the completed request prefix: completed mutations
 * readable with their final values, the interrupted request atomic
 * (its key holds entirely the old or entirely the new value), keys
 * only written by future requests absent, structure invariants
 * intact on every shard, recovery idempotent, and every shard still
 * writable afterwards. Restores are bit-exact, so the report is
 * byte-identical to the from-scratch audit path (useCheckpoints =
 * false) and across sweep worker counts.
 */

#ifndef SLPMT_SERVICE_SERVICE_CRASH_HH
#define SLPMT_SERVICE_SERVICE_CRASH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/service.hh"

namespace slpmt
{

/** Everything configurable about one service sweep. */
struct ServiceCrashConfig
{
    SchemeKind scheme = SchemeKind::SLPMT;
    LoggingStyle style = LoggingStyle::Undo;

    std::string workload = "hashtable";
    std::size_t numShards = 2;
    LoadGenConfig load;
    std::uint64_t routerSalt = ShardRouter::defaultSalt;

    /** Crash-point budget; 0 explores every store. */
    std::size_t maxPoints = 0;

    /** Shrink every cache level so mid-transaction evictions push
     *  data (and persisted log records) to PM before the crash. */
    bool tinyCache = false;

    /** Also crash once after the full run (lazy data still cached). */
    bool crashAfterCompletion = true;

    bool checkIdempotence = true;
    std::size_t continuationOps = 2;

    /** Worker threads for the sweep (each point owns its machines). */
    std::size_t workers = 1;

    /** Global stores between master-run checkpoints. */
    std::size_t checkpointInterval = 256;

    /** Audit mode: false re-runs every point from scratch. */
    bool useCheckpoints = true;
};

/** Outcome of one explored service crash point. */
struct ServiceCrashPointOutcome
{
    std::uint64_t crashPoint = 0;   //!< 0 = post-completion point
    bool fired = false;
    std::size_t crashShard = 0;     //!< shard executing the store
    std::size_t completedOps = 0;   //!< dispatch ops fully completed
    std::size_t replayedRecords = 0;  //!< summed across shards
    std::vector<std::string> violations;
};

/** Aggregated result of a service sweep. */
struct ServiceCrashSweepReport
{
    ServiceCrashConfig config;
    std::uint64_t traceStores = 0;   //!< global (summed) store count
    std::size_t dispatchOps = 0;     //!< lowered dispatch-list length
    std::vector<ServiceCrashPointOutcome> points;

    std::size_t pointsExplored() const { return points.size(); }
    std::size_t violationCount() const;
    std::uint64_t replayedRecordsTotal() const;

    /** Deterministic violation listing (one repro line each). */
    std::string violationsText() const;

    /** Deterministic human-readable summary. */
    std::string summaryText() const;
};

/** Run one sweep: master run, enumerate, explore (possibly parallel). */
ServiceCrashSweepReport runServiceCrashSweep(const ServiceCrashConfig &cfg);

/** Re-run a single point in isolation (the repro handle). */
ServiceCrashPointOutcome runServiceCrashPoint(const ServiceCrashConfig &cfg,
                                              std::uint64_t crash_point);

} // namespace slpmt

#endif // SLPMT_SERVICE_SERVICE_CRASH_HH
