#include "service/service_crash.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "checkpoint/checkpoint.hh"
#include "common/rng.hh"
#include "validate/work_queue.hh"
#include "workloads/factory.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{
namespace
{

constexpr std::size_t maxViolationsPerPhase = 4;

/** One entry of the arrival-ordered (shard, op) dispatch list. */
struct DispatchOp
{
    std::size_t shard = 0;
    ShardOp op;
};

/** Last-write-wins value recipe of one committed key. */
struct ShadowValue
{
    std::uint64_t valueSalt = 0;
    std::uint32_t valueBytes = 0;
};

using Shadow = std::map<std::uint64_t, ShadowValue>;

std::string
styleName(LoggingStyle style)
{
    return style == LoggingStyle::Undo ? "undo" : "redo";
}

std::string
hexKey(std::uint64_t key)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

std::string
reproTuple(const ServiceCrashConfig &cfg, std::uint64_t crash_point)
{
    return "(scheme=" + schemeName(cfg.scheme) +
           " style=" + styleName(cfg.style) +
           " workload=" + cfg.workload +
           " shards=" + std::to_string(cfg.numShards) +
           " seed=" + std::to_string(cfg.load.seed) +
           std::string(cfg.tinyCache ? " tiny_cache=1" : "") +
           " ckpt_interval=" + std::to_string(cfg.checkpointInterval) +
           " crash_point=" + std::to_string(crash_point) + ")";
}

SystemConfig
shardSysConfig(const ServiceCrashConfig &cfg)
{
    SystemConfig sys;
    sys.scheme = SchemeConfig::forKind(cfg.scheme);
    sys.style = cfg.style;
    sys.numCores = 1;
    if (cfg.tinyCache) {
        sys.hierarchy.l1 = CacheConfig{"L1", 1024, 2, 4};
        sys.hierarchy.l2 = CacheConfig{"L2", 2048, 2, 12};
        sys.hierarchy.l3 = CacheConfig{"L3", 4096, 4, 40};
    }
    return sys;
}

/** Lower the generated load (preload then requests, arrival order)
 *  to the flat dispatch list; per-shard subsequences equal the
 *  routeOps() streams by construction. */
std::vector<DispatchOp>
buildDispatch(const ServiceCrashConfig &cfg, const SvcLoad &load)
{
    const ShardRouter router(cfg.numShards, cfg.routerSalt);
    std::vector<DispatchOp> dispatch;
    auto lower = [&](const std::vector<SvcOp> &ops) {
        for (const SvcOp &op : ops) {
            if (op.kind == SvcOpKind::Scan) {
                for (std::uint32_t j = 0; j < op.scanLen; ++j) {
                    ShardOp sub;
                    sub.kind = SvcOpKind::Scan;
                    sub.key =
                        svcKeyForRecord(op.record + j, load.keySalt);
                    dispatch.push_back(
                        {router.shardOf(sub.key), sub});
                }
                continue;
            }
            ShardOp out;
            out.kind = op.kind;
            out.key = op.key;
            out.valueBytes = op.valueBytes;
            out.valueSalt = op.valueSalt;
            dispatch.push_back({router.shardOf(out.key), out});
        }
    };
    lower(load.preload);
    lower(load.ops);
    return dispatch;
}

/** The service's shard machines plus the global store ordinal. */
struct ShardSet
{
    std::vector<std::unique_ptr<McMachine>> machines;
    std::vector<std::unique_ptr<Workload>> workloads;
    std::uint64_t baseStores = 0;

    std::uint64_t
    rawStores() const
    {
        std::uint64_t total = 0;
        for (const auto &m : machines)
            total += m->storesExecuted();
        return total;
    }

    std::uint64_t globalStores() const { return rawStores() - baseStores; }
};

/** Fresh machines; setup() runs when @p with_setup (restores skip it:
 *  the checkpoint rewrites the whole machine and the cloned workload
 *  carries the roots). */
ShardSet
makeShards(const ServiceCrashConfig &cfg, bool with_setup)
{
    ShardSet set;
    const SystemConfig sys = shardSysConfig(cfg);
    for (std::size_t s = 0; s < cfg.numShards; ++s) {
        set.machines.push_back(std::make_unique<McMachine>(sys));
        if (with_setup) {
            set.workloads.push_back(makeWorkload(cfg.workload));
            set.workloads.back()->setup(set.machines[s]->context(0));
        }
    }
    set.baseStores = set.rawStores();
    return set;
}

/**
 * One node of the master run's checkpoint chain: every shard machine
 * and workload captured at the same request boundary. Immutable
 * after capture; workers fork from it concurrently.
 */
struct SvcCheckpoint
{
    std::vector<std::shared_ptr<const MachineCheckpoint>> machines;
    std::vector<std::shared_ptr<const Workload>> workloads;
    std::size_t opIndex = 0;
    std::uint64_t storesAt = 0;
};

struct SvcChain
{
    std::vector<SvcCheckpoint> entries;

    /** Global stores completed before dispatch op i; the extra final
     *  entry is the whole trace's store count. */
    std::vector<std::uint64_t> opStart;
    std::uint64_t traceStores = 0;
};

/** The master run: execute the dispatch once, recording every op's
 *  global store ordinal and (optionally) dropping checkpoints. */
SvcChain
buildChain(const ServiceCrashConfig &cfg,
           const std::vector<DispatchOp> &dispatch, bool with_checkpoints)
{
    SvcChain chain;
    ShardSet set = makeShards(cfg, true);
    const std::uint64_t interval =
        std::max<std::size_t>(cfg.checkpointInterval, 1);

    auto capture = [&](std::size_t op_index) {
        SvcCheckpoint t;
        for (std::size_t s = 0; s < cfg.numShards; ++s) {
            t.machines.push_back(
                std::make_shared<const MachineCheckpoint>(
                    MachineCheckpoint::capture(*set.machines[s])));
            t.workloads.push_back(set.workloads[s]->clone());
        }
        t.opIndex = op_index;
        t.storesAt = set.globalStores();
        chain.entries.push_back(std::move(t));
    };

    if (with_checkpoints)
        capture(0);
    for (std::size_t i = 0; i < dispatch.size(); ++i) {
        const std::uint64_t stores = set.globalStores();
        chain.opStart.push_back(stores);
        if (with_checkpoints &&
            stores - chain.entries.back().storesAt >= interval)
            capture(i);
        const DispatchOp &d = dispatch[i];
        applyShardOp(set.machines[d.shard]->context(0),
                     *set.workloads[d.shard], d.op);
    }
    chain.traceStores = set.globalStores();
    chain.opStart.push_back(chain.traceStores);
    return chain;
}

/** Oracle comparison of every recovered shard with the shadow.
 *  @p interrupted is the dispatch op the crash unwound (nullptr for
 *  the post-completion point); its key may atomically hold the old
 *  or the new value. */
void
checkState(ShardSet &set, const ShardRouter &router, const Shadow &shadow,
           const DispatchOp *interrupted,
           const std::vector<std::uint64_t> &absent_keys,
           const std::string &tuple, const std::string &phase,
           std::vector<std::string> &out)
{
    std::size_t added = 0;
    auto add = [&](const std::string &msg) {
        if (added < maxViolationsPerPhase)
            out.push_back(tuple + " " + phase + ": " + msg);
        else if (added == maxViolationsPerPhase)
            out.push_back(tuple + " " + phase +
                          ": further violations suppressed");
        ++added;
    };

    const bool interrupted_mutation =
        interrupted && interrupted->op.isMutation();
    const std::uint64_t ikey =
        interrupted_mutation ? interrupted->op.key : 0;

    std::vector<std::size_t> expected_counts(router.numShards(), 0);
    for (const auto &[key, value] : shadow)
        expected_counts[router.shardOf(key)]++;

    for (std::size_t s = 0; s < router.numShards(); ++s) {
        PmContext &ctx = set.machines[s]->context(0);
        Workload &wl = *set.workloads[s];
        const std::string where = "shard " + std::to_string(s) + " ";

        std::string why;
        if (!wl.checkConsistency(ctx, &why))
            add(where + "structure invariant violated: " + why);

        // The interrupted request may atomically add one key.
        const std::size_t n = wl.count(ctx);
        const bool slack = interrupted_mutation &&
                           !shadow.count(ikey) &&
                           router.shardOf(ikey) == s;
        if (n != expected_counts[s] &&
            !(slack && n == expected_counts[s] + 1))
            add(where + "count mismatch: structure holds " +
                std::to_string(n) + ", oracle expects " +
                std::to_string(expected_counts[s]) +
                (slack ? " (+1 allowed)" : ""));

        std::vector<std::uint8_t> got;
        for (const auto &[key, value] : shadow) {
            if (router.shardOf(key) != s)
                continue;
            got.clear();
            if (interrupted_mutation && key == ikey) {
                // Old-or-new, never torn.
                if (!wl.lookup(ctx, key, &got)) {
                    add(where + "interrupted key " + hexKey(key) +
                        " lost its committed value");
                } else if (got != svcValueFor(key, value.valueSalt,
                                              value.valueBytes) &&
                           got != svcValueFor(
                                      key, interrupted->op.valueSalt,
                                      interrupted->op.valueBytes)) {
                    add(where + "interrupted key " + hexKey(key) +
                        " holds neither old nor new value");
                }
                continue;
            }
            if (!wl.lookup(ctx, key, &got))
                add(where + "committed key " + hexKey(key) +
                    " missing");
            else if (got != svcValueFor(key, value.valueSalt,
                                        value.valueBytes))
                add(where + "value mismatch for committed key " +
                    hexKey(key));
        }

        // A fresh interrupted insert is allowed fully in or fully
        // out — but never torn.
        if (slack && wl.lookup(ctx, ikey, &got) &&
            got != svcValueFor(ikey, interrupted->op.valueSalt,
                               interrupted->op.valueBytes))
            add(where + "interrupted fresh key " + hexKey(ikey) +
                " visible with a torn value");
    }

    for (std::uint64_t key : absent_keys) {
        if (set.workloads[router.shardOf(key)]->lookup(
                set.machines[router.shardOf(key)]->context(0), key,
                nullptr))
            add("future key " + hexKey(key) + " visible on shard " +
                std::to_string(router.shardOf(key)));
    }
}

/**
 * From the crash onward every path is the same: power-fail every
 * shard, recover each, and run the oracle phases against the
 * completed request prefix.
 */
void
finishPoint(const ServiceCrashConfig &cfg,
            const std::vector<DispatchOp> &dispatch, ShardSet &set,
            std::size_t completed_ops, const DispatchOp *interrupted,
            const std::string &tuple, ServiceCrashPointOutcome &out)
{
    const ShardRouter router(cfg.numShards, cfg.routerSalt);
    out.completedOps = completed_ops;

    // Power failure is service-wide: every shard machine goes down,
    // the one that fired included (its engine crashed only itself).
    for (auto &machine : set.machines)
        machine->crash();

    Shadow shadow;
    for (std::size_t i = 0; i < completed_ops; ++i) {
        const ShardOp &op = dispatch[i].op;
        if (op.isMutation())
            shadow[op.key] = {op.valueSalt, op.valueBytes};
    }

    // Keys no completed (or interrupted) request ever wrote must not
    // surface.
    std::vector<std::uint64_t> absent;
    {
        std::set<std::uint64_t> future;
        for (std::size_t i = completed_ops; i < dispatch.size(); ++i)
            if (dispatch[i].op.isMutation())
                future.insert(dispatch[i].op.key);
        for (std::uint64_t key : future) {
            if (!shadow.count(key) &&
                !(interrupted && interrupted->op.isMutation() &&
                  interrupted->op.key == key))
                absent.push_back(key);
        }
    }

    // Hardware log replay, then the workload's user-level recovery,
    // on every shard.
    for (std::size_t s = 0; s < cfg.numShards; ++s) {
        out.replayedRecords += set.machines[s]->recover();
        set.workloads[s]->recover(set.machines[s]->context(0));
    }
    checkState(set, router, shadow, interrupted, absent, tuple,
               "post-recovery", out.violations);

    if (cfg.checkIdempotence) {
        std::size_t again = 0;
        for (std::size_t s = 0; s < cfg.numShards; ++s) {
            again += set.machines[s]->recover();
            set.workloads[s]->recover(set.machines[s]->context(0));
        }
        if (again != 0)
            out.violations.push_back(
                tuple + " idempotence: second hardware recovery "
                        "replayed " +
                std::to_string(again) + " records");
        checkState(set, router, shadow, interrupted, absent, tuple,
                   "idempotence", out.violations);
    }

    // Every shard must keep serving: fresh inserts routed like any
    // request (generator keys have bit 62 set; continuation keys set
    // bit 61 instead, so they can never collide).
    if (cfg.continuationOps > 0) {
        Rng rng(mix64(cfg.load.seed) ^ (out.crashPoint + 1));
        std::vector<std::uint8_t> got;
        for (std::size_t i = 0; i < cfg.continuationOps; ++i) {
            const std::uint64_t key =
                (std::uint64_t{1} << 61) |
                (rng.next() & ((std::uint64_t{1} << 61) - 1));
            const std::size_t s = router.shardOf(key);
            const auto value = ycsbValueFor(key, 64);
            set.workloads[s]->insert(set.machines[s]->context(0), key,
                                     value);
            got.clear();
            if (!set.workloads[s]->lookup(set.machines[s]->context(0),
                                          key, &got) ||
                got != value)
                out.violations.push_back(
                    tuple + " continuation: fresh key " + hexKey(key) +
                    " unreadable on shard " + std::to_string(s));
        }
    }
}

/** Index of the dispatch op during which global store @p g executes:
 *  the largest i with opStart[i] < g (zero-store requests can never
 *  hold a crash point). */
std::size_t
opForStore(const std::vector<std::uint64_t> &op_start, std::uint64_t g)
{
    std::size_t i = 0;
    for (std::size_t j = 0; j + 1 < op_start.size(); ++j)
        if (op_start[j] < g)
            i = j;
    return i;
}

/** Replay dispatch ops [from, to) on an already-positioned set. */
void
replayOps(const std::vector<DispatchOp> &dispatch, ShardSet &set,
          std::size_t from, std::size_t to)
{
    for (std::size_t i = from; i < to; ++i) {
        const DispatchOp &d = dispatch[i];
        applyShardOp(set.machines[d.shard]->context(0),
                     *set.workloads[d.shard], d.op);
    }
}

/** Run one crash point, forking from @p ckpt when given (restore)
 *  or from scratch (fresh setup + full replay) otherwise. */
ServiceCrashPointOutcome
runPoint(const ServiceCrashConfig &cfg,
         const std::vector<DispatchOp> &dispatch,
         const std::vector<std::uint64_t> &op_start,
         const SvcCheckpoint *ckpt, std::uint64_t crash_point)
{
    ServiceCrashPointOutcome out;
    out.crashPoint = crash_point;
    const std::string tuple = reproTuple(cfg, crash_point);

    try {
        ShardSet set = makeShards(cfg, ckpt == nullptr);
        std::size_t at = 0;
        std::uint64_t stores_at = 0;
        if (ckpt) {
            for (std::size_t s = 0; s < cfg.numShards; ++s) {
                set.workloads.push_back(ckpt->workloads[s]->clone());
                ckpt->machines[s]->restore(*set.machines[s]);
            }
            at = ckpt->opIndex;
            stores_at = ckpt->storesAt;
        }

        if (crash_point == 0) {
            // Post-completion point: run out, then power off with
            // lazy data still volatile.
            replayOps(dispatch, set, at, dispatch.size());
            finishPoint(cfg, dispatch, set, dispatch.size(), nullptr,
                        tuple, out);
            return out;
        }

        const std::size_t target = opForStore(op_start, crash_point);
        replayOps(dispatch, set, at, target);

        const DispatchOp &victim = dispatch[target];
        out.crashShard = victim.shard;
        McMachine &machine = *set.machines[victim.shard];
        machine.armCrashAfterStores(crash_point - op_start[target]);
        try {
            applyShardOp(machine.context(0),
                         *set.workloads[victim.shard], victim.op);
        } catch (const CrashInjected &) {
            out.fired = true;
        }
        machine.armCrashAfterStores(0);
        if (!out.fired)
            out.violations.push_back(
                tuple + " armed crash did not fire (stores at " +
                std::to_string(stores_at) + ")");
        finishPoint(cfg, dispatch, set, target, &victim, tuple, out);
    } catch (const std::exception &e) {
        out.violations.push_back(tuple + " exception: " + e.what());
    }
    return out;
}

/** Stratified point enumeration (mirrors the multicore sweep). */
std::vector<std::uint64_t>
enumeratePoints(const ServiceCrashConfig &cfg, std::uint64_t total_stores)
{
    std::vector<std::uint64_t> points;
    const std::uint64_t total = total_stores;
    if (total > 0) {
        if (cfg.maxPoints == 0 || total <= cfg.maxPoints) {
            for (std::uint64_t k = 1; k <= total; ++k)
                points.push_back(k);
        } else {
            Rng rng(mix64(cfg.load.seed ^ 0x5e4'71ce'c4a5'4f1eULL));
            const std::uint64_t strata = cfg.maxPoints;
            for (std::uint64_t s = 0; s < strata; ++s) {
                const std::uint64_t lo = 1 + s * total / strata;
                const std::uint64_t hi = 1 + (s + 1) * total / strata;
                points.push_back(hi > lo ? lo + rng.below(hi - lo)
                                         : lo);
            }
            points.front() = 1;
            points.back() = total;
            std::sort(points.begin(), points.end());
            points.erase(std::unique(points.begin(), points.end()),
                         points.end());
        }
    }
    if (cfg.crashAfterCompletion)
        points.push_back(0);
    return points;
}

/** The chain entry forking point @p g: last one strictly below. */
const SvcCheckpoint *
entryFor(const SvcChain &chain, std::uint64_t g)
{
    const SvcCheckpoint *ckpt = &chain.entries.front();
    for (const auto &entry : chain.entries) {
        if (g == 0 || entry.storesAt < g)
            ckpt = &entry;
        else
            break;
    }
    return ckpt;
}

} // namespace

ServiceCrashPointOutcome
runServiceCrashPoint(const ServiceCrashConfig &cfg,
                     std::uint64_t crash_point)
{
    const SvcLoad load = svcGenerate(cfg.load);
    const auto dispatch = buildDispatch(cfg, load);
    const SvcChain chain = buildChain(cfg, dispatch, false);
    return runPoint(cfg, dispatch, chain.opStart, nullptr, crash_point);
}

ServiceCrashSweepReport
runServiceCrashSweep(const ServiceCrashConfig &cfg)
{
    ServiceCrashSweepReport report;
    report.config = cfg;

    const SvcLoad load = svcGenerate(cfg.load);
    const auto dispatch = buildDispatch(cfg, load);
    report.dispatchOps = dispatch.size();

    const SvcChain chain =
        buildChain(cfg, dispatch, cfg.useCheckpoints);
    report.traceStores = chain.traceStores;
    const auto points = enumeratePoints(cfg, report.traceStores);
    report.points.resize(points.size());
    runWorkStealing(std::max<std::size_t>(cfg.workers, 1),
                    points.size(), [&](std::size_t i) {
                        const SvcCheckpoint *ckpt =
                            cfg.useCheckpoints
                                ? entryFor(chain, points[i])
                                : nullptr;
                        report.points[i] =
                            runPoint(cfg, dispatch, chain.opStart,
                                     ckpt, points[i]);
                    });
    return report;
}

std::size_t
ServiceCrashSweepReport::violationCount() const
{
    std::size_t n = 0;
    for (const auto &p : points)
        n += p.violations.size();
    return n;
}

std::uint64_t
ServiceCrashSweepReport::replayedRecordsTotal() const
{
    std::uint64_t n = 0;
    for (const auto &p : points)
        n += p.replayedRecords;
    return n;
}

std::string
ServiceCrashSweepReport::violationsText() const
{
    std::string text;
    for (const auto &p : points) {
        for (const auto &v : p.violations) {
            text += v;
            text += '\n';
        }
    }
    return text;
}

std::string
ServiceCrashSweepReport::summaryText() const
{
    std::size_t fired = 0;
    for (const auto &p : points)
        fired += p.fired ? 1 : 0;
    std::string text;
    text += "service-crash-sweep scheme=" + schemeName(config.scheme) +
            " style=" + styleName(config.style) +
            " workload=" + config.workload +
            " shards=" + std::to_string(config.numShards) +
            " seed=" + std::to_string(config.load.seed) + "\n";
    text += "  trace_stores=" + std::to_string(traceStores) +
            " dispatch_ops=" + std::to_string(dispatchOps) +
            " points=" + std::to_string(pointsExplored()) +
            " fired=" + std::to_string(fired) +
            " replayed_records=" +
            std::to_string(replayedRecordsTotal()) +
            " violations=" + std::to_string(violationCount()) + "\n";
    text += violationsText();
    return text;
}

} // namespace slpmt
