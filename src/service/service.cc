#include "service/service.hh"

#include <algorithm>
#include <map>
#include <memory>

#include "compiler/compiler_policy.hh"
#include "mem/paged_memory.hh"
#include "workloads/factory.hh"

namespace slpmt
{
namespace
{

/** Last-write-wins value identity of one key: the recompute recipe. */
struct ExpectedValue
{
    std::uint64_t valueSalt = 0;
    std::uint32_t valueBytes = 0;
};

/** Expected final KV state of the whole service: every mutation of
 *  the arrival-ordered load folded last-write-wins. */
std::map<std::uint64_t, ExpectedValue>
expectedState(const SvcLoad &load)
{
    std::map<std::uint64_t, ExpectedValue> expected;
    for (const SvcOp &op : load.preload)
        expected[op.key] = {op.valueSalt, op.valueBytes};
    for (const SvcOp &op : load.ops) {
        if (op.isMutation())
            expected[op.key] = {op.valueSalt, op.valueBytes};
    }
    return expected;
}

/** Per-op service instrument handles. */
struct ServiceCounters
{
    StatsRegistry::Counter shardOps;
    StatsRegistry::Counter reads;
    StatsRegistry::Counter readHits;
    StatsRegistry::Counter inserts;
    StatsRegistry::Counter updates;
    StatsRegistry::Counter rmws;
    StatsRegistry::Counter scannedKeys;
    StatsRegistry::Counter upsertFallbacks;
    StatsRegistry::Histogram latency;
    StatsRegistry::Histogram commitLatency;

    explicit ServiceCounters(StatsRegistry &reg)
    {
        const StatGroup g(reg, "service");
        shardOps = g.counter("shardOps");
        reads = g.counter("reads");
        readHits = g.counter("readHits");
        inserts = g.counter("inserts");
        updates = g.counter("updates");
        rmws = g.counter("rmws");
        scannedKeys = g.counter("scannedKeys");
        upsertFallbacks = g.counter("upsertFallbacks");
        latency = g.histogram("latency", serviceLatencyBounds());
        commitLatency =
            g.histogram("commitLatency", serviceLatencyBounds());
    }

    void
    note(const ShardOp &op, const ShardOpOutcome &out)
    {
        shardOps++;
        latency.record(out.cycles);
        if (op.isMutation())
            commitLatency.record(out.cycles);
        if (out.fallbackInsert)
            upsertFallbacks++;
        switch (op.kind) {
          case SvcOpKind::Insert:
            inserts++;
            break;
          case SvcOpKind::Update:
            updates++;
            break;
          case SvcOpKind::ReadModifyWrite:
            rmws++;
            break;
          case SvcOpKind::Scan:
            scannedKeys++;
            [[fallthrough]];
          case SvcOpKind::Read:
            reads++;
            if (out.hit)
                readHits++;
            break;
        }
    }
};

/** A core's slice of one shard's op stream (multicore shards). */
class ShardCoreDriver : public McCoreDriver
{
  public:
    ShardCoreDriver(PmContext &ctx, Workload &wl,
                    std::vector<ShardOp> ops, ServiceCounters &ctrs)
        : ctx(ctx), wl(wl), ops(std::move(ops)), counters(ctrs)
    {
    }

    bool done() const override { return cursor >= ops.size(); }

    void
    step() override
    {
        const ShardOp &op = ops[cursor];
        counters.note(op, applyShardOp(ctx, wl, op));
        ++cursor;
    }

  private:
    PmContext &ctx;
    Workload &wl;
    std::vector<ShardOp> ops;
    ServiceCounters &counters;
    std::size_t cursor = 0;
};

const AnnotationPolicy *
policyFor(AnnotationMode mode)
{
    static const NullAnnotationPolicy null_policy;
    static const ManualAnnotationPolicy manual_policy;
    static const CompilerAnnotationPolicy compiler_policy;
    switch (mode) {
      case AnnotationMode::None:
        return &null_policy;
      case AnnotationMode::Manual:
        return &manual_policy;
      case AnnotationMode::Compiler:
        return &compiler_policy;
    }
    return &manual_policy;
}

} // namespace

ShardOpOutcome
applyShardOp(PmContext &ctx, Workload &wl, const ShardOp &op)
{
    ShardOpOutcome out;
    const Cycles start = ctx.cycles();
    switch (op.kind) {
      case SvcOpKind::Insert:
        wl.insert(ctx, op.key,
                  svcValueFor(op.key, op.valueSalt, op.valueBytes));
        break;
      case SvcOpKind::Update:
      case SvcOpKind::ReadModifyWrite: {
        if (op.kind == SvcOpKind::ReadModifyWrite)
            wl.lookup(ctx, op.key, nullptr);  // the read half
        const auto value =
            svcValueFor(op.key, op.valueSalt, op.valueBytes);
        out.hit = wl.update(ctx, op.key, value);
        if (!out.hit) {
            wl.insert(ctx, op.key, value);
            out.fallbackInsert = true;
        }
        break;
      }
      case SvcOpKind::Read:
      case SvcOpKind::Scan:
        out.hit = wl.lookup(ctx, op.key, nullptr);
        break;
    }
    out.cycles = ctx.cycles() - start;
    return out;
}

std::vector<std::uint64_t>
serviceLatencyBounds()
{
    std::vector<std::uint64_t> bounds;
    for (std::uint64_t v = 64; v < 20'000'000; v += v / 4)
        bounds.push_back(v);
    return bounds;
}

std::uint64_t
pmImageFingerprint(const McMachine &machine)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto fold = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    machine.pm().memory().forEachPageSorted(
        [&](Addr page, const PagedMemory::Page &data) {
            fold(page);
            for (std::uint8_t byte : data) {
                h ^= byte;
                h *= 0x100000001b3ULL;
            }
        });
    return h;
}

KvServiceResult
runService(const ServiceConfig &cfg)
{
    panicIfNot(cfg.numShards >= 1, "service needs at least one shard");
    panicIfNot(cfg.coresPerShard >= 1,
               "service shards need at least one core");

    KvServiceResult res;
    const SvcLoad load = svcGenerate(cfg.load);
    const ShardRouter router(cfg.numShards, cfg.routerSalt);
    const auto preload = routeOps(router, load.preload, load.keySalt);
    const auto streams = routeOps(router, load.ops, load.keySalt);

    SystemConfig sys_cfg = cfg.sys;
    sys_cfg.numCores = cfg.coresPerShard;

    StatsRegistry svc_stats;
    ServiceCounters counters(svc_stats);

    std::vector<std::unique_ptr<McMachine>> shards;
    std::vector<std::unique_ptr<Workload>> workloads;
    for (std::size_t s = 0; s < cfg.numShards; ++s) {
        shards.push_back(std::make_unique<McMachine>(sys_cfg));
        if (cfg.policy)
            shards.back()->setAnnotationPolicy(cfg.policy);
        workloads.push_back(makeWorkload(cfg.workload));
        workloads.back()->setup(shards.back()->context(0));
        // Preload (outside the measured window): arrival order on
        // core 0, like every driver's setup phase.
        for (const ShardOp &op : preload[s])
            applyShardOp(shards.back()->context(0), *workloads[s], op);
    }

    // Measured window: the request phase, shard by shard. Shards
    // share no simulated state, so serial execution here is
    // observationally identical to any parallel interleaving; the
    // makespan (slowest shard) is the service-level wall time.
    const StatsSnapshot svc_before = svc_stats.snapshot();
    res.shardCycles.resize(cfg.numShards, 0);
    res.shardOps.resize(cfg.numShards, 0);
    std::vector<StatsSnapshot> shard_before(cfg.numShards);
    for (std::size_t s = 0; s < cfg.numShards; ++s) {
        McMachine &machine = *shards[s];
        shard_before[s] = machine.snapshot();
        std::vector<Cycles> start;
        for (std::size_t c = 0; c < cfg.coresPerShard; ++c)
            start.push_back(machine.core(c).engine().now());

        res.shardOps[s] = streams[s].size();
        if (cfg.coresPerShard == 1) {
            for (const ShardOp &op : streams[s])
                counters.note(op, applyShardOp(machine.context(0),
                                               *workloads[s], op));
        } else {
            // Deal the shard's stream over its cores *by key* — the
            // last-write-wins oracle needs every key's mutations to
            // stay program-ordered, and a key's insert must precede
            // its updates; pinning each key to one core preserves
            // both while cross-key interleaving stays free. Then
            // interleave with the seeded scheduler (a distinct seed
            // per shard so shards do not replay each other's draws).
            constexpr std::uint64_t core_salt = 0xc0de'5a17'dea1ULL;
            std::vector<std::vector<ShardOp>> slices(
                cfg.coresPerShard);
            for (const ShardOp &op : streams[s])
                slices[mix64Salted(op.key, core_salt) %
                       cfg.coresPerShard]
                    .push_back(op);
            std::vector<std::unique_ptr<ShardCoreDriver>> drivers;
            std::vector<McCoreDriver *> ptrs;
            for (std::size_t c = 0; c < cfg.coresPerShard; ++c) {
                drivers.push_back(std::make_unique<ShardCoreDriver>(
                    machine.context(c), *workloads[s],
                    std::move(slices[c]), counters));
                ptrs.push_back(drivers.back().get());
            }
            McSchedConfig sched = cfg.sched;
            sched.seed = mix64Salted(cfg.sched.seed, s + 1);
            runInterleaved(machine, ptrs, sched);
        }

        for (std::size_t c = 0; c < cfg.coresPerShard; ++c)
            res.shardCycles[s] =
                std::max(res.shardCycles[s],
                         machine.core(c).engine().now() - start[c]);
        res.makespan = std::max(res.makespan, res.shardCycles[s]);

        // Capture the bit-for-bit identities before verification
        // perturbs caches and clocks.
        res.shardSnapshots.push_back(machine.snapshot());
        res.shardImageFp.push_back(pmImageFingerprint(machine));
    }

    // Merge the measured-window deltas: service instruments under
    // their own names, shard machine deltas under "shardN.".
    res.stats = StatsRegistry::delta(svc_before, svc_stats.snapshot());
    for (std::size_t s = 0; s < cfg.numShards; ++s) {
        const StatsSnapshot delta = StatsRegistry::delta(
            shard_before[s], res.shardSnapshots[s]);
        const std::string prefix =
            "shard" + std::to_string(s) + ".";
        for (const auto &[name, value] : delta)
            res.stats[prefix + name] = value;
    }

    // Derived integer gauges the figure table reads.
    const StatsRegistry::HistogramData &lat =
        *counters.latency.get();
    const StatsRegistry::HistogramData &commit =
        *counters.commitLatency.get();
    res.stats["service.latency.p50"] = lat.percentile(50, 100);
    res.stats["service.latency.p99"] = lat.percentile(99, 100);
    res.stats["service.latency.p999"] = lat.percentile(999, 1000);
    res.stats["service.commitLatency.p50"] =
        commit.percentile(50, 100);
    res.stats["service.commitLatency.p99"] =
        commit.percentile(99, 100);
    res.stats["service.commitLatency.p999"] =
        commit.percentile(999, 1000);
    res.stats["service.requests"] = load.ops.size();
    res.stats["service.makespanCycles"] = res.makespan;
    if (res.makespan > 0)
        res.stats["service.opsPerGcycle"] =
            load.ops.size() * 1'000'000'000ULL / res.makespan;

    // Verification (outside the measured window): every shard against
    // the last-write-wins oracle of the arrival-ordered load.
    const auto expected = expectedState(load);
    std::vector<std::size_t> expected_counts(cfg.numShards, 0);
    for (const auto &[key, value] : expected)
        expected_counts[router.shardOf(key)]++;

    res.verified = true;
    for (std::size_t s = 0; s < cfg.numShards && res.verified; ++s) {
        PmContext &ctx = shards[s]->context(0);
        Workload &wl = *workloads[s];
        std::string why;
        if (!wl.checkConsistency(ctx, &why)) {
            res.verified = false;
            res.failure =
                "shard " + std::to_string(s) + " consistency: " + why;
            break;
        }
        if (wl.count(ctx) != expected_counts[s]) {
            res.verified = false;
            res.failure = "shard " + std::to_string(s) +
                          " count mismatch: holds " +
                          std::to_string(wl.count(ctx)) +
                          ", oracle expects " +
                          std::to_string(expected_counts[s]);
            break;
        }
        std::vector<std::uint8_t> got;
        for (const auto &[key, value] : expected) {
            if (router.shardOf(key) != s)
                continue;
            if (!wl.lookup(ctx, key, &got) ||
                got != svcValueFor(key, value.valueSalt,
                                   value.valueBytes)) {
                res.verified = false;
                res.failure = "shard " + std::to_string(s) +
                              " lookup mismatch at key " +
                              std::to_string(key);
                break;
            }
        }
    }
    return res;
}

ExperimentResult
runServiceExperiment(const std::string &workload_name,
                     const ExperimentConfig &cfg)
{
    ServiceConfig svc;
    svc.workload = workload_name;
    svc.numShards = cfg.service.shards;
    svc.coresPerShard = std::max<std::size_t>(1, cfg.numCores);

    svc.load.mix = static_cast<YcsbMix>(cfg.service.mix);
    svc.load.skew = cfg.service.zipfian ? KeySkew::Zipfian
                                        : KeySkew::Uniform;
    svc.load.zipfThetaBp = cfg.service.zipfThetaBp;
    svc.load.keySpace = cfg.service.keySpace;
    svc.load.preloadRecords = cfg.service.preloadRecords;
    svc.load.numOps = cfg.ycsb.numOps;
    svc.load.valueBytesMax = cfg.ycsb.valueBytes;
    svc.load.valueBytesMin = cfg.service.valueBytesMin
                                 ? cfg.service.valueBytesMin
                                 : cfg.ycsb.valueBytes;
    svc.load.churnInterval = cfg.service.churnInterval;
    svc.load.seed = cfg.ycsb.seed;

    svc.sched.seed = cfg.ycsb.seed;
    svc.sched.quantumOps = cfg.mcQuantumOps;

    svc.sys.scheme = SchemeConfig::forKind(cfg.scheme);
    svc.sys.scheme.speculativeRounding = cfg.speculativeRounding;
    svc.sys.scheme.numTxnIds = cfg.numTxnIds;
    svc.sys.style = cfg.style;
    svc.sys.pm.writeLatencyNs = cfg.pmWriteLatencyNs;
    svc.sys.useMetaIndex = cfg.useMetaIndex;
    svc.sys.layoutAudit = cfg.layoutAudit;
    svc.policy = policyFor(cfg.annotations);

    const KvServiceResult run = runService(svc);

    ExperimentResult result;
    result.workload = workload_name;
    result.scheme = cfg.scheme;
    result.cycles = run.makespan;

    // Shared-device counters appear once per shard under "shardN.";
    // engine counters per core under "shardN.coreM.". Summing
    // ".name"-suffixed matches covers both.
    auto sum = [&](const std::string &name) {
        const std::string dotted = "." + name;
        std::uint64_t total = 0;
        for (const auto &[key, value] : run.stats)
            if (key == name || key.ends_with(dotted))
                total += value;
        return total;
    };
    result.pmWriteBytes = sum("pm.bytesWritten");
    result.pmDataBytes = sum("pm.dataBytesWritten");
    result.pmLogBytes = sum("pm.logBytesWritten");
    result.commits = sum("txn.committed");
    result.logRecords = sum("txn.logRecordsCreated");
    result.stats = run.stats;
    result.verified = run.verified;
    result.failure = run.failure;
    return result;
}

} // namespace slpmt
