/**
 * @file
 * Deterministic hash-based request router of the sharded KV service.
 *
 * Every request key maps to exactly one shard via a salted stateless
 * hash of the key — no routing tables, no migration state — so two
 * routers constructed with the same (shards, salt) pair partition any
 * op stream identically, and re-partitioning an already-partitioned
 * stream with the same router moves nothing (the N -> N re-shard
 * no-op the service tests pin).
 *
 * Routing also lowers generator-level requests (SvcOp) into per-shard
 * execution streams: a Scan over a record range scatters into one
 * Read-like sub-op per swept record, routed by that record's own key,
 * so every key still lives on exactly one shard and shards never
 * coordinate.
 */

#ifndef SLPMT_SERVICE_ROUTER_HH
#define SLPMT_SERVICE_ROUTER_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/loadgen.hh"

namespace slpmt
{

/** Stateless key -> shard map. */
class ShardRouter
{
  public:
    static constexpr std::uint64_t defaultSalt = 0x50a7'ed'2077ULL;

    explicit ShardRouter(std::size_t num_shards,
                         std::uint64_t salt = defaultSalt)
        : shards(num_shards), routeSalt(salt)
    {
        panicIfNot(num_shards >= 1, "router needs at least one shard");
    }

    std::size_t numShards() const { return shards; }
    std::uint64_t salt() const { return routeSalt; }

    std::size_t
    shardOf(std::uint64_t key) const
    {
        return static_cast<std::size_t>(mix64Salted(key, routeSalt) %
                                        shards);
    }

  private:
    std::size_t shards;
    std::uint64_t routeSalt;
};

/**
 * One op of a shard's execution stream. Scans arrive pre-scattered:
 * each swept record becomes its own Scan-kind entry (executed as a
 * lookup) carrying the record's key.
 */
struct ShardOp
{
    SvcOpKind kind = SvcOpKind::Read;
    std::uint64_t key = 0;
    std::uint32_t valueBytes = 0;
    std::uint64_t valueSalt = 0;

    bool
    isMutation() const
    {
        return kind == SvcOpKind::Insert || kind == SvcOpKind::Update ||
               kind == SvcOpKind::ReadModifyWrite;
    }

    bool
    operator==(const ShardOp &o) const
    {
        return kind == o.kind && key == o.key &&
               valueBytes == o.valueBytes && valueSalt == o.valueSalt;
    }
};

/**
 * Partition an arrival-ordered request stream into per-shard
 * execution streams, preserving arrival order within each shard and
 * scattering scans (needs @p key_salt to derive the swept records'
 * keys).
 */
inline std::vector<std::vector<ShardOp>>
routeOps(const ShardRouter &router, const std::vector<SvcOp> &ops,
         std::uint64_t key_salt)
{
    std::vector<std::vector<ShardOp>> streams(router.numShards());
    for (const SvcOp &op : ops) {
        if (op.kind == SvcOpKind::Scan) {
            for (std::uint32_t j = 0; j < op.scanLen; ++j) {
                ShardOp sub;
                sub.kind = SvcOpKind::Scan;
                sub.key = svcKeyForRecord(op.record + j, key_salt);
                streams[router.shardOf(sub.key)].push_back(sub);
            }
            continue;
        }
        ShardOp out;
        out.kind = op.kind;
        out.key = op.key;
        out.valueBytes = op.valueBytes;
        out.valueSalt = op.valueSalt;
        streams[router.shardOf(out.key)].push_back(out);
    }
    return streams;
}

} // namespace slpmt

#endif // SLPMT_SERVICE_ROUTER_HH
