/**
 * @file
 * Hierarchical statistics registry, loosely modelled after gem5's
 * statistics package.
 *
 * Components register named instruments under dotted hierarchical
 * keys ("logbuf.tier0.records"), usually through a StatGroup that
 * prefixes the component name. Three instrument kinds exist:
 *
 *  - Counter:   monotonically increasing scalar (events, bytes);
 *  - Gauge:     scalar that may be set to any value (occupancy);
 *  - Histogram: fixed upper-bound buckets plus count/sum/min/max
 *               (latency and size distributions).
 *
 * Registering the same name twice with the same kind (and, for
 * histograms, the same bucket bounds) returns a handle to the same
 * instrument; re-registering a name as a different kind — or a
 * histogram with different bounds — panics, catching component
 * wiring bugs at construction time.
 *
 * The whole registry flattens into a StatsSnapshot (sorted
 * name -> value map; histograms expand into per-bucket keys) for
 * cheap before/after deltas, and dumps as stable-key JSON so two runs
 * of the same simulation produce byte-identical reports.
 */

#ifndef SLPMT_STATS_STATS_HH
#define SLPMT_STATS_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "checkpoint/serde.hh"
#include "common/logging.hh"

namespace slpmt
{

class JsonWriter;

/** A flattened snapshot of every instrument value at one instant. */
using StatsSnapshot = std::map<std::string, std::uint64_t>;

/** Registry of named counters, gauges and histograms. */
class StatsRegistry
{
  public:
    /** Accumulated state of one histogram. */
    struct HistogramData
    {
        std::vector<std::uint64_t> bounds;   //!< inclusive upper bounds
        std::vector<std::uint64_t> buckets;  //!< bounds.size() + 1 (+inf)
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
        std::uint64_t max = 0;

        void
        record(std::uint64_t v)
        {
            std::size_t b = 0;
            while (b < bounds.size() && v > bounds[b])
                ++b;
            ++buckets[b];
            ++count;
            sum += v;
            if (v < min)
                min = v;
            if (v > max)
                max = v;
        }

        void
        reset()
        {
            for (auto &bucket : buckets)
                bucket = 0;
            count = 0;
            sum = 0;
            min = std::numeric_limits<std::uint64_t>::max();
            max = 0;
        }

        /**
         * Estimate the @p num / @p den quantile (p50 = 50/100,
         * p999 = 999/1000) of the recorded samples under the
         * nearest-rank definition, interpolating linearly inside the
         * bucket that holds the rank (uniform intra-bucket
         * assumption). The exact sample quantile provably lies in the
         * same bucket, so the estimate is off by at most that
         * bucket's width — the bound percentileErrorBound() reports
         * and the percentile tests assert. Returns 0 when empty.
         */
        std::uint64_t percentile(std::uint64_t num,
                                 std::uint64_t den) const;

        /**
         * Width of the (min/max-clamped) bucket the @p num / @p den
         * quantile falls in: the resolution error bound of
         * percentile(). Returns 0 when empty.
         */
        std::uint64_t percentileErrorBound(std::uint64_t num,
                                           std::uint64_t den) const;
    };

    /** A cheap handle to one counter; valid as long as the registry. */
    class Counter
    {
      public:
        Counter() = default;

        void operator+=(std::uint64_t n) { if (value) *value += n; }
        void operator++(int) { if (value) ++*value; }
        std::uint64_t get() const { return value ? *value : 0; }

      private:
        friend class StatsRegistry;
        explicit Counter(std::uint64_t *v) : value(v) {}
        std::uint64_t *value = nullptr;
    };

    /** A settable scalar handle. */
    class Gauge
    {
      public:
        Gauge() = default;

        void set(std::uint64_t v) { if (value) *value = v; }
        void operator+=(std::uint64_t n) { if (value) *value += n; }
        std::uint64_t get() const { return value ? *value : 0; }

      private:
        friend class StatsRegistry;
        explicit Gauge(std::uint64_t *v) : value(v) {}
        std::uint64_t *value = nullptr;
    };

    /** A handle to one histogram. */
    class Histogram
    {
      public:
        Histogram() = default;

        void record(std::uint64_t v) { if (data) data->record(v); }
        const HistogramData *get() const { return data; }

      private:
        friend class StatsRegistry;
        explicit Histogram(HistogramData *d) : data(d) {}
        HistogramData *data = nullptr;
    };

    /** Get (registering if needed) a handle for a named counter. */
    Counter
    counter(const std::string &name)
    {
        return Counter(&scalar(name, Kind::Counter));
    }

    /** Get (registering if needed) a handle for a named gauge. */
    Gauge
    gauge(const std::string &name)
    {
        return Gauge(&scalar(name, Kind::Gauge));
    }

    /**
     * Get (registering if needed) a named histogram with the given
     * inclusive bucket upper bounds (a +inf overflow bucket is always
     * appended). Bounds must be non-empty and strictly increasing.
     */
    Histogram histogram(const std::string &name,
                        const std::vector<std::uint64_t> &bounds);

    /** Read one flattened value (0 if it was never registered). */
    std::uint64_t
    get(const std::string &name) const
    {
        const StatsSnapshot snap = snapshot();
        auto it = snap.find(name);
        return it == snap.end() ? 0 : it->second;
    }

    /**
     * Flatten every instrument. Counters and gauges keep their name;
     * a histogram "h" with bounds {1,4} becomes "h.le1", "h.le4",
     * "h.inf", "h.count" and "h.sum".
     */
    StatsSnapshot snapshot() const;

    /** Difference of two snapshots (after - before, clamped at 0). */
    static StatsSnapshot
    delta(const StatsSnapshot &before, const StatsSnapshot &after)
    {
        StatsSnapshot d;
        for (const auto &[name, val] : after) {
            auto it = before.find(name);
            std::uint64_t prev = it == before.end() ? 0 : it->second;
            d[name] = val >= prev ? val - prev : 0;
        }
        return d;
    }

    /** Zero every instrument (registration structure is kept). */
    void reset();

    /**
     * Dump every instrument as one JSON object with sorted keys.
     * Counters and gauges are integers; a histogram is an object
     * {"bounds": [...], "buckets": [...], "count", "sum", "min",
     * "max"} (min is 0 when the histogram is empty).
     */
    void dumpJson(JsonWriter &w) const;

    /** dumpJson() into a fresh string. */
    std::string toJson() const;

    /** @name Checkpointing
     *
     * Values are saved by name and restored into the already-registered
     * entries of an identically constructed machine, so outstanding
     * handles (pointers into the map nodes) stay valid. A name or kind
     * mismatch means the blob belongs to a different machine
     * configuration and is rejected.
     */
    /** @{ */
    void saveState(BlobWriter &w) const;
    void restoreState(BlobReader &r);
    /** @} */

  private:
    enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

    struct Entry
    {
        Kind kind = Kind::Counter;
        std::uint64_t value = 0;      //!< counters and gauges
        HistogramData hist;           //!< histograms only
    };

    static const char *kindName(Kind kind);

    /** Register or re-open a scalar entry of the given kind. */
    std::uint64_t &scalar(const std::string &name, Kind kind);

    Entry &entryFor(const std::string &name, Kind kind);

    /** Stable node addresses: handles point into map nodes. */
    std::map<std::string, Entry> entries;
};

/**
 * A named slice of a registry: every instrument registered through a
 * group gets the group's dotted prefix. Groups nest, giving each
 * component a private namespace without threading strings around.
 */
class StatGroup
{
  public:
    StatGroup(StatsRegistry &registry, std::string prefix)
        : reg(&registry), pre(std::move(prefix))
    {
    }

    StatsRegistry::Counter
    counter(const std::string &name) const
    {
        return reg->counter(pre + "." + name);
    }

    StatsRegistry::Gauge
    gauge(const std::string &name) const
    {
        return reg->gauge(pre + "." + name);
    }

    StatsRegistry::Histogram
    histogram(const std::string &name,
              const std::vector<std::uint64_t> &bounds) const
    {
        return reg->histogram(pre + "." + name, bounds);
    }

    StatGroup
    group(const std::string &name) const
    {
        return StatGroup(*reg, pre + "." + name);
    }

    const std::string &prefix() const { return pre; }

  private:
    StatsRegistry *reg;
    std::string pre;
};

} // namespace slpmt

#endif // SLPMT_STATS_STATS_HH
