#include "stats/stats.hh"

#include "sim/json.hh"

namespace slpmt
{

const char *
StatsRegistry::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Counter: return "counter";
      case Kind::Gauge: return "gauge";
      case Kind::Histogram: return "histogram";
    }
    return "?";
}

StatsRegistry::Entry &
StatsRegistry::entryFor(const std::string &name, Kind kind)
{
    auto [it, inserted] = entries.try_emplace(name);
    if (inserted) {
        it->second.kind = kind;
    } else if (it->second.kind != kind) {
        panic("stat '" + name + "' already registered as " +
              kindName(it->second.kind) + ", re-registered as " +
              kindName(kind));
    }
    return it->second;
}

std::uint64_t &
StatsRegistry::scalar(const std::string &name, Kind kind)
{
    return entryFor(name, kind).value;
}

StatsRegistry::Histogram
StatsRegistry::histogram(const std::string &name,
                         const std::vector<std::uint64_t> &bounds)
{
    panicIfNot(!bounds.empty(), "histogram '" + name + "' has no buckets");
    for (std::size_t i = 1; i < bounds.size(); ++i) {
        panicIfNot(bounds[i - 1] < bounds[i],
                   "histogram '" + name +
                       "' bounds must be strictly increasing");
    }

    Entry &entry = entryFor(name, Kind::Histogram);
    if (entry.hist.buckets.empty()) {
        entry.hist.bounds = bounds;
        entry.hist.buckets.assign(bounds.size() + 1, 0);
    } else if (entry.hist.bounds != bounds) {
        panic("histogram '" + name +
              "' re-registered with different bucket bounds");
    }
    return Histogram(&entry.hist);
}

StatsSnapshot
StatsRegistry::snapshot() const
{
    StatsSnapshot snap;
    for (const auto &[name, entry] : entries) {
        if (entry.kind != Kind::Histogram) {
            snap[name] = entry.value;
            continue;
        }
        const HistogramData &h = entry.hist;
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            const std::string key =
                b < h.bounds.size()
                    ? name + ".le" + std::to_string(h.bounds[b])
                    : name + ".inf";
            snap[key] = h.buckets[b];
        }
        snap[name + ".count"] = h.count;
        snap[name + ".sum"] = h.sum;
    }
    return snap;
}

void
StatsRegistry::reset()
{
    for (auto &[name, entry] : entries) {
        entry.value = 0;
        if (entry.kind == Kind::Histogram)
            entry.hist.reset();
    }
}

void
StatsRegistry::dumpJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &[name, entry] : entries) {
        w.key(name);
        if (entry.kind != Kind::Histogram) {
            w.value(entry.value);
            continue;
        }
        const HistogramData &h = entry.hist;
        w.beginObject();
        w.key("bounds").beginArray();
        for (std::uint64_t b : h.bounds)
            w.value(b);
        w.endArray();
        w.key("buckets").beginArray();
        for (std::uint64_t b : h.buckets)
            w.value(b);
        w.endArray();
        w.key("count").value(h.count);
        w.key("sum").value(h.sum);
        w.key("min").value(h.count ? h.min : 0);
        w.key("max").value(h.max);
        w.endObject();
    }
    w.endObject();
}

std::string
StatsRegistry::toJson() const
{
    JsonWriter w;
    dumpJson(w);
    return w.str();
}

} // namespace slpmt
