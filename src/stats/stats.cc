#include "stats/stats.hh"

#include "sim/json.hh"

namespace slpmt
{

const char *
StatsRegistry::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Counter: return "counter";
      case Kind::Gauge: return "gauge";
      case Kind::Histogram: return "histogram";
    }
    return "?";
}

namespace
{

/**
 * The [lo, hi] value range of bucket @p b, clamped to the observed
 * min/max (the first bucket cannot start below the smallest sample;
 * the +inf overflow bucket ends at the largest).
 */
void
bucketRange(const StatsRegistry::HistogramData &h, std::size_t b,
            std::uint64_t *lo, std::uint64_t *hi)
{
    *lo = b == 0 ? 0 : h.bounds[b - 1] + 1;
    *hi = b < h.bounds.size() ? h.bounds[b] : h.max;
    if (*lo < h.min)
        *lo = h.min;
    if (*hi > h.max)
        *hi = h.max;
    if (*hi < *lo)
        *hi = *lo;
}

/** Index of the bucket holding the num/den nearest-rank quantile. */
std::size_t
quantileBucket(const StatsRegistry::HistogramData &h, std::uint64_t num,
               std::uint64_t den, std::uint64_t *rank_in_bucket)
{
    // 1-based nearest rank: the smallest rank covering num/den of the
    // samples (ceil), clamped into [1, count].
    std::uint64_t rank = (h.count * num + den - 1) / den;
    if (rank == 0)
        rank = 1;
    if (rank > h.count)
        rank = h.count;

    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
        if (seen + h.buckets[b] >= rank) {
            *rank_in_bucket = rank - seen;
            return b;
        }
        seen += h.buckets[b];
    }
    panic("histogram bucket counts disagree with count");
}

} // namespace

std::uint64_t
StatsRegistry::HistogramData::percentile(std::uint64_t num,
                                         std::uint64_t den) const
{
    if (count == 0)
        return 0;
    std::uint64_t rank_in_bucket = 0;
    const std::size_t b = quantileBucket(*this, num, den,
                                         &rank_in_bucket);
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bucketRange(*this, b, &lo, &hi);
    // The rank_in_bucket-th of buckets[b] samples assumed uniform on
    // [lo, hi]; both the estimate and the exact sample quantile lie in
    // that interval, bounding the error by hi - lo.
    return lo + (hi - lo) * rank_in_bucket / buckets[b];
}

std::uint64_t
StatsRegistry::HistogramData::percentileErrorBound(
    std::uint64_t num, std::uint64_t den) const
{
    if (count == 0)
        return 0;
    std::uint64_t rank_in_bucket = 0;
    const std::size_t b = quantileBucket(*this, num, den,
                                         &rank_in_bucket);
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bucketRange(*this, b, &lo, &hi);
    return hi - lo;
}

StatsRegistry::Entry &
StatsRegistry::entryFor(const std::string &name, Kind kind)
{
    auto [it, inserted] = entries.try_emplace(name);
    if (inserted) {
        it->second.kind = kind;
    } else if (it->second.kind != kind) {
        panic("stat '" + name + "' already registered as " +
              kindName(it->second.kind) + ", re-registered as " +
              kindName(kind));
    }
    return it->second;
}

std::uint64_t &
StatsRegistry::scalar(const std::string &name, Kind kind)
{
    return entryFor(name, kind).value;
}

StatsRegistry::Histogram
StatsRegistry::histogram(const std::string &name,
                         const std::vector<std::uint64_t> &bounds)
{
    panicIfNot(!bounds.empty(), "histogram '" + name + "' has no buckets");
    for (std::size_t i = 1; i < bounds.size(); ++i) {
        panicIfNot(bounds[i - 1] < bounds[i],
                   "histogram '" + name +
                       "' bounds must be strictly increasing");
    }

    Entry &entry = entryFor(name, Kind::Histogram);
    if (entry.hist.buckets.empty()) {
        entry.hist.bounds = bounds;
        entry.hist.buckets.assign(bounds.size() + 1, 0);
    } else if (entry.hist.bounds != bounds) {
        panic("histogram '" + name +
              "' re-registered with different bucket bounds");
    }
    return Histogram(&entry.hist);
}

StatsSnapshot
StatsRegistry::snapshot() const
{
    StatsSnapshot snap;
    for (const auto &[name, entry] : entries) {
        if (entry.kind != Kind::Histogram) {
            snap[name] = entry.value;
            continue;
        }
        const HistogramData &h = entry.hist;
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            const std::string key =
                b < h.bounds.size()
                    ? name + ".le" + std::to_string(h.bounds[b])
                    : name + ".inf";
            snap[key] = h.buckets[b];
        }
        snap[name + ".count"] = h.count;
        snap[name + ".sum"] = h.sum;
    }
    return snap;
}

void
StatsRegistry::reset()
{
    for (auto &[name, entry] : entries) {
        entry.value = 0;
        if (entry.kind == Kind::Histogram)
            entry.hist.reset();
    }
}

void
StatsRegistry::dumpJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &[name, entry] : entries) {
        w.key(name);
        if (entry.kind != Kind::Histogram) {
            w.value(entry.value);
            continue;
        }
        const HistogramData &h = entry.hist;
        w.beginObject();
        w.key("bounds").beginArray();
        for (std::uint64_t b : h.bounds)
            w.value(b);
        w.endArray();
        w.key("buckets").beginArray();
        for (std::uint64_t b : h.buckets)
            w.value(b);
        w.endArray();
        w.key("count").value(h.count);
        w.key("sum").value(h.sum);
        w.key("min").value(h.count ? h.min : 0);
        w.key("max").value(h.max);
        w.endObject();
    }
    w.endObject();
}

std::string
StatsRegistry::toJson() const
{
    JsonWriter w;
    dumpJson(w);
    return w.str();
}

void
StatsRegistry::saveState(BlobWriter &w) const
{
    w.u<std::uint64_t>(entries.size());
    for (const auto &[name, entry] : entries) {
        w.str(name);
        w.u<std::uint8_t>(static_cast<std::uint8_t>(entry.kind));
        if (entry.kind != Kind::Histogram) {
            w.u<std::uint64_t>(entry.value);
            continue;
        }
        const HistogramData &h = entry.hist;
        w.u<std::uint64_t>(h.buckets.size());
        for (std::uint64_t b : h.buckets)
            w.u<std::uint64_t>(b);
        w.u<std::uint64_t>(h.count);
        w.u<std::uint64_t>(h.sum);
        w.u<std::uint64_t>(h.min);
        w.u<std::uint64_t>(h.max);
    }
}

void
StatsRegistry::restoreState(BlobReader &r)
{
    const std::size_t n = r.count(1);
    if (n != entries.size())
        throw CheckpointError("stat registry shape mismatch");
    for (std::size_t i = 0; i < n; ++i) {
        const std::string name = r.str();
        auto it = entries.find(name);
        if (it == entries.end())
            throw CheckpointError("unknown stat '" + name + "'");
        Entry &entry = it->second;
        const std::uint8_t kind = r.u<std::uint8_t>();
        if (kind != static_cast<std::uint8_t>(entry.kind))
            throw CheckpointError("stat '" + name + "' kind mismatch");
        if (entry.kind != Kind::Histogram) {
            entry.value = r.u<std::uint64_t>();
            continue;
        }
        HistogramData &h = entry.hist;
        const std::size_t buckets = r.count(sizeof(std::uint64_t));
        if (buckets != h.buckets.size())
            throw CheckpointError("stat '" + name +
                                  "' bucket shape mismatch");
        for (auto &b : h.buckets)
            b = r.u<std::uint64_t>();
        h.count = r.u<std::uint64_t>();
        h.sum = r.u<std::uint64_t>();
        h.min = r.u<std::uint64_t>();
        h.max = r.u<std::uint64_t>();
    }
}

} // namespace slpmt
