#include "stats/stats.hh"

#include "sim/json.hh"

namespace slpmt
{

const char *
StatsRegistry::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Counter: return "counter";
      case Kind::Gauge: return "gauge";
      case Kind::Histogram: return "histogram";
    }
    return "?";
}

StatsRegistry::Entry &
StatsRegistry::entryFor(const std::string &name, Kind kind)
{
    auto [it, inserted] = entries.try_emplace(name);
    if (inserted) {
        it->second.kind = kind;
    } else if (it->second.kind != kind) {
        panic("stat '" + name + "' already registered as " +
              kindName(it->second.kind) + ", re-registered as " +
              kindName(kind));
    }
    return it->second;
}

std::uint64_t &
StatsRegistry::scalar(const std::string &name, Kind kind)
{
    return entryFor(name, kind).value;
}

StatsRegistry::Histogram
StatsRegistry::histogram(const std::string &name,
                         const std::vector<std::uint64_t> &bounds)
{
    panicIfNot(!bounds.empty(), "histogram '" + name + "' has no buckets");
    for (std::size_t i = 1; i < bounds.size(); ++i) {
        panicIfNot(bounds[i - 1] < bounds[i],
                   "histogram '" + name +
                       "' bounds must be strictly increasing");
    }

    Entry &entry = entryFor(name, Kind::Histogram);
    if (entry.hist.buckets.empty()) {
        entry.hist.bounds = bounds;
        entry.hist.buckets.assign(bounds.size() + 1, 0);
    } else if (entry.hist.bounds != bounds) {
        panic("histogram '" + name +
              "' re-registered with different bucket bounds");
    }
    return Histogram(&entry.hist);
}

StatsSnapshot
StatsRegistry::snapshot() const
{
    StatsSnapshot snap;
    for (const auto &[name, entry] : entries) {
        if (entry.kind != Kind::Histogram) {
            snap[name] = entry.value;
            continue;
        }
        const HistogramData &h = entry.hist;
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            const std::string key =
                b < h.bounds.size()
                    ? name + ".le" + std::to_string(h.bounds[b])
                    : name + ".inf";
            snap[key] = h.buckets[b];
        }
        snap[name + ".count"] = h.count;
        snap[name + ".sum"] = h.sum;
    }
    return snap;
}

void
StatsRegistry::reset()
{
    for (auto &[name, entry] : entries) {
        entry.value = 0;
        if (entry.kind == Kind::Histogram)
            entry.hist.reset();
    }
}

void
StatsRegistry::dumpJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &[name, entry] : entries) {
        w.key(name);
        if (entry.kind != Kind::Histogram) {
            w.value(entry.value);
            continue;
        }
        const HistogramData &h = entry.hist;
        w.beginObject();
        w.key("bounds").beginArray();
        for (std::uint64_t b : h.bounds)
            w.value(b);
        w.endArray();
        w.key("buckets").beginArray();
        for (std::uint64_t b : h.buckets)
            w.value(b);
        w.endArray();
        w.key("count").value(h.count);
        w.key("sum").value(h.sum);
        w.key("min").value(h.count ? h.min : 0);
        w.key("max").value(h.max);
        w.endObject();
    }
    w.endObject();
}

std::string
StatsRegistry::toJson() const
{
    JsonWriter w;
    dumpJson(w);
    return w.str();
}

void
StatsRegistry::saveState(BlobWriter &w) const
{
    w.u<std::uint64_t>(entries.size());
    for (const auto &[name, entry] : entries) {
        w.str(name);
        w.u<std::uint8_t>(static_cast<std::uint8_t>(entry.kind));
        if (entry.kind != Kind::Histogram) {
            w.u<std::uint64_t>(entry.value);
            continue;
        }
        const HistogramData &h = entry.hist;
        w.u<std::uint64_t>(h.buckets.size());
        for (std::uint64_t b : h.buckets)
            w.u<std::uint64_t>(b);
        w.u<std::uint64_t>(h.count);
        w.u<std::uint64_t>(h.sum);
        w.u<std::uint64_t>(h.min);
        w.u<std::uint64_t>(h.max);
    }
}

void
StatsRegistry::restoreState(BlobReader &r)
{
    const std::size_t n = r.count(1);
    if (n != entries.size())
        throw CheckpointError("stat registry shape mismatch");
    for (std::size_t i = 0; i < n; ++i) {
        const std::string name = r.str();
        auto it = entries.find(name);
        if (it == entries.end())
            throw CheckpointError("unknown stat '" + name + "'");
        Entry &entry = it->second;
        const std::uint8_t kind = r.u<std::uint8_t>();
        if (kind != static_cast<std::uint8_t>(entry.kind))
            throw CheckpointError("stat '" + name + "' kind mismatch");
        if (entry.kind != Kind::Histogram) {
            entry.value = r.u<std::uint64_t>();
            continue;
        }
        HistogramData &h = entry.hist;
        const std::size_t buckets = r.count(sizeof(std::uint64_t));
        if (buckets != h.buckets.size())
            throw CheckpointError("stat '" + name +
                                  "' bucket shape mismatch");
        for (auto &b : h.buckets)
            b = r.u<std::uint64_t>();
        h.count = r.u<std::uint64_t>();
        h.sum = r.u<std::uint64_t>();
        h.min = r.u<std::uint64_t>();
        h.max = r.u<std::uint64_t>();
    }
}

} // namespace slpmt
