/**
 * @file
 * Records the order in which data reaches the persistence domain.
 *
 * Figure 4 of the paper constrains the order in which log records,
 * logged cache lines, and log-free cache lines may become durable for
 * undo and redo logging. The tracker gives tests and the recovery
 * checker a ground-truth sequence of persist events to validate those
 * constraints against.
 */

#ifndef SLPMT_MEM_PERSIST_TRACKER_HH
#define SLPMT_MEM_PERSIST_TRACKER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace slpmt
{

/** What kind of payload a persist event carried. */
enum class PersistKind : std::uint8_t
{
    LogRecord,     //!< an undo/redo log record
    LoggedLine,    //!< a cache line updated by logged stores
    LogFreeLine,   //!< a cache line updated only by log-free storeT
    LazyLine,      //!< a lazily persistent line forced out after commit
    Writeback,     //!< an ordinary dirty writeback (outside transactions)
    Marker,        //!< a transaction begin/commit marker in the log area
};

/** One entry in the persist-order ledger. */
struct PersistEvent
{
    std::uint64_t seq;     //!< global ordering index
    PersistKind kind;      //!< payload category
    Addr addr;             //!< line or record address
    std::uint64_t txnSeq;  //!< global sequence number of the owning txn
};

/**
 * Ledger of persist events in durability order.
 *
 * Disabled by default (benchmarks run millions of persists); tests
 * enable it around the window of interest.
 */
class PersistTracker
{
  public:
    /** Start recording (clears any previous ledger). */
    void
    enable()
    {
        events.clear();
        recording = true;
    }

    /** Stop recording; the ledger remains readable. */
    void disable() { recording = false; }

    /** Append an event if recording. */
    void
    record(PersistKind kind, Addr addr, std::uint64_t txn_seq)
    {
        if (!recording)
            return;
        events.push_back({nextSeq++, kind, addr, txn_seq});
    }

    const std::vector<PersistEvent> &ledger() const { return events; }

    void
    clear()
    {
        events.clear();
        nextSeq = 0;
    }

  private:
    std::vector<PersistEvent> events;
    std::uint64_t nextSeq = 0;
    bool recording = false;
};

} // namespace slpmt

#endif // SLPMT_MEM_PERSIST_TRACKER_HH
