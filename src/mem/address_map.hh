/**
 * @file
 * Physical address map of the simulated machine.
 *
 * One DRAM range and one persistent-memory range. The transaction
 * engine consults the map to decide whether a store participates in
 * durability at all, and the persistent heap allocates exclusively
 * from the PM range.
 */

#ifndef SLPMT_MEM_ADDRESS_MAP_HH
#define SLPMT_MEM_ADDRESS_MAP_HH

#include "common/logging.hh"
#include "common/types.hh"

namespace slpmt
{

/** Static partition of the physical address space. */
struct AddressMap
{
    Addr dramBase = 0x0000'0000;
    Bytes dramSize = 256ULL << 20;
    Addr pmBase = 0x4000'0000;
    Bytes pmSize = 1024ULL << 20;

    /** Start of the PM region reserved for the hardware undo-log area. */
    Addr
    logAreaBase() const
    {
        return pmBase;
    }

    /** Size of the hardware log area (generous: logs are truncated
     *  at every commit, so 16 MB bounds any single transaction). */
    Bytes logAreaSize() const { return 16ULL << 20; }

    /** Start of the PM region handed to the persistent heap. */
    Addr heapBase() const { return pmBase + logAreaSize(); }
    Bytes heapSize() const { return pmSize - logAreaSize(); }

    bool
    isPm(Addr addr) const
    {
        return addr >= pmBase && addr < pmBase + pmSize;
    }

    bool
    isDram(Addr addr) const
    {
        return addr >= dramBase && addr < dramBase + dramSize;
    }

    void
    checkMapped(Addr addr) const
    {
        if (!isPm(addr) && !isDram(addr))
            panic("access to unmapped address");
    }
};

} // namespace slpmt

#endif // SLPMT_MEM_ADDRESS_MAP_HH
