/**
 * @file
 * Volatile DRAM device backing the non-persistent address range.
 *
 * Table III specifies DDR4-2400 with tRCD/tCL/tRP of 14 ns; we model a
 * flat access latency derived from those parameters plus a row-buffer
 * hit fast path, which is the level of fidelity the experiments need
 * (all results are driven by the PM side).
 */

#ifndef SLPMT_MEM_DRAM_DEVICE_HH
#define SLPMT_MEM_DRAM_DEVICE_HH

#include <cstdint>

#include "checkpoint/serde.hh"
#include "stats/stats.hh"
#include "common/types.hh"
#include "mem/paged_memory.hh"

namespace slpmt
{

/** DRAM timing parameters (defaults approximate DDR4-2400). */
struct DramConfig
{
    std::uint64_t rowHitNs = 14;    //!< tCL only
    std::uint64_t rowMissNs = 42;   //!< tRP + tRCD + tCL
    Addr rowBytes = 8192;           //!< row-buffer span
};

/** Flat-latency DRAM with a single open-row predictor. */
class DramDevice
{
  public:
    DramDevice(const DramConfig &cfg, StatsRegistry &stats)
        : config(cfg),
          statReads(stats.counter("dram.reads")),
          statWrites(stats.counter("dram.writes")),
          statRowHits(stats.counter("dram.rowHits"))
    {
    }

    /** Read one line; returns the access latency in cycles. */
    Cycles
    readLine(Addr addr, std::uint8_t *out)
    {
        image.read(lineBase(addr), out, cacheLineSize);
        statReads++;
        return access(addr);
    }

    /** Write one line back; returns the access latency in cycles. */
    Cycles
    writeLine(Addr addr, const std::uint8_t *data)
    {
        image.write(lineBase(addr), data, cacheLineSize);
        statWrites++;
        return access(addr);
    }

    /** DRAM loses its contents on power failure. */
    void crash() { image.clear(); openRow = invalidRow; }

    /** The volatile image store (checkpoint page snapshots). */
    PagedMemory &memory() { return image; }
    const PagedMemory &memory() const { return image; }

    /** Serialize timing state (image paged out separately). */
    void saveState(BlobWriter &w) const { w.u<Addr>(openRow); }
    void restoreState(BlobReader &r) { openRow = r.u<Addr>(); }

  private:
    static constexpr Addr invalidRow = ~static_cast<Addr>(0);

    Cycles
    access(Addr addr)
    {
        const Addr row = addr / config.rowBytes;
        const bool hit = row == openRow;
        openRow = row;
        if (hit) {
            statRowHits++;
            return nsToCycles(config.rowHitNs);
        }
        return nsToCycles(config.rowMissNs);
    }

    DramConfig config;
    PagedMemory image;
    Addr openRow = invalidRow;

    StatsRegistry::Counter statReads;
    StatsRegistry::Counter statWrites;
    StatsRegistry::Counter statRowHits;
};

} // namespace slpmt

#endif // SLPMT_MEM_DRAM_DEVICE_HH
