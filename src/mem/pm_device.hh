/**
 * @file
 * Byte-addressable persistent memory device with an ADR-style write
 * pending queue (WPQ).
 *
 * Matches the PM row of Table III: a 512-byte WPQ (eight cache-line
 * slots), 4 ns WPQ-entry latency, 150 ns read latency, and a 500 ns
 * media write latency that Figure 12 sweeps up to 2300 ns.
 *
 * Because the WPQ sits inside the persistence domain (Intel ADR drains
 * it on power failure), a write is architecturally durable the moment
 * it enters the queue. The device therefore applies data to the
 * durable image at enqueue time; the queue itself is purely a timing
 * model — when all eight slots hold writes still draining to the
 * media, the next persist stalls the issuing core.
 */

#ifndef SLPMT_MEM_PM_DEVICE_HH
#define SLPMT_MEM_PM_DEVICE_HH

#include <algorithm>
#include <cstdint>
#include <deque>

#include "checkpoint/serde.hh"
#include "stats/stats.hh"
#include "common/types.hh"
#include "mem/paged_memory.hh"
#include "mem/persist_tracker.hh"

namespace slpmt
{

/** Tunable device parameters (defaults from Table III). */
struct PmConfig
{
    Bytes wpqBytes = 512;             //!< write pending queue capacity
    std::uint64_t wpqLatencyNs = 4;   //!< time to enter the WPQ
    std::uint64_t readLatencyNs = 150;
    std::uint64_t writeLatencyNs = 500; //!< media write latency

    /**
     * Internal media parallelism: the drain pipeline initiates a new
     * line write every writeLatencyNs / mediaBanks (PM devices overlap
     * writes across banks; a single line still takes the full write
     * latency).
     */
    std::uint64_t mediaBanks = 4;

    /**
     * Sequential-write advantage: a line contiguous with the
     * previously drained one initiates this many times faster (PM
     * media buffer/row locality — "persistent memory offers fast
     * sequential write but slow random write", Section V-A). Table
     * III models a flat write latency, so the default is 1; the
     * Section V-A ablation sweeps it.
     */
    std::uint64_t sequentialFactor = 1;
};

/** Outcome of one persist operation, for the issuing core's timing. */
struct PersistResult
{
    Cycles issueCycles;  //!< cycles the core spent issuing (incl. stall)
    Cycles stallCycles;  //!< portion of issueCycles spent on a full WPQ
};

/**
 * The persistent memory device.
 *
 * All writes that must survive a crash flow through persistLine() or
 * persistBytes(); reads that miss the entire cache hierarchy use
 * readLine(). Write traffic is accounted per category so experiments
 * can report the paper's "PM write traffic" metric and its data/log
 * breakdown.
 */
class PmDevice
{
  public:
    PmDevice(const PmConfig &cfg, StatsRegistry &stats,
             PersistTracker &tracker)
        : config(cfg),
          tracker(tracker),
          statBytesWritten(stats.counter("pm.bytesWritten")),
          statDataBytes(stats.counter("pm.dataBytesWritten")),
          statLogBytes(stats.counter("pm.logBytesWritten")),
          statLineWrites(stats.counter("pm.lineWrites")),
          statWpqStalls(stats.counter("pm.wpqStalls")),
          statWpqStallCycles(stats.counter("pm.wpqStallCycles")),
          statWpqCoalesced(stats.counter("pm.wpqCoalesced")),
          statReads(stats.counter("pm.reads")),
          statWpqOccupancy(
              stats.histogram("pm.wpqOccupancy", {1, 2, 4, 6, 8}))
    {
    }

    /** Number of cache-line slots in the WPQ. */
    std::size_t
    wpqSlots() const
    {
        return static_cast<std::size_t>(config.wpqBytes / cacheLineSize);
    }

    /**
     * Persist one full cache line.
     *
     * @param addr line-aligned address
     * @param data 64 bytes of line content
     * @param now current core time, in cycles
     * @param kind category for the persist-order ledger
     * @param txn_seq owning transaction sequence number
     * @param sync when false, the persist is issued by background
     *        hardware (forced lazy flushes, evictions): it occupies
     *        the WPQ but never stalls the core on a full queue
     */
    PersistResult
    persistLine(Addr addr, const std::uint8_t *data, Cycles now,
                PersistKind kind, std::uint64_t txn_seq,
                bool sync = true)
    {
        image.write(lineBase(addr), data, cacheLineSize);
        statDataBytes += cacheLineSize;
        tracker.record(kind, lineBase(addr), txn_seq);
        return enqueue(now, lineBase(addr), 1, cacheLineSize, sync);
    }

    /**
     * Persist a byte run (log records, markers). Traffic is counted in
     * actual bytes (or @p traffic_override when the caller excludes
     * framing bytes); WPQ occupancy is counted in the cache lines the
     * run spans, matching how the controller moves data.
     */
    PersistResult
    persistBytes(Addr addr, const void *data, std::size_t len, Cycles now,
                 PersistKind kind, std::uint64_t txn_seq,
                 Bytes traffic_override = 0)
    {
        image.write(addr, data, len);
        statLogBytes += traffic_override ? traffic_override : len;
        tracker.record(kind, addr, txn_seq);
        const Addr first = lineBase(addr);
        const Addr last = lineBase(addr + (len ? len - 1 : 0));
        const std::size_t lines =
            static_cast<std::size_t>((last - first) / cacheLineSize) + 1;
        return enqueue(now, first, lines,
                       traffic_override ? traffic_override : len,
                       /*sync=*/true);
    }

    /** Read one cache line from the durable image. */
    Cycles
    readLine(Addr addr, std::uint8_t *out)
    {
        image.read(lineBase(addr), out, cacheLineSize);
        statReads++;
        return nsToCycles(config.readLatencyNs);
    }

    /** Direct durable-image read for recovery code (no timing). */
    void
    peek(Addr addr, void *out, std::size_t len) const
    {
        image.read(addr, out, len);
    }

    /** Direct durable-image write for initialisation (no timing). */
    void
    poke(Addr addr, const void *data, std::size_t len)
    {
        image.write(addr, data, len);
    }

    /**
     * Power failure. ADR drains the WPQ, so the durable image (which
     * already reflects every enqueued write) is exactly what survives;
     * only the in-flight timing state is discarded.
     */
    void
    crash()
    {
        pending.clear();
        lastInitiation = 0;
    }

    /** Earliest time at which every queued write has hit the media. */
    Cycles
    drainTime() const
    {
        return pending.empty() ? 0 : pending.back().completion;
    }

    const PmConfig &cfg() const { return config; }

    /** Update the media write latency (Figure 12 sweep). */
    void setWriteLatencyNs(std::uint64_t ns) { config.writeLatencyNs = ns; }

    /** The durable image store (checkpoint page snapshots). */
    PagedMemory &memory() { return image; }
    const PagedMemory &memory() const { return image; }

    /** Serialize WPQ/media timing state (the image is paged out
     *  separately via PagedMemory snapshots). */
    void
    saveState(BlobWriter &w) const
    {
        w.u<std::uint64_t>(pending.size());
        for (const auto &e : pending) {
            w.u<Cycles>(e.completion);
            w.u<Addr>(e.line);
        }
        w.u<Cycles>(lastInitiation);
        w.u<Addr>(lastDrainLine);
    }

    void
    restoreState(BlobReader &r)
    {
        pending.clear();
        const std::size_t n = r.count(sizeof(Cycles) + sizeof(Addr));
        for (std::size_t i = 0; i < n; ++i) {
            WpqEntry e;
            e.completion = r.u<Cycles>();
            e.line = r.u<Addr>();
            pending.push_back(e);
        }
        lastInitiation = r.u<Cycles>();
        lastDrainLine = r.u<Addr>();
    }

  private:
    /** One pending (not yet drained) WPQ entry. */
    struct WpqEntry
    {
        Cycles completion;
        Addr line;
    };

    /**
     * Timing for a write of @p lines consecutive cache lines starting
     * at @p first_line entering the WPQ at time @p now. Writes to a
     * line that is still pending in the queue coalesce into the
     * existing entry (no extra slot, no extra drain time) — this is
     * what makes the log buffer's packed drains so much cheaper than
     * scattered per-record persists.
     */
    PersistResult
    enqueue(Cycles now, Addr first_line, std::size_t lines,
            Bytes traffic_bytes, bool sync)
    {
        statBytesWritten += traffic_bytes;
        statLineWrites += lines;
        statWpqOccupancy.record(pending.size());

        const Cycles write_lat = nsToCycles(config.writeLatencyNs);
        // The media initiates a new line write every interval (bank
        // parallelism); a single write still takes the full latency.
        const Cycles interval =
            std::max<Cycles>(1, write_lat / std::max<std::uint64_t>(
                                                1, config.mediaBanks));
        const Cycles wpq_lat = nsToCycles(config.wpqLatencyNs);

        Cycles t = now;
        Cycles stall = 0;
        for (std::size_t i = 0; i < lines; ++i) {
            const Addr line = lineBase(first_line) + i * cacheLineSize;
            // Retire entries the media has already drained.
            while (!pending.empty() && pending.front().completion <= t)
                pending.pop_front();
            // Same-line coalescing within the queue.
            bool coalesced = false;
            for (const auto &entry : pending) {
                if (entry.line == line) {
                    coalesced = true;
                    break;
                }
            }
            if (coalesced) {
                statWpqCoalesced++;
                t += wpq_lat;
                continue;
            }
            // A full queue stalls a synchronous issuer until the head
            // drains; background issuers let the queue grow (the
            // backlog delays later synchronous persists instead).
            if (sync && pending.size() >= wpqSlots()) {
                stall += pending.front().completion - t;
                t = pending.front().completion;
                pending.pop_front();
            }
            const bool sequential =
                line == lastDrainLine + cacheLineSize;
            const Cycles spacing =
                sequential ? std::max<Cycles>(
                                 1, interval / std::max<std::uint64_t>(
                                                   1,
                                                   config.sequentialFactor))
                           : interval;
            const Cycles start =
                std::max(t, lastInitiation + spacing);
            lastInitiation = start;
            lastDrainLine = line;
            pending.push_back({start + write_lat, line});
            t += wpq_lat;
        }
        if (stall) {
            statWpqStalls++;
            statWpqStallCycles += stall;
        }
        return {t - now, stall};
    }

    PmConfig config;
    PagedMemory image;               //!< durable contents (incl. WPQ)
    std::deque<WpqEntry> pending;    //!< writes still draining
    Cycles lastInitiation = 0;       //!< media pipeline state
    Addr lastDrainLine = ~static_cast<Addr>(0);  //!< locality state
    PersistTracker &tracker;

    StatsRegistry::Counter statBytesWritten;
    StatsRegistry::Counter statDataBytes;
    StatsRegistry::Counter statLogBytes;
    StatsRegistry::Counter statLineWrites;
    StatsRegistry::Counter statWpqStalls;
    StatsRegistry::Counter statWpqStallCycles;
    StatsRegistry::Counter statWpqCoalesced;
    StatsRegistry::Counter statReads;
    StatsRegistry::Histogram statWpqOccupancy; //!< depth seen at enqueue
};

} // namespace slpmt

#endif // SLPMT_MEM_PM_DEVICE_HH
