/**
 * @file
 * Sparse byte-addressable backing storage with copy-on-write
 * snapshots.
 *
 * Devices model multi-hundred-megabyte address ranges of which a
 * workload touches only a fraction; pages are allocated on first touch
 * so the host-side footprint tracks the simulated working set.
 *
 * Accesses show heavy page locality (a 64-byte cache-line transfer is
 * 64× smaller than a page, and workloads stride within regions), so a
 * single-entry cache of the last page looked up short-circuits the
 * hash-map probe on the common repeat hit. Page payloads live behind
 * shared_ptr, so the cached pointer stays valid across map rehashes;
 * it is dropped whenever the page set changes.
 *
 * snapshot() captures the current page table by reference: pages are
 * shared between the live store and any number of snapshots, and a
 * write to a shared page clones it first (copy-on-write). K
 * checkpoints of a T-page heap therefore cost K page *tables* plus
 * only the pages that actually diverge — not K full heap copies.
 * Snapshots are immutable; shared_ptr's atomic refcounts make it safe
 * for parallel workers to restore from the same snapshot concurrently.
 */

#ifndef SLPMT_MEM_PAGED_MEMORY_HH
#define SLPMT_MEM_PAGED_MEMORY_HH

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace slpmt
{

/** Sparse, page-granular byte store covering a 64-bit address space. */
class PagedMemory
{
  public:
    static constexpr std::size_t pageSize = 4096;

    using Page = std::array<std::uint8_t, pageSize>;

    /** An immutable capture of the page table (see snapshot()). */
    using Snapshot =
        std::unordered_map<Addr, std::shared_ptr<const Page>>;

    /** Read @p len bytes at @p addr into @p out. Untouched bytes are 0. */
    void
    read(Addr addr, void *out, std::size_t len) const
    {
        auto *dst = static_cast<std::uint8_t *>(out);
        while (len > 0) {
            const Addr page = addr / pageSize;
            const std::size_t off = addr % pageSize;
            const std::size_t chunk = std::min(len, pageSize - off);
            const Page *p = lookup(page);
            if (!p)
                std::memset(dst, 0, chunk);
            else
                std::memcpy(dst, p->data() + off, chunk);
            addr += chunk;
            dst += chunk;
            len -= chunk;
        }
    }

    /** Write @p len bytes from @p src at @p addr. */
    void
    write(Addr addr, const void *src, std::size_t len)
    {
        auto *from = static_cast<const std::uint8_t *>(src);
        while (len > 0) {
            const Addr page = addr / pageSize;
            const std::size_t off = addr % pageSize;
            const std::size_t chunk = std::min(len, pageSize - off);
            Page *p = nullptr;
            if (lastWritablePage && lastPageNum == page) {
                p = lastWritablePage;
            } else {
                auto &slot = pages[page];
                if (!slot) {
                    slot = std::make_shared<Page>();
                    slot->fill(0);
                } else if (slot.use_count() > 1) {
                    // Shared with a snapshot: clone before mutating.
                    slot = std::make_shared<Page>(*slot);
                }
                p = slot.get();
                lastPageNum = page;
                lastPage = p;
                lastWritablePage = p;
            }
            std::memcpy(p->data() + off, from, chunk);
            addr += chunk;
            from += chunk;
            len -= chunk;
        }
    }

    /** Drop every page (simulates losing the medium's contents). */
    void
    clear()
    {
        pages.clear();
        dropCache();
    }

    /**
     * Capture the page table by reference. O(pages), copies no
     * payloads; subsequent writes clone shared pages on demand.
     */
    Snapshot
    snapshot() const
    {
        Snapshot snap;
        snap.reserve(pages.size());
        for (const auto &kv : pages)
            snap.emplace(kv.first, kv.second);
        // Every page is now shared: the next write to any of them must
        // take the clone path, so the writable-page cache is stale.
        lastWritablePage = nullptr;
        return snap;
    }

    /** Replace the contents with @p snap (pages shared, CoW). */
    void
    restore(const Snapshot &snap)
    {
        pages.clear();
        pages.reserve(snap.size());
        for (const auto &kv : snap)
            pages.emplace(kv.first,
                          std::const_pointer_cast<Page>(kv.second));
        dropCache();
    }

    /**
     * Visit every materialised page in ascending page-number order
     * (deterministic serialization / image comparison). @p fn receives
     * (pageNumber, pageData).
     */
    template <typename Fn>
    void
    forEachPageSorted(Fn &&fn) const
    {
        std::vector<Addr> nums;
        nums.reserve(pages.size());
        for (const auto &kv : pages)
            nums.push_back(kv.first);
        std::sort(nums.begin(), nums.end());
        for (Addr num : nums)
            fn(num, *pages.at(num));
    }

    /** Number of pages materialised so far. */
    std::size_t pageCount() const { return pages.size(); }

  private:
    /** Find a present page, preferring the single-entry cache. The
     *  cache only ever holds present pages — a miss is not cached, so
     *  a later write materialising the page cannot be shadowed. */
    const Page *
    lookup(Addr page) const
    {
        if (lastPage && lastPageNum == page)
            return lastPage;
        auto it = pages.find(page);
        if (it == pages.end())
            return nullptr;
        lastPageNum = page;
        lastPage = it->second.get();
        lastWritablePage = nullptr;
        return lastPage;
    }

    void
    dropCache()
    {
        lastPage = nullptr;
        lastWritablePage = nullptr;
    }

    std::unordered_map<Addr, std::shared_ptr<Page>> pages;
    mutable Addr lastPageNum = 0;
    mutable Page *lastPage = nullptr;
    /** Like lastPage, but only set when the page is known unshared —
     *  a snapshot() invalidates it so writes re-check use_count. */
    mutable Page *lastWritablePage = nullptr;
};

} // namespace slpmt

#endif // SLPMT_MEM_PAGED_MEMORY_HH
