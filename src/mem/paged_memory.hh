/**
 * @file
 * Sparse byte-addressable backing storage.
 *
 * Devices model multi-hundred-megabyte address ranges of which a
 * workload touches only a fraction; pages are allocated on first touch
 * so the host-side footprint tracks the simulated working set.
 */

#ifndef SLPMT_MEM_PAGED_MEMORY_HH
#define SLPMT_MEM_PAGED_MEMORY_HH

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace slpmt
{

/** Sparse, page-granular byte store covering a 64-bit address space. */
class PagedMemory
{
  public:
    static constexpr std::size_t pageSize = 4096;

    /** Read @p len bytes at @p addr into @p out. Untouched bytes are 0. */
    void
    read(Addr addr, void *out, std::size_t len) const
    {
        auto *dst = static_cast<std::uint8_t *>(out);
        while (len > 0) {
            const Addr page = addr / pageSize;
            const std::size_t off = addr % pageSize;
            const std::size_t chunk = std::min(len, pageSize - off);
            auto it = pages.find(page);
            if (it == pages.end())
                std::memset(dst, 0, chunk);
            else
                std::memcpy(dst, it->second->data() + off, chunk);
            addr += chunk;
            dst += chunk;
            len -= chunk;
        }
    }

    /** Write @p len bytes from @p src at @p addr. */
    void
    write(Addr addr, const void *src, std::size_t len)
    {
        auto *from = static_cast<const std::uint8_t *>(src);
        while (len > 0) {
            const Addr page = addr / pageSize;
            const std::size_t off = addr % pageSize;
            const std::size_t chunk = std::min(len, pageSize - off);
            auto &slot = pages[page];
            if (!slot) {
                slot = std::make_unique<Page>();
                slot->fill(0);
            }
            std::memcpy(slot->data() + off, from, chunk);
            addr += chunk;
            from += chunk;
            len -= chunk;
        }
    }

    /** Drop every page (simulates losing the medium's contents). */
    void clear() { pages.clear(); }

    /** Number of pages materialised so far. */
    std::size_t pageCount() const { return pages.size(); }

  private:
    using Page = std::array<std::uint8_t, pageSize>;
    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
};

} // namespace slpmt

#endif // SLPMT_MEM_PAGED_MEMORY_HH
