/**
 * @file
 * Sparse byte-addressable backing storage.
 *
 * Devices model multi-hundred-megabyte address ranges of which a
 * workload touches only a fraction; pages are allocated on first touch
 * so the host-side footprint tracks the simulated working set.
 *
 * Accesses show heavy page locality (a 64-byte cache-line transfer is
 * 64× smaller than a page, and workloads stride within regions), so a
 * single-entry cache of the last page looked up short-circuits the
 * hash-map probe on the common repeat hit. Page payloads live behind
 * unique_ptr, so the cached pointer stays valid across map rehashes;
 * it is dropped whenever the page set changes.
 */

#ifndef SLPMT_MEM_PAGED_MEMORY_HH
#define SLPMT_MEM_PAGED_MEMORY_HH

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace slpmt
{

/** Sparse, page-granular byte store covering a 64-bit address space. */
class PagedMemory
{
  public:
    static constexpr std::size_t pageSize = 4096;

    /** Read @p len bytes at @p addr into @p out. Untouched bytes are 0. */
    void
    read(Addr addr, void *out, std::size_t len) const
    {
        auto *dst = static_cast<std::uint8_t *>(out);
        while (len > 0) {
            const Addr page = addr / pageSize;
            const std::size_t off = addr % pageSize;
            const std::size_t chunk = std::min(len, pageSize - off);
            const Page *p = lookup(page);
            if (!p)
                std::memset(dst, 0, chunk);
            else
                std::memcpy(dst, p->data() + off, chunk);
            addr += chunk;
            dst += chunk;
            len -= chunk;
        }
    }

    /** Write @p len bytes from @p src at @p addr. */
    void
    write(Addr addr, const void *src, std::size_t len)
    {
        auto *from = static_cast<const std::uint8_t *>(src);
        while (len > 0) {
            const Addr page = addr / pageSize;
            const std::size_t off = addr % pageSize;
            const std::size_t chunk = std::min(len, pageSize - off);
            Page *p = nullptr;
            if (lastPage && lastPageNum == page) {
                p = lastPage;
            } else {
                auto &slot = pages[page];
                if (!slot) {
                    slot = std::make_unique<Page>();
                    slot->fill(0);
                }
                p = slot.get();
                lastPageNum = page;
                lastPage = p;
            }
            std::memcpy(p->data() + off, from, chunk);
            addr += chunk;
            from += chunk;
            len -= chunk;
        }
    }

    /** Drop every page (simulates losing the medium's contents). */
    void
    clear()
    {
        pages.clear();
        lastPage = nullptr;
    }

    /** Number of pages materialised so far. */
    std::size_t pageCount() const { return pages.size(); }

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    /** Find a present page, preferring the single-entry cache. The
     *  cache only ever holds present pages — a miss is not cached, so
     *  a later write materialising the page cannot be shadowed. */
    const Page *
    lookup(Addr page) const
    {
        if (lastPage && lastPageNum == page)
            return lastPage;
        auto it = pages.find(page);
        if (it == pages.end())
            return nullptr;
        lastPageNum = page;
        lastPage = it->second.get();
        return lastPage;
    }

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
    mutable Addr lastPageNum = 0;
    mutable Page *lastPage = nullptr;
};

} // namespace slpmt

#endif // SLPMT_MEM_PAGED_MEMORY_HH
