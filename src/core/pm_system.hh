/**
 * @file
 * PmSystem: the top-level facade a program (or workload) uses.
 *
 * Owns the full simulated machine — PM and DRAM devices, the cache
 * hierarchy, the transaction engine for the configured scheme, the
 * persistent heap, and the store-site registry — and exposes the
 * typed load/store/storeT API, transaction control, crash injection,
 * and recovery entry points.
 */

#ifndef SLPMT_CORE_PM_SYSTEM_HH
#define SLPMT_CORE_PM_SYSTEM_HH

#include <cstring>
#include <memory>
#include <type_traits>

#include "cache/hierarchy.hh"
#include "stats/stats.hh"
#include "core/annotation.hh"
#include "core/heap.hh"
#include "mem/address_map.hh"
#include "mem/dram_device.hh"
#include "mem/persist_tracker.hh"
#include "mem/pm_device.hh"
#include "txn/engine.hh"

namespace slpmt
{

/** Everything configurable about the simulated machine. */
struct SystemConfig
{
    SchemeConfig scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
    LoggingStyle style = LoggingStyle::Undo;
    AddressMap map;
    PmConfig pm;
    DramConfig dram;
    HierarchyConfig hierarchy;

    /** Metadata line index toggle (see ExperimentConfig::useMetaIndex). */
    bool useMetaIndex = true;
};

/** Number of 8-byte durable root slots in the root directory. */
inline constexpr std::size_t numRootSlots = 64;

/** The simulated machine. */
class PmSystem
{
  public:
    explicit PmSystem(const SystemConfig &cfg = SystemConfig{})
        : config(cfg),
          pmDev(cfg.pm, statsReg, persistTracker),
          dramDev(cfg.dram, statsReg),
          hier(cfg.hierarchy, config.map, pmDev, dramDev, statsReg),
          txnEngine(cfg.scheme, cfg.style, config.map, hier, pmDev,
                    statsReg),
          pmHeap(config.map.heapBase() + rootDirBytes,
                 config.map.heapSize() - rootDirBytes, statsReg)
    {
        policy = &manualPolicy;
        hier.setMetaIndexEnabled(config.useMetaIndex);
    }

    /** @name Component access */
    /** @{ */
    TxnEngine &engine() { return txnEngine; }
    PmDevice &pm() { return pmDev; }
    DramDevice &dram() { return dramDev; }
    CacheHierarchy &hierarchy() { return hier; }
    StatsRegistry &stats() { return statsReg; }
    PersistTracker &tracker() { return persistTracker; }
    PersistentHeap &heap() { return pmHeap; }
    StoreSiteRegistry &sites() { return siteRegistry; }
    const AddressMap &map() const { return config.map; }
    const SystemConfig &cfg() const { return config; }
    /** @} */

    /** @name Annotation policy (manual by default) */
    /** @{ */
    void setAnnotationPolicy(const AnnotationPolicy *p)
    {
        policy = p ? p : &manualPolicy;
    }
    const AnnotationPolicy &annotationPolicy() const { return *policy; }
    /** @} */

    /** @name Transaction control */
    /** @{ */
    void txBegin() { txnEngine.txBegin(); }
    void txCommit() { txnEngine.txCommit(); }
    void txAbort() { txnEngine.txAbort(); }
    bool inTransaction() const { return txnEngine.inTransaction(); }
    /** @} */

    /** @name Typed data path */
    /** @{ */
    template <typename T>
    T
    read(Addr addr)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        txnEngine.load(addr, &value, sizeof(T));
        return value;
    }

    /** Ordinary logged, eagerly persistent store. */
    template <typename T>
    void
    write(Addr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        txnEngine.store(addr, &value, sizeof(T));
    }

    /** storeT with explicit operands. */
    template <typename T>
    void
    writeT(Addr addr, const T &value, StoreFlags flags)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        txnEngine.storeT(addr, &value, sizeof(T), flags);
    }

    /** Store through a registered site: the active annotation policy
     *  decides the storeT operands. */
    template <typename T>
    void
    writeSite(Addr addr, const T &value, SiteId site)
    {
        writeT(addr, value, policy->flagsFor(siteRegistry.info(site)));
    }

    void
    readBytes(Addr addr, void *out, std::size_t len)
    {
        txnEngine.load(addr, out, len);
    }

    void
    writeBytes(Addr addr, const void *src, std::size_t len)
    {
        txnEngine.store(addr, src, len);
    }

    void
    writeBytesT(Addr addr, const void *src, std::size_t len,
                StoreFlags flags)
    {
        txnEngine.storeT(addr, src, len, flags);
    }

    void
    writeBytesSite(Addr addr, const void *src, std::size_t len,
                   SiteId site)
    {
        txnEngine.storeT(addr, src, len,
                         policy->flagsFor(siteRegistry.info(site)));
    }
    /** @} */

    /** @name Durable roots */
    /** @{ */
    Addr
    rootSlotAddr(std::size_t slot) const
    {
        panicIfNot(slot < numRootSlots, "root slot out of range");
        return config.map.heapBase() + slot * wordSize;
    }

    Addr readRoot(std::size_t slot) { return read<Addr>(rootSlotAddr(slot)); }

    /** Roots are pivotal: always logged and eagerly persistent. */
    void writeRoot(std::size_t slot, Addr value)
    {
        write<Addr>(rootSlotAddr(slot), value);
    }
    /** @} */

    /** @name Crash and recovery */
    /** @{ */
    /** Power failure now. */
    void crash() { txnEngine.crash(); dramDev.crash(); }

    /** Fault injection: crash after @p n more stores (0 disarms). */
    void armCrashAfterStores(std::uint64_t n)
    {
        txnEngine.armCrashAfterStores(n);
    }

    /** Hardware log replay; returns records applied. */
    std::size_t recoverHardware() { return txnEngine.recover(); }

    /** Untimed durable-image read (recovery code). */
    template <typename T>
    T
    peek(Addr addr) const
    {
        T value;
        pmDev.peek(addr, &value, sizeof(T));
        return value;
    }

    void
    peekBytes(Addr addr, void *out, std::size_t len) const
    {
        pmDev.peek(addr, out, len);
    }
    /** @} */

    /** @name Utilities */
    /** @{ */
    Cycles cycles() const { return txnEngine.now(); }

    /** Charge pure compute time (workload instruction work). */
    void compute(Cycles c) { txnEngine.advance(c); }

    /** Write back every dirty line and persist lazy data: reach a
     *  fully durable quiescent state between experiment phases. */
    void
    quiesce()
    {
        txnEngine.persistAllLazy();
        txnEngine.advance(hier.flushAll(txnEngine.now()));
    }
    /** @} */

  private:
    /** Bytes reserved for the durable root directory. */
    static constexpr Bytes rootDirBytes = 4096;

    SystemConfig config;
    StatsRegistry statsReg;
    PersistTracker persistTracker;
    PmDevice pmDev;
    DramDevice dramDev;
    CacheHierarchy hier;
    TxnEngine txnEngine;
    PersistentHeap pmHeap;
    StoreSiteRegistry siteRegistry;
    ManualAnnotationPolicy manualPolicy;
    const AnnotationPolicy *policy = nullptr;
};

} // namespace slpmt

#endif // SLPMT_CORE_PM_SYSTEM_HH
