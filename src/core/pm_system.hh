/**
 * @file
 * PmSystem: the top-level facade a program (or workload) uses.
 *
 * Owns the full simulated machine — PM and DRAM devices, the cache
 * hierarchy, the transaction engine for the configured scheme, the
 * persistent heap, and the store-site registry — and exposes the
 * typed load/store/storeT API, transaction control, crash injection,
 * and recovery entry points. PmSystem is the single-core machine; it
 * implements the PmContext program surface directly. The multicore
 * machine (src/multicore/) assembles the same components per core
 * around shared devices instead.
 */

#ifndef SLPMT_CORE_PM_SYSTEM_HH
#define SLPMT_CORE_PM_SYSTEM_HH

#include <cstring>
#include <memory>
#include <type_traits>

#include "cache/hierarchy.hh"
#include "stats/stats.hh"
#include "core/annotation.hh"
#include "core/heap.hh"
#include "core/pm_context.hh"
#include "mem/address_map.hh"
#include "mem/dram_device.hh"
#include "mem/persist_tracker.hh"
#include "mem/pm_device.hh"
#include "txn/engine.hh"

namespace slpmt
{

/**
 * Layout self-check policy for the SoA cache arrays: leave the
 * hierarchy's build-type default alone, or force the probe-key and
 * metadata-index audits off/on. The audits recompute the sibling
 * arrays from the architectural lines on every index walk, so a
 * forced-On machine must behave byte-identically to a forced-Off one
 * — the differential the LayoutDiff suite runs.
 */
enum class LayoutAudit : std::uint8_t
{
    Default,
    Off,
    On,
};

/** Everything configurable about the simulated machine. */
struct SystemConfig
{
    SchemeConfig scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
    LoggingStyle style = LoggingStyle::Undo;
    AddressMap map;
    PmConfig pm;
    DramConfig dram;
    HierarchyConfig hierarchy;

    /** Metadata line index toggle (see ExperimentConfig::useMetaIndex). */
    bool useMetaIndex = true;

    /** SoA layout self-check policy (never part of checkpoint
     *  fingerprints or reports — results must not depend on it). */
    LayoutAudit layoutAudit = LayoutAudit::Default;

    /**
     * Number of logical cores. PmSystem models exactly one core and
     * rejects anything else; McMachine (src/multicore/) accepts 1-16.
     * With numCores == 1 the topology is byte-identical to what every
     * existing figure and test was measured on.
     */
    std::size_t numCores = 1;
};

/** The simulated machine. */
class PmSystem : public PmContext
{
  public:
    explicit PmSystem(const SystemConfig &cfg = SystemConfig{})
        : config(cfg),
          pmDev(cfg.pm, statsReg, persistTracker),
          dramDev(cfg.dram, statsReg),
          hier(cfg.hierarchy, config.map, pmDev, dramDev, statsReg),
          txnEngine(cfg.scheme, cfg.style, config.map, hier, pmDev,
                    statsReg),
          pmHeap(config.map.heapBase() + rootDirBytes,
                 config.map.heapSize() - rootDirBytes, statsReg)
    {
        panicIfNot(config.numCores == 1,
                   "PmSystem is the single-core machine; build an "
                   "McMachine for numCores > 1");
        policy = &manualPolicy;
        hier.setMetaIndexEnabled(config.useMetaIndex);
        if (config.layoutAudit != LayoutAudit::Default)
            hier.setMetaIndexAudit(config.layoutAudit ==
                                   LayoutAudit::On);
    }

    /** @name Component access */
    /** @{ */
    TxnEngine &engine() { return txnEngine; }
    PmDevice &pm() { return pmDev; }
    DramDevice &dram() { return dramDev; }
    CacheHierarchy &hierarchy() { return hier; }
    StatsRegistry &stats() { return statsReg; }
    PersistTracker &tracker() { return persistTracker; }
    PersistentHeap &heap() override { return pmHeap; }
    StoreSiteRegistry &sites() override { return siteRegistry; }
    const AddressMap &map() const override { return config.map; }
    const SystemConfig &cfg() const { return config; }
    /** @} */

    /** @name Annotation policy (manual by default) */
    /** @{ */
    void setAnnotationPolicy(const AnnotationPolicy *p)
    {
        policy = p ? p : &manualPolicy;
    }
    const AnnotationPolicy &annotationPolicy() const { return *policy; }
    /** @} */

    /** @name Transaction control */
    /** @{ */
    void txBegin() override { txnEngine.txBegin(); }
    void txCommit() override { txnEngine.txCommit(); }
    void txAbort() override { txnEngine.txAbort(); }
    bool inTransaction() const override
    {
        return txnEngine.inTransaction();
    }
    std::uint64_t currentTxnSeq() const override
    {
        return txnEngine.currentTxnSeq();
    }
    /** @} */

    /** @name Byte data path */
    /** @{ */
    void
    readBytes(Addr addr, void *out, std::size_t len) override
    {
        txnEngine.load(addr, out, len);
    }

    void
    writeBytes(Addr addr, const void *src, std::size_t len) override
    {
        txnEngine.store(addr, src, len);
    }

    void
    writeBytesT(Addr addr, const void *src, std::size_t len,
                StoreFlags flags) override
    {
        txnEngine.storeT(addr, src, len, flags);
    }

    void
    writeBytesSite(Addr addr, const void *src, std::size_t len,
                   SiteId site) override
    {
        txnEngine.storeT(addr, src, len,
                         policy->flagsFor(siteRegistry.info(site)));
    }
    /** @} */

    /** @name Crash and recovery */
    /** @{ */
    /** Power failure now. */
    void crash() { txnEngine.crash(); dramDev.crash(); }

    /** Fault injection: crash after @p n more stores (0 disarms). */
    void armCrashAfterStores(std::uint64_t n)
    {
        txnEngine.armCrashAfterStores(n);
    }

    /** Hardware log replay; returns records applied. */
    std::size_t recoverHardware() { return txnEngine.recover(); }

    /** Untimed durable-image read (recovery code). */
    void
    peekBytes(Addr addr, void *out, std::size_t len) const override
    {
        pmDev.peek(addr, out, len);
    }
    /** @} */

    /** @name Utilities */
    /** @{ */
    Cycles cycles() const override { return txnEngine.now(); }

    /** Charge pure compute time (workload instruction work). */
    void compute(Cycles c) override { txnEngine.advance(c); }

    /** Write back every dirty line and persist lazy data: reach a
     *  fully durable quiescent state between experiment phases. */
    void
    quiesce() override
    {
        txnEngine.persistAllLazy();
        txnEngine.advance(hier.flushAll(txnEngine.now()));
    }
    /** @} */

  private:
    /** Bytes reserved for the durable root directory. */
    static constexpr Bytes rootDirBytes = 4096;

    SystemConfig config;
    StatsRegistry statsReg;
    PersistTracker persistTracker;
    PmDevice pmDev;
    DramDevice dramDev;
    CacheHierarchy hier;
    TxnEngine txnEngine;
    PersistentHeap pmHeap;
    StoreSiteRegistry siteRegistry;
    ManualAnnotationPolicy manualPolicy;
    const AnnotationPolicy *policy = nullptr;
};

} // namespace slpmt

#endif // SLPMT_CORE_PM_SYSTEM_HH
