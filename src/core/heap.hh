/**
 * @file
 * First-fit persistent-heap allocator.
 *
 * The allocator hands out ranges of the PM heap region. Its metadata
 * (free list, allocation table) is deliberately volatile: the paper's
 * recovery model reclaims regions leaked by a crash-interrupted
 * transaction with a garbage collector / persistent inspector
 * (Section IV-B, Pattern 1), so after a crash the structure-specific
 * recovery walks its roots, reports the set of reachable allocations,
 * and rebuild() reconstitutes the allocator state — leaking nothing.
 */

#ifndef SLPMT_CORE_HEAP_HH
#define SLPMT_CORE_HEAP_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "checkpoint/serde.hh"
#include "common/logging.hh"
#include "stats/stats.hh"
#include "common/types.hh"

namespace slpmt
{

/** One live allocation. */
struct AllocInfo
{
    Bytes size = 0;
    std::uint64_t txnSeq = 0;  //!< transaction that allocated it
};

/** Volatile-metadata first-fit allocator over the PM heap range. */
class PersistentHeap
{
  public:
    PersistentHeap(Addr base, Bytes size, StatsRegistry &stats)
        : heapBase(base),
          heapSize(size),
          statAllocs(stats.counter("heap.allocs")),
          statFrees(stats.counter("heap.frees")),
          statGcReclaims(stats.counter("heap.gcReclaimedAllocs"))
    {
        freeRanges[base] = size;
    }

    /** Allocate @p size bytes, 8-byte aligned. */
    Addr
    alloc(Bytes size, std::uint64_t txn_seq = 0)
    {
        const Bytes need = roundUp(size);
        for (auto it = freeRanges.begin(); it != freeRanges.end(); ++it) {
            if (it->second < need)
                continue;
            const Addr addr = it->first;
            const Bytes remaining = it->second - need;
            freeRanges.erase(it);
            if (remaining > 0)
                freeRanges[addr + need] = remaining;
            live[addr] = {need, txn_seq};
            statAllocs++;
            return addr;
        }
        fatal("persistent heap exhausted");
    }

    /** Release an allocation. */
    void
    free(Addr addr)
    {
        auto it = live.find(addr);
        panicIfNot(it != live.end(), "free of unknown allocation");
        releaseRange(addr, it->second.size);
        live.erase(it);
        statFrees++;
    }

    /** Is @p addr inside a live allocation? */
    bool
    isLive(Addr addr) const
    {
        auto it = live.upper_bound(addr);
        if (it == live.begin())
            return false;
        --it;
        return addr < it->first + it->second.size;
    }

    /** Base address of the live allocation containing @p addr. */
    Addr
    allocationBase(Addr addr) const
    {
        auto it = live.upper_bound(addr);
        panicIfNot(it != live.begin(), "address outside any allocation");
        --it;
        panicIfNot(addr < it->first + it->second.size,
                   "address outside any allocation");
        return it->first;
    }

    std::size_t liveCount() const { return live.size(); }

    Bytes
    liveBytes() const
    {
        Bytes total = 0;
        for (const auto &[addr, info] : live)
            total += info.size;
        return total;
    }

    /** Allocations created by transactions with seq > @p since. */
    std::vector<Addr>
    allocationsSince(std::uint64_t since) const
    {
        std::vector<Addr> out;
        for (const auto &[addr, info] : live) {
            if (info.txnSeq > since)
                out.push_back(addr);
        }
        return out;
    }

    /**
     * Post-crash garbage collection: keep exactly the allocations in
     * @p reachable (by base address), reclaim everything else.
     *
     * @return number of leaked allocations reclaimed
     */
    std::size_t
    rebuild(const std::vector<Addr> &reachable)
    {
        std::unordered_map<Addr, bool> keep;
        for (Addr a : reachable)
            keep[a] = true;
        std::size_t reclaimed = 0;
        for (auto it = live.begin(); it != live.end();) {
            if (keep.count(it->first)) {
                ++it;
            } else {
                releaseRange(it->first, it->second.size);
                it = live.erase(it);
                ++reclaimed;
            }
        }
        statGcReclaims += reclaimed;
        return reclaimed;
    }

    /** Crash loses nothing here — the *caller* decides what survives.
     *  The allocation table models durable structure walks, so it is
     *  retained; tests exercising true metadata loss use reset(). */
    void
    reset()
    {
        live.clear();
        freeRanges.clear();
        freeRanges[heapBase] = heapSize;
    }

    Addr base() const { return heapBase; }
    Bytes size() const { return heapSize; }

    /** @name Checkpointing (ordered maps: deterministic iteration) */
    /** @{ */
    void
    saveState(BlobWriter &w) const
    {
        w.u<std::uint64_t>(freeRanges.size());
        for (const auto &[addr, len] : freeRanges) {
            w.u<Addr>(addr);
            w.u<Bytes>(len);
        }
        w.u<std::uint64_t>(live.size());
        for (const auto &[addr, info] : live) {
            w.u<Addr>(addr);
            w.u<Bytes>(info.size);
            w.u<std::uint64_t>(info.txnSeq);
        }
    }

    void
    restoreState(BlobReader &r)
    {
        freeRanges.clear();
        live.clear();
        const std::size_t nfree = r.count(2 * sizeof(Addr));
        for (std::size_t i = 0; i < nfree; ++i) {
            const Addr addr = r.u<Addr>();
            freeRanges[addr] = r.u<Bytes>();
        }
        const std::size_t nlive = r.count(3 * sizeof(Addr));
        for (std::size_t i = 0; i < nlive; ++i) {
            const Addr addr = r.u<Addr>();
            AllocInfo info;
            info.size = r.u<Bytes>();
            info.txnSeq = r.u<std::uint64_t>();
            live[addr] = info;
        }
    }
    /** @} */

  private:
    static Bytes
    roundUp(Bytes size)
    {
        return (size + wordSize - 1) / wordSize * wordSize;
    }

    void
    releaseRange(Addr addr, Bytes size)
    {
        // Coalesce with neighbours.
        auto next = freeRanges.lower_bound(addr);
        if (next != freeRanges.begin()) {
            auto prev = std::prev(next);
            if (prev->first + prev->second == addr) {
                addr = prev->first;
                size += prev->second;
                freeRanges.erase(prev);
            }
        }
        next = freeRanges.lower_bound(addr + size);
        if (next != freeRanges.end() && next->first == addr + size) {
            size += next->second;
            freeRanges.erase(next);
        }
        freeRanges[addr] = size;
    }

    Addr heapBase;
    Bytes heapSize;
    std::map<Addr, Bytes> freeRanges;   //!< base -> length
    std::map<Addr, AllocInfo> live;     //!< base -> info

    StatsRegistry::Counter statAllocs;
    StatsRegistry::Counter statFrees;
    StatsRegistry::Counter statGcReclaims;
};

} // namespace slpmt

#endif // SLPMT_CORE_HEAP_HH
