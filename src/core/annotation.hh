/**
 * @file
 * Store-site annotations: the interface between programs and the
 * storeT instruction (Section IV).
 *
 * Every static store location in a workload that targets persistent
 * memory registers a StoreSiteInfo describing (a) the programmer's
 * manual annotation and (b) the static facts a compiler pass can see
 * about the site (does it target a freshly allocated region? is its
 * value rebuildable from persistent data? does the justification need
 * deep program semantics?). An AnnotationPolicy then maps a site to
 * the storeT operands actually issued — the manual policy replays the
 * hand annotations, the compiler policy re-derives them from the
 * static facts (src/compiler), and the null policy turns storeT off.
 */

#ifndef SLPMT_CORE_ANNOTATION_HH
#define SLPMT_CORE_ANNOTATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "txn/engine.hh"

namespace slpmt
{

/** Identifier of a registered static store site. */
using SiteId = std::uint32_t;

/** Where the stored value comes from (compiler-visible dataflow). */
enum class ValueOrigin : std::uint8_t
{
    Constant,   //!< literal / immediate
    Input,      //!< transaction input (function argument)
    PmLoad,     //!< loaded from persistent memory in this transaction
    Computed,   //!< derived by computation within the transaction
};

/** Static description of one store site. */
struct StoreSiteInfo
{
    std::string name;                //!< "workload.func.field"
    StoreFlags manual;               //!< the hand annotation
    ValueOrigin origin = ValueOrigin::Computed;
    bool targetsFreshAlloc = false;  //!< Pattern 1: region malloc'd in
                                     //!< or before this transaction
    bool targetsDeadRegion = false;  //!< Pattern 1: region freed by
                                     //!< this transaction
    bool rebuildable = false;        //!< Pattern 2: value and address
                                     //!< recoverable from durable data
    bool requiresDeepSemantics = false; //!< justification beyond
                                        //!< MemorySSA-style analysis
    std::size_t defUseDepth = 1;     //!< def-use chain length walked
                                     //!< by the analysis (time model)
};

/** Registry of the store sites of a program. */
class StoreSiteRegistry
{
  public:
    SiteId
    add(StoreSiteInfo info)
    {
        sites.push_back(std::move(info));
        return static_cast<SiteId>(sites.size() - 1);
    }

    const StoreSiteInfo &
    info(SiteId id) const
    {
        panicIfNot(id < sites.size(), "unknown store site");
        return sites[id];
    }

    std::size_t size() const { return sites.size(); }
    const std::vector<StoreSiteInfo> &all() const { return sites; }

    /** Forget every site (checkpoint restore re-adds them in order,
     *  reproducing the identical SiteId assignment). */
    void clear() { sites.clear(); }

  private:
    std::vector<StoreSiteInfo> sites;
};

/** Maps a store site to the storeT operands the program issues. */
class AnnotationPolicy
{
  public:
    virtual ~AnnotationPolicy() = default;
    virtual StoreFlags flagsFor(const StoreSiteInfo &site) const = 0;
    virtual std::string name() const = 0;
};

/** Plain stores everywhere (annotations off). */
class NullAnnotationPolicy : public AnnotationPolicy
{
  public:
    StoreFlags
    flagsFor(const StoreSiteInfo &) const override
    {
        return {};
    }

    std::string name() const override { return "none"; }
};

/** Replays the programmer's manual annotations (Section VI-A). */
class ManualAnnotationPolicy : public AnnotationPolicy
{
  public:
    StoreFlags
    flagsFor(const StoreSiteInfo &site) const override
    {
        return site.manual;
    }

    std::string name() const override { return "manual"; }
};

} // namespace slpmt

#endif // SLPMT_CORE_ANNOTATION_HH
