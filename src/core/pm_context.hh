/**
 * @file
 * PmContext: the machine interface programs (workloads) run against.
 *
 * Historically the workloads were written directly against PmSystem,
 * the single-core machine. The multicore subsystem (src/multicore/)
 * gives every simulated core its own transaction engine and private
 * cache levels while sharing the L3, the PM device and the persistent
 * heap — so "the machine a program sees" is no longer the same object
 * as "the whole machine". PmContext captures exactly the surface the
 * workloads and the annotation-driven store path use: transaction
 * control, the typed/byte data path, the shared heap and site
 * registry, compute-time charging, and the untimed durable peek used
 * by recovery code. PmSystem implements it directly; McCore
 * implements it by routing accesses through the coherence directory
 * before its private engine.
 */

#ifndef SLPMT_CORE_PM_CONTEXT_HH
#define SLPMT_CORE_PM_CONTEXT_HH

#include <cstring>
#include <type_traits>

#include "core/annotation.hh"
#include "core/heap.hh"
#include "mem/address_map.hh"
#include "txn/engine.hh"

namespace slpmt
{

/** Number of 8-byte durable root slots in the root directory. */
inline constexpr std::size_t numRootSlots = 64;

/** The machine surface one hardware context exposes to a program. */
class PmContext
{
  public:
    virtual ~PmContext() = default;

    /** @name Transaction control */
    /** @{ */
    virtual void txBegin() = 0;
    virtual void txCommit() = 0;
    virtual void txAbort() = 0;
    virtual bool inTransaction() const = 0;

    /** Global sequence number of the running transaction (tags heap
     *  allocations for leak detection during recovery). */
    virtual std::uint64_t currentTxnSeq() const = 0;
    /** @} */

    /** @name Byte data path */
    /** @{ */
    virtual void readBytes(Addr addr, void *out, std::size_t len) = 0;
    virtual void writeBytes(Addr addr, const void *src,
                            std::size_t len) = 0;
    virtual void writeBytesT(Addr addr, const void *src, std::size_t len,
                             StoreFlags flags) = 0;
    virtual void writeBytesSite(Addr addr, const void *src,
                                std::size_t len, SiteId site) = 0;

    /** Untimed durable-image read (recovery code). */
    virtual void peekBytes(Addr addr, void *out,
                           std::size_t len) const = 0;
    /** @} */

    /** @name Shared machine components */
    /** @{ */
    virtual PersistentHeap &heap() = 0;
    virtual StoreSiteRegistry &sites() = 0;
    virtual const AddressMap &map() const = 0;
    /** @} */

    /** @name Time */
    /** @{ */
    virtual Cycles cycles() const = 0;

    /** Charge pure compute time (workload instruction work). */
    virtual void compute(Cycles c) = 0;

    /** Write back every dirty line and persist lazy data: reach a
     *  fully durable quiescent state between experiment phases. */
    virtual void quiesce() = 0;
    /** @} */

    /** @name Typed data path (helpers over the byte path) */
    /** @{ */
    template <typename T>
    T
    read(Addr addr)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        readBytes(addr, &value, sizeof(T));
        return value;
    }

    /** Ordinary logged, eagerly persistent store. */
    template <typename T>
    void
    write(Addr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writeBytes(addr, &value, sizeof(T));
    }

    /** storeT with explicit operands. */
    template <typename T>
    void
    writeT(Addr addr, const T &value, StoreFlags flags)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writeBytesT(addr, &value, sizeof(T), flags);
    }

    /** Store through a registered site: the active annotation policy
     *  decides the storeT operands. */
    template <typename T>
    void
    writeSite(Addr addr, const T &value, SiteId site)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writeBytesSite(addr, &value, sizeof(T), site);
    }

    template <typename T>
    T
    peek(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        peekBytes(addr, &value, sizeof(T));
        return value;
    }
    /** @} */

    /** @name Durable roots */
    /** @{ */
    Addr
    rootSlotAddr(std::size_t slot) const
    {
        panicIfNot(slot < numRootSlots, "root slot out of range");
        return map().heapBase() + slot * wordSize;
    }

    Addr readRoot(std::size_t slot) { return read<Addr>(rootSlotAddr(slot)); }

    /** Roots are pivotal: always logged and eagerly persistent. */
    void writeRoot(std::size_t slot, Addr value)
    {
        write<Addr>(rootSlotAddr(slot), value);
    }
    /** @} */
};

} // namespace slpmt

#endif // SLPMT_CORE_PM_CONTEXT_HH
