/**
 * @file
 * RAII durable-transaction handle.
 *
 * A DurableTx begins a transaction on construction; the caller must
 * commit() explicitly. If the handle is destroyed without a commit
 * (e.g. an exception unwound the scope) the transaction aborts,
 * replaying the undo log — the software analogue of tx_begin/tx_end
 * in Figure 1.
 */

#ifndef SLPMT_CORE_TX_HH
#define SLPMT_CORE_TX_HH

#include "core/pm_context.hh"

namespace slpmt
{

/** Scoped durable transaction. */
class DurableTx
{
  public:
    explicit DurableTx(PmContext &sys) : sys(sys) { sys.txBegin(); }

    DurableTx(const DurableTx &) = delete;
    DurableTx &operator=(const DurableTx &) = delete;

    ~DurableTx()
    {
        if (!done && sys.inTransaction())
            sys.txAbort();
    }

    /** Commit; the handle becomes inert. */
    void
    commit()
    {
        panicIfNot(!done, "transaction already finished");
        sys.txCommit();
        done = true;
    }

    /** Abort explicitly; the handle becomes inert. */
    void
    abort()
    {
        panicIfNot(!done, "transaction already finished");
        sys.txAbort();
        done = true;
    }

    bool finished() const { return done; }

  private:
    PmContext &sys;
    bool done = false;
};

} // namespace slpmt

#endif // SLPMT_CORE_TX_HH
