/**
 * @file
 * Cache-line state including the SLPMT metadata of Figure 5.
 *
 * Every L1 and L2 line carries, in addition to MESI state:
 *  - a persist bit: the line must be persisted at transaction commit;
 *  - a log bitmap: which parts of the line already have an undo log
 *    record (8 bits at word granularity in L1, 2 bits at 32-byte
 *    granularity in L2, none in L3);
 *  - a 2-bit transaction ID naming the core-local transaction that
 *    last updated the line, used by lazy persistency.
 *
 * The struct holds only the per-line architectural state. Everything
 * the replacement and lookup loops scan — the probe keys (tag-or-
 * sentinel), the LRU timestamps, and the metadata line index links —
 * lives in structure-of-arrays form inside Cache, indexed by frame id,
 * so the hot loops stride over small contiguous arrays instead of
 * pulling a whole CacheLine per way. Clients keep holding CacheLine
 * pointers and detached CacheLine copies; those stay valid because the
 * frames themselves never move.
 */

#ifndef SLPMT_CACHE_CACHE_LINE_HH
#define SLPMT_CACHE_CACHE_LINE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace slpmt
{

/** MESI coherence states (single-writer, multiple-reader). */
enum class MesiState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Sentinel meaning "no transaction owns this line". */
inline constexpr std::uint8_t noTxnId = 0xFF;

/** One cache line with SLPMT metadata. */
struct CacheLine
{
    Addr tag = 0;                 //!< line-aligned base address
    MesiState state = MesiState::Invalid;
    bool dirty = false;           //!< newer than the next level down

    bool persistBit = false;      //!< persist at commit (Table I)
    std::uint8_t logBits = 0;     //!< per-word (L1) / per-32B (L2) map
    std::uint8_t txnId = noTxnId; //!< owning core-local transaction

    std::uint64_t txnSeq = 0;     //!< global sequence of owning txn

    /**
     * Deliberately NOT zero-initialized: an invalid frame's data is
     * never observed (fills overwrite the whole line, checkpointing
     * skips invalid frames), and cache arrays are constructed per
     * simulated machine — crash sweeps build thousands — so the
     * megabytes of memset were a measurable constructor cost. The
     * user-provided constructor keeps value-initialization from
     * zeroing the array while the other members still get their
     * default member initializers.
     */
    std::array<std::uint8_t, cacheLineSize> data;

    CacheLine() {}  // NOLINT: see data

    bool valid() const { return state != MesiState::Invalid; }

    /**
     * The line carries transactional metadata and must be visited by
     * boundary sweeps. Matches the private-eviction hook predicate in
     * CacheHierarchy::evictFromL2 — the two must stay in sync with the
     * index maintenance rule.
     */
    bool
    hasTxnMeta() const
    {
        return persistBit || logBits != 0 || txnId != noTxnId;
    }

    /** Clear all transactional metadata (line content untouched). */
    void
    clearTxnMeta()
    {
        persistBit = false;
        logBits = 0;
        txnId = noTxnId;
        txnSeq = 0;
    }

    /**
     * Reset to an invalid line. When the line is a frame of a Cache
     * array (not a detached copy), the owning cache's probe key must
     * be dropped too — prefer Cache::invalidateFrame(), which does
     * both.
     */
    void
    invalidate()
    {
        state = MesiState::Invalid;
        dirty = false;
        clearTxnMeta();
    }
};

/**
 * Aggregate an 8-bit L1 word-granularity log map into the 2-bit L2
 * 32-byte-granularity map: each L2 bit is the conjunction of the four
 * L1 bits it covers (Section III-B1).
 */
constexpr std::uint8_t
aggregateLogBits(std::uint8_t l1_bits)
{
    const std::uint8_t lo = l1_bits & 0x0F;
    const std::uint8_t hi = (l1_bits >> 4) & 0x0F;
    return static_cast<std::uint8_t>((lo == 0x0F ? 1 : 0) |
                                     (hi == 0x0F ? 2 : 0));
}

/**
 * Replicate a 2-bit L2 log map back into the 8-bit L1 map when a line
 * is fetched from L2 into L1 (the reverse of aggregateLogBits()).
 */
constexpr std::uint8_t
replicateLogBits(std::uint8_t l2_bits)
{
    return static_cast<std::uint8_t>(((l2_bits & 1) ? 0x0F : 0) |
                                     ((l2_bits & 2) ? 0xF0 : 0));
}

} // namespace slpmt

#endif // SLPMT_CACHE_CACHE_LINE_HH
