/**
 * @file
 * Three-level inclusive cache hierarchy with SLPMT metadata movement.
 *
 * Geometry and latencies follow Table III: L1 32 KB/8-way/4 cycles,
 * L2 256 KB/4-way/12 cycles, L3 2 MB/16-way/40 cycles; all lines are
 * 64 bytes. L1 and L2 lines carry SLPMT metadata (persist bit, log
 * bitmap, transaction ID); L3 carries none.
 *
 * Metadata ownership: the metadata for a line lives at the highest
 * private level currently holding it. Fetching a line from L2 into L1
 * moves the metadata up (replicating the 2-bit L2 log map into 8 L1
 * bits); evicting from L1 merges it back down (aggregating the 8 bits
 * into 2 by conjunction). Lines entering L2 from L3 start with clear
 * metadata, per Section III-B1.
 *
 * The transaction engine observes lines leaving the private caches
 * through EvictionClient so it can flush their log-buffer records and
 * persist them when required (Section III-A).
 */

#ifndef SLPMT_CACHE_HIERARCHY_HH
#define SLPMT_CACHE_HIERARCHY_HH

#include <memory>

#include "cache/cache.hh"
#include "stats/stats.hh"
#include "mem/address_map.hh"
#include "mem/dram_device.hh"
#include "mem/pm_device.hh"

namespace slpmt
{

/** Hierarchy geometry; defaults reproduce Table III. */
struct HierarchyConfig
{
    CacheConfig l1{"L1", 32 * 1024, 8, 4};
    CacheConfig l2{"L2", 256 * 1024, 4, 12};
    CacheConfig l3{"L3", 2 * 1024 * 1024, 16, 40};
};

/**
 * Observer of lines leaving the private (L1+L2) caches while carrying
 * transactional metadata. Implemented by the transaction engine.
 */
class EvictionClient
{
  public:
    virtual ~EvictionClient() = default;

    /**
     * A line with transactional metadata is about to overflow from L2
     * to L3. The client must flush any buffered log records for it and
     * persist the line if its metadata demands so; afterwards the
     * metadata is discarded (L3 holds none).
     *
     * @return extra cycles the eviction spent.
     */
    virtual Cycles evictingPrivateLine(CacheLine &line, Cycles now) = 0;

    /**
     * An L1 line is merging down into L2 and a 4-word log-bit group is
     * partially set. The client may speculatively log the clean words
     * to round the group up (Section III-B1 optimisation).
     *
     * @param missing_words word-index bitmap of unlogged words in
     *        partially-logged groups
     * @return pair {cycles spent, words actually logged bitmap}
     */
    virtual std::pair<Cycles, std::uint8_t>
    roundUpLogBits(CacheLine &line, std::uint8_t missing_words,
                   Cycles now) = 0;
};

class CacheHierarchy;

/**
 * Multicore hook: when a shared-L3 victim is evicted, private copies
 * may live in *other* cores' L1/L2. The multicore machine implements
 * this to fold those copies into the departing victim (running each
 * owner's EvictionClient for metadata-bearing lines) before the
 * writeback. Single-core hierarchies leave it unset.
 */
class RemoteLineFolder
{
  public:
    virtual ~RemoteLineFolder() = default;

    /**
     * Fold every other core's private copy of @p victim into it.
     * @param evictor the hierarchy performing the L3 eviction
     * @return extra cycles charged to the evicting core
     */
    virtual Cycles foldRemotePrivate(CacheHierarchy &evictor,
                                     CacheLine &victim, Cycles now) = 0;
};

/** Result of one hierarchy access. */
struct AccessResult
{
    CacheLine *line;   //!< the L1 line now holding the data
    Cycles latency;    //!< total access latency including evictions
};

/** The inclusive three-level hierarchy. */
class CacheHierarchy
{
  public:
    CacheHierarchy(const HierarchyConfig &cfg, const AddressMap &map,
                   PmDevice &pm, DramDevice &dram, StatsRegistry &stats);

    /** Multicore topology: private L1/L2 over an externally owned,
     *  shared L3 (the caller keeps @p shared_l3 alive). */
    CacheHierarchy(const HierarchyConfig &cfg, const AddressMap &map,
                   PmDevice &pm, DramDevice &dram, StatsRegistry &stats,
                   Cache &shared_l3);

    void setEvictionClient(EvictionClient *client) { evictClient = client; }

    /** Multicore hook for cross-core folds on shared-L3 evictions. */
    void setRemoteFolder(RemoteLineFolder *f) { remoteFolder = f; }

    /** Enable the Section III-B1 speculative log-rounding option. */
    void setSpeculativeRounding(bool on) { speculativeRounding = on; }

    /** Access one cache line, filling it into L1. */
    AccessResult access(Addr addr, bool is_write, Cycles now);

    /** Byte-granular read that may span lines. */
    Cycles readBytes(Addr addr, void *out, std::size_t len, Cycles now);

    /** Byte-granular write that may span lines (no metadata updates —
     *  the transaction engine sets metadata itself). */
    Cycles writeBytes(Addr addr, const void *src, std::size_t len,
                      Cycles now);

    /** Find a line in the private caches (L1 preferred), or nullptr. */
    CacheLine *findPrivate(Addr addr);

    /**
     * Apply @p fn to every metadata-bearing private line: indexed L1
     * lines first, then indexed L2 lines with no L1 copy, each level
     * in frame order — exactly the order (and exactly the lines on
     * which @p fn acts) that the historical full scan produced, so
     * the cycle-charging sweeps stay byte-identical. O(working set).
     *
     * The walk snapshots the index before applying @p fn, so @p fn
     * may clear metadata (unlinking lines) freely; it must not create
     * new metadata lines mid-sweep.
     *
     * With the index disabled (profiling comparisons) this falls back
     * to the historical full scan over every valid private frame;
     * callers filter on metadata anyway, so results are identical.
     * With auditing enabled, every walk first cross-checks the index
     * against a brute-force scan and panics on divergence.
     */
    template <typename Fn>
    void
    forEachPrivate(Fn &&fn)
    {
        if (!metaIndexEnabled) {
            l1Cache.forEachValid(fn);
            l2Cache.forEachValid([&](CacheLine &line) {
                if (!l1Cache.find(line.tag))
                    fn(line);
            });
            return;
        }
        if (metaIndexAudit)
            auditMetaIndex();
        std::vector<CacheLine *> snapshot;
        snapshot.reserve(l1Cache.metaLineCount() +
                         l2Cache.metaLineCount());
        l1Cache.collectMetaLines(snapshot);
        const std::size_t l1_end = snapshot.size();
        l2Cache.collectMetaLines(snapshot);
        for (std::size_t i = 0; i < snapshot.size(); ++i) {
            // The metadata-ownership invariant says an indexed L2 line
            // has no L1 copy; keep the historical guard regardless so
            // a hand-built state (tests) cannot double-visit a line.
            if (i >= l1_end && l1Cache.find(snapshot[i]->tag))
                continue;
            fn(*snapshot[i]);
        }
    }

    /**
     * Re-evaluate a private line's membership in the metadata line
     * index after its metadata changed. The transaction engine calls
     * this after mutating metadata on lines it obtained from access()
     * or findPrivate(); internal metadata movement (promotion, merge,
     * eviction, invalidation) is maintained by the hierarchy itself.
     * Lines not owned by L1 or L2 (L3 frames, detached copies) are
     * ignored.
     */
    void
    noteMetaUpdate(CacheLine &line)
    {
        if (l1Cache.owns(&line))
            l1Cache.syncMetaIndex(line);
        else if (l2Cache.owns(&line))
            l2Cache.syncMetaIndex(line);
    }

    /**
     * Run the index-vs-full-scan cross-check on both private levels.
     * @return false with a diagnostic when the index diverges.
     */
    bool
    verifyMetaIndex(std::string *why) const
    {
        return l1Cache.checkMetaIndex(why) && l2Cache.checkMetaIndex(why);
    }

    /** Disable the index (forEachPrivate falls back to full scans) —
     *  for the self-profiling harness's before/after comparison. */
    void setMetaIndexEnabled(bool on) { metaIndexEnabled = on; }

    /** Cross-check the index against a full scan on every walk. */
    void setMetaIndexAudit(bool on) { metaIndexAudit = on; }

    /**
     * Persist a private line to PM and mark every cached copy clean
     * (the durable image now matches the cache contents).
     *
     * @param sync false when issued by background hardware (forced
     *        lazy flushes): occupies the WPQ without stalling the core
     */
    Cycles persistPrivateLine(CacheLine &line, PersistKind kind,
                              Cycles now, bool sync = true);

    /** Invalidate every cached copy of a line (abort path). */
    void invalidateLineEverywhere(Addr addr);

    /** Power failure: all cache contents vanish. */
    void crash();

    /**
     * Write back and drop every dirty line (used between experiment
     * phases to reach a quiescent durable state).
     */
    Cycles flushAll(Cycles now);

    /** Flush only the private levels (L1+L2) into the L3. The
     *  multicore quiesce flushes every core's privates first, then
     *  the shared L3 once. */
    Cycles flushPrivate(Cycles now);

    /** Flush (write back and drop) the L3 contents. */
    Cycles flushShared(Cycles now);

    /**
     * Coherence transfer: give up this core's private copy of a line,
     * merging data and transactional metadata down into the shared L3
     * exactly as a capacity eviction would (the EvictionClient flushes
     * log records / persists when the metadata demands it — the
     * paper's L1<->L2 aggregation rules apply unchanged on the way
     * down). No-op when the line is not privately cached.
     */
    Cycles surrenderPrivate(Addr addr, Cycles now);

    /**
     * Fold this hierarchy's private copy of @p victim (a detached
     * shared-L3 victim) into it, running the EvictionClient for
     * metadata-bearing lines. Public so the multicore machine can fold
     * *other* cores' copies during a shared-L3 eviction.
     */
    Cycles foldPrivateInto(CacheLine &victim, Cycles now);

    Cache &l1() { return l1Cache; }
    Cache &l2() { return l2Cache; }
    Cache &l3() { return *l3Ptr; }

  private:
    /** Panic if the metadata line index diverges from a full scan. */
    void auditMetaIndex() const;

    /** Ensure the line is resident in L2+L3; returns fill latency. */
    Cycles ensureInL2(Addr addr, Cycles now);

    /** Move a line from L2 into L1 (metadata moves up). */
    CacheLine &promoteToL1(CacheLine &l2_line, Cycles now,
                           Cycles &latency);

    Cycles evictFromL1(CacheLine &victim, Cycles now);
    Cycles evictFromL2(CacheLine &victim, Cycles now);
    Cycles evictFromL3(CacheLine &victim, Cycles now);

    /** Write a line's data into the backing device (dirty writeback). */
    Cycles writebackToDevice(const CacheLine &line, Cycles now);

    /** Common body of the two public constructors. */
    CacheHierarchy(const HierarchyConfig &cfg, const AddressMap &map,
                   PmDevice &pm, DramDevice &dram, StatsRegistry &stats,
                   Cache *shared_l3);

    const AddressMap &addrMap;
    PmDevice &pm;
    DramDevice &dram;
    Cache l1Cache;
    Cache l2Cache;

    /** The L3: owned in the single-core topology, external (shared
     *  across cores) in the multicore one. */
    std::unique_ptr<Cache> ownedL3;
    Cache *l3Ptr;

    EvictionClient *evictClient = nullptr;
    RemoteLineFolder *remoteFolder = nullptr;
    bool speculativeRounding = false;

    /** Metadata line index controls (see forEachPrivate()). Auditing
     *  defaults on in assertion builds, off in optimised ones. */
    bool metaIndexEnabled = true;
#ifdef NDEBUG
    bool metaIndexAudit = false;
#else
    bool metaIndexAudit = true;
#endif

    StatsRegistry::Counter statL1Hits;
    StatsRegistry::Counter statL1Misses;
    StatsRegistry::Counter statL2Hits;
    StatsRegistry::Counter statL2Misses;
    StatsRegistry::Counter statL3Hits;
    StatsRegistry::Counter statL3Misses;
    StatsRegistry::Counter statWritebacks;
    StatsRegistry::Counter statPrivateEvictions;

    /** L1→L2 evictions where aggregating the word-granularity log map
     *  by conjunction zeroed a partially-logged group (III-B1). */
    StatsRegistry::Counter statLogBitAggrLossy;
};

} // namespace slpmt

#endif // SLPMT_CACHE_HIERARCHY_HH
