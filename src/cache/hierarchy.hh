/**
 * @file
 * Three-level inclusive cache hierarchy with SLPMT metadata movement.
 *
 * Geometry and latencies follow Table III: L1 32 KB/8-way/4 cycles,
 * L2 256 KB/4-way/12 cycles, L3 2 MB/16-way/40 cycles; all lines are
 * 64 bytes. L1 and L2 lines carry SLPMT metadata (persist bit, log
 * bitmap, transaction ID); L3 carries none.
 *
 * Metadata ownership: the metadata for a line lives at the highest
 * private level currently holding it. Fetching a line from L2 into L1
 * moves the metadata up (replicating the 2-bit L2 log map into 8 L1
 * bits); evicting from L1 merges it back down (aggregating the 8 bits
 * into 2 by conjunction). Lines entering L2 from L3 start with clear
 * metadata, per Section III-B1.
 *
 * The transaction engine observes lines leaving the private caches
 * through the devirtualized eviction-client hook (setEvictionClient)
 * so it can flush their log-buffer records and persist them when
 * required (Section III-A).
 */

#ifndef SLPMT_CACHE_HIERARCHY_HH
#define SLPMT_CACHE_HIERARCHY_HH

#include <memory>
#include <utility>

#include "cache/cache.hh"
#include "stats/stats.hh"
#include "mem/address_map.hh"
#include "mem/dram_device.hh"
#include "mem/pm_device.hh"

namespace slpmt
{

/** Hierarchy geometry; defaults reproduce Table III. */
struct HierarchyConfig
{
    CacheConfig l1{"L1", 32 * 1024, 8, 4};
    CacheConfig l2{"L2", 256 * 1024, 4, 12};
    CacheConfig l3{"L3", 2 * 1024 * 1024, 16, 40};
};

class CacheHierarchy;

/** Result of one hierarchy access. */
struct AccessResult
{
    CacheLine *line;   //!< the L1 line now holding the data
    Cycles latency;    //!< total access latency including evictions
};

/** The inclusive three-level hierarchy. */
class CacheHierarchy
{
  public:
    CacheHierarchy(const HierarchyConfig &cfg, const AddressMap &map,
                   PmDevice &pm, DramDevice &dram, StatsRegistry &stats);

    /** Multicore topology: private L1/L2 over an externally owned,
     *  shared L3 (the caller keeps @p shared_l3 alive). */
    CacheHierarchy(const HierarchyConfig &cfg, const AddressMap &map,
                   PmDevice &pm, DramDevice &dram, StatsRegistry &stats,
                   Cache &shared_l3);

    /**
     * Wire the observer of lines leaving the private (L1+L2) caches
     * while carrying transactional metadata — the transaction engine.
     * The client provides two non-virtual members:
     *
     *  - `Cycles evictingPrivateLine(CacheLine &, Cycles)`: a line
     *    with transactional metadata is about to overflow from L2 to
     *    L3; flush its buffered log records and persist it if the
     *    metadata demands so (the metadata is then discarded — L3
     *    holds none). Returns extra cycles spent.
     *  - `std::pair<Cycles, std::uint8_t> roundUpLogBits(CacheLine &,
     *    std::uint8_t missing_words, Cycles)`: an L1 line is merging
     *    down into L2 with a 4-word log-bit group partially set; the
     *    client may speculatively log the clean words to round the
     *    group up (Section III-B1). Returns {cycles, words logged}.
     *
     * Dispatch is through function pointers specialised on the
     * concrete client type here — devirtualized: the per-event calls
     * carry no vtable load and no multiple-inheritance thunks.
     */
    template <typename Client>
    void
    setEvictionClient(Client *client)
    {
        evictClientObj = client;
        evictLineFn = [](void *obj, CacheLine &line, Cycles now) {
            return static_cast<Client *>(obj)->evictingPrivateLine(line,
                                                                   now);
        };
        roundUpFn = [](void *obj, CacheLine &line, std::uint8_t missing,
                       Cycles now) {
            return static_cast<Client *>(obj)->roundUpLogBits(
                line, missing, now);
        };
    }

    /**
     * Multicore hook for cross-core folds on shared-L3 evictions:
     * when a shared-L3 victim departs, private copies may live in
     * *other* cores' L1/L2, and the multicore machine folds them into
     * the victim (running each owner's eviction client for metadata-
     * bearing lines) before the writeback. The folder provides a
     * non-virtual `Cycles foldRemotePrivate(CacheHierarchy &evictor,
     * CacheLine &victim, Cycles now)` member; dispatch is the same
     * devirtualized thunk scheme as setEvictionClient(). Single-core
     * hierarchies leave it unset.
     */
    template <typename Folder>
    void
    setRemoteFolder(Folder *f)
    {
        remoteFolderObj = f;
        foldRemoteFn = [](void *obj, CacheHierarchy &evictor,
                          CacheLine &victim, Cycles now) {
            return static_cast<Folder *>(obj)->foldRemotePrivate(
                evictor, victim, now);
        };
    }

    /** Enable the Section III-B1 speculative log-rounding option. */
    void setSpeculativeRounding(bool on) { speculativeRounding = on; }

    /**
     * Access one cache line, filling it into L1.
     *
     * The L1-hit path is inline — it is the single hottest operation
     * in the simulator (every load/store chunk lands here) and on a
     * hit touches only the probe-key and LRU arrays. The mapped-range
     * check runs on the miss path only: an unmapped address can never
     * be resident (its first fill would have panicked), so a hit
     * proves the address mapped.
     */
    AccessResult
    access(Addr addr, bool is_write, Cycles now)
    {
        const std::size_t f = l1Cache.findFrameHinted(addr, l1Mru);
        if (f != Cache::npos) {
            l1Mru = f;
            statL1Hits++;
            CacheLine &line = l1Cache.lineAt(f);
            l1Cache.touchFrame(f);
            if (is_write) {
                line.dirty = true;
                line.state = MesiState::Modified;
            }
            return {&line, l1Cache.hitLatency()};
        }
        return accessMiss(addr, is_write, now);
    }

    /** Byte-granular read that may span lines. */
    Cycles readBytes(Addr addr, void *out, std::size_t len, Cycles now);

    /** Byte-granular write that may span lines (no metadata updates —
     *  the transaction engine sets metadata itself). */
    Cycles writeBytes(Addr addr, const void *src, std::size_t len,
                      Cycles now);

    /** Find a line in the private caches (L1 preferred), or nullptr. */
    CacheLine *findPrivate(Addr addr);

    /**
     * Apply @p fn to every metadata-bearing private line: indexed L1
     * lines first, then indexed L2 lines with no L1 copy, each level
     * in frame order — exactly the order (and exactly the lines on
     * which @p fn acts) that the historical full scan produced, so
     * the cycle-charging sweeps stay byte-identical. O(working set).
     *
     * The walk snapshots the index before applying @p fn, so @p fn
     * may clear metadata (unlinking lines) freely; it must not create
     * new metadata lines mid-sweep.
     *
     * With the index disabled (profiling comparisons) this falls back
     * to the historical full scan over every valid private frame;
     * callers filter on metadata anyway, so results are identical.
     * With auditing enabled, every walk first cross-checks the index
     * against a brute-force scan and panics on divergence.
     */
    template <typename Fn>
    void
    forEachPrivate(Fn &&fn)
    {
        statMetaWalks++;
        if (!metaIndexEnabled) {
            l1Cache.forEachValid(fn);
            l2Cache.forEachValid([&](CacheLine &line) {
                if (!l1Cache.find(line.tag))
                    fn(line);
            });
            return;
        }
        if (metaIndexAudit)
            auditMetaIndex();
        // Move the scratch buffer out for the walk and put it back
        // after: the capacity is reused across walks (no per-walk
        // allocation), and a re-entrant walk — fn reaching another
        // forEachPrivate — simply finds an empty scratch and
        // allocates its own.
        std::vector<CacheLine *> snapshot = std::move(walkScratch);
        snapshot.clear();
        snapshot.reserve(l1Cache.metaLineCount() +
                         l2Cache.metaLineCount());
        l1Cache.collectMetaLines(snapshot);
        const std::size_t l1_end = snapshot.size();
        l2Cache.collectMetaLines(snapshot);
        for (std::size_t i = 0; i < snapshot.size(); ++i) {
            // The metadata-ownership invariant says an indexed L2 line
            // has no L1 copy; keep the historical guard regardless so
            // a hand-built state (tests) cannot double-visit a line.
            if (i >= l1_end && l1Cache.find(snapshot[i]->tag))
                continue;
            fn(*snapshot[i]);
        }
        walkScratch = std::move(snapshot);
    }

    /**
     * Re-evaluate a private line's membership in the metadata line
     * index after its metadata changed. The transaction engine calls
     * this after mutating metadata on lines it obtained from access()
     * or findPrivate(); internal metadata movement (promotion, merge,
     * eviction, invalidation) is maintained by the hierarchy itself.
     * Lines not owned by L1 or L2 (L3 frames, detached copies) are
     * ignored.
     */
    void
    noteMetaUpdate(CacheLine &line)
    {
        if (l1Cache.owns(&line))
            l1Cache.syncMetaIndex(line);
        else if (l2Cache.owns(&line))
            l2Cache.syncMetaIndex(line);
    }

    /**
     * Run the index-vs-full-scan cross-check on both private levels.
     * @return false with a diagnostic when the index diverges.
     */
    bool
    verifyMetaIndex(std::string *why) const
    {
        return l1Cache.checkMetaIndex(why) && l2Cache.checkMetaIndex(why);
    }

    /** Disable the index (forEachPrivate falls back to full scans) —
     *  for the self-profiling harness's before/after comparison. */
    void setMetaIndexEnabled(bool on) { metaIndexEnabled = on; }

    /** Cross-check the index against a full scan on every walk. */
    void setMetaIndexAudit(bool on) { metaIndexAudit = on; }

    /**
     * Persist a private line to PM and mark every cached copy clean
     * (the durable image now matches the cache contents).
     *
     * @param sync false when issued by background hardware (forced
     *        lazy flushes): occupies the WPQ without stalling the core
     */
    Cycles persistPrivateLine(CacheLine &line, PersistKind kind,
                              Cycles now, bool sync = true);

    /** Invalidate every cached copy of a line (abort path). */
    void invalidateLineEverywhere(Addr addr);

    /** Power failure: all cache contents vanish. */
    void crash();

    /**
     * Write back and drop every dirty line (used between experiment
     * phases to reach a quiescent durable state).
     */
    Cycles flushAll(Cycles now);

    /** Flush only the private levels (L1+L2) into the L3. The
     *  multicore quiesce flushes every core's privates first, then
     *  the shared L3 once. */
    Cycles flushPrivate(Cycles now);

    /** Flush (write back and drop) the L3 contents. */
    Cycles flushShared(Cycles now);

    /**
     * Coherence transfer: give up this core's private copy of a line,
     * merging data and transactional metadata down into the shared L3
     * exactly as a capacity eviction would (the eviction client flushes
     * log records / persists when the metadata demands it — the
     * paper's L1<->L2 aggregation rules apply unchanged on the way
     * down). No-op when the line is not privately cached.
     */
    Cycles surrenderPrivate(Addr addr, Cycles now);

    /**
     * Fold this hierarchy's private copy of @p victim (a detached
     * shared-L3 victim) into it, running the eviction client for
     * metadata-bearing lines. Public so the multicore machine can fold
     * *other* cores' copies during a shared-L3 eviction.
     */
    Cycles foldPrivateInto(CacheLine &victim, Cycles now);

    Cache &l1() { return l1Cache; }
    Cache &l2() { return l2Cache; }
    Cache &l3() { return *l3Ptr; }

  private:
    /** Panic if the metadata line index diverges from a full scan. */
    void auditMetaIndex() const;

    /** The L1-miss tail of access(): fills and metadata movement. */
    AccessResult accessMiss(Addr addr, bool is_write, Cycles now);

    /** Ensure the line is resident in L2+L3; returns fill latency. */
    Cycles ensureInL2(Addr addr, Cycles now);

    /** Move a line from L2 into L1 (metadata moves up). */
    CacheLine &promoteToL1(CacheLine &l2_line, Cycles now,
                           Cycles &latency);

    Cycles evictFromL1(CacheLine &victim, Cycles now);
    Cycles evictFromL2(CacheLine &victim, Cycles now);
    Cycles evictFromL3(CacheLine &victim, Cycles now);

    /** Write a line's data into the backing device (dirty writeback). */
    Cycles writebackToDevice(const CacheLine &line, Cycles now);

    /** Common body of the two public constructors. */
    CacheHierarchy(const HierarchyConfig &cfg, const AddressMap &map,
                   PmDevice &pm, DramDevice &dram, StatsRegistry &stats,
                   Cache *shared_l3);

    const AddressMap &addrMap;
    PmDevice &pm;
    DramDevice &dram;
    Cache l1Cache;
    Cache l2Cache;

    /** The L3: owned in the single-core topology, external (shared
     *  across cores) in the multicore one. */
    std::unique_ptr<Cache> ownedL3;
    Cache *l3Ptr;

    /** Devirtualized client/folder dispatch (see the setters). */
    void *evictClientObj = nullptr;
    Cycles (*evictLineFn)(void *, CacheLine &, Cycles) = nullptr;
    std::pair<Cycles, std::uint8_t> (*roundUpFn)(void *, CacheLine &,
                                                 std::uint8_t,
                                                 Cycles) = nullptr;
    void *remoteFolderObj = nullptr;
    Cycles (*foldRemoteFn)(void *, CacheHierarchy &, CacheLine &,
                           Cycles) = nullptr;
    bool speculativeRounding = false;

    /** access() L1 MRU hint — pure lookup acceleration, validated
     *  against the probe keys on every use, never serialized. */
    std::size_t l1Mru = 0;

    /** forEachPrivate() snapshot buffer, reused across walks. */
    std::vector<CacheLine *> walkScratch;

    /** Metadata line index controls (see forEachPrivate()). Auditing
     *  defaults on in assertion builds, off in optimised ones. */
    bool metaIndexEnabled = true;
#ifdef NDEBUG
    bool metaIndexAudit = false;
#else
    bool metaIndexAudit = true;
#endif

    StatsRegistry::Counter statL1Hits;
    StatsRegistry::Counter statL1Misses;
    StatsRegistry::Counter statL2Hits;
    StatsRegistry::Counter statL2Misses;
    StatsRegistry::Counter statL3Hits;
    StatsRegistry::Counter statL3Misses;
    StatsRegistry::Counter statWritebacks;
    StatsRegistry::Counter statPrivateEvictions;

    /** L1→L2 evictions where aggregating the word-granularity log map
     *  by conjunction zeroed a partially-logged group (III-B1). */
    StatsRegistry::Counter statLogBitAggrLossy;

    /** forEachPrivate invocations. Bumped identically on the indexed
     *  and full-scan branches (walks, not lines visited), so the two
     *  modes stay stats-identical; pinned by GoldenStats. */
    StatsRegistry::Counter statMetaWalks;
};

} // namespace slpmt

#endif // SLPMT_CACHE_HIERARCHY_HH
