#include "cache/hierarchy.hh"

#include <cstring>

namespace slpmt
{

CacheHierarchy::CacheHierarchy(const HierarchyConfig &cfg,
                               const AddressMap &map, PmDevice &pm,
                               DramDevice &dram, StatsRegistry &stats)
    : CacheHierarchy(cfg, map, pm, dram, stats,
                     static_cast<Cache *>(nullptr))
{
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig &cfg,
                               const AddressMap &map, PmDevice &pm,
                               DramDevice &dram, StatsRegistry &stats,
                               Cache &shared_l3)
    : CacheHierarchy(cfg, map, pm, dram, stats, &shared_l3)
{
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig &cfg,
                               const AddressMap &map, PmDevice &pm,
                               DramDevice &dram, StatsRegistry &stats,
                               Cache *shared_l3)
    : addrMap(map),
      pm(pm),
      dram(dram),
      l1Cache(cfg.l1),
      l2Cache(cfg.l2),
      ownedL3(shared_l3 ? nullptr : std::make_unique<Cache>(cfg.l3)),
      l3Ptr(shared_l3 ? shared_l3 : ownedL3.get()),
      statL1Hits(stats.counter("cache.l1Hits")),
      statL1Misses(stats.counter("cache.l1Misses")),
      statL2Hits(stats.counter("cache.l2Hits")),
      statL2Misses(stats.counter("cache.l2Misses")),
      statL3Hits(stats.counter("cache.l3Hits")),
      statL3Misses(stats.counter("cache.l3Misses")),
      statWritebacks(stats.counter("cache.writebacks")),
      statPrivateEvictions(stats.counter("cache.privateEvictions")),
      statLogBitAggrLossy(stats.counter("cache.logBitAggrLossy")),
      statMetaWalks(stats.counter("cache.metaWalks"))
{
}

AccessResult
CacheHierarchy::accessMiss(Addr addr, bool is_write, Cycles now)
{
    addrMap.checkMapped(addr);
    Cycles latency = l1Cache.hitLatency();
    statL1Misses++;

    latency += ensureInL2(addr, now);

    CacheLine *l2_line = l2Cache.find(addr);
    panicIfNot(l2_line != nullptr, "fill did not reach L2");
    CacheLine &l1_line = promoteToL1(*l2_line, now, latency);
    if (is_write) {
        l1_line.dirty = true;
        l1_line.state = MesiState::Modified;
    }
    return {&l1_line, latency};
}

Cycles
CacheHierarchy::ensureInL2(Addr addr, Cycles now)
{
    Cycles latency = l2Cache.hitLatency();
    if (l2Cache.find(addr)) {
        statL2Hits++;
        return latency;
    }
    statL2Misses++;
    latency += l3Ptr->hitLatency();

    CacheLine *l3_line = l3Ptr->find(addr);
    if (!l3_line) {
        statL3Misses++;
        // Fill L3 from the backing device.
        CacheLine &frame = l3Ptr->victimFor(addr);
        if (frame.valid()) {
            CacheLine victim = frame;  // copy: eviction may recurse
            l3Ptr->invalidateFrame(frame);
            latency += evictFromL3(victim, now);
        }
        l3Ptr->fillFrame(frame, lineBase(addr), MesiState::Exclusive);
        frame.dirty = false;
        frame.clearTxnMeta();
        if (addrMap.isPm(addr))
            latency += pm.readLine(addr, frame.data.data());
        else
            latency += dram.readLine(addr, frame.data.data());
        l3Ptr->touch(frame);
        l3_line = &frame;
    } else {
        statL3Hits++;
        l3Ptr->touch(*l3_line);
    }

    // Fill L2 from L3. Metadata starts clear (Section III-B1).
    CacheLine &frame = l2Cache.victimFor(addr);
    if (frame.valid())
        latency += evictFromL2(frame, now);
    l2Cache.fillFrame(frame, lineBase(addr),
                      l3_line->state == MesiState::Modified
                          ? MesiState::Modified
                          : MesiState::Exclusive);
    frame.dirty = false;
    frame.clearTxnMeta();
    frame.data = l3_line->data;
    l2Cache.touch(frame);
    return latency;
}

CacheLine &
CacheHierarchy::promoteToL1(CacheLine &l2_line, Cycles now,
                            Cycles &latency)
{
    CacheLine &frame = l1Cache.victimFor(l2_line.tag);
    if (frame.valid())
        latency += evictFromL1(frame, now);

    l1Cache.fillFrame(frame, l2_line.tag, l2_line.state);
    frame.dirty = false;
    frame.data = l2_line.data;

    // Metadata moves up: replicate the coarse L2 log map (Figure 5).
    frame.persistBit = l2_line.persistBit;
    frame.logBits = replicateLogBits(l2_line.logBits);
    frame.txnId = l2_line.txnId;
    frame.txnSeq = l2_line.txnSeq;
    l2_line.clearTxnMeta();
    l1Cache.syncMetaIndex(frame);
    l2Cache.syncMetaIndex(l2_line);

    l1Cache.touch(frame);
    return frame;
}

Cycles
CacheHierarchy::evictFromL1(CacheLine &victim, Cycles now)
{
    Cycles latency = 0;
    CacheLine *l2_line = l2Cache.find(victim.tag);
    panicIfNot(l2_line != nullptr, "inclusion violated: L1 line not in L2");

    std::uint8_t log_bits = victim.logBits;
    if (speculativeRounding && evictClientObj) {
        // Offer partially-set 4-bit groups for speculative rounding.
        std::uint8_t missing = 0;
        const std::uint8_t lo = log_bits & 0x0F;
        const std::uint8_t hi = (log_bits >> 4) & 0x0F;
        if (lo != 0 && lo != 0x0F)
            missing |= static_cast<std::uint8_t>(~lo & 0x0F);
        if (hi != 0 && hi != 0x0F)
            missing |= static_cast<std::uint8_t>((~hi & 0x0F) << 4);
        if (missing) {
            auto [cycles, rounded] =
                roundUpFn(evictClientObj, victim, missing, now);
            latency += cycles;
            log_bits |= rounded;
        }
    }

    // Merge data and metadata down (aggregate by conjunction).
    if (replicateLogBits(aggregateLogBits(log_bits)) != log_bits)
        statLogBitAggrLossy++;
    l2_line->data = victim.data;
    l2_line->dirty = l2_line->dirty || victim.dirty;
    if (victim.dirty)
        l2_line->state = MesiState::Modified;
    l2_line->persistBit = victim.persistBit;
    l2_line->logBits = aggregateLogBits(log_bits);
    l2_line->txnId = victim.txnId;
    l2_line->txnSeq = victim.txnSeq;
    l2Cache.syncMetaIndex(*l2_line);

    l1Cache.invalidateFrame(victim);
    l1Cache.syncMetaIndex(victim);
    return latency;
}

Cycles
CacheHierarchy::evictFromL2(CacheLine &victim, Cycles now)
{
    Cycles latency = 0;

    // Inclusion: pull any fresher L1 copy down into this frame first.
    if (CacheLine *l1_copy = l1Cache.find(victim.tag))
        latency += evictFromL1(*l1_copy, now);

    // Lines overflowing the private caches lose their metadata; give
    // the transaction engine a chance to flush logs / persist first.
    if (evictClientObj &&
        (victim.persistBit || victim.logBits || victim.txnId != noTxnId)) {
        statPrivateEvictions++;
        latency += evictLineFn(evictClientObj, victim, now);
    }
    victim.clearTxnMeta();
    l2Cache.syncMetaIndex(victim);

    // Install into L3 (the copy may already exist — it usually does,
    // because fills pass through L3).
    CacheLine *l3_line = l3Ptr->find(victim.tag);
    if (!l3_line) {
        CacheLine &frame = l3Ptr->victimFor(victim.tag);
        if (frame.valid()) {
            CacheLine old = frame;
            l3Ptr->invalidateFrame(frame);
            latency += evictFromL3(old, now);
        }
        l3Ptr->fillFrame(frame, victim.tag, MesiState::Exclusive);
        frame.dirty = false;
        frame.clearTxnMeta();
        l3Ptr->touch(frame);
        l3_line = &frame;
    }
    l3_line->data = victim.data;
    l3_line->dirty = l3_line->dirty || victim.dirty;
    if (victim.dirty)
        l3_line->state = MesiState::Modified;

    l2Cache.invalidateFrame(victim);
    return latency;
}

Cycles
CacheHierarchy::foldPrivateInto(CacheLine &victim, Cycles now)
{
    // Inclusion: fold in private copies. The L2 eviction would try to
    // reinstall into L3; we work on a detached copy, so find() misses
    // and would allocate — avoid that by merging manually.
    Cycles latency = 0;
    if (CacheLine *l2_copy = l2Cache.find(victim.tag)) {
        if (CacheLine *l1_copy = l1Cache.find(victim.tag))
            latency += evictFromL1(*l1_copy, now);
        if (evictClientObj && (l2_copy->persistBit || l2_copy->logBits ||
                               l2_copy->txnId != noTxnId)) {
            statPrivateEvictions++;
            latency += evictLineFn(evictClientObj, *l2_copy, now);
        }
        victim.data = l2_copy->data;
        victim.dirty = victim.dirty || l2_copy->dirty;
        l2Cache.invalidateFrame(*l2_copy);
        l2Cache.syncMetaIndex(*l2_copy);
    }
    return latency;
}

Cycles
CacheHierarchy::evictFromL3(CacheLine &victim, Cycles now)
{
    Cycles latency = foldPrivateInto(victim, now);
    if (remoteFolderObj)
        latency += foldRemoteFn(remoteFolderObj, *this, victim, now);

    if (victim.dirty) {
        statWritebacks++;
        latency += writebackToDevice(victim, now);
    }
    return latency;
}

Cycles
CacheHierarchy::surrenderPrivate(Addr addr, Cycles now)
{
    // evictFromL2 pulls any L1 copy down first, runs the eviction
    // client on metadata-bearing lines, merges the data into the
    // shared L3 and invalidates the private frames — exactly the
    // coherence transfer semantics.
    if (CacheLine *l2_line = l2Cache.find(addr))
        return evictFromL2(*l2_line, now);
    return 0;
}

Cycles
CacheHierarchy::writebackToDevice(const CacheLine &line, Cycles now)
{
    if (addrMap.isPm(line.tag)) {
        return pm.persistLine(line.tag, line.data.data(), now,
                              PersistKind::Writeback, line.txnSeq)
            .issueCycles;
    }
    return dram.writeLine(line.tag, line.data.data());
}

Cycles
CacheHierarchy::readBytes(Addr addr, void *out, std::size_t len,
                          Cycles now)
{
    auto *dst = static_cast<std::uint8_t *>(out);
    Cycles latency = 0;
    while (len > 0) {
        const std::size_t off = lineOffset(addr);
        const std::size_t chunk = std::min(len, cacheLineSize - off);
        AccessResult res = access(addr, false, now + latency);
        std::memcpy(dst, res.line->data.data() + off, chunk);
        latency += res.latency;
        addr += chunk;
        dst += chunk;
        len -= chunk;
    }
    return latency;
}

Cycles
CacheHierarchy::writeBytes(Addr addr, const void *src, std::size_t len,
                           Cycles now)
{
    auto *from = static_cast<const std::uint8_t *>(src);
    Cycles latency = 0;
    while (len > 0) {
        const std::size_t off = lineOffset(addr);
        const std::size_t chunk = std::min(len, cacheLineSize - off);
        AccessResult res = access(addr, true, now + latency);
        std::memcpy(res.line->data.data() + off, from, chunk);
        latency += res.latency;
        addr += chunk;
        from += chunk;
        len -= chunk;
    }
    return latency;
}

CacheLine *
CacheHierarchy::findPrivate(Addr addr)
{
    if (CacheLine *line = l1Cache.find(addr))
        return line;
    return l2Cache.find(addr);
}

void
CacheHierarchy::auditMetaIndex() const
{
    std::string why;
    if (!l1Cache.checkMetaIndex(&why) || !l2Cache.checkMetaIndex(&why))
        panic("metadata line index diverged from full scan: " + why);
    if (!l1Cache.checkProbeKeys(&why) || !l2Cache.checkProbeKeys(&why) ||
        !l3Ptr->checkProbeKeys(&why))
        panic("probe keys diverged from frame state: " + why);
}

Cycles
CacheHierarchy::persistPrivateLine(CacheLine &line, PersistKind kind,
                                   Cycles now, bool sync)
{
    const Cycles latency =
        pm.persistLine(line.tag, line.data.data(), now, kind,
                       line.txnSeq, sync)
            .issueCycles;
    line.dirty = false;

    // Every lower-level copy now matches the durable image; sync them
    // so they are not written back again later. A valid L1 frame is
    // findable by construction, so ownership is the whole test.
    const bool in_l1 = l1Cache.owns(&line);
    if (in_l1) {
        if (CacheLine *l2_copy = l2Cache.find(line.tag)) {
            l2_copy->data = line.data;
            l2_copy->dirty = false;
        }
    }
    if (CacheLine *l3_copy = l3Ptr->find(line.tag)) {
        l3_copy->data = line.data;
        l3_copy->dirty = false;
    }
    return latency;
}

void
CacheHierarchy::invalidateLineEverywhere(Addr addr)
{
    if (CacheLine *line = l1Cache.find(addr)) {
        l1Cache.invalidateFrame(*line);
        l1Cache.syncMetaIndex(*line);
    }
    if (CacheLine *line = l2Cache.find(addr)) {
        l2Cache.invalidateFrame(*line);
        l2Cache.syncMetaIndex(*line);
    }
    if (CacheLine *line = l3Ptr->find(addr))
        l3Ptr->invalidateFrame(*line);
}

void
CacheHierarchy::crash()
{
    l1Cache.invalidateAll();
    l2Cache.invalidateAll();
    l3Ptr->invalidateAll();
}

Cycles
CacheHierarchy::flushAll(Cycles now)
{
    // Evict top-down so data merges toward L3 before writeback.
    return flushPrivate(now) + flushShared(now);
}

Cycles
CacheHierarchy::flushPrivate(Cycles now)
{
    Cycles latency = 0;
    l1Cache.forEachValid(
        [&](CacheLine &line) { latency += evictFromL1(line, now); });
    l2Cache.forEachValid(
        [&](CacheLine &line) { latency += evictFromL2(line, now); });
    return latency;
}

Cycles
CacheHierarchy::flushShared(Cycles now)
{
    Cycles latency = 0;
    l3Ptr->forEachValid([&](CacheLine &line) {
        CacheLine victim = line;
        l3Ptr->invalidateFrame(line);
        latency += evictFromL3(victim, now);
    });
    return latency;
}

} // namespace slpmt
