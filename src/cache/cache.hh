/**
 * @file
 * A generic set-associative, LRU-replacement cache array used for all
 * three levels of the hierarchy. The array itself is policy-free: the
 * CacheHierarchy decides what happens to victims and how metadata
 * moves between levels.
 */

#ifndef SLPMT_CACHE_CACHE_HH
#define SLPMT_CACHE_CACHE_HH

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "cache/cache_line.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace slpmt
{

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name;
    Bytes sizeBytes;
    std::size_t ways;
    Cycles hitLatency;
};

/** Set-associative cache array with true-LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg)
        : config(cfg),
          numSets(cfg.sizeBytes / cacheLineSize / cfg.ways),
          lines(numSets * cfg.ways)
    {
        panicIfNot(numSets > 0 && (numSets & (numSets - 1)) == 0,
                   config.name + ": set count must be a power of two");
    }

    const std::string &name() const { return config.name; }
    Cycles hitLatency() const { return config.hitLatency; }
    std::size_t sets() const { return numSets; }
    std::size_t ways() const { return config.ways; }

    /** Find a valid line holding @p addr's cache line, or nullptr. */
    CacheLine *
    find(Addr addr)
    {
        const Addr base = lineBase(addr);
        for (auto &line : setOf(base)) {
            if (line.valid() && line.tag == base)
                return &line;
        }
        return nullptr;
    }

    const CacheLine *
    find(Addr addr) const
    {
        return const_cast<Cache *>(this)->find(addr);
    }

    /**
     * Choose the victim frame for filling @p addr: an invalid way if
     * one exists, otherwise the LRU way. The caller must handle any
     * valid victim (writeback, metadata propagation) before reusing
     * the frame.
     */
    CacheLine &
    victimFor(Addr addr)
    {
        auto set = setOf(lineBase(addr));
        CacheLine *victim = &set[0];
        for (auto &line : set) {
            if (!line.valid())
                return line;
            if (line.lastUse < victim->lastUse)
                victim = &line;
        }
        return *victim;
    }

    /** Bump a line's LRU timestamp. */
    void touch(CacheLine &line) { line.lastUse = ++useClock; }

    /** Apply @p fn to every valid line (scans for commit/abort). */
    void
    forEachValid(const std::function<void(CacheLine &)> &fn)
    {
        for (auto &line : lines) {
            if (line.valid())
                fn(line);
        }
    }

    /** Invalidate every line (crash simulation). */
    void
    invalidateAll()
    {
        for (auto &line : lines)
            line.invalidate();
    }

    /** Count valid lines matching a predicate (test support). */
    std::size_t
    countIf(const std::function<bool(const CacheLine &)> &pred) const
    {
        std::size_t n = 0;
        for (const auto &line : lines) {
            if (line.valid() && pred(line))
                ++n;
        }
        return n;
    }

  private:
    std::span<CacheLine>
    setOf(Addr base)
    {
        const std::size_t index =
            static_cast<std::size_t>(base / cacheLineSize) & (numSets - 1);
        return {lines.data() + index * config.ways, config.ways};
    }

    CacheConfig config;
    std::size_t numSets;
    std::vector<CacheLine> lines;
    std::uint64_t useClock = 0;
};

} // namespace slpmt

#endif // SLPMT_CACHE_CACHE_HH
