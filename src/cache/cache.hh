/**
 * @file
 * A generic set-associative, LRU-replacement cache array used for all
 * three levels of the hierarchy. The array itself is policy-free: the
 * CacheHierarchy decides what happens to victims and how metadata
 * moves between levels.
 *
 * The array also owns the level's metadata line index: an intrusive
 * doubly-linked list threading through the CacheLine frames that
 * currently carry transactional metadata (persist bit, log bits, or
 * an owning transaction ID). Transaction-boundary sweeps walk the
 * index instead of scanning every frame, making them O(working set);
 * syncMetaIndex() must be called after any mutation that may change a
 * frame's valid-and-has-metadata state.
 */

#ifndef SLPMT_CACHE_CACHE_HH
#define SLPMT_CACHE_CACHE_HH

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cache/cache_line.hh"
#include "checkpoint/serde.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace slpmt
{

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name;
    Bytes sizeBytes;
    std::size_t ways;
    Cycles hitLatency;
};

/** Set-associative cache array with true-LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg)
        : config(cfg),
          numSets(cfg.sizeBytes / cacheLineSize / cfg.ways),
          lines(numSets * cfg.ways)
    {
        panicIfNot(numSets > 0 && (numSets & (numSets - 1)) == 0,
                   config.name + ": set count must be a power of two");
    }

    const std::string &name() const { return config.name; }
    Cycles hitLatency() const { return config.hitLatency; }
    std::size_t sets() const { return numSets; }
    std::size_t ways() const { return config.ways; }

    /** Find a valid line holding @p addr's cache line, or nullptr. */
    CacheLine *
    find(Addr addr)
    {
        const Addr base = lineBase(addr);
        for (auto &line : setOf(base)) {
            if (line.valid() && line.tag == base)
                return &line;
        }
        return nullptr;
    }

    const CacheLine *
    find(Addr addr) const
    {
        const Addr base = lineBase(addr);
        for (const auto &line : setOf(base)) {
            if (line.valid() && line.tag == base)
                return &line;
        }
        return nullptr;
    }

    /**
     * Choose the victim frame for filling @p addr. The tie-break is
     * deterministic so replacement order is stable across refactors:
     * the first (lowest-way) invalid frame of the set wins if any way
     * is invalid; otherwise the LRU way, and on equal timestamps the
     * lowest way (strict less-than keeps the earliest scanned). The
     * caller must handle any valid victim (writeback, metadata
     * propagation) before reusing the frame.
     */
    CacheLine &
    victimFor(Addr addr)
    {
        auto set = setOf(lineBase(addr));
        CacheLine *victim = &set[0];
        for (auto &line : set) {
            if (!line.valid())
                return line;
            if (line.lastUse < victim->lastUse)
                victim = &line;
        }
        return *victim;
    }

    /** Bump a line's LRU timestamp. */
    void touch(CacheLine &line) { line.lastUse = ++useClock; }

    /**
     * Apply @p fn to every valid line (full-array scans: flush,
     * invalidation, audits). Takes any callable directly — the scan
     * is a hot path and must not pay a std::function indirection.
     */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (auto &line : lines) {
            if (line.valid())
                fn(line);
        }
    }

    /** Invalidate every line (crash simulation). */
    void
    invalidateAll()
    {
        for (auto &line : lines) {
            line.invalidate();
            line.metaPrev = nullptr;
            line.metaNext = nullptr;
            line.metaLinked = false;
        }
        metaHead = nullptr;
        metaCount = 0;
    }

    /** Count valid lines matching a predicate (test support). */
    template <typename Pred>
    std::size_t
    countIf(Pred &&pred) const
    {
        std::size_t n = 0;
        for (const auto &line : lines) {
            if (line.valid() && pred(line))
                ++n;
        }
        return n;
    }

    /** @name Metadata line index */
    /** @{ */

    /** @p line is a frame of this array (not a detached copy). */
    bool
    owns(const CacheLine *line) const
    {
        return line >= lines.data() && line < lines.data() + lines.size();
    }

    /**
     * Re-evaluate @p line's index membership after a metadata or
     * validity change: link it when it is valid and carries metadata,
     * unlink it otherwise. Idempotent; O(1).
     */
    void
    syncMetaIndex(CacheLine &line)
    {
        const bool should = line.valid() && line.hasTxnMeta();
        if (should == line.metaLinked)
            return;
        if (should) {
            line.metaPrev = nullptr;
            line.metaNext = metaHead;
            if (metaHead)
                metaHead->metaPrev = &line;
            metaHead = &line;
            line.metaLinked = true;
            ++metaCount;
        } else {
            if (line.metaPrev)
                line.metaPrev->metaNext = line.metaNext;
            else
                metaHead = line.metaNext;
            if (line.metaNext)
                line.metaNext->metaPrev = line.metaPrev;
            line.metaPrev = nullptr;
            line.metaNext = nullptr;
            line.metaLinked = false;
            --metaCount;
        }
    }

    /** Number of indexed (metadata-carrying) lines. */
    std::size_t metaLineCount() const { return metaCount; }

    /**
     * Append every indexed line to @p out in frame order (the order a
     * full array scan would visit them), so index walks reproduce the
     * historical scan order byte-for-byte. O(working set log working
     * set) for the sort — the list itself is unordered.
     */
    void
    collectMetaLines(std::vector<CacheLine *> &out)
    {
        const std::size_t first = out.size();
        for (CacheLine *line = metaHead; line; line = line->metaNext)
            out.push_back(line);
        std::sort(out.begin() + first, out.end());
    }

    /**
     * Audit the index against a brute-force scan: every valid frame's
     * linked flag matches its metadata state, and the list reaches
     * exactly the linked frames. @return false with a diagnostic in
     * @p why on the first violation.
     */
    bool
    checkMetaIndex(std::string *why) const
    {
        std::size_t expect = 0;
        for (const auto &line : lines) {
            const bool should = line.valid() && line.hasTxnMeta();
            if (should != line.metaLinked) {
                if (why)
                    *why = config.name + ": frame for tag " +
                           std::to_string(line.tag) +
                           (should ? " has metadata but is not indexed"
                                   : " is indexed without metadata");
                return false;
            }
            expect += should ? 1 : 0;
        }
        std::size_t reached = 0;
        for (const CacheLine *line = metaHead; line;
             line = line->metaNext) {
            if (!owns(line) || !line->metaLinked ||
                reached++ > lines.size()) {
                if (why)
                    *why = config.name + ": corrupt meta list node";
                return false;
            }
        }
        if (reached != expect || metaCount != expect) {
            if (why)
                *why = config.name + ": meta list reaches " +
                       std::to_string(reached) + " of " +
                       std::to_string(expect) + " lines (count " +
                       std::to_string(metaCount) + ")";
            return false;
        }
        return true;
    }
    /** @} */

    /** @name Checkpointing */
    /** @{ */

    /**
     * Serialize the replacement clock and every valid frame (absolute
     * frame index + architectural fields). Invalid frames carry no
     * observable state — victimFor() prefers any invalid way before
     * consulting timestamps — so they are omitted.
     */
    void
    saveState(BlobWriter &w) const
    {
        w.u<std::uint64_t>(useClock);
        std::uint64_t valid_count = 0;
        for (const auto &line : lines)
            valid_count += line.valid() ? 1 : 0;
        w.u<std::uint64_t>(valid_count);
        for (std::size_t i = 0; i < lines.size(); ++i) {
            const CacheLine &line = lines[i];
            if (!line.valid())
                continue;
            w.u<std::uint64_t>(i);
            w.u<Addr>(line.tag);
            w.u<std::uint8_t>(static_cast<std::uint8_t>(line.state));
            w.b(line.dirty);
            w.b(line.persistBit);
            w.u<std::uint8_t>(line.logBits);
            w.u<std::uint8_t>(line.txnId);
            w.u<std::uint64_t>(line.txnSeq);
            w.u<std::uint64_t>(line.lastUse);
            w.bytes(line.data.data(), line.data.size());
        }
    }

    /**
     * Restore into this (same-geometry) array: invalidate everything,
     * then rebuild the saved frames and re-link the metadata index.
     */
    void
    restoreState(BlobReader &r)
    {
        invalidateAll();
        useClock = r.u<std::uint64_t>();
        const std::size_t n = r.count(1);
        for (std::size_t k = 0; k < n; ++k) {
            const std::uint64_t idx = r.u<std::uint64_t>();
            if (idx >= lines.size())
                throw CheckpointError(config.name +
                                      ": frame index out of range");
            CacheLine &line = lines[static_cast<std::size_t>(idx)];
            line.tag = r.u<Addr>();
            const std::uint8_t st = r.u<std::uint8_t>();
            if (st > static_cast<std::uint8_t>(MesiState::Modified))
                throw CheckpointError(config.name +
                                      ": bad MESI state");
            line.state = static_cast<MesiState>(st);
            line.dirty = r.b();
            line.persistBit = r.b();
            line.logBits = r.u<std::uint8_t>();
            line.txnId = r.u<std::uint8_t>();
            line.txnSeq = r.u<std::uint64_t>();
            line.lastUse = r.u<std::uint64_t>();
            r.bytes(line.data.data(), line.data.size());
            syncMetaIndex(line);
        }
    }
    /** @} */

  private:
    std::span<CacheLine>
    setOf(Addr base)
    {
        const std::size_t index =
            static_cast<std::size_t>(base / cacheLineSize) & (numSets - 1);
        return {lines.data() + index * config.ways, config.ways};
    }

    std::span<const CacheLine>
    setOf(Addr base) const
    {
        const std::size_t index =
            static_cast<std::size_t>(base / cacheLineSize) & (numSets - 1);
        return {lines.data() + index * config.ways, config.ways};
    }

    CacheConfig config;
    std::size_t numSets;
    std::vector<CacheLine> lines;
    std::uint64_t useClock = 0;

    /** Head of the unordered intrusive metadata line list. */
    CacheLine *metaHead = nullptr;
    std::size_t metaCount = 0;
};

} // namespace slpmt

#endif // SLPMT_CACHE_CACHE_HH
