/**
 * @file
 * A generic set-associative, LRU-replacement cache array used for all
 * three levels of the hierarchy. The array itself is policy-free: the
 * CacheHierarchy decides what happens to victims and how metadata
 * moves between levels.
 *
 * Storage is structure-of-arrays: the CacheLine frames hold the
 * architectural per-line state (tag, MESI state, SLPMT metadata, data
 * bytes), while everything the lookup and replacement loops scan is
 * hoisted into sibling arrays indexed by frame id —
 *
 *  - probeKeys: the line's tag when the frame is valid, a sentinel
 *    that can never equal a line base otherwise. find() and
 *    victimFor() scan only this array (a whole 8-way set's keys fit
 *    in one 64-byte hardware line) instead of striding over ~88-byte
 *    CacheLine objects;
 *  - lastUses: the LRU timestamps consulted by victimFor();
 *  - metaPrev/metaNext/metaLinked: the metadata line index as
 *    index-based links (previously pointers threaded through the
 *    frames).
 *
 * Frames never move, so CacheLine pointers handed out by find() stay
 * stable. The probe keys are derived state: any mutation of a frame's
 * tag or validity must go through fillFrame()/invalidateFrame() (or
 * call syncProbeKey() after the fact) to keep the key array coherent;
 * checkProbeKeys() audits the invariant against a brute-force scan.
 *
 * The array also owns the level's metadata line index, linking the
 * frames that currently carry transactional metadata (persist bit,
 * log bits, or an owning transaction ID). Transaction-boundary sweeps
 * walk the index instead of scanning every frame, making them
 * O(working set); syncMetaIndex() must be called after any mutation
 * that may change a frame's valid-and-has-metadata state.
 */

#ifndef SLPMT_CACHE_CACHE_HH
#define SLPMT_CACHE_CACHE_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cache/cache_line.hh"
#include "checkpoint/serde.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace slpmt
{

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name;
    Bytes sizeBytes;
    std::size_t ways;
    Cycles hitLatency;
};

/** Set-associative cache array with true-LRU replacement. */
class Cache
{
  public:
    /** find() miss / no-frame marker. */
    static constexpr std::size_t npos =
        std::numeric_limits<std::size_t>::max();

    /**
     * Probe key of an invalid frame. Line bases are 64-byte aligned,
     * so the all-ones pattern can never match one and the probe loop
     * needs no separate valid test.
     */
    static constexpr Addr invalidKey = ~Addr{0};

    explicit Cache(const CacheConfig &cfg)
        : config(cfg),
          numSets(cfg.sizeBytes / cacheLineSize / cfg.ways),
          lines(numSets * cfg.ways),
          probeKeys(lines.size(), invalidKey),
          lastUses(lines.size(), 0),
          metaPrev(lines.size(), -1),
          metaNext(lines.size(), -1),
          metaLinked(lines.size(), 0)
    {
        panicIfNot(numSets > 0 && (numSets & (numSets - 1)) == 0,
                   config.name + ": set count must be a power of two");
    }

    const std::string &name() const { return config.name; }
    Cycles hitLatency() const { return config.hitLatency; }
    std::size_t sets() const { return numSets; }
    std::size_t ways() const { return config.ways; }

    /**
     * The single probe loop behind both find() overloads (and the
     * only place that scans for a tag): frame id of the valid line
     * holding @p addr's cache line, or npos.
     */
    std::size_t
    findFrame(Addr addr) const
    {
        const Addr base = lineBase(addr);
        const std::size_t first = setFirstFrame(base);
        const Addr *keys = probeKeys.data() + first;
        for (std::size_t w = 0; w < config.ways; ++w) {
            if (keys[w] == base)
                return first + w;
        }
        return npos;
    }

    /**
     * findFrame() with an MRU hint: if @p hint's probe key matches,
     * the set scan is skipped entirely. Probe keys are unique per
     * resident line, so a matching hint — however stale — names the
     * one frame holding the line; a stale non-matching hint just
     * falls back to the scan. @p hint must be any in-range frame id.
     */
    std::size_t
    findFrameHinted(Addr addr, std::size_t hint) const
    {
        if (probeKeys[hint] == lineBase(addr))
            return hint;
        return findFrame(addr);
    }

    /** Find a valid line holding @p addr's cache line, or nullptr. */
    CacheLine *
    find(Addr addr)
    {
        const std::size_t f = findFrame(addr);
        return f == npos ? nullptr : &lines[f];
    }

    const CacheLine *
    find(Addr addr) const
    {
        const std::size_t f = findFrame(addr);
        return f == npos ? nullptr : &lines[f];
    }

    /**
     * Choose the victim frame for filling @p addr. The tie-break is
     * deterministic so replacement order is stable across refactors:
     * the first (lowest-way) invalid frame of the set wins if any way
     * is invalid; otherwise the LRU way, and on equal timestamps the
     * lowest way (strict less-than keeps the earliest scanned). The
     * caller must handle any valid victim (writeback, metadata
     * propagation) before reusing the frame.
     */
    CacheLine &
    victimFor(Addr addr)
    {
        const std::size_t first = setFirstFrame(lineBase(addr));
        const Addr *keys = probeKeys.data() + first;
        const std::uint64_t *uses = lastUses.data() + first;
        std::size_t victim = 0;
        for (std::size_t w = 0; w < config.ways; ++w) {
            if (keys[w] == invalidKey)
                return lines[first + w];
            if (uses[w] < uses[victim])
                victim = w;
        }
        return lines[first + victim];
    }

    /** The frame behind a findFrame() id. */
    CacheLine &lineAt(std::size_t frame) { return lines[frame]; }

    /** Bump a line's LRU timestamp. */
    void touch(CacheLine &line) { lastUses[frameIndex(line)] = ++useClock; }

    /** touch() by frame id — skips the pointer-difference lookup when
     *  the caller already holds the findFrame() result. */
    void touchFrame(std::size_t frame) { lastUses[frame] = ++useClock; }

    /** A frame's LRU timestamp (tests / diagnostics). */
    std::uint64_t lastUse(const CacheLine &line) const
    {
        return lastUses[frameIndex(line)];
    }

    /** @name Probe-key maintenance */
    /** @{ */

    /** Frame id of @p line, which must be a frame of this array. */
    std::size_t
    frameIndex(const CacheLine &line) const
    {
        return static_cast<std::size_t>(&line - lines.data());
    }

    /**
     * Re-derive @p line's probe key after a tag or validity change.
     * fillFrame()/invalidateFrame() call this implicitly; direct field
     * writes must follow up with it.
     */
    void
    syncProbeKey(CacheLine &line)
    {
        probeKeys[frameIndex(line)] = line.valid() ? line.tag : invalidKey;
    }

    /**
     * Begin filling a frame with a new identity: sets the tag and
     * coherence state and publishes the probe key. The caller fills
     * dirty/metadata/data afterwards.
     */
    void
    fillFrame(CacheLine &line, Addr tag, MesiState state)
    {
        line.tag = tag;
        line.state = state;
        probeKeys[frameIndex(line)] = tag;
    }

    /**
     * Invalidate a frame and retract its probe key, making it
     * invisible to find()/victimFor() immediately — required before
     * any eviction recursion that may probe this array. The metadata
     * index is NOT resynced here; levels that keep one call
     * syncMetaIndex() separately (L3 keeps none).
     */
    void
    invalidateFrame(CacheLine &line)
    {
        line.invalidate();
        probeKeys[frameIndex(line)] = invalidKey;
    }

    /**
     * Audit the probe-key array against the frames: every key must be
     * the frame's tag when valid and the sentinel when not. @return
     * false with a diagnostic in @p why on the first violation.
     */
    bool
    checkProbeKeys(std::string *why) const
    {
        for (std::size_t i = 0; i < lines.size(); ++i) {
            const Addr expect =
                lines[i].valid() ? lines[i].tag : invalidKey;
            if (probeKeys[i] != expect) {
                if (why)
                    *why = config.name + ": frame " + std::to_string(i) +
                           " probe key " + std::to_string(probeKeys[i]) +
                           " != expected " + std::to_string(expect);
                return false;
            }
        }
        return true;
    }
    /** @} */

    /**
     * Apply @p fn to every valid line (full-array scans: flush,
     * invalidation, audits). Takes any callable directly — the scan
     * is a hot path and must not pay a std::function indirection.
     */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (auto &line : lines) {
            if (line.valid())
                fn(line);
        }
    }

    /** Invalidate every line (crash simulation). */
    void
    invalidateAll()
    {
        for (auto &line : lines)
            line.invalidate();
        std::fill(probeKeys.begin(), probeKeys.end(), invalidKey);
        std::fill(metaLinked.begin(), metaLinked.end(),
                  static_cast<std::uint8_t>(0));
        metaHead = -1;
        metaCount = 0;
    }

    /** Count valid lines matching a predicate (test support). */
    template <typename Pred>
    std::size_t
    countIf(Pred &&pred) const
    {
        std::size_t n = 0;
        for (const auto &line : lines) {
            if (line.valid() && pred(line))
                ++n;
        }
        return n;
    }

    /** @name Metadata line index */
    /** @{ */

    /** @p line is a frame of this array (not a detached copy). */
    bool
    owns(const CacheLine *line) const
    {
        return line >= lines.data() && line < lines.data() + lines.size();
    }

    /**
     * Re-evaluate @p line's index membership after a metadata or
     * validity change: link it when it is valid and carries metadata,
     * unlink it otherwise. Idempotent; O(1).
     */
    void
    syncMetaIndex(CacheLine &line)
    {
        const std::int32_t i =
            static_cast<std::int32_t>(frameIndex(line));
        const bool should = line.valid() && line.hasTxnMeta();
        if (should == (metaLinked[i] != 0))
            return;
        if (should) {
            metaPrev[i] = -1;
            metaNext[i] = metaHead;
            if (metaHead >= 0)
                metaPrev[metaHead] = i;
            metaHead = i;
            metaLinked[i] = 1;
            ++metaCount;
        } else {
            if (metaPrev[i] >= 0)
                metaNext[metaPrev[i]] = metaNext[i];
            else
                metaHead = metaNext[i];
            if (metaNext[i] >= 0)
                metaPrev[metaNext[i]] = metaPrev[i];
            metaPrev[i] = -1;
            metaNext[i] = -1;
            metaLinked[i] = 0;
            --metaCount;
        }
    }

    /** Number of indexed (metadata-carrying) lines. */
    std::size_t metaLineCount() const { return metaCount; }

    /**
     * Append every indexed line to @p out in frame order (the order a
     * full array scan would visit them), so index walks reproduce the
     * historical scan order byte-for-byte. O(working set log working
     * set) for the sort — the list itself is unordered.
     */
    void
    collectMetaLines(std::vector<CacheLine *> &out)
    {
        const std::size_t first = out.size();
        for (std::int32_t i = metaHead; i >= 0; i = metaNext[i])
            out.push_back(&lines[i]);
        std::sort(out.begin() + first, out.end());
    }

    /**
     * Audit the index against a brute-force scan: every valid frame's
     * linked flag matches its metadata state, and the list reaches
     * exactly the linked frames. @return false with a diagnostic in
     * @p why on the first violation.
     */
    bool
    checkMetaIndex(std::string *why) const
    {
        std::size_t expect = 0;
        for (std::size_t i = 0; i < lines.size(); ++i) {
            const CacheLine &line = lines[i];
            const bool should = line.valid() && line.hasTxnMeta();
            if (should != (metaLinked[i] != 0)) {
                if (why)
                    *why = config.name + ": frame for tag " +
                           std::to_string(line.tag) +
                           (should ? " has metadata but is not indexed"
                                   : " is indexed without metadata");
                return false;
            }
            expect += should ? 1 : 0;
        }
        std::size_t reached = 0;
        for (std::int32_t i = metaHead; i >= 0; i = metaNext[i]) {
            if (i >= static_cast<std::int32_t>(lines.size()) ||
                !metaLinked[i] || reached++ > lines.size()) {
                if (why)
                    *why = config.name + ": corrupt meta list node";
                return false;
            }
        }
        if (reached != expect || metaCount != expect) {
            if (why)
                *why = config.name + ": meta list reaches " +
                       std::to_string(reached) + " of " +
                       std::to_string(expect) + " lines (count " +
                       std::to_string(metaCount) + ")";
            return false;
        }
        return true;
    }

    /** Test hook: force a frame's linked flag without touching the
     *  list, to exercise the audit's divergence detection. */
    void
    setMetaLinkedForTest(CacheLine &line, bool linked)
    {
        metaLinked[frameIndex(line)] = linked ? 1 : 0;
    }
    /** @} */

    /** @name Checkpointing */
    /** @{ */

    /**
     * Serialize the replacement clock and every valid frame (absolute
     * frame index + architectural fields). Invalid frames carry no
     * observable state — victimFor() prefers any invalid way before
     * consulting timestamps — so they are omitted. The blob layout is
     * identical to the array-of-structs era: the probe keys and index
     * links are derived state and are rebuilt on restore.
     */
    void
    saveState(BlobWriter &w) const
    {
        w.u<std::uint64_t>(useClock);
        std::uint64_t valid_count = 0;
        for (const auto &line : lines)
            valid_count += line.valid() ? 1 : 0;
        w.u<std::uint64_t>(valid_count);
        for (std::size_t i = 0; i < lines.size(); ++i) {
            const CacheLine &line = lines[i];
            if (!line.valid())
                continue;
            w.u<std::uint64_t>(i);
            w.u<Addr>(line.tag);
            w.u<std::uint8_t>(static_cast<std::uint8_t>(line.state));
            w.b(line.dirty);
            w.b(line.persistBit);
            w.u<std::uint8_t>(line.logBits);
            w.u<std::uint8_t>(line.txnId);
            w.u<std::uint64_t>(line.txnSeq);
            w.u<std::uint64_t>(lastUses[i]);
            w.bytes(line.data.data(), line.data.size());
        }
    }

    /**
     * Restore into this (same-geometry) array: invalidate everything,
     * then rebuild the saved frames and re-derive the probe keys and
     * the metadata index.
     */
    void
    restoreState(BlobReader &r)
    {
        invalidateAll();
        useClock = r.u<std::uint64_t>();
        const std::size_t n = r.count(1);
        for (std::size_t k = 0; k < n; ++k) {
            const std::uint64_t idx = r.u<std::uint64_t>();
            if (idx >= lines.size())
                throw CheckpointError(config.name +
                                      ": frame index out of range");
            CacheLine &line = lines[static_cast<std::size_t>(idx)];
            line.tag = r.u<Addr>();
            const std::uint8_t st = r.u<std::uint8_t>();
            if (st > static_cast<std::uint8_t>(MesiState::Modified))
                throw CheckpointError(config.name +
                                      ": bad MESI state");
            line.state = static_cast<MesiState>(st);
            line.dirty = r.b();
            line.persistBit = r.b();
            line.logBits = r.u<std::uint8_t>();
            line.txnId = r.u<std::uint8_t>();
            line.txnSeq = r.u<std::uint64_t>();
            lastUses[static_cast<std::size_t>(idx)] =
                r.u<std::uint64_t>();
            r.bytes(line.data.data(), line.data.size());
            syncProbeKey(line);
            syncMetaIndex(line);
        }
    }
    /** @} */

  private:
    /** First frame id of @p base's set (the probe window start). */
    std::size_t
    setFirstFrame(Addr base) const
    {
        const std::size_t index =
            static_cast<std::size_t>(base / cacheLineSize) &
            (numSets - 1);
        return index * config.ways;
    }

    CacheConfig config;
    std::size_t numSets;

    /** The frames (cold per-line state; stable addresses). */
    std::vector<CacheLine> lines;

    /** @name Hot sibling arrays, indexed by frame id */
    /** @{ */
    std::vector<Addr> probeKeys;           //!< tag or invalidKey
    std::vector<std::uint64_t> lastUses;   //!< LRU timestamps
    std::vector<std::int32_t> metaPrev;    //!< meta index links (-1 end)
    std::vector<std::int32_t> metaNext;
    std::vector<std::uint8_t> metaLinked;  //!< frame is on the list
    /** @} */

    std::uint64_t useClock = 0;

    /** Head frame id of the unordered metadata line list (-1 empty). */
    std::int32_t metaHead = -1;
    std::size_t metaCount = 0;
};

} // namespace slpmt

#endif // SLPMT_CACHE_CACHE_HH
