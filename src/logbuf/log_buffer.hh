/**
 * @file
 * The four-tier coalescing log buffer of Section III-B2.
 *
 * Tiers hold records of one word, double words, quadruple words, and a
 * full cache line. Tier capacities are sized to the least common
 * multiple of record size and cache-line size — 2, 3, 5, and 9 cache
 * lines — so each tier retains up to eight records. On insertion a
 * record is coalesced with its buddy (the record covering the other
 * half of the next-larger naturally-aligned span) whenever the buddy
 * is present, and the combined record is promoted to the next tier;
 * this repeats on every tier except the full-line one. A tier that
 * fills with no coalescing opportunity is drained to the persistent
 * log area.
 *
 * Storage: each tier is a fixed in-place arena (capacity x LogRecord
 * slots plus a live count) rather than a heap vector, so inserting,
 * coalescing, and draining never allocate. Erases shift the tail down
 * one slot to preserve insertion order — drain order is part of the
 * deterministic report contract. Record pointers/references obtained
 * from tier() or forEachRecord() are invalidated by ANY subsequent
 * mutating call (insert, flush, drain, discard, clear, restore):
 * records live in the slots themselves, and slots are reused and
 * shifted in place.
 */

#ifndef SLPMT_LOGBUF_LOG_BUFFER_HH
#define SLPMT_LOGBUF_LOG_BUFFER_HH

#include <array>
#include <span>

#include "stats/stats.hh"
#include "logbuf/log_record.hh"

namespace slpmt
{

/** The on-core tiered log buffer. */
class LogBuffer
{
  public:
    static constexpr std::size_t tierCount = 4;
    static constexpr std::size_t tierCapacity = 8;

    /** Cycles charged to insert a record (the buffer is next to L1 and
     *  operates asynchronously; only the insert is on the path). */
    static constexpr Cycles insertLatency = 1;

    explicit LogBuffer(StatsRegistry &stats)
        : LogBuffer(StatGroup(stats, "logbuf"))
    {
    }

    explicit LogBuffer(const StatGroup &stats)
        : statInserts(stats.counter("inserts")),
          statCoalesces(stats.counter("coalesces")),
          statTierDrains(stats.counter("tierDrains")),
          statRecordsPersisted(stats.counter("recordsPersisted")),
          statRecordsDiscarded(stats.counter("recordsDiscarded")),
          statDrainedWireBytes(stats.counter("drainedWireBytes")),
          statDrainedWords(stats.histogram("drainedWords", {1, 2, 4, 8}))
    {
        for (std::size_t t = 0; t < tierCount; ++t) {
            statTierRecords[t] =
                stats.counter("tier" + std::to_string(t) + ".records");
        }
    }

    /**
     * Wire the drain destination (the persistent undo-log area,
     * implemented by the transaction engine via a non-virtual
     * `Cycles persistRecord(const LogRecord &, Cycles)` member).
     * Dispatch is a stored function pointer specialised on the
     * concrete sink type — devirtualized: no vtable and no virtual
     * interface class to inherit.
     */
    template <typename Sink>
    void
    setSink(Sink *s)
    {
        sinkObj = s;
        sinkFn = [](void *obj, const LogRecord &rec, Cycles now) {
            return static_cast<Sink *>(obj)->persistRecord(rec, now);
        };
    }

    /**
     * Insert a one-word undo record, coalescing upward as far as
     * possible. @p old_word points at the 8-byte pre-store value.
     */
    Cycles insertWord(Addr word_addr, const std::uint8_t *old_word,
                      std::uint8_t txn_id, std::uint64_t txn_seq,
                      Cycles now);

    /**
     * Insert a full-line record directly into the top tier (used by
     * line-granularity schemes such as ATOM and SLPMT-CL).
     */
    Cycles insertLine(Addr line_addr, const std::uint8_t *old_line,
                      std::uint8_t txn_id, std::uint64_t txn_seq,
                      Cycles now);

    /**
     * Persist and remove every record touching @p line_addr's cache
     * line (called when the line overflows the private caches).
     */
    Cycles flushLine(Addr line_addr, Cycles now);

    /** Persist and remove everything (transaction commit). */
    Cycles drainAll(Cycles now);

    /**
     * Remove (without persisting) every record whose line satisfies
     * @p is_lazy — the commit-time discard of records belonging to
     * lazily persistent cache lines. Templated on the predicate so the
     * commit hot path carries no std::function indirection.
     *
     * @return number of records discarded
     */
    template <typename IsLazy>
    std::size_t
    discardIf(IsLazy &&is_lazy)
    {
        std::size_t discarded = 0;
        for (auto &tier : tiers) {
            for (std::uint32_t i = 0; i < tier.count;) {
                if (is_lazy(tier.slots[i].line())) {
                    ++discarded;
                    tier.erase(i);
                } else {
                    ++i;
                }
            }
        }
        statRecordsDiscarded += discarded;
        return discarded;
    }

    /** Drop everything without persisting (abort / crash). */
    void clear();

    /** Mutable visit of every buffered record (redo-mode refresh). */
    template <typename Fn>
    void
    forEachRecord(Fn &&fn)
    {
        for (auto &tier : tiers) {
            for (std::uint32_t i = 0; i < tier.count; ++i)
                fn(tier.slots[i]);
        }
    }

    bool
    empty() const
    {
        for (const auto &tier : tiers) {
            if (tier.count != 0)
                return false;
        }
        return true;
    }

    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const auto &tier : tiers)
            n += tier.count;
        return n;
    }

    /** Direct tier view for tests (live records, insertion order). */
    std::span<const LogRecord>
    tier(std::size_t i) const
    {
        const Tier &t = tiers.at(i);
        return {t.slots.data(), t.count};
    }

    /** @name Checkpointing (the sink is rewired by the owner) */
    /** @{ */
    void
    saveState(BlobWriter &w) const
    {
        for (const auto &t : tiers) {
            w.u<std::uint64_t>(t.count);
            for (std::uint32_t i = 0; i < t.count; ++i)
                t.slots[i].saveState(w);
        }
    }

    void
    restoreState(BlobReader &r)
    {
        for (auto &t : tiers) {
            t.count = 0;
            const std::size_t n = r.count(1);
            if (n > tierCapacity)
                throw CheckpointError("log buffer tier overflow");
            for (std::size_t i = 0; i < n; ++i) {
                LogRecord rec;
                rec.restoreState(r);
                t.push(rec);
            }
        }
    }
    /** @} */

  private:
    /**
     * One tier's bump arena: records live in-place in @c slots[0..
     * count). push() assumes a free slot (callers drain first);
     * erase() shifts the tail down to keep insertion order. Bulk
     * reset is `count = 0` — slot contents are never read beyond
     * count, so no destruction or zeroing happens.
     */
    struct Tier
    {
        std::array<LogRecord, tierCapacity> slots;

        /** The live slots' record bases, hoisted: the buddy scan in
         *  insertAtTier() touches one cache line instead of striding
         *  the ~88-byte records. Only base-preserving mutation of a
         *  live record (the redo-refresh data rewrite) may bypass
         *  push()/erase(). */
        std::array<Addr, tierCapacity> bases;
        std::uint32_t count = 0;

        void
        push(const LogRecord &rec)
        {
            bases[count] = rec.base;
            slots[count++] = rec;
        }

        void
        erase(std::uint32_t i)
        {
            for (std::uint32_t j = i + 1; j < count; ++j) {
                slots[j - 1] = slots[j];
                bases[j - 1] = bases[j];
            }
            --count;
        }
    };

    /** Insert into tier @p t, coalescing upward; assumes alignment. */
    /** @p rec must not alias a tier slot (it may be drained/shifted
     *  before the final push); callers pass stack locals only. */
    Cycles insertAtTier(std::size_t t, const LogRecord &rec, Cycles now);

    /** Persist one record through the sink. */
    Cycles persist(const LogRecord &rec, Cycles now);

    std::array<Tier, tierCount> tiers;

    void *sinkObj = nullptr;
    Cycles (*sinkFn)(void *, const LogRecord &, Cycles) = nullptr;

    StatsRegistry::Counter statInserts;
    StatsRegistry::Counter statCoalesces;
    StatsRegistry::Counter statTierDrains;
    StatsRegistry::Counter statRecordsPersisted;
    StatsRegistry::Counter statRecordsDiscarded;
    StatsRegistry::Counter statDrainedWireBytes;
    StatsRegistry::Histogram statDrainedWords;
    std::array<StatsRegistry::Counter, tierCount> statTierRecords;
};

} // namespace slpmt

#endif // SLPMT_LOGBUF_LOG_BUFFER_HH
