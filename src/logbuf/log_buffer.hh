/**
 * @file
 * The four-tier coalescing log buffer of Section III-B2.
 *
 * Tiers hold records of one word, double words, quadruple words, and a
 * full cache line. Tier capacities are sized to the least common
 * multiple of record size and cache-line size — 2, 3, 5, and 9 cache
 * lines — so each tier retains up to eight records. On insertion a
 * record is coalesced with its buddy (the record covering the other
 * half of the next-larger naturally-aligned span) whenever the buddy
 * is present, and the combined record is promoted to the next tier;
 * this repeats on every tier except the full-line one. A tier that
 * fills with no coalescing opportunity is drained to the persistent
 * log area.
 */

#ifndef SLPMT_LOGBUF_LOG_BUFFER_HH
#define SLPMT_LOGBUF_LOG_BUFFER_HH

#include <array>
#include <functional>
#include <vector>

#include "stats/stats.hh"
#include "logbuf/log_record.hh"

namespace slpmt
{

/** Destination for drained records (the persistent undo-log area). */
class LogDrainSink
{
  public:
    virtual ~LogDrainSink() = default;

    /** Persist one record; returns the cycles spent issuing it. */
    virtual Cycles persistRecord(const LogRecord &rec, Cycles now) = 0;
};

/** The on-core tiered log buffer. */
class LogBuffer
{
  public:
    static constexpr std::size_t tierCount = 4;
    static constexpr std::size_t tierCapacity = 8;

    /** Cycles charged to insert a record (the buffer is next to L1 and
     *  operates asynchronously; only the insert is on the path). */
    static constexpr Cycles insertLatency = 1;

    explicit LogBuffer(StatsRegistry &stats)
        : LogBuffer(StatGroup(stats, "logbuf"))
    {
    }

    explicit LogBuffer(const StatGroup &stats)
        : statInserts(stats.counter("inserts")),
          statCoalesces(stats.counter("coalesces")),
          statTierDrains(stats.counter("tierDrains")),
          statRecordsPersisted(stats.counter("recordsPersisted")),
          statRecordsDiscarded(stats.counter("recordsDiscarded")),
          statDrainedWireBytes(stats.counter("drainedWireBytes")),
          statDrainedWords(stats.histogram("drainedWords", {1, 2, 4, 8}))
    {
        for (std::size_t t = 0; t < tierCount; ++t) {
            statTierRecords[t] =
                stats.counter("tier" + std::to_string(t) + ".records");
        }
    }

    void setSink(LogDrainSink *s) { sink = s; }

    /**
     * Insert a one-word undo record, coalescing upward as far as
     * possible. @p old_word points at the 8-byte pre-store value.
     */
    Cycles insertWord(Addr word_addr, const std::uint8_t *old_word,
                      std::uint8_t txn_id, std::uint64_t txn_seq,
                      Cycles now);

    /**
     * Insert a full-line record directly into the top tier (used by
     * line-granularity schemes such as ATOM and SLPMT-CL).
     */
    Cycles insertLine(Addr line_addr, const std::uint8_t *old_line,
                      std::uint8_t txn_id, std::uint64_t txn_seq,
                      Cycles now);

    /**
     * Persist and remove every record touching @p line_addr's cache
     * line (called when the line overflows the private caches).
     */
    Cycles flushLine(Addr line_addr, Cycles now);

    /** Persist and remove everything (transaction commit). */
    Cycles drainAll(Cycles now);

    /**
     * Remove (without persisting) every record whose line satisfies
     * @p is_lazy — the commit-time discard of records belonging to
     * lazily persistent cache lines.
     *
     * @return number of records discarded
     */
    std::size_t discardIf(const std::function<bool(Addr line)> &is_lazy);

    /** Drop everything without persisting (abort / crash). */
    void clear();

    /** Mutable visit of every buffered record (redo-mode refresh). */
    void
    forEachRecord(const std::function<void(LogRecord &)> &fn)
    {
        for (auto &tier : tiers) {
            for (auto &rec : tier)
                fn(rec);
        }
    }

    bool
    empty() const
    {
        for (const auto &tier : tiers) {
            if (!tier.empty())
                return false;
        }
        return true;
    }

    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const auto &tier : tiers)
            n += tier.size();
        return n;
    }

    /** Direct tier view for tests. */
    const std::vector<LogRecord> &tier(std::size_t i) const
    {
        return tiers.at(i);
    }

    /** @name Checkpointing (the sink pointer is rewired by the owner) */
    /** @{ */
    void
    saveState(BlobWriter &w) const
    {
        for (const auto &t : tiers) {
            w.u<std::uint64_t>(t.size());
            for (const auto &rec : t)
                rec.saveState(w);
        }
    }

    void
    restoreState(BlobReader &r)
    {
        for (auto &t : tiers) {
            t.clear();
            const std::size_t n = r.count(1);
            if (n > tierCapacity)
                throw CheckpointError("log buffer tier overflow");
            for (std::size_t i = 0; i < n; ++i) {
                LogRecord rec;
                rec.restoreState(r);
                t.push_back(rec);
            }
        }
    }
    /** @} */

  private:
    /** Insert into tier @p t, coalescing upward; assumes alignment. */
    Cycles insertAtTier(std::size_t t, LogRecord rec, Cycles now);

    /** Persist one record through the sink. */
    Cycles persist(const LogRecord &rec, Cycles now);

    std::array<std::vector<LogRecord>, tierCount> tiers;
    LogDrainSink *sink = nullptr;

    StatsRegistry::Counter statInserts;
    StatsRegistry::Counter statCoalesces;
    StatsRegistry::Counter statTierDrains;
    StatsRegistry::Counter statRecordsPersisted;
    StatsRegistry::Counter statRecordsDiscarded;
    StatsRegistry::Counter statDrainedWireBytes;
    StatsRegistry::Histogram statDrainedWords;
    std::array<StatsRegistry::Counter, tierCount> statTierRecords;
};

} // namespace slpmt

#endif // SLPMT_LOGBUF_LOG_BUFFER_HH
