/**
 * @file
 * Undo/redo log records as stored in the tiered log buffer.
 *
 * A record covers 1, 2, 4, or 8 contiguous naturally-aligned words and
 * consists of the base address plus the logged data, i.e. 16, 24, 40,
 * or 72 bytes on the wire (Figure 6).
 */

#ifndef SLPMT_LOGBUF_LOG_RECORD_HH
#define SLPMT_LOGBUF_LOG_RECORD_HH

#include <array>
#include <cstdint>

#include "checkpoint/serde.hh"
#include "common/types.hh"

namespace slpmt
{

/** One log record; tier = log2(words). */
struct LogRecord
{
    Addr base = 0;              //!< span-aligned base address
    std::uint8_t words = 1;     //!< 1, 2, 4, or 8
    std::uint8_t txnId = 0;     //!< owning core-local transaction ID
    std::uint64_t txnSeq = 0;   //!< owning global transaction sequence
    std::array<std::uint8_t, cacheLineSize> data{};

    /** Bytes of payload covered. */
    Bytes spanBytes() const { return words * wordSize; }

    /** Bytes the record occupies when persisted (address + data). */
    Bytes wireBytes() const { return wordSize + spanBytes(); }

    /** Base address of the cache line this record belongs to. */
    Addr line() const { return lineBase(base); }

    /** True if the record covers any byte of @p line_addr's line. */
    bool
    touchesLine(Addr line_addr) const
    {
        return line() == lineBase(line_addr);
    }

    /** @name Checkpointing */
    /** @{ */
    void
    saveState(BlobWriter &w) const
    {
        w.u<Addr>(base);
        w.u<std::uint8_t>(words);
        w.u<std::uint8_t>(txnId);
        w.u<std::uint64_t>(txnSeq);
        w.bytes(data.data(), data.size());
    }

    void
    restoreState(BlobReader &r)
    {
        base = r.u<Addr>();
        words = r.u<std::uint8_t>();
        if (words != 1 && words != 2 && words != 4 && words != 8)
            throw CheckpointError("bad log record span");
        txnId = r.u<std::uint8_t>();
        txnSeq = r.u<std::uint64_t>();
        r.bytes(data.data(), data.size());
    }
    /** @} */
};

} // namespace slpmt

#endif // SLPMT_LOGBUF_LOG_RECORD_HH
