#include "logbuf/log_buffer.hh"

#include <cstring>

#include "common/logging.hh"

namespace slpmt
{

Cycles
LogBuffer::insertWord(Addr word_addr, const std::uint8_t *old_word,
                      std::uint8_t txn_id, std::uint64_t txn_seq,
                      Cycles now)
{
    statInserts++;
    LogRecord rec;
    rec.base = wordBase(word_addr);
    rec.words = 1;
    rec.txnId = txn_id;
    rec.txnSeq = txn_seq;
    std::memcpy(rec.data.data(), old_word, wordSize);
    return insertLatency + insertAtTier(0, rec, now);
}

Cycles
LogBuffer::insertLine(Addr line_addr, const std::uint8_t *old_line,
                      std::uint8_t txn_id, std::uint64_t txn_seq,
                      Cycles now)
{
    statInserts++;
    LogRecord rec;
    rec.base = lineBase(line_addr);
    rec.words = wordsPerLine;
    rec.txnId = txn_id;
    rec.txnSeq = txn_seq;
    std::memcpy(rec.data.data(), old_line, cacheLineSize);
    return insertLatency + insertAtTier(tierCount - 1, rec, now);
}

Cycles
LogBuffer::insertAtTier(std::size_t t, const LogRecord &rec, Cycles now)
{
    Cycles latency = 0;
    Tier &tier = tiers[t];

    // Try to coalesce with the buddy covering the other half of the
    // next-larger span (buddy-allocator style), except at the top tier.
    if (t + 1 < tierCount) {
        const Addr span = rec.spanBytes();
        const Addr buddy_base = rec.base ^ span;
        std::uint32_t buddy = tier.count;
        for (std::uint32_t i = 0; i < tier.count; ++i) {
            if (tier.bases[i] == buddy_base) {
                buddy = i;
                break;
            }
        }
        if (buddy != tier.count) {
            statCoalesces++;
            LogRecord merged;
            merged.base = std::min(rec.base, buddy_base);
            merged.words = static_cast<std::uint8_t>(rec.words * 2);
            merged.txnId = rec.txnId;
            merged.txnSeq = rec.txnSeq;
            const LogRecord &buddy_rec = tier.slots[buddy];
            const LogRecord &low = rec.base < buddy_base ? rec : buddy_rec;
            const LogRecord &high = rec.base < buddy_base ? buddy_rec : rec;
            std::memcpy(merged.data.data(), low.data.data(),
                        low.spanBytes());
            std::memcpy(merged.data.data() + low.spanBytes(),
                        high.data.data(), high.spanBytes());
            tier.erase(buddy);
            return latency + insertAtTier(t + 1, merged, now);
        }
    }

    statTierRecords[t]++;

    // No coalescing opportunity: drain the tier if it is full.
    if (tier.count >= tierCapacity) {
        statTierDrains++;
        for (std::uint32_t i = 0; i < tier.count; ++i)
            latency += persist(tier.slots[i], now + latency);
        tier.count = 0;
    }
    tier.push(rec);
    return latency;
}

Cycles
LogBuffer::persist(const LogRecord &rec, Cycles now)
{
    panicIfNot(sinkFn != nullptr, "log buffer has no drain sink");
    statRecordsPersisted++;
    statDrainedWireBytes += rec.wireBytes();
    statDrainedWords.record(rec.words);
    return sinkFn(sinkObj, rec, now);
}

Cycles
LogBuffer::flushLine(Addr line_addr, Cycles now)
{
    Cycles latency = 0;
    for (auto &tier : tiers) {
        for (std::uint32_t i = 0; i < tier.count;) {
            if (tier.slots[i].touchesLine(line_addr)) {
                latency += persist(tier.slots[i], now + latency);
                tier.erase(i);
            } else {
                ++i;
            }
        }
    }
    return latency;
}

Cycles
LogBuffer::drainAll(Cycles now)
{
    Cycles latency = 0;
    for (auto &tier : tiers) {
        for (std::uint32_t i = 0; i < tier.count; ++i)
            latency += persist(tier.slots[i], now + latency);
        tier.count = 0;
    }
    return latency;
}

void
LogBuffer::clear()
{
    for (auto &tier : tiers)
        tier.count = 0;
}

} // namespace slpmt
