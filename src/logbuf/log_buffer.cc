#include "logbuf/log_buffer.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace slpmt
{

Cycles
LogBuffer::insertWord(Addr word_addr, const std::uint8_t *old_word,
                      std::uint8_t txn_id, std::uint64_t txn_seq,
                      Cycles now)
{
    statInserts++;
    LogRecord rec;
    rec.base = wordBase(word_addr);
    rec.words = 1;
    rec.txnId = txn_id;
    rec.txnSeq = txn_seq;
    std::memcpy(rec.data.data(), old_word, wordSize);
    return insertLatency + insertAtTier(0, rec, now);
}

Cycles
LogBuffer::insertLine(Addr line_addr, const std::uint8_t *old_line,
                      std::uint8_t txn_id, std::uint64_t txn_seq,
                      Cycles now)
{
    statInserts++;
    LogRecord rec;
    rec.base = lineBase(line_addr);
    rec.words = wordsPerLine;
    rec.txnId = txn_id;
    rec.txnSeq = txn_seq;
    std::memcpy(rec.data.data(), old_line, cacheLineSize);
    return insertLatency + insertAtTier(tierCount - 1, rec, now);
}

Cycles
LogBuffer::insertAtTier(std::size_t t, LogRecord rec, Cycles now)
{
    Cycles latency = 0;
    auto &tier = tiers[t];

    // Try to coalesce with the buddy covering the other half of the
    // next-larger span (buddy-allocator style), except at the top tier.
    if (t + 1 < tierCount) {
        const Addr span = rec.spanBytes();
        const Addr buddy_base = rec.base ^ span;
        auto buddy = std::find_if(tier.begin(), tier.end(),
                                  [&](const LogRecord &r) {
                                      return r.base == buddy_base;
                                  });
        if (buddy != tier.end()) {
            statCoalesces++;
            LogRecord merged;
            merged.base = std::min(rec.base, buddy_base);
            merged.words = static_cast<std::uint8_t>(rec.words * 2);
            merged.txnId = rec.txnId;
            merged.txnSeq = rec.txnSeq;
            const LogRecord &low = rec.base < buddy_base ? rec : *buddy;
            const LogRecord &high = rec.base < buddy_base ? *buddy : rec;
            std::memcpy(merged.data.data(), low.data.data(),
                        low.spanBytes());
            std::memcpy(merged.data.data() + low.spanBytes(),
                        high.data.data(), high.spanBytes());
            tier.erase(buddy);
            return latency + insertAtTier(t + 1, merged, now);
        }
    }

    statTierRecords[t]++;

    // No coalescing opportunity: drain the tier if it is full.
    if (tier.size() >= tierCapacity) {
        statTierDrains++;
        for (const auto &r : tier)
            latency += persist(r, now + latency);
        tier.clear();
    }
    tier.push_back(rec);
    return latency;
}

Cycles
LogBuffer::persist(const LogRecord &rec, Cycles now)
{
    panicIfNot(sink != nullptr, "log buffer has no drain sink");
    statRecordsPersisted++;
    statDrainedWireBytes += rec.wireBytes();
    statDrainedWords.record(rec.words);
    return sink->persistRecord(rec, now);
}

Cycles
LogBuffer::flushLine(Addr line_addr, Cycles now)
{
    Cycles latency = 0;
    for (auto &tier : tiers) {
        for (auto it = tier.begin(); it != tier.end();) {
            if (it->touchesLine(line_addr)) {
                latency += persist(*it, now + latency);
                it = tier.erase(it);
            } else {
                ++it;
            }
        }
    }
    return latency;
}

Cycles
LogBuffer::drainAll(Cycles now)
{
    Cycles latency = 0;
    for (auto &tier : tiers) {
        for (const auto &rec : tier)
            latency += persist(rec, now + latency);
        tier.clear();
    }
    return latency;
}

std::size_t
LogBuffer::discardIf(const std::function<bool(Addr line)> &is_lazy)
{
    std::size_t discarded = 0;
    for (auto &tier : tiers) {
        for (auto it = tier.begin(); it != tier.end();) {
            if (is_lazy(it->line())) {
                ++discarded;
                it = tier.erase(it);
            } else {
                ++it;
            }
        }
    }
    statRecordsDiscarded += discarded;
    return discarded;
}

void
LogBuffer::clear()
{
    for (auto &tier : tiers)
        tier.clear();
}

} // namespace slpmt
