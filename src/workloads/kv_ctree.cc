#include "workloads/kv_ctree.hh"

#include <bit>

namespace slpmt
{

void
KvCtreeWorkload::setup(PmContext &sys)
{
    auto &sites = sys.sites();
    siteLeafInit = sites.add({.name = "kv-ctree.insert.leaf",
                              .manual = {.lazy = false, .logFree = true},
                              .origin = ValueOrigin::Input,
                              .targetsFreshAlloc = true,
                              .defUseDepth = 2});
    siteInternalInit =
        sites.add({.name = "kv-ctree.insert.internal",
                   .manual = {.lazy = false, .logFree = true},
                   .origin = ValueOrigin::PmLoad,
                   .targetsFreshAlloc = true,
                   .defUseDepth = 3});
    siteValueInit = sites.add({.name = "kv-ctree.insert.value",
                               .manual = {.lazy = false, .logFree = true},
                               .origin = ValueOrigin::Input,
                               .targetsFreshAlloc = true,
                               .defUseDepth = 1});
    siteSwing = sites.add({.name = "kv-ctree.insert.swing",
                           .manual = {},
                           .origin = ValueOrigin::PmLoad,
                           .defUseDepth = 2});
    siteDeadPoison = sites.add({.name = "kv-ctree.remove.poison",
                                .manual = {.lazy = true, .logFree = true},
                                .origin = ValueOrigin::Constant,
                                .targetsDeadRegion = true,
                                .defUseDepth = 1});
    siteCount = sites.add({.name = "kv-ctree.insert.count",
                           .manual = {.lazy = true, .logFree = false},
                           .origin = ValueOrigin::Computed,
                           .rebuildable = true,
                           .requiresDeepSemantics = true,
                           .defUseDepth = 3});

    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    headerAddr = sys.heap().alloc(HdrOff::size, seq);
    sys.write<Addr>(headerAddr + HdrOff::root, 0);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, 0);
    sys.writeRoot(headerRootSlot, headerAddr);
    tx.commit();
    sys.quiesce();
}

Addr
KvCtreeWorkload::makeLeaf(PmContext &sys, std::uint64_t key, Addr val_ptr,
                          std::uint64_t val_len)
{
    const Addr leaf =
        sys.heap().alloc(NodeOff::size, sys.currentTxnSeq());
    sys.writeSite<std::uint64_t>(leaf + NodeOff::tag, tagLeaf,
                                 siteLeafInit);
    sys.writeSite<std::uint64_t>(leaf + NodeOff::key, key, siteLeafInit);
    sys.writeSite<Addr>(leaf + NodeOff::valPtr, val_ptr, siteLeafInit);
    sys.writeSite<std::uint64_t>(leaf + NodeOff::valLen, val_len,
                                 siteLeafInit);
    return leaf;
}

Addr
KvCtreeWorkload::findLeaf(PmContext &sys, std::uint64_t key)
{
    Addr cursor = sys.read<Addr>(headerAddr + HdrOff::root);
    while (cursor &&
           sys.read<std::uint64_t>(cursor + NodeOff::tag) ==
               tagInternal) {
        sys.compute(opcost::perLevel);
        const auto pos = sys.read<std::uint64_t>(cursor + NodeOff::bitPos);
        cursor = sys.read<Addr>(cursor + (bitOf(key, pos)
                                              ? NodeOff::child1
                                              : NodeOff::child0));
    }
    return cursor;
}

void
KvCtreeWorkload::insert(PmContext &sys, std::uint64_t key,
                        const std::vector<std::uint8_t> &value)
{
    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));

    const Addr val_ptr = sys.heap().alloc(value.size(), seq);
    sys.writeBytesSite(val_ptr, value.data(), value.size(),
                       siteValueInit);
    const Addr leaf = makeLeaf(sys, key, val_ptr, value.size());

    const Addr root = sys.read<Addr>(headerAddr + HdrOff::root);
    if (!root) {
        sys.writeSite<Addr>(headerAddr + HdrOff::root, leaf, siteSwing);
    } else {
        // The crit bit: the most significant bit where the new key
        // differs from the colliding leaf's key.
        const Addr collide = findLeaf(sys, key);
        const auto ck = sys.read<std::uint64_t>(collide + NodeOff::key);
        panicIfNot(ck != key, "duplicate key inserted");
        const std::uint64_t crit =
            static_cast<std::uint64_t>(std::countl_zero(ck ^ key));

        // The fresh internal node adopting the new leaf.
        const Addr inner = sys.heap().alloc(NodeOff::size, seq);
        sys.writeSite<std::uint64_t>(inner + NodeOff::tag, tagInternal,
                                     siteInternalInit);
        sys.writeSite<std::uint64_t>(inner + NodeOff::bitPos, crit,
                                     siteInternalInit);

        // Descend again to the edge where the crit bit belongs.
        Addr parent = 0;
        Bytes parent_side = 0;
        Addr cursor = root;
        while (sys.read<std::uint64_t>(cursor + NodeOff::tag) ==
               tagInternal) {
            const auto pos =
                sys.read<std::uint64_t>(cursor + NodeOff::bitPos);
            if (pos > crit)
                break;
            sys.compute(opcost::perLevel);
            parent = cursor;
            parent_side = bitOf(key, pos) ? NodeOff::child1
                                          : NodeOff::child0;
            cursor = sys.read<Addr>(cursor + parent_side);
        }

        const bool new_on_one = bitOf(key, crit) == 1;
        sys.writeSite<Addr>(inner + (new_on_one ? NodeOff::child1
                                                : NodeOff::child0),
                            leaf, siteInternalInit);
        sys.writeSite<Addr>(inner + (new_on_one ? NodeOff::child0
                                                : NodeOff::child1),
                            cursor, siteInternalInit);

        // The single logged pointer swing.
        if (!parent)
            sys.writeSite<Addr>(headerAddr + HdrOff::root, inner,
                                siteSwing);
        else
            sys.writeSite<Addr>(parent + parent_side, inner, siteSwing);
    }

    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    sys.writeSite<std::uint64_t>(headerAddr + HdrOff::count, cnt + 1,
                                 siteCount);
    tx.commit();
}

bool
KvCtreeWorkload::lookup(PmContext &sys, std::uint64_t key,
                        std::vector<std::uint8_t> *out)
{
    const Addr leaf = findLeaf(sys, key);
    if (!leaf || sys.read<std::uint64_t>(leaf + NodeOff::key) != key)
        return false;
    if (out) {
        const Addr vp = sys.read<Addr>(leaf + NodeOff::valPtr);
        const auto vl = sys.read<std::uint64_t>(leaf + NodeOff::valLen);
        out->resize(vl);
        sys.readBytes(vp, out->data(), vl);
    }
    return true;
}

void
KvCtreeWorkload::collectReachable(PmContext &sys, Addr node,
                                  std::vector<Addr> *out, std::size_t *n)
{
    if (!node)
        return;
    out->push_back(node);
    if (sys.peek<std::uint64_t>(node + NodeOff::tag) == tagInternal) {
        collectReachable(sys, sys.peek<Addr>(node + NodeOff::child0),
                         out, n);
        collectReachable(sys, sys.peek<Addr>(node + NodeOff::child1),
                         out, n);
    } else {
        out->push_back(sys.peek<Addr>(node + NodeOff::valPtr));
        ++*n;
    }
}

std::size_t
KvCtreeWorkload::count(PmContext &sys)
{
    return sys.read<std::uint64_t>(headerAddr + HdrOff::count);
}

void
KvCtreeWorkload::recover(PmContext &sys)
{
    headerAddr = sys.peek<Addr>(sys.rootSlotAddr(headerRootSlot));
    std::vector<Addr> reachable = {headerAddr};
    std::size_t n = 0;
    collectReachable(sys, sys.peek<Addr>(headerAddr + HdrOff::root),
                     &reachable, &n);
    DurableTx tx(sys);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, n);
    tx.commit();
    sys.heap().rebuild(reachable);
    sys.quiesce();
}

bool
KvCtreeWorkload::checkNode(PmContext &sys, Addr node,
                           std::uint64_t path_value,
                           std::uint64_t path_mask, std::size_t *n,
                           std::string *why)
{
    // path_mask marks the bit positions a path constrains, path_value
    // their required values (bit p of every internal node on the way
    // down equals the child side taken).
    if (!node)
        return true;
    if (sys.read<std::uint64_t>(node + NodeOff::tag) == tagLeaf) {
        const auto key = sys.read<std::uint64_t>(node + NodeOff::key);
        if ((key & path_mask) != path_value)
            return failCheck(why, "leaf key disagrees with path");
        ++*n;
        return true;
    }
    const auto pos = sys.read<std::uint64_t>(node + NodeOff::bitPos);
    if (pos > 63)
        return failCheck(why, "crit-bit position out of range");
    const std::uint64_t bit = 1ULL << (63 - pos);
    if (path_mask & bit)
        return failCheck(why, "crit-bit position repeated on path");
    // Positions must strictly increase along the path, i.e. every
    // already-constrained position is more significant than this one
    // (bit - 1 covers exactly the less-significant positions).
    if (path_mask & (bit - 1))
        return failCheck(why, "crit-bit positions not increasing");
    const Addr c0 = sys.read<Addr>(node + NodeOff::child0);
    const Addr c1 = sys.read<Addr>(node + NodeOff::child1);
    if (!c0 || !c1)
        return failCheck(why, "internal node with missing child");
    return checkNode(sys, c0, path_value, path_mask | bit, n, why) &&
           checkNode(sys, c1, path_value | bit, path_mask | bit, n, why);
}

bool
KvCtreeWorkload::checkConsistency(PmContext &sys, std::string *why)
{
    std::size_t n = 0;
    if (!checkNode(sys, sys.read<Addr>(headerAddr + HdrOff::root), 0, 0,
                   &n, why))
        return false;
    if (n != sys.read<std::uint64_t>(headerAddr + HdrOff::count))
        return failCheck(why, "count mismatch");
    return true;
}

bool
KvCtreeWorkload::update(PmContext &sys, std::uint64_t key,
                        const std::vector<std::uint8_t> &value)
{
    const Addr leaf = findLeaf(sys, key);
    if (!leaf || sys.read<std::uint64_t>(leaf + NodeOff::key) != key)
        return false;

    DurableTx tx(sys);
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));
    const std::uint64_t seq = sys.currentTxnSeq();
    const Addr new_blob = sys.heap().alloc(value.size(), seq);
    sys.writeBytesSite(new_blob, value.data(), value.size(),
                       siteValueInit);
    const Addr old_blob = sys.read<Addr>(leaf + NodeOff::valPtr);
    sys.writeSite<Addr>(leaf + NodeOff::valPtr, new_blob, siteSwing);
    sys.writeSite<std::uint64_t>(leaf + NodeOff::valLen, value.size(),
                                 siteSwing);
    tx.commit();
    sys.heap().free(old_blob);
    return true;
}

bool
KvCtreeWorkload::remove(PmContext &sys, std::uint64_t key)
{
    // Walk with the grandparent so the sibling can replace the parent.
    Addr grand = 0;
    Bytes grand_side = 0;
    Addr parent = 0;
    Bytes parent_side = 0;
    Addr cursor = sys.read<Addr>(headerAddr + HdrOff::root);
    if (!cursor)
        return false;
    while (sys.read<std::uint64_t>(cursor + NodeOff::tag) ==
           tagInternal) {
        const auto pos = sys.read<std::uint64_t>(cursor + NodeOff::bitPos);
        grand = parent;
        grand_side = parent_side;
        parent = cursor;
        parent_side =
            bitOf(key, pos) ? NodeOff::child1 : NodeOff::child0;
        cursor = sys.read<Addr>(cursor + parent_side);
    }
    if (sys.read<std::uint64_t>(cursor + NodeOff::key) != key)
        return false;

    DurableTx tx(sys);
    sys.compute(opcost::insertBase / 2);
    if (!parent) {
        sys.writeSite<Addr>(headerAddr + HdrOff::root, 0, siteSwing);
    } else {
        const Bytes sibling_side = parent_side == NodeOff::child0
                                       ? NodeOff::child1
                                       : NodeOff::child0;
        const Addr sibling = sys.read<Addr>(parent + sibling_side);
        if (!grand)
            sys.writeSite<Addr>(headerAddr + HdrOff::root, sibling,
                                siteSwing);
        else
            sys.writeSite<Addr>(grand + grand_side, sibling, siteSwing);
        // Pattern 1b: the parent dies with this transaction.
        sys.writeSite<std::uint64_t>(parent + NodeOff::tag, ~0ULL,
                                     siteDeadPoison);
    }
    sys.writeSite<std::uint64_t>(cursor + NodeOff::tag, ~0ULL,
                                 siteDeadPoison);
    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    sys.writeSite<std::uint64_t>(headerAddr + HdrOff::count, cnt - 1,
                                 siteCount);
    const Addr blob = sys.read<Addr>(cursor + NodeOff::valPtr);
    tx.commit();
    if (parent)
        sys.heap().free(parent);
    sys.heap().free(cursor);
    sys.heap().free(blob);
    return true;
}

} // namespace slpmt
