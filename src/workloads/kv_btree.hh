/**
 * @file
 * kv-btree: the PMDK map example's B-tree backend.
 *
 * A classic B-tree with seven keys per node and preemptive splitting
 * (full children are split on the way down, so insertion into a leaf
 * never cascades). Split-off right siblings and new roots are fresh
 * allocations initialised with log-free storeT; in-node entry shifts
 * and separator insertions modify live data and stay logged; the
 * element count is lazy (recounted by recovery).
 */

#ifndef SLPMT_WORKLOADS_KV_BTREE_HH
#define SLPMT_WORKLOADS_KV_BTREE_HH

#include "workloads/workload.hh"

namespace slpmt
{

/** The durable B-tree KV engine. */
class KvBtreeWorkload : public Workload
{
  public:
    static constexpr std::size_t headerRootSlot = 5;

    /** Max keys per node (order 8: 7 keys, 8 children). */
    static constexpr std::uint64_t maxKeys = 7;

    std::string name() const override { return "kv-btree"; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<KvBtreeWorkload>(*this);
    }
    void setup(PmContext &sys) override;
    void insert(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    bool lookup(PmContext &sys, std::uint64_t key,
                std::vector<std::uint8_t> *out) override;
    bool update(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    std::size_t count(PmContext &sys) override;
    void recover(PmContext &sys) override;
    bool checkConsistency(PmContext &sys, std::string *why) override;

  private:
    static constexpr std::uint64_t tagLeaf = 0;
    static constexpr std::uint64_t tagInternal = 1;

    /**
     * Node layout (words): tag, numKeys, keys[7], then
     * leaf: valPtr[7], valLen[7]; internal: children[8].
     * A uniform 23-word (184-byte) allocation covers both.
     */
    struct NodeOff
    {
        static constexpr Bytes tag = 0;
        static constexpr Bytes numKeys = 8;
        static constexpr Bytes keys = 16;                  // 7 words
        static constexpr Bytes children = keys + 7 * 8;    // 8 words
        static constexpr Bytes valPtrs = keys + 7 * 8;     // 7 words
        static constexpr Bytes valLens = valPtrs + 7 * 8;  // 7 words
        static constexpr Bytes size = valLens + 7 * 8;
    };

    struct HdrOff
    {
        static constexpr Bytes root = 0;
        static constexpr Bytes count = 8;
        static constexpr Bytes size = 16;
    };

    Addr keyAddr(Addr n, std::uint64_t i) { return n + NodeOff::keys + i * 8; }
    Addr childAddr(Addr n, std::uint64_t i)
    {
        return n + NodeOff::children + i * 8;
    }
    Addr valPtrAddr(Addr n, std::uint64_t i)
    {
        return n + NodeOff::valPtrs + i * 8;
    }
    Addr valLenAddr(Addr n, std::uint64_t i)
    {
        return n + NodeOff::valLens + i * 8;
    }

    Addr allocNode(PmContext &sys, std::uint64_t tag);

    /** Split full child @p child (index @p idx) of @p parent. */
    void splitChild(PmContext &sys, Addr parent, std::uint64_t idx,
                    Addr child);

    /** Insert into a guaranteed-non-full subtree rooted at @p node. */
    void insertNonFull(PmContext &sys, Addr node, std::uint64_t key,
                       Addr val_ptr, std::uint64_t val_len);

    bool checkNode(PmContext &sys, Addr node, std::uint64_t lo,
                   std::uint64_t hi, std::size_t depth,
                   std::size_t *leaf_depth, std::size_t *n,
                   std::string *why);

    void collectReachable(PmContext &sys, Addr node,
                          std::vector<Addr> *out, std::size_t *n);

    SiteId siteFreshNode = 0;
    SiteId siteValueInit = 0;
    SiteId siteEntry = 0;    //!< shifts/inserts into live nodes
    SiteId siteMeta = 0;     //!< numKeys and root updates
    SiteId siteCount = 0;

    Addr headerAddr = 0;
};

} // namespace slpmt

#endif // SLPMT_WORKLOADS_KV_BTREE_HH
