/**
 * @file
 * skiplist: a PHAST-style log-free durable skip list.
 *
 * Unlike the logging-reliant workloads, this structure is crash
 * consistent *by algorithm design* (Li et al., TPDS 2022): every
 * mutation prepares fresh state off to the side and then becomes
 * visible through one final single-word publication store. Under
 * SLPMT the publication store is annotated log-free (it is the last
 * store of its transaction, immediately followed by the commit, so it
 * is durable exactly when the transaction is — a deep-semantics
 * justification the compiler pass refuses and only the manual
 * annotation can supply), the fresh node and value-blob
 * initialisations are Pattern-1 log-free stores into fresh
 * allocations, and the tower links above level 0 plus the element
 * count are Pattern-2 lazy stores that recovery rebuilds from the
 * durable level-0 chain. The result: an insert, update or remove
 * commits with *zero* undo/redo records under SLPMT — software
 * log-freedom expressed through hardware selective logging.
 */

#ifndef SLPMT_WORKLOADS_SKIPLIST_HH
#define SLPMT_WORKLOADS_SKIPLIST_HH

#include "workloads/workload.hh"

namespace slpmt
{

/** The durable log-free skip list. */
class SkipListWorkload : public Workload
{
  public:
    static constexpr std::size_t headerRootSlot = 8;

    /** Tower levels (level 0 is the durable ground-truth chain). */
    static constexpr std::uint64_t maxHeight = 8;

    std::string name() const override { return "skiplist"; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<SkipListWorkload>(*this);
    }
    void setup(PmContext &sys) override;
    void insert(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    bool update(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    bool lookup(PmContext &sys, std::uint64_t key,
                std::vector<std::uint8_t> *out) override;
    bool remove(PmContext &sys, std::uint64_t key) override;
    std::size_t count(PmContext &sys) override;
    void recover(PmContext &sys) override;
    bool checkConsistency(PmContext &sys, std::string *why) override;

    /** Deterministic tower height for @p key (p = 1/4 per level). */
    static std::uint64_t towerHeight(std::uint64_t key);

    /** Fix-ups performed by recover() on lazy/advisory state. */
    struct RepairStats
    {
        std::uint64_t upperLinks = 0;  //!< stale tower links rewired
        std::uint64_t countFixes = 0;  //!< element count recomputed
        std::uint64_t deadMarks = 0;   //!< advisory marks cleared

        std::uint64_t
        total() const
        {
            return upperLinks + countFixes + deadMarks;
        }
    };
    const RepairStats &repairs() const { return repairStats; }

  private:
    /**
     * Node layout (words): key, height, valPtr, deadMark, then the
     * tower next[maxHeight]. deadMark is purely advisory (set by
     * removals as a Pattern-1b dead-region store): nothing reads it
     * on the live path, so it is harmless if it becomes durable
     * while the removing transaction aborts.
     */
    struct NodeOff
    {
        static constexpr Bytes key = 0;
        static constexpr Bytes height = 8;
        static constexpr Bytes valPtr = 16;
        static constexpr Bytes deadMark = 24;
        static constexpr Bytes next = 32;  // maxHeight words
        static constexpr Bytes size = next + maxHeight * 8;
    };

    struct HdrOff
    {
        static constexpr Bytes head = 0;
        static constexpr Bytes count = 8;
        static constexpr Bytes size = 16;
    };

    Addr
    nextAddr(Addr node, std::uint64_t level) const
    {
        return node + NodeOff::next + level * 8;
    }

    /** Timed search: fill the predecessor/successor frontier. */
    void search(PmContext &sys, std::uint64_t key, Addr *preds,
                Addr *succs);

    /** Fresh length-prefixed value blob ([len:8][bytes]). */
    Addr makeBlob(PmContext &sys,
                  const std::vector<std::uint8_t> &value);

    SiteId siteFreshNode = 0;  //!< node init (Pattern 1a, fresh)
    SiteId siteValueInit = 0;  //!< blob init (Pattern 1a, fresh)
    SiteId siteUpperLink = 0;  //!< tower links > 0 (Pattern 2, lazy)
    SiteId sitePublish = 0;    //!< level-0 publication (deep, manual)
    SiteId siteUnlink = 0;     //!< level-0 unlink (deep, manual)
    SiteId siteDeadMark = 0;   //!< dying node mark (Pattern 1b)
    SiteId siteCount = 0;      //!< element count (Pattern 2, lazy)

    Addr headerAddr = 0;
    RepairStats repairStats;
};

} // namespace slpmt

#endif // SLPMT_WORKLOADS_SKIPLIST_HH
