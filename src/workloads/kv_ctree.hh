/**
 * @file
 * kv-ctree: the PMDK map example's crit-bit tree backend.
 *
 * Internal nodes name the most-significant bit position at which the
 * keys of their two subtrees diverge; leaves hold the key and value.
 * An insertion allocates one leaf and (except for the first key) one
 * internal node — both fresh, hence log-free — and swings exactly one
 * pointer in an existing node, the only logged store besides the lazy
 * count. This minimal logged footprint is why the paper sees the
 * highest SLPMT speedup on kv-ctree.
 */

#ifndef SLPMT_WORKLOADS_KV_CTREE_HH
#define SLPMT_WORKLOADS_KV_CTREE_HH

#include "workloads/workload.hh"

namespace slpmt
{

/** The durable crit-bit tree KV engine. */
class KvCtreeWorkload : public Workload
{
  public:
    static constexpr std::size_t headerRootSlot = 6;

    std::string name() const override { return "kv-ctree"; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<KvCtreeWorkload>(*this);
    }
    void setup(PmContext &sys) override;
    void insert(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    bool lookup(PmContext &sys, std::uint64_t key,
                std::vector<std::uint8_t> *out) override;
    bool update(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    bool remove(PmContext &sys, std::uint64_t key) override;
    std::size_t count(PmContext &sys) override;
    void recover(PmContext &sys) override;
    bool checkConsistency(PmContext &sys, std::string *why) override;

  private:
    static constexpr std::uint64_t tagLeaf = 0;
    static constexpr std::uint64_t tagInternal = 1;

    /** Shared first word: the node tag. */
    struct NodeOff
    {
        static constexpr Bytes tag = 0;
        // Internal:
        static constexpr Bytes bitPos = 8;
        static constexpr Bytes child0 = 16;
        static constexpr Bytes child1 = 24;
        // Leaf:
        static constexpr Bytes key = 8;
        static constexpr Bytes valPtr = 16;
        static constexpr Bytes valLen = 24;
        static constexpr Bytes size = 32;
    };

    struct HdrOff
    {
        static constexpr Bytes root = 0;
        static constexpr Bytes count = 8;
        static constexpr Bytes size = 16;
    };

    /** Bit @p pos of @p key counting from the MSB (pos 0 = bit 63). */
    static std::uint64_t
    bitOf(std::uint64_t key, std::uint64_t pos)
    {
        return (key >> (63 - pos)) & 1ULL;
    }

    Addr makeLeaf(PmContext &sys, std::uint64_t key, Addr val_ptr,
                  std::uint64_t val_len);

    /** Walk to the leaf the key would collide with. */
    Addr findLeaf(PmContext &sys, std::uint64_t key);

    bool checkNode(PmContext &sys, Addr node, std::uint64_t prefix,
                   std::uint64_t prefix_bits, std::size_t *n,
                   std::string *why);

    void collectReachable(PmContext &sys, Addr node,
                          std::vector<Addr> *out, std::size_t *n);

    SiteId siteLeafInit = 0;
    SiteId siteInternalInit = 0;
    SiteId siteValueInit = 0;
    SiteId siteSwing = 0;
    SiteId siteCount = 0;
    SiteId siteDeadPoison = 0;  //!< Pattern 1b: dead region

    Addr headerAddr = 0;
};

} // namespace slpmt

#endif // SLPMT_WORKLOADS_KV_CTREE_HH
