/**
 * @file
 * Red-black self-balancing tree (Table II): every node holds a parent
 * pointer and a colour word.
 *
 * Annotation design (Section IV):
 *  - Fresh node and value-blob initialisation: log-free eager storeT
 *    (Pattern 1 — a crash leaks the node; GC reclaims it).
 *  - Child-pointer updates on existing nodes (BST links, rotations)
 *    and the root pointer: normal logged stores — they define the
 *    durable structure.
 *  - Parent-pointer updates on existing nodes: lazy + logged. The
 *    parent of a node is recomputable from the durable child links
 *    (Pattern 2) — the compiler pass finds exactly this one, as the
 *    paper reports.
 *  - Colour updates and the element count: lazy + logged, but their
 *    justification (the tree can be repainted / recounted after a
 *    crash) needs deep semantics, so the compiler pass misses them.
 *
 * Recovery rebuilds the tree from its durable skeleton: an in-order
 * walk over keys and values (child pointers are eager, hence durable)
 * followed by a balanced rebuild with canonical colours.
 */

#ifndef SLPMT_WORKLOADS_RBTREE_HH
#define SLPMT_WORKLOADS_RBTREE_HH

#include "workloads/workload.hh"

namespace slpmt
{

/** The durable red-black tree. */
class RbTreeWorkload : public Workload
{
  public:
    static constexpr std::size_t headerRootSlot = 2;

    std::string name() const override { return "rbtree"; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<RbTreeWorkload>(*this);
    }
    void setup(PmContext &sys) override;
    void insert(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    bool lookup(PmContext &sys, std::uint64_t key,
                std::vector<std::uint8_t> *out) override;
    bool update(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    std::size_t count(PmContext &sys) override;
    void recover(PmContext &sys) override;
    bool checkConsistency(PmContext &sys, std::string *why) override;

  private:
    static constexpr std::uint64_t black = 0;
    static constexpr std::uint64_t red = 1;

    struct NodeOff
    {
        static constexpr Bytes key = 0;
        static constexpr Bytes left = 8;
        static constexpr Bytes right = 16;
        static constexpr Bytes parent = 24;
        static constexpr Bytes color = 32;
        static constexpr Bytes valPtr = 40;
        static constexpr Bytes valLen = 48;
        static constexpr Bytes size = 56;
    };

    struct HdrOff
    {
        static constexpr Bytes root = 0;
        static constexpr Bytes count = 8;
        static constexpr Bytes size = 16;
    };

    Addr allocNode(PmContext &sys, std::uint64_t key, Addr parent,
                   Addr val_ptr, std::uint64_t val_len);

    void rotateLeft(PmContext &sys, Addr x);
    void rotateRight(PmContext &sys, Addr x);
    void fixupInsert(PmContext &sys, Addr z);

    /** Write a child link, routing through the right site. */
    void setChild(PmContext &sys, Addr node, bool right_side, Addr child);
    void setParent(PmContext &sys, Addr node, Addr parent);
    void setColor(PmContext &sys, Addr node, std::uint64_t color);
    void setRoot(PmContext &sys, Addr root);

    Addr getRoot(PmContext &sys) { return sys.read<Addr>(headerAddr); }

    /** In-order durable walk (recovery). */
    struct Item
    {
        std::uint64_t key;
        std::vector<std::uint8_t> value;
    };
    void collectDurable(PmContext &sys, Addr node,
                        std::vector<Item> &out) const;

    /** Build a balanced subtree from sorted items [lo, hi). */
    Addr buildBalanced(PmContext &sys, const std::vector<Item> &items,
                       std::size_t lo, std::size_t hi, Addr parent,
                       std::size_t depth, std::size_t red_depth);

    bool checkNode(PmContext &sys, Addr node, Addr parent,
                   std::uint64_t lo, std::uint64_t hi,
                   std::size_t *black_height, std::size_t *n,
                   std::string *why);

    SiteId siteNodeInit = 0;
    SiteId siteValueInit = 0;
    SiteId siteChild = 0;
    SiteId siteParent = 0;
    SiteId siteColor = 0;
    SiteId siteRoot = 0;
    SiteId siteCount = 0;

    Addr headerAddr = 0;
};

} // namespace slpmt

#endif // SLPMT_WORKLOADS_RBTREE_HH
