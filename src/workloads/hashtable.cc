#include "workloads/hashtable.hh"

#include <unordered_map>
#include <unordered_set>

namespace slpmt
{

void
HashTableWorkload::setup(PmContext &sys)
{
    auto &sites = sys.sites();
    siteNodeInit = sites.add({.name = "hashtable.insert.node",
                              .manual = {.lazy = false, .logFree = true},
                              .origin = ValueOrigin::Input,
                              .targetsFreshAlloc = true,
                              .defUseDepth = 2});
    siteValueInit = sites.add({.name = "hashtable.insert.value",
                               .manual = {.lazy = false, .logFree = true},
                               .origin = ValueOrigin::Input,
                               .targetsFreshAlloc = true,
                               .defUseDepth = 1});
    siteBucketHead = sites.add({.name = "hashtable.insert.bucketHead",
                                .manual = {},
                                .origin = ValueOrigin::Computed,
                                .defUseDepth = 2});
    siteCount = sites.add({.name = "hashtable.insert.count",
                           .manual = {.lazy = true, .logFree = false},
                           .origin = ValueOrigin::Computed,
                           .rebuildable = true,
                           .requiresDeepSemantics = true,
                           .defUseDepth = 3});
    siteCopyInit = sites.add({.name = "hashtable.resize.nodeCopy",
                              .manual = {.lazy = true, .logFree = true},
                              .origin = ValueOrigin::PmLoad,
                              .targetsFreshAlloc = true,
                              .rebuildable = true,
                              .defUseDepth = 4});
    siteNewBuckets = sites.add({.name = "hashtable.resize.newBuckets",
                                .manual = {.lazy = true, .logFree = true},
                                .origin = ValueOrigin::PmLoad,
                                .targetsFreshAlloc = true,
                                .rebuildable = true,
                                .defUseDepth = 4});
    siteHeaderSwing = sites.add({.name = "hashtable.resize.headerSwing",
                                 .manual = {},
                                 .origin = ValueOrigin::Computed,
                                 .defUseDepth = 2});
    siteJournal = sites.add({.name = "hashtable.resize.journal",
                             .manual = {},
                             .origin = ValueOrigin::Computed,
                             .defUseDepth = 1});
    siteDeadPoison = sites.add({.name = "hashtable.remove.poison",
                                .manual = {.lazy = true, .logFree = true},
                                .origin = ValueOrigin::Constant,
                                .targetsDeadRegion = true,
                                .defUseDepth = 1});

    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    headerAddr = sys.heap().alloc(HdrOff::size, seq);
    journalAddr = sys.heap().alloc(JnlOff::size, seq);
    const Addr buckets =
        sys.heap().alloc(initialBuckets * wordSize, seq);

    for (std::uint64_t b = 0; b < initialBuckets; ++b)
        sys.write<Addr>(buckets + b * wordSize, 0);
    sys.write<std::uint64_t>(headerAddr + HdrOff::numBuckets,
                             initialBuckets);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, 0);
    sys.write<Addr>(headerAddr + HdrOff::bucketsPtr, buckets);
    sys.write<std::uint64_t>(journalAddr + JnlOff::valid, 0);
    sys.writeRoot(headerRootSlot, headerAddr);
    sys.writeRoot(journalRootSlot, journalAddr);
    tx.commit();
    sys.quiesce();
}

Addr
HashTableWorkload::writeFreshNode(PmContext &sys, std::uint64_t key,
                                  Addr next, Addr val_ptr,
                                  std::uint64_t val_len, bool as_copy)
{
    const SiteId site = as_copy ? siteCopyInit : siteNodeInit;
    const Addr node =
        sys.heap().alloc(NodeOff::size, sys.currentTxnSeq());
    sys.writeSite<std::uint64_t>(node + NodeOff::key, key, site);
    sys.writeSite<Addr>(node + NodeOff::next, next, site);
    sys.writeSite<Addr>(node + NodeOff::valPtr, val_ptr, site);
    sys.writeSite<std::uint64_t>(node + NodeOff::valLen, val_len, site);
    sys.writeSite<std::uint64_t>(
        node + NodeOff::chk, nodeChecksum(key, next, val_ptr, val_len),
        site);
    return node;
}

void
HashTableWorkload::insert(PmContext &sys, std::uint64_t key,
                          const std::vector<std::uint8_t> &value)
{
    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();

    // Hash computation and control flow.
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));

    const Addr val_ptr = sys.heap().alloc(value.size(), seq);
    sys.writeBytesSite(val_ptr, value.data(), value.size(),
                       siteValueInit);

    const std::uint64_t num =
        sys.read<std::uint64_t>(headerAddr + HdrOff::numBuckets);
    const Addr buckets = sys.read<Addr>(headerAddr + HdrOff::bucketsPtr);
    const Addr slot = buckets + bucketOf(key, num) * wordSize;
    const Addr head = sys.read<Addr>(slot);

    const Addr node =
        writeFreshNode(sys, key, head, val_ptr, value.size(), false);

    // The commit pivot: a normal logged, eagerly persistent store.
    sys.writeSite<Addr>(slot, node, siteBucketHead);

    const std::uint64_t cnt =
        sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    sys.writeSite<std::uint64_t>(headerAddr + HdrOff::count, cnt + 1,
                                 siteCount);

    if (cnt + 1 > loadFactor * num)
        resize(sys, num * 2);

    tx.commit();

    // Deferred reclamation of replaced table storage (see the header
    // comment on deferredFrees for why this must follow the commit).
    for (Addr stale : deferredFrees)
        sys.heap().free(stale);
    deferredFrees.clear();
}

void
HashTableWorkload::resize(PmContext &sys, std::uint64_t new_num)
{
    const std::uint64_t seq = sys.currentTxnSeq();
    const std::uint64_t old_num =
        sys.read<std::uint64_t>(headerAddr + HdrOff::numBuckets);
    const Addr old_buckets =
        sys.read<Addr>(headerAddr + HdrOff::bucketsPtr);

    const Addr new_buckets = sys.heap().alloc(new_num * wordSize, seq);

    // Journal first (logged + eager): recovery learns both locations.
    sys.writeSite<Addr>(journalAddr + JnlOff::oldBuckets, old_buckets,
                        siteJournal);
    sys.writeSite<std::uint64_t>(journalAddr + JnlOff::oldNum, old_num,
                                 siteJournal);
    sys.writeSite<Addr>(journalAddr + JnlOff::newBuckets, new_buckets,
                        siteJournal);
    sys.writeSite<std::uint64_t>(journalAddr + JnlOff::newNum, new_num,
                                 siteJournal);
    sys.writeSite<std::uint64_t>(journalAddr + JnlOff::valid, 1,
                                 siteJournal);

    // Volatile staging of the new chains so copies can be written in
    // one pass with correct next pointers.
    std::vector<Addr> heads(new_num, 0);

    for (std::uint64_t b = 0; b < old_num; ++b) {
        Addr cursor = sys.read<Addr>(old_buckets + b * wordSize);
        while (cursor != 0) {
            sys.compute(opcost::perMove);
            const auto key =
                sys.read<std::uint64_t>(cursor + NodeOff::key);
            const Addr val_ptr = sys.read<Addr>(cursor + NodeOff::valPtr);
            const auto val_len =
                sys.read<std::uint64_t>(cursor + NodeOff::valLen);
            const Addr next = sys.read<Addr>(cursor + NodeOff::next);

            // Copy, never modify, the original node: the old table
            // stays intact while any copy is volatile.
            const std::uint64_t nb = bucketOf(key, new_num);
            heads[nb] = writeFreshNode(sys, key, heads[nb], val_ptr,
                                       val_len, true);
            deferredFrees.push_back(cursor);
            cursor = next;
        }
    }

    for (std::uint64_t b = 0; b < new_num; ++b)
        sys.writeSite<Addr>(new_buckets + b * wordSize, heads[b],
                            siteNewBuckets);

    // Swing the header (logged + eager); the old array is reclaimed
    // after commit with the old nodes.
    sys.writeSite<std::uint64_t>(headerAddr + HdrOff::numBuckets,
                                 new_num, siteHeaderSwing);
    sys.writeSite<Addr>(headerAddr + HdrOff::bucketsPtr, new_buckets,
                        siteHeaderSwing);
    deferredFrees.push_back(old_buckets);
    resizeCount++;
}

bool
HashTableWorkload::lookup(PmContext &sys, std::uint64_t key,
                          std::vector<std::uint8_t> *out)
{
    const std::uint64_t num =
        sys.read<std::uint64_t>(headerAddr + HdrOff::numBuckets);
    const Addr buckets = sys.read<Addr>(headerAddr + HdrOff::bucketsPtr);
    Addr cursor =
        sys.read<Addr>(buckets + bucketOf(key, num) * wordSize);
    while (cursor != 0) {
        sys.compute(opcost::perLevel);
        if (sys.read<std::uint64_t>(cursor + NodeOff::key) == key) {
            if (out) {
                const Addr val_ptr =
                    sys.read<Addr>(cursor + NodeOff::valPtr);
                const auto val_len =
                    sys.read<std::uint64_t>(cursor + NodeOff::valLen);
                out->resize(val_len);
                sys.readBytes(val_ptr, out->data(), val_len);
            }
            return true;
        }
        cursor = sys.read<Addr>(cursor + NodeOff::next);
    }
    return false;
}

std::size_t
HashTableWorkload::count(PmContext &sys)
{
    const std::uint64_t num =
        sys.read<std::uint64_t>(headerAddr + HdrOff::numBuckets);
    const Addr buckets = sys.read<Addr>(headerAddr + HdrOff::bucketsPtr);
    std::size_t n = 0;
    for (std::uint64_t b = 0; b < num; ++b) {
        Addr cursor = sys.read<Addr>(buckets + b * wordSize);
        while (cursor != 0) {
            ++n;
            cursor = sys.read<Addr>(cursor + NodeOff::next);
        }
    }
    return n;
}

std::vector<HashTableWorkload::Survivor>
HashTableWorkload::walkDurable(PmContext &sys, Addr buckets,
                               std::uint64_t num) const
{
    std::vector<Survivor> out;
    const auto &heap = sys.heap();
    const Addr lo = heap.base();
    const Addr hi = heap.base() + heap.size();
    auto plausible = [&](Addr a) {
        return a >= lo && a < hi && a % wordSize == 0;
    };

    if (!plausible(buckets))
        return out;
    for (std::uint64_t b = 0; b < num; ++b) {
        Addr cursor = sys.peek<Addr>(buckets + b * wordSize);
        std::size_t guard = 0;
        while (cursor != 0 && plausible(cursor) && guard++ < 1'000'000) {
            const auto key =
                sys.peek<std::uint64_t>(cursor + NodeOff::key);
            const Addr next = sys.peek<Addr>(cursor + NodeOff::next);
            const Addr val_ptr = sys.peek<Addr>(cursor + NodeOff::valPtr);
            const auto val_len =
                sys.peek<std::uint64_t>(cursor + NodeOff::valLen);
            const auto chk = sys.peek<std::uint64_t>(cursor + NodeOff::chk);
            if (chk != nodeChecksum(key, next, val_ptr, val_len))
                break;  // this copy never reached PM
            out.push_back({key, val_ptr, val_len});
            cursor = next;
        }
    }
    return out;
}

void
HashTableWorkload::recover(PmContext &sys)
{
    // Hardware replay already ran; re-derive volatile state from the
    // durable roots. A crash inside a resize leaves stale entries in
    // the deferred-free list: after rollback the old table is still
    // live, so those frees must never happen.
    deferredFrees.clear();
    headerAddr = sys.peek<Addr>(sys.rootSlotAddr(headerRootSlot));
    journalAddr = sys.peek<Addr>(sys.rootSlotAddr(journalRootSlot));

    const std::uint64_t journal_valid =
        sys.peek<std::uint64_t>(journalAddr + JnlOff::valid);

    if (journal_valid) {
        // A resize committed but its lazily persistent copies may not
        // have reached PM. Merge: checksum-valid chains of the new
        // table (always includes post-resize eager inserts) union the
        // old table (intact whenever any copy is missing; see header
        // comment).
        const Addr new_buckets =
            sys.peek<Addr>(journalAddr + JnlOff::newBuckets);
        const auto new_num =
            sys.peek<std::uint64_t>(journalAddr + JnlOff::newNum);
        const Addr old_buckets =
            sys.peek<Addr>(journalAddr + JnlOff::oldBuckets);
        const auto old_num =
            sys.peek<std::uint64_t>(journalAddr + JnlOff::oldNum);

        auto new_set = walkDurable(sys, new_buckets, new_num);
        auto old_set = walkDurable(sys, old_buckets, old_num);

        std::unordered_map<std::uint64_t, Survivor> merged;
        for (const auto &s : old_set)
            merged[s.key] = s;
        for (const auto &s : new_set)
            merged[s.key] = s;  // new table wins

        // Capture every survivor's value bytes before the rebuild:
        // the fresh table reuses the same heap range from its base,
        // so an early allocation can sit where a later survivor's
        // blob still lives.
        std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
            values;
        for (const auto &[key, s] : merged) {
            auto &value = values[key];
            value.resize(s.valLen);
            sys.peekBytes(s.valPtr, value.data(), s.valLen);
        }

        // Rebuild a fresh table from the merged set. Allocator state
        // is rebuilt below, so reset it first to a blank slate.
        sys.heap().reset();
        DurableTx tx(sys);
        const std::uint64_t seq = sys.currentTxnSeq();
        headerAddr = sys.heap().alloc(HdrOff::size, seq);
        journalAddr = sys.heap().alloc(JnlOff::size, seq);
        std::uint64_t num = initialBuckets;
        while (num * loadFactor < merged.size())
            num *= 2;
        const Addr buckets = sys.heap().alloc(num * wordSize, seq);
        for (std::uint64_t b = 0; b < num; ++b)
            sys.write<Addr>(buckets + b * wordSize, 0);

        std::uint64_t cnt = 0;
        for (const auto &[key, s] : merged) {
            // Value blobs were written eagerly by the original insert
            // and never moved: copy their captured durable contents.
            const std::vector<std::uint8_t> &value = values[key];
            const Addr val_ptr = sys.heap().alloc(s.valLen, seq);
            sys.writeBytes(val_ptr, value.data(), s.valLen);

            const Addr slot = buckets + bucketOf(key, num) * wordSize;
            const Addr head = sys.read<Addr>(slot);
            const Addr node = sys.heap().alloc(NodeOff::size, seq);
            sys.write<std::uint64_t>(node + NodeOff::key, key);
            sys.write<Addr>(node + NodeOff::next, head);
            sys.write<Addr>(node + NodeOff::valPtr, val_ptr);
            sys.write<std::uint64_t>(node + NodeOff::valLen, s.valLen);
            sys.write<std::uint64_t>(
                node + NodeOff::chk,
                nodeChecksum(key, head, val_ptr, s.valLen));
            sys.write<Addr>(slot, node);
            ++cnt;
        }
        sys.write<std::uint64_t>(headerAddr + HdrOff::numBuckets, num);
        sys.write<std::uint64_t>(headerAddr + HdrOff::count, cnt);
        sys.write<Addr>(headerAddr + HdrOff::bucketsPtr, buckets);
        sys.write<std::uint64_t>(journalAddr + JnlOff::valid, 0);
        sys.writeRoot(headerRootSlot, headerAddr);
        sys.writeRoot(journalRootSlot, journalAddr);
        tx.commit();
        sys.quiesce();
        return;
    }

    // No resize in flight: recompute the lazy count and GC leaks.
    const Addr buckets = sys.peek<Addr>(headerAddr + HdrOff::bucketsPtr);
    const auto num =
        sys.peek<std::uint64_t>(headerAddr + HdrOff::numBuckets);
    const auto survivors = walkDurable(sys, buckets, num);
    DurableTx tx(sys);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count,
                             survivors.size());
    tx.commit();
    sys.heap().rebuild(collectReachable(sys));
    sys.quiesce();
}

std::vector<Addr>
HashTableWorkload::collectReachable(PmContext &sys)
{
    std::vector<Addr> reachable = {headerAddr, journalAddr};
    const auto num =
        sys.peek<std::uint64_t>(headerAddr + HdrOff::numBuckets);
    const Addr buckets = sys.peek<Addr>(headerAddr + HdrOff::bucketsPtr);
    reachable.push_back(buckets);
    for (std::uint64_t b = 0; b < num; ++b) {
        Addr cursor = sys.peek<Addr>(buckets + b * wordSize);
        while (cursor != 0) {
            reachable.push_back(cursor);
            reachable.push_back(sys.peek<Addr>(cursor + NodeOff::valPtr));
            cursor = sys.peek<Addr>(cursor + NodeOff::next);
        }
    }
    return reachable;
}

bool
HashTableWorkload::checkConsistency(PmContext &sys, std::string *why)
{
    const auto num =
        sys.read<std::uint64_t>(headerAddr + HdrOff::numBuckets);
    const Addr buckets = sys.read<Addr>(headerAddr + HdrOff::bucketsPtr);
    if (num == 0 || buckets == 0)
        return failCheck(why, "empty header");

    std::unordered_set<std::uint64_t> seen;
    std::size_t walked = 0;
    for (std::uint64_t b = 0; b < num; ++b) {
        Addr cursor = sys.read<Addr>(buckets + b * wordSize);
        while (cursor != 0) {
            const auto key =
                sys.read<std::uint64_t>(cursor + NodeOff::key);
            const Addr next = sys.read<Addr>(cursor + NodeOff::next);
            const Addr val_ptr = sys.read<Addr>(cursor + NodeOff::valPtr);
            const auto val_len =
                sys.read<std::uint64_t>(cursor + NodeOff::valLen);
            const auto chk =
                sys.read<std::uint64_t>(cursor + NodeOff::chk);
            if (chk != nodeChecksum(key, next, val_ptr, val_len))
                return failCheck(why, "node checksum mismatch");
            if (bucketOf(key, num) != b)
                return failCheck(why, "key in wrong bucket");
            if (!seen.insert(key).second)
                return failCheck(why, "duplicate key");
            ++walked;
            cursor = next;
        }
    }
    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    if (cnt != walked)
        return failCheck(why, "count field does not match walk");
    return true;
}

bool
HashTableWorkload::update(PmContext &sys, std::uint64_t key,
                          const std::vector<std::uint8_t> &value)
{
    // Locate the node first (plain reads, outside any transaction).
    const auto num =
        sys.read<std::uint64_t>(headerAddr + HdrOff::numBuckets);
    const Addr buckets = sys.read<Addr>(headerAddr + HdrOff::bucketsPtr);
    Addr node = sys.read<Addr>(buckets + bucketOf(key, num) * wordSize);
    while (node && sys.read<std::uint64_t>(node + NodeOff::key) != key)
        node = sys.read<Addr>(node + NodeOff::next);
    if (!node)
        return false;

    DurableTx tx(sys);
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));
    const std::uint64_t seq = sys.currentTxnSeq();
    const Addr new_blob = sys.heap().alloc(value.size(), seq);
    sys.writeBytesSite(new_blob, value.data(), value.size(),
                       siteValueInit);
    const Addr old_blob = sys.read<Addr>(node + NodeOff::valPtr);
    const Addr next = sys.read<Addr>(node + NodeOff::next);
    sys.writeSite<Addr>(node + NodeOff::valPtr, new_blob,
                        siteBucketHead);
    sys.writeSite<std::uint64_t>(node + NodeOff::valLen, value.size(),
                                 siteBucketHead);
    sys.writeSite<std::uint64_t>(
        node + NodeOff::chk,
        nodeChecksum(key, next, new_blob, value.size()), siteBucketHead);
    tx.commit();
    sys.heap().free(old_blob);  // deferred past the commit
    return true;
}

bool
HashTableWorkload::remove(PmContext &sys, std::uint64_t key)
{
    const auto num =
        sys.read<std::uint64_t>(headerAddr + HdrOff::numBuckets);
    const Addr buckets = sys.read<Addr>(headerAddr + HdrOff::bucketsPtr);
    const Addr slot = buckets + bucketOf(key, num) * wordSize;
    Addr prev = 0;
    Addr node = sys.read<Addr>(slot);
    while (node && sys.read<std::uint64_t>(node + NodeOff::key) != key) {
        prev = node;
        node = sys.read<Addr>(node + NodeOff::next);
    }
    if (!node)
        return false;

    DurableTx tx(sys);
    sys.compute(opcost::insertBase / 2);
    const Addr next = sys.read<Addr>(node + NodeOff::next);
    if (!prev) {
        sys.writeSite<Addr>(slot, next, siteBucketHead);
    } else {
        // Unlink: the predecessor's next changes, and its checksum
        // covers the next pointer.
        const auto pk = sys.read<std::uint64_t>(prev + NodeOff::key);
        const Addr pv = sys.read<Addr>(prev + NodeOff::valPtr);
        const auto pl = sys.read<std::uint64_t>(prev + NodeOff::valLen);
        sys.writeSite<Addr>(prev + NodeOff::next, next, siteBucketHead);
        sys.writeSite<std::uint64_t>(prev + NodeOff::chk,
                                     nodeChecksum(pk, next, pv, pl),
                                     siteBucketHead);
    }
    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    sys.writeSite<std::uint64_t>(headerAddr + HdrOff::count, cnt - 1,
                                 siteCount);
    // Pattern 1b: the node dies with this transaction — poisoning its
    // checksum needs neither logging nor persistence.
    sys.writeSite<std::uint64_t>(node + NodeOff::chk, 0, siteDeadPoison);
    const Addr blob = sys.read<Addr>(node + NodeOff::valPtr);
    tx.commit();
    sys.heap().free(node);
    sys.heap().free(blob);
    return true;
}

} // namespace slpmt
