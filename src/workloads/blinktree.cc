#include "workloads/blinktree.hh"

#include <algorithm>
#include <set>

namespace slpmt
{

namespace
{

std::uint64_t
bitCount(std::uint64_t x)
{
    std::uint64_t n = 0;
    for (; x; x &= x - 1)
        ++n;
    return n;
}

} // namespace

void
BlinkTreeWorkload::setup(PmContext &sys)
{
    auto &sites = sys.sites();
    siteFreshNode = sites.add({.name = "blinktree.split.freshNode",
                               .manual = {.lazy = false, .logFree = true},
                               .origin = ValueOrigin::PmLoad,
                               .targetsFreshAlloc = true,
                               .defUseDepth = 3});
    siteValueInit = sites.add({.name = "blinktree.insert.value",
                               .manual = {.lazy = false, .logFree = true},
                               .origin = ValueOrigin::Input,
                               .targetsFreshAlloc = true,
                               .defUseDepth = 1});
    // Slot writes land in a *live* leaf, but into a slot whose bitmap
    // bit is clear, so the data is invisible until the publication bit
    // flips — a bitmap-guard argument the compiler pass cannot see.
    siteSlot = sites.add({.name = "blinktree.insert.slot",
                          .manual = {.lazy = false, .logFree = true},
                          .origin = ValueOrigin::Input,
                          .requiresDeepSemantics = true,
                          .defUseDepth = 2});
    // The single-word publication stores (bitmap set/clear, value
    // swing, high-key cut, residue sweep) rest on the
    // final-store-before-commit protocol — deep program semantics.
    sitePublish = sites.add({.name = "blinktree.insert.publish",
                             .manual = {.lazy = false, .logFree = true},
                             .origin = ValueOrigin::Computed,
                             .requiresDeepSemantics = true,
                             .defUseDepth = 4});
    siteUnpublish = sites.add({.name = "blinktree.remove.publish",
                               .manual = {.lazy = false, .logFree = true},
                               .origin = ValueOrigin::Computed,
                               .requiresDeepSemantics = true,
                               .defUseDepth = 4});
    siteValSwing = sites.add({.name = "blinktree.update.publish",
                              .manual = {.lazy = false, .logFree = true},
                              .origin = ValueOrigin::PmLoad,
                              .requiresDeepSemantics = true,
                              .defUseDepth = 5});
    siteHighKey = sites.add({.name = "blinktree.split.highKey",
                             .manual = {.lazy = false, .logFree = true},
                             .origin = ValueOrigin::PmLoad,
                             .requiresDeepSemantics = true,
                             .defUseDepth = 5});
    siteResidue = sites.add({.name = "blinktree.split.residue",
                             .manual = {.lazy = false, .logFree = true},
                             .origin = ValueOrigin::Computed,
                             .requiresDeepSemantics = true,
                             .defUseDepth = 4});
    // Internal-node edits stay classically logged (the rare path).
    siteLink = sites.add({.name = "blinktree.split.next",
                          .manual = {},
                          .origin = ValueOrigin::PmLoad,
                          .defUseDepth = 3});
    siteEntry = sites.add({.name = "blinktree.parent.entry",
                           .manual = {},
                           .origin = ValueOrigin::PmLoad,
                           .defUseDepth = 3});
    siteMeta = sites.add({.name = "blinktree.parent.meta",
                          .manual = {},
                          .origin = ValueOrigin::Computed,
                          .defUseDepth = 2});
    // The element count is rebuilt by recovery from the live bitmap
    // bits — a shallow fact Pattern 2 can prove on its own.
    siteCount = sites.add({.name = "blinktree.count",
                           .manual = {.lazy = true, .logFree = false},
                           .origin = ValueOrigin::Computed,
                           .rebuildable = true,
                           .defUseDepth = 3});

    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    headerAddr = sys.heap().alloc(HdrOff::size, seq);
    const Addr root = allocNode(sys, tagLeaf);
    sys.write<Addr>(headerAddr + HdrOff::root, root);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, 0);
    sys.writeRoot(headerRootSlot, headerAddr);
    tx.commit();
    sys.quiesce();
}

Addr
BlinkTreeWorkload::allocNode(PmContext &sys, std::uint64_t tag)
{
    const Addr node =
        sys.heap().alloc(NodeOff::size, sys.currentTxnSeq());
    sys.writeSite<std::uint64_t>(node + NodeOff::tag, tag,
                                 siteFreshNode);
    sys.writeSite<std::uint64_t>(node + NodeOff::meta, 0, siteFreshNode);
    sys.writeSite<std::uint64_t>(node + NodeOff::highKey, highInf,
                                 siteFreshNode);
    sys.writeSite<Addr>(node + NodeOff::next, 0, siteFreshNode);
    return node;
}

Addr
BlinkTreeWorkload::makeBlob(PmContext &sys,
                            const std::vector<std::uint8_t> &value)
{
    const Addr blob =
        sys.heap().alloc(8 + value.size(), sys.currentTxnSeq());
    sys.writeSite<std::uint64_t>(blob, value.size(), siteValueInit);
    if (!value.empty())
        sys.writeBytesSite(blob + 8, value.data(), value.size(),
                           siteValueInit);
    return blob;
}

BlinkTreeWorkload::Descent
BlinkTreeWorkload::descend(PmContext &sys, std::uint64_t key)
{
    Descent d;
    Addr node = sys.read<Addr>(headerAddr + HdrOff::root);
    while (sys.read<std::uint64_t>(node + NodeOff::tag) == tagInternal) {
        sys.compute(opcost::perLevel);
        const auto n = sys.read<std::uint64_t>(node + NodeOff::meta);
        std::uint64_t i = 0;
        while (i < n && key >= sys.read<std::uint64_t>(keyAddr(node, i)))
            ++i;
        d.path.push_back(node);
        d.idx.push_back(i);
        node = sys.read<Addr>(childAddr(node, i));
    }
    sys.compute(opcost::perLevel);
    d.leaf = node;
    return d;
}

std::uint64_t
BlinkTreeWorkload::liveMask(PmContext &sys, Addr leaf)
{
    const auto meta = sys.read<std::uint64_t>(leaf + NodeOff::meta);
    const auto high = sys.read<std::uint64_t>(leaf + NodeOff::highKey);
    std::uint64_t live = 0;
    for (std::uint64_t j = 0; j < leafSlots; ++j) {
        if (((meta >> j) & 1) &&
            sys.read<std::uint64_t>(keyAddr(leaf, j)) < high)
            live |= 1ULL << j;
    }
    return live;
}

std::uint64_t
BlinkTreeWorkload::residueMask(PmContext &sys, Addr leaf)
{
    return sys.read<std::uint64_t>(leaf + NodeOff::meta) &
           ~liveMask(sys, leaf);
}

std::uint64_t
BlinkTreeWorkload::findSlot(PmContext &sys, Addr leaf, std::uint64_t key)
{
    const auto live = liveMask(sys, leaf);
    for (std::uint64_t j = 0; j < leafSlots; ++j) {
        if (((live >> j) & 1) &&
            sys.read<std::uint64_t>(keyAddr(leaf, j)) == key)
            return j;
    }
    return leafSlots;
}

void
BlinkTreeWorkload::insertEntry(PmContext &sys, Addr node,
                               std::uint64_t sep, Addr child)
{
    const auto n = sys.read<std::uint64_t>(node + NodeOff::meta);
    std::uint64_t pos = 0;
    while (pos < n && sys.read<std::uint64_t>(keyAddr(node, pos)) < sep)
        ++pos;
    for (std::uint64_t i = n; i > pos; --i) {
        sys.writeSite<std::uint64_t>(
            keyAddr(node, i),
            sys.read<std::uint64_t>(keyAddr(node, i - 1)), siteEntry);
        sys.writeSite<Addr>(childAddr(node, i + 1),
                            sys.read<Addr>(childAddr(node, i)),
                            siteEntry);
    }
    sys.writeSite<std::uint64_t>(keyAddr(node, pos), sep, siteEntry);
    sys.writeSite<Addr>(childAddr(node, pos + 1), child, siteEntry);
    sys.writeSite<std::uint64_t>(node + NodeOff::meta, n + 1, siteMeta);
}

void
BlinkTreeWorkload::insertIntoParents(PmContext &sys, const Descent &d,
                                     std::uint64_t sep, Addr child)
{
    std::vector<Addr> path = d.path;
    std::uint64_t s = sep;
    Addr c = child;
    while (true) {
        if (path.empty()) {
            // Grow the tree: a fresh internal root over the old one.
            const Addr old_root =
                sys.read<Addr>(headerAddr + HdrOff::root);
            const Addr root = allocNode(sys, tagInternal);
            sys.writeSite<std::uint64_t>(keyAddr(root, 0), s,
                                         siteFreshNode);
            sys.writeSite<Addr>(childAddr(root, 0), old_root,
                                siteFreshNode);
            sys.writeSite<Addr>(childAddr(root, 1), c, siteFreshNode);
            sys.writeSite<std::uint64_t>(root + NodeOff::meta, 1,
                                         siteFreshNode);
            sys.writeSite<Addr>(headerAddr + HdrOff::root, root,
                                siteMeta);
            return;
        }
        const Addr node = path.back();
        path.pop_back();
        const auto n = sys.read<std::uint64_t>(node + NodeOff::meta);
        if (n < maxKeys) {
            insertEntry(sys, node, s, c);
            return;
        }
        // Split the full internal node: a fresh right sibling takes
        // the upper keys and the median separator moves up. Internal
        // splits are atomic (one logged transaction), so internal
        // nodes never carry a half-split state.
        const Addr sib = allocNode(sys, tagInternal);
        const std::uint64_t mid = maxKeys / 2;  // 3
        const auto median = sys.read<std::uint64_t>(keyAddr(node, mid));
        const std::uint64_t moved = maxKeys - mid - 1;  // 3
        for (std::uint64_t i = 0; i < moved; ++i) {
            sys.compute(opcost::perMove);
            sys.writeSite<std::uint64_t>(
                keyAddr(sib, i),
                sys.read<std::uint64_t>(keyAddr(node, mid + 1 + i)),
                siteFreshNode);
        }
        for (std::uint64_t i = 0; i <= moved; ++i) {
            sys.writeSite<Addr>(
                childAddr(sib, i),
                sys.read<Addr>(childAddr(node, mid + 1 + i)),
                siteFreshNode);
        }
        sys.writeSite<std::uint64_t>(sib + NodeOff::meta, moved,
                                     siteFreshNode);
        sys.writeSite<std::uint64_t>(node + NodeOff::meta, mid,
                                     siteMeta);
        if (s >= median)
            insertEntry(sys, sib, s, c);
        else
            insertEntry(sys, node, s, c);
        s = median;
        c = sib;
    }
}

void
BlinkTreeWorkload::sweepResidue(PmContext &sys, Addr leaf,
                                std::uint64_t mask)
{
    DurableTx tx(sys);
    const auto meta = sys.read<std::uint64_t>(leaf + NodeOff::meta);
    // Single-word final store, committed immediately: the stale bits
    // vanish atomically.
    sys.writeSite<std::uint64_t>(leaf + NodeOff::meta, meta & ~mask,
                                 siteResidue);
    tx.commit();
}

void
BlinkTreeWorkload::splitLeaf(PmContext &sys, const Descent &d)
{
    const Addr leaf = d.leaf;
    struct Entry
    {
        std::uint64_t key;
        Addr val;
        std::uint64_t slot;
    };
    std::vector<Entry> live;
    const auto mask = sys.read<std::uint64_t>(leaf + NodeOff::meta);
    for (std::uint64_t j = 0; j < leafSlots; ++j) {
        if ((mask >> j) & 1)
            live.push_back({sys.read<std::uint64_t>(keyAddr(leaf, j)),
                            sys.read<Addr>(valPtrAddr(leaf, j)), j});
    }
    std::sort(live.begin(), live.end(),
              [](const Entry &a, const Entry &b) { return a.key < b.key; });
    const std::uint64_t keep = leafSlots / 2 + 1;  // 4
    const std::uint64_t sep = live[keep].key;

    // Transaction A: build the fresh right sibling off to the side
    // (Pattern-1 log-free), link it (logged), then *cut the high key*
    // — the final single-word store that makes the split real.
    Addr sib = 0;
    {
        DurableTx tx(sys);
        sys.compute(opcost::insertBase / 2);
        sib = sys.heap().alloc(NodeOff::size, sys.currentTxnSeq());
        sys.writeSite<std::uint64_t>(sib + NodeOff::tag, tagLeaf,
                                     siteFreshNode);
        sys.writeSite<std::uint64_t>(
            sib + NodeOff::highKey,
            sys.read<std::uint64_t>(leaf + NodeOff::highKey),
            siteFreshNode);
        sys.writeSite<Addr>(sib + NodeOff::next,
                            sys.read<Addr>(leaf + NodeOff::next),
                            siteFreshNode);
        std::uint64_t sib_mask = 0;
        for (std::uint64_t i = keep; i < live.size(); ++i) {
            sys.compute(opcost::perMove);
            const std::uint64_t j = i - keep;
            sys.writeSite<std::uint64_t>(keyAddr(sib, j), live[i].key,
                                         siteFreshNode);
            sys.writeSite<Addr>(valPtrAddr(sib, j), live[i].val,
                                siteFreshNode);
            sib_mask |= 1ULL << j;
        }
        sys.writeSite<std::uint64_t>(sib + NodeOff::meta, sib_mask,
                                     siteFreshNode);
        sys.writeSite<Addr>(leaf + NodeOff::next, sib, siteLink);
        sys.writeSite<std::uint64_t>(leaf + NodeOff::highKey, sep,
                                     siteHighKey);
        tx.commit();
    }

    // Transaction B: the moved entries are now residue (key >= high
    // key) — sweep their stale bitmap bits.
    std::uint64_t moved_mask = 0;
    for (std::uint64_t i = keep; i < live.size(); ++i)
        moved_mask |= 1ULL << live[i].slot;
    sweepResidue(sys, leaf, moved_mask);

    // Transaction C: attach the sibling to the parent. A crash before
    // this point leaves the sibling reachable only through the chain;
    // the next writer (or recovery) performs this attach instead.
    DurableTx tx(sys);
    insertIntoParents(sys, d, sep, sib);
    tx.commit();
}

void
BlinkTreeWorkload::insert(PmContext &sys, std::uint64_t key,
                          const std::vector<std::uint8_t> &value)
{
    while (true) {
        const Descent d = descend(sys, key);
        const Addr leaf = d.leaf;
        const auto high =
            sys.read<std::uint64_t>(leaf + NodeOff::highKey);
        if (key >= high) {
            // Writers fix inconsistency: the leaf's right sibling
            // split off but never reached the parent. Attach it and
            // retry the descent.
            const Addr sib = sys.read<Addr>(leaf + NodeOff::next);
            DurableTx tx(sys);
            insertIntoParents(sys, d, high, sib);
            tx.commit();
            ++repairStats.parentFixes;
            continue;
        }
        const auto residue = residueMask(sys, leaf);
        if (residue) {
            // Stale bits from a split whose sweep never ran.
            sweepResidue(sys, leaf, residue);
            ++repairStats.residueSweeps;
            continue;
        }
        panicIfNot(findSlot(sys, leaf, key) == leafSlots,
                   "duplicate key inserted");
        const auto meta = sys.read<std::uint64_t>(leaf + NodeOff::meta);
        if (meta == fullMask) {
            splitLeaf(sys, d);
            continue;
        }
        std::uint64_t j = 0;
        while ((meta >> j) & 1)
            ++j;

        DurableTx tx(sys);
        sys.compute(opcost::insertBase +
                    opcost::valueWork(value.size()));
        const Addr blob = makeBlob(sys, value);
        // The slot is dead until its bitmap bit flips: these stores
        // are invisible whatever the crash outcome.
        sys.writeSite<std::uint64_t>(keyAddr(leaf, j), key, siteSlot);
        sys.writeSite<Addr>(valPtrAddr(leaf, j), blob, siteSlot);
        const auto cnt =
            sys.read<std::uint64_t>(headerAddr + HdrOff::count);
        sys.writeSite<std::uint64_t>(headerAddr + HdrOff::count,
                                     cnt + 1, siteCount);
        // Publish: flip the bit — final store, then commit.
        sys.writeSite<std::uint64_t>(leaf + NodeOff::meta,
                                     meta | (1ULL << j), sitePublish);
        tx.commit();
        return;
    }
}

bool
BlinkTreeWorkload::update(PmContext &sys, std::uint64_t key,
                          const std::vector<std::uint8_t> &value)
{
    // Readers (and updates, which touch no structure) chase the
    // sibling chain instead of fixing the parent.
    Addr leaf = descend(sys, key).leaf;
    while (leaf &&
           key >= sys.read<std::uint64_t>(leaf + NodeOff::highKey))
        leaf = sys.read<Addr>(leaf + NodeOff::next);
    if (!leaf)
        return false;
    const auto j = findSlot(sys, leaf, key);
    if (j == leafSlots)
        return false;

    DurableTx tx(sys);
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));
    const Addr blob = makeBlob(sys, value);
    const Addr old = sys.read<Addr>(valPtrAddr(leaf, j));
    // Single-word publication of the fresh blob (final store).
    sys.writeSite<Addr>(valPtrAddr(leaf, j), blob, siteValSwing);
    tx.commit();
    sys.heap().free(old);
    return true;
}

bool
BlinkTreeWorkload::lookup(PmContext &sys, std::uint64_t key,
                          std::vector<std::uint8_t> *out)
{
    Addr leaf = descend(sys, key).leaf;
    while (leaf &&
           key >= sys.read<std::uint64_t>(leaf + NodeOff::highKey))
        leaf = sys.read<Addr>(leaf + NodeOff::next);
    if (!leaf)
        return false;
    const auto j = findSlot(sys, leaf, key);
    if (j == leafSlots)
        return false;
    if (out) {
        const Addr blob = sys.read<Addr>(valPtrAddr(leaf, j));
        const auto len = sys.read<std::uint64_t>(blob);
        out->resize(len);
        if (len)
            sys.readBytes(blob + 8, out->data(), len);
    }
    return true;
}

bool
BlinkTreeWorkload::remove(PmContext &sys, std::uint64_t key)
{
    while (true) {
        const Descent d = descend(sys, key);
        const Addr leaf = d.leaf;
        const auto high =
            sys.read<std::uint64_t>(leaf + NodeOff::highKey);
        if (key >= high) {
            const Addr sib = sys.read<Addr>(leaf + NodeOff::next);
            DurableTx tx(sys);
            insertIntoParents(sys, d, high, sib);
            tx.commit();
            ++repairStats.parentFixes;
            continue;
        }
        const auto residue = residueMask(sys, leaf);
        if (residue) {
            sweepResidue(sys, leaf, residue);
            ++repairStats.residueSweeps;
            continue;
        }
        const auto j = findSlot(sys, leaf, key);
        if (j == leafSlots)
            return false;

        DurableTx tx(sys);
        sys.compute(opcost::insertBase / 2);
        const auto cnt =
            sys.read<std::uint64_t>(headerAddr + HdrOff::count);
        sys.writeSite<std::uint64_t>(headerAddr + HdrOff::count,
                                     cnt - 1, siteCount);
        const Addr blob = sys.read<Addr>(valPtrAddr(leaf, j));
        const auto meta = sys.read<std::uint64_t>(leaf + NodeOff::meta);
        // Unpublish: clear the bit — final store, then commit. The
        // slot data stays behind as dead space.
        sys.writeSite<std::uint64_t>(leaf + NodeOff::meta,
                                     meta & ~(1ULL << j),
                                     siteUnpublish);
        tx.commit();
        sys.heap().free(blob);
        return true;
    }
}

std::size_t
BlinkTreeWorkload::count(PmContext &sys)
{
    return sys.read<std::uint64_t>(headerAddr + HdrOff::count);
}

void
BlinkTreeWorkload::collectNodes(PmContext &sys, Addr node,
                                std::vector<Addr> *internals,
                                std::vector<Addr> *leaves)
{
    if (sys.peek<std::uint64_t>(node + NodeOff::tag) == tagLeaf) {
        leaves->push_back(node);
        return;
    }
    internals->push_back(node);
    const auto n = sys.peek<std::uint64_t>(node + NodeOff::meta);
    for (std::uint64_t i = 0; i <= n; ++i)
        collectNodes(sys, sys.peek<Addr>(childAddr(node, i)), internals,
                     leaves);
}

void
BlinkTreeWorkload::recover(PmContext &sys)
{
    headerAddr = sys.peek<Addr>(sys.rootSlotAddr(headerRootSlot));

    // Recovery is just the writers-fix discipline run to fixpoint:
    // attach any leaf reachable through the sibling chain but missing
    // from its parent (crash between a split's cut and its attach).
    while (true) {
        std::vector<Addr> internals;
        std::vector<Addr> leaves;
        collectNodes(sys, sys.peek<Addr>(headerAddr + HdrOff::root),
                     &internals, &leaves);
        const std::set<Addr> attached(leaves.begin(), leaves.end());
        Addr fix_left = 0;
        Addr fix_child = 0;
        Addr cur = leaves.front();
        while (true) {
            const Addr nxt = sys.peek<Addr>(cur + NodeOff::next);
            if (!nxt)
                break;
            if (!attached.count(nxt)) {
                fix_left = cur;
                fix_child = nxt;
                break;
            }
            cur = nxt;
        }
        if (!fix_child)
            break;
        // The detached sibling covers [fix_left.highKey, ...): descend
        // for that key to rebuild the parent path, then attach.
        const auto sep =
            sys.peek<std::uint64_t>(fix_left + NodeOff::highKey);
        const Descent d = descend(sys, sep);
        DurableTx tx(sys);
        insertIntoParents(sys, d, sep, fix_child);
        tx.commit();
        ++repairStats.parentFixes;
    }

    // Sweep stale bitmap residue and recount the lazy element count.
    std::vector<Addr> internals;
    std::vector<Addr> leaves;
    collectNodes(sys, sys.peek<Addr>(headerAddr + HdrOff::root),
                 &internals, &leaves);
    DurableTx tx(sys);
    std::size_t live_total = 0;
    for (const Addr leaf : leaves) {
        const auto residue = residueMask(sys, leaf);
        const auto meta = sys.read<std::uint64_t>(leaf + NodeOff::meta);
        if (residue) {
            sys.write<std::uint64_t>(leaf + NodeOff::meta,
                                     meta & ~residue);
            ++repairStats.residueSweeps;
        }
        live_total += bitCount(meta & ~residue);
    }
    if (sys.read<std::uint64_t>(headerAddr + HdrOff::count) !=
        live_total)
        ++repairStats.countFixes;
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, live_total);
    tx.commit();

    std::vector<Addr> reachable = {headerAddr};
    for (const Addr n : internals)
        reachable.push_back(n);
    for (const Addr leaf : leaves) {
        reachable.push_back(leaf);
        const auto meta = sys.peek<std::uint64_t>(leaf + NodeOff::meta);
        for (std::uint64_t j = 0; j < leafSlots; ++j) {
            if ((meta >> j) & 1)
                reachable.push_back(sys.peek<Addr>(valPtrAddr(leaf, j)));
        }
    }
    sys.heap().rebuild(reachable);
    sys.quiesce();
}

bool
BlinkTreeWorkload::checkNode(PmContext &sys, Addr node, std::uint64_t lo,
                             std::uint64_t hi, std::size_t depth,
                             std::size_t *leaf_depth, std::size_t *n,
                             Addr *prev_leaf, std::string *why)
{
    if (!node)
        return failCheck(why, "missing node");
    const auto tag = sys.read<std::uint64_t>(node + NodeOff::tag);
    if (tag == tagLeaf) {
        if (*leaf_depth == 0)
            *leaf_depth = depth;
        else if (*leaf_depth != depth)
            return failCheck(why, "leaves at different depths");
        if (sys.read<std::uint64_t>(node + NodeOff::highKey) != hi)
            return failCheck(why, "leaf high key does not match range");
        if (*prev_leaf &&
            sys.read<Addr>(*prev_leaf + NodeOff::next) != node)
            return failCheck(why, "sibling chain breaks tree order");
        *prev_leaf = node;
        const auto meta = sys.read<std::uint64_t>(node + NodeOff::meta);
        if (meta & ~fullMask)
            return failCheck(why, "bitmap bits beyond slot range");
        std::vector<std::uint64_t> keys;
        for (std::uint64_t j = 0; j < leafSlots; ++j) {
            if (!((meta >> j) & 1))
                continue;
            const auto k = sys.read<std::uint64_t>(keyAddr(node, j));
            if (k >= hi)
                continue;  // stale residue is a benign state
            if (k < lo)
                return failCheck(why, "live key below subtree range");
            if (sys.read<Addr>(valPtrAddr(node, j)) == 0)
                return failCheck(why, "live slot missing value");
            keys.push_back(k);
        }
        std::sort(keys.begin(), keys.end());
        for (std::size_t i = 1; i < keys.size(); ++i) {
            if (keys[i] == keys[i - 1])
                return failCheck(why, "duplicate live key in leaf");
        }
        *n += keys.size();
        return true;
    }
    if (tag != tagInternal)
        return failCheck(why, "bad node tag");
    const auto nk = sys.read<std::uint64_t>(node + NodeOff::meta);
    if (nk < 1 || nk > maxKeys)
        return failCheck(why, "internal key count out of range");
    if (sys.read<std::uint64_t>(node + NodeOff::highKey) != highInf ||
        sys.read<Addr>(node + NodeOff::next) != 0)
        return failCheck(why, "internal node half split");
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < nk; ++i) {
        const auto k = sys.read<std::uint64_t>(keyAddr(node, i));
        if (k < lo || k >= hi)
            return failCheck(why, "separator outside subtree range");
        if (i > 0 && k <= prev)
            return failCheck(why, "separator order violated");
        prev = k;
    }
    std::uint64_t child_lo = lo;
    for (std::uint64_t i = 0; i <= nk; ++i) {
        const std::uint64_t child_hi =
            i < nk ? sys.read<std::uint64_t>(keyAddr(node, i)) : hi;
        if (!checkNode(sys, sys.read<Addr>(childAddr(node, i)), child_lo,
                       child_hi, depth + 1, leaf_depth, n, prev_leaf,
                       why))
            return false;
        child_lo = child_hi;
    }
    return true;
}

bool
BlinkTreeWorkload::checkConsistency(PmContext &sys, std::string *why)
{
    std::size_t leaf_depth = 0;
    std::size_t n = 0;
    Addr prev_leaf = 0;
    if (!checkNode(sys, sys.read<Addr>(headerAddr + HdrOff::root), 0,
                   highInf, 1, &leaf_depth, &n, &prev_leaf, why))
        return false;
    if (prev_leaf && sys.read<Addr>(prev_leaf + NodeOff::next) != 0)
        return failCheck(why, "sibling chain past rightmost leaf");
    if (n != sys.read<std::uint64_t>(headerAddr + HdrOff::count))
        return failCheck(why, "count mismatch");
    return true;
}

} // namespace slpmt
