#include "workloads/skiplist.hh"

#include "common/rng.hh"

namespace slpmt
{

std::uint64_t
SkipListWorkload::towerHeight(std::uint64_t key)
{
    // Deterministic geometric height (p = 1/4): the structure's shape
    // is a pure function of its key set, so recovery and the deep
    // checker can re-derive every tower.
    std::uint64_t u = mix64Salted(key, 0x5ee7'11f7'0f5a'1e51ULL);
    std::uint64_t h = 1;
    while (h < maxHeight && (u & 3) == 0) {
        ++h;
        u >>= 2;
    }
    return h;
}

void
SkipListWorkload::setup(PmContext &sys)
{
    auto &sites = sys.sites();
    siteFreshNode = sites.add({.name = "skiplist.insert.freshNode",
                               .manual = {.lazy = false, .logFree = true},
                               .origin = ValueOrigin::PmLoad,
                               .targetsFreshAlloc = true,
                               .defUseDepth = 3});
    siteValueInit = sites.add({.name = "skiplist.insert.value",
                               .manual = {.lazy = false, .logFree = true},
                               .origin = ValueOrigin::Input,
                               .targetsFreshAlloc = true,
                               .defUseDepth = 1});
    // Tower links above level 0 are rebuilt from the durable level-0
    // chain by recovery: a shallow value-flow fact (the link target is
    // the address the transaction just allocated), so Pattern 2 can
    // prove them lazy without deep semantics.
    siteUpperLink = sites.add({.name = "skiplist.insert.upperLink",
                               .manual = {.lazy = true, .logFree = false},
                               .origin = ValueOrigin::PmLoad,
                               .rebuildable = true,
                               .defUseDepth = 4});
    // The single-word publication/unlink stores target *live* nodes;
    // their log-freedom rests on the final-store-before-commit
    // protocol — deep program semantics the compiler pass refuses.
    sitePublish = sites.add({.name = "skiplist.insert.publish",
                             .manual = {.lazy = false, .logFree = true},
                             .origin = ValueOrigin::PmLoad,
                             .requiresDeepSemantics = true,
                             .defUseDepth = 5});
    siteUnlink = sites.add({.name = "skiplist.remove.unlink",
                            .manual = {.lazy = false, .logFree = true},
                            .origin = ValueOrigin::PmLoad,
                            .requiresDeepSemantics = true,
                            .defUseDepth = 5});
    siteDeadMark = sites.add({.name = "skiplist.remove.deadMark",
                              .manual = {.lazy = true, .logFree = true},
                              .origin = ValueOrigin::Constant,
                              .targetsDeadRegion = true,
                              .defUseDepth = 1});
    siteCount = sites.add({.name = "skiplist.count",
                           .manual = {.lazy = true, .logFree = false},
                           .origin = ValueOrigin::Computed,
                           .rebuildable = true,
                           .requiresDeepSemantics = true,
                           .defUseDepth = 3});

    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    headerAddr = sys.heap().alloc(HdrOff::size, seq);
    const Addr head = sys.heap().alloc(NodeOff::size, seq);
    sys.write<std::uint64_t>(head + NodeOff::key, 0);
    sys.write<std::uint64_t>(head + NodeOff::height, maxHeight);
    sys.write<Addr>(head + NodeOff::valPtr, 0);
    sys.write<std::uint64_t>(head + NodeOff::deadMark, 0);
    for (std::uint64_t i = 0; i < maxHeight; ++i)
        sys.write<Addr>(nextAddr(head, i), 0);
    sys.write<Addr>(headerAddr + HdrOff::head, head);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, 0);
    sys.writeRoot(headerRootSlot, headerAddr);
    tx.commit();
    sys.quiesce();
}

void
SkipListWorkload::search(PmContext &sys, std::uint64_t key, Addr *preds,
                         Addr *succs)
{
    Addr cur = sys.read<Addr>(headerAddr + HdrOff::head);
    for (std::uint64_t i = maxHeight; i-- > 0;) {
        sys.compute(opcost::perLevel);
        while (true) {
            const Addr nxt = sys.read<Addr>(nextAddr(cur, i));
            if (!nxt ||
                sys.read<std::uint64_t>(nxt + NodeOff::key) >= key) {
                preds[i] = cur;
                succs[i] = nxt;
                break;
            }
            cur = nxt;
            sys.compute(opcost::perLevel);
        }
    }
}

Addr
SkipListWorkload::makeBlob(PmContext &sys,
                           const std::vector<std::uint8_t> &value)
{
    const Addr blob =
        sys.heap().alloc(8 + value.size(), sys.currentTxnSeq());
    sys.writeSite<std::uint64_t>(blob, value.size(), siteValueInit);
    if (!value.empty())
        sys.writeBytesSite(blob + 8, value.data(), value.size(),
                           siteValueInit);
    return blob;
}

void
SkipListWorkload::insert(PmContext &sys, std::uint64_t key,
                         const std::vector<std::uint8_t> &value)
{
    Addr preds[maxHeight];
    Addr succs[maxHeight];
    search(sys, key, preds, succs);
    if (succs[0])
        panicIfNot(sys.read<std::uint64_t>(succs[0] + NodeOff::key) !=
                       key,
                   "duplicate key inserted");
    const std::uint64_t h = towerHeight(key);

    DurableTx tx(sys);
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));
    const std::uint64_t seq = sys.currentTxnSeq();

    // Prepare: fresh blob and node, initialised with Pattern-1
    // log-free stores. A crash leaks both; recovery's GC reclaims.
    const Addr blob = makeBlob(sys, value);
    const Addr node = sys.heap().alloc(NodeOff::size, seq);
    sys.writeSite<std::uint64_t>(node + NodeOff::key, key,
                                 siteFreshNode);
    sys.writeSite<std::uint64_t>(node + NodeOff::height, h,
                                 siteFreshNode);
    sys.writeSite<Addr>(node + NodeOff::valPtr, blob, siteFreshNode);
    sys.writeSite<std::uint64_t>(node + NodeOff::deadMark, 0,
                                 siteFreshNode);
    for (std::uint64_t i = 0; i < h; ++i)
        sys.writeSite<Addr>(nextAddr(node, i), succs[i], siteFreshNode);

    // Lazy metadata, rebuilt from the level-0 chain by recovery.
    const auto cnt =
        sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    sys.writeSite<std::uint64_t>(headerAddr + HdrOff::count, cnt + 1,
                                 siteCount);
    for (std::uint64_t i = h; i-- > 1;)
        sys.writeSite<Addr>(nextAddr(preds[i], i), node, siteUpperLink);

    // Publish: the last store of the transaction, immediately followed
    // by the commit — durable exactly when the transaction is, so the
    // single word needs no log record.
    sys.writeSite<Addr>(nextAddr(preds[0], 0), node, sitePublish);
    tx.commit();
}

bool
SkipListWorkload::update(PmContext &sys, std::uint64_t key,
                         const std::vector<std::uint8_t> &value)
{
    Addr preds[maxHeight];
    Addr succs[maxHeight];
    search(sys, key, preds, succs);
    const Addr node = succs[0];
    if (!node || sys.read<std::uint64_t>(node + NodeOff::key) != key)
        return false;

    DurableTx tx(sys);
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));
    const Addr blob = makeBlob(sys, value);
    const Addr old = sys.read<Addr>(node + NodeOff::valPtr);
    // Single-word publication of the fresh blob (final store).
    sys.writeSite<Addr>(node + NodeOff::valPtr, blob, sitePublish);
    tx.commit();
    sys.heap().free(old);
    return true;
}

bool
SkipListWorkload::lookup(PmContext &sys, std::uint64_t key,
                         std::vector<std::uint8_t> *out)
{
    Addr preds[maxHeight];
    Addr succs[maxHeight];
    search(sys, key, preds, succs);
    const Addr node = succs[0];
    if (!node || sys.read<std::uint64_t>(node + NodeOff::key) != key)
        return false;
    if (out) {
        const Addr blob = sys.read<Addr>(node + NodeOff::valPtr);
        const auto len = sys.read<std::uint64_t>(blob);
        out->resize(len);
        if (len)
            sys.readBytes(blob + 8, out->data(), len);
    }
    return true;
}

bool
SkipListWorkload::remove(PmContext &sys, std::uint64_t key)
{
    Addr preds[maxHeight];
    Addr succs[maxHeight];
    search(sys, key, preds, succs);
    const Addr node = succs[0];
    if (!node || sys.read<std::uint64_t>(node + NodeOff::key) != key)
        return false;

    DurableTx tx(sys);
    sys.compute(opcost::insertBase / 2);
    const auto h = sys.read<std::uint64_t>(node + NodeOff::height);
    const auto cnt =
        sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    sys.writeSite<std::uint64_t>(headerAddr + HdrOff::count, cnt - 1,
                                 siteCount);
    for (std::uint64_t i = h; i-- > 1;) {
        if (sys.read<Addr>(nextAddr(preds[i], i)) == node)
            sys.writeSite<Addr>(nextAddr(preds[i], i),
                                sys.read<Addr>(nextAddr(node, i)),
                                siteUpperLink);
    }
    // Pattern 1b: the node dies with this transaction. The mark is
    // advisory — nothing on the live path reads it — so it is
    // harmless if it becomes durable while the transaction aborts.
    sys.writeSite<std::uint64_t>(node + NodeOff::deadMark, 1,
                                 siteDeadMark);
    const Addr blob = sys.read<Addr>(node + NodeOff::valPtr);
    const Addr succ0 = sys.read<Addr>(nextAddr(node, 0));
    // Unpublish: single-word final store, then commit.
    sys.writeSite<Addr>(nextAddr(preds[0], 0), succ0, siteUnlink);
    tx.commit();
    sys.heap().free(node);
    sys.heap().free(blob);
    return true;
}

std::size_t
SkipListWorkload::count(PmContext &sys)
{
    return sys.read<std::uint64_t>(headerAddr + HdrOff::count);
}

void
SkipListWorkload::recover(PmContext &sys)
{
    headerAddr = sys.peek<Addr>(sys.rootSlotAddr(headerRootSlot));
    const Addr head = sys.peek<Addr>(headerAddr + HdrOff::head);

    // The durable level-0 chain is the ground truth: publication and
    // unlink stores are only durable when their transactions
    // committed, so the chain holds exactly the committed keys.
    std::vector<Addr> chain;
    std::vector<Addr> reachable = {headerAddr, head};
    for (Addr n = sys.peek<Addr>(nextAddr(head, 0)); n;
         n = sys.peek<Addr>(nextAddr(n, 0))) {
        chain.push_back(n);
        reachable.push_back(n);
        reachable.push_back(sys.peek<Addr>(n + NodeOff::valPtr));
    }

    DurableTx tx(sys);
    // Rebuild the lazy tower links level by level from the chain.
    for (std::uint64_t lvl = 1; lvl < maxHeight; ++lvl) {
        Addr prev = head;
        for (Addr n : chain) {
            if (sys.peek<std::uint64_t>(n + NodeOff::height) <= lvl)
                continue;
            if (sys.read<Addr>(nextAddr(prev, lvl)) != n) {
                sys.write<Addr>(nextAddr(prev, lvl), n);
                ++repairStats.upperLinks;
            }
            prev = n;
        }
        if (sys.read<Addr>(nextAddr(prev, lvl)) != 0) {
            sys.write<Addr>(nextAddr(prev, lvl), 0);
            ++repairStats.upperLinks;
        }
    }
    // Clear advisory dead marks left by interrupted removals.
    for (Addr n : chain) {
        if (sys.read<std::uint64_t>(n + NodeOff::deadMark) != 0) {
            sys.write<std::uint64_t>(n + NodeOff::deadMark, 0);
            ++repairStats.deadMarks;
        }
    }
    // The count word is lazy: recount from the chain.
    if (sys.read<std::uint64_t>(headerAddr + HdrOff::count) !=
        chain.size())
        ++repairStats.countFixes;
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, chain.size());
    tx.commit();
    sys.heap().rebuild(reachable);
    sys.quiesce();
}

bool
SkipListWorkload::checkConsistency(PmContext &sys, std::string *why)
{
    const Addr head = sys.read<Addr>(headerAddr + HdrOff::head);
    if (!head)
        return failCheck(why, "missing head tower");

    std::vector<Addr> chain;
    bool first = true;
    std::uint64_t prev_key = 0;
    for (Addr n = sys.read<Addr>(nextAddr(head, 0)); n;
         n = sys.read<Addr>(nextAddr(n, 0))) {
        const auto k = sys.read<std::uint64_t>(n + NodeOff::key);
        const auto h = sys.read<std::uint64_t>(n + NodeOff::height);
        if (h < 1 || h > maxHeight)
            return failCheck(why, "tower height out of range");
        if (h != towerHeight(k))
            return failCheck(why, "tower height does not match key");
        if (!first && k <= prev_key)
            return failCheck(why, "level-0 key order violated");
        prev_key = k;
        first = false;
        chain.push_back(n);
    }

    // Every upper level must be exactly the subsequence of the
    // level-0 chain whose towers reach it.
    for (std::uint64_t lvl = 1; lvl < maxHeight; ++lvl) {
        Addr cur = sys.read<Addr>(nextAddr(head, lvl));
        for (Addr n : chain) {
            if (sys.read<std::uint64_t>(n + NodeOff::height) <= lvl)
                continue;
            if (cur != n)
                return failCheck(why, "tower link mismatch at level " +
                                          std::to_string(lvl));
            cur = sys.read<Addr>(nextAddr(n, lvl));
        }
        if (cur != 0)
            return failCheck(why, "dangling tower link at level " +
                                      std::to_string(lvl));
    }

    if (chain.size() !=
        sys.read<std::uint64_t>(headerAddr + HdrOff::count))
        return failCheck(why, "count mismatch");
    return true;
}

} // namespace slpmt
