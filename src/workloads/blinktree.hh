/**
 * @file
 * blinktree: a RECIPE-style durable B-link tree.
 *
 * Leaves keep their entries in *unsorted* slots guarded by a validity
 * bitmap plus a high key and a right-sibling link (Lehman/Yao). A slot
 * is logically live iff its bitmap bit is set AND its key is below the
 * leaf's high key — so every mutation reduces to one final single-word
 * publication store: entry insert/remove flip a bitmap bit, updates
 * swing a value pointer, and a leaf split *cuts the high key* after
 * building the fresh right sibling and linking it. The intermediate
 * states a crash can expose (bitmap residue above the high key, a
 * sibling linked but missing from its parent) are benign
 * inconsistencies that the next writer or recovery repairs — the
 * RECIPE "writers fix inconsistency" discipline.
 *
 * Under SLPMT the sibling build is Pattern-1 log-free (fresh
 * allocation), slot pre-publication writes and every single-word
 * publication are manually annotated log-free (deep-semantics
 * justifications — bitmap guard, final-store-before-commit — that the
 * compiler pass refuses), and the element count is Pattern-2 lazy.
 * Internal nodes stay classically logged: they are the rare path, and
 * the contrast against the log-free leaf fast path is the point.
 */

#ifndef SLPMT_WORKLOADS_BLINKTREE_HH
#define SLPMT_WORKLOADS_BLINKTREE_HH

#include "workloads/workload.hh"

namespace slpmt
{

/** The durable log-free B-link tree. */
class BlinkTreeWorkload : public Workload
{
  public:
    static constexpr std::size_t headerRootSlot = 9;

    /** Slots per leaf (bitmap bits) and keys per internal node. */
    static constexpr std::uint64_t leafSlots = 7;
    static constexpr std::uint64_t maxKeys = 7;
    static constexpr std::uint64_t fullMask = (1ULL << leafSlots) - 1;

    std::string name() const override { return "blinktree"; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<BlinkTreeWorkload>(*this);
    }
    void setup(PmContext &sys) override;
    void insert(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    bool update(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    bool lookup(PmContext &sys, std::uint64_t key,
                std::vector<std::uint8_t> *out) override;
    bool remove(PmContext &sys, std::uint64_t key) override;
    std::size_t count(PmContext &sys) override;
    void recover(PmContext &sys) override;
    bool checkConsistency(PmContext &sys, std::string *why) override;

    /** Writers-fix-inconsistency events (writers and recover()). */
    struct RepairStats
    {
        std::uint64_t parentFixes = 0;    //!< siblings attached late
        std::uint64_t residueSweeps = 0;  //!< stale bitmap bits swept
        std::uint64_t countFixes = 0;     //!< element count recomputed

        std::uint64_t
        total() const
        {
            return parentFixes + residueSweeps + countFixes;
        }
    };
    const RepairStats &repairs() const { return repairStats; }

  private:
    static constexpr std::uint64_t tagLeaf = 0;
    static constexpr std::uint64_t tagInternal = 1;

    /** Exclusive upper bound of the rightmost node at each level. */
    static constexpr std::uint64_t highInf = ~std::uint64_t{0};

    /**
     * Node layout (words): tag, meta (leaf: bitmap; internal:
     * numKeys), highKey, next, keys[7], then leaf: valPtrs[7] /
     * internal: children[8]. A uniform 19-word (152-byte) allocation
     * covers both. Internal nodes are never half-split (their edits
     * are single logged transactions), so they keep highKey = inf and
     * next = 0.
     */
    struct NodeOff
    {
        static constexpr Bytes tag = 0;
        static constexpr Bytes meta = 8;
        static constexpr Bytes highKey = 16;
        static constexpr Bytes next = 24;
        static constexpr Bytes keys = 32;                 // 7 words
        static constexpr Bytes valPtrs = keys + 7 * 8;    // 7 words
        static constexpr Bytes children = keys + 7 * 8;   // 8 words
        static constexpr Bytes size = children + 8 * 8;
    };

    struct HdrOff
    {
        static constexpr Bytes root = 0;
        static constexpr Bytes count = 8;
        static constexpr Bytes size = 16;
    };

    Addr keyAddr(Addr n, std::uint64_t i) const
    {
        return n + NodeOff::keys + i * 8;
    }
    Addr valPtrAddr(Addr n, std::uint64_t i) const
    {
        return n + NodeOff::valPtrs + i * 8;
    }
    Addr childAddr(Addr n, std::uint64_t i) const
    {
        return n + NodeOff::children + i * 8;
    }

    /** Root-to-leaf walk for @p key (no sibling chasing). */
    struct Descent
    {
        std::vector<Addr> path;          //!< internal nodes, root first
        std::vector<std::uint64_t> idx;  //!< child index taken at each
        Addr leaf = 0;
    };
    Descent descend(PmContext &sys, std::uint64_t key);

    /** Bitmap bits that are logically live / stale residue. */
    std::uint64_t liveMask(PmContext &sys, Addr leaf);
    std::uint64_t residueMask(PmContext &sys, Addr leaf);

    /** Live slot index holding @p key, or leafSlots when absent. */
    std::uint64_t findSlot(PmContext &sys, Addr leaf, std::uint64_t key);

    Addr allocNode(PmContext &sys, std::uint64_t tag);
    Addr makeBlob(PmContext &sys,
                  const std::vector<std::uint8_t> &value);

    /**
     * Insert separator @p sep with right child @p child into the
     * parent stack of @p d (cascading internal splits, new root if
     * needed). Runs inside the caller's open transaction: internal
     * edits are classically logged, so the whole fix is atomic.
     */
    void insertIntoParents(PmContext &sys, const Descent &d,
                           std::uint64_t sep, Addr child);

    /** Sorted separator/child insert into a non-full internal node. */
    void insertEntry(PmContext &sys, Addr node, std::uint64_t sep,
                     Addr child);

    /** Split the full leaf of @p d (three transactions: build+cut,
     *  residue sweep, parent attach). */
    void splitLeaf(PmContext &sys, const Descent &d);

    /** Sweep stale bitmap residue off @p leaf (one transaction). */
    void sweepResidue(PmContext &sys, Addr leaf, std::uint64_t mask);

    bool checkNode(PmContext &sys, Addr node, std::uint64_t lo,
                   std::uint64_t hi, std::size_t depth,
                   std::size_t *leaf_depth, std::size_t *n,
                   Addr *prev_leaf, std::string *why);

    void collectNodes(PmContext &sys, Addr node,
                      std::vector<Addr> *internals,
                      std::vector<Addr> *leaves);

    SiteId siteFreshNode = 0;  //!< sibling/root build (Pattern 1a)
    SiteId siteValueInit = 0;  //!< blob init (Pattern 1a)
    SiteId siteSlot = 0;       //!< slot write under bitmap guard (deep)
    SiteId sitePublish = 0;    //!< bitmap set (deep, final store)
    SiteId siteUnpublish = 0;  //!< bitmap clear (deep, final store)
    SiteId siteValSwing = 0;   //!< value-pointer swing (deep, final)
    SiteId siteHighKey = 0;    //!< split cut (deep, final store)
    SiteId siteResidue = 0;    //!< residue sweep (deep, final store)
    SiteId siteLink = 0;       //!< sibling link (logged)
    SiteId siteEntry = 0;      //!< internal entry shifts (logged)
    SiteId siteMeta = 0;       //!< internal numKeys / root (logged)
    SiteId siteCount = 0;      //!< element count (Pattern 2, lazy)

    Addr headerAddr = 0;
    RepairStats repairStats;
};

} // namespace slpmt

#endif // SLPMT_WORKLOADS_BLINKTREE_HH
