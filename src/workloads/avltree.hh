/**
 * @file
 * AVL self-balancing tree (Table II: no parent pointer in the node).
 *
 * Annotation design:
 *  - Fresh node and value initialisation: log-free eager (Pattern 1).
 *  - Child-pointer updates (rotations, link-in) and the root: normal
 *    logged stores — they are the durable skeleton.
 *  - Height updates: lazy + logged. Heights are pure functions of the
 *    durable child links, so recovery recomputes them bottom-up
 *    (Pattern 2); like the rbtree colour, the justification needs
 *    deep semantics, so the compiler pass misses it (the paper's
 *    "counters of the nodes").
 *  - The element count: lazy + logged (recount on recovery).
 */

#ifndef SLPMT_WORKLOADS_AVLTREE_HH
#define SLPMT_WORKLOADS_AVLTREE_HH

#include "workloads/workload.hh"

namespace slpmt
{

/** The durable AVL tree. */
class AvlTreeWorkload : public Workload
{
  public:
    static constexpr std::size_t headerRootSlot = 4;

    std::string name() const override { return "avl"; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<AvlTreeWorkload>(*this);
    }
    void setup(PmContext &sys) override;
    void insert(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    bool lookup(PmContext &sys, std::uint64_t key,
                std::vector<std::uint8_t> *out) override;
    bool update(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    std::size_t count(PmContext &sys) override;
    void recover(PmContext &sys) override;
    bool checkConsistency(PmContext &sys, std::string *why) override;

  private:
    struct NodeOff
    {
        static constexpr Bytes key = 0;
        static constexpr Bytes left = 8;
        static constexpr Bytes right = 16;
        static constexpr Bytes height = 24;
        static constexpr Bytes valPtr = 32;
        static constexpr Bytes valLen = 40;
        static constexpr Bytes size = 48;
    };

    struct HdrOff
    {
        static constexpr Bytes root = 0;
        static constexpr Bytes count = 8;
        static constexpr Bytes size = 16;
    };

    std::uint64_t heightOf(PmContext &sys, Addr node);
    void updateHeight(PmContext &sys, Addr node);
    Addr rotateLeft(PmContext &sys, Addr x);
    Addr rotateRight(PmContext &sys, Addr x);
    Addr rebalance(PmContext &sys, Addr node);

    /** Recursive insert; returns the (possibly new) subtree root. */
    Addr insertRec(PmContext &sys, Addr node, std::uint64_t key,
                   Addr val_ptr, std::uint64_t val_len);

    /** Recovery: recompute heights bottom-up from durable links. */
    std::uint64_t recomputeHeights(PmContext &sys, Addr node,
                                   std::size_t *n,
                                   std::vector<Addr> *reachable);

    bool checkNode(PmContext &sys, Addr node, std::uint64_t lo,
                   std::uint64_t hi, std::uint64_t *height,
                   std::size_t *n, std::string *why);

    SiteId siteNodeInit = 0;
    SiteId siteValueInit = 0;
    SiteId siteChild = 0;
    SiteId siteHeight = 0;
    SiteId siteRoot = 0;
    SiteId siteCount = 0;

    Addr headerAddr = 0;
};

} // namespace slpmt

#endif // SLPMT_WORKLOADS_AVLTREE_HH
