/**
 * @file
 * Seeded open-loop load generator for the sharded KV service.
 *
 * Where ycsb.hh reproduces the paper's insert-only load phase, this
 * generator models the serving traffic of ROADMAP item 1: YCSB A-F
 * operation mixes over a key universe of millions of distinct keys,
 * with uniform or Zipfian (theta = 0.99 by default) request skew,
 * variable value sizes, and optional hot-key churn (the Zipfian hot
 * set rotates every churnInterval ops, modelling trending keys).
 *
 * Everything is a pure function of the config: the same seed yields
 * the same preload and op streams byte for byte, so service runs can
 * be pinned like every other figure. Ranks are drawn with the Gray
 * et al. bounded-Zipfian recurrence (the YCSB generator); the zeta
 * sum grows incrementally as inserts extend the loaded record set.
 */

#ifndef SLPMT_WORKLOADS_LOADGEN_HH
#define SLPMT_WORKLOADS_LOADGEN_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{

/** Request-skew distributions of the service load. */
enum class KeySkew : std::uint8_t
{
    Uniform,
    Zipfian,
};

/** The standard YCSB core workload mixes. */
enum class YcsbMix : std::uint8_t
{
    A,  //!< 50% read / 50% update
    B,  //!< 95% read / 5% update
    C,  //!< 100% read
    D,  //!< 95% read (latest) / 5% insert
    E,  //!< 95% scan / 5% insert
    F,  //!< 50% read / 50% read-modify-write
};

const char *ycsbMixName(YcsbMix mix);

/** Operation kinds a service request can carry. */
enum class SvcOpKind : std::uint8_t
{
    Insert,
    Read,
    Update,
    Scan,
    ReadModifyWrite,
};

/**
 * One generated service request. The value payload is not stored —
 * it is the deterministic function ycsbValueFor(key ^ valueSalt,
 * valueBytes), so streams of millions of ops stay cheap and any
 * checker can recompute the expected bytes.
 */
struct SvcOp
{
    SvcOpKind kind = SvcOpKind::Read;
    std::uint64_t key = 0;
    std::uint64_t record = 0;     //!< record index the key derives from
    std::uint32_t valueBytes = 0; //!< mutations only
    std::uint64_t valueSalt = 0;  //!< 0 = the insert-time value
    std::uint32_t scanLen = 0;    //!< Scan only: records swept

    bool
    isMutation() const
    {
        return kind == SvcOpKind::Insert || kind == SvcOpKind::Update ||
               kind == SvcOpKind::ReadModifyWrite;
    }

    bool
    operator==(const SvcOp &o) const
    {
        return kind == o.kind && key == o.key && record == o.record &&
               valueBytes == o.valueBytes && valueSalt == o.valueSalt &&
               scanLen == o.scanLen;
    }
};

/** All knobs of one generated load. */
struct LoadGenConfig
{
    YcsbMix mix = YcsbMix::A;
    KeySkew skew = KeySkew::Zipfian;

    /** Zipfian theta in basis points (9900 = 0.99) so configs stay
     *  integral and hashable. */
    unsigned zipfThetaBp = 9900;

    /** Distinct-key universe inserts draw records from. Capped at
     *  2^30 by the key-derivation layout. */
    std::size_t keySpace = std::size_t{1} << 20;

    /** Records inserted before the measured op stream. */
    std::size_t preloadRecords = 2000;

    /** Measured service requests. */
    std::size_t numOps = 2000;

    /** Value payloads are drawn uniformly from [min, max] bytes. */
    std::size_t valueBytesMin = 64;
    std::size_t valueBytesMax = 64;

    /** Ops between hot-set rotations (Zipfian only); 0 = no churn. */
    std::size_t churnInterval = 0;

    /** Longest scan (mix E), in records. */
    std::size_t scanLenMax = 8;

    std::uint64_t seed = 42;
};

/**
 * The key of record @p record under key-universe salt @p salt.
 * Bit 62 keeps keys nonzero and below 2^63 (the checkers' open
 * sentinel bounds); the low 30 bits embed the record index so keys of
 * distinct records are provably distinct; the middle 32 bits are a
 * salted hash so keys scatter over shards and hash buckets.
 */
inline std::uint64_t
svcKeyForRecord(std::uint64_t record, std::uint64_t salt)
{
    const std::uint64_t h = mix64Salted(record, salt);
    return (std::uint64_t{1} << 62) | ((h & 0xffffffffULL) << 30) |
           (record & 0x3fffffffULL);
}

/** The deterministic value payload of a generated mutation. */
inline std::vector<std::uint8_t>
svcValueFor(std::uint64_t key, std::uint64_t value_salt,
            std::size_t value_bytes)
{
    return ycsbValueFor(key ^ value_salt, value_bytes);
}

/**
 * Gray et al. bounded Zipfian ranks over a growing item count (the
 * YCSB generator). Ranks are in [0, items); rank 0 is the hottest.
 * The zeta normaliser extends incrementally when items grows, so
 * insert-bearing mixes stay O(new items), not O(items) per draw.
 */
class ZipfianGen
{
  public:
    explicit ZipfianGen(double theta = 0.99) : theta(theta) {}

    std::uint64_t
    next(Rng &rng, std::uint64_t items)
    {
        if (items != zetaItems)
            growZeta(items);
        const double u = rng.uniform();
        const double uz = u * zetan;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta))
            return 1;
        const double alpha = 1.0 / (1.0 - theta);
        const double eta =
            (1.0 -
             std::pow(2.0 / static_cast<double>(items), 1.0 - theta)) /
            (1.0 - zeta2 / zetan);
        const auto rank = static_cast<std::uint64_t>(
            static_cast<double>(items) *
            std::pow(eta * u - eta + 1.0, alpha));
        return rank >= items ? items - 1 : rank;
    }

  private:
    void
    growZeta(std::uint64_t items)
    {
        if (items < zetaItems) {
            zetan = 0.0;
            zetaItems = 0;
        }
        for (std::uint64_t i = zetaItems; i < items; ++i)
            zetan +=
                1.0 / std::pow(static_cast<double>(i + 1), theta);
        zetaItems = items;
        zeta2 = 1.0 + std::pow(0.5, theta);
    }

    double theta;
    double zetan = 0.0;
    double zeta2 = 0.0;
    std::uint64_t zetaItems = 0;
};

/** One generated load: the preload inserts plus the measured ops. */
struct SvcLoad
{
    std::vector<SvcOp> preload;  //!< Insert per record, arrival order
    std::vector<SvcOp> ops;      //!< measured requests, arrival order
    std::uint64_t keySalt = 0;   //!< salt behind svcKeyForRecord()
};

/** Generate one load; pure function of the config. */
SvcLoad svcGenerate(const LoadGenConfig &cfg);

} // namespace slpmt

#endif // SLPMT_WORKLOADS_LOADGEN_HH
