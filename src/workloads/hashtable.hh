/**
 * @file
 * Chained hash table that resizes at an average chain length of three
 * (Table II), with the paper's flagship lazy-persistency pattern: the
 * node copies made while rehashing are written with lazy, log-free
 * storeT and left in the cache past the commit (Section VI-D1).
 *
 * Durability design:
 *  - Regular inserts allocate a node and a value blob inside the
 *    transaction; both are initialised with log-free eager storeT
 *    (Pattern 1: a crash leaks them; recovery GC reclaims). The
 *    bucket-head pointer is a normal logged store — the commit pivot.
 *  - The element count is lazy+logged: recovery recomputes it by
 *    walking the table (a "deep semantics" annotation the compiler
 *    pass cannot find).
 *  - Rehashing copies every node into a fresh node (the originals are
 *    never modified) with lazy+log-free storeT, and swings the header
 *    to the new bucket array with logged stores. A durable journal
 *    records old/new table locations. Every node carries a checksum
 *    over its payload so recovery can tell which copies reached PM.
 *
 * Why recovery is sound: while any copy is still volatile, the old
 *  table is intact — the resize transaction *read* every old node, so
 *  they are in its working set, and the hardware persists all its
 *  lazy lines before any of those addresses can be overwritten
 *  (Section III-C). Recovery therefore merges the checksum-valid part
 *  of the new table (which always includes every post-resize insert,
 *  because those are eager) with the old table's contents.
 */

#ifndef SLPMT_WORKLOADS_HASHTABLE_HH
#define SLPMT_WORKLOADS_HASHTABLE_HH

#include "workloads/workload.hh"

namespace slpmt
{

/** The durable chained hash table. */
class HashTableWorkload : public Workload
{
  public:
    /** Root-directory slots used by the table. */
    static constexpr std::size_t headerRootSlot = 0;
    static constexpr std::size_t journalRootSlot = 1;

    /** Resize when count exceeds loadFactor * buckets. */
    static constexpr std::uint64_t loadFactor = 3;
    static constexpr std::uint64_t initialBuckets = 16;

    std::string name() const override { return "hashtable"; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<HashTableWorkload>(*this);
    }
    void setup(PmContext &sys) override;
    void insert(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    bool lookup(PmContext &sys, std::uint64_t key,
                std::vector<std::uint8_t> *out) override;
    bool update(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    bool remove(PmContext &sys, std::uint64_t key) override;
    std::size_t count(PmContext &sys) override;
    void recover(PmContext &sys) override;
    bool checkConsistency(PmContext &sys, std::string *why) override;

    /** Number of resizes performed so far (test introspection). */
    std::uint64_t resizes() const { return resizeCount; }

  private:
    /** Node field offsets (all fields are 8-byte words). */
    struct NodeOff
    {
        static constexpr Bytes key = 0;
        static constexpr Bytes next = 8;
        static constexpr Bytes valPtr = 16;
        static constexpr Bytes valLen = 24;
        static constexpr Bytes chk = 32;
        static constexpr Bytes size = 40;
    };

    /** Header field offsets. */
    struct HdrOff
    {
        static constexpr Bytes numBuckets = 0;
        static constexpr Bytes count = 8;
        static constexpr Bytes bucketsPtr = 16;
        static constexpr Bytes size = 24;
    };

    /** Journal field offsets. */
    struct JnlOff
    {
        static constexpr Bytes valid = 0;
        static constexpr Bytes oldBuckets = 8;
        static constexpr Bytes oldNum = 16;
        static constexpr Bytes newBuckets = 24;
        static constexpr Bytes newNum = 32;
        static constexpr Bytes size = 40;
    };

    static std::uint64_t
    nodeChecksum(std::uint64_t key, Addr next, Addr val_ptr,
                 std::uint64_t val_len)
    {
        return mix64(key ^ mix64(next) ^ mix64(val_ptr) ^ val_len ^
                     0x5a5a5a5a5a5a5a5aULL);
    }

    static std::uint64_t
    bucketOf(std::uint64_t key, std::uint64_t num_buckets)
    {
        return mix64(key) % num_buckets;
    }

    /** Rehash into a table twice the size (inside the caller's txn). */
    void resize(PmContext &sys, std::uint64_t new_num);

    /** Write one fresh node (log-free sites). */
    Addr writeFreshNode(PmContext &sys, std::uint64_t key, Addr next,
                        Addr val_ptr, std::uint64_t val_len,
                        bool as_copy);

    /** A durable-image chain walk entry. */
    struct Survivor
    {
        std::uint64_t key;
        Addr valPtr;
        std::uint64_t valLen;
    };

    /** Walk one durable table image, keeping checksum-valid nodes. */
    std::vector<Survivor> walkDurable(PmContext &sys, Addr buckets,
                                      std::uint64_t num) const;

    /** Reachable allocation bases for the heap GC. */
    std::vector<Addr> collectReachable(PmContext &sys);

    /** Store sites, registered in setup(). */
    SiteId siteNodeInit = 0;    //!< fresh node fields (log-free)
    SiteId siteValueInit = 0;   //!< fresh value blob (log-free)
    SiteId siteBucketHead = 0;  //!< bucket head pointer (plain store)
    SiteId siteCount = 0;       //!< header count (lazy, deep semantics)
    SiteId siteCopyInit = 0;    //!< rehash node copies (log-free+lazy)
    SiteId siteNewBuckets = 0;  //!< fresh bucket array (log-free+lazy)
    SiteId siteHeaderSwing = 0; //!< header bucketsPtr/numBuckets
    SiteId siteJournal = 0;     //!< resize journal (plain store)
    SiteId siteDeadPoison = 0;  //!< poisoning freed nodes
                                //!< (Pattern 1b: dead region)

    Addr headerAddr = 0;   //!< cached from the root slot
    Addr journalAddr = 0;
    std::uint64_t resizeCount = 0;

    /**
     * Old-table storage released only *after* the resize transaction
     * commits (deferred reclamation). Freeing inside the transaction
     * would let the allocator hand an old node's storage to a lazy
     * copy whose line still carries the persist bit from earlier
     * eager stores of the same transaction — the commit would then
     * overwrite durable old-table data the journal recovery depends
     * on. Deferring the free moves any reuse into later transactions,
     * where the working-set signature forces the lazy copies to PM
     * before the old data can be overwritten (Section III-C).
     */
    std::vector<Addr> deferredFrees;
};

} // namespace slpmt

#endif // SLPMT_WORKLOADS_HASHTABLE_HH
