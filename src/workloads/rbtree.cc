#include "workloads/rbtree.hh"

#include <limits>

namespace slpmt
{

void
RbTreeWorkload::setup(PmContext &sys)
{
    auto &sites = sys.sites();
    siteNodeInit = sites.add({.name = "rbtree.insert.node",
                              .manual = {.lazy = false, .logFree = true},
                              .origin = ValueOrigin::Input,
                              .targetsFreshAlloc = true,
                              .defUseDepth = 2});
    siteValueInit = sites.add({.name = "rbtree.insert.value",
                               .manual = {.lazy = false, .logFree = true},
                               .origin = ValueOrigin::Input,
                               .targetsFreshAlloc = true,
                               .defUseDepth = 1});
    siteChild = sites.add({.name = "rbtree.fixup.child",
                           .manual = {},
                           .origin = ValueOrigin::PmLoad,
                           .defUseDepth = 3});
    siteParent = sites.add({.name = "rbtree.fixup.parent",
                            .manual = {.lazy = true, .logFree = false},
                            .origin = ValueOrigin::PmLoad,
                            .rebuildable = true,
                            .defUseDepth = 3});
    siteColor = sites.add({.name = "rbtree.fixup.color",
                           .manual = {.lazy = true, .logFree = false},
                           .origin = ValueOrigin::Constant,
                           .rebuildable = true,
                           .requiresDeepSemantics = true,
                           .defUseDepth = 2});
    siteRoot = sites.add({.name = "rbtree.insert.root",
                          .manual = {},
                          .origin = ValueOrigin::PmLoad,
                          .defUseDepth = 2});
    siteCount = sites.add({.name = "rbtree.insert.count",
                           .manual = {.lazy = true, .logFree = false},
                           .origin = ValueOrigin::Computed,
                           .rebuildable = true,
                           .requiresDeepSemantics = true,
                           .defUseDepth = 3});

    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    headerAddr = sys.heap().alloc(HdrOff::size, seq);
    sys.write<Addr>(headerAddr + HdrOff::root, 0);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, 0);
    sys.writeRoot(headerRootSlot, headerAddr);
    tx.commit();
    sys.quiesce();
}

Addr
RbTreeWorkload::allocNode(PmContext &sys, std::uint64_t key, Addr parent,
                          Addr val_ptr, std::uint64_t val_len)
{
    const Addr node =
        sys.heap().alloc(NodeOff::size, sys.currentTxnSeq());
    sys.writeSite<std::uint64_t>(node + NodeOff::key, key, siteNodeInit);
    sys.writeSite<Addr>(node + NodeOff::left, 0, siteNodeInit);
    sys.writeSite<Addr>(node + NodeOff::right, 0, siteNodeInit);
    sys.writeSite<Addr>(node + NodeOff::parent, parent, siteNodeInit);
    sys.writeSite<std::uint64_t>(node + NodeOff::color, red,
                                 siteNodeInit);
    sys.writeSite<Addr>(node + NodeOff::valPtr, val_ptr, siteNodeInit);
    sys.writeSite<std::uint64_t>(node + NodeOff::valLen, val_len,
                                 siteNodeInit);
    return node;
}

void
RbTreeWorkload::setChild(PmContext &sys, Addr node, bool right_side,
                         Addr child)
{
    const Bytes off = right_side ? NodeOff::right : NodeOff::left;
    sys.writeSite<Addr>(node + off, child, siteChild);
}

void
RbTreeWorkload::setParent(PmContext &sys, Addr node, Addr parent)
{
    sys.writeSite<Addr>(node + NodeOff::parent, parent, siteParent);
}

void
RbTreeWorkload::setColor(PmContext &sys, Addr node, std::uint64_t color)
{
    sys.writeSite<std::uint64_t>(node + NodeOff::color, color, siteColor);
}

void
RbTreeWorkload::setRoot(PmContext &sys, Addr root)
{
    sys.writeSite<Addr>(headerAddr + HdrOff::root, root, siteRoot);
}

void
RbTreeWorkload::rotateLeft(PmContext &sys, Addr x)
{
    const Addr y = sys.read<Addr>(x + NodeOff::right);
    const Addr yl = sys.read<Addr>(y + NodeOff::left);
    setChild(sys, x, true, yl);
    if (yl)
        setParent(sys, yl, x);
    const Addr xp = sys.read<Addr>(x + NodeOff::parent);
    setParent(sys, y, xp);
    if (!xp)
        setRoot(sys, y);
    else if (sys.read<Addr>(xp + NodeOff::left) == x)
        setChild(sys, xp, false, y);
    else
        setChild(sys, xp, true, y);
    setChild(sys, y, false, x);
    setParent(sys, x, y);
}

void
RbTreeWorkload::rotateRight(PmContext &sys, Addr x)
{
    const Addr y = sys.read<Addr>(x + NodeOff::left);
    const Addr yr = sys.read<Addr>(y + NodeOff::right);
    setChild(sys, x, false, yr);
    if (yr)
        setParent(sys, yr, x);
    const Addr xp = sys.read<Addr>(x + NodeOff::parent);
    setParent(sys, y, xp);
    if (!xp)
        setRoot(sys, y);
    else if (sys.read<Addr>(xp + NodeOff::left) == x)
        setChild(sys, xp, false, y);
    else
        setChild(sys, xp, true, y);
    setChild(sys, y, true, x);
    setParent(sys, x, y);
}

void
RbTreeWorkload::fixupInsert(PmContext &sys, Addr z)
{
    while (true) {
        const Addr zp = sys.read<Addr>(z + NodeOff::parent);
        if (!zp || sys.read<std::uint64_t>(zp + NodeOff::color) != red)
            break;
        const Addr zg = sys.read<Addr>(zp + NodeOff::parent);
        if (!zg)
            break;
        sys.compute(opcost::perLevel);
        const bool parent_is_left =
            sys.read<Addr>(zg + NodeOff::left) == zp;
        const Addr uncle = parent_is_left
                               ? sys.read<Addr>(zg + NodeOff::right)
                               : sys.read<Addr>(zg + NodeOff::left);
        if (uncle &&
            sys.read<std::uint64_t>(uncle + NodeOff::color) == red) {
            setColor(sys, zp, black);
            setColor(sys, uncle, black);
            setColor(sys, zg, red);
            z = zg;
            continue;
        }
        if (parent_is_left) {
            if (sys.read<Addr>(zp + NodeOff::right) == z) {
                z = zp;
                rotateLeft(sys, z);
            }
            const Addr p = sys.read<Addr>(z + NodeOff::parent);
            const Addr g = sys.read<Addr>(p + NodeOff::parent);
            setColor(sys, p, black);
            setColor(sys, g, red);
            rotateRight(sys, g);
        } else {
            if (sys.read<Addr>(zp + NodeOff::left) == z) {
                z = zp;
                rotateRight(sys, z);
            }
            const Addr p = sys.read<Addr>(z + NodeOff::parent);
            const Addr g = sys.read<Addr>(p + NodeOff::parent);
            setColor(sys, p, black);
            setColor(sys, g, red);
            rotateLeft(sys, g);
        }
    }
    setColor(sys, getRoot(sys), black);
}

void
RbTreeWorkload::insert(PmContext &sys, std::uint64_t key,
                       const std::vector<std::uint8_t> &value)
{
    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));

    const Addr val_ptr = sys.heap().alloc(value.size(), seq);
    sys.writeBytesSite(val_ptr, value.data(), value.size(),
                       siteValueInit);

    // BST descent.
    Addr parent = 0;
    Addr cursor = getRoot(sys);
    bool right_side = false;
    while (cursor) {
        sys.compute(opcost::perLevel);
        parent = cursor;
        const auto ck = sys.read<std::uint64_t>(cursor + NodeOff::key);
        right_side = key > ck;
        cursor = sys.read<Addr>(
            cursor + (right_side ? NodeOff::right : NodeOff::left));
    }

    const Addr node =
        allocNode(sys, key, parent, val_ptr, value.size());
    if (!parent)
        setRoot(sys, node);
    else
        setChild(sys, parent, right_side, node);

    fixupInsert(sys, node);

    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    sys.writeSite<std::uint64_t>(headerAddr + HdrOff::count, cnt + 1,
                                 siteCount);
    tx.commit();
}

bool
RbTreeWorkload::lookup(PmContext &sys, std::uint64_t key,
                       std::vector<std::uint8_t> *out)
{
    Addr cursor = getRoot(sys);
    while (cursor) {
        sys.compute(opcost::perLevel);
        const auto ck = sys.read<std::uint64_t>(cursor + NodeOff::key);
        if (ck == key) {
            if (out) {
                const Addr vp = sys.read<Addr>(cursor + NodeOff::valPtr);
                const auto vl =
                    sys.read<std::uint64_t>(cursor + NodeOff::valLen);
                out->resize(vl);
                sys.readBytes(vp, out->data(), vl);
            }
            return true;
        }
        cursor = sys.read<Addr>(
            cursor + (key > ck ? NodeOff::right : NodeOff::left));
    }
    return false;
}

std::size_t
RbTreeWorkload::count(PmContext &sys)
{
    return sys.read<std::uint64_t>(headerAddr + HdrOff::count);
}

void
RbTreeWorkload::collectDurable(PmContext &sys, Addr node,
                               std::vector<Item> &out) const
{
    if (!node)
        return;
    collectDurable(sys, sys.peek<Addr>(node + NodeOff::left), out);
    Item item;
    item.key = sys.peek<std::uint64_t>(node + NodeOff::key);
    const Addr vp = sys.peek<Addr>(node + NodeOff::valPtr);
    const auto vl = sys.peek<std::uint64_t>(node + NodeOff::valLen);
    item.value.resize(vl);
    sys.peekBytes(vp, item.value.data(), vl);
    out.push_back(std::move(item));
    collectDurable(sys, sys.peek<Addr>(node + NodeOff::right), out);
}

Addr
RbTreeWorkload::buildBalanced(PmContext &sys,
                              const std::vector<Item> &items,
                              std::size_t lo, std::size_t hi,
                              Addr parent, std::size_t depth,
                              std::size_t red_depth)
{
    if (lo >= hi)
        return 0;
    const std::size_t mid = lo + (hi - lo) / 2;
    const Item &item = items[mid];
    const Addr val_ptr =
        sys.heap().alloc(item.value.size(), sys.currentTxnSeq());
    sys.writeBytes(val_ptr, item.value.data(), item.value.size());

    const Addr node =
        sys.heap().alloc(NodeOff::size, sys.currentTxnSeq());
    sys.write<std::uint64_t>(node + NodeOff::key, item.key);
    sys.write<Addr>(node + NodeOff::parent, parent);
    // Canonical colouring: only the deepest level is red, which keeps
    // every red-black invariant for a balanced tree.
    sys.write<std::uint64_t>(node + NodeOff::color,
                             depth == red_depth ? red : black);
    sys.write<Addr>(node + NodeOff::valPtr, val_ptr);
    sys.write<std::uint64_t>(node + NodeOff::valLen, item.value.size());
    sys.write<Addr>(node + NodeOff::left,
                    buildBalanced(sys, items, lo, mid, node, depth + 1,
                                  red_depth));
    sys.write<Addr>(node + NodeOff::right,
                    buildBalanced(sys, items, mid + 1, hi, node,
                                  depth + 1, red_depth));
    return node;
}

void
RbTreeWorkload::recover(PmContext &sys)
{
    headerAddr = sys.peek<Addr>(sys.rootSlotAddr(headerRootSlot));
    const Addr root = sys.peek<Addr>(headerAddr + HdrOff::root);

    // The durable skeleton (keys, child links, values) is intact; the
    // lazy parent/colour/count words may hold pre-crash values.
    // Rebuild a balanced, canonically coloured tree from scratch.
    std::vector<Item> items;
    collectDurable(sys, root, items);

    sys.heap().reset();
    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    headerAddr = sys.heap().alloc(HdrOff::size, seq);
    // red_depth = depth of the deepest level of the balanced tree.
    std::size_t levels = 0;
    while ((1ULL << levels) <= items.size())
        ++levels;
    // Only the deepest level is red — and never the root itself.
    const std::size_t red_depth =
        levels >= 2 ? levels : std::numeric_limits<std::size_t>::max();
    const Addr new_root =
        buildBalanced(sys, items, 0, items.size(), 0, 1, red_depth);
    sys.write<Addr>(headerAddr + HdrOff::root, new_root);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, items.size());
    sys.writeRoot(headerRootSlot, headerAddr);
    tx.commit();
    sys.quiesce();
}

bool
RbTreeWorkload::checkNode(PmContext &sys, Addr node, Addr parent,
                          std::uint64_t lo, std::uint64_t hi,
                          std::size_t *black_height, std::size_t *n,
                          std::string *why)
{
    if (!node) {
        *black_height = 1;
        return true;
    }
    const auto key = sys.read<std::uint64_t>(node + NodeOff::key);
    if (key <= lo || key >= hi)
        return failCheck(why, "BST order violated");
    if (sys.read<Addr>(node + NodeOff::parent) != parent)
        return failCheck(why, "parent pointer wrong");
    const auto color = sys.read<std::uint64_t>(node + NodeOff::color);
    if (color != red && color != black)
        return failCheck(why, "invalid colour");
    const Addr left = sys.read<Addr>(node + NodeOff::left);
    const Addr right = sys.read<Addr>(node + NodeOff::right);
    if (color == red) {
        for (Addr child : {left, right}) {
            if (child &&
                sys.read<std::uint64_t>(child + NodeOff::color) == red)
                return failCheck(why, "red node with red child");
        }
    }
    std::size_t bh_left = 0;
    std::size_t bh_right = 0;
    if (!checkNode(sys, left, node, lo, key, &bh_left, n, why) ||
        !checkNode(sys, right, node, key, hi, &bh_right, n, why))
        return false;
    if (bh_left != bh_right)
        return failCheck(why, "black height mismatch");
    *black_height = bh_left + (color == black ? 1 : 0);
    ++*n;
    return true;
}

bool
RbTreeWorkload::checkConsistency(PmContext &sys, std::string *why)
{
    const Addr root = getRoot(sys);
    if (root &&
        sys.read<std::uint64_t>(root + NodeOff::color) != black)
        return failCheck(why, "root is not black");
    std::size_t bh = 0;
    std::size_t n = 0;
    if (!checkNode(sys, root, 0, 0,
                   std::numeric_limits<std::uint64_t>::max(), &bh, &n,
                   why))
        return false;
    if (n != sys.read<std::uint64_t>(headerAddr + HdrOff::count))
        return failCheck(why, "count mismatch");
    return true;
}

bool
RbTreeWorkload::update(PmContext &sys, std::uint64_t key,
                       const std::vector<std::uint8_t> &value)
{
    Addr node = getRoot(sys);
    while (node) {
        const auto nk = sys.read<std::uint64_t>(node + NodeOff::key);
        if (nk == key)
            break;
        node = sys.read<Addr>(
            node + (key > nk ? NodeOff::right : NodeOff::left));
    }
    if (!node)
        return false;

    DurableTx tx(sys);
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));
    const std::uint64_t seq = sys.currentTxnSeq();
    const Addr new_blob = sys.heap().alloc(value.size(), seq);
    sys.writeBytesSite(new_blob, value.data(), value.size(),
                       siteValueInit);
    const Addr old_blob = sys.read<Addr>(node + NodeOff::valPtr);
    sys.writeSite<Addr>(node + NodeOff::valPtr, new_blob, siteChild);
    sys.writeSite<std::uint64_t>(node + NodeOff::valLen, value.size(),
                                 siteChild);
    tx.commit();
    sys.heap().free(old_blob);
    return true;
}

} // namespace slpmt
