#include "workloads/loadgen.hh"

#include <algorithm>

#include "common/logging.hh"

namespace slpmt
{
namespace
{

/** Operation-mix percentages of the YCSB core workloads. */
struct MixRatios
{
    unsigned readPct = 0;
    unsigned updatePct = 0;
    unsigned insertPct = 0;
    unsigned scanPct = 0;
    unsigned rmwPct = 0;
};

MixRatios
mixRatios(YcsbMix mix)
{
    switch (mix) {
      case YcsbMix::A:
        return {50, 50, 0, 0, 0};
      case YcsbMix::B:
        return {95, 5, 0, 0, 0};
      case YcsbMix::C:
        return {100, 0, 0, 0, 0};
      case YcsbMix::D:
        return {95, 0, 5, 0, 0};
      case YcsbMix::E:
        return {0, 0, 5, 95, 0};
      case YcsbMix::F:
        return {50, 0, 0, 0, 50};
    }
    panic("unknown YCSB mix");
}

} // namespace

const char *
ycsbMixName(YcsbMix mix)
{
    switch (mix) {
      case YcsbMix::A:
        return "A";
      case YcsbMix::B:
        return "B";
      case YcsbMix::C:
        return "C";
      case YcsbMix::D:
        return "D";
      case YcsbMix::E:
        return "E";
      case YcsbMix::F:
        return "F";
    }
    panic("unknown YCSB mix");
}

SvcLoad
svcGenerate(const LoadGenConfig &cfg)
{
    panicIfNot(cfg.preloadRecords >= 1, "preload at least one record");
    panicIfNot(cfg.keySpace >= cfg.preloadRecords,
               "key space smaller than the preload");
    panicIfNot(cfg.keySpace <= (std::size_t{1} << 30),
               "key space above the 2^30 record-index layout");
    panicIfNot(cfg.valueBytesMin >= 1 &&
                   cfg.valueBytesMin <= cfg.valueBytesMax,
               "bad value-size range");

    SvcLoad load;
    load.keySalt = mix64(cfg.seed ^ 0x5e21'1ce5'a17eULL);

    Rng rng(mix64(cfg.seed ^ 0x10adULL));
    ZipfianGen zipf(static_cast<double>(cfg.zipfThetaBp) / 10000.0);

    auto drawValueBytes = [&]() -> std::uint32_t {
        if (cfg.valueBytesMin == cfg.valueBytesMax)
            return static_cast<std::uint32_t>(cfg.valueBytesMin);
        return static_cast<std::uint32_t>(
            rng.inRange(cfg.valueBytesMin, cfg.valueBytesMax));
    };

    load.preload.reserve(cfg.preloadRecords);
    for (std::size_t r = 0; r < cfg.preloadRecords; ++r) {
        SvcOp op;
        op.kind = SvcOpKind::Insert;
        op.record = r;
        op.key = svcKeyForRecord(r, load.keySalt);
        op.valueBytes = drawValueBytes();
        load.preload.push_back(op);
    }

    const MixRatios mix = mixRatios(cfg.mix);
    const std::uint64_t scramble_salt =
        mix64(cfg.seed ^ 0x5c7a'3b1eULL);

    std::size_t loaded = cfg.preloadRecords;  //!< records inserted
    std::uint64_t churn_epoch = 0;
    std::uint64_t update_salt = 0;

    // Rank 0 is the hottest rank; which *record* that is rotates with
    // the churn epoch (trending keys). Mix D instead reads "latest":
    // rank 0 is the most recently inserted record.
    auto recordForRank = [&](std::uint64_t rank) -> std::uint64_t {
        if (cfg.mix == YcsbMix::D)
            return loaded - 1 - rank;
        return mix64Salted(rank,
                           scramble_salt ^
                               (churn_epoch * 0x9e3779b97f4a7c15ULL)) %
               loaded;
    };

    auto drawRecord = [&]() -> std::uint64_t {
        // Uniform ranks are already uniform over records; routing
        // them through the many-to-one rank scramble would let hash
        // collisions concentrate several ranks' mass on one record.
        if (cfg.skew == KeySkew::Uniform && cfg.mix != YcsbMix::D)
            return rng.below(loaded);
        return recordForRank(cfg.skew == KeySkew::Zipfian
                                 ? zipf.next(rng, loaded)
                                 : rng.below(loaded));
    };

    load.ops.reserve(cfg.numOps);
    for (std::size_t i = 0; i < cfg.numOps; ++i) {
        if (cfg.churnInterval > 0 && i > 0 &&
            i % cfg.churnInterval == 0)
            ++churn_epoch;

        const unsigned roll = static_cast<unsigned>(rng.below(100));
        SvcOp op;
        if (roll < mix.insertPct && loaded < cfg.keySpace) {
            op.kind = SvcOpKind::Insert;
            op.record = loaded++;
            op.key = svcKeyForRecord(op.record, load.keySalt);
            op.valueBytes = drawValueBytes();
        } else if (roll < mix.insertPct + mix.updatePct) {
            op.kind = SvcOpKind::Update;
            op.record = drawRecord();
            op.key = svcKeyForRecord(op.record, load.keySalt);
            op.valueBytes = drawValueBytes();
            op.valueSalt = mix64(++update_salt);
        } else if (roll < mix.insertPct + mix.updatePct + mix.rmwPct) {
            op.kind = SvcOpKind::ReadModifyWrite;
            op.record = drawRecord();
            op.key = svcKeyForRecord(op.record, load.keySalt);
            op.valueBytes = drawValueBytes();
            op.valueSalt = mix64(++update_salt);
        } else if (roll <
                   mix.insertPct + mix.updatePct + mix.rmwPct +
                       mix.scanPct) {
            op.kind = SvcOpKind::Scan;
            op.record = drawRecord();
            op.key = svcKeyForRecord(op.record, load.keySalt);
            const std::uint64_t len = 1 + rng.below(cfg.scanLenMax);
            op.scanLen = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(len, loaded - op.record));
        } else {
            // Reads absorb the remainder (and inserts once the key
            // universe is exhausted), keeping the mix total at 100.
            op.kind = SvcOpKind::Read;
            op.record = drawRecord();
            op.key = svcKeyForRecord(op.record, load.keySalt);
        }
        load.ops.push_back(op);
    }
    return load;
}

} // namespace slpmt
