#include "workloads/factory.hh"

#include "common/logging.hh"
#include "workloads/avltree.hh"
#include "workloads/blinktree.hh"
#include "workloads/hashtable.hh"
#include "workloads/kv_btree.hh"
#include "workloads/kv_ctree.hh"
#include "workloads/kv_rtree.hh"
#include "workloads/maxheap.hh"
#include "workloads/rbtree.hh"
#include "workloads/skiplist.hh"

namespace slpmt
{

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    if (name == "hashtable")
        return std::make_unique<HashTableWorkload>();
    if (name == "rbtree")
        return std::make_unique<RbTreeWorkload>();
    if (name == "heap")
        return std::make_unique<MaxHeapWorkload>();
    if (name == "avl")
        return std::make_unique<AvlTreeWorkload>();
    if (name == "kv-btree")
        return std::make_unique<KvBtreeWorkload>();
    if (name == "kv-ctree")
        return std::make_unique<KvCtreeWorkload>();
    if (name == "kv-rtree")
        return std::make_unique<KvRtreeWorkload>();
    if (name == "skiplist")
        return std::make_unique<SkipListWorkload>();
    if (name == "blinktree")
        return std::make_unique<BlinkTreeWorkload>();
    fatal("unknown workload: " + name);
}

const std::vector<std::string> &
kernelWorkloads()
{
    static const std::vector<std::string> names = {"hashtable", "rbtree",
                                                   "heap", "avl"};
    return names;
}

const std::vector<std::string> &
kvWorkloads()
{
    static const std::vector<std::string> names = {"kv-btree", "kv-ctree",
                                                   "kv-rtree"};
    return names;
}

const std::vector<std::string> &
indexWorkloads()
{
    static const std::vector<std::string> names = {"skiplist",
                                                   "blinktree"};
    return names;
}

const std::vector<std::string> &
allWorkloads()
{
    static const std::vector<std::string> names = {
        "hashtable", "rbtree", "heap", "avl", "kv-btree",
        "kv-ctree",  "kv-rtree", "skiplist", "blinktree"};
    return names;
}

} // namespace slpmt
