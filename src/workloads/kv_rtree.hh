/**
 * @file
 * kv-rtree: the PMDK map example's radix tree backend.
 *
 * A 16-way (4-bit nibble) radix tree over 64-bit keys with path
 * compression. An insertion can allocate several fresh nodes — a new
 * leaf plus an internal node when an edge must split — which is why
 * the paper observes the largest write-traffic reduction on kv-rtree
 * (more log-free stores per operation) while the speedup is tempered
 * by the extra computation the structure performs.
 *
 * Key movement during an edge split (shortening an existing node's
 * compressed prefix) could be lazily persistent — the prefix is
 * recomputable from the subtree's keys — but with 8-byte keys the
 * paper finds the benefit marginal, so the port keeps those stores
 * logged and eager.
 */

#ifndef SLPMT_WORKLOADS_KV_RTREE_HH
#define SLPMT_WORKLOADS_KV_RTREE_HH

#include "workloads/workload.hh"

namespace slpmt
{

/** The durable radix tree KV engine. */
class KvRtreeWorkload : public Workload
{
  public:
    static constexpr std::size_t headerRootSlot = 7;
    static constexpr std::uint64_t nibbles = 16;
    static constexpr std::uint64_t fanout = 16;

    std::string name() const override { return "kv-rtree"; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<KvRtreeWorkload>(*this);
    }
    void setup(PmContext &sys) override;
    void insert(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    bool lookup(PmContext &sys, std::uint64_t key,
                std::vector<std::uint8_t> *out) override;
    bool update(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    std::size_t count(PmContext &sys) override;
    void recover(PmContext &sys) override;
    bool checkConsistency(PmContext &sys, std::string *why) override;

  private:
    static constexpr std::uint64_t tagLeaf = 0;
    static constexpr std::uint64_t tagInternal = 1;

    struct NodeOff
    {
        static constexpr Bytes tag = 0;
        // Internal:
        static constexpr Bytes prefixLen = 8;   //!< nibbles consumed
        static constexpr Bytes prefix = 16;     //!< left-aligned packed
        static constexpr Bytes children = 24;   //!< 16 words
        static constexpr Bytes internalSize = children + fanout * 8;
        // Leaf:
        static constexpr Bytes key = 8;
        static constexpr Bytes valPtr = 16;
        static constexpr Bytes valLen = 24;
        static constexpr Bytes leafSize = 32;
    };

    struct HdrOff
    {
        static constexpr Bytes root = 0;
        static constexpr Bytes count = 8;
        static constexpr Bytes size = 16;
    };

    /** Nibble @p d of @p key, most significant first (d in [0,16)). */
    static std::uint64_t
    nibbleOf(std::uint64_t key, std::uint64_t d)
    {
        return (key >> (60 - 4 * d)) & 0xFULL;
    }

    /** Pack nibbles [start, start+len) of @p key, left-aligned. */
    static std::uint64_t
    packNibbles(std::uint64_t key, std::uint64_t start, std::uint64_t len)
    {
        std::uint64_t out = 0;
        for (std::uint64_t j = 0; j < len; ++j)
            out |= nibbleOf(key, start + j) << (60 - 4 * j);
        return out;
    }

    /** Nibble @p j of a left-aligned packed prefix. */
    static std::uint64_t
    packedNibble(std::uint64_t packed, std::uint64_t j)
    {
        return (packed >> (60 - 4 * j)) & 0xFULL;
    }

    Addr makeLeaf(PmContext &sys, std::uint64_t key, Addr val_ptr,
                  std::uint64_t val_len);
    Addr makeInternal(PmContext &sys, std::uint64_t prefix_len,
                      std::uint64_t packed_prefix);

    /** Write one child slot of a node through @p site. */
    void setChild(PmContext &sys, Addr node, std::uint64_t nib,
                  Addr child, SiteId site);

    bool checkNode(PmContext &sys, Addr node, std::uint64_t path_value,
                   std::uint64_t path_nibbles, std::size_t *n,
                   std::string *why);

    void collectReachable(PmContext &sys, Addr node,
                          std::vector<Addr> *out, std::size_t *n);

    SiteId siteLeafInit = 0;
    SiteId siteInternalInit = 0;
    SiteId siteValueInit = 0;
    SiteId siteSwing = 0;       //!< pointer swing in an existing node
    SiteId sitePrefixMove = 0;  //!< shortening an existing prefix
    SiteId siteCount = 0;

    Addr headerAddr = 0;
};

} // namespace slpmt

#endif // SLPMT_WORKLOADS_KV_RTREE_HH
