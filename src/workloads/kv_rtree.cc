#include "workloads/kv_rtree.hh"

namespace slpmt
{

void
KvRtreeWorkload::setup(PmContext &sys)
{
    auto &sites = sys.sites();
    siteLeafInit = sites.add({.name = "kv-rtree.insert.leaf",
                              .manual = {.lazy = false, .logFree = true},
                              .origin = ValueOrigin::Input,
                              .targetsFreshAlloc = true,
                              .defUseDepth = 2});
    siteInternalInit =
        sites.add({.name = "kv-rtree.insert.internal",
                   .manual = {.lazy = false, .logFree = true},
                   .origin = ValueOrigin::PmLoad,
                   .targetsFreshAlloc = true,
                   .defUseDepth = 3});
    siteValueInit = sites.add({.name = "kv-rtree.insert.value",
                               .manual = {.lazy = false, .logFree = true},
                               .origin = ValueOrigin::Input,
                               .targetsFreshAlloc = true,
                               .defUseDepth = 1});
    siteSwing = sites.add({.name = "kv-rtree.insert.swing",
                           .manual = {},
                           .origin = ValueOrigin::PmLoad,
                           .defUseDepth = 2});
    sitePrefixMove = sites.add({.name = "kv-rtree.split.prefixMove",
                                .manual = {},
                                .origin = ValueOrigin::PmLoad,
                                .rebuildable = true,
                                .requiresDeepSemantics = true,
                                .defUseDepth = 4});
    siteCount = sites.add({.name = "kv-rtree.insert.count",
                           .manual = {.lazy = true, .logFree = false},
                           .origin = ValueOrigin::Computed,
                           .rebuildable = true,
                           .requiresDeepSemantics = true,
                           .defUseDepth = 3});

    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    headerAddr = sys.heap().alloc(HdrOff::size, seq);
    sys.write<Addr>(headerAddr + HdrOff::root, 0);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, 0);
    sys.writeRoot(headerRootSlot, headerAddr);
    tx.commit();
    sys.quiesce();
}

Addr
KvRtreeWorkload::makeLeaf(PmContext &sys, std::uint64_t key, Addr val_ptr,
                          std::uint64_t val_len)
{
    const Addr leaf = sys.heap().alloc(NodeOff::leafSize,
                                       sys.currentTxnSeq());
    sys.writeSite<std::uint64_t>(leaf + NodeOff::tag, tagLeaf,
                                 siteLeafInit);
    sys.writeSite<std::uint64_t>(leaf + NodeOff::key, key, siteLeafInit);
    sys.writeSite<Addr>(leaf + NodeOff::valPtr, val_ptr, siteLeafInit);
    sys.writeSite<std::uint64_t>(leaf + NodeOff::valLen, val_len,
                                 siteLeafInit);
    return leaf;
}

Addr
KvRtreeWorkload::makeInternal(PmContext &sys, std::uint64_t prefix_len,
                              std::uint64_t packed_prefix)
{
    const Addr node = sys.heap().alloc(NodeOff::internalSize,
                                       sys.currentTxnSeq());
    sys.writeSite<std::uint64_t>(node + NodeOff::tag, tagInternal,
                                 siteInternalInit);
    sys.writeSite<std::uint64_t>(node + NodeOff::prefixLen, prefix_len,
                                 siteInternalInit);
    sys.writeSite<std::uint64_t>(node + NodeOff::prefix, packed_prefix,
                                 siteInternalInit);
    for (std::uint64_t i = 0; i < fanout; ++i)
        sys.writeSite<Addr>(node + NodeOff::children + i * 8, 0,
                            siteInternalInit);
    return node;
}

void
KvRtreeWorkload::setChild(PmContext &sys, Addr node, std::uint64_t nib,
                          Addr child, SiteId site)
{
    sys.writeSite<Addr>(node + NodeOff::children + nib * 8, child, site);
}

void
KvRtreeWorkload::insert(PmContext &sys, std::uint64_t key,
                        const std::vector<std::uint8_t> &value)
{
    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));

    const Addr val_ptr = sys.heap().alloc(value.size(), seq);
    sys.writeBytesSite(val_ptr, value.data(), value.size(),
                       siteValueInit);
    const Addr leaf = makeLeaf(sys, key, val_ptr, value.size());

    // slot_addr is the durable location holding the pointer to the
    // current node; a single logged store there publishes any rewiring.
    Addr slot_addr = headerAddr + HdrOff::root;
    Addr cursor = sys.read<Addr>(slot_addr);
    std::uint64_t depth = 0;

    while (true) {
        if (!cursor) {
            sys.writeSite<Addr>(slot_addr, leaf, siteSwing);
            break;
        }
        sys.compute(opcost::perLevel);
        const auto tag = sys.read<std::uint64_t>(cursor + NodeOff::tag);
        if (tag == tagLeaf) {
            const auto other =
                sys.read<std::uint64_t>(cursor + NodeOff::key);
            panicIfNot(other != key, "duplicate key inserted");
            // Common nibbles from the current depth.
            std::uint64_t cn = 0;
            while (nibbleOf(key, depth + cn) ==
                   nibbleOf(other, depth + cn))
                ++cn;
            const Addr inner = makeInternal(
                sys, cn, packNibbles(key, depth, cn));
            setChild(sys, inner, nibbleOf(key, depth + cn), leaf,
                     siteInternalInit);
            setChild(sys, inner, nibbleOf(other, depth + cn), cursor,
                     siteInternalInit);
            sys.writeSite<Addr>(slot_addr, inner, siteSwing);
            break;
        }

        // Internal: match the compressed prefix.
        const auto plen =
            sys.read<std::uint64_t>(cursor + NodeOff::prefixLen);
        const auto packed =
            sys.read<std::uint64_t>(cursor + NodeOff::prefix);
        std::uint64_t m = 0;
        while (m < plen &&
               nibbleOf(key, depth + m) == packedNibble(packed, m))
            ++m;

        if (m < plen) {
            // Edge split: a fresh node takes the matched part; the
            // existing node keeps the tail after the branch nibble.
            // Shortening the existing prefix is the paper's "key
            // movement" store (kept logged+eager; see header).
            const Addr inner =
                makeInternal(sys, m, packNibbles(key, depth, m));
            const std::uint64_t old_branch = packedNibble(packed, m);
            const std::uint64_t tail_len = plen - m - 1;
            std::uint64_t tail_packed = 0;
            for (std::uint64_t j = 0; j < tail_len; ++j) {
                tail_packed |= packedNibble(packed, m + 1 + j)
                               << (60 - 4 * j);
            }
            sys.writeSite<std::uint64_t>(cursor + NodeOff::prefixLen,
                                         tail_len, sitePrefixMove);
            sys.writeSite<std::uint64_t>(cursor + NodeOff::prefix,
                                         tail_packed, sitePrefixMove);
            setChild(sys, inner, old_branch, cursor, siteInternalInit);
            setChild(sys, inner, nibbleOf(key, depth + m), leaf,
                     siteInternalInit);
            sys.writeSite<Addr>(slot_addr, inner, siteSwing);
            break;
        }

        // Full prefix match: branch on the next nibble.
        depth += plen;
        const std::uint64_t nib = nibbleOf(key, depth);
        depth += 1;
        slot_addr = cursor + NodeOff::children + nib * 8;
        cursor = sys.read<Addr>(slot_addr);
    }

    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    sys.writeSite<std::uint64_t>(headerAddr + HdrOff::count, cnt + 1,
                                 siteCount);
    tx.commit();
}

bool
KvRtreeWorkload::lookup(PmContext &sys, std::uint64_t key,
                        std::vector<std::uint8_t> *out)
{
    Addr cursor = sys.read<Addr>(headerAddr + HdrOff::root);
    std::uint64_t depth = 0;
    while (cursor) {
        sys.compute(opcost::perLevel);
        if (sys.read<std::uint64_t>(cursor + NodeOff::tag) == tagLeaf) {
            if (sys.read<std::uint64_t>(cursor + NodeOff::key) != key)
                return false;
            if (out) {
                const Addr vp = sys.read<Addr>(cursor + NodeOff::valPtr);
                const auto vl =
                    sys.read<std::uint64_t>(cursor + NodeOff::valLen);
                out->resize(vl);
                sys.readBytes(vp, out->data(), vl);
            }
            return true;
        }
        const auto plen =
            sys.read<std::uint64_t>(cursor + NodeOff::prefixLen);
        const auto packed =
            sys.read<std::uint64_t>(cursor + NodeOff::prefix);
        for (std::uint64_t j = 0; j < plen; ++j) {
            if (nibbleOf(key, depth + j) != packedNibble(packed, j))
                return false;
        }
        depth += plen;
        const std::uint64_t nib = nibbleOf(key, depth);
        depth += 1;
        cursor = sys.read<Addr>(cursor + NodeOff::children + nib * 8);
    }
    return false;
}

void
KvRtreeWorkload::collectReachable(PmContext &sys, Addr node,
                                  std::vector<Addr> *out, std::size_t *n)
{
    if (!node)
        return;
    out->push_back(node);
    if (sys.peek<std::uint64_t>(node + NodeOff::tag) == tagLeaf) {
        out->push_back(sys.peek<Addr>(node + NodeOff::valPtr));
        ++*n;
        return;
    }
    for (std::uint64_t i = 0; i < fanout; ++i) {
        collectReachable(
            sys, sys.peek<Addr>(node + NodeOff::children + i * 8), out,
            n);
    }
}

std::size_t
KvRtreeWorkload::count(PmContext &sys)
{
    return sys.read<std::uint64_t>(headerAddr + HdrOff::count);
}

void
KvRtreeWorkload::recover(PmContext &sys)
{
    headerAddr = sys.peek<Addr>(sys.rootSlotAddr(headerRootSlot));
    std::vector<Addr> reachable = {headerAddr};
    std::size_t n = 0;
    collectReachable(sys, sys.peek<Addr>(headerAddr + HdrOff::root),
                     &reachable, &n);
    DurableTx tx(sys);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, n);
    tx.commit();
    sys.heap().rebuild(reachable);
    sys.quiesce();
}

bool
KvRtreeWorkload::checkNode(PmContext &sys, Addr node,
                           std::uint64_t path_value,
                           std::uint64_t path_nibbles, std::size_t *n,
                           std::string *why)
{
    if (!node)
        return true;
    if (sys.read<std::uint64_t>(node + NodeOff::tag) == tagLeaf) {
        const auto key = sys.read<std::uint64_t>(node + NodeOff::key);
        for (std::uint64_t j = 0; j < path_nibbles; ++j) {
            if (nibbleOf(key, j) != packedNibble(path_value, j))
                return failCheck(why, "leaf key disagrees with path");
        }
        ++*n;
        return true;
    }
    const auto plen = sys.read<std::uint64_t>(node + NodeOff::prefixLen);
    const auto packed = sys.read<std::uint64_t>(node + NodeOff::prefix);
    if (path_nibbles + plen + 1 > nibbles)
        return failCheck(why, "radix path too deep");
    std::uint64_t value = path_value;
    for (std::uint64_t j = 0; j < plen; ++j) {
        value |= packedNibble(packed, j)
                 << (60 - 4 * (path_nibbles + j));
    }
    std::size_t children = 0;
    for (std::uint64_t i = 0; i < fanout; ++i) {
        const Addr child =
            sys.read<Addr>(node + NodeOff::children + i * 8);
        if (!child)
            continue;
        ++children;
        const std::uint64_t child_value =
            value | (i << (60 - 4 * (path_nibbles + plen)));
        if (!checkNode(sys, child, child_value,
                       path_nibbles + plen + 1, n, why))
            return false;
    }
    if (children < 2)
        return failCheck(why, "internal radix node with < 2 children");
    return true;
}

bool
KvRtreeWorkload::checkConsistency(PmContext &sys, std::string *why)
{
    std::size_t n = 0;
    if (!checkNode(sys, sys.read<Addr>(headerAddr + HdrOff::root), 0, 0,
                   &n, why))
        return false;
    if (n != sys.read<std::uint64_t>(headerAddr + HdrOff::count))
        return failCheck(why, "count mismatch");
    return true;
}

bool
KvRtreeWorkload::update(PmContext &sys, std::uint64_t key,
                        const std::vector<std::uint8_t> &value)
{
    Addr cursor = sys.read<Addr>(headerAddr + HdrOff::root);
    std::uint64_t depth = 0;
    while (cursor &&
           sys.read<std::uint64_t>(cursor + NodeOff::tag) ==
               tagInternal) {
        const auto plen =
            sys.read<std::uint64_t>(cursor + NodeOff::prefixLen);
        const auto packed =
            sys.read<std::uint64_t>(cursor + NodeOff::prefix);
        for (std::uint64_t j = 0; j < plen; ++j) {
            if (nibbleOf(key, depth + j) != packedNibble(packed, j))
                return false;
        }
        depth += plen;
        const std::uint64_t nib = nibbleOf(key, depth);
        depth += 1;
        cursor = sys.read<Addr>(cursor + NodeOff::children + nib * 8);
    }
    if (!cursor || sys.read<std::uint64_t>(cursor + NodeOff::key) != key)
        return false;

    DurableTx tx(sys);
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));
    const std::uint64_t seq = sys.currentTxnSeq();
    const Addr new_blob = sys.heap().alloc(value.size(), seq);
    sys.writeBytesSite(new_blob, value.data(), value.size(),
                       siteValueInit);
    const Addr old_blob = sys.read<Addr>(cursor + NodeOff::valPtr);
    sys.writeSite<Addr>(cursor + NodeOff::valPtr, new_blob, siteSwing);
    sys.writeSite<std::uint64_t>(cursor + NodeOff::valLen, value.size(),
                                 siteSwing);
    tx.commit();
    sys.heap().free(old_blob);
    return true;
}

} // namespace slpmt
