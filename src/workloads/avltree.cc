#include "workloads/avltree.hh"

#include <algorithm>
#include <limits>

namespace slpmt
{

void
AvlTreeWorkload::setup(PmContext &sys)
{
    auto &sites = sys.sites();
    siteNodeInit = sites.add({.name = "avl.insert.node",
                              .manual = {.lazy = false, .logFree = true},
                              .origin = ValueOrigin::Input,
                              .targetsFreshAlloc = true,
                              .defUseDepth = 2});
    siteValueInit = sites.add({.name = "avl.insert.value",
                               .manual = {.lazy = false, .logFree = true},
                               .origin = ValueOrigin::Input,
                               .targetsFreshAlloc = true,
                               .defUseDepth = 1});
    siteChild = sites.add({.name = "avl.rotate.child",
                           .manual = {},
                           .origin = ValueOrigin::PmLoad,
                           .defUseDepth = 3});
    siteHeight = sites.add({.name = "avl.rebalance.height",
                            .manual = {.lazy = true, .logFree = false},
                            .origin = ValueOrigin::Computed,
                            .rebuildable = true,
                            .requiresDeepSemantics = true,
                            .defUseDepth = 4});
    siteRoot = sites.add({.name = "avl.insert.root",
                          .manual = {},
                          .origin = ValueOrigin::PmLoad,
                          .defUseDepth = 2});
    siteCount = sites.add({.name = "avl.insert.count",
                           .manual = {.lazy = true, .logFree = false},
                           .origin = ValueOrigin::Computed,
                           .rebuildable = true,
                           .requiresDeepSemantics = true,
                           .defUseDepth = 3});

    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    headerAddr = sys.heap().alloc(HdrOff::size, seq);
    sys.write<Addr>(headerAddr + HdrOff::root, 0);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, 0);
    sys.writeRoot(headerRootSlot, headerAddr);
    tx.commit();
    sys.quiesce();
}

std::uint64_t
AvlTreeWorkload::heightOf(PmContext &sys, Addr node)
{
    return node ? sys.read<std::uint64_t>(node + NodeOff::height) : 0;
}

void
AvlTreeWorkload::updateHeight(PmContext &sys, Addr node)
{
    const std::uint64_t h =
        1 + std::max(heightOf(sys, sys.read<Addr>(node + NodeOff::left)),
                     heightOf(sys,
                              sys.read<Addr>(node + NodeOff::right)));
    sys.writeSite<std::uint64_t>(node + NodeOff::height, h, siteHeight);
}

Addr
AvlTreeWorkload::rotateLeft(PmContext &sys, Addr x)
{
    const Addr y = sys.read<Addr>(x + NodeOff::right);
    const Addr yl = sys.read<Addr>(y + NodeOff::left);
    sys.writeSite<Addr>(x + NodeOff::right, yl, siteChild);
    sys.writeSite<Addr>(y + NodeOff::left, x, siteChild);
    updateHeight(sys, x);
    updateHeight(sys, y);
    return y;
}

Addr
AvlTreeWorkload::rotateRight(PmContext &sys, Addr x)
{
    const Addr y = sys.read<Addr>(x + NodeOff::left);
    const Addr yr = sys.read<Addr>(y + NodeOff::right);
    sys.writeSite<Addr>(x + NodeOff::left, yr, siteChild);
    sys.writeSite<Addr>(y + NodeOff::right, x, siteChild);
    updateHeight(sys, x);
    updateHeight(sys, y);
    return y;
}

Addr
AvlTreeWorkload::rebalance(PmContext &sys, Addr node)
{
    updateHeight(sys, node);
    const Addr left = sys.read<Addr>(node + NodeOff::left);
    const Addr right = sys.read<Addr>(node + NodeOff::right);
    const std::int64_t balance =
        static_cast<std::int64_t>(heightOf(sys, left)) -
        static_cast<std::int64_t>(heightOf(sys, right));
    sys.compute(opcost::perLevel);
    if (balance > 1) {
        if (heightOf(sys, sys.read<Addr>(left + NodeOff::left)) <
            heightOf(sys, sys.read<Addr>(left + NodeOff::right))) {
            sys.writeSite<Addr>(node + NodeOff::left,
                                rotateLeft(sys, left), siteChild);
        }
        return rotateRight(sys, node);
    }
    if (balance < -1) {
        if (heightOf(sys, sys.read<Addr>(right + NodeOff::right)) <
            heightOf(sys, sys.read<Addr>(right + NodeOff::left))) {
            sys.writeSite<Addr>(node + NodeOff::right,
                                rotateRight(sys, right), siteChild);
        }
        return rotateLeft(sys, node);
    }
    return node;
}

Addr
AvlTreeWorkload::insertRec(PmContext &sys, Addr node, std::uint64_t key,
                           Addr val_ptr, std::uint64_t val_len)
{
    if (!node) {
        const Addr fresh = sys.heap().alloc(
            NodeOff::size, sys.currentTxnSeq());
        sys.writeSite<std::uint64_t>(fresh + NodeOff::key, key,
                                     siteNodeInit);
        sys.writeSite<Addr>(fresh + NodeOff::left, 0, siteNodeInit);
        sys.writeSite<Addr>(fresh + NodeOff::right, 0, siteNodeInit);
        sys.writeSite<std::uint64_t>(fresh + NodeOff::height, 1,
                                     siteNodeInit);
        sys.writeSite<Addr>(fresh + NodeOff::valPtr, val_ptr,
                            siteNodeInit);
        sys.writeSite<std::uint64_t>(fresh + NodeOff::valLen, val_len,
                                     siteNodeInit);
        return fresh;
    }
    sys.compute(opcost::perLevel);
    const auto nk = sys.read<std::uint64_t>(node + NodeOff::key);
    const Bytes side = key > nk ? NodeOff::right : NodeOff::left;
    const Addr child = sys.read<Addr>(node + side);
    const Addr sub = insertRec(sys, child, key, val_ptr, val_len);
    if (sub != child)
        sys.writeSite<Addr>(node + side, sub, siteChild);
    return rebalance(sys, node);
}

void
AvlTreeWorkload::insert(PmContext &sys, std::uint64_t key,
                        const std::vector<std::uint8_t> &value)
{
    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));

    const Addr val_ptr = sys.heap().alloc(value.size(), seq);
    sys.writeBytesSite(val_ptr, value.data(), value.size(),
                       siteValueInit);

    const Addr root = sys.read<Addr>(headerAddr + HdrOff::root);
    const Addr new_root =
        insertRec(sys, root, key, val_ptr, value.size());
    if (new_root != root)
        sys.writeSite<Addr>(headerAddr + HdrOff::root, new_root,
                            siteRoot);

    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    sys.writeSite<std::uint64_t>(headerAddr + HdrOff::count, cnt + 1,
                                 siteCount);
    tx.commit();
}

bool
AvlTreeWorkload::lookup(PmContext &sys, std::uint64_t key,
                        std::vector<std::uint8_t> *out)
{
    Addr cursor = sys.read<Addr>(headerAddr + HdrOff::root);
    while (cursor) {
        sys.compute(opcost::perLevel);
        const auto ck = sys.read<std::uint64_t>(cursor + NodeOff::key);
        if (ck == key) {
            if (out) {
                const Addr vp = sys.read<Addr>(cursor + NodeOff::valPtr);
                const auto vl =
                    sys.read<std::uint64_t>(cursor + NodeOff::valLen);
                out->resize(vl);
                sys.readBytes(vp, out->data(), vl);
            }
            return true;
        }
        cursor = sys.read<Addr>(
            cursor + (key > ck ? NodeOff::right : NodeOff::left));
    }
    return false;
}

std::size_t
AvlTreeWorkload::count(PmContext &sys)
{
    return sys.read<std::uint64_t>(headerAddr + HdrOff::count);
}

std::uint64_t
AvlTreeWorkload::recomputeHeights(PmContext &sys, Addr node,
                                  std::size_t *n,
                                  std::vector<Addr> *reachable)
{
    if (!node)
        return 0;
    ++*n;
    reachable->push_back(node);
    reachable->push_back(sys.peek<Addr>(node + NodeOff::valPtr));
    const std::uint64_t hl = recomputeHeights(
        sys, sys.peek<Addr>(node + NodeOff::left), n, reachable);
    const std::uint64_t hr = recomputeHeights(
        sys, sys.peek<Addr>(node + NodeOff::right), n, reachable);
    const std::uint64_t h = 1 + std::max(hl, hr);
    if (sys.peek<std::uint64_t>(node + NodeOff::height) != h) {
        // Fix the stale lazy height in place (recovery transaction).
        sys.write<std::uint64_t>(node + NodeOff::height, h);
    }
    return h;
}

void
AvlTreeWorkload::recover(PmContext &sys)
{
    headerAddr = sys.peek<Addr>(sys.rootSlotAddr(headerRootSlot));
    const Addr root = sys.peek<Addr>(headerAddr + HdrOff::root);

    std::size_t n = 0;
    std::vector<Addr> reachable = {headerAddr};
    DurableTx tx(sys);
    recomputeHeights(sys, root, &n, &reachable);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, n);
    tx.commit();
    sys.heap().rebuild(reachable);
    sys.quiesce();
}

bool
AvlTreeWorkload::checkNode(PmContext &sys, Addr node, std::uint64_t lo,
                           std::uint64_t hi, std::uint64_t *height,
                           std::size_t *n, std::string *why)
{
    if (!node) {
        *height = 0;
        return true;
    }
    const auto key = sys.read<std::uint64_t>(node + NodeOff::key);
    if (key <= lo || key >= hi)
        return failCheck(why, "BST order violated");
    std::uint64_t hl = 0;
    std::uint64_t hr = 0;
    if (!checkNode(sys, sys.read<Addr>(node + NodeOff::left), lo, key,
                   &hl, n, why) ||
        !checkNode(sys, sys.read<Addr>(node + NodeOff::right), key, hi,
                   &hr, n, why))
        return false;
    const std::uint64_t h = 1 + std::max(hl, hr);
    if (sys.read<std::uint64_t>(node + NodeOff::height) != h)
        return failCheck(why, "stored height is stale");
    const std::int64_t balance = static_cast<std::int64_t>(hl) -
                                 static_cast<std::int64_t>(hr);
    if (balance < -1 || balance > 1)
        return failCheck(why, "AVL balance violated");
    *height = h;
    ++*n;
    return true;
}

bool
AvlTreeWorkload::checkConsistency(PmContext &sys, std::string *why)
{
    std::uint64_t h = 0;
    std::size_t n = 0;
    if (!checkNode(sys, sys.read<Addr>(headerAddr + HdrOff::root), 0,
                   std::numeric_limits<std::uint64_t>::max(), &h, &n,
                   why))
        return false;
    if (n != sys.read<std::uint64_t>(headerAddr + HdrOff::count))
        return failCheck(why, "count mismatch");
    return true;
}

bool
AvlTreeWorkload::update(PmContext &sys, std::uint64_t key,
                        const std::vector<std::uint8_t> &value)
{
    Addr node = sys.read<Addr>(headerAddr + HdrOff::root);
    while (node) {
        const auto nk = sys.read<std::uint64_t>(node + NodeOff::key);
        if (nk == key)
            break;
        node = sys.read<Addr>(
            node + (key > nk ? NodeOff::right : NodeOff::left));
    }
    if (!node)
        return false;

    DurableTx tx(sys);
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));
    const std::uint64_t seq = sys.currentTxnSeq();
    const Addr new_blob = sys.heap().alloc(value.size(), seq);
    sys.writeBytesSite(new_blob, value.data(), value.size(),
                       siteValueInit);
    const Addr old_blob = sys.read<Addr>(node + NodeOff::valPtr);
    sys.writeSite<Addr>(node + NodeOff::valPtr, new_blob, siteChild);
    sys.writeSite<std::uint64_t>(node + NodeOff::valLen, value.size(),
                                 siteChild);
    tx.commit();
    sys.heap().free(old_blob);
    return true;
}

} // namespace slpmt
