/**
 * @file
 * Workload factory: name -> instance, plus the benchmark groupings of
 * Section VI (the four STAMP-style kernels and the three PMDK KV
 * backends).
 */

#ifndef SLPMT_WORKLOADS_FACTORY_HH
#define SLPMT_WORKLOADS_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace slpmt
{

/** Create a workload by its paper name (e.g. "hashtable", "kv-btree"). */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

/** The kernel benchmarks of Figure 8. */
const std::vector<std::string> &kernelWorkloads();

/** The PMKV backends of Figure 14. */
const std::vector<std::string> &kvWorkloads();

/** The log-free-by-design index structures (skiplist, blinktree). */
const std::vector<std::string> &indexWorkloads();

/** Every workload. */
const std::vector<std::string> &allWorkloads();

} // namespace slpmt

#endif // SLPMT_WORKLOADS_FACTORY_HH
