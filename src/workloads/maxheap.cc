#include "workloads/maxheap.hh"

#include <unordered_set>

namespace slpmt
{

void
MaxHeapWorkload::setup(PmContext &sys)
{
    auto &sites = sys.sites();
    siteValueInit = sites.add({.name = "heap.insert.value",
                               .manual = {.lazy = false, .logFree = true},
                               .origin = ValueOrigin::Input,
                               .targetsFreshAlloc = true,
                               .defUseDepth = 1});
    siteNewSlot = sites.add({.name = "heap.insert.newSlot",
                             .manual = {.lazy = false, .logFree = true},
                             .origin = ValueOrigin::Input,
                             .requiresDeepSemantics = true,
                             .defUseDepth = 2});
    siteShift = sites.add({.name = "heap.siftUp.shift",
                           .manual = {},
                           .origin = ValueOrigin::PmLoad,
                           .defUseDepth = 3});
    siteCount = sites.add({.name = "heap.insert.count",
                           .manual = {},
                           .origin = ValueOrigin::Computed,
                           .defUseDepth = 2});
    siteGrowCopy = sites.add({.name = "heap.grow.copy",
                              .manual = {.lazy = false, .logFree = true},
                              .origin = ValueOrigin::PmLoad,
                              .targetsFreshAlloc = true,
                              .defUseDepth = 3});
    siteDeadPoison = sites.add({.name = "heap.remove.poison",
                                .manual = {.lazy = true, .logFree = true},
                                .origin = ValueOrigin::Constant,
                                .targetsDeadRegion = true,
                                .defUseDepth = 1});
    siteHeader = sites.add({.name = "heap.grow.header",
                            .manual = {},
                            .origin = ValueOrigin::Computed,
                            .defUseDepth = 2});

    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    headerAddr = sys.heap().alloc(HdrOff::size, seq);
    const Addr arr = sys.heap().alloc(initialCapacity * entryBytes, seq);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, 0);
    sys.write<std::uint64_t>(headerAddr + HdrOff::capacity,
                             initialCapacity);
    sys.write<Addr>(headerAddr + HdrOff::arrPtr, arr);
    sys.writeRoot(headerRootSlot, headerAddr);
    tx.commit();
    sys.quiesce();
}

MaxHeapWorkload::Entry
MaxHeapWorkload::readEntry(PmContext &sys, Addr arr, std::uint64_t idx)
{
    const Addr e = arr + idx * entryBytes;
    return {sys.read<std::uint64_t>(e), sys.read<Addr>(e + 8),
            sys.read<std::uint64_t>(e + 16)};
}

void
MaxHeapWorkload::writeEntry(PmContext &sys, Addr arr, std::uint64_t idx,
                            const Entry &e, SiteId site)
{
    const Addr a = arr + idx * entryBytes;
    sys.writeSite<std::uint64_t>(a, e.key, site);
    sys.writeSite<Addr>(a + 8, e.valPtr, site);
    sys.writeSite<std::uint64_t>(a + 16, e.valLen, site);
}

void
MaxHeapWorkload::grow(PmContext &sys)
{
    const auto cap =
        sys.read<std::uint64_t>(headerAddr + HdrOff::capacity);
    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    const Addr old_arr = sys.read<Addr>(headerAddr + HdrOff::arrPtr);
    const Addr new_arr = sys.heap().alloc(cap * 2 * entryBytes,
                                          sys.currentTxnSeq());
    for (std::uint64_t i = 0; i < cnt; ++i) {
        sys.compute(opcost::perMove);
        writeEntry(sys, new_arr, i, readEntry(sys, old_arr, i),
                   siteGrowCopy);
    }
    sys.writeSite<std::uint64_t>(headerAddr + HdrOff::capacity, cap * 2,
                                 siteHeader);
    sys.writeSite<Addr>(headerAddr + HdrOff::arrPtr, new_arr,
                        siteHeader);
    sys.heap().free(old_arr);
}

void
MaxHeapWorkload::insert(PmContext &sys, std::uint64_t key,
                        const std::vector<std::uint8_t> &value)
{
    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));

    const Addr val_ptr = sys.heap().alloc(value.size(), seq);
    sys.writeBytesSite(val_ptr, value.data(), value.size(),
                       siteValueInit);

    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    const auto cap =
        sys.read<std::uint64_t>(headerAddr + HdrOff::capacity);
    if (cnt == cap)
        grow(sys);
    const Addr arr = sys.read<Addr>(headerAddr + HdrOff::arrPtr);

    // Hole bubbling: shift smaller ancestors down the path, then drop
    // the new element into the final hole. The first hole (arr[count])
    // is dead space, so its write is log-free; shifts into live slots
    // are logged.
    std::uint64_t hole = cnt;
    while (hole > 0) {
        sys.compute(opcost::perLevel);
        const std::uint64_t parent = (hole - 1) / 2;
        const Entry pe = readEntry(sys, arr, parent);
        if (pe.key >= key)
            break;
        writeEntry(sys, arr, hole, pe,
                   hole == cnt ? siteNewSlot : siteShift);
        hole = parent;
    }
    writeEntry(sys, arr, hole, {key, val_ptr, value.size()},
               hole == cnt ? siteNewSlot : siteShift);

    sys.writeSite<std::uint64_t>(headerAddr + HdrOff::count, cnt + 1,
                                 siteCount);
    tx.commit();
}

bool
MaxHeapWorkload::lookup(PmContext &sys, std::uint64_t key,
                        std::vector<std::uint8_t> *out)
{
    // Linear scan: a heap is not an index, but the checker needs to
    // verify membership and payloads.
    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    const Addr arr = sys.read<Addr>(headerAddr + HdrOff::arrPtr);
    for (std::uint64_t i = 0; i < cnt; ++i) {
        const Entry e = readEntry(sys, arr, i);
        if (e.key == key) {
            if (out) {
                out->resize(e.valLen);
                sys.readBytes(e.valPtr, out->data(), e.valLen);
            }
            return true;
        }
    }
    return false;
}

bool
MaxHeapWorkload::peekMax(PmContext &sys, std::uint64_t *key_out)
{
    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    if (cnt == 0)
        return false;
    const Addr arr = sys.read<Addr>(headerAddr + HdrOff::arrPtr);
    if (key_out)
        *key_out = readEntry(sys, arr, 0).key;
    return true;
}

std::size_t
MaxHeapWorkload::count(PmContext &sys)
{
    return sys.read<std::uint64_t>(headerAddr + HdrOff::count);
}

void
MaxHeapWorkload::recover(PmContext &sys)
{
    // Everything structural is eager: after the hardware undo replay
    // the array and count are consistent. Only leaked allocations
    // (value blob / grown array of an interrupted transaction) need
    // collecting.
    headerAddr = sys.peek<Addr>(sys.rootSlotAddr(headerRootSlot));
    const auto cnt = sys.peek<std::uint64_t>(headerAddr + HdrOff::count);
    const Addr arr = sys.peek<Addr>(headerAddr + HdrOff::arrPtr);

    std::vector<Addr> reachable = {headerAddr, arr};
    for (std::uint64_t i = 0; i < cnt; ++i)
        reachable.push_back(sys.peek<Addr>(arr + i * entryBytes + 8));
    sys.heap().rebuild(reachable);
    sys.quiesce();
}

bool
MaxHeapWorkload::checkConsistency(PmContext &sys, std::string *why)
{
    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    const auto cap =
        sys.read<std::uint64_t>(headerAddr + HdrOff::capacity);
    const Addr arr = sys.read<Addr>(headerAddr + HdrOff::arrPtr);
    if (cnt > cap)
        return failCheck(why, "count exceeds capacity");
    std::unordered_set<Addr> blobs;
    for (std::uint64_t i = 1; i < cnt; ++i) {
        const Entry e = readEntry(sys, arr, i);
        const Entry p = readEntry(sys, arr, (i - 1) / 2);
        if (p.key < e.key)
            return failCheck(why, "heap property violated");
        if (!blobs.insert(e.valPtr).second)
            return failCheck(why, "duplicate value pointer");
    }
    return true;
}

bool
MaxHeapWorkload::update(PmContext &sys, std::uint64_t key,
                        const std::vector<std::uint8_t> &value)
{
    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    const Addr arr = sys.read<Addr>(headerAddr + HdrOff::arrPtr);
    std::uint64_t idx = cnt;
    for (std::uint64_t i = 0; i < cnt; ++i) {
        if (sys.read<std::uint64_t>(arr + i * entryBytes) == key) {
            idx = i;
            break;
        }
    }
    if (idx == cnt)
        return false;

    DurableTx tx(sys);
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));
    const std::uint64_t seq = sys.currentTxnSeq();
    const Addr new_blob = sys.heap().alloc(value.size(), seq);
    sys.writeBytesSite(new_blob, value.data(), value.size(),
                       siteValueInit);
    const Addr entry = arr + idx * entryBytes;
    const Addr old_blob = sys.read<Addr>(entry + 8);
    sys.writeSite<Addr>(entry + 8, new_blob, siteShift);
    sys.writeSite<std::uint64_t>(entry + 16, value.size(), siteShift);
    tx.commit();
    sys.heap().free(old_blob);
    return true;
}

bool
MaxHeapWorkload::remove(PmContext &sys, std::uint64_t key)
{
    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    const Addr arr = sys.read<Addr>(headerAddr + HdrOff::arrPtr);
    std::uint64_t idx = cnt;
    for (std::uint64_t i = 0; i < cnt; ++i) {
        if (sys.read<std::uint64_t>(arr + i * entryBytes) == key) {
            idx = i;
            break;
        }
    }
    if (idx == cnt)
        return false;

    DurableTx tx(sys);
    sys.compute(opcost::insertBase / 2);
    const Addr blob = sys.read<Addr>(arr + idx * entryBytes + 8);
    const std::uint64_t last = cnt - 1;

    if (idx != last) {
        // Move the last entry into the hole, then restore the heap
        // property by sifting it up or down (all logged stores: they
        // touch live slots).
        Entry moved = readEntry(sys, arr, last);
        std::uint64_t hole = idx;
        // Sift up while larger than the parent.
        while (hole > 0) {
            sys.compute(opcost::perLevel);
            const std::uint64_t up = (hole - 1) / 2;
            const Entry pe = readEntry(sys, arr, up);
            if (pe.key >= moved.key)
                break;
            writeEntry(sys, arr, hole, pe, siteShift);
            hole = up;
        }
        // Then sift down while smaller than the larger child.
        while (true) {
            sys.compute(opcost::perLevel);
            std::uint64_t child = hole * 2 + 1;
            if (child >= last)
                break;
            Entry ce = readEntry(sys, arr, child);
            if (child + 1 < last) {
                const Entry rc = readEntry(sys, arr, child + 1);
                if (rc.key > ce.key) {
                    ++child;
                    ce = rc;
                }
            }
            if (ce.key <= moved.key)
                break;
            writeEntry(sys, arr, hole, ce, siteShift);
            hole = child;
        }
        writeEntry(sys, arr, hole, moved, siteShift);
    }
    // Pattern 1b: the slot beyond the new count is dead space.
    writeEntry(sys, arr, last, {0, 0, 0}, siteDeadPoison);
    sys.writeSite<std::uint64_t>(headerAddr + HdrOff::count, last,
                                 siteCount);
    tx.commit();
    sys.heap().free(blob);
    return true;
}

} // namespace slpmt
