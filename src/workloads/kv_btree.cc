#include "workloads/kv_btree.hh"

#include <limits>

namespace slpmt
{

void
KvBtreeWorkload::setup(PmContext &sys)
{
    auto &sites = sys.sites();
    siteFreshNode = sites.add({.name = "kv-btree.split.freshNode",
                               .manual = {.lazy = false, .logFree = true},
                               .origin = ValueOrigin::PmLoad,
                               .targetsFreshAlloc = true,
                               .defUseDepth = 3});
    siteValueInit = sites.add({.name = "kv-btree.insert.value",
                               .manual = {.lazy = false, .logFree = true},
                               .origin = ValueOrigin::Input,
                               .targetsFreshAlloc = true,
                               .defUseDepth = 1});
    siteEntry = sites.add({.name = "kv-btree.insert.entry",
                           .manual = {},
                           .origin = ValueOrigin::PmLoad,
                           .defUseDepth = 3});
    siteMeta = sites.add({.name = "kv-btree.insert.meta",
                          .manual = {},
                          .origin = ValueOrigin::Computed,
                          .defUseDepth = 2});
    siteCount = sites.add({.name = "kv-btree.insert.count",
                           .manual = {.lazy = true, .logFree = false},
                           .origin = ValueOrigin::Computed,
                           .rebuildable = true,
                           .requiresDeepSemantics = true,
                           .defUseDepth = 3});

    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    headerAddr = sys.heap().alloc(HdrOff::size, seq);
    const Addr root = allocNode(sys, tagLeaf);
    sys.write<Addr>(headerAddr + HdrOff::root, root);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, 0);
    sys.writeRoot(headerRootSlot, headerAddr);
    tx.commit();
    sys.quiesce();
}

Addr
KvBtreeWorkload::allocNode(PmContext &sys, std::uint64_t tag)
{
    const Addr node =
        sys.heap().alloc(NodeOff::size, sys.currentTxnSeq());
    sys.writeSite<std::uint64_t>(node + NodeOff::tag, tag,
                                 siteFreshNode);
    sys.writeSite<std::uint64_t>(node + NodeOff::numKeys, 0,
                                 siteFreshNode);
    return node;
}

void
KvBtreeWorkload::splitChild(PmContext &sys, Addr parent,
                            std::uint64_t idx, Addr child)
{
    // B+-tree split: a fresh right sibling takes the upper half. For
    // a leaf the separator is *copied* up (it remains the sibling's
    // first entry); for an internal node the median moves up.
    const auto tag = sys.read<std::uint64_t>(child + NodeOff::tag);
    const Addr sibling = allocNode(sys, tag);
    const std::uint64_t mid = maxKeys / 2;  // 3
    const std::uint64_t first =
        tag == tagLeaf ? mid : mid + 1;     // first index moved
    const std::uint64_t moved = maxKeys - first;
    const std::uint64_t separator =
        sys.read<std::uint64_t>(keyAddr(child, mid));

    for (std::uint64_t i = 0; i < moved; ++i) {
        sys.compute(opcost::perMove);
        sys.writeSite<std::uint64_t>(
            keyAddr(sibling, i),
            sys.read<std::uint64_t>(keyAddr(child, first + i)),
            siteFreshNode);
        if (tag == tagLeaf) {
            sys.writeSite<Addr>(
                valPtrAddr(sibling, i),
                sys.read<Addr>(valPtrAddr(child, first + i)),
                siteFreshNode);
            sys.writeSite<std::uint64_t>(
                valLenAddr(sibling, i),
                sys.read<std::uint64_t>(valLenAddr(child, first + i)),
                siteFreshNode);
        }
    }
    if (tag == tagInternal) {
        for (std::uint64_t i = 0; i <= moved; ++i) {
            sys.writeSite<Addr>(
                childAddr(sibling, i),
                sys.read<Addr>(childAddr(child, first + i)),
                siteFreshNode);
        }
    }
    sys.writeSite<std::uint64_t>(sibling + NodeOff::numKeys, moved,
                                 siteFreshNode);
    // Shrinking the child is a logged metadata update (its stale upper
    // entries become dead space).
    sys.writeSite<std::uint64_t>(child + NodeOff::numKeys, mid,
                                 siteMeta);

    // Insert the separator + sibling pointer into the parent.
    const auto pn = sys.read<std::uint64_t>(parent + NodeOff::numKeys);
    for (std::uint64_t i = pn; i > idx; --i) {
        sys.writeSite<std::uint64_t>(
            keyAddr(parent, i),
            sys.read<std::uint64_t>(keyAddr(parent, i - 1)), siteEntry);
        sys.writeSite<Addr>(childAddr(parent, i + 1),
                            sys.read<Addr>(childAddr(parent, i)),
                            siteEntry);
    }
    sys.writeSite<std::uint64_t>(keyAddr(parent, idx), separator,
                                 siteEntry);
    sys.writeSite<Addr>(childAddr(parent, idx + 1), sibling, siteEntry);
    sys.writeSite<std::uint64_t>(parent + NodeOff::numKeys, pn + 1,
                                 siteMeta);
}

void
KvBtreeWorkload::insertNonFull(PmContext &sys, Addr node,
                               std::uint64_t key, Addr val_ptr,
                               std::uint64_t val_len)
{
    while (true) {
        sys.compute(opcost::perLevel);
        const auto tag = sys.read<std::uint64_t>(node + NodeOff::tag);
        const auto n = sys.read<std::uint64_t>(node + NodeOff::numKeys);
        if (tag == tagLeaf) {
            // Shift larger entries right, then place the new one.
            std::uint64_t i = n;
            while (i > 0 &&
                   sys.read<std::uint64_t>(keyAddr(node, i - 1)) > key) {
                sys.writeSite<std::uint64_t>(
                    keyAddr(node, i),
                    sys.read<std::uint64_t>(keyAddr(node, i - 1)),
                    siteEntry);
                sys.writeSite<Addr>(valPtrAddr(node, i),
                                    sys.read<Addr>(valPtrAddr(node,
                                                              i - 1)),
                                    siteEntry);
                sys.writeSite<std::uint64_t>(
                    valLenAddr(node, i),
                    sys.read<std::uint64_t>(valLenAddr(node, i - 1)),
                    siteEntry);
                --i;
            }
            sys.writeSite<std::uint64_t>(keyAddr(node, i), key,
                                         siteEntry);
            sys.writeSite<Addr>(valPtrAddr(node, i), val_ptr, siteEntry);
            sys.writeSite<std::uint64_t>(valLenAddr(node, i), val_len,
                                         siteEntry);
            sys.writeSite<std::uint64_t>(node + NodeOff::numKeys, n + 1,
                                         siteMeta);
            return;
        }
        // Internal: find the child (keys equal to a separator live in
        // its right subtree), splitting the child first if full.
        std::uint64_t i = 0;
        while (i < n && key >= sys.read<std::uint64_t>(keyAddr(node, i)))
            ++i;
        Addr child = sys.read<Addr>(childAddr(node, i));
        if (sys.read<std::uint64_t>(child + NodeOff::numKeys) ==
            maxKeys) {
            splitChild(sys, node, i, child);
            if (key >= sys.read<std::uint64_t>(keyAddr(node, i)))
                ++i;
            child = sys.read<Addr>(childAddr(node, i));
        }
        node = child;
    }
}

void
KvBtreeWorkload::insert(PmContext &sys, std::uint64_t key,
                        const std::vector<std::uint8_t> &value)
{
    DurableTx tx(sys);
    const std::uint64_t seq = sys.currentTxnSeq();
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));

    const Addr val_ptr = sys.heap().alloc(value.size(), seq);
    sys.writeBytesSite(val_ptr, value.data(), value.size(),
                       siteValueInit);

    Addr root = sys.read<Addr>(headerAddr + HdrOff::root);
    if (sys.read<std::uint64_t>(root + NodeOff::numKeys) == maxKeys) {
        const Addr new_root = allocNode(sys, tagInternal);
        sys.writeSite<Addr>(childAddr(new_root, 0), root, siteFreshNode);
        splitChild(sys, new_root, 0, root);
        sys.writeSite<Addr>(headerAddr + HdrOff::root, new_root,
                            siteMeta);
        root = new_root;
    }
    insertNonFull(sys, root, key, val_ptr, value.size());

    const auto cnt = sys.read<std::uint64_t>(headerAddr + HdrOff::count);
    sys.writeSite<std::uint64_t>(headerAddr + HdrOff::count, cnt + 1,
                                 siteCount);
    tx.commit();
}

bool
KvBtreeWorkload::lookup(PmContext &sys, std::uint64_t key,
                        std::vector<std::uint8_t> *out)
{
    Addr node = sys.read<Addr>(headerAddr + HdrOff::root);
    while (true) {
        sys.compute(opcost::perLevel);
        const auto tag = sys.read<std::uint64_t>(node + NodeOff::tag);
        const auto n = sys.read<std::uint64_t>(node + NodeOff::numKeys);
        if (tag == tagLeaf) {
            for (std::uint64_t i = 0; i < n; ++i) {
                if (sys.read<std::uint64_t>(keyAddr(node, i)) == key) {
                    if (out) {
                        const Addr vp =
                            sys.read<Addr>(valPtrAddr(node, i));
                        const auto vl = sys.read<std::uint64_t>(
                            valLenAddr(node, i));
                        out->resize(vl);
                        sys.readBytes(vp, out->data(), vl);
                    }
                    return true;
                }
            }
            return false;
        }
        std::uint64_t i = 0;
        while (i < n && key >= sys.read<std::uint64_t>(keyAddr(node, i)))
            ++i;
        node = sys.read<Addr>(childAddr(node, i));
    }
}

void
KvBtreeWorkload::collectReachable(PmContext &sys, Addr node,
                                  std::vector<Addr> *out, std::size_t *n)
{
    out->push_back(node);
    const auto tag = sys.peek<std::uint64_t>(node + NodeOff::tag);
    const auto nk = sys.peek<std::uint64_t>(node + NodeOff::numKeys);
    if (tag == tagLeaf) {
        *n += nk;
        for (std::uint64_t i = 0; i < nk; ++i)
            out->push_back(sys.peek<Addr>(valPtrAddr(node, i)));
        return;
    }
    for (std::uint64_t i = 0; i <= nk; ++i)
        collectReachable(sys, sys.peek<Addr>(childAddr(node, i)), out,
                         n);
}

std::size_t
KvBtreeWorkload::count(PmContext &sys)
{
    return sys.read<std::uint64_t>(headerAddr + HdrOff::count);
}

void
KvBtreeWorkload::recover(PmContext &sys)
{
    headerAddr = sys.peek<Addr>(sys.rootSlotAddr(headerRootSlot));
    std::vector<Addr> reachable = {headerAddr};
    std::size_t n = 0;
    collectReachable(sys, sys.peek<Addr>(headerAddr + HdrOff::root),
                     &reachable, &n);
    DurableTx tx(sys);
    sys.write<std::uint64_t>(headerAddr + HdrOff::count, n);
    tx.commit();
    sys.heap().rebuild(reachable);
    sys.quiesce();
}

bool
KvBtreeWorkload::checkNode(PmContext &sys, Addr node, std::uint64_t lo,
                           std::uint64_t hi, std::size_t depth,
                           std::size_t *leaf_depth, std::size_t *n,
                           std::string *why)
{
    // Keys live in the half-open range [lo, hi): a B+-tree separator
    // equals the smallest key of its right subtree.
    const auto tag = sys.read<std::uint64_t>(node + NodeOff::tag);
    const auto nk = sys.read<std::uint64_t>(node + NodeOff::numKeys);
    if (nk > maxKeys)
        return failCheck(why, "node overfull");
    bool has_prev = false;
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < nk; ++i) {
        const auto k = sys.read<std::uint64_t>(keyAddr(node, i));
        if (k < lo || k >= hi)
            return failCheck(why, "key outside subtree range");
        if (has_prev && k <= prev)
            return failCheck(why, "key order violated");
        prev = k;
        has_prev = true;
    }
    if (tag == tagLeaf) {
        if (*leaf_depth == 0)
            *leaf_depth = depth;
        else if (*leaf_depth != depth)
            return failCheck(why, "leaves at different depths");
        *n += nk;
        return true;
    }
    std::uint64_t child_lo = lo;
    for (std::uint64_t i = 0; i <= nk; ++i) {
        const std::uint64_t child_hi =
            i < nk ? sys.read<std::uint64_t>(keyAddr(node, i)) : hi;
        const Addr child = sys.read<Addr>(childAddr(node, i));
        if (!child)
            return failCheck(why, "missing child");
        if (!checkNode(sys, child, child_lo, child_hi, depth + 1,
                       leaf_depth, n, why))
            return false;
        child_lo = child_hi;
    }
    return true;
}

bool
KvBtreeWorkload::checkConsistency(PmContext &sys, std::string *why)
{
    std::size_t leaf_depth = 0;
    std::size_t n = 0;
    if (!checkNode(sys, sys.read<Addr>(headerAddr + HdrOff::root), 0,
                   std::numeric_limits<std::uint64_t>::max(), 1,
                   &leaf_depth, &n, why))
        return false;
    if (n != sys.read<std::uint64_t>(headerAddr + HdrOff::count))
        return failCheck(why, "count mismatch");
    return true;
}

bool
KvBtreeWorkload::update(PmContext &sys, std::uint64_t key,
                        const std::vector<std::uint8_t> &value)
{
    Addr node = sys.read<Addr>(headerAddr + HdrOff::root);
    while (sys.read<std::uint64_t>(node + NodeOff::tag) == tagInternal) {
        const auto n = sys.read<std::uint64_t>(node + NodeOff::numKeys);
        std::uint64_t i = 0;
        while (i < n && key >= sys.read<std::uint64_t>(keyAddr(node, i)))
            ++i;
        node = sys.read<Addr>(childAddr(node, i));
    }
    const auto n = sys.read<std::uint64_t>(node + NodeOff::numKeys);
    std::uint64_t idx = n;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (sys.read<std::uint64_t>(keyAddr(node, i)) == key) {
            idx = i;
            break;
        }
    }
    if (idx == n)
        return false;

    DurableTx tx(sys);
    sys.compute(opcost::insertBase + opcost::valueWork(value.size()));
    const std::uint64_t seq = sys.currentTxnSeq();
    const Addr new_blob = sys.heap().alloc(value.size(), seq);
    sys.writeBytesSite(new_blob, value.data(), value.size(),
                       siteValueInit);
    const Addr old_blob = sys.read<Addr>(valPtrAddr(node, idx));
    sys.writeSite<Addr>(valPtrAddr(node, idx), new_blob, siteEntry);
    sys.writeSite<std::uint64_t>(valLenAddr(node, idx), value.size(),
                                 siteEntry);
    tx.commit();
    sys.heap().free(old_blob);
    return true;
}

} // namespace slpmt
