/**
 * @file
 * Array-backed max heap (Table II: "max heap using an array to store
 * all the nodes").
 *
 * Annotation design:
 *  - Value blobs: log-free eager (fresh allocations, Pattern 1).
 *  - The write placing an element into slot arr[count]: log-free —
 *    slots beyond the committed count are dead, so a crash leaves
 *    nothing to undo (a "deep semantics" justification only the
 *    manual annotation carries).
 *  - Sift-up shifts into live slots and the count update: normal
 *    logged eager stores — partial persistence of a shift chain would
 *    lose elements, so they must be undo-protected.
 *  - Array growth copies into the fresh doubled array: log-free
 *    (fresh region; the old array stays intact until the header swing
 *    commits).
 *
 * The heap therefore profits mainly from log-free stores, not lazy
 * persistency — matching the paper's per-benchmark spread.
 */

#ifndef SLPMT_WORKLOADS_MAXHEAP_HH
#define SLPMT_WORKLOADS_MAXHEAP_HH

#include "workloads/workload.hh"

namespace slpmt
{

/** The durable array max heap. */
class MaxHeapWorkload : public Workload
{
  public:
    static constexpr std::size_t headerRootSlot = 3;
    static constexpr std::uint64_t initialCapacity = 64;

    std::string name() const override { return "heap"; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<MaxHeapWorkload>(*this);
    }
    void setup(PmContext &sys) override;
    void insert(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    bool lookup(PmContext &sys, std::uint64_t key,
                std::vector<std::uint8_t> *out) override;
    bool update(PmContext &sys, std::uint64_t key,
                const std::vector<std::uint8_t> &value) override;
    std::size_t count(PmContext &sys) override;
    void recover(PmContext &sys) override;
    bool checkConsistency(PmContext &sys, std::string *why) override;

    /** Remove-by-key via swap-with-last and bidirectional sift. */
    bool remove(PmContext &sys, std::uint64_t key) override;

    /** Read the maximum key (the heap's core query). */
    bool peekMax(PmContext &sys, std::uint64_t *key_out);

  private:
    /** Entry: {key, valPtr, valLen} — three words. */
    static constexpr Bytes entryBytes = 24;

    struct HdrOff
    {
        static constexpr Bytes count = 0;
        static constexpr Bytes capacity = 8;
        static constexpr Bytes arrPtr = 16;
        static constexpr Bytes size = 24;
    };

    struct Entry
    {
        std::uint64_t key;
        Addr valPtr;
        std::uint64_t valLen;
    };

    Entry readEntry(PmContext &sys, Addr arr, std::uint64_t idx);
    void writeEntry(PmContext &sys, Addr arr, std::uint64_t idx,
                    const Entry &e, SiteId site);

    void grow(PmContext &sys);

    SiteId siteValueInit = 0;
    SiteId siteNewSlot = 0;    //!< arr[count] (dead-beyond-count)
    SiteId siteShift = 0;      //!< sift-up writes into live slots
    SiteId siteCount = 0;      //!< header count (commit pivot)
    SiteId siteGrowCopy = 0;   //!< copies into the fresh array
    SiteId siteHeader = 0;     //!< capacity/arrPtr swing
    SiteId siteDeadPoison = 0; //!< Pattern 1b: dead slot

    Addr headerAddr = 0;
};

} // namespace slpmt

#endif // SLPMT_WORKLOADS_MAXHEAP_HH
