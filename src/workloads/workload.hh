/**
 * @file
 * Common interface of the durable data-structure workloads (Table II).
 *
 * Every workload is a persistent key-value container built on the
 * PmContext API — the machine surface both the single-core PmSystem
 * and the per-core contexts of the multicore machine implement.
 * Insertions run as one durable transaction each, with
 * storeT annotations issued through registered store sites so the
 * same code runs under the manual, compiler, or null annotation
 * policy. Each workload also implements its crash recovery — the
 * structure-specific fix-up of log-free and lazily persistent data
 * that Section IV assigns to the program/runtime — and a deep
 * consistency checker used by the property tests.
 *
 * Two workload families implement the interface: the logging-reliant
 * structures (hashtable, rbtree, heap, avl, kv-btree, kv-ctree,
 * kv-rtree), whose durability comes from the schemes' undo/redo
 * machinery, and the log-free-by-design index structures (skiplist,
 * blinktree), which are crash consistent through single-atomic-store
 * publication and writers-fix-inconsistency repair, and use the
 * selective-logging annotations to *eliminate* records rather than to
 * defer them. `factory.hh` groups them (kernelWorkloads, kvWorkloads,
 * indexWorkloads).
 */

#ifndef SLPMT_WORKLOADS_WORKLOAD_HH
#define SLPMT_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/pm_context.hh"
#include "core/tx.hh"

namespace slpmt
{

/**
 * Instruction-work constants charged by the workloads on top of the
 * simulated memory-access latencies. Calibrated once against the
 * paper's absolute speedup band (a transactional PM insert executes
 * a few thousand instructions: allocator, key hashing/comparison,
 * transaction runtime); the *relative* results across schemes are
 * driven by the memory system, not by these constants.
 */
namespace opcost
{

/** Per-insert fixed work: allocation, argument marshalling, runtime. */
inline constexpr Cycles insertBase = 900;

/** Per node visited during a descent/probe. */
inline constexpr Cycles perLevel = 25;

/** Per 64 bytes of value payload staged and copied. */
inline constexpr Cycles perValueLine = 40;

/** Per element moved during a bulk reorganisation (rehash, grow). */
inline constexpr Cycles perMove = 60;

/** Work for one value payload of @p bytes. */
constexpr Cycles
valueWork(std::size_t bytes)
{
    return (static_cast<Cycles>(bytes) / 64 + 1) * perValueLine;
}

} // namespace opcost

/** A durable key-value container under test. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Workload name as used in the paper's figures. */
    virtual std::string name() const = 0;

    /**
     * Copy of this workload's host-side state (roots, site IDs,
     * cursors — the durable structure itself lives in the simulated
     * machine). Checkpointed crash sweeps pair a machine restore with
     * a workload clone taken at the same instant.
     */
    virtual std::unique_ptr<Workload> clone() const = 0;

    /**
     * Create the empty durable structure (registers store sites,
     * allocates roots). Leaves the system quiesced.
     */
    virtual void setup(PmContext &sys) = 0;

    /** Insert one key/value pair in one durable transaction. */
    virtual void insert(PmContext &sys, std::uint64_t key,
                        const std::vector<std::uint8_t> &value) = 0;

    /**
     * Replace an existing key's value in one durable transaction.
     * All workloads use the same out-of-place pattern: the new blob
     * is a fresh allocation (log-free eager storeT), the pointer and
     * length fields of the owning node are logged stores, and the old
     * blob is reclaimed only after the commit (deferred free — a
     * within-transaction reuse could durably overwrite data the undo
     * rollback still points at).
     *
     * @return false when the key is absent (no transaction runs)
     */
    virtual bool update(PmContext &sys, std::uint64_t key,
                        const std::vector<std::uint8_t> &value) = 0;

    /** Look a key up; fills @p out when found. */
    virtual bool lookup(PmContext &sys, std::uint64_t key,
                        std::vector<std::uint8_t> *out) = 0;

    /**
     * Remove a key in one durable transaction. Removal is where the
     * paper's Pattern-1b applies: stores into the region the
     * transaction frees (poisoning the dead node) need neither
     * logging nor persistence, so they are issued as lazy log-free
     * storeT. Implemented by the structures with simple unlink paths
     * (hashtable, kv-ctree, heap, skiplist, blinktree); the default
     * reports "unsupported".
     *
     * @return false when the key is absent or removal is unsupported
     */
    virtual bool
    remove(PmContext &sys, std::uint64_t key)
    {
        (void)sys;
        (void)key;
        return false;
    }

    /** Number of keys currently stored (walks the structure). */
    virtual std::size_t count(PmContext &sys) = 0;

    /**
     * Post-crash structure recovery. Called after the hardware undo
     * replay; rebuilds log-free/lazy data from durable state, then
     * garbage-collects leaked allocations.
     */
    virtual void recover(PmContext &sys) = 0;

    /**
     * Deep invariant check (structure-specific: hash placement, BST
     * order, balance, checksums, ...).
     *
     * @param why set to a diagnostic when the check fails
     */
    virtual bool checkConsistency(PmContext &sys, std::string *why) = 0;
};

/** Null-terminated diagnostic helper. */
inline bool
failCheck(std::string *why, const std::string &msg)
{
    if (why)
        *why = msg;
    return false;
}

} // namespace slpmt

#endif // SLPMT_WORKLOADS_WORKLOAD_HH
