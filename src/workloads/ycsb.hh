/**
 * @file
 * YCSB-load style workload generator (Section VI-A).
 *
 * The paper drives every benchmark with the ycsb-load phase: 1,000
 * insertion operations, 8-byte keys, and a configurable value size
 * (256 bytes by default; Figures 10/11 sweep 16..256 bytes). Keys are
 * distinct and pseudo-random; value bytes are a deterministic
 * function of the key so checkers can recompute them.
 */

#ifndef SLPMT_WORKLOADS_YCSB_HH
#define SLPMT_WORKLOADS_YCSB_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"

namespace slpmt
{

/** One generated operation. */
struct YcsbOp
{
    std::uint64_t key;
    std::vector<std::uint8_t> value;
};

/** Parameters of a ycsb-load run. */
struct YcsbConfig
{
    std::size_t numOps = 1000;
    std::size_t valueBytes = 256;
    std::uint64_t seed = 42;
};

/** Deterministic value contents for a key. */
inline std::vector<std::uint8_t>
ycsbValueFor(std::uint64_t key, std::size_t value_bytes)
{
    std::vector<std::uint8_t> value(value_bytes);
    std::uint64_t state = key ^ 0xabcdef0123456789ULL;
    for (std::size_t i = 0; i < value_bytes; ++i)
        value[i] = static_cast<std::uint8_t>(splitmix64(state));
    return value;
}

/** Generate the insert-only load trace. */
inline std::vector<YcsbOp>
ycsbLoad(const YcsbConfig &cfg)
{
    Rng rng(cfg.seed);
    std::unordered_set<std::uint64_t> seen;
    std::vector<YcsbOp> ops;
    ops.reserve(cfg.numOps);
    while (ops.size() < cfg.numOps) {
        // Distinct 8-byte keys, nonzero and below 2^63 so checkers can
        // use 0 and UINT64_MAX as open sentinel bounds.
        const std::uint64_t key = (rng.next() >> 1) | 1ULL;
        if (!seen.insert(key).second)
            continue;
        ops.push_back({key, ycsbValueFor(key, cfg.valueBytes)});
    }
    return ops;
}

/** Operation kinds of the mixed (YCSB-A-style) trace. */
enum class YcsbOpKind : std::uint8_t
{
    Insert,
    Update,
    Remove,
};

/** One operation of a mixed trace. */
struct YcsbMixedOp
{
    YcsbOpKind kind;
    std::uint64_t key;
    std::vector<std::uint8_t> value;  //!< empty for Remove
};

/** Parameters of a mixed insert/update/remove trace. */
struct YcsbMixConfig
{
    std::size_t numOps = 1000;
    std::size_t valueBytes = 256;
    std::uint64_t seed = 42;
    unsigned insertPct = 100;  //!< remainder splits update/remove
    unsigned updatePct = 0;
    unsigned removePct = 0;
};

/**
 * Generate a mixed trace. Updates and removes target keys that are
 * live at that point of the trace, so replaying the trace in order
 * against an initially empty structure always finds its targets (a
 * structure that does not support remove() simply reports false and
 * runs no transaction for those ops). Fully deterministic in the seed.
 */
inline std::vector<YcsbMixedOp>
ycsbMixedLoad(const YcsbMixConfig &cfg)
{
    Rng rng(cfg.seed);
    std::unordered_set<std::uint64_t> seen;
    std::vector<std::uint64_t> live;
    std::vector<YcsbMixedOp> ops;
    ops.reserve(cfg.numOps);
    std::uint64_t update_salt = 0;
    while (ops.size() < cfg.numOps) {
        const unsigned roll = static_cast<unsigned>(rng.below(100));
        if (live.empty() || roll < cfg.insertPct) {
            const std::uint64_t key = (rng.next() >> 1) | 1ULL;
            if (!seen.insert(key).second)
                continue;
            live.push_back(key);
            ops.push_back({YcsbOpKind::Insert, key,
                           ycsbValueFor(key, cfg.valueBytes)});
        } else if (roll < cfg.insertPct + cfg.updatePct) {
            const std::uint64_t key = live[rng.below(live.size())];
            // A fresh deterministic value, distinct from the insert's.
            ops.push_back({YcsbOpKind::Update, key,
                           ycsbValueFor(key ^ mix64(++update_salt),
                                        cfg.valueBytes)});
        } else {
            const std::size_t idx = rng.below(live.size());
            const std::uint64_t key = live[idx];
            live[idx] = live.back();
            live.pop_back();
            ops.push_back({YcsbOpKind::Remove, key, {}});
        }
    }
    return ops;
}

} // namespace slpmt

#endif // SLPMT_WORKLOADS_YCSB_HH
