/**
 * @file
 * YCSB-load style workload generator (Section VI-A).
 *
 * The paper drives every benchmark with the ycsb-load phase: 1,000
 * insertion operations, 8-byte keys, and a configurable value size
 * (256 bytes by default; Figures 10/11 sweep 16..256 bytes). Keys are
 * distinct and pseudo-random; value bytes are a deterministic
 * function of the key so checkers can recompute them.
 */

#ifndef SLPMT_WORKLOADS_YCSB_HH
#define SLPMT_WORKLOADS_YCSB_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"

namespace slpmt
{

/** One generated operation. */
struct YcsbOp
{
    std::uint64_t key;
    std::vector<std::uint8_t> value;
};

/** Parameters of a ycsb-load run. */
struct YcsbConfig
{
    std::size_t numOps = 1000;
    std::size_t valueBytes = 256;
    std::uint64_t seed = 42;
};

/** Deterministic value contents for a key. */
inline std::vector<std::uint8_t>
ycsbValueFor(std::uint64_t key, std::size_t value_bytes)
{
    std::vector<std::uint8_t> value(value_bytes);
    std::uint64_t state = key ^ 0xabcdef0123456789ULL;
    for (std::size_t i = 0; i < value_bytes; ++i)
        value[i] = static_cast<std::uint8_t>(splitmix64(state));
    return value;
}

/** Generate the insert-only load trace. */
inline std::vector<YcsbOp>
ycsbLoad(const YcsbConfig &cfg)
{
    Rng rng(cfg.seed);
    std::unordered_set<std::uint64_t> seen;
    std::vector<YcsbOp> ops;
    ops.reserve(cfg.numOps);
    while (ops.size() < cfg.numOps) {
        // Distinct 8-byte keys, nonzero and below 2^63 so checkers can
        // use 0 and UINT64_MAX as open sentinel bounds.
        const std::uint64_t key = (rng.next() >> 1) | 1ULL;
        if (!seen.insert(key).second)
            continue;
        ops.push_back({key, ycsbValueFor(key, cfg.valueBytes)});
    }
    return ops;
}

} // namespace slpmt

#endif // SLPMT_WORKLOADS_YCSB_HH
