#include "sim/json.hh"

#include <cctype>
#include <cstdlib>

namespace slpmt
{

namespace
{

/** Recursive-descent JSON reader over an in-memory string. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text(text), err(error)
    {
    }

    bool
    document(JsonValue *out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        if (pos != text.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &why)
    {
        if (err)
            *err = why + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    expect(char ch)
    {
        if (pos >= text.size() || text[pos] != ch)
            return fail(std::string("expected '") + ch + "'");
        ++pos;
        return true;
    }

    bool
    literal(const char *word, JsonValue *out, JsonValue::Type type,
            bool boolean)
    {
        for (const char *p = word; *p; ++p, ++pos) {
            if (pos >= text.size() || text[pos] != *p)
                return fail(std::string("bad literal, expected ") + word);
        }
        out->type = type;
        out->boolean = boolean;
        return true;
    }

    bool
    value(JsonValue *out)
    {
        if (++depth > maxDepth)
            return fail("nesting too deep");
        bool ok = valueInner(out);
        --depth;
        return ok;
    }

    bool
    valueInner(JsonValue *out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        switch (text[pos]) {
          case '{': return object(out);
          case '[': return array(out);
          case '"':
            out->type = JsonValue::Type::String;
            return string(&out->string);
          case 't': return literal("true", out, JsonValue::Type::Bool, true);
          case 'f':
            return literal("false", out, JsonValue::Type::Bool, false);
          case 'n': return literal("null", out, JsonValue::Type::Null, false);
          default: return number(out);
        }
    }

    bool
    object(JsonValue *out)
    {
        out->type = JsonValue::Type::Object;
        if (!expect('{'))
            return false;
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(&key))
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            if (!value(&out->object[key]))
                return false;
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            return expect('}');
        }
    }

    bool
    array(JsonValue *out)
    {
        out->type = JsonValue::Type::Array;
        if (!expect('['))
            return false;
        skipWs();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            out->array.emplace_back();
            if (!value(&out->array.back()))
                return false;
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            return expect(']');
        }
    }

    bool
    string(std::string *out)
    {
        if (!expect('"'))
            return false;
        out->clear();
        while (pos < text.size()) {
            const char ch = text[pos];
            if (ch == '"') {
                ++pos;
                return true;
            }
            if (ch == '\\') {
                ++pos;
                if (pos >= text.size())
                    break;
                switch (text[pos]) {
                  case '"': *out += '"'; break;
                  case '\\': *out += '\\'; break;
                  case '/': *out += '/'; break;
                  case 'b': *out += '\b'; break;
                  case 'f': *out += '\f'; break;
                  case 'n': *out += '\n'; break;
                  case 'r': *out += '\r'; break;
                  case 't': *out += '\t'; break;
                  case 'u': {
                    // Reports only escape control characters; decode
                    // the BMP code point as a raw byte when it fits.
                    if (pos + 4 >= text.size())
                        return fail("truncated \\u escape");
                    const std::string hex = text.substr(pos + 1, 4);
                    char *end = nullptr;
                    const unsigned long cp =
                        std::strtoul(hex.c_str(), &end, 16);
                    if (end != hex.c_str() + 4)
                        return fail("bad \\u escape");
                    if (cp < 0x80) {
                        *out += static_cast<char>(cp);
                    } else {
                        *out += static_cast<char>(0xC0 | (cp >> 6));
                        *out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    pos += 4;
                    break;
                  }
                  default: return fail("unknown escape");
                }
                ++pos;
                continue;
            }
            *out += ch;
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue *out)
    {
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            return fail("malformed value");
        out->type = JsonValue::Type::Number;
        out->number = v;
        pos += static_cast<std::size_t>(end - start);
        return true;
    }

    static constexpr int maxDepth = 64;

    const std::string &text;
    std::string *err;
    std::size_t pos = 0;
    int depth = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue *out, std::string *error)
{
    *out = JsonValue{};
    return Parser(text, error).document(out);
}

} // namespace slpmt
