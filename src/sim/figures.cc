#include "sim/figures.hh"

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "compiler/compiler_policy.hh"
#include "core/pm_system.hh"
#include "sim/report.hh"
#include "workloads/factory.hh"
#include "workloads/loadgen.hh"

namespace slpmt
{
namespace
{

// -------------------------------------------------------------------
// Figure 8: kernel speedups and traffic reduction over FG
// -------------------------------------------------------------------

const std::vector<SchemeKind> fig8Schemes = {
    SchemeKind::FG,    SchemeKind::FG_LG, SchemeKind::FG_LZ,
    SchemeKind::SLPMT, SchemeKind::ATOM,  SchemeKind::EDE,
};

std::vector<ExperimentCase>
fig8Cases()
{
    MatrixSpec spec;
    spec.workloads = kernelWorkloads();
    spec.schemes = fig8Schemes;
    return expandMatrix(spec);
}

void
fig8Print(const MatrixResult &res)
{
    TableReport speedup("Figure 8 (left): speedup over FG baseline");
    TableReport traffic(
        "Figure 8 (right): PM write-traffic reduction over FG baseline");
    std::vector<std::string> cols = {"benchmark"};
    for (SchemeKind s : fig8Schemes)
        cols.push_back(schemeName(s));
    speedup.header(cols);
    traffic.header(cols);

    std::map<SchemeKind, std::vector<double>> all_speedups;
    std::map<SchemeKind, std::vector<double>> all_traffic;

    for (const auto &workload : kernelWorkloads()) {
        const auto &base = res.get(caseKey(workload, SchemeKind::FG));
        std::vector<std::string> srow = {workload};
        std::vector<std::string> trow = {workload};
        for (SchemeKind s : fig8Schemes) {
            const auto &cell = res.get(caseKey(workload, s));
            const double sp = cell.cycles
                                  ? static_cast<double>(base.cycles) /
                                        static_cast<double>(cell.cycles)
                                  : 0;
            const double tr = cell.trafficReductionOver(base);
            srow.push_back(TableReport::ratio(sp));
            trow.push_back(TableReport::percent(tr));
            all_speedups[s].push_back(sp);
            all_traffic[s].push_back(tr);
        }
        speedup.row(srow);
        traffic.row(trow);
    }

    std::vector<std::string> srow = {"geomean"};
    std::vector<std::string> trow = {"mean"};
    for (SchemeKind s : fig8Schemes) {
        srow.push_back(TableReport::ratio(geomean(all_speedups[s])));
        double sum = 0;
        for (double v : all_traffic[s])
            sum += v;
        trow.push_back(TableReport::percent(
            sum / static_cast<double>(all_traffic[s].size())));
    }
    speedup.row(srow);
    traffic.row(trow);
    speedup.print();
    traffic.print();

    // Headline cross-scheme ratios (Section VI-D).
    TableReport headline("Section VI-D headline: SLPMT vs prior designs");
    headline.header({"comparison", "geomean speedup"});
    for (SchemeKind other :
         {SchemeKind::FG, SchemeKind::ATOM, SchemeKind::EDE}) {
        std::vector<double> ratios;
        for (const auto &workload : kernelWorkloads()) {
            const auto &slpmt =
                res.get(caseKey(workload, SchemeKind::SLPMT));
            const auto &o = res.get(caseKey(workload, other));
            ratios.push_back(static_cast<double>(o.cycles) /
                             static_cast<double>(slpmt.cycles));
        }
        headline.row({"SLPMT vs " + schemeName(other),
                      TableReport::ratio(geomean(ratios))});
    }
    headline.print();
}

// -------------------------------------------------------------------
// Figure 9: cache-line-granularity SLPMT vs featureless baseline
// -------------------------------------------------------------------

std::vector<ExperimentCase>
fig9Cases()
{
    MatrixSpec spec;
    spec.workloads = kernelWorkloads();
    spec.schemes = {SchemeKind::ATOM, SchemeKind::SLPMT_CL};
    return expandMatrix(spec);
}

void
fig9Print(const MatrixResult &res)
{
    TableReport table(
        "Figure 9: cache-line-granularity SLPMT vs featureless "
        "line-granularity baseline");
    table.header({"benchmark", "SLPMT-CL speedup",
                  "extra traffic without features"});
    std::vector<double> speedups;
    std::vector<double> extra;
    for (const auto &workload : kernelWorkloads()) {
        const auto &base = res.get(caseKey(workload, SchemeKind::ATOM));
        const auto &cl =
            res.get(caseKey(workload, SchemeKind::SLPMT_CL));
        const double sp = cl.speedupOver(base);
        const double ex =
            cl.pmWriteBytes
                ? static_cast<double>(base.pmWriteBytes) /
                          static_cast<double>(cl.pmWriteBytes) -
                      1.0
                : 0;
        speedups.push_back(sp);
        extra.push_back(ex);
        table.row({workload, TableReport::ratio(sp),
                   TableReport::percent(ex)});
    }
    double mean_extra = 0;
    for (double e : extra)
        mean_extra += e;
    mean_extra /= static_cast<double>(extra.size());
    table.row({"geomean/mean", TableReport::ratio(geomean(speedups)),
               TableReport::percent(mean_extra)});
    table.print();
}

// -------------------------------------------------------------------
// Figures 10/11: value-size sensitivity (speedup / traffic)
// -------------------------------------------------------------------

const std::vector<std::size_t> valueSizeSweep = {16, 32, 64, 128, 256};

std::vector<ExperimentCase>
valueSizeCases()
{
    MatrixSpec spec;
    spec.workloads = kernelWorkloads();
    spec.schemes = {SchemeKind::FG, SchemeKind::SLPMT};
    spec.valueSizes = valueSizeSweep;
    return expandMatrix(spec);
}

void
fig10Print(const MatrixResult &res)
{
    TableReport table("Figure 10: SLPMT speedup over FG vs value size");
    std::vector<std::string> cols = {"benchmark"};
    for (std::size_t vs : valueSizeSweep)
        cols.push_back(std::to_string(vs) + "B");
    table.header(cols);

    std::map<std::size_t, std::vector<double>> by_size;
    for (const auto &workload : kernelWorkloads()) {
        std::vector<std::string> row = {workload};
        for (std::size_t vs : valueSizeSweep) {
            const auto suffix = std::to_string(vs) + "B";
            const auto &base =
                res.get(caseKey(workload, SchemeKind::FG, suffix));
            const auto &slpmt =
                res.get(caseKey(workload, SchemeKind::SLPMT, suffix));
            const double sp = slpmt.speedupOver(base);
            by_size[vs].push_back(sp);
            row.push_back(TableReport::ratio(sp));
        }
        table.row(row);
    }
    std::vector<std::string> row = {"geomean"};
    for (std::size_t vs : valueSizeSweep)
        row.push_back(TableReport::ratio(geomean(by_size[vs])));
    table.row(row);
    table.print();
}

void
fig11Print(const MatrixResult &res)
{
    TableReport rel(
        "Figure 11: write-traffic reduction (relative) vs value size");
    TableReport abs(
        "Figure 11: write-traffic reduction (KB saved) vs value size");
    std::vector<std::string> cols = {"benchmark"};
    for (std::size_t vs : valueSizeSweep)
        cols.push_back(std::to_string(vs) + "B");
    rel.header(cols);
    abs.header(cols);

    for (const auto &workload : kernelWorkloads()) {
        std::vector<std::string> rrow = {workload};
        std::vector<std::string> arow = {workload};
        for (std::size_t vs : valueSizeSweep) {
            const auto suffix = std::to_string(vs) + "B";
            const auto &base =
                res.get(caseKey(workload, SchemeKind::FG, suffix));
            const auto &slpmt =
                res.get(caseKey(workload, SchemeKind::SLPMT, suffix));
            rrow.push_back(
                TableReport::percent(slpmt.trafficReductionOver(base)));
            const double saved_kb =
                (static_cast<double>(base.pmWriteBytes) -
                 static_cast<double>(slpmt.pmWriteBytes)) /
                1024.0;
            arow.push_back(TableReport::num(saved_kb));
        }
        rel.row(rrow);
        abs.row(arow);
    }
    rel.print();
    abs.print();
}

// -------------------------------------------------------------------
// Figure 12: PM write-latency sensitivity
// -------------------------------------------------------------------

const std::vector<std::uint64_t> latencySweepNs = {500, 1100, 1700,
                                                   2300};

std::vector<ExperimentCase>
fig12Cases()
{
    MatrixSpec spec;
    spec.workloads = kernelWorkloads();
    spec.schemes = {SchemeKind::FG, SchemeKind::SLPMT};
    spec.pmWriteLatenciesNs = latencySweepNs;
    return expandMatrix(spec);
}

void
fig12Print(const MatrixResult &res)
{
    TableReport table(
        "Figure 12: SLPMT speedup over FG vs PM write latency");
    std::vector<std::string> cols = {"benchmark"};
    for (std::uint64_t lat : latencySweepNs)
        cols.push_back(std::to_string(lat) + "ns");
    table.header(cols);

    std::map<std::uint64_t, std::vector<double>> by_lat;
    for (const auto &workload : kernelWorkloads()) {
        std::vector<std::string> row = {workload};
        for (std::uint64_t lat : latencySweepNs) {
            const auto suffix = std::to_string(lat) + "ns";
            const auto &base =
                res.get(caseKey(workload, SchemeKind::FG, suffix));
            const auto &slpmt =
                res.get(caseKey(workload, SchemeKind::SLPMT, suffix));
            const double sp = slpmt.speedupOver(base);
            by_lat[lat].push_back(sp);
            row.push_back(TableReport::ratio(sp));
        }
        table.row(row);
    }
    std::vector<std::string> row = {"geomean"};
    for (std::uint64_t lat : latencySweepNs)
        row.push_back(TableReport::ratio(geomean(by_lat[lat])));
    table.row(row);
    table.print();
}

// -------------------------------------------------------------------
// Figure 13: compiler pass vs manual annotations
// -------------------------------------------------------------------

std::vector<std::string>
fig13Workloads()
{
    auto names = kernelWorkloads();
    names.push_back("kv-btree");
    return names;
}

/** clang -O2 baseline build time per benchmark, seconds (modelled). */
double
baselineCompileSec(const std::string &workload)
{
    if (workload == "kv-btree")
        return 0.65;  // the paper's largest relative overhead case
    if (workload == "hashtable")
        return 1.9;
    if (workload == "rbtree")
        return 2.3;
    if (workload == "heap")
        return 1.4;
    return 1.8;  // avl
}

std::vector<ExperimentCase>
fig13Cases()
{
    // Not a full cross product: the FG baseline runs once (manual
    // annotations are inert under FG) and SLPMT runs per mode.
    struct Mode
    {
        AnnotationMode mode;
        SchemeKind scheme;
        const char *tag;
    };
    const Mode modes[] = {
        {AnnotationMode::Manual, SchemeKind::FG, "base"},
        {AnnotationMode::Manual, SchemeKind::SLPMT, "manual"},
        {AnnotationMode::Compiler, SchemeKind::SLPMT, "compiler"},
    };
    std::vector<ExperimentCase> cases;
    for (const auto &workload : fig13Workloads()) {
        for (const Mode &m : modes) {
            ExperimentCase c;
            c.workload = workload;
            c.cfg.scheme = m.scheme;
            c.cfg.annotations = m.mode;
            c.key = caseKey(workload, m.scheme, m.tag);
            cases.push_back(std::move(c));
        }
    }
    return cases;
}

void
fig13Print(const MatrixResult &res)
{
    TableReport speedup(
        "Figure 13 (left): speedup over FG, manual vs compiler "
        "annotations");
    speedup.header({"benchmark", "manual", "compiler"});
    std::vector<double> manual_all;
    std::vector<double> compiler_all;
    for (const auto &workload : fig13Workloads()) {
        const auto &base =
            res.get(caseKey(workload, SchemeKind::FG, "base"));
        const auto &manual =
            res.get(caseKey(workload, SchemeKind::SLPMT, "manual"));
        const auto &compiler =
            res.get(caseKey(workload, SchemeKind::SLPMT, "compiler"));
        const double sm = manual.speedupOver(base);
        const double sc = compiler.speedupOver(base);
        manual_all.push_back(sm);
        compiler_all.push_back(sc);
        speedup.row({workload, TableReport::ratio(sm),
                     TableReport::ratio(sc)});
    }
    speedup.row({"geomean", TableReport::ratio(geomean(manual_all)),
                 TableReport::ratio(geomean(compiler_all))});
    speedup.print();

    // Annotation coverage (the 16-of-26 observation).
    TableReport coverage("Figure 13: compiler annotation coverage");
    coverage.header({"benchmark", "manual sites", "compiler found",
                     "missed (deep semantics)"});
    std::size_t total_manual = 0;
    std::size_t total_found = 0;
    for (const auto &workload : kernelWorkloads()) {
        PmSystem sys{SystemConfig{}};
        auto w = makeWorkload(workload);
        w->setup(sys);
        const AnnotationReport report = compareAnnotations(sys.sites());
        total_manual += report.manualAnnotated;
        total_found += report.compilerFound;
        coverage.row({workload,
                      TableReport::integer(report.manualAnnotated),
                      TableReport::integer(report.compilerFound),
                      TableReport::integer(report.missed)});
    }
    coverage.row({"total (paper: 16 of 26)",
                  TableReport::integer(total_manual),
                  TableReport::integer(total_found),
                  TableReport::integer(total_manual - total_found)});
    coverage.print();

    // Compile time (Figure 13 right).
    TableReport compile(
        "Figure 13 (right): compile time with the storeT pass");
    compile.header({"benchmark", "baseline (s)", "with pass (s)",
                    "overhead"});
    for (const auto &workload : fig13Workloads()) {
        PmSystem sys{SystemConfig{}};
        auto w = makeWorkload(workload);
        w->setup(sys);
        const CompileTimeEstimate est = estimateCompileTime(
            sys.sites(), baselineCompileSec(workload));
        compile.row({workload, TableReport::num(est.baselineSec),
                     TableReport::num(est.withAnalysisSec),
                     TableReport::percent(est.overheadFraction())});
    }
    compile.print();
}

// -------------------------------------------------------------------
// Figure 14: PMKV backends at 256B and 16B values
// -------------------------------------------------------------------

const std::vector<SchemeKind> fig14Schemes = {
    SchemeKind::FG, SchemeKind::SLPMT, SchemeKind::ATOM,
    SchemeKind::EDE};

std::vector<ExperimentCase>
fig14Cases()
{
    MatrixSpec spec;
    spec.workloads = kvWorkloads();
    spec.schemes = fig14Schemes;
    spec.valueSizes = {256, 16};
    return expandMatrix(spec);
}

void
fig14Print(const MatrixResult &res)
{
    for (std::size_t vs : {std::size_t(256), std::size_t(16)}) {
        const auto suffix = std::to_string(vs) + "B";
        TableReport table("Figure 14 (" + suffix +
                          " values): speedup over FG baseline");
        std::vector<std::string> cols = {"benchmark"};
        for (SchemeKind s : fig14Schemes)
            cols.push_back(schemeName(s));
        cols.push_back("traffic cut (SLPMT)");
        table.header(cols);

        std::map<SchemeKind, std::vector<double>> all;
        for (const auto &workload : kvWorkloads()) {
            const auto &base =
                res.get(caseKey(workload, SchemeKind::FG, suffix));
            std::vector<std::string> row = {workload};
            for (SchemeKind s : fig14Schemes) {
                const auto &cell = res.get(caseKey(workload, s, suffix));
                const double sp = cell.speedupOver(base);
                all[s].push_back(sp);
                row.push_back(TableReport::ratio(sp));
            }
            const auto &slpmt =
                res.get(caseKey(workload, SchemeKind::SLPMT, suffix));
            row.push_back(
                TableReport::percent(slpmt.trafficReductionOver(base)));
            table.row(row);
        }
        std::vector<std::string> row = {"geomean"};
        for (SchemeKind s : fig14Schemes)
            row.push_back(TableReport::ratio(geomean(all[s])));
        table.row(row);
        table.print();

        TableReport vs_prior("Figure 14 (" + suffix +
                             "): SLPMT vs prior hardware designs");
        vs_prior.header({"benchmark", "vs ATOM", "vs EDE"});
        std::vector<double> vs_atom;
        std::vector<double> vs_ede;
        for (const auto &workload : kvWorkloads()) {
            const auto &slpmt =
                res.get(caseKey(workload, SchemeKind::SLPMT, suffix));
            const auto &atom =
                res.get(caseKey(workload, SchemeKind::ATOM, suffix));
            const auto &ede =
                res.get(caseKey(workload, SchemeKind::EDE, suffix));
            const double a = slpmt.speedupOver(atom);
            const double e = slpmt.speedupOver(ede);
            vs_atom.push_back(a);
            vs_ede.push_back(e);
            vs_prior.row({workload, TableReport::ratio(a),
                          TableReport::ratio(e)});
        }
        vs_prior.row({"geomean", TableReport::ratio(geomean(vs_atom)),
                      TableReport::ratio(geomean(vs_ede))});
        vs_prior.print();
    }
}

// -------------------------------------------------------------------
// logfree: software log-freedom vs hardware selective logging
// -------------------------------------------------------------------

/** The log-free-by-design indexes plus a logging-reliant reference. */
std::vector<std::string>
logfreeWorkloads()
{
    auto names = indexWorkloads();  // skiplist, blinktree
    names.push_back("rbtree");
    return names;
}

std::vector<ExperimentCase>
logfreeCases()
{
    // Three regimes per structure: the FG logging baseline (manual
    // annotations inert), SLPMT hardware with the annotations ignored
    // (every store logged), and SLPMT with the manual annotations —
    // where the log-free structures commit with (near) zero records.
    struct Mode
    {
        AnnotationMode mode;
        SchemeKind scheme;
        const char *tag;
    };
    const Mode modes[] = {
        {AnnotationMode::Manual, SchemeKind::FG, "base"},
        {AnnotationMode::None, SchemeKind::SLPMT, "plain"},
        {AnnotationMode::Manual, SchemeKind::SLPMT, "slpmt"},
    };
    std::vector<ExperimentCase> cases;
    for (const auto &workload : logfreeWorkloads()) {
        for (const Mode &m : modes) {
            ExperimentCase c;
            c.workload = workload;
            c.cfg.scheme = m.scheme;
            c.cfg.annotations = m.mode;
            c.cfg.ycsb.numOps = 600;
            c.cfg.ycsb.valueBytes = 64;
            c.key = caseKey(workload, m.scheme, m.tag);
            cases.push_back(std::move(c));
        }
    }
    return cases;
}

void
logfreePrint(const MatrixResult &res)
{
    auto stat = [](const ExperimentResult &cell, const char *name) {
        auto it = cell.stats.find(name);
        return it == cell.stats.end() ? std::uint64_t{0} : it->second;
    };

    TableReport speedup(
        "logfree: speedup over the FG logging baseline (600 inserts, "
        "64B values)");
    speedup.header({"structure", "SLPMT unannotated", "SLPMT annotated",
                    "traffic cut (annotated)"});
    std::vector<double> plain_all;
    std::vector<double> slpmt_all;
    for (const auto &workload : logfreeWorkloads()) {
        const auto &base =
            res.get(caseKey(workload, SchemeKind::FG, "base"));
        const auto &plain =
            res.get(caseKey(workload, SchemeKind::SLPMT, "plain"));
        const auto &slpmt =
            res.get(caseKey(workload, SchemeKind::SLPMT, "slpmt"));
        const double sp = plain.speedupOver(base);
        const double ss = slpmt.speedupOver(base);
        plain_all.push_back(sp);
        slpmt_all.push_back(ss);
        speedup.row({workload, TableReport::ratio(sp),
                     TableReport::ratio(ss),
                     TableReport::percent(
                         slpmt.trafficReductionOver(base))});
    }
    speedup.row({"geomean", TableReport::ratio(geomean(plain_all)),
                 TableReport::ratio(geomean(slpmt_all)), ""});
    speedup.print();

    // The structural point of the figure: under the annotations the
    // log-free indexes *eliminate* records (publication stores need
    // none) while the logging-reliant reference merely shrinks or
    // defers its set.
    TableReport records(
        "logfree: undo/redo log records and elision per structure");
    records.header({"structure", "FG records", "SLPMT records",
                    "eliminated", "words elided", "lazy drains"});
    for (const auto &workload : logfreeWorkloads()) {
        const auto &base =
            res.get(caseKey(workload, SchemeKind::FG, "base"));
        const auto &slpmt =
            res.get(caseKey(workload, SchemeKind::SLPMT, "slpmt"));
        const double cut =
            base.logRecords
                ? 1.0 - static_cast<double>(slpmt.logRecords) /
                            static_cast<double>(base.logRecords)
                : 0.0;
        const std::uint64_t drains =
            stat(slpmt, "txn.lazyDrain.eviction") +
            stat(slpmt, "txn.lazyDrain.explicit") +
            stat(slpmt, "txn.lazyDrain.sigHit") +
            stat(slpmt, "txn.lazyDrain.lineOwner") +
            stat(slpmt, "txn.lazyDrain.idWrap");
        records.row({workload, TableReport::integer(base.logRecords),
                     TableReport::integer(slpmt.logRecords),
                     TableReport::percent(cut),
                     TableReport::integer(
                         stat(slpmt, "txn.logFreeWordsElided")),
                     TableReport::integer(drains)});
    }
    records.print();
}

// -------------------------------------------------------------------
// Sample: a small pinned sweep for quick CI / sanitizer runs
// -------------------------------------------------------------------

const std::vector<SchemeKind> sampleSchemes = {
    SchemeKind::FG, SchemeKind::SLPMT, SchemeKind::ATOM,
    SchemeKind::EDE};

std::vector<ExperimentCase>
sampleCases()
{
    MatrixSpec spec;
    spec.workloads = {"hashtable", "avl"};
    spec.schemes = sampleSchemes;
    spec.valueSizes = {64};
    spec.numOps = 200;
    return expandMatrix(spec);
}

void
samplePrint(const MatrixResult &res)
{
    TableReport table(
        "Sampled sweep (200 ops, 64B values): speedup over FG");
    std::vector<std::string> cols = {"benchmark"};
    for (SchemeKind s : sampleSchemes)
        cols.push_back(schemeName(s));
    table.header(cols);
    for (const auto &workload :
         {std::string("hashtable"), std::string("avl")}) {
        const auto &base = res.get(caseKey(workload, SchemeKind::FG));
        std::vector<std::string> row = {workload};
        for (SchemeKind s : sampleSchemes)
            row.push_back(TableReport::ratio(
                res.get(caseKey(workload, s)).speedupOver(base)));
        table.row(row);
    }
    table.print();
}

// -------------------------------------------------------------------
// Multi-core scalability: YCSB makespan and coherence activity
// -------------------------------------------------------------------

const std::vector<SchemeKind> mcscaleSchemes = {SchemeKind::FG,
                                                SchemeKind::SLPMT};
const std::vector<std::size_t> mcscaleCores = {1, 2, 4, 8};

std::vector<ExperimentCase>
mcscaleCases()
{
    // Every cell (including 1 core) runs the multicore driver so the
    // scaling baseline shares the scheduler, the shared-key mix and
    // the per-core op split with the scaled cells.
    std::vector<ExperimentCase> cases;
    for (SchemeKind s : mcscaleSchemes) {
        for (std::size_t cores : mcscaleCores) {
            ExperimentCase c;
            c.workload = "hashtable";
            c.key = caseKey(c.workload, s,
                            "c" + std::to_string(cores));
            c.cfg.scheme = s;
            c.cfg.numCores = cores;
            c.cfg.mcDriver = true;
            c.cfg.ycsb.numOps = 800;
            c.cfg.ycsb.valueBytes = 64;
            cases.push_back(c);
        }
    }
    return cases;
}

void
mcscalePrint(const MatrixResult &res)
{
    TableReport speed(
        "Multi-core scalability: YCSB-upsert makespan, hashtable, "
        "800 ops split across cores, 25% shared keys");
    std::vector<std::string> cols = {"scheme"};
    for (std::size_t cores : mcscaleCores)
        cols.push_back(std::to_string(cores) + (cores == 1 ? " core"
                                                           : " cores"));
    cols.push_back("speedup @8");
    speed.header(cols);
    for (SchemeKind s : mcscaleSchemes) {
        const auto &c1 = res.get(caseKey("hashtable", s, "c1"));
        std::vector<std::string> row = {schemeName(s)};
        for (std::size_t cores : mcscaleCores) {
            const auto &cell = res.get(
                caseKey("hashtable", s, "c" + std::to_string(cores)));
            row.push_back(TableReport::integer(cell.cycles));
        }
        const auto &c8 = res.get(caseKey("hashtable", s, "c8"));
        row.push_back(TableReport::ratio(c8.speedupOver(c1)));
        speed.row(row);
    }
    speed.print();

    TableReport coh("Multi-core coherence activity (SLPMT cells)");
    coh.header({"cores", "probes", "remote hits", "invalidations",
                "downgrades", "conflict aborts", "remote drains",
                "ctx-switch drains"});
    for (std::size_t cores : mcscaleCores) {
        const auto &cell = res.get(caseKey(
            "hashtable", SchemeKind::SLPMT,
            "c" + std::to_string(cores)));
        auto get = [&](const char *name) -> std::uint64_t {
            auto it = cell.stats.find(name);
            return it == cell.stats.end() ? 0 : it->second;
        };
        coh.row({std::to_string(cores),
                 TableReport::integer(get("multicore.probes")),
                 TableReport::integer(get("multicore.remoteHits")),
                 TableReport::integer(get("multicore.invalidations")),
                 TableReport::integer(get("multicore.downgrades")),
                 TableReport::integer(get("multicore.conflictAborts")),
                 TableReport::integer(
                     get("multicore.remoteDrains.sigHit") +
                     get("multicore.remoteDrains.idObserved")),
                 TableReport::integer(
                     get("multicore.ctxSwitchDrains"))});
    }
    coh.print();
}

// -------------------------------------------------------------------
// Service: sharded KV service scaling under YCSB request mixes
// -------------------------------------------------------------------

const std::vector<SchemeKind> serviceSchemes = {SchemeKind::FG,
                                                SchemeKind::SLPMT};
const std::vector<std::size_t> serviceShards = {1, 2, 4};
const std::vector<unsigned> serviceMixes = {0, 1, 2};  // YCSB A, B, C

std::string
serviceSuffix(std::size_t shards, bool zipf, unsigned mix)
{
    return "s" + std::to_string(shards) + "/" +
           (zipf ? "zipf" : "uni") + "/" +
           ycsbMixName(static_cast<YcsbMix>(mix));
}

std::vector<ExperimentCase>
serviceCases()
{
    std::vector<ExperimentCase> cases;
    for (SchemeKind s : serviceSchemes) {
        for (std::size_t shards : serviceShards) {
            for (bool zipf : {false, true}) {
                for (unsigned mix : serviceMixes) {
                    ExperimentCase c;
                    c.workload = "hashtable";
                    c.key = caseKey(c.workload, s,
                                    serviceSuffix(shards, zipf, mix));
                    c.cfg.scheme = s;
                    c.cfg.ycsb.numOps = 2000;
                    c.cfg.ycsb.valueBytes = 256;
                    c.cfg.service.shards = shards;
                    c.cfg.service.mix = mix;
                    c.cfg.service.zipfian = zipf;
                    c.cfg.service.zipfThetaBp = 9900;
                    c.cfg.service.keySpace = std::size_t{1} << 20;
                    c.cfg.service.preloadRecords = 2000;
                    c.cfg.service.valueBytesMin = 64;
                    c.cfg.service.churnInterval = 500;
                    cases.push_back(std::move(c));
                }
            }
        }
    }
    return cases;
}

void
servicePrint(const MatrixResult &res)
{
    auto stat = [](const ExperimentResult &cell, const char *name) {
        auto it = cell.stats.find(name);
        return it == cell.stats.end() ? std::uint64_t{0} : it->second;
    };

    for (unsigned mix : serviceMixes) {
        TableReport table(
            "Service scaling (YCSB-" +
            std::string(ycsbMixName(static_cast<YcsbMix>(mix))) +
            ", 2000 requests over 1M keys): throughput "
            "(requests/Gcycle) and request latency (cycles)");
        table.header({"scheme", "shards", "uni thr", "uni p50",
                      "uni p99", "uni p999", "zipf thr", "zipf p50",
                      "zipf p99", "zipf p999"});
        for (SchemeKind s : serviceSchemes) {
            for (std::size_t shards : serviceShards) {
                const auto &uni = res.get(caseKey(
                    "hashtable", s, serviceSuffix(shards, false, mix)));
                const auto &zipf = res.get(caseKey(
                    "hashtable", s, serviceSuffix(shards, true, mix)));
                table.row(
                    {schemeName(s), std::to_string(shards),
                     TableReport::integer(
                         stat(uni, "service.opsPerGcycle")),
                     TableReport::integer(
                         stat(uni, "service.latency.p50")),
                     TableReport::integer(
                         stat(uni, "service.latency.p99")),
                     TableReport::integer(
                         stat(uni, "service.latency.p999")),
                     TableReport::integer(
                         stat(zipf, "service.opsPerGcycle")),
                     TableReport::integer(
                         stat(zipf, "service.latency.p50")),
                     TableReport::integer(
                         stat(zipf, "service.latency.p99")),
                     TableReport::integer(
                         stat(zipf, "service.latency.p999"))});
            }
        }
        table.print();
    }

    // Commit latency on the mutation-heavy mix: the tail the paper's
    // logging schemes move.
    TableReport commit(
        "Service commit latency (YCSB-A mutations, cycles)");
    commit.header({"scheme", "shards", "uni p50", "uni p99",
                   "uni p999", "zipf p50", "zipf p99", "zipf p999"});
    for (SchemeKind s : serviceSchemes) {
        for (std::size_t shards : serviceShards) {
            const auto &uni = res.get(
                caseKey("hashtable", s, serviceSuffix(shards, false, 0)));
            const auto &zipf = res.get(
                caseKey("hashtable", s, serviceSuffix(shards, true, 0)));
            commit.row(
                {schemeName(s), std::to_string(shards),
                 TableReport::integer(
                     stat(uni, "service.commitLatency.p50")),
                 TableReport::integer(
                     stat(uni, "service.commitLatency.p99")),
                 TableReport::integer(
                     stat(uni, "service.commitLatency.p999")),
                 TableReport::integer(
                     stat(zipf, "service.commitLatency.p50")),
                 TableReport::integer(
                     stat(zipf, "service.commitLatency.p99")),
                 TableReport::integer(
                     stat(zipf, "service.commitLatency.p999"))});
        }
    }
    commit.print();
}

} // namespace

const std::vector<FigureSpec> &
figureRegistry()
{
    static const std::vector<FigureSpec> registry = {
        {"fig8", "kernel speedups / traffic reduction over FG",
         fig8Cases, fig8Print},
        {"fig9", "cache-line-granularity SLPMT vs ATOM baseline",
         fig9Cases, fig9Print},
        {"fig10", "speedup sensitivity to the value size",
         valueSizeCases, fig10Print},
        {"fig11", "traffic-reduction sensitivity to the value size",
         valueSizeCases, fig11Print},
        {"fig12", "speedup sensitivity to the PM write latency",
         fig12Cases, fig12Print},
        {"fig13", "compiler pass vs manual annotations", fig13Cases,
         fig13Print},
        {"fig14", "PMKV backends at 256B and 16B values", fig14Cases,
         fig14Print},
        {"sample", "small pinned sweep for quick CI runs", sampleCases,
         samplePrint},
        {"mcscale", "multi-core YCSB scalability (1/2/4/8 cores)",
         mcscaleCases, mcscalePrint},
        {"service", "sharded KV service scaling (shards x skew x mix)",
         serviceCases, servicePrint},
        {"logfree", "log-free-by-design indexes vs selective logging",
         logfreeCases, logfreePrint},
    };
    return registry;
}

const FigureSpec *
findFigure(const std::string &name)
{
    for (const FigureSpec &fig : figureRegistry()) {
        if (fig.name == name)
            return &fig;
    }
    return nullptr;
}

int
parseCommonFlag(const std::string &arg, BenchOptions *opts,
                std::string *error)
{
    auto valueOf = [&arg](const std::string &prefix) {
        return arg.substr(prefix.size());
    };
    auto startsWith = [&arg](const std::string &prefix) {
        return arg.rfind(prefix, 0) == 0;
    };

    if (startsWith("--workers=")) {
        const std::string v = valueOf("--workers=");
        char *end = nullptr;
        const unsigned long n = std::strtoul(v.c_str(), &end, 10);
        if (v.empty() || *end) {
            *error = "bad --workers value: " + v;
            return -1;
        }
        opts->workers = static_cast<std::size_t>(n);
        return 1;
    }
    if (arg == "--json") {
        opts->emitJson = true;
        opts->jsonPath.clear();
        return 1;
    }
    if (startsWith("--json=")) {
        opts->emitJson = true;
        opts->jsonPath = valueOf("--json=");
        return 1;
    }
    if (arg == "--stats") {
        opts->includeStats = true;
        return 1;
    }
    if (startsWith("--baseline=")) {
        opts->baselinePath = valueOf("--baseline=");
        return 1;
    }
    if (startsWith("--threshold=")) {
        const std::string v = valueOf("--threshold=");
        char *end = nullptr;
        const double t = std::strtod(v.c_str(), &end);
        if (v.empty() || *end || t < 0) {
            *error = "bad --threshold value: " + v;
            return -1;
        }
        opts->threshold = t;
        return 1;
    }
    if (arg == "--no-tables") {
        opts->tables = false;
        return 1;
    }
    if (arg == "--profile") {
        opts->profile = true;
        return 1;
    }
    if (startsWith("--profile=")) {
        opts->profile = true;
        opts->profilePath = valueOf("--profile=");
        if (opts->profilePath.empty()) {
            *error = "empty --profile path";
            return -1;
        }
        return 1;
    }
    if (arg == "--profile-compare") {
        opts->profile = true;
        opts->profileCompare = true;
        return 1;
    }
    if (startsWith("--speed-baseline=")) {
        opts->profile = true;
        opts->speedBaselinePath = valueOf("--speed-baseline=");
        return 1;
    }
    if (startsWith("--speed-threshold=")) {
        const std::string v = valueOf("--speed-threshold=");
        char *end = nullptr;
        const double t = std::strtod(v.c_str(), &end);
        if (v.empty() || *end || t <= 0) {
            *error = "bad --speed-threshold value: " + v;
            return -1;
        }
        opts->speedThreshold = t;
        return 1;
    }
    return 0;
}

namespace
{

bool
readFile(const std::string &path, std::string *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    char buf[4096];
    std::size_t n;
    out->clear();
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out->append(buf, n);
    std::fclose(f);
    return true;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fputs(text.c_str(), f);
    std::fclose(f);
    return true;
}

/** Process peak resident set size in kilobytes (Linux getrusage). */
std::uint64_t
peakRssKb()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<std::uint64_t>(ru.ru_maxrss);
}

/** Installed host-allocation tally (see setAllocationCounter). */
std::uint64_t (*allocation_counter)() = nullptr;

std::uint64_t
allocationsNow()
{
    return allocation_counter ? allocation_counter() : 0;
}

std::uint64_t
elapsedMicros(std::chrono::steady_clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

/** Wall-clock below which speed regressions are never flagged: tiny
 *  sweeps on a loaded machine jitter by more than any real factor. */
constexpr std::uint64_t speedNoiseFloorUs = 250'000;

/**
 * The self-profiling harness behind --profile (see runBench() docs).
 * Writes the "slpmt-speed-1" document and diffs wall-clock against a
 * recorded one when requested.
 */
int
runProfile(const BenchOptions &opts)
{
    JsonValue speed_baseline;
    const bool have_baseline = !opts.speedBaselinePath.empty();
    if (have_baseline) {
        std::string text;
        std::string error;
        if (!readFile(opts.speedBaselinePath, &text) ||
            !parseJson(text, &speed_baseline, &error)) {
            std::fprintf(stderr, "cannot load speed baseline %s%s%s\n",
                         opts.speedBaselinePath.c_str(),
                         error.empty() ? "" : ": ", error.c_str());
            return 2;
        }
    }

    JsonWriter w;
    w.beginObject();
    w.key("schema").value("slpmt-speed-1");
    w.key("figures").beginObject();

    bool all_verified = true;
    std::size_t regressions = 0;

    for (const std::string &name : opts.figures) {
        const FigureSpec *fig = findFigure(name);
        if (!fig) {
            std::fprintf(stderr, "unknown figure: %s\n", name.c_str());
            return 2;
        }

        const std::vector<ExperimentCase> cases = fig->cases();

        const std::uint64_t allocs_before = allocationsNow();
        const auto indexed_start = std::chrono::steady_clock::now();
        const MatrixResult result = runCases(cases, opts.workers);
        const std::uint64_t wall_us = elapsedMicros(indexed_start);
        const std::uint64_t figure_allocs =
            allocationsNow() - allocs_before;

        std::string failures;
        if (!result.allVerified(&failures)) {
            all_verified = false;
            std::fprintf(stderr, "VERIFICATION FAILURES (%s):\n%s",
                         name.c_str(), failures.c_str());
        }

        std::uint64_t sim_cycles = 0;
        for (const ExperimentResult &res : result.results)
            sim_cycles += res.cycles;

        w.key(name).beginObject();
        w.key("cells").beginObject();
        // Sorted cell keys, like the deterministic reports.
        std::map<std::string, std::size_t> order;
        for (std::size_t i = 0; i < result.cases.size(); ++i)
            order.emplace(result.cases[i].key, i);
        for (const auto &[key, i] : order) {
            w.key(key).beginObject();
            w.key("wallUs").value(result.wallMicros[i]);
            w.key("simCycles").value(result.results[i].cycles);
            if (result.wallMicros[i] > 0) {
                w.key("simCyclesPerSec")
                    .value(result.results[i].cycles * 1'000'000 /
                           result.wallMicros[i]);
            }
            w.endObject();
        }
        w.endObject();
        w.key("totalWallUs").value(wall_us);
        w.key("totalSimCycles").value(sim_cycles);
        if (wall_us > 0)
            w.key("simCyclesPerSec")
                .value(sim_cycles * 1'000'000 / wall_us);
        if (allocation_counter)
            w.key("hostAllocs").value(figure_allocs);

        double speedup = 0;
        if (opts.profileCompare) {
            // Same sweep with the metadata line index disabled: the
            // historical O(cache capacity) sweeps. The reports must
            // match byte for byte — the index is a pure host-side
            // optimisation.
            std::vector<ExperimentCase> full_scan = cases;
            for (ExperimentCase &c : full_scan)
                c.cfg.useMetaIndex = false;
            const auto scan_start = std::chrono::steady_clock::now();
            const MatrixResult scan_result =
                runCases(std::move(full_scan), opts.workers);
            const std::uint64_t scan_us = elapsedMicros(scan_start);

            const bool match = reportJson(name, result, false) ==
                               reportJson(name, scan_result, false);
            if (!match) {
                all_verified = false;
                std::fprintf(stderr,
                             "RESULT DIVERGENCE (%s): indexed and "
                             "full-scan sweeps disagree\n",
                             name.c_str());
            }
            speedup = wall_us ? static_cast<double>(scan_us) /
                                    static_cast<double>(wall_us)
                              : 0;
            w.key("fullScanWallUs").value(scan_us);
            w.key("speedup").value(speedup);
            w.key("resultsMatch").value(match);
        }
        w.endObject();

        std::fprintf(stderr, "%s: %zu cells, %.1f ms", name.c_str(),
                     result.cases.size(),
                     static_cast<double>(wall_us) / 1000.0);
        if (opts.profileCompare)
            std::fprintf(stderr, ", %.2fx vs full scan", speedup);
        std::fprintf(stderr, "\n");

        if (have_baseline) {
            const JsonValue *recorded = nullptr;
            if (const JsonValue *figs = speed_baseline.find("figures"))
                if (const JsonValue *f = figs->find(name))
                    recorded = f->find("totalWallUs");
            if (!recorded || !recorded->isNumber()) {
                std::fprintf(stderr,
                             "speed baseline has no totalWallUs for "
                             "%s\n",
                             name.c_str());
            } else {
                const double before = recorded->number;
                const double after = static_cast<double>(wall_us);
                if (after > before * opts.speedThreshold &&
                    wall_us > speedNoiseFloorUs) {
                    std::fprintf(stderr,
                                 "SPEED REGRESSION %s: %.1f ms -> "
                                 "%.1f ms (%.2fx, bound %.2fx)\n",
                                 name.c_str(), before / 1000.0,
                                 after / 1000.0, after / before,
                                 opts.speedThreshold);
                    regressions++;
                }
            }
        }
    }

    w.endObject();
    w.key("peakRssKb").value(peakRssKb());
    if (allocation_counter) {
        // The PR 10 raw-speed section: peak RSS and the host
        // allocation total pin the arena work (log records, SoA
        // frames) as numbers a later regression can be diffed
        // against, not just a wall-clock that varies by host.
        w.key("speed").beginObject();
        w.key("peakRssKb").value(peakRssKb());
        w.key("hostAllocs").value(allocationsNow());
        w.endObject();
    }
    w.endObject();

    if (!writeFile(opts.profilePath, w.str() + "\n")) {
        std::fprintf(stderr, "cannot write %s\n",
                     opts.profilePath.c_str());
        return 2;
    }
    std::fprintf(stderr, "speed profile written to %s\n",
                 opts.profilePath.c_str());

    if (!all_verified)
        return 1;
    if (regressions > 0)
        return 3;
    return 0;
}

} // namespace

void
setAllocationCounter(std::uint64_t (*fn)())
{
    allocation_counter = fn;
}

int
runBench(const BenchOptions &opts)
{
    if (opts.profile)
        return runProfile(opts);

    // Load the baseline up front so a bad path fails before the sweep.
    JsonValue baseline;
    if (!opts.baselinePath.empty()) {
        std::string text;
        if (!readFile(opts.baselinePath, &text)) {
            std::fprintf(stderr, "cannot read baseline %s\n",
                         opts.baselinePath.c_str());
            return 2;
        }
        std::string error;
        if (!parseJson(text, &baseline, &error)) {
            std::fprintf(stderr, "bad baseline %s: %s\n",
                         opts.baselinePath.c_str(), error.c_str());
            return 2;
        }
    }

    const bool json_to_stdout = opts.emitJson && opts.jsonPath.empty();
    const bool print_tables = opts.tables && !json_to_stdout;

    std::vector<std::string> json_reports;
    bool all_verified = true;
    std::size_t total_regressions = 0;

    for (const std::string &name : opts.figures) {
        const FigureSpec *fig = findFigure(name);
        if (!fig) {
            std::fprintf(stderr, "unknown figure: %s\n", name.c_str());
            return 2;
        }

        const auto start = std::chrono::steady_clock::now();
        const MatrixResult result = runCases(fig->cases(), opts.workers);
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        // Timing goes to stderr only: the JSON report must stay
        // byte-identical across runs and worker counts.
        std::fprintf(stderr, "%s: %zu cells in %.1fs\n", name.c_str(),
                     result.cases.size(), secs);

        if (print_tables)
            fig->print(result);

        std::string failures;
        if (!result.allVerified(&failures)) {
            all_verified = false;
            std::fprintf(stderr, "VERIFICATION FAILURES (%s):\n%s",
                         name.c_str(), failures.c_str());
        }

        if (opts.emitJson)
            json_reports.push_back(
                reportJson(name, result, opts.includeStats));

        if (!opts.baselinePath.empty()) {
            const BaselineDiff diff = diffAgainstBaseline(
                baseline, name, result, opts.threshold);
            if (diff.cellsCompared == 0) {
                std::fprintf(stderr,
                             "baseline has no cells for %s "
                             "(%zu cells unmatched)\n",
                             name.c_str(),
                             diff.cellsMissingInBaseline);
            }
            for (const BaselineRegression &reg : diff.regressions) {
                std::fprintf(stderr,
                             "REGRESSION %s %s %s: %.0f -> %.0f "
                             "(%+.1f%%)\n",
                             name.c_str(), reg.cell.c_str(),
                             reg.metric.c_str(), reg.before, reg.after,
                             reg.change() * 100.0);
            }
            total_regressions += diff.regressions.size();
        }
    }

    if (opts.emitJson) {
        std::string doc;
        if (json_reports.size() == 1) {
            doc = json_reports.front();
        } else {
            doc = "{\"schema\":\"slpmt-bench-1\",\"reports\":[";
            for (std::size_t i = 0; i < json_reports.size(); ++i) {
                if (i)
                    doc += ',';
                doc += json_reports[i];
            }
            doc += "]}";
        }
        doc += '\n';
        if (json_to_stdout) {
            std::fputs(doc.c_str(), stdout);
        } else {
            std::FILE *f = std::fopen(opts.jsonPath.c_str(), "wb");
            if (!f) {
                std::fprintf(stderr, "cannot write %s\n",
                             opts.jsonPath.c_str());
                return 2;
            }
            std::fputs(doc.c_str(), f);
            std::fclose(f);
        }
    }

    if (!all_verified)
        return 1;
    if (total_regressions > 0)
        return 3;
    return 0;
}

int
runFigureMain(const std::string &figure_name, int argc, char **argv)
{
    BenchOptions opts;
    opts.figures = {figure_name};
    for (int i = 1; i < argc; ++i) {
        std::string error;
        const int consumed = parseCommonFlag(argv[i], &opts, &error);
        if (consumed < 0) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
        if (consumed == 0) {
            std::fprintf(
                stderr,
                "unknown option %s\nusage: %s [--workers=N] "
                "[--json[=FILE]] [--stats] [--baseline=FILE] "
                "[--threshold=FRACTION] [--no-tables]\n",
                argv[i], argv[0]);
            return 2;
        }
    }
    return runBench(opts);
}

} // namespace slpmt
