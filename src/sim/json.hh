/**
 * @file
 * Minimal JSON support for machine-readable reports (the crash-sweep
 * validation report, stats dumps, orchestrator baselines): a
 * streaming writer with automatic comma management, and a small
 * recursive-descent reader for loading reports back (baseline
 * diffing). No external dependencies.
 */

#ifndef SLPMT_SIM_JSON_HH
#define SLPMT_SIM_JSON_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace slpmt
{

/** Streaming JSON writer building an in-memory string. */
class JsonWriter
{
  public:
    JsonWriter &
    beginObject()
    {
        prefix();
        out += '{';
        stack.push_back(Frame::Object);
        return *this;
    }

    JsonWriter &
    endObject()
    {
        popFrame(Frame::Object);
        out += '}';
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        prefix();
        out += '[';
        stack.push_back(Frame::Array);
        return *this;
    }

    JsonWriter &
    endArray()
    {
        popFrame(Frame::Array);
        out += ']';
        return *this;
    }

    /** Name the next value inside an object. */
    JsonWriter &
    key(const std::string &name)
    {
        panicIfNot(!stack.empty() && stack.back() == Frame::Object,
                   "json key outside an object");
        comma();
        appendString(name);
        out += ':';
        pendingKey = true;
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        prefix();
        appendString(v);
        return *this;
    }

    JsonWriter &value(const char *v) { return value(std::string(v)); }

    /** Any integer type (size_t and uint64_t alias on some ABIs). */
    template <typename T,
              typename std::enable_if<std::is_integral<T>::value &&
                                          !std::is_same<T, bool>::value,
                                      int>::type = 0>
    JsonWriter &
    value(T v)
    {
        prefix();
        out += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(double v)
    {
        prefix();
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.3f", v);
        out += buf;
        return *this;
    }

    JsonWriter &
    value(bool v)
    {
        prefix();
        out += v ? "true" : "false";
        return *this;
    }

    /** The finished document. */
    const std::string &
    str() const
    {
        panicIfNot(stack.empty(), "unterminated json document");
        return out;
    }

  private:
    enum class Frame : std::uint8_t { Object, Array };

    void
    comma()
    {
        if (!out.empty()) {
            const char last = out.back();
            if (last != '{' && last != '[' && last != ':')
                out += ',';
        }
    }

    /** Comma handling for a value in the current context. */
    void
    prefix()
    {
        if (pendingKey) {
            pendingKey = false;
            return;
        }
        comma();
    }

    void
    popFrame(Frame expected)
    {
        panicIfNot(!stack.empty() && stack.back() == expected,
                   "mismatched json nesting");
        stack.pop_back();
    }

    void
    appendString(const std::string &s)
    {
        out += '"';
        for (char ch : s) {
            switch (ch) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n"; break;
              case '\r': out += "\\r"; break;
              case '\t': out += "\\t"; break;
              default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(ch));
                    out += buf;
                } else {
                    out += ch;
                }
            }
        }
        out += '"';
    }

    std::string out;
    std::vector<Frame> stack;
    bool pendingKey = false;
};

/** One parsed JSON node (the read side of the reports). */
struct JsonValue
{
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *
    find(const std::string &key) const
    {
        if (type != Type::Object)
            return nullptr;
        auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

/**
 * Parse a complete JSON document. Returns false (with a position-
 * annotated message in @p error) on malformed input rather than
 * panicking: baseline files come from outside the process.
 */
bool parseJson(const std::string &text, JsonValue *out,
               std::string *error);

} // namespace slpmt

#endif // SLPMT_SIM_JSON_HH
