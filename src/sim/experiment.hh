/**
 * @file
 * Experiment runner: scheme x workload x parameters -> metrics.
 *
 * Reproduces the paper's measurement methodology: build the simulated
 * machine for a scheme, set the structure up, then run the ycsb-load
 * insert phase and report the cycles and PM write traffic of exactly
 * that phase (setup excluded; lazily persistent data that is still in
 * the cache at the end is *not* force-flushed — leaving it volatile
 * is the point of lazy persistency). Afterwards the runner verifies
 * every inserted pair and the structure invariants, outside the
 * measured window.
 */

#ifndef SLPMT_SIM_EXPERIMENT_HH
#define SLPMT_SIM_EXPERIMENT_HH

#include <string>

#include "compiler/compiler_policy.hh"
#include "core/pm_system.hh"
#include "workloads/factory.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{

/** Which annotation source drives storeT emission. */
enum class AnnotationMode : std::uint8_t
{
    None,      //!< plain stores only
    Manual,    //!< programmer annotations (default, Section VI-A)
    Compiler,  //!< the automatic pass (Figure 13)
};

/** All knobs of one experiment run. */
struct ExperimentConfig
{
    SchemeKind scheme = SchemeKind::SLPMT;
    LoggingStyle style = LoggingStyle::Undo;
    AnnotationMode annotations = AnnotationMode::Manual;
    YcsbConfig ycsb;
    std::uint64_t pmWriteLatencyNs = 500;  //!< Figure 12 sweep knob
    bool speculativeRounding = false;      //!< Section III-B1 ablation
    std::uint8_t numTxnIds = 4;            //!< lazy-depth ablation

    /** Simulator-internal: walk transaction sweeps via the metadata
     *  line index (default) or the historical full cache scan. Both
     *  produce identical results; the toggle exists so the profiling
     *  harness can measure the index's host-side speedup. */
    bool useMetaIndex = true;

    /** SoA layout self-check policy (see SystemConfig::layoutAudit):
     *  forced on/off by the LayoutDiff differential suite, which
     *  asserts both modes produce byte-identical results. */
    LayoutAudit layoutAudit = LayoutAudit::Default;

    /** @name Multicore cells (src/multicore/) */
    /** @{ */
    /** Cores of the simulated machine. > 1 runs the interleaved
     *  multicore machine; 1 runs the classic single-core path. */
    std::size_t numCores = 1;

    /** Force the multicore driver even at numCores == 1 so scaling
     *  sweeps measure their 1-core baseline with the same scheduler
     *  and workload layer as the scaled cells. */
    bool mcDriver = false;

    /** Percent of ops targeting the cross-core shared key pool. */
    unsigned mcSharedPct = 25;

    /** Scheduler quantum (micro-ops per core per turn). */
    std::size_t mcQuantumOps = 4;
    /** @} */

    /** @name Sharded service cells (src/service/) */
    /** @{ */
    /**
     * Knobs of the sharded KV service harness. shards > 0 turns the
     * cell into a service run: numOps requests from the seeded YCSB
     * load generator routed over that many McMachine shards (each
     * with numCores cores), instead of the single-structure drivers.
     * ycsb.numOps/valueBytes/seed double as the request count, the
     * value-size maximum and the generator seed.
     */
    struct ServiceParams
    {
        std::size_t shards = 0;  //!< 0 = not a service cell

        /** YCSB core mix index: 0..5 = A..F. */
        unsigned mix = 0;

        /** Zipfian request skew (uniform otherwise). */
        bool zipfian = false;

        /** Zipfian theta in basis points (9900 = 0.99). */
        unsigned zipfThetaBp = 9900;

        /** Distinct-key universe inserts draw from. */
        std::size_t keySpace = std::size_t{1} << 20;

        /** Records inserted before the measured request stream. */
        std::size_t preloadRecords = 2000;

        /** Smallest value payload; 0 = fixed at ycsb.valueBytes. */
        std::size_t valueBytesMin = 0;

        /** Requests between hot-set rotations; 0 = no churn. */
        std::size_t churnInterval = 0;
    };
    ServiceParams service;
    /** @} */
};

/** Metrics of the measured insert phase plus verification outcome. */
struct ExperimentResult
{
    std::string workload;
    SchemeKind scheme = SchemeKind::SLPMT;
    Cycles cycles = 0;          //!< insert-phase core cycles
    Bytes pmWriteBytes = 0;     //!< total PM write traffic
    Bytes pmDataBytes = 0;      //!< data-line portion
    Bytes pmLogBytes = 0;       //!< log-record portion
    std::uint64_t commits = 0;
    std::uint64_t logRecords = 0;
    bool verified = false;      //!< lookups + invariants passed
    std::string failure;        //!< diagnostic when !verified

    /** Full flattened stats delta of the measured window. */
    StatsSnapshot stats;

    double
    speedupOver(const ExperimentResult &base) const
    {
        return cycles ? static_cast<double>(base.cycles) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Write-traffic reduction relative to @p base (paper metric). */
    double
    trafficReductionOver(const ExperimentResult &base) const
    {
        if (base.pmWriteBytes == 0)
            return 0.0;
        return 1.0 - static_cast<double>(pmWriteBytes) /
                         static_cast<double>(base.pmWriteBytes);
    }
};

/** Run one experiment to completion. */
ExperimentResult runExperiment(const std::string &workload_name,
                               const ExperimentConfig &cfg);

} // namespace slpmt

#endif // SLPMT_SIM_EXPERIMENT_HH
