/**
 * @file
 * Parallel experiment orchestrator.
 *
 * Every paper figure is a sweep over the same experiment space
 * (workload x scheme x value size x PM latency x annotation mode),
 * and every cell is one independent simulated machine. The
 * orchestrator expands a declarative MatrixSpec into a flat case
 * list in a fixed enumeration order, runs the cases on a
 * work-stealing pool (one machine per worker item, no shared
 * simulator state), and merges results back in enumeration order —
 * so reports are byte-identical regardless of the worker count or
 * schedule.
 *
 * Reports serialise as stable-key JSON (integer metrics only, no
 * wall-clock or host information) and can be diffed against a saved
 * baseline report to flag regressions beyond a threshold.
 */

#ifndef SLPMT_SIM_ORCHESTRATOR_HH
#define SLPMT_SIM_ORCHESTRATOR_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/json.hh"

namespace slpmt
{

/** One fully-resolved experiment cell of a sweep. */
struct ExperimentCase
{
    std::string key;       //!< stable cell id: workload/Scheme[/suffix]
    std::string workload;
    ExperimentConfig cfg;
};

/**
 * A declarative experiment matrix. Expansion takes the cross product
 * of the vector axes in a fixed nesting order (workload, value size,
 * PM latency, annotation mode, scheme); the scalar fields apply to
 * every cell.
 */
struct MatrixSpec
{
    std::vector<std::string> workloads;
    std::vector<SchemeKind> schemes;
    std::vector<std::size_t> valueSizes = {256};
    std::vector<std::uint64_t> pmWriteLatenciesNs = {500};
    std::vector<AnnotationMode> annotationModes = {AnnotationMode::Manual};
    std::size_t numOps = 1000;
    std::uint64_t seed = 42;
    LoggingStyle style = LoggingStyle::Undo;
    bool speculativeRounding = false;
    std::uint8_t numTxnIds = 4;
    bool useMetaIndex = true;  //!< host-side profiling toggle
};

/** Annotation-mode tag for cell keys ("none", "manual", "compiler"). */
std::string annotationModeName(AnnotationMode mode);

/** Cell key builder: workload/SchemeName[/suffix]. */
std::string caseKey(const std::string &workload, SchemeKind scheme,
                    const std::string &suffix = "");

/**
 * Expand a matrix into its case list. An axis contributes a key
 * suffix component only when it actually sweeps (more than one
 * value), so single-point matrices keep the short workload/Scheme
 * keys the figure tables use.
 */
std::vector<ExperimentCase> expandMatrix(const MatrixSpec &spec);

/** Results of a sweep, in case-enumeration order. */
class MatrixResult
{
  public:
    std::vector<ExperimentCase> cases;
    std::vector<ExperimentResult> results;  //!< parallel to cases

    /** Host wall-clock per cell in microseconds (parallel to cases).
     *  Profiling data only — never serialised into reports, which
     *  must stay deterministic. */
    std::vector<std::uint64_t> wallMicros;

    /** Cell lookup; fatal() when the key was never enumerated. */
    const ExperimentResult &get(const std::string &key) const;

    const ExperimentResult *find(const std::string &key) const;

    /** All cells passed their post-run verification. */
    bool allVerified(std::string *failures) const;
};

/**
 * Run every case on @p num_workers work-stealing threads (0 = one
 * per hardware thread, capped by the case count). Each case owns a
 * private simulated machine; a case that throws is recorded as an
 * unverified result carrying the diagnostic instead of tearing down
 * the sweep.
 */
MatrixResult runCases(std::vector<ExperimentCase> cases,
                      std::size_t num_workers);

/** expandMatrix() + runCases(). */
MatrixResult runMatrix(const MatrixSpec &spec, std::size_t num_workers);

/**
 * Serialise one sweep as a deterministic JSON report:
 * {"schema", "report", "cells": {key: {metrics...[, "stats": {...}]}}}.
 * Cell keys are sorted; every metric is an integer; nothing
 * host- or time-dependent is emitted.
 */
void reportToJson(JsonWriter &w, const std::string &report_name,
                  const MatrixResult &result, bool include_stats);

/** reportToJson() into a fresh string. */
std::string reportJson(const std::string &report_name,
                       const MatrixResult &result, bool include_stats);

/** One metric that moved beyond the threshold vs the baseline. */
struct BaselineRegression
{
    std::string cell;
    std::string metric;
    double before = 0;
    double after = 0;

    /** Relative change, positive = got worse (more cycles/bytes). */
    double
    change() const
    {
        return before ? after / before - 1.0 : 0.0;
    }
};

/** Outcome of diffing a sweep against a saved baseline report. */
struct BaselineDiff
{
    std::vector<BaselineRegression> regressions;
    std::size_t cellsCompared = 0;
    std::size_t cellsMissingInBaseline = 0;

    bool ok() const { return regressions.empty(); }
};

/**
 * Compare the sweep's cycles and PM-write-bytes metrics against
 * @p baseline (a parsed report produced by reportToJson(), or a
 * multi-report document {"reports": [...]} from which the matching
 * "report" name is selected). A metric regresses when it exceeds the
 * baseline by more than @p threshold (relative, e.g. 0.05 = 5%).
 * Cells absent from the baseline are counted, not flagged.
 */
BaselineDiff diffAgainstBaseline(const JsonValue &baseline,
                                 const std::string &report_name,
                                 const MatrixResult &result,
                                 double threshold);

} // namespace slpmt

#endif // SLPMT_SIM_ORCHESTRATOR_HH
