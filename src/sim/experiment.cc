#include "sim/experiment.hh"

#include "multicore/mc_ycsb.hh"
#include "service/service.hh"

namespace slpmt
{

ExperimentResult
runExperiment(const std::string &workload_name,
              const ExperimentConfig &cfg)
{
    // Service cells route the generated request stream over shard
    // machines (src/service/).
    if (cfg.service.shards > 0)
        return runServiceExperiment(workload_name, cfg);

    // Multicore cells run through the interleaved machine; mcDriver
    // forces that path even for one core so scaling baselines share
    // the scheduler and workload layer of the scaled cells.
    if (cfg.numCores > 1 || cfg.mcDriver)
        return runMcExperiment(workload_name, cfg);

    SystemConfig sys_cfg;
    sys_cfg.scheme = SchemeConfig::forKind(cfg.scheme);
    sys_cfg.scheme.speculativeRounding = cfg.speculativeRounding;
    sys_cfg.scheme.numTxnIds = cfg.numTxnIds;
    sys_cfg.style = cfg.style;
    sys_cfg.pm.writeLatencyNs = cfg.pmWriteLatencyNs;
    sys_cfg.useMetaIndex = cfg.useMetaIndex;
    sys_cfg.layoutAudit = cfg.layoutAudit;

    PmSystem sys(sys_cfg);
    auto workload = makeWorkload(workload_name);

    static const NullAnnotationPolicy null_policy;
    static const ManualAnnotationPolicy manual_policy;
    static const CompilerAnnotationPolicy compiler_policy;
    switch (cfg.annotations) {
      case AnnotationMode::None:
        sys.setAnnotationPolicy(&null_policy);
        break;
      case AnnotationMode::Manual:
        sys.setAnnotationPolicy(&manual_policy);
        break;
      case AnnotationMode::Compiler:
        sys.setAnnotationPolicy(&compiler_policy);
        break;
    }

    workload->setup(sys);

    const auto ops = ycsbLoad(cfg.ycsb);

    // Measured window: the insert phase only.
    const Cycles cycles_before = sys.cycles();
    const StatsSnapshot before = sys.stats().snapshot();
    for (const auto &op : ops)
        workload->insert(sys, op.key, op.value);
    const StatsSnapshot after = sys.stats().snapshot();

    ExperimentResult result;
    result.workload = workload_name;
    result.scheme = cfg.scheme;
    result.cycles = sys.cycles() - cycles_before;
    const StatsSnapshot delta = StatsRegistry::delta(before, after);
    auto get = [&](const char *name) {
        auto it = delta.find(name);
        return it == delta.end() ? 0ULL : it->second;
    };
    result.pmWriteBytes = get("pm.bytesWritten");
    result.pmDataBytes = get("pm.dataBytesWritten");
    result.pmLogBytes = get("pm.logBytesWritten");
    result.commits = get("txn.committed");
    result.logRecords = get("txn.logRecordsCreated");
    result.stats = delta;

    // Verification phase (outside the measured window).
    result.verified = true;
    std::string why;
    if (!workload->checkConsistency(sys, &why)) {
        result.verified = false;
        result.failure = "consistency: " + why;
        return result;
    }
    std::vector<std::uint8_t> got;
    for (const auto &op : ops) {
        if (!workload->lookup(sys, op.key, &got) || got != op.value) {
            result.verified = false;
            result.failure = "lookup mismatch";
            return result;
        }
    }
    if (workload->count(sys) != ops.size()) {
        result.verified = false;
        result.failure = "count mismatch";
    }
    return result;
}

} // namespace slpmt
