#include "sim/orchestrator.hh"

#include <chrono>
#include <exception>
#include <map>
#include <thread>

#include "validate/work_queue.hh"

namespace slpmt
{

std::string
annotationModeName(AnnotationMode mode)
{
    switch (mode) {
      case AnnotationMode::None: return "none";
      case AnnotationMode::Manual: return "manual";
      case AnnotationMode::Compiler: return "compiler";
    }
    return "?";
}

std::string
caseKey(const std::string &workload, SchemeKind scheme,
        const std::string &suffix)
{
    return workload + "/" + schemeName(scheme) +
           (suffix.empty() ? "" : "/" + suffix);
}

std::vector<ExperimentCase>
expandMatrix(const MatrixSpec &spec)
{
    panicIfNot(!spec.workloads.empty() && !spec.schemes.empty(),
               "matrix needs at least one workload and one scheme");
    panicIfNot(!spec.valueSizes.empty() &&
                   !spec.pmWriteLatenciesNs.empty() &&
                   !spec.annotationModes.empty(),
               "matrix axis with no values");

    std::vector<ExperimentCase> cases;
    for (const auto &workload : spec.workloads) {
        for (std::size_t vs : spec.valueSizes) {
            for (std::uint64_t lat : spec.pmWriteLatenciesNs) {
                for (AnnotationMode ann : spec.annotationModes) {
                    for (SchemeKind scheme : spec.schemes) {
                        ExperimentCase c;
                        c.workload = workload;
                        c.cfg.scheme = scheme;
                        c.cfg.style = spec.style;
                        c.cfg.annotations = ann;
                        c.cfg.ycsb.numOps = spec.numOps;
                        c.cfg.ycsb.valueBytes = vs;
                        c.cfg.ycsb.seed = spec.seed;
                        c.cfg.pmWriteLatencyNs = lat;
                        c.cfg.speculativeRounding =
                            spec.speculativeRounding;
                        c.cfg.numTxnIds = spec.numTxnIds;
                        c.cfg.useMetaIndex = spec.useMetaIndex;

                        // Swept axes show up in the key; point axes
                        // keep the short workload/Scheme form.
                        std::string suffix;
                        auto add = [&suffix](const std::string &part) {
                            if (!suffix.empty())
                                suffix += "/";
                            suffix += part;
                        };
                        if (spec.valueSizes.size() > 1)
                            add(std::to_string(vs) + "B");
                        if (spec.pmWriteLatenciesNs.size() > 1)
                            add(std::to_string(lat) + "ns");
                        if (spec.annotationModes.size() > 1)
                            add(annotationModeName(ann));
                        c.key = caseKey(workload, scheme, suffix);
                        cases.push_back(std::move(c));
                    }
                }
            }
        }
    }
    return cases;
}

const ExperimentResult &
MatrixResult::get(const std::string &key) const
{
    const ExperimentResult *res = find(key);
    if (!res)
        fatal("missing experiment result: " + key);
    return *res;
}

const ExperimentResult *
MatrixResult::find(const std::string &key) const
{
    for (std::size_t i = 0; i < cases.size(); ++i) {
        if (cases[i].key == key)
            return &results[i];
    }
    return nullptr;
}

bool
MatrixResult::allVerified(std::string *failures) const
{
    bool ok = true;
    for (std::size_t i = 0; i < cases.size(); ++i) {
        if (!results[i].verified) {
            ok = false;
            if (failures)
                *failures +=
                    cases[i].key + ": " + results[i].failure + "\n";
        }
    }
    return ok;
}

MatrixResult
runCases(std::vector<ExperimentCase> cases, std::size_t num_workers)
{
    MatrixResult out;
    out.results.resize(cases.size());
    out.wallMicros.resize(cases.size(), 0);
    out.cases = std::move(cases);

    if (num_workers == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        num_workers = hw ? hw : 1;
    }
    num_workers = std::min(num_workers, out.cases.size());

    // Each item writes only its own caller-owned slot, so the merged
    // result vector depends on the enumeration order alone, never on
    // the schedule.
    runWorkStealing(num_workers, out.cases.size(), [&](std::size_t i) {
        const ExperimentCase &c = out.cases[i];
        const auto start = std::chrono::steady_clock::now();
        try {
            out.results[i] = runExperiment(c.workload, c.cfg);
        } catch (const std::exception &e) {
            ExperimentResult res;
            res.workload = c.workload;
            res.scheme = c.cfg.scheme;
            res.verified = false;
            res.failure = std::string("exception: ") + e.what();
            out.results[i] = res;
        }
        out.wallMicros[i] = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
    });
    return out;
}

MatrixResult
runMatrix(const MatrixSpec &spec, std::size_t num_workers)
{
    return runCases(expandMatrix(spec), num_workers);
}

void
reportToJson(JsonWriter &w, const std::string &report_name,
             const MatrixResult &result, bool include_stats)
{
    // Sort the cells so the report is insensitive to enumeration
    // details; duplicate keys would silently collapse, so reject them.
    std::map<std::string, const ExperimentResult *> cells;
    for (std::size_t i = 0; i < result.cases.size(); ++i) {
        const bool fresh =
            cells.emplace(result.cases[i].key, &result.results[i])
                .second;
        panicIfNot(fresh, "duplicate cell key: " + result.cases[i].key);
    }

    w.beginObject();
    w.key("schema").value("slpmt-bench-1");
    w.key("report").value(report_name);
    w.key("cells").beginObject();
    for (const auto &[key, res] : cells) {
        w.key(key).beginObject();
        w.key("cycles").value(res->cycles);
        w.key("pmWriteBytes").value(res->pmWriteBytes);
        w.key("pmDataBytes").value(res->pmDataBytes);
        w.key("pmLogBytes").value(res->pmLogBytes);
        w.key("commits").value(res->commits);
        w.key("logRecords").value(res->logRecords);
        w.key("verified").value(res->verified);
        if (!res->failure.empty())
            w.key("failure").value(res->failure);
        if (include_stats) {
            w.key("stats").beginObject();
            for (const auto &[name, value] : res->stats)
                w.key(name).value(value);
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

std::string
reportJson(const std::string &report_name, const MatrixResult &result,
           bool include_stats)
{
    JsonWriter w;
    reportToJson(w, report_name, result, include_stats);
    return w.str();
}

namespace
{

/** Locate the "cells" object for @p report_name in a baseline doc. */
const JsonValue *
baselineCells(const JsonValue &baseline, const std::string &report_name)
{
    auto cellsOf = [&](const JsonValue &report) -> const JsonValue * {
        const JsonValue *name = report.find("report");
        if (!name || !name->isString() || name->string != report_name)
            return nullptr;
        const JsonValue *cells = report.find("cells");
        return cells && cells->isObject() ? cells : nullptr;
    };

    if (const JsonValue *cells = cellsOf(baseline))
        return cells;
    if (const JsonValue *reports = baseline.find("reports")) {
        if (reports->isArray()) {
            for (const JsonValue &report : reports->array) {
                if (const JsonValue *cells = cellsOf(report))
                    return cells;
            }
        }
    }
    return nullptr;
}

} // namespace

BaselineDiff
diffAgainstBaseline(const JsonValue &baseline,
                    const std::string &report_name,
                    const MatrixResult &result, double threshold)
{
    BaselineDiff diff;
    const JsonValue *cells = baselineCells(baseline, report_name);
    if (!cells) {
        diff.cellsMissingInBaseline = result.cases.size();
        return diff;
    }

    for (std::size_t i = 0; i < result.cases.size(); ++i) {
        const std::string &key = result.cases[i].key;
        const JsonValue *cell = cells->find(key);
        if (!cell || !cell->isObject()) {
            diff.cellsMissingInBaseline++;
            continue;
        }
        diff.cellsCompared++;

        const struct
        {
            const char *metric;
            double after;
        } metrics[] = {
            {"cycles", static_cast<double>(result.results[i].cycles)},
            {"pmWriteBytes",
             static_cast<double>(result.results[i].pmWriteBytes)},
        };
        for (const auto &m : metrics) {
            const JsonValue *before = cell->find(m.metric);
            if (!before || !before->isNumber() || before->number <= 0)
                continue;
            if (m.after > before->number * (1.0 + threshold)) {
                BaselineRegression reg;
                reg.cell = key;
                reg.metric = m.metric;
                reg.before = before->number;
                reg.after = m.after;
                diff.regressions.push_back(std::move(reg));
            }
        }
    }
    return diff;
}

} // namespace slpmt
