/**
 * @file
 * The paper-figure sweep registry.
 *
 * Each figure of the evaluation (Figures 8-14) is one declarative
 * sweep over the experiment space plus a table printer that formats
 * the results the way the paper's figure does. The registry lets the
 * per-figure binaries and the slpmt_bench multiplexer share a single
 * implementation of the sweep loops, and runFigureMain() gives them
 * all the same CLI (worker count, JSON reports, baseline diffing).
 */

#ifndef SLPMT_SIM_FIGURES_HH
#define SLPMT_SIM_FIGURES_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/orchestrator.hh"

namespace slpmt
{

/** One registered figure sweep. */
struct FigureSpec
{
    std::string name;   //!< CLI id ("fig8", "sample", ...)
    std::string title;  //!< one-line description for --list
    std::function<std::vector<ExperimentCase>()> cases;
    std::function<void(const MatrixResult &)> print;
};

/** Every registered figure, in presentation order. */
const std::vector<FigureSpec> &figureRegistry();

/** Lookup by CLI id; nullptr when unknown. */
const FigureSpec *findFigure(const std::string &name);

/** Parsed command line shared by slpmt_bench and the fig binaries. */
struct BenchOptions
{
    std::vector<std::string> figures;  //!< resolved figure names
    std::size_t workers = 0;           //!< 0 = one per hardware thread
    bool emitJson = false;
    std::string jsonPath;              //!< empty = stdout (tables off)
    bool includeStats = false;         //!< full stats block per cell
    std::string baselinePath;          //!< empty = no diff
    double threshold = 0.05;           //!< relative regression bound
    bool tables = true;                //!< print the figure tables

    /** @name Self-profiling harness (host-side performance) */
    /** @{ */
    bool profile = false;              //!< run the profiling harness
    std::string profilePath = "BENCH_speed.json";
    bool profileCompare = false;       //!< also time the full-scan mode
    std::string speedBaselinePath;     //!< recorded BENCH_speed.json
    double speedThreshold = 3.0;       //!< wall-clock regression bound
    /** @} */
};

/**
 * Install a host heap-allocation tally for the profiling harness:
 * when a counter is present, --profile records allocation-count
 * deltas per figure and a "speed" summary section (peak RSS +
 * total allocations) in the slpmt-speed-1 document. slpmt_bench
 * overrides global operator new to supply one; binaries without a
 * counter simply omit the fields.
 */
void setAllocationCounter(std::uint64_t (*fn)());

/**
 * Parse one common flag (--workers=N, --json[=FILE], --stats,
 * --baseline=FILE, --threshold=FRACTION, --no-tables,
 * --profile[=FILE], --profile-compare, --speed-baseline=FILE,
 * --speed-threshold=N).
 * @return 1 consumed, 0 not a common flag, -1 malformed (error set).
 */
int parseCommonFlag(const std::string &arg, BenchOptions *opts,
                    std::string *error);

/**
 * Run every figure in @p opts in order, print tables, emit the JSON
 * report(s) and diff against the baseline when requested.
 *
 * With opts.profile set, the self-profiling harness runs instead: each
 * figure is timed (per-cell host wall-clock, simulated cycles per
 * host second, process peak RSS) and a "slpmt-speed-1" JSON document
 * is written to opts.profilePath. With opts.profileCompare the figure
 * is run a second time with the metadata line index disabled — the
 * historical full-scan sweeps — recording the wall-clock speedup the
 * index delivers and checking both runs produce identical reports.
 * With opts.speedBaselinePath set, each figure's wall-clock is diffed
 * against the recorded document: exceeding speedThreshold x the
 * recorded time (and a 250 ms absolute noise floor, so tiny sweeps on
 * loaded machines cannot flake) is a regression.
 *
 * @return process exit code: 0 ok, 1 verification failure, 2 usage/io
 *         error, 3 baseline regression
 */
int runBench(const BenchOptions &opts);

/**
 * Shared main() body for the single-figure binaries: common flags
 * only, then runBench() on @p figure_name.
 */
int runFigureMain(const std::string &figure_name, int argc, char **argv);

} // namespace slpmt

#endif // SLPMT_SIM_FIGURES_HH
