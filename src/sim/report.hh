/**
 * @file
 * Plain-text table formatting for the benchmark harnesses: every
 * bench binary prints rows in the shape of the paper's figure it
 * regenerates.
 */

#ifndef SLPMT_SIM_REPORT_HH
#define SLPMT_SIM_REPORT_HH

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace slpmt
{

/** Geometric mean of a list of ratios (the paper's summary metric). */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Fixed-width text table writer. */
class TableReport
{
  public:
    explicit TableReport(std::string title) : title(std::move(title)) {}

    void
    header(const std::vector<std::string> &cols)
    {
        columns = cols;
    }

    void
    row(const std::vector<std::string> &cells)
    {
        rows.push_back(cells);
    }

    /** Format a ratio like the paper ("1.57x"). */
    static std::string
    ratio(double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2fx", v);
        return buf;
    }

    /** Format a percentage ("35.0%"). */
    static std::string
    percent(double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100.0);
        return buf;
    }

    static std::string
    num(double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", v);
        return buf;
    }

    static std::string
    integer(std::uint64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        return buf;
    }

    void
    print(std::FILE *out = stdout) const
    {
        std::vector<std::size_t> widths(columns.size());
        for (std::size_t c = 0; c < columns.size(); ++c)
            widths[c] = columns[c].size();
        for (const auto &r : rows) {
            for (std::size_t c = 0; c < r.size() && c < widths.size();
                 ++c)
                widths[c] = std::max(widths[c], r[c].size());
        }

        std::fprintf(out, "\n== %s ==\n", title.c_str());
        auto print_row = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < columns.size(); ++c) {
                const std::string &cell =
                    c < cells.size() ? cells[c] : std::string();
                std::fprintf(out, "%-*s  ",
                             static_cast<int>(widths[c]), cell.c_str());
            }
            std::fprintf(out, "\n");
        };
        print_row(columns);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        std::fprintf(out, "%s\n", std::string(total, '-').c_str());
        for (const auto &r : rows)
            print_row(r);
    }

  private:
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

} // namespace slpmt

#endif // SLPMT_SIM_REPORT_HH
