/**
 * @file
 * Figure 4: the order in which a transaction's data and logs must
 * reach persistent memory. This bench runs one representative
 * transaction under undo and redo logging, captures the persist
 * ledger, verifies the constraints, and prints the observed order.
 */

#include "core/pm_system.hh"
#include "sim/report.hh"

namespace slpmt
{
namespace
{

const char *
kindName(PersistKind kind)
{
    switch (kind) {
      case PersistKind::LogRecord: return "log record";
      case PersistKind::LoggedLine: return "logged line";
      case PersistKind::LogFreeLine: return "log-free line";
      case PersistKind::LazyLine: return "lazy line";
      case PersistKind::Writeback: return "writeback";
      case PersistKind::Marker: return "marker";
    }
    return "?";
}

struct OrderResult
{
    std::vector<PersistEvent> ledger;
    bool constraintsHold = false;
};

OrderResult
runOne(LoggingStyle style)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
    cfg.style = style;
    PmSystem sys(cfg);

    const Addr logged = sys.heap().alloc(128);
    const Addr log_free = sys.heap().alloc(128);

    sys.tracker().enable();
    sys.txBegin();
    for (int i = 0; i < 16; ++i)
        sys.write<std::uint64_t>(logged + i * 8, i);
    for (int i = 0; i < 16; ++i)
        sys.writeT<std::uint64_t>(log_free + i * 8, i,
                                  {.lazy = false, .logFree = true});
    sys.txCommit();
    sys.tracker().disable();

    OrderResult out;
    out.ledger = sys.tracker().ledger();

    std::size_t last_record = 0;
    std::size_t first_logged = out.ledger.size();
    std::size_t last_logfree = 0;
    for (std::size_t i = 0; i < out.ledger.size(); ++i) {
        switch (out.ledger[i].kind) {
          case PersistKind::LogRecord:
            last_record = i;
            break;
          case PersistKind::LoggedLine:
            first_logged = std::min(first_logged, i);
            break;
          case PersistKind::LogFreeLine:
            last_logfree = i;
            break;
          default:
            break;
        }
    }
    if (style == LoggingStyle::Undo) {
        // Undo: log records before logged lines; log-free anywhere.
        out.constraintsHold = last_record < first_logged;
    } else {
        // Redo: log-free lines before logged lines.
        out.constraintsHold = last_logfree < first_logged &&
                              last_record < first_logged;
    }
    return out;
}

} // namespace
} // namespace slpmt

int
main()
{
    using namespace slpmt;

    bool all_ok = true;
    for (LoggingStyle style : {LoggingStyle::Undo, LoggingStyle::Redo}) {
        const OrderResult res = runOne(style);
        all_ok = all_ok && res.constraintsHold;
        TableReport table(
            std::string("Figure 4 persist order, ") +
            (style == LoggingStyle::Undo ? "undo" : "redo") +
            std::string(" logging (constraints ") +
            (res.constraintsHold ? "hold)" : "VIOLATED)"));
        table.header({"#", "kind", "address"});
        for (std::size_t i = 0; i < res.ledger.size(); ++i) {
            char addr[32];
            std::snprintf(addr, sizeof(addr), "0x%llx",
                          static_cast<unsigned long long>(
                              res.ledger[i].addr));
            table.row({std::to_string(i), kindName(res.ledger[i].kind),
                       addr});
        }
        table.print();
    }
    return all_ok ? 0 : 1;
}
