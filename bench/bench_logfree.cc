/**
 * @file
 * Log-free-index wrapper: the sweep and tables live in the figure
 * registry (src/sim/figures.cc); this binary just selects "logfree".
 */

#include "sim/figures.hh"

int
main(int argc, char **argv)
{
    return slpmt::runFigureMain("logfree", argc, argv);
}
