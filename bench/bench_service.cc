/**
 * @file
 * Sharded KV service scaling wrapper: the sweep and tables live in
 * the figure registry (src/sim/figures.cc); this binary selects
 * "service".
 */

#include "sim/figures.hh"

int
main(int argc, char **argv)
{
    return slpmt::runFigureMain("service", argc, argv);
}
