/**
 * @file
 * crash_sweep: CLI driver for the crash-point explorer.
 *
 * Sweeps schemes x workloads over systematically enumerated power-
 * failure points, validates recovery at every point against the
 * shadow-map oracle, and emits a JSON report (points explored,
 * violations with repro tuples, recovery replay counts, wall time and
 * parallel speedup). Exit status is the number of sweeps that found
 * violations (0 = clean).
 *
 * Typical runs:
 *   crash_sweep                             # sampled default sweep
 *   crash_sweep --full --workers=8          # every store, parallel
 *   crash_sweep --scheme=SLPMT --workload=hashtable --seed=42 \
 *               --crash-point=117           # reproduce one tuple
 */

#include <sys/resource.h>

#include <cstdio>
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/json.hh"
#include "validate/crash_explorer.hh"
#include "workloads/factory.hh"

namespace
{

using namespace slpmt;

struct CliOptions
{
    std::vector<std::string> schemes = {"SLPMT", "FG"};
    std::vector<std::string> workloads = {"hashtable", "rbtree"};
    LoggingStyle style = LoggingStyle::Undo;
    std::size_t numOps = 60;
    std::size_t valueBytes = 32;
    std::uint64_t seed = 42;
    unsigned insertPct = 80;
    unsigned updatePct = 12;
    unsigned removePct = 8;
    std::size_t maxPoints = 200;
    bool full = false;
    std::size_t workers = 0;  //!< 0: hardware concurrency
    bool compareSerial = false;
    bool tinyCache = false;
    std::string jsonPath;
    long long crashPoint = -1;  //!< >= 0: reproduce a single point

    bool useCheckpoints = true;
    std::size_t checkpointInterval = 64;

    /** Profile mode: time checkpointed vs full-replay sweeps, verify
     *  their reports match, and write a sweep-speed JSON. */
    std::string profilePath;

    /** > 0: gate on checkpoint-vs-fullreplay speedup (profile mode). */
    double speedThreshold = 0.0;
};

/** Process peak resident set size in kilobytes. */
std::uint64_t
peakRssKb()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<std::uint64_t>(ru.ru_maxrss);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::size_t end = comma == std::string::npos ? s.size()
                                                           : comma;
        if (end > pos)
            out.push_back(s.substr(pos, end - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

SchemeKind
parseScheme(const std::string &name)
{
    static const std::vector<SchemeKind> kinds = {
        SchemeKind::FG,    SchemeKind::FG_LG,    SchemeKind::FG_LZ,
        SchemeKind::SLPMT, SchemeKind::SLPMT_CL, SchemeKind::ATOM,
        SchemeKind::EDE,
    };
    for (SchemeKind kind : kinds) {
        if (schemeName(kind) == name)
            return kind;
    }
    std::fprintf(stderr, "unknown scheme: %s\n", name.c_str());
    std::exit(2);
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: crash_sweep [options]\n"
        "  --scheme=A,B       schemes to sweep (default SLPMT,FG)\n"
        "  --workload=A,B     workloads (default hashtable,rbtree)\n"
        "  --style=undo|redo  logging style (default undo)\n"
        "  --ops=N            trace length (default 60)\n"
        "  --value-bytes=N    value size (default 32)\n"
        "  --seed=N           trace seed (default 42)\n"
        "  --mix=I,U,R        insert/update/remove %% (default 80,12,8)\n"
        "  --max-points=N     sampled point budget (default 200)\n"
        "  --full             explore every store (overrides budget)\n"
        "  --workers=N        sweep threads (default: all cores)\n"
        "  --compare-serial   also run 1-worker and report speedup\n"
        "  --tiny-cache       shrink caches so dirty lines overflow\n"
        "                     mid-txn (exercises log replay)\n"
        "  --json=PATH        write the JSON report to PATH\n"
        "  --crash-point=K    reproduce one point (single scheme/"
        "workload); K=0 is the post-completion point\n"
        "  --checkpoint-interval=N  stores between master-run "
        "checkpoints (default 64)\n"
        "  --no-checkpoint    audit mode: re-run every point from "
        "scratch (O(P*T))\n"
        "  --profile=PATH     time checkpointed vs full-replay "
        "sweeps, verify the reports are byte-identical, write a "
        "sweep-speed JSON to PATH\n"
        "  --speed-threshold=X  with --profile: fail unless the "
        "checkpointed sweep is at least X times faster (250 ms "
        "noise floor)\n");
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto val = [&](const char *flag) -> const char * {
            const std::size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) == 0 && arg[n] == '=')
                return arg.c_str() + n + 1;
            return nullptr;
        };
        if (const char *v = val("--scheme")) {
            opt.schemes = splitList(v);
        } else if (const char *v = val("--workload")) {
            opt.workloads = splitList(v);
        } else if (const char *v = val("--style")) {
            if (std::string(v) == "redo")
                opt.style = LoggingStyle::Redo;
            else if (std::string(v) == "undo")
                opt.style = LoggingStyle::Undo;
            else {
                usage();
                std::exit(2);
            }
        } else if (const char *v = val("--ops")) {
            opt.numOps = std::strtoull(v, nullptr, 10);
        } else if (const char *v = val("--value-bytes")) {
            opt.valueBytes = std::strtoull(v, nullptr, 10);
        } else if (const char *v = val("--seed")) {
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = val("--mix")) {
            const auto parts = splitList(v);
            if (parts.size() != 3) {
                usage();
                std::exit(2);
            }
            opt.insertPct =
                static_cast<unsigned>(std::strtoul(parts[0].c_str(),
                                                   nullptr, 10));
            opt.updatePct =
                static_cast<unsigned>(std::strtoul(parts[1].c_str(),
                                                   nullptr, 10));
            opt.removePct =
                static_cast<unsigned>(std::strtoul(parts[2].c_str(),
                                                   nullptr, 10));
        } else if (const char *v = val("--max-points")) {
            opt.maxPoints = std::strtoull(v, nullptr, 10);
        } else if (arg == "--full") {
            opt.full = true;
        } else if (const char *v = val("--workers")) {
            opt.workers = std::strtoull(v, nullptr, 10);
        } else if (arg == "--compare-serial") {
            opt.compareSerial = true;
        } else if (arg == "--tiny-cache") {
            opt.tinyCache = true;
        } else if (const char *v = val("--json")) {
            opt.jsonPath = v;
        } else if (const char *v = val("--crash-point")) {
            opt.crashPoint = std::strtoll(v, nullptr, 10);
        } else if (const char *v = val("--checkpoint-interval")) {
            opt.checkpointInterval = std::strtoull(v, nullptr, 10);
        } else if (arg == "--no-checkpoint") {
            opt.useCheckpoints = false;
        } else if (const char *v = val("--profile")) {
            opt.profilePath = v;
        } else if (const char *v = val("--speed-threshold")) {
            opt.speedThreshold = std::strtod(v, nullptr);
        } else {
            usage();
            std::exit(arg == "--help" ? 0 : 2);
        }
    }
    return opt;
}

CrashSweepConfig
configFor(const CliOptions &opt, const std::string &scheme,
          const std::string &workload)
{
    CrashSweepConfig cfg;
    cfg.scheme = parseScheme(scheme);
    cfg.style = opt.style;
    cfg.workload = workload;
    cfg.mix.numOps = opt.numOps;
    cfg.mix.valueBytes = opt.valueBytes;
    cfg.mix.seed = opt.seed;
    cfg.mix.insertPct = opt.insertPct;
    cfg.mix.updatePct = opt.updatePct;
    cfg.mix.removePct = opt.removePct;
    cfg.maxPoints = opt.full ? 0 : opt.maxPoints;
    cfg.tinyCache = opt.tinyCache;
    cfg.checkpointInterval = opt.checkpointInterval;
    cfg.useCheckpoints = opt.useCheckpoints;
    cfg.workers = opt.workers
                      ? opt.workers
                      : std::max(1u,
                                 std::thread::hardware_concurrency());
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opt = parseArgs(argc, argv);

    // Reject bad workload names here rather than deep inside a sweep.
    for (const auto &w : opt.workloads) {
        const auto &known = allWorkloads();
        if (std::find(known.begin(), known.end(), w) == known.end()) {
            std::fprintf(stderr, "unknown workload: %s\n", w.c_str());
            return 2;
        }
    }

    // Single-point reproduction mode.
    if (opt.crashPoint >= 0) {
        if (opt.schemes.size() != 1 || opt.workloads.size() != 1) {
            std::fprintf(stderr, "--crash-point needs exactly one "
                                 "scheme and one workload\n");
            return 2;
        }
        const CrashSweepConfig cfg =
            configFor(opt, opt.schemes[0], opt.workloads[0]);
        const CrashPointOutcome out = runCrashPoint(
            cfg, static_cast<std::uint64_t>(opt.crashPoint));
        std::printf("crash_point=%llu fired=%d committed_ops=%zu "
                    "replayed_records=%zu violations=%zu\n",
                    static_cast<unsigned long long>(out.crashPoint),
                    out.fired ? 1 : 0, out.committedOps,
                    out.replayedRecords, out.violations.size());
        for (const auto &v : out.violations)
            std::printf("VIOLATION %s\n", v.c_str());
        return out.violations.empty() ? 0 : 1;
    }

    // Profile mode: run every cell twice — checkpointed and
    // full-replay audit — verify the reports are byte-identical, and
    // record the speed ratio. The optional gate compares against
    // --speed-threshold with a 250 ms noise floor (a full replay that
    // finishes under the floor is too small to time reliably).
    if (!opt.profilePath.empty() || opt.speedThreshold > 0.0) {
        int failures = 0;
        double ckpt_ms = 0.0;
        double replay_ms = 0.0;
        std::size_t points = 0;
        bool reports_match = true;

        JsonWriter w;
        w.beginObject();
        w.key("schema").value("slpmt-sweep-speed-1");
        w.key("sweep").beginObject();
        w.key("cells").beginObject();
        for (const auto &scheme : opt.schemes) {
            for (const auto &workload : opt.workloads) {
                CrashSweepConfig cfg =
                    configFor(opt, scheme, workload);
                cfg.useCheckpoints = true;
                const CrashSweepReport ckpt = runCrashSweep(cfg);
                cfg.useCheckpoints = false;
                const CrashSweepReport replay = runCrashSweep(cfg);

                const bool match = ckpt.toJson() == replay.toJson();
                if (!match) {
                    std::fprintf(stderr,
                                 "AUDIT BROKEN: checkpointed and "
                                 "full-replay reports differ (%s, "
                                 "%s)\n",
                                 scheme.c_str(), workload.c_str());
                    reports_match = false;
                    ++failures;
                }
                failures += ckpt.violationCount() > 0 ? 1 : 0;

                ckpt_ms += ckpt.wallMs;
                replay_ms += replay.wallMs;
                points += ckpt.pointsExplored();
                w.key(workload + "/" + scheme).beginObject();
                w.key("checkpointMs").value(ckpt.wallMs);
                w.key("fullReplayMs").value(replay.wallMs);
                w.key("points").value(ckpt.pointsExplored());
                w.key("speedup").value(
                    ckpt.wallMs > 0.0 ? replay.wallMs / ckpt.wallMs
                                      : 0.0);
                w.endObject();
            }
        }
        w.endObject();
        const double speedup =
            ckpt_ms > 0.0 ? replay_ms / ckpt_ms : 0.0;
        w.key("totalCheckpointMs").value(ckpt_ms);
        w.key("totalFullReplayMs").value(replay_ms);
        w.key("points").value(points);
        w.key("pointsPerSecCheckpoint")
            .value(ckpt_ms > 0.0 ? 1000.0 * points / ckpt_ms : 0.0);
        w.key("pointsPerSecFullReplay")
            .value(replay_ms > 0.0 ? 1000.0 * points / replay_ms
                                   : 0.0);
        w.key("speedup").value(speedup);
        w.key("ckptInterval").value(opt.checkpointInterval);
        w.key("reportsMatch").value(reports_match);
        w.endObject();
        w.key("peakRssKb").value(peakRssKb());
        w.endObject();

        std::printf("checkpointed %.0f ms vs full replay %.0f ms -> "
                    "speedup %.2fx over %zu points\n",
                    ckpt_ms, replay_ms, speedup, points);

        if (!opt.profilePath.empty()) {
            std::ofstream out(opt.profilePath);
            out << w.str() << '\n';
        }
        if (opt.speedThreshold > 0.0) {
            if (replay_ms < 250.0) {
                std::printf("speed gate skipped: full replay %.0f ms "
                            "is under the 250 ms noise floor\n",
                            replay_ms);
            } else if (speedup < opt.speedThreshold) {
                std::fprintf(stderr,
                             "SPEED GATE FAILED: %.2fx < %.2fx\n",
                             speedup, opt.speedThreshold);
                ++failures;
            }
        }
        return failures;
    }

    int failures = 0;
    double serial_ms = 0.0;
    double parallel_ms = 0.0;
    std::vector<std::string> sweep_jsons;

    for (const auto &scheme : opt.schemes) {
        for (const auto &workload : opt.workloads) {
            CrashSweepConfig cfg = configFor(opt, scheme, workload);
            CrashSweepReport report = runCrashSweep(cfg);
            parallel_ms += report.wallMs;

            if (opt.compareSerial) {
                CrashSweepConfig serial_cfg = cfg;
                serial_cfg.workers = 1;
                CrashSweepReport serial = runCrashSweep(serial_cfg);
                serial_ms += serial.wallMs;
                if (serial.violationsText() !=
                    report.violationsText()) {
                    std::fprintf(stderr,
                                 "DETERMINISM BROKEN: serial and "
                                 "parallel reports differ (%s, %s)\n",
                                 scheme.c_str(), workload.c_str());
                    ++failures;
                }
            }

            std::printf("%-9s %-9s points=%-5zu stores=%-6llu "
                        "replays=%-6llu violations=%zu  (%.0f ms, "
                        "%zu workers)\n",
                        scheme.c_str(), workload.c_str(),
                        report.pointsExplored(),
                        static_cast<unsigned long long>(
                            report.traceStores),
                        static_cast<unsigned long long>(
                            report.replayedRecordsTotal()),
                        report.violationCount(), report.wallMs,
                        cfg.workers);
            if (report.violationCount() > 0) {
                std::printf("%s", report.violationsText().c_str());
                ++failures;
            }
            sweep_jsons.push_back(report.toJson());
        }
    }

    if (opt.compareSerial && serial_ms > 0.0) {
        std::printf("parallel %.0f ms vs serial %.0f ms -> speedup "
                    "%.2fx\n",
                    parallel_ms, serial_ms,
                    parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
    }

    if (!opt.jsonPath.empty()) {
        std::string doc = "{\"sweeps\":[";
        for (std::size_t i = 0; i < sweep_jsons.size(); ++i) {
            if (i)
                doc += ',';
            doc += sweep_jsons[i];
        }
        doc += "],\"parallel_wall_ms\":";
        {
            char buf[48];
            std::snprintf(buf, sizeof(buf), "%.3f", parallel_ms);
            doc += buf;
        }
        if (opt.compareSerial) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          ",\"serial_wall_ms\":%.3f,\"speedup\":%.3f",
                          serial_ms,
                          parallel_ms > 0.0 ? serial_ms / parallel_ms
                                            : 0.0);
            doc += buf;
        }
        doc += '}';
        std::ofstream out(opt.jsonPath);
        out << doc << '\n';
    }
    return failures;
}
