/**
 * @file
 * Section V-A extension: optimising in-place update transactions.
 *
 * Conventional undo-logged in-place updates pay random PM writes on
 * the commit path. The SLPMT strategy updates the data with lazy but
 * *logged* storeT and appends the new value to a sequential array
 * with eager log-free storeT: at commit only the sequential array is
 * persisted and the updated records stay in the cache. If a crash
 * interrupts the transaction, the undo records roll it back; if it
 * hits after the commit, the sequential records act as a redo log
 * without address indirection.
 *
 * The bench runs a random-update workload both ways, verifies the
 * crash-recovery claims, and reports cycles and PM write traffic.
 */

#include "core/pm_system.hh"
#include "core/tx.hh"
#include "sim/report.hh"

namespace slpmt
{
namespace
{

constexpr std::size_t numRecords = 256;  // hot set: updates coalesce in cache
constexpr Bytes recordBytes = 64;
constexpr std::size_t numTxns = 500;
constexpr std::size_t updatesPerTxn = 8;

struct InPlaceResult
{
    Cycles cycles = 0;
    Bytes pmBytes = 0;
    bool recovered = false;
};

/**
 * Layout: records array + a sequential side array of
 * {value[64], addr} entries. The entry's address word doubles as the
 * publish/valid flag (fresh heap memory reads as zero), so recovery
 * finds the tail by scanning — no durable tail counter whose update
 * would put the side array into every transaction's working set and
 * force the lazy data out each commit.
 */
struct Arena
{
    Addr records;
    Addr side;  //!< sequential redo array (entries of 72 B)
};

constexpr Bytes entryBytes = recordBytes + 8;

Arena
setupArena(PmSystem &sys)
{
    Arena arena;
    arena.records = sys.heap().alloc(numRecords * recordBytes);
    arena.side =
        sys.heap().alloc((numTxns * updatesPerTxn + 1) * entryBytes);
    sys.quiesce();
    return arena;
}

std::array<std::uint8_t, recordBytes>
valueFor(std::uint64_t txn, std::uint64_t slot)
{
    std::array<std::uint8_t, recordBytes> value{};
    std::uint64_t state = txn * 1315423911ULL + slot;
    for (auto &b : value)
        b = static_cast<std::uint8_t>(splitmix64(state));
    return value;
}

/** Conventional eager undo-logged in-place updates. */
InPlaceResult
runConventional(bool crash_after, std::uint64_t seq_factor,
                std::uint64_t write_lat_ns)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
    cfg.pm.sequentialFactor = seq_factor;
    cfg.pm.writeLatencyNs = write_lat_ns;
    PmSystem sys(cfg);
    const Arena arena = setupArena(sys);
    Rng rng(7);

    const Cycles start = sys.cycles();
    const auto before = sys.stats().snapshot();
    for (std::size_t t = 0; t < numTxns; ++t) {
        DurableTx tx(sys);
        for (std::size_t u = 0; u < updatesPerTxn; ++u) {
            const std::uint64_t slot = rng.below(numRecords);
            const auto value = valueFor(t, slot);
            sys.writeBytes(arena.records + slot * recordBytes,
                           value.data(), recordBytes);
        }
        tx.commit();
    }
    const auto after = sys.stats().snapshot();

    InPlaceResult out;
    out.cycles = sys.cycles() - start;
    out.pmBytes = StatsRegistry::delta(before, after)["pm.bytesWritten"];
    out.recovered = true;
    if (crash_after) {
        sys.crash();
        sys.recoverHardware();
        // Committed eagerly: everything durable already.
    }
    return out;
}

/** The Section V-A strategy. */
InPlaceResult
runSlpmtInPlace(bool crash_after, std::uint64_t seq_factor,
                std::uint64_t write_lat_ns)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
    cfg.pm.sequentialFactor = seq_factor;
    cfg.pm.writeLatencyNs = write_lat_ns;
    PmSystem sys(cfg);
    const Arena arena = setupArena(sys);
    Rng rng(7);

    // Track expected final contents for the recovery check.
    std::vector<std::array<std::uint8_t, recordBytes>> expected(
        numRecords);

    const Cycles start = sys.cycles();
    const auto before = sys.stats().snapshot();
    std::uint64_t tail = 0;
    for (std::size_t t = 0; t < numTxns; ++t) {
        DurableTx tx(sys);
        for (std::size_t u = 0; u < updatesPerTxn; ++u) {
            const std::uint64_t slot = rng.below(numRecords);
            const auto value = valueFor(t, slot);
            expected[slot] = value;
            const Addr target = arena.records + slot * recordBytes;
            // Lazy but logged update of the data in place.
            sys.writeBytesT(target, value.data(), recordBytes,
                            {.lazy = true, .logFree = false});
            // Eager log-free sequential record {value, addr}; the
            // address word is written last and publishes the entry.
            const Addr entry = arena.side + tail * entryBytes;
            sys.writeBytesT(entry, value.data(), recordBytes,
                            {.lazy = false, .logFree = true});
            sys.writeT<Addr>(entry + recordBytes, target,
                             {.lazy = false, .logFree = true});
            ++tail;
        }
        tx.commit();
    }
    const auto after = sys.stats().snapshot();

    InPlaceResult out;
    out.cycles = sys.cycles() - start;
    out.pmBytes = StatsRegistry::delta(before, after)["pm.bytesWritten"];

    if (crash_after) {
        // Crash with lazily persistent records still in the cache:
        // replay the sequential array as a redo log (Section V-A),
        // scanning until the first unpublished entry.
        sys.crash();
        sys.recoverHardware();
        for (std::uint64_t i = 0;; ++i) {
            const Addr entry = arena.side + i * entryBytes;
            const Addr target = sys.peek<Addr>(entry + recordBytes);
            if (target == 0)
                break;
            std::uint8_t value[recordBytes];
            sys.peekBytes(entry, value, recordBytes);
            sys.pm().poke(target, value, recordBytes);
        }
        out.recovered = true;
        for (std::size_t slot = 0; slot < numRecords; ++slot) {
            std::array<std::uint8_t, recordBytes> got{};
            sys.peekBytes(arena.records + slot * recordBytes,
                          got.data(), recordBytes);
            if (got != expected[slot]) {
                out.recovered = false;
                break;
            }
        }
    } else {
        out.recovered = true;
    }
    return out;
}

} // namespace
} // namespace slpmt

int
main()
{
    using namespace slpmt;

    // Sweep the device's sequential-over-random write advantage: the
    // strategy converts random commit-path writes into one sequential
    // stream, so its benefit appears once the asymmetry is real.
    TableReport table(
        "Section V-A: in-place update transactions — conventional vs "
        "lazy+sequential-record strategy vs PM write asymmetry");
    table.header({"device", "conventional cycles",
                  "Section V-A cycles", "speedup", "recovery"});
    bool all_ok = true;
    struct Device { const char *name; std::uint64_t lat; std::uint64_t seq; };
    const Device devices[] = {
        {"Optane-class 500ns, flat", 500, 1},
        {"CXL-flash 2300ns, seq 8x", 2300, 8},
        {"CXL-flash 2300ns, seq 32x", 2300, 32},
    };
    for (const Device &d : devices) {
        const InPlaceResult conv = runConventional(true, d.seq, d.lat);
        const InPlaceResult opt = runSlpmtInPlace(true, d.seq, d.lat);
        all_ok = all_ok && conv.recovered && opt.recovered;
        table.row({d.name,
                   TableReport::integer(conv.cycles),
                   TableReport::integer(opt.cycles),
                   TableReport::ratio(static_cast<double>(conv.cycles) /
                                      static_cast<double>(opt.cycles)),
                   conv.recovered && opt.recovered ? "ok" : "FAILED"});
    }
    table.print();
    return all_ok ? 0 : 1;
}
