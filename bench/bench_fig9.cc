/**
 * @file
 * Figure 9: SLPMT logging at cache-line granularity. The baseline
 * here is line-granularity hardware logging without selective
 * features (the ATOM configuration); SLPMT-CL adds log-free and lazy
 * persistency on top. Paper reference: 1.27x speedup, and the
 * featureless hardware incurs ~15% more write traffic.
 */

#include "bench_common.hh"

namespace slpmt
{
namespace
{

const std::vector<SchemeKind> schemes = {SchemeKind::ATOM,
                                         SchemeKind::SLPMT_CL};

void
registerCases()
{
    for (const auto &workload : kernelWorkloads()) {
        for (SchemeKind scheme : schemes) {
            ExperimentConfig cfg;
            cfg.scheme = scheme;
            cfg.ycsb.numOps = 1000;
            cfg.ycsb.valueBytes = 256;
            const std::string key = caseKey(workload, scheme);
            benchmark::RegisterBenchmark(
                ("fig9/" + key).c_str(),
                [key, workload, cfg](benchmark::State &state) {
                    runCase(state, key, workload, cfg);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

void
printFigure()
{
    TableReport table(
        "Figure 9: cache-line-granularity SLPMT vs featureless "
        "line-granularity baseline");
    table.header({"benchmark", "SLPMT-CL speedup",
                  "extra traffic without features"});
    std::vector<double> speedups;
    std::vector<double> extra;
    for (const auto &workload : kernelWorkloads()) {
        const auto &base =
            resultStore().get(caseKey(workload, SchemeKind::ATOM));
        const auto &cl =
            resultStore().get(caseKey(workload, SchemeKind::SLPMT_CL));
        const double sp = cl.speedupOver(base);
        const double ex = cl.pmWriteBytes
                              ? static_cast<double>(base.pmWriteBytes) /
                                        static_cast<double>(
                                            cl.pmWriteBytes) -
                                    1.0
                              : 0;
        speedups.push_back(sp);
        extra.push_back(ex);
        table.row({workload, TableReport::ratio(sp),
                   TableReport::percent(ex)});
    }
    double mean_extra = 0;
    for (double e : extra)
        mean_extra += e;
    mean_extra /= static_cast<double>(extra.size());
    table.row({"geomean/mean", TableReport::ratio(geomean(speedups)),
               TableReport::percent(mean_extra)});
    table.print();
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    slpmt::registerCases();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    slpmt::printFigure();
    return slpmt::verifyAllOrFail();
}
