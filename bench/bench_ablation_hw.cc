/**
 * @file
 * Hardware-design ablations called out in DESIGN.md:
 *  - speculative log-record rounding (Section III-B1): create records
 *    for clean words so aggregated L2 log bits stay set, trading
 *    extra records against duplicate logging after refetch;
 *  - transaction-ID count (Section III-C2): how deep the lazy window
 *    is before the circular allocator forces persists;
 *  - the tiered coalescing log buffer itself: FG with the buffer vs
 *    FG persisting each record as it is created.
 */

#include "sim/experiment.hh"
#include "sim/report.hh"

namespace slpmt
{
namespace
{

ExperimentResult
runWith(const std::string &workload, SchemeKind kind, bool speculative,
        std::uint8_t txn_ids)
{
    ExperimentConfig cfg;
    cfg.scheme = kind;
    cfg.ycsb.numOps = 1000;
    cfg.ycsb.valueBytes = 256;
    cfg.speculativeRounding = speculative;
    cfg.numTxnIds = txn_ids;
    return runExperiment(workload, cfg);
}

void
printSpeculative()
{
    TableReport table(
        "Ablation: speculative log-bit rounding (Section III-B1)");
    table.header({"benchmark", "records off", "records on",
                  "traffic off KB", "traffic on KB", "speedup on/off"});
    for (const auto &workload : kernelWorkloads()) {
        const auto off = runWith(workload, SchemeKind::SLPMT, false, 4);
        const auto on = runWith(workload, SchemeKind::SLPMT, true, 4);
        table.row({workload, TableReport::integer(off.logRecords),
                   TableReport::integer(on.logRecords),
                   TableReport::num(
                       static_cast<double>(off.pmWriteBytes) / 1024.0),
                   TableReport::num(
                       static_cast<double>(on.pmWriteBytes) / 1024.0),
                   TableReport::ratio(on.speedupOver(off))});
    }
    table.print();
}

void
printTxnIds()
{
    TableReport table(
        "Ablation: transaction-ID count (lazy window depth)");
    const std::vector<std::uint8_t> counts = {1, 2, 4, 8};
    std::vector<std::string> cols = {"benchmark"};
    for (auto n : counts)
        cols.push_back(std::to_string(n) + " IDs");
    table.header(cols);
    for (const auto &workload : {std::string("hashtable"),
                                 std::string("avl")}) {
        const auto base = runWith(workload, SchemeKind::FG, false, 4);
        std::vector<std::string> row = {workload};
        for (auto n : counts) {
            const auto res = runWith(workload, SchemeKind::SLPMT, false,
                                     n);
            row.push_back(TableReport::ratio(res.speedupOver(base)));
        }
        table.row(row);
    }
    table.print();
}

void
printLogBuffer()
{
    TableReport table(
        "Ablation: tiered coalescing log buffer (FG with vs without)");
    table.header({"benchmark", "with buffer KB", "without buffer KB",
                  "speedup with/without"});
    for (const auto &workload : kernelWorkloads()) {
        ExperimentConfig with_cfg;
        with_cfg.scheme = SchemeKind::FG;
        with_cfg.ycsb.numOps = 1000;
        with_cfg.ycsb.valueBytes = 256;
        const auto with_buf = runExperiment(workload, with_cfg);

        // FG without the buffer: like EDE's persist-per-record but
        // with hardware record creation (no software costs).
        ExperimentConfig without_cfg = with_cfg;
        without_cfg.scheme = SchemeKind::EDE;
        const auto without_buf = runExperiment(workload, without_cfg);

        table.row({workload,
                   TableReport::num(
                       static_cast<double>(with_buf.pmWriteBytes) /
                       1024.0),
                   TableReport::num(
                       static_cast<double>(without_buf.pmWriteBytes) /
                       1024.0),
                   TableReport::ratio(with_buf.speedupOver(without_buf))});
    }
    table.print();
}

} // namespace
} // namespace slpmt

int
main()
{
    using namespace slpmt;

    printSpeculative();
    printTxnIds();
    printLogBuffer();
    return 0;
}
