/**
 * @file
 * Beyond the paper: an update-heavy mixed workload (YCSB-A-style,
 * 50% inserts / 50% updates of already-present keys).
 *
 * The paper evaluates the insert-only ycsb-load phase; updates stress
 * a different part of the design — every update's out-of-place value
 * write is log-free (fresh blob), while the small pointer/length
 * fields stay logged. Selective logging should therefore keep most of
 * its advantage, and this bench quantifies it across schemes.
 */

#include <map>

#include "core/pm_system.hh"
#include "sim/report.hh"
#include "workloads/factory.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{
namespace
{

struct MixedResult
{
    Cycles cycles = 0;
    Bytes pmBytes = 0;
    bool verified = false;
};

MixedResult
runMixed(const std::string &workload_name, SchemeKind scheme,
         std::size_t value_bytes)
{
    SystemConfig sys_cfg;
    sys_cfg.scheme = SchemeConfig::forKind(scheme);
    PmSystem sys(sys_cfg);
    auto workload = makeWorkload(workload_name);
    workload->setup(sys);

    const auto ops = ycsbLoad({.numOps = 500, .valueBytes = value_bytes,
                               .seed = 33});
    // Preload half the keys.
    for (std::size_t i = 0; i < 250; ++i)
        workload->insert(sys, ops[i].key, ops[i].value);

    // Mixed phase: alternate inserting new keys and updating old ones.
    Rng rng(44);
    std::vector<std::vector<std::uint8_t>> latest(250);
    const Cycles start = sys.cycles();
    const auto before = sys.stats().snapshot();
    std::size_t next_insert = 250;
    for (int i = 0; i < 500; ++i) {
        if (i % 2 == 0 && next_insert < ops.size()) {
            workload->insert(sys, ops[next_insert].key,
                             ops[next_insert].value);
            ++next_insert;
        } else {
            const std::size_t victim = rng.below(250);
            auto fresh = ycsbValueFor(ops[victim].key ^ i, value_bytes);
            workload->update(sys, ops[victim].key, fresh);
            latest[victim] = std::move(fresh);
        }
    }
    const auto delta =
        StatsRegistry::delta(before, sys.stats().snapshot());

    MixedResult out;
    out.cycles = sys.cycles() - start;
    auto it = delta.find("pm.bytesWritten");
    out.pmBytes = it == delta.end() ? 0 : it->second;

    // Verify the final state.
    out.verified = true;
    std::string why;
    if (!workload->checkConsistency(sys, &why))
        out.verified = false;
    std::vector<std::uint8_t> got;
    for (std::size_t i = 0; i < 250 && out.verified; ++i) {
        const auto &want = latest[i].empty() ? ops[i].value : latest[i];
        out.verified = workload->lookup(sys, ops[i].key, &got) &&
                       got == want;
    }
    return out;
}

const std::vector<SchemeKind> schemes = {
    SchemeKind::FG, SchemeKind::SLPMT, SchemeKind::ATOM, SchemeKind::EDE};

} // namespace
} // namespace slpmt

int
main()
{
    using namespace slpmt;

    TableReport table(
        "Extension: 50/50 insert/update mix (256B values), speedup "
        "over FG");
    std::vector<std::string> cols = {"benchmark"};
    for (SchemeKind s : schemes)
        cols.push_back(schemeName(s));
    cols.push_back("SLPMT traffic cut");
    table.header(cols);

    bool all_ok = true;
    std::map<SchemeKind, std::vector<double>> all;
    for (const auto &workload : allWorkloads()) {
        std::map<SchemeKind, MixedResult> results;
        for (SchemeKind s : schemes) {
            results[s] = runMixed(workload, s, 256);
            all_ok = all_ok && results[s].verified;
        }
        std::vector<std::string> row = {workload};
        for (SchemeKind s : schemes) {
            const double sp =
                static_cast<double>(results[SchemeKind::FG].cycles) /
                static_cast<double>(results[s].cycles);
            all[s].push_back(sp);
            row.push_back(TableReport::ratio(sp));
        }
        row.push_back(TableReport::percent(
            1.0 -
            static_cast<double>(results[SchemeKind::SLPMT].pmBytes) /
                static_cast<double>(results[SchemeKind::FG].pmBytes)));
        table.row(row);
    }
    std::vector<std::string> row = {"geomean"};
    for (SchemeKind s : schemes)
        row.push_back(TableReport::ratio(geomean(all[s])));
    table.row(row);
    table.print();
    return all_ok ? 0 : 1;
}
