/**
 * @file
 * Figure 12: speedup sensitivity to the PM media write latency
 * (500 ns Optane-class up to 2300 ns byte-addressable-SSD-class, as
 * CXL enables). Paper reference: gains are largely stable for the
 * benchmarks dominated by the traffic reduction; hashtable, which
 * leans on lazy persistency to move persists off the critical path,
 * is the most latency-sensitive.
 */

#include "bench_common.hh"

namespace slpmt
{
namespace
{

const std::vector<std::uint64_t> latenciesNs = {500, 1100, 1700, 2300};

void
registerCases()
{
    for (const auto &workload : kernelWorkloads()) {
        for (std::uint64_t lat : latenciesNs) {
            for (SchemeKind scheme :
                 {SchemeKind::FG, SchemeKind::SLPMT}) {
                ExperimentConfig cfg;
                cfg.scheme = scheme;
                cfg.ycsb.numOps = 1000;
                cfg.ycsb.valueBytes = 256;
                cfg.pmWriteLatencyNs = lat;
                const std::string key = caseKey(
                    workload, scheme, std::to_string(lat) + "ns");
                benchmark::RegisterBenchmark(
                    ("fig12/" + key).c_str(),
                    [key, workload, cfg](benchmark::State &state) {
                        runCase(state, key, workload, cfg);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
}

void
printFigure()
{
    TableReport table(
        "Figure 12: SLPMT speedup over FG vs PM write latency");
    std::vector<std::string> cols = {"benchmark"};
    for (std::uint64_t lat : latenciesNs)
        cols.push_back(std::to_string(lat) + "ns");
    table.header(cols);

    std::map<std::uint64_t, std::vector<double>> by_lat;
    for (const auto &workload : kernelWorkloads()) {
        std::vector<std::string> row = {workload};
        for (std::uint64_t lat : latenciesNs) {
            const auto suffix = std::to_string(lat) + "ns";
            const auto &base = resultStore().get(
                caseKey(workload, SchemeKind::FG, suffix));
            const auto &slpmt = resultStore().get(
                caseKey(workload, SchemeKind::SLPMT, suffix));
            const double sp = slpmt.speedupOver(base);
            by_lat[lat].push_back(sp);
            row.push_back(TableReport::ratio(sp));
        }
        table.row(row);
    }
    std::vector<std::string> row = {"geomean"};
    for (std::uint64_t lat : latenciesNs)
        row.push_back(TableReport::ratio(geomean(by_lat[lat])));
    table.row(row);
    table.print();
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    slpmt::registerCases();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    slpmt::printFigure();
    return slpmt::verifyAllOrFail();
}
