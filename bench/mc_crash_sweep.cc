/**
 * @file
 * mc_crash_sweep: CLI driver for the multicore crash-point sweep.
 *
 * Sweeps schemes x core counts of the interleaved YCSB run over
 * stratified machine-wide power-failure points, validating recovery
 * at each point against the scheduler-commit-order shadow oracle.
 * Exit status is the number of sweeps that found violations.
 *
 * Typical runs:
 *   mc_crash_sweep                          # sampled default sweep
 *   mc_crash_sweep --full --workers=8       # every store, parallel
 *   mc_crash_sweep --scheme=SLPMT --cores=4 --crash-point=117
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "multicore/mc_crash.hh"
#include "workloads/factory.hh"

namespace
{

using namespace slpmt;

struct CliOptions
{
    std::vector<std::string> schemes = {"SLPMT", "FG"};
    std::string workload = "hashtable";
    LoggingStyle style = LoggingStyle::Undo;
    std::vector<std::size_t> coreCounts = {2, 4};
    std::size_t opsPerCore = 24;
    std::size_t valueBytes = 32;
    std::uint64_t seed = 42;
    unsigned sharedPct = 25;
    std::size_t maxPoints = 120;
    bool tinyCache = false;
    bool full = false;
    std::size_t workers = 0;  //!< 0: hardware concurrency
    long long crashPoint = -1;
    bool useCheckpoints = true;
    std::size_t checkpointInterval = 64;
    std::string jsonPath;
};

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? s.size() : comma;
        if (end > pos)
            out.push_back(s.substr(pos, end - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

SchemeKind
parseScheme(const std::string &name)
{
    static const std::vector<SchemeKind> kinds = {
        SchemeKind::FG,    SchemeKind::FG_LG,    SchemeKind::FG_LZ,
        SchemeKind::SLPMT, SchemeKind::SLPMT_CL, SchemeKind::ATOM,
        SchemeKind::EDE,
    };
    for (SchemeKind kind : kinds) {
        if (schemeName(kind) == name)
            return kind;
    }
    std::fprintf(stderr, "unknown scheme: %s\n", name.c_str());
    std::exit(2);
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: mc_crash_sweep [options]\n"
        "  --scheme=A,B       schemes to sweep (default SLPMT,FG)\n"
        "  --workload=NAME    workload (default hashtable)\n"
        "  --style=undo|redo  logging style (default undo)\n"
        "  --cores=A,B        core counts (default 2,4)\n"
        "  --ops-per-core=N   ops per core (default 24)\n"
        "  --value-bytes=N    value size (default 32)\n"
        "  --seed=N           stream/interleaving seed (default 42)\n"
        "  --shared-pct=N     shared-key op %% (default 25)\n"
        "  --max-points=N     sampled point budget (default 120)\n"
        "  --tiny-cache       shrink caches to force mid-txn "
        "evictions\n"
        "  --full             explore every store\n"
        "  --workers=N        sweep threads (default: all cores)\n"
        "  --crash-point=K    reproduce one point (single scheme and "
        "core count); K=0 is the post-completion point\n"
        "  --checkpoint-interval=N  stores between master-run "
        "checkpoints (default 64)\n"
        "  --no-checkpoint    audit mode: re-run every point from "
        "scratch (O(P*T))\n"
        "  --json=PATH        write the JSON reports to PATH\n");
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto val = [&](const char *flag) -> const char * {
            const std::size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) == 0 && arg[n] == '=')
                return arg.c_str() + n + 1;
            return nullptr;
        };
        if (const char *v = val("--scheme")) {
            opt.schemes = splitList(v);
        } else if (const char *v = val("--workload")) {
            opt.workload = v;
        } else if (const char *v = val("--style")) {
            if (std::string(v) == "redo")
                opt.style = LoggingStyle::Redo;
            else if (std::string(v) == "undo")
                opt.style = LoggingStyle::Undo;
            else {
                usage();
                std::exit(2);
            }
        } else if (const char *v = val("--cores")) {
            opt.coreCounts.clear();
            for (const auto &part : splitList(v))
                opt.coreCounts.push_back(
                    std::strtoull(part.c_str(), nullptr, 10));
        } else if (const char *v = val("--ops-per-core")) {
            opt.opsPerCore = std::strtoull(v, nullptr, 10);
        } else if (const char *v = val("--value-bytes")) {
            opt.valueBytes = std::strtoull(v, nullptr, 10);
        } else if (const char *v = val("--seed")) {
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = val("--shared-pct")) {
            opt.sharedPct =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (const char *v = val("--max-points")) {
            opt.maxPoints = std::strtoull(v, nullptr, 10);
        } else if (arg == "--tiny-cache") {
            opt.tinyCache = true;
        } else if (arg == "--full") {
            opt.full = true;
        } else if (const char *v = val("--workers")) {
            opt.workers = std::strtoull(v, nullptr, 10);
        } else if (const char *v = val("--crash-point")) {
            opt.crashPoint = std::strtoll(v, nullptr, 10);
        } else if (const char *v = val("--checkpoint-interval")) {
            opt.checkpointInterval = std::strtoull(v, nullptr, 10);
        } else if (arg == "--no-checkpoint") {
            opt.useCheckpoints = false;
        } else if (const char *v = val("--json")) {
            opt.jsonPath = v;
        } else {
            usage();
            std::exit(arg == "--help" ? 0 : 2);
        }
    }
    return opt;
}

McCrashSweepConfig
configFor(const CliOptions &opt, const std::string &scheme,
          std::size_t cores)
{
    McCrashSweepConfig cfg;
    cfg.scheme = parseScheme(scheme);
    cfg.style = opt.style;
    cfg.run.workload = opt.workload;
    cfg.run.numCores = cores;
    cfg.run.opsPerCore = opt.opsPerCore;
    cfg.run.valueBytes = opt.valueBytes;
    cfg.run.seed = opt.seed;
    cfg.run.sharedPct = opt.sharedPct;
    cfg.maxPoints = opt.full ? 0 : opt.maxPoints;
    cfg.tinyCache = opt.tinyCache;
    cfg.checkpointInterval = opt.checkpointInterval;
    cfg.useCheckpoints = opt.useCheckpoints;
    cfg.workers =
        opt.workers
            ? opt.workers
            : std::max(1u, std::thread::hardware_concurrency());
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opt = parseArgs(argc, argv);

    const auto &known = allWorkloads();
    if (std::find(known.begin(), known.end(), opt.workload) ==
        known.end()) {
        std::fprintf(stderr, "unknown workload: %s\n",
                     opt.workload.c_str());
        return 2;
    }

    if (opt.crashPoint >= 0) {
        if (opt.schemes.size() != 1 || opt.coreCounts.size() != 1) {
            std::fprintf(stderr, "--crash-point needs exactly one "
                                 "scheme and one core count\n");
            return 2;
        }
        const McCrashSweepConfig cfg =
            configFor(opt, opt.schemes[0], opt.coreCounts[0]);
        const McCrashPointOutcome out = runMcCrashPoint(
            cfg, static_cast<std::uint64_t>(opt.crashPoint));
        std::printf("crash_point=%llu fired=%d committed_ops=%zu "
                    "replayed_records=%zu violations=%zu\n",
                    static_cast<unsigned long long>(out.crashPoint),
                    out.fired ? 1 : 0, out.committedOps,
                    out.replayedRecords, out.violations.size());
        for (const auto &v : out.violations)
            std::printf("VIOLATION %s\n", v.c_str());
        return out.violations.empty() ? 0 : 1;
    }

    int failures = 0;
    std::vector<std::string> sweep_jsons;
    for (const auto &scheme : opt.schemes) {
        for (std::size_t cores : opt.coreCounts) {
            const McCrashSweepConfig cfg =
                configFor(opt, scheme, cores);
            const McCrashSweepReport report = runMcCrashSweep(cfg);
            std::printf("%s", report.summaryText().c_str());
            if (report.violationCount() > 0)
                ++failures;
            sweep_jsons.push_back(report.toJson());
        }
    }

    if (!opt.jsonPath.empty()) {
        std::string doc = "{\"sweeps\":[";
        for (std::size_t i = 0; i < sweep_jsons.size(); ++i) {
            if (i)
                doc += ',';
            doc += sweep_jsons[i];
        }
        doc += "]}";
        std::ofstream out(opt.jsonPath);
        out << doc << '\n';
    }
    return failures;
}
