/**
 * @file
 * Figure 13: the compiler pass vs manual annotations.
 *
 * Left: SLPMT speedup over the FG baseline with manually inserted
 * storeT annotations vs with compiler-inferred ones. Paper reference:
 * the compiler achieves similar speedups, finding 16 of the 26
 * manually annotated variables across the kernels (it finds the
 * fresh-allocation log-free stores and a few lazy pointers such as
 * the rbtree parent, but misses colour/counter variables whose
 * justification needs deep semantics — which costs little because
 * those words share cache lines with eagerly persisted data).
 *
 * Right: compile-time overhead of the analysis. Paper reference: up
 * to 23% relative on btree but always under 0.15 s absolute.
 */

#include "bench_common.hh"

#include "compiler/compiler_policy.hh"
#include "core/pm_system.hh"

namespace slpmt
{
namespace
{

std::vector<std::string>
fig13Workloads()
{
    auto names = kernelWorkloads();
    names.push_back("kv-btree");
    return names;
}

/** clang -O2 baseline build time per benchmark, seconds (modelled). */
double
baselineCompileSec(const std::string &workload)
{
    if (workload == "kv-btree")
        return 0.65;  // the paper's largest relative overhead case
    if (workload == "hashtable")
        return 1.9;
    if (workload == "rbtree")
        return 2.3;
    if (workload == "heap")
        return 1.4;
    return 1.8;  // avl
}

void
registerCases()
{
    for (const auto &workload : fig13Workloads()) {
        struct Mode
        {
            AnnotationMode mode;
            SchemeKind scheme;
            const char *tag;
        };
        const Mode modes[] = {
            {AnnotationMode::Manual, SchemeKind::FG, "base"},
            {AnnotationMode::Manual, SchemeKind::SLPMT, "manual"},
            {AnnotationMode::Compiler, SchemeKind::SLPMT, "compiler"},
        };
        for (const Mode &m : modes) {
            ExperimentConfig cfg;
            cfg.scheme = m.scheme;
            cfg.annotations = m.mode;
            cfg.ycsb.numOps = 1000;
            cfg.ycsb.valueBytes = 256;
            const std::string key = caseKey(workload, m.scheme, m.tag);
            benchmark::RegisterBenchmark(
                ("fig13/" + key).c_str(),
                [key, workload, cfg](benchmark::State &state) {
                    runCase(state, key, workload, cfg);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

void
printFigure()
{
    TableReport speedup(
        "Figure 13 (left): speedup over FG, manual vs compiler "
        "annotations");
    speedup.header({"benchmark", "manual", "compiler"});
    std::vector<double> manual_all;
    std::vector<double> compiler_all;
    for (const auto &workload : fig13Workloads()) {
        const auto &base = resultStore().get(
            caseKey(workload, SchemeKind::FG, "base"));
        const auto &manual = resultStore().get(
            caseKey(workload, SchemeKind::SLPMT, "manual"));
        const auto &compiler = resultStore().get(
            caseKey(workload, SchemeKind::SLPMT, "compiler"));
        const double sm = manual.speedupOver(base);
        const double sc = compiler.speedupOver(base);
        manual_all.push_back(sm);
        compiler_all.push_back(sc);
        speedup.row({workload, TableReport::ratio(sm),
                     TableReport::ratio(sc)});
    }
    speedup.row({"geomean", TableReport::ratio(geomean(manual_all)),
                 TableReport::ratio(geomean(compiler_all))});
    speedup.print();

    // Annotation coverage (the 16-of-26 observation).
    TableReport coverage("Figure 13: compiler annotation coverage");
    coverage.header({"benchmark", "manual sites", "compiler found",
                     "missed (deep semantics)"});
    std::size_t total_manual = 0;
    std::size_t total_found = 0;
    for (const auto &workload : kernelWorkloads()) {
        PmSystem sys{SystemConfig{}};
        auto w = makeWorkload(workload);
        w->setup(sys);
        const AnnotationReport report = compareAnnotations(sys.sites());
        total_manual += report.manualAnnotated;
        total_found += report.compilerFound;
        coverage.row({workload,
                      TableReport::integer(report.manualAnnotated),
                      TableReport::integer(report.compilerFound),
                      TableReport::integer(report.missed)});
    }
    coverage.row({"total (paper: 16 of 26)",
                  TableReport::integer(total_manual),
                  TableReport::integer(total_found),
                  TableReport::integer(total_manual - total_found)});
    coverage.print();

    // Compile time (Figure 13 right).
    TableReport compile(
        "Figure 13 (right): compile time with the storeT pass");
    compile.header({"benchmark", "baseline (s)", "with pass (s)",
                    "overhead"});
    for (const auto &workload : fig13Workloads()) {
        PmSystem sys{SystemConfig{}};
        auto w = makeWorkload(workload);
        w->setup(sys);
        const CompileTimeEstimate est = estimateCompileTime(
            sys.sites(), baselineCompileSec(workload));
        compile.row({workload, TableReport::num(est.baselineSec),
                     TableReport::num(est.withAnalysisSec),
                     TableReport::percent(est.overheadFraction())});
    }
    compile.print();
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    slpmt::registerCases();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    slpmt::printFigure();
    return slpmt::verifyAllOrFail();
}
