/**
 * @file
 * Figure 13 wrapper: the sweep and table live in the figure registry
 * (src/sim/figures.cc); this binary just selects "fig13".
 */

#include "sim/figures.hh"

int
main(int argc, char **argv)
{
    return slpmt::runFigureMain("fig13", argc, argv);
}
