/**
 * @file
 * Figure 10: speedup sensitivity to the value size. SLPMT over the FG
 * baseline for value sizes 16..256 bytes on the kernel benchmarks.
 * Paper reference: 1.22x average at 16-byte values, growing with the
 * value size on every benchmark (more log-free bytes per insert).
 */

#include "bench_common.hh"

namespace slpmt
{
namespace
{

const std::vector<std::size_t> valueSizes = {16, 32, 64, 128, 256};

void
registerCases()
{
    for (const auto &workload : kernelWorkloads()) {
        for (std::size_t vs : valueSizes) {
            for (SchemeKind scheme :
                 {SchemeKind::FG, SchemeKind::SLPMT}) {
                ExperimentConfig cfg;
                cfg.scheme = scheme;
                cfg.ycsb.numOps = 1000;
                cfg.ycsb.valueBytes = vs;
                const std::string key =
                    caseKey(workload, scheme, std::to_string(vs) + "B");
                benchmark::RegisterBenchmark(
                    ("fig10/" + key).c_str(),
                    [key, workload, cfg](benchmark::State &state) {
                        runCase(state, key, workload, cfg);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
}

void
printFigure()
{
    TableReport table("Figure 10: SLPMT speedup over FG vs value size");
    std::vector<std::string> cols = {"benchmark"};
    for (std::size_t vs : valueSizes)
        cols.push_back(std::to_string(vs) + "B");
    table.header(cols);

    std::map<std::size_t, std::vector<double>> by_size;
    for (const auto &workload : kernelWorkloads()) {
        std::vector<std::string> row = {workload};
        for (std::size_t vs : valueSizes) {
            const auto suffix = std::to_string(vs) + "B";
            const auto &base = resultStore().get(
                caseKey(workload, SchemeKind::FG, suffix));
            const auto &slpmt = resultStore().get(
                caseKey(workload, SchemeKind::SLPMT, suffix));
            const double sp = slpmt.speedupOver(base);
            by_size[vs].push_back(sp);
            row.push_back(TableReport::ratio(sp));
        }
        table.row(row);
    }
    std::vector<std::string> row = {"geomean"};
    for (std::size_t vs : valueSizes)
        row.push_back(TableReport::ratio(geomean(by_size[vs])));
    table.row(row);
    table.print();
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    slpmt::registerCases();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    slpmt::printFigure();
    return slpmt::verifyAllOrFail();
}
