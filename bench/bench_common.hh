/**
 * @file
 * Shared infrastructure for the figure-regeneration benchmarks.
 *
 * Each bench binary is a google-benchmark executable: every
 * (workload, scheme, parameter) cell runs as one benchmark case whose
 * counters carry the simulated cycles and PM write traffic. After the
 * benchmark pass, main() prints the corresponding paper table/figure
 * as rows of speedups / traffic reductions over the proper baseline.
 */

#ifndef SLPMT_BENCH_BENCH_COMMON_HH
#define SLPMT_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/report.hh"

namespace slpmt
{

/** Results collected across benchmark cases, keyed by free-form id. */
class ResultStore
{
  public:
    void
    put(const std::string &key, const ExperimentResult &res)
    {
        results[key] = res;
    }

    const ExperimentResult &
    get(const std::string &key) const
    {
        auto it = results.find(key);
        if (it == results.end())
            fatal("missing benchmark result: " + key);
        return it->second;
    }

    bool has(const std::string &key) const { return results.count(key); }

    bool
    allVerified(std::string *failures) const
    {
        bool ok = true;
        for (const auto &[key, res] : results) {
            if (!res.verified) {
                ok = false;
                if (failures)
                    *failures += key + ": " + res.failure + "\n";
            }
        }
        return ok;
    }

  private:
    std::map<std::string, ExperimentResult> results;
};

inline ResultStore &
resultStore()
{
    static ResultStore store;
    return store;
}

/** Run one experiment inside a benchmark case and record it. */
inline void
runCase(benchmark::State &state, const std::string &key,
        const std::string &workload, const ExperimentConfig &cfg)
{
    ExperimentResult res;
    for (auto _ : state)
        res = runExperiment(workload, cfg);
    state.counters["sim_cycles"] =
        static_cast<double>(res.cycles);
    state.counters["pm_write_bytes"] =
        static_cast<double>(res.pmWriteBytes);
    state.counters["log_records"] =
        static_cast<double>(res.logRecords);
    state.counters["verified"] = res.verified ? 1 : 0;
    resultStore().put(key, res);
}

inline std::string
caseKey(const std::string &workload, SchemeKind scheme,
        const std::string &suffix = "")
{
    return workload + "/" + schemeName(scheme) +
           (suffix.empty() ? "" : "/" + suffix);
}

/** Geometric mean of a list of ratios. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Exit non-zero when any collected run failed verification. */
inline int
verifyAllOrFail()
{
    std::string failures;
    if (!resultStore().allVerified(&failures)) {
        std::fprintf(stderr, "VERIFICATION FAILURES:\n%s",
                     failures.c_str());
        return 1;
    }
    return 0;
}

} // namespace slpmt

#endif // SLPMT_BENCH_BENCH_COMMON_HH
