/**
 * @file
 * Figure 14: the PMKV application with btree/ctree/rtree backends at
 * 256-byte (left) and 16-byte (right) values. Paper reference points:
 * SLPMT beats EDE by 1.35-1.87x and ATOM by 1.4-2x at 256 B; it
 * reduces baseline write traffic by 32.6-47.6%, with the largest
 * traffic cut on kv-rtree but the highest speedup on kv-ctree; at
 * 16 B it still beats EDE/ATOM by 1.35x/1.58x on average, with
 * selective logging adding ~26% on top of fine-grain logging.
 */

#include "bench_common.hh"

namespace slpmt
{
namespace
{

const std::vector<SchemeKind> schemes = {
    SchemeKind::FG, SchemeKind::SLPMT, SchemeKind::ATOM, SchemeKind::EDE};
const std::vector<std::size_t> valueSizes = {256, 16};

void
registerCases()
{
    for (const auto &workload : kvWorkloads()) {
        for (std::size_t vs : valueSizes) {
            for (SchemeKind scheme : schemes) {
                ExperimentConfig cfg;
                cfg.scheme = scheme;
                cfg.ycsb.numOps = 1000;
                cfg.ycsb.valueBytes = vs;
                const std::string key =
                    caseKey(workload, scheme, std::to_string(vs) + "B");
                benchmark::RegisterBenchmark(
                    ("fig14/" + key).c_str(),
                    [key, workload, cfg](benchmark::State &state) {
                        runCase(state, key, workload, cfg);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
}

void
printFigure()
{
    for (std::size_t vs : valueSizes) {
        const auto suffix = std::to_string(vs) + "B";
        TableReport table("Figure 14 (" + suffix +
                          " values): speedup over FG baseline");
        std::vector<std::string> cols = {"benchmark"};
        for (SchemeKind s : schemes)
            cols.push_back(schemeName(s));
        cols.push_back("traffic cut (SLPMT)");
        table.header(cols);

        std::map<SchemeKind, std::vector<double>> all;
        for (const auto &workload : kvWorkloads()) {
            const auto &base = resultStore().get(
                caseKey(workload, SchemeKind::FG, suffix));
            std::vector<std::string> row = {workload};
            for (SchemeKind s : schemes) {
                const auto &res =
                    resultStore().get(caseKey(workload, s, suffix));
                const double sp = res.speedupOver(base);
                all[s].push_back(sp);
                row.push_back(TableReport::ratio(sp));
            }
            const auto &slpmt = resultStore().get(
                caseKey(workload, SchemeKind::SLPMT, suffix));
            row.push_back(TableReport::percent(
                slpmt.trafficReductionOver(base)));
            table.row(row);
        }
        std::vector<std::string> row = {"geomean"};
        for (SchemeKind s : schemes)
            row.push_back(TableReport::ratio(geomean(all[s])));
        table.row(row);
        table.print();

        TableReport vs_prior("Figure 14 (" + suffix +
                             "): SLPMT vs prior hardware designs");
        vs_prior.header({"benchmark", "vs ATOM", "vs EDE"});
        std::vector<double> vs_atom;
        std::vector<double> vs_ede;
        for (const auto &workload : kvWorkloads()) {
            const auto &slpmt = resultStore().get(
                caseKey(workload, SchemeKind::SLPMT, suffix));
            const auto &atom = resultStore().get(
                caseKey(workload, SchemeKind::ATOM, suffix));
            const auto &ede = resultStore().get(
                caseKey(workload, SchemeKind::EDE, suffix));
            const double a = slpmt.speedupOver(atom);
            const double e = slpmt.speedupOver(ede);
            vs_atom.push_back(a);
            vs_ede.push_back(e);
            vs_prior.row({workload, TableReport::ratio(a),
                          TableReport::ratio(e)});
        }
        vs_prior.row({"geomean", TableReport::ratio(geomean(vs_atom)),
                      TableReport::ratio(geomean(vs_ede))});
        vs_prior.print();
    }
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    slpmt::registerCases();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    slpmt::printFigure();
    return slpmt::verifyAllOrFail();
}
