/**
 * @file
 * Figure 14 wrapper: the sweep and table live in the figure registry
 * (src/sim/figures.cc); this binary just selects "fig14".
 */

#include "sim/figures.hh"

int
main(int argc, char **argv)
{
    return slpmt::runFigureMain("fig14", argc, argv);
}
