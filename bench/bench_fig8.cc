/**
 * @file
 * Figure 8: kernel-benchmark speedups over the FG baseline (left) and
 * PM write-traffic reduction over the baseline (right), for FG+LG,
 * FG+LZ, SLPMT, ATOM, and EDE, on the ycsb-load workload (1,000
 * inserts, 8-byte keys, 256-byte values).
 *
 * Paper reference points: SLPMT averages 1.57x over FG, 1.65x over
 * ATOM, 1.78x over EDE; 35% write-traffic reduction over FG;
 * hashtable gains 17% from lazy persistency alone, 24% from log-free
 * alone, 52% combined; FG itself beats ATOM by 1.05x and EDE by
 * 1.13x.
 */

#include "bench_common.hh"

namespace slpmt
{
namespace
{

const std::vector<SchemeKind> schemes = {
    SchemeKind::FG,   SchemeKind::FG_LG, SchemeKind::FG_LZ,
    SchemeKind::SLPMT, SchemeKind::ATOM,  SchemeKind::EDE,
};

void
registerCases()
{
    for (const auto &workload : kernelWorkloads()) {
        for (SchemeKind scheme : schemes) {
            ExperimentConfig cfg;
            cfg.scheme = scheme;
            cfg.ycsb.numOps = 1000;
            cfg.ycsb.valueBytes = 256;
            const std::string key = caseKey(workload, scheme);
            benchmark::RegisterBenchmark(
                ("fig8/" + key).c_str(),
                [key, workload, cfg](benchmark::State &state) {
                    runCase(state, key, workload, cfg);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

void
printFigure()
{
    TableReport speedup("Figure 8 (left): speedup over FG baseline");
    TableReport traffic(
        "Figure 8 (right): PM write-traffic reduction over FG baseline");
    std::vector<std::string> cols = {"benchmark"};
    for (SchemeKind s : schemes)
        cols.push_back(schemeName(s));
    speedup.header(cols);
    traffic.header(cols);

    std::map<SchemeKind, std::vector<double>> all_speedups;
    std::map<SchemeKind, std::vector<double>> all_traffic;

    for (const auto &workload : kernelWorkloads()) {
        const auto &base =
            resultStore().get(caseKey(workload, SchemeKind::FG));
        std::vector<std::string> srow = {workload};
        std::vector<std::string> trow = {workload};
        for (SchemeKind s : schemes) {
            const auto &res = resultStore().get(caseKey(workload, s));
            const double sp = base.cycles
                                  ? static_cast<double>(base.cycles) /
                                        static_cast<double>(res.cycles)
                                  : 0;
            const double tr = res.trafficReductionOver(base);
            srow.push_back(TableReport::ratio(sp));
            trow.push_back(TableReport::percent(tr));
            all_speedups[s].push_back(sp);
            all_traffic[s].push_back(tr);
        }
        speedup.row(srow);
        traffic.row(trow);
    }

    std::vector<std::string> srow = {"geomean"};
    std::vector<std::string> trow = {"mean"};
    for (SchemeKind s : schemes) {
        srow.push_back(TableReport::ratio(geomean(all_speedups[s])));
        double sum = 0;
        for (double v : all_traffic[s])
            sum += v;
        trow.push_back(TableReport::percent(
            sum / static_cast<double>(all_traffic[s].size())));
    }
    speedup.row(srow);
    traffic.row(trow);
    speedup.print();
    traffic.print();

    // Headline cross-scheme ratios (Section VI-D).
    TableReport headline("Section VI-D headline: SLPMT vs prior designs");
    headline.header({"comparison", "geomean speedup"});
    for (SchemeKind other :
         {SchemeKind::FG, SchemeKind::ATOM, SchemeKind::EDE}) {
        std::vector<double> ratios;
        for (const auto &workload : kernelWorkloads()) {
            const auto &slpmt =
                resultStore().get(caseKey(workload, SchemeKind::SLPMT));
            const auto &o = resultStore().get(caseKey(workload, other));
            ratios.push_back(static_cast<double>(o.cycles) /
                             static_cast<double>(slpmt.cycles));
        }
        headline.row({"SLPMT vs " + schemeName(other),
                      TableReport::ratio(geomean(ratios))});
    }
    headline.print();
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    slpmt::registerCases();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    slpmt::printFigure();
    return slpmt::verifyAllOrFail();
}
