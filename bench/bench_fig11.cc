/**
 * @file
 * Figure 11: PM write-traffic reduction sensitivity to the value
 * size (SLPMT vs the FG baseline, absolute bytes saved and relative
 * reduction). Paper reference: for large values the reduction grows
 * roughly linearly with the value size (value logging dominates);
 * from 16 to 32 bytes it is nearly constant (pointer/counter updates
 * dominate).
 */

#include "bench_common.hh"

namespace slpmt
{
namespace
{

const std::vector<std::size_t> valueSizes = {16, 32, 64, 128, 256};

void
registerCases()
{
    for (const auto &workload : kernelWorkloads()) {
        for (std::size_t vs : valueSizes) {
            for (SchemeKind scheme :
                 {SchemeKind::FG, SchemeKind::SLPMT}) {
                ExperimentConfig cfg;
                cfg.scheme = scheme;
                cfg.ycsb.numOps = 1000;
                cfg.ycsb.valueBytes = vs;
                const std::string key =
                    caseKey(workload, scheme, std::to_string(vs) + "B");
                benchmark::RegisterBenchmark(
                    ("fig11/" + key).c_str(),
                    [key, workload, cfg](benchmark::State &state) {
                        runCase(state, key, workload, cfg);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
}

void
printFigure()
{
    TableReport rel(
        "Figure 11: write-traffic reduction (relative) vs value size");
    TableReport abs(
        "Figure 11: write-traffic reduction (KB saved) vs value size");
    std::vector<std::string> cols = {"benchmark"};
    for (std::size_t vs : valueSizes)
        cols.push_back(std::to_string(vs) + "B");
    rel.header(cols);
    abs.header(cols);

    for (const auto &workload : kernelWorkloads()) {
        std::vector<std::string> rrow = {workload};
        std::vector<std::string> arow = {workload};
        for (std::size_t vs : valueSizes) {
            const auto suffix = std::to_string(vs) + "B";
            const auto &base = resultStore().get(
                caseKey(workload, SchemeKind::FG, suffix));
            const auto &slpmt = resultStore().get(
                caseKey(workload, SchemeKind::SLPMT, suffix));
            rrow.push_back(TableReport::percent(
                slpmt.trafficReductionOver(base)));
            const double saved_kb =
                (static_cast<double>(base.pmWriteBytes) -
                 static_cast<double>(slpmt.pmWriteBytes)) /
                1024.0;
            arow.push_back(TableReport::num(saved_kb));
        }
        rel.row(rrow);
        abs.row(arow);
    }
    rel.print();
    abs.print();
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    slpmt::registerCases();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    slpmt::printFigure();
    return slpmt::verifyAllOrFail();
}
