/**
 * @file
 * Figure 11 wrapper: the sweep and table live in the figure registry
 * (src/sim/figures.cc); this binary just selects "fig11".
 */

#include "sim/figures.hh"

int
main(int argc, char **argv)
{
    return slpmt::runFigureMain("fig11", argc, argv);
}
