/**
 * @file
 * Multi-core scalability wrapper: the sweep and tables live in the
 * figure registry (src/sim/figures.cc); this binary selects "mcscale".
 */

#include "sim/figures.hh"

int
main(int argc, char **argv)
{
    return slpmt::runFigureMain("mcscale", argc, argv);
}
