/**
 * @file
 * Table I: the semantics and per-instruction cost of each store /
 * storeT form. For every (lazy, log-free) combination the bench
 * verifies the persist/log bits the hardware sets and measures the
 * average cycles per store (a storeT that skips logging is cheaper;
 * a lazy storeT additionally removes the line from the commit scan).
 */

#include "core/pm_system.hh"
#include "sim/report.hh"

namespace slpmt
{
namespace
{

struct Form
{
    const char *name;
    bool isStoreT;
    StoreFlags flags;
    bool expectPersist;
    bool expectLog;
};

const Form forms[] = {
    {"store", false, {false, false}, true, true},
    {"storeT lazy=0 logfree=0", true, {false, false}, true, true},
    {"storeT lazy=0 logfree=1", true, {false, true}, true, false},
    {"storeT lazy=1 logfree=1", true, {true, true}, false, false},
    {"storeT lazy=1 logfree=0", true, {true, false}, false, true},
};

struct FormResult
{
    bool bitsOk = false;
    double cyclesPerStore = 0;
    double commitCycles = 0;
};

FormResult
measure(const Form &form)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
    PmSystem sys(cfg);
    FormResult out;

    // Semantics check on one line.
    {
        const Addr addr = sys.heap().alloc(64);
        sys.txBegin();
        sys.writeT<std::uint64_t>(addr, 1, form.flags);
        const CacheLine *line = sys.hierarchy().findPrivate(addr);
        out.bitsOk = line && line->persistBit == form.expectPersist &&
                     (line->logBits != 0) == form.expectLog;
        sys.txCommit();
        sys.engine().persistAllLazy();
    }

    // Cost: 64 transactions of 64 stores each over a warm region.
    const Addr region = sys.heap().alloc(64 * wordSize);
    for (std::size_t w = 0; w < 64; ++w)
        sys.write<std::uint64_t>(region + w * wordSize, 0);
    sys.quiesce();

    const Cycles start = sys.cycles();
    Cycles commit_total = 0;
    for (int t = 0; t < 64; ++t) {
        sys.txBegin();
        for (std::size_t w = 0; w < 64; ++w)
            sys.writeT<std::uint64_t>(region + w * wordSize, t,
                                      form.flags);
        const Cycles before_commit = sys.cycles();
        sys.txCommit();
        commit_total += sys.cycles() - before_commit;
    }
    const Cycles total = sys.cycles() - start;
    out.cyclesPerStore = static_cast<double>(total - commit_total) /
                         (64.0 * 64.0);
    out.commitCycles = static_cast<double>(commit_total) / 64.0;
    return out;
}

} // namespace
} // namespace slpmt

int
main()
{
    using namespace slpmt;

    TableReport table("Table I: store/storeT semantics and cost");
    table.header({"instruction", "persist bit", "log bit", "bits ok",
                  "cycles/store", "commit cycles/txn"});
    bool all_ok = true;
    for (const Form &form : forms) {
        const FormResult res = measure(form);
        all_ok = all_ok && res.bitsOk;
        table.row({form.name, form.expectPersist ? "1" : "0",
                   form.expectLog ? "1" : "0", res.bitsOk ? "yes" : "NO",
                   TableReport::num(res.cyclesPerStore),
                   TableReport::num(res.commitCycles)});
    }
    table.print();
    return all_ok ? 0 : 1;
}
