/**
 * @file
 * The experiment multiplexer: runs any subset of the paper-figure
 * sweeps from the figure registry on a work-stealing pool, prints the
 * figure tables, and optionally emits a deterministic JSON report
 * and/or diffs it against a saved baseline.
 *
 * Exit codes: 0 ok, 1 verification failure, 2 usage or I/O error,
 * 3 baseline regression beyond the threshold.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "sim/figures.hh"

namespace
{

/** Host heap-allocation tally feeding the profile's "speed" section.
 *  Relaxed: the count only needs to be monotonic and complete, and
 *  the worker pools must not serialize on it. */
std::atomic<std::uint64_t> allocation_count{0};

} // namespace

// Count every scalar allocation; the default operator new[] routes
// through this overload, so array allocations are tallied too.
void *
operator new(std::size_t size)
{
    allocation_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc{};
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

void
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s --figure=NAME[,NAME...] [options]\n"
        "       %s --list\n"
        "\n"
        "options:\n"
        "  --figure=NAME       figure(s) to run; \"all\" runs every one\n"
        "  --list              list registered figures and exit\n"
        "  --workers=N         worker threads (0 = one per hw thread)\n"
        "  --json[=FILE]       emit the JSON report (stdout when no "
        "FILE,\n"
        "                      which suppresses the tables)\n"
        "  --stats             include the full stats block per cell\n"
        "  --baseline=FILE     diff against a saved report; exit 3 on\n"
        "                      regression\n"
        "  --threshold=FRAC    relative regression bound (default "
        "0.05)\n"
        "  --no-tables         skip the figure tables\n"
        "  --profile[=FILE]    self-profiling harness: per-cell wall\n"
        "                      clock, simulated cycles/sec and peak\n"
        "                      RSS to FILE (default BENCH_speed.json)\n"
        "  --profile-compare   also time the index-disabled full-scan\n"
        "                      mode and record the speedup\n"
        "  --speed-baseline=F  diff wall-clock against a recorded\n"
        "                      speed profile; exit 3 on regression\n"
        "  --speed-threshold=N wall-clock regression bound (default "
        "3.0)\n",
        prog, prog);
}

} // namespace

int
main(int argc, char **argv)
{
    slpmt::setAllocationCounter([] {
        return allocation_count.load(std::memory_order_relaxed);
    });

    slpmt::BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            for (const slpmt::FigureSpec &fig : slpmt::figureRegistry())
                std::printf("%-8s %s\n", fig.name.c_str(),
                            fig.title.c_str());
            return 0;
        }
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        }
        if (arg.rfind("--figure=", 0) == 0) {
            std::string list = arg.substr(std::strlen("--figure="));
            while (!list.empty()) {
                const std::size_t comma = list.find(',');
                const std::string name = list.substr(0, comma);
                list = comma == std::string::npos
                           ? std::string()
                           : list.substr(comma + 1);
                if (name == "all") {
                    for (const slpmt::FigureSpec &fig :
                         slpmt::figureRegistry())
                        opts.figures.push_back(fig.name);
                } else if (!name.empty()) {
                    opts.figures.push_back(name);
                }
            }
            continue;
        }
        std::string error;
        const int consumed =
            slpmt::parseCommonFlag(arg, &opts, &error);
        if (consumed < 0) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
        if (consumed == 0) {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (opts.figures.empty()) {
        usage(argv[0]);
        return 2;
    }
    return slpmt::runBench(opts);
}
