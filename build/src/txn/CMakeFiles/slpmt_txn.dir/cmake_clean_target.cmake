file(REMOVE_RECURSE
  "libslpmt_txn.a"
)
