# Empty compiler generated dependencies file for slpmt_txn.
# This may be replaced when dependencies are built.
