file(REMOVE_RECURSE
  "CMakeFiles/slpmt_txn.dir/engine.cc.o"
  "CMakeFiles/slpmt_txn.dir/engine.cc.o.d"
  "CMakeFiles/slpmt_txn.dir/undo_log_area.cc.o"
  "CMakeFiles/slpmt_txn.dir/undo_log_area.cc.o.d"
  "libslpmt_txn.a"
  "libslpmt_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slpmt_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
