# Empty compiler generated dependencies file for slpmt_sim.
# This may be replaced when dependencies are built.
