file(REMOVE_RECURSE
  "CMakeFiles/slpmt_sim.dir/experiment.cc.o"
  "CMakeFiles/slpmt_sim.dir/experiment.cc.o.d"
  "libslpmt_sim.a"
  "libslpmt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slpmt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
