file(REMOVE_RECURSE
  "libslpmt_sim.a"
)
