file(REMOVE_RECURSE
  "libslpmt_workloads.a"
)
