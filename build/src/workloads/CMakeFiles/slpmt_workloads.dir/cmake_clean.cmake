file(REMOVE_RECURSE
  "CMakeFiles/slpmt_workloads.dir/avltree.cc.o"
  "CMakeFiles/slpmt_workloads.dir/avltree.cc.o.d"
  "CMakeFiles/slpmt_workloads.dir/factory.cc.o"
  "CMakeFiles/slpmt_workloads.dir/factory.cc.o.d"
  "CMakeFiles/slpmt_workloads.dir/hashtable.cc.o"
  "CMakeFiles/slpmt_workloads.dir/hashtable.cc.o.d"
  "CMakeFiles/slpmt_workloads.dir/kv_btree.cc.o"
  "CMakeFiles/slpmt_workloads.dir/kv_btree.cc.o.d"
  "CMakeFiles/slpmt_workloads.dir/kv_ctree.cc.o"
  "CMakeFiles/slpmt_workloads.dir/kv_ctree.cc.o.d"
  "CMakeFiles/slpmt_workloads.dir/kv_rtree.cc.o"
  "CMakeFiles/slpmt_workloads.dir/kv_rtree.cc.o.d"
  "CMakeFiles/slpmt_workloads.dir/maxheap.cc.o"
  "CMakeFiles/slpmt_workloads.dir/maxheap.cc.o.d"
  "CMakeFiles/slpmt_workloads.dir/rbtree.cc.o"
  "CMakeFiles/slpmt_workloads.dir/rbtree.cc.o.d"
  "libslpmt_workloads.a"
  "libslpmt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slpmt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
