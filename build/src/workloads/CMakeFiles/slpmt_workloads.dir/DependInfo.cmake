
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/avltree.cc" "src/workloads/CMakeFiles/slpmt_workloads.dir/avltree.cc.o" "gcc" "src/workloads/CMakeFiles/slpmt_workloads.dir/avltree.cc.o.d"
  "/root/repo/src/workloads/factory.cc" "src/workloads/CMakeFiles/slpmt_workloads.dir/factory.cc.o" "gcc" "src/workloads/CMakeFiles/slpmt_workloads.dir/factory.cc.o.d"
  "/root/repo/src/workloads/hashtable.cc" "src/workloads/CMakeFiles/slpmt_workloads.dir/hashtable.cc.o" "gcc" "src/workloads/CMakeFiles/slpmt_workloads.dir/hashtable.cc.o.d"
  "/root/repo/src/workloads/kv_btree.cc" "src/workloads/CMakeFiles/slpmt_workloads.dir/kv_btree.cc.o" "gcc" "src/workloads/CMakeFiles/slpmt_workloads.dir/kv_btree.cc.o.d"
  "/root/repo/src/workloads/kv_ctree.cc" "src/workloads/CMakeFiles/slpmt_workloads.dir/kv_ctree.cc.o" "gcc" "src/workloads/CMakeFiles/slpmt_workloads.dir/kv_ctree.cc.o.d"
  "/root/repo/src/workloads/kv_rtree.cc" "src/workloads/CMakeFiles/slpmt_workloads.dir/kv_rtree.cc.o" "gcc" "src/workloads/CMakeFiles/slpmt_workloads.dir/kv_rtree.cc.o.d"
  "/root/repo/src/workloads/maxheap.cc" "src/workloads/CMakeFiles/slpmt_workloads.dir/maxheap.cc.o" "gcc" "src/workloads/CMakeFiles/slpmt_workloads.dir/maxheap.cc.o.d"
  "/root/repo/src/workloads/rbtree.cc" "src/workloads/CMakeFiles/slpmt_workloads.dir/rbtree.cc.o" "gcc" "src/workloads/CMakeFiles/slpmt_workloads.dir/rbtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/slpmt_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/slpmt_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/logbuf/CMakeFiles/slpmt_logbuf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
