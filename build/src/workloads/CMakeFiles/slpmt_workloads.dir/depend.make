# Empty dependencies file for slpmt_workloads.
# This may be replaced when dependencies are built.
