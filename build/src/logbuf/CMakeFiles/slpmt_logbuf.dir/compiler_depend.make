# Empty compiler generated dependencies file for slpmt_logbuf.
# This may be replaced when dependencies are built.
