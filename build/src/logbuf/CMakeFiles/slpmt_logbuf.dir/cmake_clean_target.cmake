file(REMOVE_RECURSE
  "libslpmt_logbuf.a"
)
