file(REMOVE_RECURSE
  "CMakeFiles/slpmt_logbuf.dir/log_buffer.cc.o"
  "CMakeFiles/slpmt_logbuf.dir/log_buffer.cc.o.d"
  "libslpmt_logbuf.a"
  "libslpmt_logbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slpmt_logbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
