# Empty dependencies file for slpmt_cache.
# This may be replaced when dependencies are built.
