file(REMOVE_RECURSE
  "CMakeFiles/slpmt_cache.dir/hierarchy.cc.o"
  "CMakeFiles/slpmt_cache.dir/hierarchy.cc.o.d"
  "libslpmt_cache.a"
  "libslpmt_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slpmt_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
