file(REMOVE_RECURSE
  "libslpmt_cache.a"
)
