
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/linked_list.cpp" "examples/CMakeFiles/linked_list.dir/linked_list.cpp.o" "gcc" "examples/CMakeFiles/linked_list.dir/linked_list.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/slpmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/slpmt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/slpmt_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/slpmt_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/logbuf/CMakeFiles/slpmt_logbuf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
