file(REMOVE_RECURSE
  "CMakeFiles/gc_movement.dir/gc_movement.cpp.o"
  "CMakeFiles/gc_movement.dir/gc_movement.cpp.o.d"
  "gc_movement"
  "gc_movement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_movement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
