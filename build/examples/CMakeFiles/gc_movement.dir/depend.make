# Empty dependencies file for gc_movement.
# This may be replaced when dependencies are built.
