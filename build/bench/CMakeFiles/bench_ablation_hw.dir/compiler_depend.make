# Empty compiler generated dependencies file for bench_ablation_hw.
# This may be replaced when dependencies are built.
