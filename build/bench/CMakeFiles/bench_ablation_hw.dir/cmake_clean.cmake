file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hw.dir/bench_ablation_hw.cc.o"
  "CMakeFiles/bench_ablation_hw.dir/bench_ablation_hw.cc.o.d"
  "bench_ablation_hw"
  "bench_ablation_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
