file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_updates.dir/bench_ext_updates.cc.o"
  "CMakeFiles/bench_ext_updates.dir/bench_ext_updates.cc.o.d"
  "bench_ext_updates"
  "bench_ext_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
