# Empty dependencies file for test_pm_device.
# This may be replaced when dependencies are built.
