file(REMOVE_RECURSE
  "CMakeFiles/test_remove.dir/test_remove.cc.o"
  "CMakeFiles/test_remove.dir/test_remove.cc.o.d"
  "test_remove"
  "test_remove.pdb"
  "test_remove[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remove.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
