# Empty dependencies file for test_remove.
# This may be replaced when dependencies are built.
