file(REMOVE_RECURSE
  "CMakeFiles/test_logbuf.dir/test_logbuf.cc.o"
  "CMakeFiles/test_logbuf.dir/test_logbuf.cc.o.d"
  "test_logbuf"
  "test_logbuf.pdb"
  "test_logbuf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
