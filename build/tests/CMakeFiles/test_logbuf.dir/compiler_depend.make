# Empty compiler generated dependencies file for test_logbuf.
# This may be replaced when dependencies are built.
