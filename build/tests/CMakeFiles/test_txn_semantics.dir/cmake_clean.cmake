file(REMOVE_RECURSE
  "CMakeFiles/test_txn_semantics.dir/test_txn_semantics.cc.o"
  "CMakeFiles/test_txn_semantics.dir/test_txn_semantics.cc.o.d"
  "test_txn_semantics"
  "test_txn_semantics.pdb"
  "test_txn_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_txn_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
