# Empty dependencies file for test_txn_semantics.
# This may be replaced when dependencies are built.
