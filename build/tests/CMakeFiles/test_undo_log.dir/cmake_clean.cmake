file(REMOVE_RECURSE
  "CMakeFiles/test_undo_log.dir/test_undo_log.cc.o"
  "CMakeFiles/test_undo_log.dir/test_undo_log.cc.o.d"
  "test_undo_log"
  "test_undo_log.pdb"
  "test_undo_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_undo_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
