file(REMOVE_RECURSE
  "CMakeFiles/test_abort.dir/test_abort.cc.o"
  "CMakeFiles/test_abort.dir/test_abort.cc.o.d"
  "test_abort"
  "test_abort.pdb"
  "test_abort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
