# Empty dependencies file for test_abort.
# This may be replaced when dependencies are built.
