# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_pm_device[1]_include.cmake")
include("/root/repo/build/tests/test_logbuf[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_txn_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_lazy[1]_include.cmake")
include("/root/repo/build/tests/test_ordering[1]_include.cmake")
include("/root/repo/build/tests/test_crash_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_heap[1]_include.cmake")
include("/root/repo/build/tests/test_undo_log[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_abort[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_checkers[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_updates[1]_include.cmake")
include("/root/repo/build/tests/test_remove[1]_include.cmake")
