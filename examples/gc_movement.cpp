/**
 * @file
 * The data-movement pattern of Section VI-D1: an incremental
 * generational GC / defragmenter copies live objects to a new region
 * inside durable transactions. Because the move never modifies the
 * originals, the copies can be written with lazy, log-free storeT —
 * they stay in the cache past the commit and the hardware persists
 * them only when the old region is about to be reused.
 *
 *   ./gc_movement
 */

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "core/pm_system.hh"
#include "core/tx.hh"

using namespace slpmt;

namespace
{

constexpr std::size_t numObjects = 256;
constexpr Bytes objectBytes = 64;
constexpr std::size_t tableSlot = 0;  //!< root: object table address

/** Move every object into a fresh region, one durable txn per batch. */
std::vector<Addr>
moveAll(PmSystem &sys, const std::vector<Addr> &objects, bool lazy)
{
    const Addr table = sys.readRoot(tableSlot);
    std::vector<Addr> moved(objects.size());
    const std::size_t batch = 16;
    for (std::size_t start = 0; start < objects.size(); start += batch) {
        DurableTx tx(sys);
        for (std::size_t i = start;
             i < std::min(start + batch, objects.size()); ++i) {
            std::uint8_t data[objectBytes];
            sys.readBytes(objects[i], data, objectBytes);
            const Addr fresh = sys.heap().alloc(objectBytes);
            sys.writeBytesT(fresh, data, objectBytes,
                            {.lazy = lazy, .logFree = true});
            moved[i] = fresh;
            // The forwarding table entry is the durable anchor.
            sys.write<Addr>(table + i * 8, fresh);
        }
        tx.commit();
    }
    return moved;
}

} // namespace

int
main()
{
    for (bool lazy : {false, true}) {
        SystemConfig config;
        PmSystem sys(config);

        // Build the object heap and the forwarding table.
        std::vector<Addr> objects(numObjects);
        const Addr table = [&] {
            DurableTx tx(sys);
            const Addr t = sys.heap().alloc(numObjects * 8);
            sys.writeRoot(tableSlot, t);
            tx.commit();
            return t;
        }();
        for (std::size_t i = 0; i < numObjects; ++i) {
            DurableTx tx(sys);
            objects[i] = sys.heap().alloc(objectBytes);
            std::uint8_t data[objectBytes];
            for (std::size_t b = 0; b < objectBytes; ++b)
                data[b] = static_cast<std::uint8_t>(i + b);
            sys.writeBytesT(objects[i], data, objectBytes,
                            {.lazy = false, .logFree = true});
            sys.write<Addr>(table + i * 8, objects[i]);
            tx.commit();
        }
        sys.quiesce();

        const Cycles start = sys.cycles();
        const auto before = sys.stats().snapshot();
        const auto moved = moveAll(sys, objects, lazy);
        const auto delta = StatsRegistry::delta(
            before, sys.stats().snapshot());
        const Cycles cycles = sys.cycles() - start;

        // Crash with (possibly) volatile copies; recovery re-executes
        // the moves whose copies did not reach PM — detectable here
        // because the originals are intact until the copies persist.
        sys.crash();
        sys.recoverHardware();
        std::size_t rebuilt = 0;
        bool ok = true;
        for (std::size_t i = 0; i < numObjects; ++i) {
            std::uint8_t got[objectBytes];
            sys.peekBytes(moved[i], got, objectBytes);
            bool intact = true;
            for (std::size_t b = 0; b < objectBytes; ++b)
                intact = intact &&
                         got[b] == static_cast<std::uint8_t>(i + b);
            if (!intact) {
                // Re-execute the move from the (still intact) source.
                std::uint8_t src[objectBytes];
                sys.peekBytes(objects[i], src, objectBytes);
                sys.pm().poke(moved[i], src, objectBytes);
                ++rebuilt;
                for (std::size_t b = 0; b < objectBytes; ++b)
                    ok = ok &&
                         src[b] == static_cast<std::uint8_t>(i + b);
            }
        }

        auto get = [&](const char *name) {
            auto it = delta.find(name);
            return it == delta.end() ? 0ULL : it->second;
        };
        std::printf(
            "%-5s moves: %" PRIu64 " cycles, %" PRIu64
            " PM bytes, %" PRIu64
            " lazy lines deferred; crash: %zu copies rebuilt, %s\n",
            lazy ? "lazy" : "eager", cycles, get("pm.bytesWritten"),
            get("txn.lazyLinesDeferred"), rebuilt,
            ok ? "all objects correct" : "CORRUPT");
        if (!ok)
            return 1;
    }
    return 0;
}
