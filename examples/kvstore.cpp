/**
 * @file
 * PMKV-style usage: a persistent key-value store on the SLPMT API,
 * configurable with the btree, ctree, or rtree backend (the paper's
 * PMDK map example), compared across hardware transaction schemes.
 *
 *   ./kvstore [backend] [ops] [value_bytes]
 *   e.g. ./kvstore kv-ctree 500 128
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hh"
#include "sim/report.hh"

using namespace slpmt;

int
main(int argc, char **argv)
{
    const std::string backend = argc > 1 ? argv[1] : "kv-ctree";
    const std::size_t ops =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 500;
    const std::size_t value_bytes =
        argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 128;

    std::printf("backend=%s ops=%zu value=%zuB\n\n", backend.c_str(),
                ops, value_bytes);

    // Functional demo: insert, look up, crash, recover, look up again.
    {
        SystemConfig config;
        PmSystem sys(config);
        auto store = makeWorkload(backend);
        store->setup(sys);

        const auto trace = ycsbLoad({ops, value_bytes, /*seed=*/7});
        for (const auto &op : trace)
            store->insert(sys, op.key, op.value);

        std::vector<std::uint8_t> value;
        const bool hit = store->lookup(sys, trace[0].key, &value);
        std::printf("lookup(first key): %s, %zu bytes\n",
                    hit ? "hit" : "MISS", value.size());

        sys.crash();
        sys.recoverHardware();
        store->recover(sys);
        std::string why;
        const bool consistent = store->checkConsistency(sys, &why);
        std::printf("after crash+recovery: %zu keys, %s\n",
                    store->count(sys),
                    consistent ? "consistent" : why.c_str());
    }

    // Scheme comparison on this backend.
    TableReport table("scheme comparison (" + backend + ")");
    table.header({"scheme", "Mcycles", "PM write KB", "speedup vs FG"});
    ExperimentResult base;
    for (SchemeKind scheme : {SchemeKind::FG, SchemeKind::ATOM,
                              SchemeKind::EDE, SchemeKind::SLPMT}) {
        ExperimentConfig cfg;
        cfg.scheme = scheme;
        cfg.ycsb.numOps = ops;
        cfg.ycsb.valueBytes = value_bytes;
        const ExperimentResult res = runExperiment(backend, cfg);
        if (scheme == SchemeKind::FG)
            base = res;
        if (!res.verified) {
            std::printf("verification failed: %s\n",
                        res.failure.c_str());
            return 1;
        }
        table.row({schemeName(scheme),
                   TableReport::num(
                       static_cast<double>(res.cycles) / 1e6),
                   TableReport::num(
                       static_cast<double>(res.pmWriteBytes) / 1024.0),
                   TableReport::ratio(res.speedupOver(base))});
    }
    table.print();
    return 0;
}
