/**
 * @file
 * Quickstart: the SLPMT public API in one file.
 *
 * Builds the simulated machine, runs durable transactions using the
 * three store forms (plain store, log-free storeT, lazy storeT),
 * injects a power failure, and recovers — printing what survived and
 * what the hardware logged along the way.
 *
 *   ./quickstart
 */

#include <cinttypes>
#include <cstdio>

#include "core/pm_system.hh"
#include "core/tx.hh"

using namespace slpmt;

int
main()
{
    // A machine running the full SLPMT design (Table III config).
    SystemConfig config;
    config.scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
    PmSystem sys(config);

    // Allocate three persistent cells.
    const Addr balance = sys.heap().alloc(64);
    const Addr scratch = sys.heap().alloc(64);
    const Addr cache_like = sys.heap().alloc(64);

    // --- Transaction 1: ordinary durable update -----------------------
    {
        DurableTx tx(sys);
        sys.write<std::uint64_t>(balance, 1000);  // logged + eager
        tx.commit();
    }
    std::printf("balance committed:   %" PRIu64 " (durable: %" PRIu64
                ")\n",
                sys.read<std::uint64_t>(balance),
                sys.peek<std::uint64_t>(balance));

    // --- Transaction 2: selective logging ------------------------------
    // The scratch cell is freshly allocated in this transaction: a
    // crash would simply leak it and a GC reclaims it, so the store
    // needs no undo record (Pattern 1 of Section IV).
    {
        DurableTx tx(sys);
        sys.writeT<std::uint64_t>(scratch, 7,
                                  {.lazy = false, .logFree = true});
        // The cache_like cell is recomputable from `balance`, so it
        // may stay in the cache past the commit (lazy persistency).
        sys.writeT<std::uint64_t>(
            cache_like, sys.read<std::uint64_t>(balance) * 2,
            {.lazy = true, .logFree = true});
        tx.commit();
    }
    std::printf("lazy cell after commit: cached=%" PRIu64
                " durable=%" PRIu64 " (still volatile!)\n",
                sys.read<std::uint64_t>(cache_like),
                sys.peek<std::uint64_t>(cache_like));

    // Touching the lazy line's dependencies forces it out first.
    {
        DurableTx tx(sys);
        sys.write<std::uint64_t>(balance, 1100);
        tx.commit();
    }
    std::printf("after dependency update: durable lazy cell=%" PRIu64
                " (forced before the overwrite)\n",
                sys.peek<std::uint64_t>(cache_like));

    // --- Transaction 3: crash mid-transaction --------------------------
    sys.txBegin();
    sys.write<std::uint64_t>(balance, 9999);
    // Push the dirty data to PM mid-transaction (the undo "steal"
    // case), then lose power.
    sys.engine().advance(sys.hierarchy().flushAll(sys.engine().now()));
    std::printf("mid-txn: durable balance=%" PRIu64
                " (stolen write reached PM)\n",
                sys.peek<std::uint64_t>(balance));
    sys.crash();

    const std::size_t replayed = sys.recoverHardware();
    std::printf("after crash+recovery: balance=%" PRIu64
                " (undo replayed %zu records)\n",
                sys.peek<std::uint64_t>(balance), replayed);

    // --- What the hardware did ------------------------------------------
    std::printf("\nhardware counters:\n");
    for (const char *name :
         {"txn.committed", "txn.logRecordsCreated",
          "logbuf.coalesces", "logbuf.recordsDiscarded",
          "txn.lazyLinesDeferred", "txn.lazyForcedPersists",
          "pm.bytesWritten"}) {
        std::printf("  %-26s %" PRIu64 "\n", name,
                    sys.stats().get(name));
    }
    return 0;
}
