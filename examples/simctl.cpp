/**
 * @file
 * simctl: command-line experiment driver.
 *
 * Runs one (workload, scheme) experiment with every knob on the
 * command line and prints the metrics — the quickest way to explore
 * the design space without writing code.
 *
 *   ./simctl --workload hashtable --scheme SLPMT \
 *               --ops 1000 --value 256 --write-latency 500 \
 *               [--annotations manual|compiler|none] [--redo] \
 *               [--spec-rounding] [--txn-ids N]
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/experiment.hh"

using namespace slpmt;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: simctl [--workload NAME] [--scheme NAME]\n"
        "                 [--ops N] [--value BYTES]\n"
        "                 [--write-latency NS] [--annotations MODE]\n"
        "                 [--redo] [--spec-rounding] [--txn-ids N]\n"
        "  workloads: hashtable rbtree heap avl kv-btree kv-ctree"
        " kv-rtree\n"
        "  schemes:   FG FG+LG FG+LZ SLPMT SLPMT-CL ATOM EDE\n"
        "  modes:     manual compiler none\n");
}

SchemeKind
parseScheme(const std::string &name)
{
    for (SchemeKind kind :
         {SchemeKind::FG, SchemeKind::FG_LG, SchemeKind::FG_LZ,
          SchemeKind::SLPMT, SchemeKind::SLPMT_CL, SchemeKind::ATOM,
          SchemeKind::EDE}) {
        if (schemeName(kind) == name)
            return kind;
    }
    fatal("unknown scheme: " + name);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "hashtable";
    ExperimentConfig cfg;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = next();
        } else if (arg == "--scheme") {
            cfg.scheme = parseScheme(next());
        } else if (arg == "--ops") {
            cfg.ycsb.numOps =
                static_cast<std::size_t>(std::atoll(next().c_str()));
        } else if (arg == "--value") {
            cfg.ycsb.valueBytes =
                static_cast<std::size_t>(std::atoll(next().c_str()));
        } else if (arg == "--write-latency") {
            cfg.pmWriteLatencyNs = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (arg == "--annotations") {
            const std::string mode = next();
            if (mode == "manual")
                cfg.annotations = AnnotationMode::Manual;
            else if (mode == "compiler")
                cfg.annotations = AnnotationMode::Compiler;
            else if (mode == "none")
                cfg.annotations = AnnotationMode::None;
            else {
                usage();
                return 2;
            }
        } else if (arg == "--redo") {
            cfg.style = LoggingStyle::Redo;
        } else if (arg == "--spec-rounding") {
            cfg.speculativeRounding = true;
        } else if (arg == "--txn-ids") {
            cfg.numTxnIds =
                static_cast<std::uint8_t>(std::atoi(next().c_str()));
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }

    const ExperimentResult res = runExperiment(workload, cfg);

    std::printf("workload        %s\n", workload.c_str());
    std::printf("scheme          %s (%s logging)\n",
                schemeName(cfg.scheme).c_str(),
                cfg.style == LoggingStyle::Undo ? "undo" : "redo");
    std::printf("operations      %zu inserts, %zu-byte values\n",
                cfg.ycsb.numOps, cfg.ycsb.valueBytes);
    std::printf("cycles          %" PRIu64 " (%.2f us at 2 GHz)\n",
                res.cycles, static_cast<double>(res.cycles) / 2000.0);
    std::printf("PM writes       %" PRIu64 " bytes (%" PRIu64
                " data + %" PRIu64 " log)\n",
                res.pmWriteBytes, res.pmDataBytes, res.pmLogBytes);
    std::printf("log records     %" PRIu64 "\n", res.logRecords);
    std::printf("commits         %" PRIu64 "\n", res.commits);
    std::printf("verification    %s%s\n",
                res.verified ? "passed" : "FAILED: ",
                res.verified ? "" : res.failure.c_str());
    return res.verified ? 0 : 1;
}
