/**
 * @file
 * The paper's motivating example (Figure 1): inserting a node into a
 * doubly-linked list on persistent memory.
 *
 * The bi-directional links carry redundant information: if a crash
 * interrupts the insertion, the list can be repaired from whichever
 * direction survived, so only the *first* pointer update needs an
 * undo record — the rest are issued as log-free storeT. The example
 * crashes the machine at every store position inside the insertion
 * transaction and repairs the list with the Figure 1(d) fix-up.
 *
 *   ./linked_list
 */

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "core/pm_system.hh"
#include "core/tx.hh"

using namespace slpmt;

namespace
{

/** Node layout: {value, next, prev}. */
constexpr Bytes offValue = 0;
constexpr Bytes offNext = 8;
constexpr Bytes offPrev = 16;
constexpr Bytes nodeBytes = 24;
constexpr std::size_t headSlot = 0;

Addr
makeNode(PmSystem &sys, std::uint64_t value)
{
    DurableTx tx(sys);
    const Addr node = sys.heap().alloc(nodeBytes);
    sys.write<std::uint64_t>(node + offValue, value);
    sys.write<Addr>(node + offNext, 0);
    sys.write<Addr>(node + offPrev, 0);
    tx.commit();
    return node;
}

/**
 * Insert node B between A and C — the four writes of Figure 1.
 * Only the first one is logged; the linkage redundancy covers the
 * other three (log-free storeT).
 */
void
insertBetween(PmSystem &sys, Addr a, Addr b, Addr c)
{
    DurableTx tx(sys);
    sys.write<Addr>(a + offNext, b);  // logged: the recovery anchor
    sys.writeT<Addr>(b + offPrev, a, {.lazy = false, .logFree = true});
    sys.writeT<Addr>(b + offNext, c, {.lazy = false, .logFree = true});
    sys.writeT<Addr>(c + offPrev, b, {.lazy = false, .logFree = true});
    tx.commit();
}

/**
 * Figure 1(d): restore consistency after a crash. Walk forward from
 * the head; whenever node->next->prev != node, rewrite it. Because
 * the first write was undo-logged, the forward chain is always
 * consistent after the hardware replay; only back-links (and the
 * possibly half-linked new node) need repair.
 */
void
repair(PmSystem &sys)
{
    DurableTx tx(sys);
    Addr node = sys.read<Addr>(sys.rootSlotAddr(headSlot));
    while (node) {
        const Addr next = sys.read<Addr>(node + offNext);
        if (!next)
            break;
        if (sys.read<Addr>(next + offPrev) != node)
            sys.write<Addr>(next + offPrev, node);
        node = next;
    }
    tx.commit();
}

/** Forward/backward walk consistency check. */
bool
isConsistent(PmSystem &sys, const std::vector<std::uint64_t> &expected)
{
    std::vector<std::uint64_t> forward;
    Addr node = sys.read<Addr>(sys.rootSlotAddr(headSlot));
    Addr last = 0;
    while (node) {
        forward.push_back(sys.read<std::uint64_t>(node + offValue));
        if (sys.read<Addr>(node + offPrev) != last)
            return false;
        last = node;
        node = sys.read<Addr>(node + offNext);
    }
    return forward == expected;
}

} // namespace

int
main()
{
    int failures = 0;

    // Crash at every store position inside the insertion (positions
    // past the transaction's last store mean "no crash").
    for (std::uint64_t kill = 1; kill <= 5; ++kill) {
        SystemConfig config;
        config.scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
        PmSystem sys(config);

        // List: A <-> C, then insert B in between (Figure 1).
        const Addr a = makeNode(sys, 1);
        const Addr c = makeNode(sys, 3);
        {
            DurableTx tx(sys);
            sys.writeRoot(headSlot, a);
            sys.write<Addr>(a + offNext, c);
            sys.write<Addr>(c + offPrev, a);
            tx.commit();
        }
        const Addr b = makeNode(sys, 2);
        sys.quiesce();

        sys.armCrashAfterStores(kill);
        bool crashed = false;
        try {
            insertBetween(sys, a, b, c);
        } catch (const CrashInjected &) {
            crashed = true;
        }
        sys.armCrashAfterStores(0);

        std::vector<std::uint64_t> expected;
        if (crashed) {
            sys.recoverHardware();  // undo replay: a->next == c again
            repair(sys);            // Figure 1(d) fix-up
            sys.heap().rebuild({a, b, c});  // b leaked? keep: repair
                                            // may have relinked it
            expected = sys.read<Addr>(a + offNext) == b
                           ? std::vector<std::uint64_t>{1, 2, 3}
                           : std::vector<std::uint64_t>{1, 3};
        } else {
            expected = {1, 2, 3};
        }

        const bool ok = isConsistent(sys, expected);
        failures += ok ? 0 : 1;
        std::printf("crash after store %" PRIu64
                    ": %s, list %s (contents %s)\n",
                    kill, crashed ? "crashed" : "completed",
                    ok ? "consistent" : "BROKEN",
                    expected.size() == 3 ? "1,2,3" : "1,3");
    }
    return failures;
}
