#!/bin/bash
# Regenerate the committed BENCH_speed.json speed profile.
#
# The profile is recorded from a profile-guided release-bench build:
# the preset's flags (-O3 -DNDEBUG, LTO, -march=native) plus a
# -fprofile-generate training pass over the same figure set and sweep
# the profile measures, then a -fprofile-use rebuild. PGO is worth
# ~1.3x on the simulator's branchy hot loops (scheme dispatch, tier
# coalescing, MESI walks) and keeps the committed numbers honest about
# what the tuned binary can do; the plain `release-bench` preset build
# stays within the perf_smoke gate's 3x regression bound of the
# numbers recorded here, so the gate never needs the PGO pass itself.
#
# Usage: scripts/bench-pgo.sh          (from the repository root)
# Output: build-bench/BENCH_speed.json (figures + speed section) and
#         build-bench/BENCH_sweep_speed.json (sweep section); merge
#         the sweep object into the committed BENCH_speed.json.
set -euo pipefail
cd "$(dirname "$0")/.."

PRESET_FLAGS="-march=native"
JOBS="${JOBS:-$(nproc)}"

echo "== [1/4] instrumented build (training) =="
cmake --preset release-bench \
      -DCMAKE_CXX_FLAGS="${PRESET_FLAGS} -fprofile-generate"
cmake --build build-bench -j"${JOBS}" --target slpmt_bench crash_sweep

echo "== [2/4] training runs =="
./build-bench/bench/slpmt_bench \
    --figure=sample,fig8,fig9,mcscale,service,logfree \
    --profile=/dev/null > /dev/null
./build-bench/bench/crash_sweep --full --scheme=SLPMT \
    --workload=hashtable --ops=400 --mix=10,85,5 --value-bytes=256 \
    --tiny-cache --workers=1 --profile=/dev/null > /dev/null

echo "== [3/4] profile-guided rebuild =="
cmake --preset release-bench \
      -DCMAKE_CXX_FLAGS="${PRESET_FLAGS} -fprofile-use -fprofile-correction -Wno-missing-profile"
cmake --build build-bench -j"${JOBS}" --target slpmt_bench crash_sweep

echo "== [4/4] recording profiles =="
cmake --build build-bench --target bench_speed bench_sweep_speed

# Leave the tree configured as the plain preset again so later
# `cmake --build --preset release-bench` invocations rebuild without
# stale PGO flags.
cmake --preset release-bench -DCMAKE_CXX_FLAGS="${PRESET_FLAGS}" > /dev/null

echo "done: build-bench/BENCH_speed.json + BENCH_sweep_speed.json"
