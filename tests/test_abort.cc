/**
 * @file
 * Transaction-abort tests (Section V-B): volatile updates are
 * invalidated, the undo log replays onto PM, log-free data is left to
 * user recovery, and the system keeps working after aborts.
 */

#include <gtest/gtest.h>

#include "core/pm_system.hh"
#include "core/tx.hh"
#include "workloads/factory.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{
namespace
{

PmSystem
makeSystem(SchemeKind kind = SchemeKind::SLPMT)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(kind);
    return PmSystem(cfg);
}

TEST(Abort, LoggedUpdatesRevert)
{
    PmSystem sys = makeSystem();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 0x1111);
    sys.txCommit();
    sys.quiesce();

    sys.txBegin();
    sys.write<std::uint64_t>(addr, 0x2222);
    sys.txAbort();
    // Both the durable image and subsequent reads see the old value.
    EXPECT_EQ(sys.peek<std::uint64_t>(addr), 0x1111u);
    EXPECT_EQ(sys.read<std::uint64_t>(addr), 0x1111u);
}

TEST(Abort, RevertsEvenAfterMidTxnEviction)
{
    PmSystem sys = makeSystem();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 0xAAAA);
    sys.txCommit();
    sys.quiesce();

    sys.txBegin();
    sys.write<std::uint64_t>(addr, 0xBBBB);
    sys.engine().advance(sys.hierarchy().flushAll(sys.engine().now()));
    sys.txAbort();
    EXPECT_EQ(sys.read<std::uint64_t>(addr), 0xAAAAu);
}

TEST(Abort, TransactionStateCleared)
{
    PmSystem sys = makeSystem();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 1);
    sys.txAbort();
    EXPECT_FALSE(sys.inTransaction());
    EXPECT_TRUE(sys.engine().buffer().empty());
    EXPECT_TRUE(sys.engine().logArea().empty());
    EXPECT_EQ(sys.engine().lazyOutstandingCount(), 0u);
    // A fresh transaction starts cleanly.
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 2);
    sys.txCommit();
    EXPECT_EQ(sys.peek<std::uint64_t>(addr), 2u);
}

TEST(Abort, MultipleStoresAllRevert)
{
    PmSystem sys = makeSystem();
    const Addr addr = sys.heap().alloc(256);
    sys.txBegin();
    for (int i = 0; i < 32; ++i)
        sys.write<std::uint64_t>(addr + i * 8, 0x100 + i);
    sys.txCommit();
    sys.quiesce();

    sys.txBegin();
    for (int i = 0; i < 32; ++i)
        sys.write<std::uint64_t>(addr + i * 8, 0x900 + i);
    sys.txAbort();
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(sys.read<std::uint64_t>(addr + i * 8),
                  static_cast<std::uint64_t>(0x100 + i));
}

TEST(Abort, RaiiHandleAbortsOnUnwind)
{
    PmSystem sys = makeSystem();
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 0x1111);
    sys.txCommit();
    sys.quiesce();

    try {
        DurableTx tx(sys);
        sys.write<std::uint64_t>(addr, 0x2222);
        throw std::runtime_error("boom");
    } catch (const std::runtime_error &) {
    }
    EXPECT_FALSE(sys.inTransaction());
    EXPECT_EQ(sys.read<std::uint64_t>(addr), 0x1111u);
}

TEST(Abort, LogFreeDataLeftForUserRecovery)
{
    // Aborting reverts the logged pivot; the leaked log-free node is
    // invisible and a GC can reclaim it — the workload-level contract.
    PmSystem sys = makeSystem();
    auto workload = makeWorkload("kv-ctree");
    workload->setup(sys);
    const auto ops = ycsbLoad({.numOps = 10, .valueBytes = 32,
                               .seed = 3});
    for (int i = 0; i < 9; ++i)
        workload->insert(sys, ops[i].key, ops[i].value);

    // Manually run an insert-like transaction that aborts.
    const std::size_t live_before = sys.heap().liveCount();
    {
        DurableTx tx(sys);
        const Addr junk = sys.heap().alloc(32);
        sys.writeT<std::uint64_t>(junk, 1,
                                  {.lazy = false, .logFree = true});
        tx.abort();
    }
    // Structure is intact; the stray allocation is the only residue
    // and recovery's GC path would reclaim it.
    std::string why;
    EXPECT_TRUE(workload->checkConsistency(sys, &why)) << why;
    EXPECT_EQ(sys.heap().liveCount(), live_before + 1);
    workload->recover(sys);
    EXPECT_EQ(sys.heap().liveCount(), live_before);
}

TEST(Abort, AbortOutsideTransactionPanics)
{
    PmSystem sys = makeSystem();
    EXPECT_THROW(sys.txAbort(), PanicError);
}

TEST(Abort, RedoModeDiscardsLog)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
    cfg.style = LoggingStyle::Redo;
    PmSystem sys(cfg);
    const Addr addr = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(addr, 0x3333);
    sys.txCommit();
    sys.quiesce();

    sys.txBegin();
    sys.write<std::uint64_t>(addr, 0x4444);
    sys.txAbort();
    EXPECT_EQ(sys.read<std::uint64_t>(addr), 0x3333u);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
