/**
 * @file
 * Crash-recovery property tests over every workload and scheme.
 *
 * Three families:
 *  - Crash *between* transactions after N inserts (possibly with lazy
 *    data still volatile): recovery must restore a consistent
 *    structure containing exactly the committed keys.
 *  - Crash *inside* a transaction after K stores (fault injection):
 *    the interrupted insert must roll back completely — undo replay
 *    plus the workload's log-free/lazy recovery — and the heap GC
 *    must reclaim the leaked allocations.
 *  - Crash during a structural reorganisation (hashtable resize, heap
 *    growth, btree splits) — exercised by choosing N/K around those
 *    events.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/experiment.hh"
#include "test_util.hh"
#include "workloads/factory.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{
namespace
{

SystemConfig
configFor(SchemeKind kind)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(kind);
    return cfg;
}

void
verifyContents(PmSystem &sys, Workload &workload,
               const std::vector<YcsbOp> &ops, std::size_t committed)
{
    std::string why;
    ASSERT_TRUE(workload.checkConsistency(sys, &why)) << why;
    EXPECT_EQ(workload.count(sys), committed);
    std::vector<std::uint8_t> got;
    for (std::size_t i = 0; i < committed; ++i) {
        ASSERT_TRUE(workload.lookup(sys, ops[i].key, &got))
            << "committed key " << i << " missing";
        EXPECT_EQ(got, ops[i].value) << "value mismatch for key " << i;
    }
    for (std::size_t i = committed; i < ops.size(); ++i) {
        EXPECT_FALSE(workload.lookup(sys, ops[i].key, nullptr))
            << "uncommitted key " << i << " present";
    }
}

class CrashBetweenTxns
    : public ::testing::TestWithParam<
          std::tuple<std::string, SchemeKind, std::size_t>>
{
};

TEST_P(CrashBetweenTxns, RecoversCommittedState)
{
    const auto &[name, scheme, crash_after] = GetParam();
    PmSystem sys(configFor(scheme));
    auto workload = makeWorkload(name);
    workload->setup(sys);

    YcsbConfig ycsb;
    ycsb.numOps = 120;
    ycsb.valueBytes = 48;
    const auto ops = ycsbLoad(ycsb);

    for (std::size_t i = 0; i < crash_after; ++i)
        workload->insert(sys, ops[i].key, ops[i].value);

    sys.crash();
    sys.recoverHardware();
    workload->recover(sys);
    verifyContents(sys, *workload, ops, crash_after);

    // The structure keeps working after recovery.
    for (std::size_t i = crash_after; i < ops.size(); ++i)
        workload->insert(sys, ops[i].key, ops[i].value);
    verifyContents(sys, *workload, ops, ops.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashBetweenTxns,
    ::testing::Combine(
        ::testing::ValuesIn(allWorkloads()),
        ::testing::Values(SchemeKind::FG, SchemeKind::SLPMT),
        // 49/50 straddle the hashtable's first resize; 64/65 straddle
        // the heap's first growth.
        ::testing::Values(std::size_t{0}, std::size_t{1},
                          std::size_t{49}, std::size_t{50},
                          std::size_t{64}, std::size_t{65},
                          std::size_t{120})),
    [](const auto &info) {
        return testName(std::get<0>(info.param)) + "_" +
               testName(std::get<1>(info.param)) + "_n" +
               std::to_string(std::get<2>(info.param));
    });

class CrashMidTxn
    : public ::testing::TestWithParam<
          std::tuple<std::string, SchemeKind, std::size_t>>
{
};

TEST_P(CrashMidTxn, InterruptedInsertRollsBack)
{
    const auto &[name, scheme, kill_store] = GetParam();
    PmSystem sys(configFor(scheme));
    auto workload = makeWorkload(name);
    workload->setup(sys);

    YcsbConfig ycsb;
    ycsb.numOps = 60;
    ycsb.valueBytes = 48;
    const auto ops = ycsbLoad(ycsb);

    const std::size_t committed = 40;
    for (std::size_t i = 0; i < committed; ++i)
        workload->insert(sys, ops[i].key, ops[i].value);

    // Crash after kill_store more stores, inside insert #41. Some
    // workloads finish an insert in fewer stores; the crash then
    // fires inside the following insert — still a valid mid-txn
    // crash point, just one transaction later.
    sys.armCrashAfterStores(kill_store);
    std::size_t committed_now = committed;
    bool crashed = false;
    while (!crashed && committed_now < ops.size()) {
        try {
            workload->insert(sys, ops[committed_now].key,
                             ops[committed_now].value);
            ++committed_now;
        } catch (const CrashInjected &) {
            crashed = true;
        }
    }
    ASSERT_TRUE(crashed) << "armed crash never fired";

    sys.recoverHardware();
    workload->recover(sys);
    verifyContents(sys, *workload, ops, committed_now);

    // Leaked allocations were reclaimed: re-running the remaining
    // inserts succeeds and the structure stays consistent.
    for (std::size_t i = committed_now; i < ops.size(); ++i)
        workload->insert(sys, ops[i].key, ops[i].value);
    verifyContents(sys, *workload, ops, ops.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashMidTxn,
    ::testing::Combine(
        ::testing::ValuesIn(allWorkloads()),
        ::testing::Values(SchemeKind::FG, SchemeKind::SLPMT),
        ::testing::Values(std::size_t{1}, std::size_t{3},
                          std::size_t{6}, std::size_t{10})),
    [](const auto &info) {
        return testName(std::get<0>(info.param)) + "_" +
               testName(std::get<1>(info.param)) + "_k" +
               std::to_string(std::get<2>(info.param));
    });

/** Crash inside the hashtable's resize transaction specifically. */
class CrashDuringResize : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(CrashDuringResize, ResizeRollsBackOrCompletes)
{
    const std::size_t kill_store = GetParam();
    PmSystem sys(configFor(SchemeKind::SLPMT));
    auto workload = makeWorkload("hashtable");
    workload->setup(sys);

    YcsbConfig ycsb;
    ycsb.numOps = 60;
    ycsb.valueBytes = 32;
    const auto ops = ycsbLoad(ycsb);

    // Insert 48: the 49th insert triggers the first resize (16
    // buckets * load factor 3 = 48).
    for (std::size_t i = 0; i < 48; ++i)
        workload->insert(sys, ops[i].key, ops[i].value);

    sys.armCrashAfterStores(kill_store);
    bool crashed = false;
    try {
        workload->insert(sys, ops[48].key, ops[48].value);
    } catch (const CrashInjected &) {
        crashed = true;
    }
    sys.armCrashAfterStores(0);

    std::size_t committed = 48;
    if (!crashed)
        committed = 49;  // the resize finished before the armed crash
    else {
        sys.recoverHardware();
        workload->recover(sys);
    }
    verifyContents(sys, *workload, ops, committed);

    for (std::size_t i = committed; i < ops.size(); ++i)
        workload->insert(sys, ops[i].key, ops[i].value);
    verifyContents(sys, *workload, ops, ops.size());
}

INSTANTIATE_TEST_SUITE_P(KillPoints, CrashDuringResize,
                         ::testing::Values(std::size_t{2},
                                           std::size_t{10},
                                           std::size_t{40},
                                           std::size_t{100},
                                           std::size_t{200},
                                           std::size_t{400}));

/** Crash right after a resize commit while the lazily persistent node
 *  copies are still volatile: the journal-merge recovery must rebuild
 *  the full table. */
TEST(CrashAfterResize, LazyCopiesRecoveredFromOldTable)
{
    PmSystem sys(configFor(SchemeKind::SLPMT));
    auto workload = makeWorkload("hashtable");
    workload->setup(sys);

    YcsbConfig ycsb;
    ycsb.numOps = 80;
    ycsb.valueBytes = 32;
    const auto ops = ycsbLoad(ycsb);

    // 49 inserts: the 49th resized the table; its copies are lazy.
    for (std::size_t i = 0; i < 49; ++i)
        workload->insert(sys, ops[i].key, ops[i].value);

    sys.crash();  // copies that were still cached are gone
    sys.recoverHardware();
    workload->recover(sys);
    verifyContents(sys, *workload, ops, 49);

    for (std::size_t i = 49; i < ops.size(); ++i)
        workload->insert(sys, ops[i].key, ops[i].value);
    verifyContents(sys, *workload, ops, ops.size());
}

/** Repeated crash/recover cycles accumulate no corruption or leaks. */
TEST(RepeatedCrashes, StructureSurvivesManyCycles)
{
    PmSystem sys(configFor(SchemeKind::SLPMT));
    auto workload = makeWorkload("rbtree");
    workload->setup(sys);

    YcsbConfig ycsb;
    ycsb.numOps = 100;
    ycsb.valueBytes = 24;
    const auto ops = ycsbLoad(ycsb);

    std::size_t inserted = 0;
    Rng rng(99);
    while (inserted < ops.size()) {
        const std::size_t burst =
            std::min<std::size_t>(1 + rng.below(9), ops.size() - inserted);
        for (std::size_t i = 0; i < burst; ++i) {
            workload->insert(sys, ops[inserted].key,
                             ops[inserted].value);
            ++inserted;
        }
        sys.crash();
        sys.recoverHardware();
        workload->recover(sys);
        verifyContents(sys, *workload, ops, inserted);
    }
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
