/**
 * @file
 * Service-level crash coverage (suite name deliberately avoids the
 * "CrashSweep" token so the asan-crash-sweep preset keeps its current
 * scope; the service-smoke and asan-service presets pick this up via
 * "ServiceCrash"): sampled power-failure sweeps over a multi-shard
 * service under load, checkpoint-vs-audit report equality, worker
 * independence, and single-point repro.
 */

#include <gtest/gtest.h>

#include <set>

#include "service/service_crash.hh"

namespace slpmt
{
namespace
{

ServiceCrashConfig
smallSweep(SchemeKind scheme = SchemeKind::SLPMT)
{
    ServiceCrashConfig cfg;
    cfg.scheme = scheme;
    cfg.numShards = 2;
    cfg.tinyCache = true;
    cfg.maxPoints = 18;
    cfg.checkpointInterval = 192;
    cfg.load.mix = YcsbMix::A;
    cfg.load.skew = KeySkew::Zipfian;
    cfg.load.keySpace = std::size_t{1} << 14;
    cfg.load.preloadRecords = 24;
    cfg.load.numOps = 48;
    cfg.load.valueBytesMin = 48;
    cfg.load.valueBytesMax = 96;
    cfg.load.seed = 5;
    return cfg;
}

void
expectClean(const ServiceCrashSweepReport &report)
{
    EXPECT_EQ(report.violationCount(), 0u) << report.violationsText();
    EXPECT_GT(report.pointsExplored(), 0u);
    EXPECT_GT(report.traceStores, 0u);
    EXPECT_GT(report.dispatchOps, 0u);
    // Mid-load points must actually have fired the injected failure
    // (the post-completion point legitimately reports fired = false).
    std::size_t fired = 0;
    for (const auto &point : report.points)
        fired += point.fired ? 1 : 0;
    EXPECT_GT(fired, 0u);
}

TEST(ServiceCrash, SampledSweepRecoversEveryShardUnderSlpmt)
{
    expectClean(runServiceCrashSweep(smallSweep(SchemeKind::SLPMT)));
}

// Hashtable upserts have write sets small enough to commit without
// spilling undo records even under the tiny cache, so the replay
// assertion runs on rbtree: rebalancing txns evict mid-transaction
// and recovery must replay persisted log records.
TEST(ServiceCrash, RbtreeSweepExercisesHardwareReplay)
{
    ServiceCrashConfig cfg = smallSweep(SchemeKind::SLPMT);
    cfg.workload = "rbtree";
    cfg.load.preloadRecords = 48;
    cfg.load.numOps = 96;
    cfg.load.valueBytesMin = 192;
    cfg.load.valueBytesMax = 256;
    // Every store: the replaying points cluster inside the few
    // rebalancing transactions, so sampling could miss them all.
    cfg.maxPoints = 0;
    const ServiceCrashSweepReport report = runServiceCrashSweep(cfg);
    expectClean(report);
    EXPECT_GT(report.replayedRecordsTotal(), 0u);
}

/** The log-free index structures as service backends: sharded YCSB
 *  traffic with mid-request power failures must recover to exactly
 *  the acknowledged state on every shard. */
TEST(ServiceCrash, IndexBackendsSurviveSampledSweeps)
{
    for (const std::string workload : {"skiplist", "blinktree"}) {
        ServiceCrashConfig cfg = smallSweep(SchemeKind::SLPMT);
        cfg.workload = workload;
        cfg.maxPoints = 12;
        const ServiceCrashSweepReport report =
            runServiceCrashSweep(cfg);
        expectClean(report);
        EXPECT_GT(report.pointsExplored(), 2u) << workload;
    }
}

TEST(ServiceCrash, SampledSweepRecoversUnderFineGrained)
{
    expectClean(runServiceCrashSweep(smallSweep(SchemeKind::FG)));
}

TEST(ServiceCrash, FourShardSweepStaysClean)
{
    ServiceCrashConfig cfg = smallSweep();
    cfg.numShards = 4;
    cfg.maxPoints = 12;
    const ServiceCrashSweepReport report = runServiceCrashSweep(cfg);
    expectClean(report);
    // With four shards the sampled points should land on more than
    // one victim shard.
    std::set<std::size_t> victims;
    for (const auto &point : report.points)
        if (point.fired)
            victims.insert(point.crashShard);
    EXPECT_GE(victims.size(), 2u);
}

// Checkpoint-and-fork vs from-scratch audit: restores are bit-exact,
// so the two modes must produce byte-identical reports.
TEST(ServiceCrash, CheckpointAndAuditReportsMatch)
{
    ServiceCrashConfig cfg = smallSweep();
    cfg.maxPoints = 10;

    cfg.useCheckpoints = true;
    const ServiceCrashSweepReport fast = runServiceCrashSweep(cfg);
    cfg.useCheckpoints = false;
    const ServiceCrashSweepReport audit = runServiceCrashSweep(cfg);

    EXPECT_EQ(fast.summaryText(), audit.summaryText());
    EXPECT_EQ(fast.traceStores, audit.traceStores);
    ASSERT_EQ(fast.points.size(), audit.points.size());
    for (std::size_t i = 0; i < fast.points.size(); ++i) {
        EXPECT_EQ(fast.points[i].crashPoint,
                  audit.points[i].crashPoint);
        EXPECT_EQ(fast.points[i].fired, audit.points[i].fired);
        EXPECT_EQ(fast.points[i].crashShard,
                  audit.points[i].crashShard);
        EXPECT_EQ(fast.points[i].completedOps,
                  audit.points[i].completedOps);
        EXPECT_EQ(fast.points[i].replayedRecords,
                  audit.points[i].replayedRecords);
        EXPECT_EQ(fast.points[i].violations,
                  audit.points[i].violations);
    }
}

TEST(ServiceCrash, ReportIsIndependentOfWorkerCount)
{
    ServiceCrashConfig cfg = smallSweep();
    cfg.maxPoints = 10;
    cfg.workers = 1;
    const ServiceCrashSweepReport serial = runServiceCrashSweep(cfg);
    cfg.workers = 4;
    const ServiceCrashSweepReport parallel = runServiceCrashSweep(cfg);
    EXPECT_EQ(serial.summaryText(), parallel.summaryText());
    EXPECT_EQ(serial.violationCount(), parallel.violationCount());
    EXPECT_EQ(serial.replayedRecordsTotal(),
              parallel.replayedRecordsTotal());
}

TEST(ServiceCrash, SinglePointReproMatchesSweepOutcome)
{
    const ServiceCrashConfig cfg = smallSweep();
    const ServiceCrashSweepReport report = runServiceCrashSweep(cfg);
    ASSERT_GT(report.points.size(), 1u);
    // Re-run a fired mid-load point in isolation.
    for (const auto &point : report.points) {
        if (!point.fired)
            continue;
        const ServiceCrashPointOutcome again =
            runServiceCrashPoint(cfg, point.crashPoint);
        EXPECT_EQ(again.fired, point.fired);
        EXPECT_EQ(again.crashShard, point.crashShard);
        EXPECT_EQ(again.completedOps, point.completedOps);
        EXPECT_EQ(again.replayedRecords, point.replayedRecords);
        EXPECT_EQ(again.violations, point.violations);
        break;
    }
}

// Redo-style logging takes the same sweep.
TEST(ServiceCrash, RedoStyleSweepStaysClean)
{
    ServiceCrashConfig cfg = smallSweep();
    cfg.style = LoggingStyle::Redo;
    cfg.maxPoints = 10;
    expectClean(runServiceCrashSweep(cfg));
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
