/**
 * @file
 * Shared helpers for the test suite.
 */

#ifndef SLPMT_TESTS_TEST_UTIL_HH
#define SLPMT_TESTS_TEST_UTIL_HH

#include <string>

#include "txn/scheme.hh"

namespace slpmt
{

/** Make a string safe for gtest parameterized test names. */
inline std::string
testName(const std::string &raw)
{
    std::string out;
    for (char ch : raw) {
        if ((ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
            (ch >= '0' && ch <= '9'))
            out += ch;
        else
            out += '_';
    }
    return out;
}

inline std::string
testName(SchemeKind kind)
{
    return testName(schemeName(kind));
}

} // namespace slpmt

#endif // SLPMT_TESTS_TEST_UTIL_HH
