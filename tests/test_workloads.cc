/**
 * @file
 * Per-workload behavioural tests: resize/growth/split mechanics,
 * ordering queries, duplicate handling, larger-scale runs, and the
 * redo-logging mode end to end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "core/pm_system.hh"
#include "test_util.hh"
#include "workloads/factory.hh"
#include "workloads/hashtable.hh"
#include "workloads/maxheap.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{
namespace
{

TEST(Hashtable, ResizesAtLoadFactor)
{
    PmSystem sys;
    HashTableWorkload ht;
    ht.setup(sys);
    const auto ops = ycsbLoad({.numOps = 200, .valueBytes = 16,
                               .seed = 2});
    std::size_t i = 0;
    for (; i < 48; ++i)
        ht.insert(sys, ops[i].key, ops[i].value);
    EXPECT_EQ(ht.resizes(), 0u);
    ht.insert(sys, ops[i].key, ops[i].value);
    EXPECT_EQ(ht.resizes(), 1u);  // 16 buckets * 3 = 48 exceeded
    for (++i; i < 97; ++i)
        ht.insert(sys, ops[i].key, ops[i].value);
    EXPECT_EQ(ht.resizes(), 2u);  // 32 * 3 = 96 exceeded
}

TEST(Hashtable, ValuesSurviveResizeUnmoved)
{
    // Rehash copies nodes but points at the original value blobs.
    PmSystem sys;
    HashTableWorkload ht;
    ht.setup(sys);
    const auto ops = ycsbLoad({.numOps = 60, .valueBytes = 64,
                               .seed = 4});
    for (const auto &op : ops)
        ht.insert(sys, op.key, op.value);
    EXPECT_GE(ht.resizes(), 1u);
    std::vector<std::uint8_t> got;
    for (const auto &op : ops) {
        ASSERT_TRUE(ht.lookup(sys, op.key, &got));
        EXPECT_EQ(got, op.value);
    }
}

TEST(Heap, PeekMaxTracksMaximum)
{
    PmSystem sys;
    MaxHeapWorkload heap;
    heap.setup(sys);
    const auto ops = ycsbLoad({.numOps = 150, .valueBytes = 16,
                               .seed = 5});
    std::uint64_t expect_max = 0;
    for (const auto &op : ops) {
        heap.insert(sys, op.key, op.value);
        expect_max = std::max(expect_max, op.key);
        std::uint64_t got = 0;
        ASSERT_TRUE(heap.peekMax(sys, &got));
        EXPECT_EQ(got, expect_max);
    }
}

TEST(Heap, GrowsPastInitialCapacity)
{
    PmSystem sys;
    MaxHeapWorkload heap;
    heap.setup(sys);
    const auto ops = ycsbLoad({.numOps = 200, .valueBytes = 16,
                               .seed = 6});
    for (const auto &op : ops)
        heap.insert(sys, op.key, op.value);
    EXPECT_EQ(heap.count(sys), 200u);  // initial capacity was 64
    std::string why;
    EXPECT_TRUE(heap.checkConsistency(sys, &why)) << why;
}

TEST(Workloads, SequentialKeysKeepStructuresBalanced)
{
    // Monotone keys are the adversarial input for the trees.
    for (const auto &name : {std::string("rbtree"), std::string("avl"),
                             std::string("kv-btree")}) {
        PmSystem sys;
        auto workload = makeWorkload(name);
        workload->setup(sys);
        for (std::uint64_t k = 1; k <= 300; ++k) {
            const auto value = ycsbValueFor(k, 16);
            workload->insert(sys, k * 2 + 1, value);
        }
        std::string why;
        EXPECT_TRUE(workload->checkConsistency(sys, &why))
            << name << ": " << why;
        EXPECT_EQ(workload->count(sys), 300u) << name;
    }
}

TEST(Workloads, LargerRunAllSchemesSpotCheck)
{
    // 2,000 inserts on the two structures with reorganisation events.
    for (const auto &name :
         {std::string("hashtable"), std::string("kv-rtree")}) {
        SystemConfig cfg;
        cfg.scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
        PmSystem sys(cfg);
        auto workload = makeWorkload(name);
        workload->setup(sys);
        const auto ops = ycsbLoad({.numOps = 2000, .valueBytes = 16,
                                   .seed = 8});
        for (const auto &op : ops)
            workload->insert(sys, op.key, op.value);
        std::string why;
        EXPECT_TRUE(workload->checkConsistency(sys, &why))
            << name << ": " << why;
        EXPECT_EQ(workload->count(sys), 2000u) << name;
    }
}

TEST(Workloads, RandomizedKvMixMatchesShadow)
{
    // Interleaved insert/update/remove/lookup fuzz over a small key
    // space (forced collisions) against a std::map oracle. kv-ctree
    // implements removal; kv-btree and kv-rtree inherit the
    // "unsupported" default, so the oracle expects remove == false
    // and keeps the key.
    for (const auto &name : {std::string("kv-btree"),
                             std::string("kv-ctree"),
                             std::string("kv-rtree")}) {
        const bool removable = name == "kv-ctree";
        SystemConfig cfg;
        cfg.scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
        PmSystem sys(cfg);
        auto workload = makeWorkload(name);
        workload->setup(sys);

        std::map<std::uint64_t, std::vector<std::uint8_t>> shadow;
        std::mt19937_64 rng(name.size() * 131 + 7);
        std::vector<std::uint8_t> got;
        for (std::size_t i = 0; i < 600; ++i) {
            const std::uint64_t key = rng() % 97 + 1;
            const std::uint64_t roll = rng() % 100;
            if (roll < 40) {
                const auto value =
                    ycsbValueFor(key ^ (i << 8), 24);
                if (shadow.count(key)) {
                    EXPECT_TRUE(workload->update(sys, key, value))
                        << name << " op " << i;
                } else {
                    workload->insert(sys, key, value);
                }
                shadow[key] = value;
            } else if (roll < 60) {
                const bool removed = workload->remove(sys, key);
                EXPECT_EQ(removed, removable && shadow.count(key))
                    << name << " op " << i;
                if (removed)
                    shadow.erase(key);
            } else if (roll < 70) {
                // Update of a key that may be absent: no-op then.
                const auto value =
                    ycsbValueFor(~key ^ i, 24);
                const bool updated =
                    workload->update(sys, key, value);
                EXPECT_EQ(updated, shadow.count(key) != 0)
                    << name << " op " << i;
                if (updated)
                    shadow[key] = value;
            } else {
                const bool found = workload->lookup(sys, key, &got);
                ASSERT_EQ(found, shadow.count(key) != 0)
                    << name << " op " << i;
                if (found) {
                    EXPECT_EQ(got, shadow[key])
                        << name << " op " << i;
                }
            }
            if ((i + 1) % 150 == 0) {
                std::string why;
                ASSERT_TRUE(workload->checkConsistency(sys, &why))
                    << name << " op " << i << ": " << why;
                ASSERT_EQ(workload->count(sys), shadow.size())
                    << name << " op " << i;
            }
        }
        std::string why;
        EXPECT_TRUE(workload->checkConsistency(sys, &why))
            << name << ": " << why;
        EXPECT_EQ(workload->count(sys), shadow.size()) << name;
        for (const auto &kv : shadow) {
            ASSERT_TRUE(workload->lookup(sys, kv.first, &got))
                << name << " key " << kv.first;
            EXPECT_EQ(got, kv.second) << name << " key " << kv.first;
        }
    }
}

class RedoWorkloads
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RedoWorkloads, CrashRecoveryUnderRedoLogging)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
    cfg.style = LoggingStyle::Redo;
    PmSystem sys(cfg);
    auto workload = makeWorkload(GetParam());
    workload->setup(sys);

    const auto ops = ycsbLoad({.numOps = 80, .valueBytes = 32,
                               .seed = 9});
    for (std::size_t i = 0; i < 55; ++i)
        workload->insert(sys, ops[i].key, ops[i].value);

    sys.crash();
    sys.recoverHardware();
    workload->recover(sys);

    std::string why;
    ASSERT_TRUE(workload->checkConsistency(sys, &why)) << why;
    EXPECT_EQ(workload->count(sys), 55u);
    std::vector<std::uint8_t> got;
    for (std::size_t i = 0; i < 55; ++i) {
        ASSERT_TRUE(workload->lookup(sys, ops[i].key, &got));
        EXPECT_EQ(got, ops[i].value);
    }
    for (std::size_t i = 55; i < ops.size(); ++i)
        workload->insert(sys, ops[i].key, ops[i].value);
    EXPECT_TRUE(workload->checkConsistency(sys, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, RedoWorkloads,
                         ::testing::ValuesIn(allWorkloads()),
                         [](const auto &info) {
                             return testName(info.param);
                         });

TEST(Workloads, DistinctRootSlotsAcrossWorkloads)
{
    // Two workloads can coexist in one system (different root slots).
    PmSystem sys;
    auto ht = makeWorkload("hashtable");
    auto tree = makeWorkload("rbtree");
    ht->setup(sys);
    tree->setup(sys);
    const auto ops = ycsbLoad({.numOps = 40, .valueBytes = 16,
                               .seed = 10});
    for (const auto &op : ops) {
        ht->insert(sys, op.key, op.value);
        tree->insert(sys, op.key, op.value);
    }
    std::string why;
    EXPECT_TRUE(ht->checkConsistency(sys, &why)) << why;
    EXPECT_TRUE(tree->checkConsistency(sys, &why)) << why;
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
