/**
 * @file
 * SoA-layout differential suite.
 *
 * PR 10 replaced the AoS cache (tag/LRU/meta links inside CacheLine,
 * pointer-linked metadata index) with SoA sibling arrays and
 * index-based links. The retained cross-check is the layout audit
 * (SystemConfig::layoutAudit): a forced-On machine recomputes the
 * probe-key and metadata-index arrays from the architectural lines on
 * every index walk and panics on any divergence, while a forced-Off
 * machine never does. This suite asserts the two modes are
 * behaviourally byte-identical — reports, stats, PM images,
 * checkpoint encodings — over every figure cell, seeded random
 * machine traces, and a sampled crash sweep, and that the pipelined
 * exhaustive tail-replay sweeps match the from-scratch audit path
 * bit for bit.
 */

#include <algorithm>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checkpoint/checkpoint.hh"
#include "multicore/mc_crash.hh"
#include "sim/figures.hh"
#include "validate/crash_explorer.hh"

namespace slpmt
{
namespace
{

/** Every observable of one experiment run, flattened for equality. */
std::string
resultFingerprint(const ExperimentResult &r)
{
    std::ostringstream os;
    os << r.workload << '|' << static_cast<int>(r.scheme) << '|'
       << r.cycles << '|' << r.pmWriteBytes << '|' << r.pmDataBytes
       << '|' << r.pmLogBytes << '|' << r.commits << '|'
       << r.logRecords << '|' << r.verified << '|' << r.failure;
    for (const auto &[name, value] : r.stats)
        os << '|' << name << '=' << value;
    return os.str();
}

/** Shrink a figure cell so the whole registry stays tier-1 sized
 *  (the differential compares the two audit modes against each
 *  other, not against golden figure reports, so trimming is safe). */
ExperimentConfig
trimmed(ExperimentConfig cfg)
{
    cfg.ycsb.numOps = std::min<std::size_t>(cfg.ycsb.numOps, 120);
    if (cfg.service.shards > 0) {
        cfg.service.preloadRecords =
            std::min<std::size_t>(cfg.service.preloadRecords, 64);
        cfg.service.keySpace =
            std::min<std::size_t>(cfg.service.keySpace, 1u << 12);
    }
    return cfg;
}

ExperimentResult
runWithAudit(const ExperimentCase &c, LayoutAudit audit)
{
    ExperimentConfig cfg = trimmed(c.cfg);
    cfg.layoutAudit = audit;
    return runExperiment(c.workload, cfg);
}

TEST(LayoutDiff, EveryFigureCellMatchesAcrossAuditModes)
{
    std::size_t cells = 0;
    for (const FigureSpec &fig : figureRegistry()) {
        for (const ExperimentCase &c : fig.cases()) {
            const ExperimentResult off =
                runWithAudit(c, LayoutAudit::Off);
            const ExperimentResult on =
                runWithAudit(c, LayoutAudit::On);
            EXPECT_TRUE(on.verified)
                << fig.name << '/' << c.key << ": " << on.failure;
            EXPECT_EQ(resultFingerprint(off), resultFingerprint(on))
                << fig.name << '/' << c.key;
            ++cells;
        }
    }
    // The registry must actually cover the paper's figure space.
    EXPECT_GE(cells, 40u);
}

/** Drive one machine through a seeded transactional store trace. */
std::vector<std::uint8_t>
traceImage(std::uint64_t seed, LayoutAudit audit)
{
    SystemConfig sc;
    sc.layoutAudit = audit;
    PmSystem sys(sc);

    const Addr base = sys.map().heapBase() + 8192;
    std::mt19937_64 rng(seed);
    for (int txn = 0; txn < 40; ++txn) {
        sys.txBegin();
        for (int s = 0; s < 8; ++s) {
            const std::uint64_t value = rng();
            const Addr addr = base + (rng() % 4096) * 8;
            sys.writeBytes(addr, &value, sizeof(value));
        }
        // A sprinkling of aborts exercises the undo path too.
        if (txn % 9 == 4)
            sys.txAbort();
        else
            sys.txCommit();
    }
    sys.quiesce();
    return MachineCheckpoint::capture(sys).toBytes();
}

TEST(LayoutDiff, RandomTracesProduceIdenticalCheckpointEncodings)
{
    // The portable checkpoint encoding covers every architectural
    // register plus the PM and DRAM page images and the config
    // fingerprint, so blob equality is machine-state byte-identity.
    for (const std::uint64_t seed : {7ull, 1234ull, 987654321ull})
        EXPECT_EQ(traceImage(seed, LayoutAudit::Off),
                  traceImage(seed, LayoutAudit::On))
            << "seed " << seed;
}

CrashSweepConfig
diffSweepConfig()
{
    CrashSweepConfig cfg;
    cfg.scheme = SchemeKind::SLPMT;
    cfg.style = LoggingStyle::Undo;
    cfg.workload = "rbtree";
    cfg.mix.numOps = 40;
    cfg.mix.valueBytes = 256;
    cfg.mix.seed = 42;
    cfg.mix.insertPct = 80;
    cfg.mix.updatePct = 12;
    cfg.mix.removePct = 8;
    cfg.tinyCache = true;
    cfg.workers = 2;
    cfg.checkpointInterval = 16;
    return cfg;
}

TEST(LayoutDiff, SampledSweepReportMatchesAcrossAuditModes)
{
    CrashSweepConfig cfg = diffSweepConfig();
    cfg.maxPoints = 24;

    cfg.layoutAudit = LayoutAudit::Off;
    const CrashSweepReport off = runCrashSweep(cfg);
    cfg.layoutAudit = LayoutAudit::On;
    const CrashSweepReport on = runCrashSweep(cfg);

    EXPECT_EQ(off.violationCount(), 0u) << off.violationsText();
    EXPECT_EQ(off.toJson(), on.toJson());
}

TEST(LayoutDiff, PipelinedExhaustiveSweepMatchesFromScratch)
{
    // maxPoints == 0 with checkpoints takes the pipelined tail-replay
    // path: the master publishes checkpoints while workers fork and
    // replay tails concurrently. The from-scratch audit sweep is the
    // reference; the reports must be byte-identical.
    CrashSweepConfig cfg = diffSweepConfig();
    cfg.mix.numOps = 24;
    cfg.maxPoints = 0;
    cfg.workers = 3;

    cfg.useCheckpoints = true;
    const CrashSweepReport pipelined = runCrashSweep(cfg);
    cfg.useCheckpoints = false;
    const CrashSweepReport scratch = runCrashSweep(cfg);

    EXPECT_EQ(pipelined.violationCount(), 0u)
        << pipelined.violationsText();
    EXPECT_GT(pipelined.pointsExplored(), 10u);
    EXPECT_EQ(pipelined.toJson(), scratch.toJson());
}

TEST(LayoutDiff, McPipelinedExhaustiveSweepMatchesFromScratch)
{
    McCrashSweepConfig cfg;
    cfg.scheme = SchemeKind::SLPMT;
    cfg.style = LoggingStyle::Undo;
    cfg.run.workload = "hashtable";
    cfg.run.numCores = 2;
    cfg.run.opsPerCore = 12;
    cfg.run.valueBytes = 128;
    cfg.run.seed = 42;
    cfg.run.sharedPct = 25;
    cfg.tinyCache = true;
    cfg.maxPoints = 0;
    cfg.workers = 2;
    cfg.checkpointInterval = 16;

    cfg.useCheckpoints = true;
    const McCrashSweepReport pipelined = runMcCrashSweep(cfg);
    cfg.useCheckpoints = false;
    const McCrashSweepReport scratch = runMcCrashSweep(cfg);

    EXPECT_EQ(pipelined.violationCount(), 0u)
        << pipelined.violationsText();
    EXPECT_EQ(pipelined.toJson(), scratch.toJson());
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
