/**
 * @file
 * Figure 4 persist-ordering tests, validated against the persist
 * tracker's ground-truth ledger:
 *  - undo: log records reach PM before the logged cache lines they
 *    cover; log-free lines may persist at any time;
 *  - redo: all log-free lines reach PM before any logged line;
 *  - steal rule: a line evicted mid-transaction is preceded by its
 *    log records.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/pm_system.hh"

namespace slpmt
{
namespace
{

PmSystem
makeSystem(LoggingStyle style)
{
    SystemConfig cfg;
    cfg.scheme = SchemeConfig::forKind(SchemeKind::SLPMT);
    cfg.style = style;
    return PmSystem(cfg);
}

/** First ledger position of each persist kind (max if absent). */
std::map<PersistKind, std::size_t>
firstPositions(const std::vector<PersistEvent> &ledger)
{
    std::map<PersistKind, std::size_t> first;
    for (std::size_t i = 0; i < ledger.size(); ++i) {
        if (!first.count(ledger[i].kind))
            first[ledger[i].kind] = i;
    }
    return first;
}

std::map<PersistKind, std::size_t>
lastPositions(const std::vector<PersistEvent> &ledger)
{
    std::map<PersistKind, std::size_t> last;
    for (std::size_t i = 0; i < ledger.size(); ++i)
        last[ledger[i].kind] = i;
    return last;
}

TEST(UndoOrdering, LogRecordsBeforeLoggedLines)
{
    PmSystem sys = makeSystem(LoggingStyle::Undo);
    const Addr a = sys.heap().alloc(64);
    const Addr b = sys.heap().alloc(64);

    sys.tracker().enable();
    sys.txBegin();
    sys.write<std::uint64_t>(a, 1);  // logged
    sys.writeT<std::uint64_t>(b, 2, {.lazy = false, .logFree = true});
    sys.txCommit();
    sys.tracker().disable();

    const auto &ledger = sys.tracker().ledger();
    const auto last = lastPositions(ledger);
    const auto first = firstPositions(ledger);
    ASSERT_TRUE(last.count(PersistKind::LogRecord));
    ASSERT_TRUE(first.count(PersistKind::LoggedLine));
    ASSERT_TRUE(first.count(PersistKind::LogFreeLine));
    // Every log record precedes every logged line.
    EXPECT_LT(last.at(PersistKind::LogRecord),
              first.at(PersistKind::LoggedLine));
}

TEST(UndoOrdering, StealEvictionFlushesRecordFirst)
{
    PmSystem sys = makeSystem(LoggingStyle::Undo);
    const Addr a = sys.heap().alloc(64);

    sys.txBegin();
    sys.tracker().enable();
    sys.write<std::uint64_t>(a, 42);
    // Force the dirty logged line out mid-transaction.
    sys.engine().advance(sys.hierarchy().flushAll(sys.engine().now()));
    sys.tracker().disable();
    sys.txCommit();

    // The record must appear in the ledger before any write of the
    // line's data (as a logged line or a plain writeback).
    const auto &ledger = sys.tracker().ledger();
    std::size_t record_pos = ledger.size();
    std::size_t data_pos = ledger.size();
    for (std::size_t i = 0; i < ledger.size(); ++i) {
        if (ledger[i].kind == PersistKind::LogRecord &&
            record_pos == ledger.size())
            record_pos = i;
        if (ledger[i].addr == lineBase(a) &&
            ledger[i].kind != PersistKind::LogRecord &&
            data_pos == ledger.size())
            data_pos = i;
    }
    ASSERT_LT(record_pos, ledger.size());
    ASSERT_LT(data_pos, ledger.size());
    EXPECT_LT(record_pos, data_pos);
}

TEST(RedoOrdering, LogFreeLinesBeforeLoggedLines)
{
    PmSystem sys = makeSystem(LoggingStyle::Redo);
    const Addr a = sys.heap().alloc(64);
    const Addr b = sys.heap().alloc(64);

    sys.tracker().enable();
    sys.txBegin();
    sys.write<std::uint64_t>(a, 1);  // logged (redo)
    sys.writeT<std::uint64_t>(b, 2, {.lazy = false, .logFree = true});
    sys.txCommit();
    sys.tracker().disable();

    const auto &ledger = sys.tracker().ledger();
    const auto first = firstPositions(ledger);
    const auto last = lastPositions(ledger);
    ASSERT_TRUE(last.count(PersistKind::LogFreeLine));
    ASSERT_TRUE(first.count(PersistKind::LoggedLine));
    EXPECT_LT(last.at(PersistKind::LogFreeLine),
              first.at(PersistKind::LoggedLine));
    // And redo records precede the in-place logged-line writes.
    EXPECT_LT(first.at(PersistKind::LogRecord),
              first.at(PersistKind::LoggedLine));
}

TEST(RedoOrdering, CommittedValuesDurableViaReplay)
{
    PmSystem sys = makeSystem(LoggingStyle::Redo);
    const Addr a = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(a, 0xABCD);
    sys.txCommit();
    sys.crash();
    sys.recoverHardware();
    EXPECT_EQ(sys.peek<std::uint64_t>(a), 0xABCDu);
}

TEST(RedoOrdering, UncommittedTransactionDiscarded)
{
    PmSystem sys = makeSystem(LoggingStyle::Redo);
    const Addr a = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(a, 0x1111);
    sys.txCommit();
    sys.quiesce();

    sys.txBegin();
    sys.write<std::uint64_t>(a, 0x2222);
    sys.crash();  // before commit: no marker in the log
    EXPECT_EQ(sys.recoverHardware(), 0u);
    EXPECT_EQ(sys.peek<std::uint64_t>(a), 0x1111u);
}

TEST(RedoOrdering, RewrittenWordReplaysFinalValue)
{
    PmSystem sys = makeSystem(LoggingStyle::Redo);
    const Addr a = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(a, 1);
    sys.write<std::uint64_t>(a, 2);
    sys.write<std::uint64_t>(a, 3);
    sys.txCommit();
    sys.crash();
    sys.recoverHardware();
    EXPECT_EQ(sys.peek<std::uint64_t>(a), 3u);
}

TEST(UndoOrdering, DuplicateRecordsReplayOldestValue)
{
    // A word logged twice (after an eviction/refetch) must roll back
    // to the *pre-transaction* value: reverse-order replay.
    PmSystem sys = makeSystem(LoggingStyle::Undo);
    const Addr a = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(a, 0xAAAA);
    sys.txCommit();
    sys.quiesce();

    sys.txBegin();
    sys.write<std::uint64_t>(a, 0xBBBB);
    // Evict: the record (old value 0xAAAA) flushes, log bits reset.
    sys.engine().advance(sys.hierarchy().flushAll(sys.engine().now()));
    // Re-store: a duplicate record with old value 0xBBBB is created.
    sys.write<std::uint64_t>(a, 0xCCCC);
    sys.engine().buffer().drainAll(0);
    sys.crash();
    sys.recoverHardware();
    EXPECT_EQ(sys.peek<std::uint64_t>(a), 0xAAAAu);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
