/**
 * @file
 * Tests of the compiler annotation pass (Section IV): Pattern-1
 * (log-free for fresh/dead regions) and Pattern-2 (lazy for
 * rebuildable values) inference, refusal of deep-semantics sites,
 * the manual-vs-compiler coverage report over the real workload
 * registries (the paper's 16-of-26 observation), and the compile-time
 * model of Figure 13.
 */

#include <gtest/gtest.h>

#include "compiler/compiler_policy.hh"
#include "core/pm_system.hh"
#include "test_util.hh"
#include "workloads/factory.hh"

namespace slpmt
{
namespace
{

StoreSiteInfo
site(bool fresh, bool dead, bool rebuildable, bool deep)
{
    StoreSiteInfo info;
    info.name = "test";
    info.targetsFreshAlloc = fresh;
    info.targetsDeadRegion = dead;
    info.rebuildable = rebuildable;
    info.requiresDeepSemantics = deep;
    return info;
}

TEST(CompilerPass, Pattern1FreshAllocationIsLogFree)
{
    const CompilerAnnotationPolicy pass;
    const StoreFlags flags = pass.flagsFor(site(true, false, false, false));
    EXPECT_TRUE(flags.logFree);
    EXPECT_FALSE(flags.lazy);
}

TEST(CompilerPass, Pattern1DeadRegionNeedsNoPersistence)
{
    const CompilerAnnotationPolicy pass;
    const StoreFlags flags = pass.flagsFor(site(false, true, false, false));
    EXPECT_TRUE(flags.logFree);
    EXPECT_TRUE(flags.lazy);
}

TEST(CompilerPass, Pattern2RebuildableIsLazy)
{
    const CompilerAnnotationPolicy pass;
    const StoreFlags flags = pass.flagsFor(site(false, false, true, false));
    EXPECT_FALSE(flags.logFree);
    EXPECT_TRUE(flags.lazy);
}

TEST(CompilerPass, FreshAndRebuildableGetsBoth)
{
    const CompilerAnnotationPolicy pass;
    const StoreFlags flags = pass.flagsFor(site(true, false, true, false));
    EXPECT_TRUE(flags.logFree);
    EXPECT_TRUE(flags.lazy);
}

TEST(CompilerPass, DeepSemanticsRefused)
{
    const CompilerAnnotationPolicy pass;
    for (bool fresh : {false, true}) {
        for (bool rebuildable : {false, true}) {
            const StoreFlags flags =
                pass.flagsFor(site(fresh, false, rebuildable, true));
            EXPECT_FALSE(flags.logFree);
            EXPECT_FALSE(flags.lazy);
        }
    }
}

TEST(CompilerPass, PlainSiteUntouched)
{
    const CompilerAnnotationPolicy pass;
    const StoreFlags flags =
        pass.flagsFor(site(false, false, false, false));
    EXPECT_FALSE(flags.logFree);
    EXPECT_FALSE(flags.lazy);
}

/** The pass never *exceeds* what a site's static facts justify. */
class CompilerSoundness
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CompilerSoundness, InferredFlagsAreJustified)
{
    SystemConfig cfg;
    PmSystem sys(cfg);
    auto workload = makeWorkload(GetParam());
    workload->setup(sys);

    const CompilerAnnotationPolicy pass;
    for (const auto &info : sys.sites().all()) {
        const StoreFlags flags = pass.flagsFor(info);
        if (flags.logFree) {
            EXPECT_TRUE(info.targetsFreshAlloc || info.targetsDeadRegion)
                << info.name;
        }
        if (flags.lazy) {
            EXPECT_TRUE(info.rebuildable || info.targetsDeadRegion)
                << info.name;
        }
        if (info.requiresDeepSemantics) {
            EXPECT_FALSE(flags.logFree || flags.lazy) << info.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, CompilerSoundness,
                         ::testing::ValuesIn(allWorkloads()),
                         [](const auto &info) {
                             return testName(info.param);
                         });

TEST(CompilerReport, KernelCoverageMatchesPaperShape)
{
    // Across the kernel benchmarks the paper's pass identifies 16 of
    // 26 manually annotated variables — i.e. a substantial majority
    // of sites, with the deep-semantics ones (colours, counters)
    // missed. Verify that shape over our registries.
    std::size_t manual = 0;
    std::size_t found = 0;
    std::size_t missed_deep = 0;
    for (const auto &name : kernelWorkloads()) {
        SystemConfig cfg;
        PmSystem sys(cfg);
        auto workload = makeWorkload(name);
        workload->setup(sys);
        const AnnotationReport report = compareAnnotations(sys.sites());
        manual += report.manualAnnotated;
        found += report.compilerFound;
        // Every miss must be a deep-semantics site.
        for (const auto &info : sys.sites().all()) {
            const bool is_manual = info.manual.lazy || info.manual.logFree;
            const CompilerAnnotationPolicy pass;
            const StoreFlags inferred = pass.flagsFor(info);
            if (is_manual && !inferred.lazy && !inferred.logFree) {
                EXPECT_TRUE(info.requiresDeepSemantics) << info.name;
                ++missed_deep;
            }
        }
    }
    EXPECT_GT(manual, 10u);
    EXPECT_GT(found, manual / 2);   // a majority found
    EXPECT_LT(found, manual);       // but not all
    EXPECT_EQ(manual - found, missed_deep);
}

TEST(CompileTime, OverheadSmallAbsoluteAndModerateRelative)
{
    SystemConfig cfg;
    PmSystem sys(cfg);
    auto workload = makeWorkload("kv-btree");
    workload->setup(sys);
    const CompileTimeEstimate est =
        estimateCompileTime(sys.sites(), 0.65);
    // Figure 13 (right): under 0.15 s absolute, tens of percent max.
    EXPECT_LT(est.withAnalysisSec - est.baselineSec, 0.15);
    EXPECT_GT(est.overheadFraction(), 0.0);
    EXPECT_LT(est.overheadFraction(), 0.30);
}

TEST(CompileTime, ScalesWithSiteCount)
{
    StoreSiteRegistry few;
    StoreSiteRegistry many;
    for (int i = 0; i < 3; ++i)
        few.add(site(true, false, false, false));
    for (int i = 0; i < 30; ++i)
        many.add(site(true, false, false, false));
    EXPECT_LT(estimateCompileTime(few, 1.0).withAnalysisSec,
              estimateCompileTime(many, 1.0).withAnalysisSec);
}

TEST(Policies, NamesAndBehaviour)
{
    const NullAnnotationPolicy none;
    const ManualAnnotationPolicy manual;
    const CompilerAnnotationPolicy compiler;
    EXPECT_EQ(none.name(), "none");
    EXPECT_EQ(manual.name(), "manual");
    EXPECT_EQ(compiler.name(), "compiler");

    StoreSiteInfo info = site(true, false, false, false);
    info.manual = {.lazy = true, .logFree = false};
    EXPECT_FALSE(none.flagsFor(info).lazy);
    EXPECT_TRUE(manual.flagsFor(info).lazy);
    EXPECT_TRUE(compiler.flagsFor(info).logFree);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
