/**
 * @file
 * The sharded KV service: router determinism and partition
 * correctness, the 1-shard-vs-plain-machine differential anchor,
 * whole-run determinism and verification across shard counts, core
 * counts and schemes, and the ExperimentConfig dispatch bridge.
 */

#include <gtest/gtest.h>

#include <set>

#include "service/service.hh"
#include "sim/experiment.hh"
#include "workloads/factory.hh"

namespace slpmt
{
namespace
{

LoadGenConfig
smallLoad(YcsbMix mix = YcsbMix::A)
{
    LoadGenConfig load;
    load.mix = mix;
    load.skew = KeySkew::Zipfian;
    load.keySpace = std::size_t{1} << 16;
    load.preloadRecords = 120;
    load.numOps = 400;
    load.valueBytesMin = 48;
    load.valueBytesMax = 128;
    load.seed = 7;
    return load;
}

ServiceConfig
smallService(std::size_t shards, YcsbMix mix = YcsbMix::A)
{
    ServiceConfig cfg;
    cfg.numShards = shards;
    cfg.load = smallLoad(mix);
    return cfg;
}

/** Expanded request count: scans count once per swept record. */
std::size_t
expandedOps(const std::vector<SvcOp> &ops)
{
    std::size_t n = 0;
    for (const SvcOp &op : ops)
        n += op.kind == SvcOpKind::Scan ? op.scanLen : 1;
    return n;
}

TEST(ServiceRouter, SameSeedYieldsByteIdenticalShardStreams)
{
    const LoadGenConfig load_cfg = smallLoad();
    const SvcLoad a = svcGenerate(load_cfg);
    const SvcLoad b = svcGenerate(load_cfg);
    const ShardRouter router(4);
    const auto sa = routeOps(router, a.ops, a.keySalt);
    const auto sb = routeOps(router, b.ops, b.keySalt);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t s = 0; s < sa.size(); ++s)
        EXPECT_EQ(sa[s], sb[s]) << "shard " << s;
}

TEST(ServiceRouter, EveryKeyRoutesToExactlyOneShard)
{
    const SvcLoad load = svcGenerate(smallLoad(YcsbMix::E));
    const ShardRouter router(4);
    const auto streams = routeOps(router, load.ops, load.keySalt);

    // Partition is complete: nothing dropped, nothing duplicated.
    std::size_t total = 0;
    for (const auto &stream : streams)
        total += stream.size();
    EXPECT_EQ(total, expandedOps(load.ops));

    // And consistent: every op sits on the shard its key hashes to,
    // under any identically-configured router.
    const ShardRouter twin(4);
    for (std::size_t s = 0; s < streams.size(); ++s) {
        for (const ShardOp &op : streams[s]) {
            EXPECT_EQ(router.shardOf(op.key), s);
            EXPECT_EQ(twin.shardOf(op.key), s);
        }
    }

    // Distinct salts repartition: at least one key moves.
    const ShardRouter salted(4, 0x1234);
    bool moved = false;
    for (const auto &stream : streams)
        for (const ShardOp &op : stream)
            moved |= salted.shardOf(op.key) != router.shardOf(op.key);
    EXPECT_TRUE(moved);
}

TEST(ServiceRouter, ReShardingToSameCountIsANoOp)
{
    const SvcLoad load = svcGenerate(smallLoad());
    const ShardRouter router(3);
    const auto streams = routeOps(router, load.ops, load.keySalt);
    // Re-partition each shard's stream with a fresh identical router:
    // every op must stay put.
    for (std::size_t s = 0; s < streams.size(); ++s) {
        const ShardRouter again(3);
        for (const ShardOp &op : streams[s])
            EXPECT_EQ(again.shardOf(op.key), s)
                << "re-shard moved key " << op.key;
    }
}

TEST(ServiceRouter, RejectsZeroShards)
{
    EXPECT_THROW(ShardRouter(0), PanicError);
}

// The differential anchor: a 1-shard service run is bit-identical to
// executing the same routed stream on a plain McMachine — same PM
// image, same machine statistics.
TEST(ServiceDifferential, OneShardServiceEqualsPlainMachineRun)
{
    const ServiceConfig cfg = smallService(1);
    const KvServiceResult res = runService(cfg);
    ASSERT_TRUE(res.verified) << res.failure;
    ASSERT_EQ(res.shardImageFp.size(), 1u);

    // Replay: one machine, the identical routed stream.
    const SvcLoad load = svcGenerate(cfg.load);
    const ShardRouter router(1, cfg.routerSalt);
    const auto preload = routeOps(router, load.preload, load.keySalt);
    const auto stream = routeOps(router, load.ops, load.keySalt);

    SystemConfig sys_cfg = cfg.sys;
    sys_cfg.numCores = 1;
    McMachine machine(sys_cfg);
    auto wl = makeWorkload(cfg.workload);
    wl->setup(machine.context(0));
    for (const ShardOp &op : preload[0])
        applyShardOp(machine.context(0), *wl, op);
    for (const ShardOp &op : stream[0])
        applyShardOp(machine.context(0), *wl, op);

    EXPECT_EQ(pmImageFingerprint(machine), res.shardImageFp[0]);
    EXPECT_EQ(machine.snapshot(), res.shardSnapshots[0]);
}

TEST(ServiceRun, VerifiesAcrossShardCountsAndConservesOps)
{
    const SvcLoad load = svcGenerate(smallLoad());
    const std::size_t expanded = expandedOps(load.ops);
    for (std::size_t shards : {1, 2, 4}) {
        const KvServiceResult res = runService(smallService(shards));
        EXPECT_TRUE(res.verified)
            << shards << " shards: " << res.failure;
        ASSERT_EQ(res.shardOps.size(), shards);
        std::size_t total = 0;
        Cycles slowest = 0;
        for (std::size_t s = 0; s < shards; ++s) {
            total += res.shardOps[s];
            slowest = std::max(slowest, res.shardCycles[s]);
        }
        EXPECT_EQ(total, expanded) << shards << " shards";
        EXPECT_EQ(res.makespan, slowest) << shards << " shards";
        EXPECT_GT(res.makespan, 0u);
        EXPECT_EQ(res.stats.at("service.shardOps"), expanded);
        EXPECT_EQ(res.stats.at("service.latency.count"), expanded);
    }
}

TEST(ServiceRun, RerunsAreByteIdentical)
{
    const ServiceConfig cfg = smallService(2, YcsbMix::B);
    const KvServiceResult a = runService(cfg);
    const KvServiceResult b = runService(cfg);
    ASSERT_TRUE(a.verified) << a.failure;
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.shardImageFp, b.shardImageFp);
    EXPECT_EQ(a.shardSnapshots, b.shardSnapshots);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(ServiceRun, MulticoreShardsVerifyAndStayDeterministic)
{
    ServiceConfig cfg = smallService(2);
    cfg.coresPerShard = 2;
    const KvServiceResult a = runService(cfg);
    EXPECT_TRUE(a.verified) << a.failure;
    const KvServiceResult b = runService(cfg);
    EXPECT_EQ(a.shardImageFp, b.shardImageFp);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(ServiceRun, VerifiesAcrossSchemesAndMixes)
{
    for (const SchemeKind scheme :
         {SchemeKind::FG, SchemeKind::SLPMT}) {
        for (const YcsbMix mix :
             {YcsbMix::A, YcsbMix::D, YcsbMix::F}) {
            ServiceConfig cfg = smallService(2, mix);
            cfg.load.numOps = 200;
            cfg.sys.scheme = SchemeConfig::forKind(scheme);
            const KvServiceResult res = runService(cfg);
            EXPECT_TRUE(res.verified)
                << schemeName(scheme) << "/" << ycsbMixName(mix)
                << ": " << res.failure;
        }
    }
}

TEST(ServiceRun, LatencyPercentileGaugesAreOrdered)
{
    const KvServiceResult res = runService(smallService(2));
    ASSERT_TRUE(res.verified) << res.failure;
    const std::uint64_t p50 = res.stats.at("service.latency.p50");
    const std::uint64_t p99 = res.stats.at("service.latency.p99");
    const std::uint64_t p999 = res.stats.at("service.latency.p999");
    EXPECT_GT(p50, 0u);
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, p999);
    EXPECT_LE(res.stats.at("service.commitLatency.p50"),
              res.stats.at("service.commitLatency.p999"));
    EXPECT_GT(res.stats.at("service.opsPerGcycle"), 0u);
}

TEST(ServiceExperiment, DispatchesServiceCellsAndMapsMetrics)
{
    ExperimentConfig cfg;
    cfg.scheme = SchemeKind::SLPMT;
    cfg.ycsb.numOps = 300;
    cfg.ycsb.valueBytes = 96;
    cfg.ycsb.seed = 11;
    cfg.service.shards = 2;
    cfg.service.mix = 0;  // YCSB A
    cfg.service.zipfian = true;
    cfg.service.keySpace = std::size_t{1} << 16;
    cfg.service.preloadRecords = 100;
    cfg.service.valueBytesMin = 48;

    const ExperimentResult res = runExperiment("hashtable", cfg);
    EXPECT_TRUE(res.verified) << res.failure;
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.commits, 0u);
    EXPECT_GT(res.pmWriteBytes, 0u);
    EXPECT_TRUE(res.stats.count("service.latency.p50"));
    EXPECT_TRUE(res.stats.count("service.commitLatency.p999"));
    EXPECT_EQ(res.stats.at("service.requests"), cfg.ycsb.numOps);

    // The bridge reports the service makespan as the cell's cycles.
    EXPECT_EQ(res.cycles, res.stats.at("service.makespanCycles"));

    // And reruns of the experiment are byte-identical too.
    const ExperimentResult again = runExperiment("hashtable", cfg);
    EXPECT_EQ(res.cycles, again.cycles);
    EXPECT_EQ(res.stats, again.stats);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
