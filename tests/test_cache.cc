/**
 * @file
 * Unit tests for the cache array and the inclusive three-level
 * hierarchy: geometry, LRU, inclusion, SLPMT metadata aggregation /
 * replication across levels (Figure 5), eviction hooks, and crash
 * behaviour.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cache/hierarchy.hh"
#include "stats/stats.hh"

namespace slpmt
{
namespace
{

TEST(CacheLine, AggregateLogBits)
{
    EXPECT_EQ(aggregateLogBits(0x00), 0x0);
    EXPECT_EQ(aggregateLogBits(0xFF), 0x3);
    EXPECT_EQ(aggregateLogBits(0x0F), 0x1);
    EXPECT_EQ(aggregateLogBits(0xF0), 0x2);
    // Partially set groups aggregate to zero (conjunction).
    EXPECT_EQ(aggregateLogBits(0x07), 0x0);
    EXPECT_EQ(aggregateLogBits(0x7F), 0x1);
}

TEST(CacheLine, ReplicateLogBits)
{
    EXPECT_EQ(replicateLogBits(0x0), 0x00);
    EXPECT_EQ(replicateLogBits(0x3), 0xFF);
    EXPECT_EQ(replicateLogBits(0x1), 0x0F);
    EXPECT_EQ(replicateLogBits(0x2), 0xF0);
}

TEST(CacheLine, AggregateReplicateRoundTripOnFullGroups)
{
    for (std::uint8_t l2 = 0; l2 < 4; ++l2)
        EXPECT_EQ(aggregateLogBits(replicateLogBits(l2)), l2);
}

TEST(Cache, GeometryFromConfig)
{
    Cache l1(CacheConfig{"L1", 32 * 1024, 8, 4});
    EXPECT_EQ(l1.sets(), 64u);
    EXPECT_EQ(l1.ways(), 8u);
    Cache l2(CacheConfig{"L2", 256 * 1024, 4, 12});
    EXPECT_EQ(l2.sets(), 1024u);
    Cache l3(CacheConfig{"L3", 2 * 1024 * 1024, 16, 40});
    EXPECT_EQ(l3.sets(), 2048u);
}

TEST(Cache, LruVictimSelection)
{
    Cache c(CacheConfig{"c", 2 * cacheLineSize, 2, 1});  // 1 set, 2 ways
    CacheLine &a = c.victimFor(0x0);
    c.fillFrame(a, 0x0, MesiState::Exclusive);
    c.touch(a);
    CacheLine &b = c.victimFor(0x40);
    c.fillFrame(b, 0x40, MesiState::Exclusive);
    c.touch(b);
    // Touch A again: B becomes LRU.
    c.touch(*c.find(0x0));
    EXPECT_EQ(&c.victimFor(0x80), c.find(0x40));
}

TEST(Cache, VictimForPrefersFirstInvalidWay)
{
    Cache c(CacheConfig{"c", 4 * cacheLineSize, 4, 1});  // 1 set, 4 ways
    // Fill ways 0 and 1; ways 2 and 3 stay invalid.
    for (Addr a : {Addr{0x0}, Addr{0x40}}) {
        CacheLine &line = c.victimFor(a);
        c.fillFrame(line, a, MesiState::Exclusive);
        c.touch(line);
    }
    // The first invalid way (way 2) wins, not the LRU valid way.
    CacheLine &v1 = c.victimFor(0x80);
    EXPECT_FALSE(v1.valid());
    c.fillFrame(v1, 0x80, MesiState::Exclusive);
    CacheLine &v2 = c.victimFor(0xC0);
    EXPECT_FALSE(v2.valid());
    EXPECT_NE(&v1, &v2);
    EXPECT_EQ(&v2, &v1 + 1);  // ways are scanned lowest-first
}

TEST(Cache, VictimForBreaksLruTiesByLowestWay)
{
    Cache c(CacheConfig{"c", 2 * cacheLineSize, 2, 1});
    // Both ways valid with equal (default-zero) timestamps: the strict
    // less-than comparison keeps the first-scanned, lowest way.
    for (Addr a : {Addr{0x0}, Addr{0x40}}) {
        CacheLine &line = c.victimFor(a);
        c.fillFrame(line, a, MesiState::Exclusive);
    }
    EXPECT_EQ(&c.victimFor(0x80), c.find(0x0));
}

TEST(Cache, ProbeKeysTrackFillAndInvalidate)
{
    Cache c(CacheConfig{"c", 2 * cacheLineSize, 2, 1});
    std::string why;
    EXPECT_TRUE(c.checkProbeKeys(&why)) << why;
    CacheLine &a = c.victimFor(0x40);
    c.fillFrame(a, 0x40, MesiState::Exclusive);
    EXPECT_TRUE(c.checkProbeKeys(&why)) << why;
    EXPECT_EQ(c.find(0x40), &a);
    c.invalidateFrame(a);
    EXPECT_TRUE(c.checkProbeKeys(&why)) << why;
    EXPECT_EQ(c.find(0x40), nullptr);
    // A stale direct mutation is what the audit exists to catch.
    c.fillFrame(a, 0x40, MesiState::Exclusive);
    a.state = MesiState::Invalid;  // bypasses invalidateFrame()
    EXPECT_FALSE(c.checkProbeKeys(&why));
    EXPECT_FALSE(why.empty());
}

TEST(Cache, ConstFindMatchesMutableFind)
{
    Cache c(CacheConfig{"c", 2 * cacheLineSize, 2, 1});
    CacheLine &a = c.victimFor(0x40);
    c.fillFrame(a, 0x40, MesiState::Shared);
    const Cache &cc = c;
    EXPECT_EQ(cc.find(0x40), c.find(0x40));
    EXPECT_EQ(cc.find(0x40), &a);
    EXPECT_EQ(cc.find(0x0), nullptr);
    // Offsets within the line resolve to the same frame.
    EXPECT_EQ(cc.find(0x7F), &a);
}

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
        : pm(PmConfig{}, stats, tracker),
          dram(DramConfig{}, stats),
          hier(HierarchyConfig{}, map, pm, dram, stats)
    {
    }

    Addr pmAddr(Addr off = 0) const { return map.heapBase() + off; }

    StatsRegistry stats;
    PersistTracker tracker;
    AddressMap map;
    PmDevice pm;
    DramDevice dram;
    CacheHierarchy hier;
};

TEST_F(HierarchyTest, FirstAccessMissesEverywhere)
{
    const auto res = hier.access(pmAddr(), false, 0);
    ASSERT_NE(res.line, nullptr);
    EXPECT_EQ(stats.get("cache.l1Misses"), 1u);
    EXPECT_EQ(stats.get("cache.l2Misses"), 1u);
    EXPECT_EQ(stats.get("cache.l3Misses"), 1u);
    EXPECT_EQ(stats.get("pm.reads"), 1u);
    // Latency includes all levels plus the device.
    EXPECT_GE(res.latency, 4u + 12u + 40u + nsToCycles(150));
}

TEST_F(HierarchyTest, SecondAccessHitsL1)
{
    hier.access(pmAddr(), false, 0);
    const auto res = hier.access(pmAddr(), false, 100);
    EXPECT_EQ(res.latency, 4u);
    EXPECT_EQ(stats.get("cache.l1Hits"), 1u);
}

TEST_F(HierarchyTest, InclusionL1ImpliesL2AndL3)
{
    hier.access(pmAddr(), true, 0);
    EXPECT_NE(hier.l1().find(pmAddr()), nullptr);
    EXPECT_NE(hier.l2().find(pmAddr()), nullptr);
    EXPECT_NE(hier.l3().find(pmAddr()), nullptr);
}

TEST_F(HierarchyTest, WriteMarksDirtyAndModified)
{
    const auto res = hier.access(pmAddr(), true, 0);
    EXPECT_TRUE(res.line->dirty);
    EXPECT_EQ(res.line->state, MesiState::Modified);
}

TEST_F(HierarchyTest, MetadataMovesUpOnPromotion)
{
    // Put a line into L2 with metadata by writing it in L1 and
    // evicting; then refetch and check the L1 metadata is replicated.
    auto res = hier.access(pmAddr(), true, 0);
    res.line->persistBit = true;
    res.line->logBits = 0xFF;
    res.line->txnId = 2;
    res.line->txnSeq = 77;
    hier.noteMetaUpdate(*res.line);

    // Force the L1 set to evict the line: L1 has 64 sets * 8 ways;
    // lines mapping to the same set are 64*64 bytes apart.
    const Addr stride = 64 * cacheLineSize;
    for (int i = 1; i <= 8; ++i)
        hier.access(pmAddr(i * stride), false, 0);
    EXPECT_EQ(hier.l1().find(pmAddr()), nullptr);

    const CacheLine *l2_line = hier.l2().find(pmAddr());
    ASSERT_NE(l2_line, nullptr);
    EXPECT_TRUE(l2_line->persistBit);
    EXPECT_EQ(l2_line->logBits, 0x3);  // aggregated
    EXPECT_EQ(l2_line->txnId, 2);

    // Refetch into L1: metadata replicates back and leaves L2.
    auto back = hier.access(pmAddr(), false, 0);
    EXPECT_TRUE(back.line->persistBit);
    EXPECT_EQ(back.line->logBits, 0xFF);
    EXPECT_EQ(back.line->txnId, 2);
    EXPECT_EQ(back.line->txnSeq, 77u);
    EXPECT_EQ(hier.l2().find(pmAddr())->logBits, 0);
    EXPECT_EQ(hier.l2().find(pmAddr())->txnId, noTxnId);
}

TEST_F(HierarchyTest, PartialLogBitsLostOnAggregation)
{
    // Only 3 of 4 words in a group logged: the L2 bit is zero and the
    // refetched L1 map is empty (the duplicate-logging case of
    // Section III-B1).
    auto res = hier.access(pmAddr(), true, 0);
    res.line->logBits = 0x07;
    hier.noteMetaUpdate(*res.line);
    const Addr stride = 64 * cacheLineSize;
    for (int i = 1; i <= 8; ++i)
        hier.access(pmAddr(i * stride), false, 0);
    const auto back = hier.access(pmAddr(), false, 0);
    EXPECT_EQ(back.line->logBits, 0x00);
}

/** Eviction client recording callbacks (bound via the devirtualized
 *  setEvictionClient — no interface class to inherit). */
class RecordingClient
{
  public:
    Cycles
    evictingPrivateLine(CacheLine &line, Cycles)
    {
        evicted.push_back(line.tag);
        return 0;
    }

    std::pair<Cycles, std::uint8_t>
    roundUpLogBits(CacheLine &, std::uint8_t missing, Cycles)
    {
        offered.push_back(missing);
        return {0, missing};  // round everything up
    }

    std::vector<Addr> evicted;
    std::vector<std::uint8_t> offered;
};

TEST_F(HierarchyTest, PrivateEvictionHookFiresForMetadataLines)
{
    RecordingClient client;
    hier.setEvictionClient(&client);

    auto res = hier.access(pmAddr(), true, 0);
    res.line->persistBit = true;
    res.line->txnId = 1;
    hier.noteMetaUpdate(*res.line);

    // Evict from L1 into L2 (no hook yet), then from L2 into L3.
    const Addr l1_stride = 64 * cacheLineSize;
    for (int i = 1; i <= 8; ++i)
        hier.access(pmAddr(i * l1_stride), false, 0);
    EXPECT_TRUE(client.evicted.empty());

    const Addr l2_stride = 1024 * cacheLineSize;
    for (int i = 1; i <= 4; ++i)
        hier.access(pmAddr(i * l2_stride), true, 0);
    ASSERT_EQ(client.evicted.size(), 1u);
    EXPECT_EQ(client.evicted[0], pmAddr());
}

TEST_F(HierarchyTest, SpeculativeRoundingOfferedOnPartialGroups)
{
    RecordingClient client;
    hier.setEvictionClient(&client);
    hier.setSpeculativeRounding(true);

    auto res = hier.access(pmAddr(), true, 0);
    res.line->logBits = 0x07;  // missing word 3 in the low group
    res.line->txnId = 0;
    hier.noteMetaUpdate(*res.line);
    const Addr stride = 64 * cacheLineSize;
    for (int i = 1; i <= 8; ++i)
        hier.access(pmAddr(i * stride), false, 0);
    ASSERT_EQ(client.offered.size(), 1u);
    EXPECT_EQ(client.offered[0], 0x08);
    // Rounded up: the L2 line carries the aggregated low-group bit.
    EXPECT_EQ(hier.l2().find(pmAddr())->logBits, 0x1);
}

TEST_F(HierarchyTest, DataSurvivesFullEvictionChain)
{
    auto res = hier.access(pmAddr(), true, 0);
    res.line->data[5] = 0xAB;
    // Thrash L1+L2+L3 enough to push the line to PM.
    hier.flushAll(0);
    EXPECT_EQ(hier.l1().find(pmAddr()), nullptr);
    std::uint8_t b = 0;
    pm.peek(pmAddr() + 5, &b, 1);
    EXPECT_EQ(b, 0xAB);
}

TEST_F(HierarchyTest, PersistPrivateLineSyncsLowerCopies)
{
    auto res = hier.access(pmAddr(), true, 0);
    res.line->data[0] = 0x42;
    hier.persistPrivateLine(*res.line, PersistKind::LoggedLine, 0);
    EXPECT_FALSE(res.line->dirty);
    std::uint8_t b = 0;
    pm.peek(pmAddr(), &b, 1);
    EXPECT_EQ(b, 0x42);
    // The L3 copy matches and is clean (no double writeback later).
    const CacheLine *l3_line = hier.l3().find(pmAddr());
    ASSERT_NE(l3_line, nullptr);
    EXPECT_FALSE(l3_line->dirty);
    EXPECT_EQ(l3_line->data[0], 0x42);
}

TEST_F(HierarchyTest, CrashDropsAllCaches)
{
    auto res = hier.access(pmAddr(), true, 0);
    res.line->data[0] = 0x42;
    hier.crash();
    EXPECT_EQ(hier.l1().find(pmAddr()), nullptr);
    EXPECT_EQ(hier.l2().find(pmAddr()), nullptr);
    EXPECT_EQ(hier.l3().find(pmAddr()), nullptr);
    std::uint8_t b = 0;
    pm.peek(pmAddr(), &b, 1);
    EXPECT_EQ(b, 0x00);  // the dirty write never reached PM
}

TEST_F(HierarchyTest, ForEachPrivateVisitsEachMetadataLineOnce)
{
    auto a = hier.access(pmAddr(0), true, 0);
    a.line->txnId = 0;
    hier.noteMetaUpdate(*a.line);
    auto b = hier.access(pmAddr(64), true, 0);
    b.line->persistBit = true;
    hier.noteMetaUpdate(*b.line);
    // A cached line without transactional metadata is skipped: no
    // sweep acts on such lines.
    hier.access(pmAddr(128), true, 0);

    std::size_t visits = 0;
    hier.forEachPrivate([&](CacheLine &line) {
        EXPECT_TRUE(line.hasTxnMeta());
        ++visits;
    });
    // Each metadata line visited exactly once even though copies
    // exist in both L1 and L2.
    EXPECT_EQ(visits, 2u);

    std::string why;
    EXPECT_TRUE(hier.verifyMetaIndex(&why)) << why;

    // The full-scan fallback visits the same lines (callers filter on
    // metadata, so the historical scan acted on the same set).
    hier.setMetaIndexEnabled(false);
    std::size_t fallback = 0;
    hier.forEachPrivate([&](CacheLine &line) {
        if (line.hasTxnMeta())
            ++fallback;
    });
    EXPECT_EQ(fallback, 2u);
}

TEST_F(HierarchyTest, DramAddressesUseDramDevice)
{
    const Addr dram_addr = 0x1000;  // in the DRAM range
    hier.access(dram_addr, true, 0);
    hier.flushAll(0);
    EXPECT_EQ(stats.get("dram.writes"), 1u);
}

TEST_F(HierarchyTest, ReadWriteBytesSpanLines)
{
    std::uint8_t data[100];
    for (std::size_t i = 0; i < sizeof(data); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    hier.writeBytes(pmAddr(30), data, sizeof(data), 0);
    std::uint8_t out[100] = {};
    hier.readBytes(pmAddr(30), out, sizeof(out), 0);
    EXPECT_EQ(std::memcmp(out, data, sizeof(data)), 0);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
