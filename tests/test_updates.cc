/**
 * @file
 * Update-operation tests across every workload: value replacement,
 * absent-key handling, blob reclamation, and crash consistency — an
 * update that commits survives, an interrupted one rolls back to the
 * previous value.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/pm_system.hh"
#include "test_util.hh"
#include "workloads/factory.hh"
#include "workloads/ycsb.hh"

namespace slpmt
{
namespace
{

class UpdateTest : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        workload = makeWorkload(GetParam());
        workload->setup(sys);
        ops = ycsbLoad({.numOps = 50, .valueBytes = 40, .seed = 21});
        for (const auto &op : ops)
            workload->insert(sys, op.key, op.value);
    }

    PmSystem sys;
    std::unique_ptr<Workload> workload;
    std::vector<YcsbOp> ops;
};

TEST_P(UpdateTest, ReplacesValues)
{
    std::map<std::uint64_t, std::vector<std::uint8_t>> expected;
    for (const auto &op : ops)
        expected[op.key] = op.value;

    // Update every third key with a new, differently sized value.
    for (std::size_t i = 0; i < ops.size(); i += 3) {
        const auto fresh = ycsbValueFor(ops[i].key ^ 0xF00D, 72);
        ASSERT_TRUE(workload->update(sys, ops[i].key, fresh));
        expected[ops[i].key] = fresh;
    }

    std::vector<std::uint8_t> got;
    for (const auto &[key, value] : expected) {
        ASSERT_TRUE(workload->lookup(sys, key, &got));
        EXPECT_EQ(got, value);
    }
    std::string why;
    EXPECT_TRUE(workload->checkConsistency(sys, &why)) << why;
    EXPECT_EQ(workload->count(sys), ops.size());
}

TEST_P(UpdateTest, AbsentKeyRefused)
{
    EXPECT_FALSE(workload->update(sys, 0x2 /* even: never inserted */,
                                  ops[0].value));
    EXPECT_FALSE(sys.inTransaction());
}

TEST_P(UpdateTest, OldBlobReclaimed)
{
    const std::size_t live_before = sys.heap().liveCount();
    const auto fresh = ycsbValueFor(1, 40);
    ASSERT_TRUE(workload->update(sys, ops[0].key, fresh));
    // One blob allocated, one freed: net zero.
    EXPECT_EQ(sys.heap().liveCount(), live_before);
}

TEST_P(UpdateTest, CommittedUpdateSurvivesCrash)
{
    const auto fresh = ycsbValueFor(0xBEEF, 64);
    ASSERT_TRUE(workload->update(sys, ops[5].key, fresh));
    sys.crash();
    sys.recoverHardware();
    workload->recover(sys);
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(workload->lookup(sys, ops[5].key, &got));
    EXPECT_EQ(got, fresh);
}

TEST_P(UpdateTest, InterruptedUpdateRollsBack)
{
    sys.quiesce();
    sys.armCrashAfterStores(2);  // inside the update transaction
    bool crashed = false;
    try {
        workload->update(sys, ops[7].key, ycsbValueFor(0xDEAD, 64));
    } catch (const CrashInjected &) {
        crashed = true;
    }
    sys.armCrashAfterStores(0);
    ASSERT_TRUE(crashed);
    sys.recoverHardware();
    workload->recover(sys);
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(workload->lookup(sys, ops[7].key, &got));
    EXPECT_EQ(got, ops[7].value) << "old value must survive rollback";
    std::string why;
    EXPECT_TRUE(workload->checkConsistency(sys, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, UpdateTest,
                         ::testing::ValuesIn(allWorkloads()),
                         [](const auto &info) {
                             return testName(info.param);
                         });

TEST(ContextSwitch, DrainsLogBuffer)
{
    PmSystem sys;
    const Addr a = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(a, 1);
    EXPECT_FALSE(sys.engine().buffer().empty());
    sys.engine().contextSwitch();
    EXPECT_TRUE(sys.engine().buffer().empty());
    EXPECT_FALSE(sys.engine().logArea().empty());
    sys.txCommit();
    EXPECT_TRUE(sys.engine().logArea().empty());
}

TEST(ContextSwitch, TransactionSurvivesSwitch)
{
    PmSystem sys;
    const Addr a = sys.heap().alloc(64);
    sys.txBegin();
    sys.write<std::uint64_t>(a, 0x11);
    sys.engine().contextSwitch();
    sys.write<std::uint64_t>(a + 8, 0x22);
    sys.txCommit();
    EXPECT_EQ(sys.peek<std::uint64_t>(a), 0x11u);
    EXPECT_EQ(sys.peek<std::uint64_t>(a + 8), 0x22u);
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
