/**
 * @file
 * The service load generator: determinism (same seed, same bytes),
 * key-derivation invariants, exact pinned-seed YCSB mix counts and
 * stream hashes (the golden-stats pattern: exact equalities on a
 * deterministic generator), Zipfian rank-frequency slope, value-size
 * distribution pins, and hot-key churn rotation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "workloads/loadgen.hh"

namespace slpmt
{
namespace
{

/** FNV-1a over every field of every op: the stream's byte identity. */
std::uint64_t
streamHash(const std::vector<SvcOp> &ops)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto fold = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (const SvcOp &op : ops) {
        fold(static_cast<std::uint64_t>(op.kind));
        fold(op.key);
        fold(op.record);
        fold(op.valueBytes);
        fold(op.valueSalt);
        fold(op.scanLen);
    }
    return h;
}

struct MixCounts
{
    std::size_t reads = 0;
    std::size_t updates = 0;
    std::size_t inserts = 0;
    std::size_t scans = 0;
    std::size_t rmws = 0;
};

MixCounts
countOps(const std::vector<SvcOp> &ops)
{
    MixCounts c;
    for (const SvcOp &op : ops) {
        switch (op.kind) {
          case SvcOpKind::Read: c.reads++; break;
          case SvcOpKind::Update: c.updates++; break;
          case SvcOpKind::Insert: c.inserts++; break;
          case SvcOpKind::Scan: c.scans++; break;
          case SvcOpKind::ReadModifyWrite: c.rmws++; break;
        }
    }
    return c;
}

LoadGenConfig
pinnedConfig(YcsbMix mix)
{
    LoadGenConfig cfg;
    cfg.mix = mix;
    cfg.skew = KeySkew::Zipfian;
    cfg.keySpace = std::size_t{1} << 20;
    cfg.preloadRecords = 2000;
    cfg.numOps = 10000;
    cfg.valueBytesMin = 64;
    cfg.valueBytesMax = 64;
    cfg.seed = 42;
    return cfg;
}

TEST(LoadGen, SameSeedIsByteIdentical)
{
    const LoadGenConfig cfg = pinnedConfig(YcsbMix::A);
    const SvcLoad a = svcGenerate(cfg);
    const SvcLoad b = svcGenerate(cfg);
    EXPECT_EQ(a.keySalt, b.keySalt);
    EXPECT_EQ(a.preload, b.preload);
    EXPECT_EQ(a.ops, b.ops);

    LoadGenConfig other = cfg;
    other.seed = 43;
    const SvcLoad c = svcGenerate(other);
    EXPECT_NE(streamHash(a.ops), streamHash(c.ops));
}

TEST(LoadGen, KeysAreDistinctNonzeroAndBounded)
{
    LoadGenConfig cfg = pinnedConfig(YcsbMix::D);  // insert-bearing
    cfg.numOps = 5000;
    const SvcLoad load = svcGenerate(cfg);

    std::set<std::uint64_t> keys;
    auto check = [&](const SvcOp &op) {
        EXPECT_NE(op.key, 0u);
        EXPECT_LT(op.key, std::uint64_t{1} << 63);
        EXPECT_EQ(op.key, svcKeyForRecord(op.record, load.keySalt));
        if (op.kind == SvcOpKind::Insert)
            EXPECT_TRUE(keys.insert(op.key).second)
                << "duplicate inserted key " << op.key;
    };
    for (const SvcOp &op : load.preload)
        check(op);
    for (const SvcOp &op : load.ops)
        check(op);
    // Non-insert ops only touch already-inserted records.
    for (const SvcOp &op : load.ops) {
        if (op.kind != SvcOpKind::Insert)
            EXPECT_TRUE(keys.count(op.key))
                << "op targets a never-inserted record " << op.record;
    }
}

// Exact pinned-seed mix counts and stream hashes: the generator is
// deterministic, so these are equalities, not tolerances. A failure
// means the stream changed — regenerate the table from the failure
// messages if that was intended.
struct GoldenMix
{
    YcsbMix mix;
    std::size_t reads, updates, inserts, scans, rmws;
    std::uint64_t hash;
};

const GoldenMix goldenMixes[] = {
    {YcsbMix::A, 5043, 4957, 0, 0, 0, 0x42ea9e829478fc41ull},
    {YcsbMix::B, 9485, 515, 0, 0, 0, 0x666aeda8f81ef5f9ull},
    {YcsbMix::C, 10000, 0, 0, 0, 0, 0x7ed9e85c55c9183bull},
    {YcsbMix::D, 9505, 0, 495, 0, 0, 0xcb381aa868b02d10ull},
    {YcsbMix::E, 0, 0, 498, 9502, 0, 0xed074d17dac29a42ull},
    {YcsbMix::F, 5043, 0, 0, 0, 4957, 0x2edabf38f4167e4bull},
};

TEST(LoadGen, PinnedMixCountsAndStreamHashesMatchExactly)
{
    for (const GoldenMix &golden : goldenMixes) {
        const SvcLoad load = svcGenerate(pinnedConfig(golden.mix));
        const MixCounts c = countOps(load.ops);
        const std::string label =
            std::string("mix ") + ycsbMixName(golden.mix);
        EXPECT_EQ(c.reads, golden.reads) << label;
        EXPECT_EQ(c.updates, golden.updates) << label;
        EXPECT_EQ(c.inserts, golden.inserts) << label;
        EXPECT_EQ(c.scans, golden.scans) << label;
        EXPECT_EQ(c.rmws, golden.rmws) << label;
        EXPECT_EQ(streamHash(load.ops), golden.hash) << label;
    }
}

// The op-mix ratios themselves (counts / numOps) must sit within 1%
// of the YCSB specification — independent of the pinned seed, so a
// regenerated golden table cannot silently drift off-spec.
TEST(LoadGen, MixRatiosWithinOnePercentOfSpec)
{
    struct Spec
    {
        YcsbMix mix;
        double reads, updates, inserts, scans, rmws;
    };
    const Spec specs[] = {
        {YcsbMix::A, 0.50, 0.50, 0, 0, 0},
        {YcsbMix::B, 0.95, 0.05, 0, 0, 0},
        {YcsbMix::C, 1.00, 0, 0, 0, 0},
        {YcsbMix::D, 0.95, 0, 0.05, 0, 0},
        {YcsbMix::E, 0, 0, 0.05, 0.95, 0},
        {YcsbMix::F, 0.50, 0, 0, 0, 0.50},
    };
    for (const Spec &spec : specs) {
        const SvcLoad load = svcGenerate(pinnedConfig(spec.mix));
        const MixCounts c = countOps(load.ops);
        const auto n = static_cast<double>(load.ops.size());
        EXPECT_NEAR(c.reads / n, spec.reads, 0.01)
            << ycsbMixName(spec.mix);
        EXPECT_NEAR(c.updates / n, spec.updates, 0.01)
            << ycsbMixName(spec.mix);
        EXPECT_NEAR(c.inserts / n, spec.inserts, 0.01)
            << ycsbMixName(spec.mix);
        EXPECT_NEAR(c.scans / n, spec.scans, 0.01)
            << ycsbMixName(spec.mix);
        EXPECT_NEAR(c.rmws / n, spec.rmws, 0.01)
            << ycsbMixName(spec.mix);
    }
}

// Rank-frequency slope of the raw Zipfian generator: a least-squares
// fit of log(freq) against log(rank+1) over the well-sampled head
// must recover -theta within tolerance.
TEST(LoadGen, ZipfianRankFrequencySlopeNearTheta)
{
    constexpr double theta = 0.99;
    constexpr std::uint64_t items = 10000;
    constexpr std::size_t draws = 400000;

    ZipfianGen zipf(theta);
    Rng rng(mix64(0x21f0ull));
    std::map<std::uint64_t, std::size_t> freq;
    for (std::size_t i = 0; i < draws; ++i)
        freq[zipf.next(rng, items)]++;

    // Head ranks only: each has thousands of samples, so sampling
    // noise is far below the fit tolerance.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    std::size_t n = 0;
    for (std::uint64_t r = 0; r < 50; ++r) {
        ASSERT_GT(freq[r], 100u) << "rank " << r << " undersampled";
        const double x = std::log(static_cast<double>(r + 1));
        const double y = std::log(static_cast<double>(freq[r]));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        ++n;
    }
    const double slope =
        (static_cast<double>(n) * sxy - sx * sy) /
        (static_cast<double>(n) * sxx - sx * sx);
    EXPECT_NEAR(slope, -theta, 0.08)
        << "rank-frequency slope off the Zipfian exponent";

    // And the ranks must stay bounded.
    for (const auto &[rank, count] : freq)
        EXPECT_LT(rank, items);
}

// Uniform skew must not concentrate: the hottest record of a large
// draw stays within a small multiple of the mean frequency.
TEST(LoadGen, UniformSkewDoesNotConcentrate)
{
    LoadGenConfig cfg = pinnedConfig(YcsbMix::C);
    cfg.skew = KeySkew::Uniform;
    cfg.preloadRecords = 1000;
    cfg.numOps = 100000;
    const SvcLoad load = svcGenerate(cfg);

    std::map<std::uint64_t, std::size_t> freq;
    for (const SvcOp &op : load.ops)
        freq[op.record]++;
    std::size_t hottest = 0;
    for (const auto &[record, count] : freq)
        hottest = std::max(hottest, count);
    const double mean = static_cast<double>(cfg.numOps) /
                        static_cast<double>(cfg.preloadRecords);
    EXPECT_LT(static_cast<double>(hottest), mean * 2.0);

    // Zipfian over the same config concentrates hard.
    cfg.skew = KeySkew::Zipfian;
    const SvcLoad zload = svcGenerate(cfg);
    freq.clear();
    for (const SvcOp &op : zload.ops)
        freq[op.record]++;
    std::size_t zhot = 0;
    for (const auto &[record, count] : freq)
        zhot = std::max(zhot, count);
    EXPECT_GT(static_cast<double>(zhot), mean * 10.0);
}

// Value sizes: pinned distribution over [min, max], plus the exact
// golden sum/hash of the pinned draw.
TEST(LoadGen, ValueSizeDistributionPinned)
{
    LoadGenConfig cfg = pinnedConfig(YcsbMix::A);
    cfg.valueBytesMin = 64;
    cfg.valueBytesMax = 256;
    const SvcLoad load = svcGenerate(cfg);

    std::uint64_t sum = 0;
    std::size_t mutations = 0;
    for (const SvcOp &op : load.ops) {
        if (!op.isMutation())
            continue;
        ++mutations;
        EXPECT_GE(op.valueBytes, cfg.valueBytesMin);
        EXPECT_LE(op.valueBytes, cfg.valueBytesMax);
        sum += op.valueBytes;
    }
    ASSERT_GT(mutations, 0u);
    const double mean =
        static_cast<double>(sum) / static_cast<double>(mutations);
    EXPECT_NEAR(mean, 160.0, 8.0) << "value-size mean off the range";

    // Exact pins of the deterministic draw.
    EXPECT_EQ(sum, 804379u);
    EXPECT_EQ(streamHash(load.ops), 0x27fa06234159114eull);
}

// Hot-key churn: with rotation the hottest record changes across
// epochs; without it the hot set is stable.
TEST(LoadGen, HotKeyChurnRotatesTheHotSet)
{
    LoadGenConfig cfg = pinnedConfig(YcsbMix::C);
    cfg.numOps = 8000;
    cfg.churnInterval = 2000;

    auto hottestPerEpoch = [&](const SvcLoad &load) {
        std::vector<std::uint64_t> hottest;
        for (std::size_t e = 0; e < 4; ++e) {
            std::map<std::uint64_t, std::size_t> freq;
            for (std::size_t i = e * 2000; i < (e + 1) * 2000; ++i)
                freq[load.ops[i].record]++;
            std::uint64_t top = 0;
            std::size_t top_count = 0;
            for (const auto &[record, count] : freq) {
                if (count > top_count) {
                    top = record;
                    top_count = count;
                }
            }
            hottest.push_back(top);
        }
        return hottest;
    };

    const auto churned = hottestPerEpoch(svcGenerate(cfg));
    std::set<std::uint64_t> distinct(churned.begin(), churned.end());
    EXPECT_GE(distinct.size(), 2u)
        << "hot set never rotated across churn epochs";

    cfg.churnInterval = 0;
    const auto stable = hottestPerEpoch(svcGenerate(cfg));
    std::set<std::uint64_t> sdistinct(stable.begin(), stable.end());
    EXPECT_EQ(sdistinct.size(), 1u)
        << "hot set drifted without churn";
}

// Mix D reads "latest": read ranks map to recently inserted records.
TEST(LoadGen, MixDReadsTargetTheLatestRecords)
{
    LoadGenConfig cfg = pinnedConfig(YcsbMix::D);
    const SvcLoad load = svcGenerate(cfg);
    std::size_t recent = 0;
    std::size_t reads = 0;
    for (std::size_t i = 0; i < load.ops.size(); ++i) {
        const SvcOp &op = load.ops[i];
        if (op.kind != SvcOpKind::Read)
            continue;
        ++reads;
        // "Recent" = within the hottest 10% of the loaded prefix.
        if (op.record + cfg.preloadRecords / 10 >= cfg.preloadRecords)
            ++recent;
    }
    ASSERT_GT(reads, 0u);
    EXPECT_GT(static_cast<double>(recent) / static_cast<double>(reads),
              0.5)
        << "latest-distribution reads not skewed to recent records";
}

} // namespace
} // namespace slpmt

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
